/// The capacity-aware re-test behind EXPERIMENTS.md's "Capacity-aware
/// ROR/TR re-test" section: re-run the Section 4 Monte Carlo safety
/// sweep with a high-capacity classifier (histogram decision tree) next
/// to the paper's Naive Bayes and report where the linear-model
/// thresholds break.
///
/// For each |D_FK| in the lone-X_r scenario the table shows the Δ test
/// error of avoiding the join (NoJoin − UseAll) under both model
/// classes, plus what the TR rule decides at the linear thresholds and
/// at the advisor's capacity-scaled thresholds
/// (AdvisorOptions::model_capacity = kHighCapacity). The tree's Δ
/// detaches from zero at smaller |D_FK| than Naive Bayes' — exactly the
/// follow-up paper's "thinking twice" warning — and the scaled
/// thresholds move the avoid/join boundary back to safety.
///
/// Run: ./example_capacity_sweep [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "core/decision_rules.h"
#include "ml/decision_tree.h"
#include "sim/monte_carlo.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  MonteCarloOptions mc;
  mc.num_training_sets = 100;
  mc.num_repeats = 10;
  mc.seed = seed;

  const RuleThresholds linear = ThresholdsForTolerance(0.001);
  RuleThresholds high = linear;
  high.tau *= kHighCapacityScale;
  high.rho /= kHighCapacityScale;

  DecisionTreeOptions tree_options;
  const ClassifierFactory tree_factory = MakeDecisionTreeFactory(tree_options);

  std::printf(
      "Lone-X_r scenario, n_S = 1000, p = 0.1. Sweeping |D_FK| under two "
      "model classes.\n"
      "TR rule: avoid iff TR >= tau. Linear tau = %.0f; high-capacity "
      "tau = %.0f (kHighCapacityScale = %.1f).\n\n",
      linear.tau, high.tau, kHighCapacityScale);

  TablePrinter table({"|D_FK|", "TR", "NB dErr", "Tree dErr", "TR(linear)",
                      "TR(high-cap)"});
  for (uint32_t n_r : {10u, 25u, 50u, 100u, 200u, 400u}) {
    SimConfig config;
    config.scenario = TrueDistribution::kLoneXr;
    config.n_s = 1000;
    config.d_s = 4;
    config.d_r = 4;
    config.n_r = n_r;
    config.p = 0.1;

    auto nb_result = RunMonteCarlo(config, mc);
    auto tree_result = RunMonteCarlo(config, mc, &tree_factory);
    if (!nb_result.ok() || !tree_result.ok()) {
      const Status& st =
          !nb_result.ok() ? nb_result.status() : tree_result.status();
      std::fprintf(stderr, "Monte Carlo failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double tr = TupleRatioForSimConfig(config);
    table.AddRow({std::to_string(n_r), StringFormat("%.1f", tr),
                  StringFormat("%+.4f", nb_result->DeltaTestError()),
                  StringFormat("%+.4f", tree_result->DeltaTestError()),
                  tr >= linear.tau ? "avoid" : "join",
                  tr >= high.tau ? "avoid" : "join"});
  }
  table.Print(std::cout);

  std::printf(
      "\nReading the table: both model classes pay for avoiding the join "
      "as |D_FK| grows, but the tree's Δ error detaches from the noise "
      "floor earlier and climbs faster — extra capacity turns the FK's "
      "spurious resolution into variance. Rows where TR(linear) says "
      "'avoid' while the tree's Δ already exceeds the 0.001 tolerance are "
      "the linear rule's blind spot; TR(high-cap) — the advisor's "
      "model_capacity = kHighCapacity setting — flips those rows back to "
      "'join'.\n");
  return 0;
}
