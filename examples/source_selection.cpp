/// Source selection — the paper's fourth motivating benefit (Section 1):
/// analysts with a dozen candidate tables want to know, *before* paying
/// for acquisition or joins, which tables could even matter for accuracy.
/// The TR rule answers from metadata alone: a candidate whose tuple ratio
/// is far above τ cannot beat the foreign key you already have.
///
/// This example simulates an analyst triaging eight candidate attribute
/// tables for a churn model (some tiny reference tables, some huge
/// event-grained ones), ranks them with the advisor, and verifies the
/// triage empirically on the two extremes.
///
/// Run: ./example_source_selection [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/synth_common.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // Eight candidate tables spanning the TR spectrum; a few carry signal.
  SynthDatasetSpec spec;
  spec.name = "SourceSelection";
  spec.entity_name = "Customers";
  spec.pk_name = "CustomerID";
  spec.target_name = "Churn";
  spec.num_classes = 2;
  spec.n_s = 40000;
  spec.metric = ErrorMetric::kZeroOne;
  spec.label_noise = 0.3;
  spec.s_features = {{SynthFeatureSpec::Noise("Age", 8, true), 0.5}};

  struct Candidate {
    const char* table;
    const char* key;
    uint32_t rows;
    double weight;  // Real usefulness (unknown to the analyst!).
  };
  const Candidate candidates[] = {
      {"Regions", "RegionID", 12, 0.6},
      {"Plans", "PlanID", 40, 0.8},
      {"Branches", "BranchID", 400, 0.5},
      {"Employers", "EmployerID", 2000, 0.7},
      {"Devices", "DeviceID", 6000, 0.0},
      {"Campaigns", "CampaignID", 9000, 0.4},
      {"Sessions", "SessionID", 20000, 0.0},
      {"Tickets", "TicketID", 35000, 0.3},
  };
  for (const Candidate& c : candidates) {
    SynthAttributeTableSpec t;
    t.table_name = c.table;
    t.pk_name = c.key;
    t.fk_name = c.key;
    t.num_rows = c.rows;
    t.latent_cardinality = 8;
    t.target_weight = c.weight;
    t.features = {
        SynthFeatureSpec::Signal(std::string(c.table) + "_A", 6,
                                 c.weight > 0 ? 0.6 : 0.0),
        SynthFeatureSpec::Signal(std::string(c.table) + "_B", 8,
                                 c.weight > 0 ? 0.4 : 0.0, true),
    };
    spec.tables.push_back(t);
  }

  auto dataset = GenerateSyntheticDataset(spec, 1.0, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // Rank candidates by TR: the analyst's triage sheet.
  auto plan = AdviseJoins(*dataset);
  if (!plan.ok()) {
    std::fprintf(stderr, "advisor failed\n");
    return 1;
  }
  std::vector<const TableAdvice*> ranked;
  for (const auto& a : plan->advice) ranked.push_back(&a);
  std::sort(ranked.begin(), ranked.end(),
            [](const TableAdvice* a, const TableAdvice* b) {
              return a->tuple_ratio > b->tuple_ratio;
            });

  TablePrinter triage({"Rank", "Candidate table", "Rows", "TR", "ROR",
                       "Verdict"});
  int rank = 1;
  for (const TableAdvice* a : ranked) {
    triage.AddRow(
        {std::to_string(rank++), a->table_name, std::to_string(a->n_r),
         StringFormat("%.1f", a->tuple_ratio), StringFormat("%.2f", a->ror),
         a->avoid ? "skip the join: FK already suffices"
                  : "worth joining/acquiring"});
  }
  std::printf("Source-selection triage (n_train = %llu, tau = %.0f):\n\n",
              static_cast<unsigned long long>(plan->n_train),
              plan->thresholds.tau);
  triage.Print(std::cout);

  // Verify empirically on the two verdict extremes, isolating one
  // candidate at a time: compare FK-as-representative (no join) against
  // joining the candidate, with only that candidate's columns in play.
  auto isolate = [&](const std::string& fk, bool join) {
    auto table = *dataset->JoinSubset(
        join ? std::vector<std::string>{fk} : std::vector<std::string>{});
    std::vector<std::string> feature_names = {"Age", fk};
    if (join) {
      for (uint32_t c = 0; c < table.num_columns(); ++c) {
        const auto& spec = table.schema().column(c);
        if (spec.role == ColumnRole::kFeature &&
            spec.name.rfind(fk.substr(0, fk.size() - 2), 0) == 0) {
          feature_names.push_back(spec.name);
        }
      }
    }
    auto data = *EncodedDataset::FromTable(table, "Churn", feature_names);
    Rng rng(seed + 1);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
    auto selector = MakeSelector(FsMethod::kForwardSelection);
    auto report = *RunFeatureSelection(*selector, data, split,
                                       MakeNaiveBayesFactory(),
                                       ErrorMetric::kZeroOne,
                                       data.AllFeatureIndices());
    return report.holdout_test_error;
  };
  std::printf(
      "\nEmpirical spot check (forward-selection holdout error, one "
      "candidate at a time):\n");
  struct Probe {
    const char* fk;
    const char* verdict;
  };
  for (const Probe& p : {Probe{"PlanID", "skip"}, Probe{"TicketID", "keep"}}) {
    double fk_only = isolate(p.fk, false);
    double joined = isolate(p.fk, true);
    std::printf(
        "  %-10s (%s verdict): FK only = %.4f, joined = %.4f, gain = "
        "%+.4f\n",
        p.fk, p.verdict, fk_only, joined, fk_only - joined);
  }
  std::printf(
      "\nThe skip-verdict candidate gains ~nothing from its join (the FK "
      "already carries it); the keep-verdict candidate (TR < 1: almost "
      "every ticket is unique) only helps through its joined features.\n");
  return 0;
}
