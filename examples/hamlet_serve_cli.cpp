/// hamlet_serve_cli: a synthetic closed-loop workload against the
/// in-process serving stack (src/serve/).
///
/// The driver stands up an artifact store and a HamletService, persists
/// a synthetic dataset and a trained Naive Bayes model, then hammers the
/// service with N closed-loop clients (each issues its next request the
/// moment the previous one returns): mostly Score calls over small row
/// blocks — the micro-batcher's bread and butter — seasoned with
/// metadata-only Advise calls, and one SelectFeatures run at the end
/// that persists a second model. It prints a throughput/latency report
/// (client-observed percentiles plus the service's own serve.* latency
/// histograms) and the explain-style stage tree.
///
/// Run: ./hamlet_serve_cli [clients] [requests_per_client] [seed]
///          [--metrics-jsonl=PATH] [--prom=PATH]
///
/// --metrics-jsonl appends a structured snapshot line (obs/exporter.h)
/// at the end of the run; --prom dumps the same snapshot in Prometheus
/// text exposition format. The HAMLET_METRICS_JSONL environment
/// variable supplies the JSONL path as well (the flag wins).
///
/// --load-test switches to the closed-loop load harness for the sharded
/// data plane (serve/load_gen.h): it drives Score-only traffic for a
/// fixed window and prints the accounting/throughput/latency report.
/// In this mode [clients] keeps its positional meaning and the knobs
/// are --duration=S, --rate=R (req/s, 0 = unthrottled), --block-rows=N,
/// --models=N, --versions=N (published history depth per model),
/// --shards=N (0 = auto), --shed (load-shedding admission
/// instead of blocking), --deadline-us=N (per-request deadline).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/artifact_store.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "sim/data_synthesis.h"

using namespace hamlet;        // NOLINT: example brevity.
using namespace hamlet::serve; // NOLINT: example brevity.

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Client-observed latency digest (the service keeps its own histograms;
// these are the end-to-end numbers including queue wait).
struct LatencyDigest {
  uint64_t count = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, mean_us = 0;
};

LatencyDigest Digest(std::vector<uint64_t> nanos) {
  LatencyDigest d;
  if (nanos.empty()) return d;
  std::sort(nanos.begin(), nanos.end());
  d.count = nanos.size();
  auto at = [&](double p) {
    size_t i = static_cast<size_t>(p * (nanos.size() - 1));
    return static_cast<double>(nanos[i]) / 1e3;
  };
  d.p50_us = at(0.50);
  d.p95_us = at(0.95);
  d.p99_us = at(0.99);
  double sum = 0;
  for (uint64_t v : nanos) sum += static_cast<double>(v);
  d.mean_us = sum / static_cast<double>(nanos.size()) / 1e3;
  return d;
}

void PrintDigest(const char* label, const LatencyDigest& d) {
  std::printf("  %-10s %8llu reqs   p50 %9.1f us   p95 %9.1f us   "
              "p99 %9.1f us   mean %9.1f us\n",
              label, static_cast<unsigned long long>(d.count), d.p50_us,
              d.p95_us, d.p99_us, d.mean_us);
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; bare numbers fill the positional
  // [clients] [requests_per_client] [seed] slots in order.
  std::string metrics_jsonl_path, prom_path;
  if (const char* env = std::getenv("HAMLET_METRICS_JSONL")) {
    metrics_jsonl_path = env;
  }
  bool load_test = false, shed = false;
  double load_duration_s = 2.0, load_rate = 0.0;
  uint32_t load_block_rows = 16, load_models = 4, load_shards = 0;
  uint32_t load_versions = 0;  // 0 = LoadGenOptions' default history.
  uint64_t load_deadline_us = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-jsonl=", 16) == 0) {
      metrics_jsonl_path = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--prom=", 7) == 0) {
      prom_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--load-test") == 0) {
      load_test = true;
    } else if (std::strcmp(argv[i], "--shed") == 0) {
      shed = true;
    } else if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      load_duration_s = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strncmp(argv[i], "--rate=", 7) == 0) {
      load_rate = std::strtod(argv[i] + 7, nullptr);
    } else if (std::strncmp(argv[i], "--block-rows=", 13) == 0) {
      load_block_rows =
          static_cast<uint32_t>(std::strtoul(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--models=", 9) == 0) {
      load_models =
          static_cast<uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strncmp(argv[i], "--versions=", 11) == 0) {
      load_versions =
          static_cast<uint32_t>(std::strtoul(argv[i] + 11, nullptr, 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      load_shards =
          static_cast<uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strncmp(argv[i], "--deadline-us=", 14) == 0) {
      load_deadline_us = std::strtoull(argv[i] + 14, nullptr, 10);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const uint32_t clients =
      positional.size() > 0
          ? static_cast<uint32_t>(std::strtoul(positional[0], nullptr, 10))
          : 8;
  const uint32_t per_client =
      positional.size() > 1
          ? static_cast<uint32_t>(std::strtoul(positional[1], nullptr, 10))
          : 200;
  const uint64_t seed =
      positional.size() > 2 ? std::strtoull(positional[2], nullptr, 10) : 7;

  if (load_test) {
    const std::string root = "artifacts/hamlet_serve_cli_load";
    std::filesystem::remove_all(root);
    ArtifactStore store(root);
    ServiceOptions service_options;
    service_options.num_shards = load_shards;
    if (shed) {
      service_options.overload_policy = OverloadPolicy::kShed;
      service_options.queue_capacity = 64;
      service_options.shed_high_water = 32;
    }
    LoadGenOptions load;
    load.clients = clients;
    load.duration_s = load_duration_s;
    load.target_rate = load_rate;
    load.block_rows = load_block_rows;
    load.num_models = load_models;
    if (load_versions != 0) load.versions_per_model = load_versions;
    load.deadline_ns = load_deadline_us * 1000;
    load.seed = seed;
    auto report = RunClosedLoopLoad(&store, service_options, load);
    if (!report.ok()) {
      std::fprintf(stderr, "load test failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("hamlet_serve_cli --load-test: %u clients for %.2fs "
                "(%s admission)\n%s",
                clients, load_duration_s, shed ? "shedding" : "blocking",
                FormatLoadReport(*report).c_str());
    return report->accounting_exact ? 0 : 1;
  }

  // --- Synthesize a dataset and train the model to serve. ---
  SimConfig config;
  config.n_s = 20000;
  config.d_s = 8;
  config.d_r = 8;
  config.n_r = 200;
  Rng rng(seed);
  SimDataGenerator gen(config, rng);
  SimDraw draw = gen.Draw(config.n_s, rng);

  std::vector<uint32_t> all_rows(draw.data.num_rows());
  for (uint32_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  NaiveBayes model(1.0);
  auto trained = model.Train(draw.data, all_rows, gen.UseAllFeatures());
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  const std::string root = "artifacts/hamlet_serve_cli";
  std::filesystem::remove_all(root);
  ArtifactStore store(root);
  if (!store.PutDataset("churn_data", draw.data).ok() ||
      !store.PutNaiveBayes("churn_nb", model).ok()) {
    std::fprintf(stderr, "artifact store setup failed\n");
    return 1;
  }

  // Pre-build one 64-row block per client (GatherRows outside the timed
  // loop; the closed loop measures serving, not data prep).
  std::vector<std::shared_ptr<const EncodedDataset>> blocks;
  for (uint32_t c = 0; c < clients; ++c) {
    Rng block_rng(seed + 1000 + c);
    std::vector<uint32_t> sample(64);
    for (auto& r : sample) r = block_rng.Uniform(draw.data.num_rows());
    blocks.push_back(std::make_shared<const EncodedDataset>(
        draw.data.GatherRows(sample)));
  }

  // --- The closed loop: every client re-issues as soon as it hears
  // back; every 16th request is a metadata-only Advise. ---
  obs::ScopedCollection collect(true);
  HamletService service(&store);

  std::vector<std::vector<uint64_t>> score_ns(clients), advise_ns(clients);
  std::vector<int> failures(clients, 0);
  const uint64_t t0 = NowNanos();
  {
    std::vector<std::thread> threads;
    for (uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (uint32_t i = 0; i < per_client; ++i) {
          const uint64_t start = NowNanos();
          if (i % 16 == 15) {
            AdviseRequest req;
            req.n_train = 10000;
            req.candidates = {{"EmployerID", "Employers", 400, 8, true},
                              {"RegionID", "Regions", 9000, 2, true}};
            auto plan = service.Advise(std::move(req));
            if (!plan.ok()) { ++failures[c]; continue; }
            advise_ns[c].push_back(NowNanos() - start);
          } else {
            ScoreRequest req;
            req.model = "churn_nb";
            req.rows = blocks[c];
            auto resp = service.Score(std::move(req));
            if (!resp.ok()) { ++failures[c]; continue; }
            score_ns[c].push_back(NowNanos() - start);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_seconds = static_cast<double>(NowNanos() - t0) / 1e9;

  // --- One feature selection run, persisted through the service. ---
  SelectFeaturesRequest fs_req;
  fs_req.dataset = "churn_data";
  fs_req.model_name = "churn_nb_selected";
  fs_req.seed = seed;
  const uint64_t fs_start = NowNanos();
  auto fs_resp = service.SelectFeatures(std::move(fs_req));
  const double fs_seconds = static_cast<double>(NowNanos() - fs_start) / 1e9;
  if (!fs_resp.ok()) {
    std::fprintf(stderr, "SelectFeatures failed: %s\n",
                 fs_resp.status().ToString().c_str());
    return 1;
  }
  service.Stop();

  // --- Report. ---
  std::vector<uint64_t> all_score, all_advise;
  int total_failures = 0;
  for (uint32_t c = 0; c < clients; ++c) {
    all_score.insert(all_score.end(), score_ns[c].begin(), score_ns[c].end());
    all_advise.insert(all_advise.end(), advise_ns[c].begin(),
                      advise_ns[c].end());
    total_failures += failures[c];
  }
  const uint64_t total_reqs = all_score.size() + all_advise.size();

  std::printf("hamlet_serve_cli: %u closed-loop clients x %u requests "
              "(seed %llu)\n\n",
              clients, per_client, static_cast<unsigned long long>(seed));
  std::printf("Throughput: %llu requests in %.3fs = %.0f req/s "
              "(%d failures)\n",
              static_cast<unsigned long long>(total_reqs), wall_seconds,
              static_cast<double>(total_reqs) / wall_seconds, total_failures);
  std::printf("Client-observed latency (includes queue wait):\n");
  PrintDigest("Score", Digest(std::move(all_score)));
  PrintDigest("Advise", Digest(std::move(all_advise)));

  auto metrics = obs::MetricsRegistry::Global().Snapshot();
  const auto& batch_hist = obs::MetricsRegistry::Global()
                               .GetHistogram("serve.batch_size")
                               .Snapshot();
  std::printf("\nService-side view (serve.* metrics):\n");
  std::printf("  requests        %llu  (score %llu, advise %llu, "
              "select %llu)\n",
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.requests")),
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.score_requests")),
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.advise_requests")),
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.select_requests")));
  std::printf("  rows scored     %llu in %llu batched passes "
              "(mean batch %.2f requests)\n",
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.score_rows")),
              static_cast<unsigned long long>(
                  metrics.CounterValue("serve.score_batches")),
              batch_hist.count > 0
                  ? static_cast<double>(batch_hist.sum_nanos) /
                        static_cast<double>(batch_hist.count)
                  : 0.0);
  // Service-side percentiles come from the log-linear serve.*_ns
  // histograms (bucket width <= 1/32 of the value, so these track the
  // exact order statistics to a few percent).
  for (const char* name : {"serve.score_ns", "serve.advise_ns",
                           "serve.queue_wait_ns"}) {
    const auto hist =
        obs::MetricsRegistry::Global().GetHistogram(name).Snapshot();
    if (hist.count == 0) continue;
    std::printf("  %-15s p50 %9.1f us   p95 %9.1f us   p99 %9.1f us\n",
                name,
                static_cast<double>(hist.PercentileNanos(0.50)) / 1e3,
                static_cast<double>(hist.PercentileNanos(0.95)) / 1e3,
                static_cast<double>(hist.PercentileNanos(0.99)) / 1e3);
  }
  std::printf("  model cache     %llu hits / %llu misses\n",
              static_cast<unsigned long long>(store.cache_hits()),
              static_cast<unsigned long long>(store.cache_misses()));
  std::printf("  SelectFeatures  %.3fs -> model '%s' v%u (%zu features, "
              "holdout error %.4f)\n",
              fs_seconds, "churn_nb_selected", fs_resp->model_version,
              fs_resp->report.selection.selected.size(),
              fs_resp->report.holdout_test_error);

  // Structured export, when requested.
  if (!metrics_jsonl_path.empty()) {
    const obs::TraceSummary summary =
        obs::SummarizeTrace(obs::Tracer::Global().Collect(), metrics);
    obs::JsonlExporter exporter;
    auto st = exporter.Open(metrics_jsonl_path);
    if (st.ok()) st = exporter.Flush(metrics, &summary);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   st.ToString().c_str());
    } else {
      std::printf("\nMetrics JSONL written to %s\n",
                  metrics_jsonl_path.c_str());
    }
  }
  if (!prom_path.empty()) {
    std::ofstream prom(prom_path, std::ios::out | std::ios::trunc);
    if (prom.is_open()) {
      obs::DumpPrometheusText(metrics, prom);
      std::printf("Prometheus text written to %s\n", prom_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", prom_path.c_str());
    }
  }

  std::printf("\nExplain tree (merged serve.* spans):\n%s\n",
              obs::RenderExplainTree(obs::Tracer::Global().Collect())
                  .c_str());
  std::printf("Artifacts left under %s:\n", root.c_str());
  auto list = store.List();
  if (list.ok()) {
    for (const auto& ref : *list) {
      std::printf("  %-24s v%-3u %-16s %8llu bytes\n", ref.name.c_str(),
                  ref.version, ArtifactKindToString(ref.kind),
                  static_cast<unsigned long long>(ref.size_bytes));
    }
  }
  return 0;
}
