/// Quickstart: the paper's running example (Section 2.1).
///
/// An insurance analyst predicts customer churn from
///   Customers(CustomerID, Churn, Gender, Age, EmployerID)
/// where EmployerID is a foreign key into
///   Employers(EmployerID, Country, Revenue).
///
/// Should she join? This example builds the two tables, asks the
/// join-avoidance advisor, verifies the advice by training Naive Bayes
/// both ways, and finally runs the full pipeline traced — printing the
/// explain-style stage tree and writing a Chrome trace_event JSON file
/// (quickstart_trace.json, loadable in chrome://tracing).
///
/// Run: ./example_quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "analytics/pipeline.h"
#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/synth_common.h"
#include "ml/eval.h"
#include "ml/naive_bayes.h"
#include "obs/report.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- Build the normalized dataset: many customers per employer. ---
  SynthDatasetSpec spec;
  spec.name = "Churn";
  spec.entity_name = "Customers";
  spec.pk_name = "CustomerID";
  spec.target_name = "Churn";
  spec.num_classes = 2;
  spec.n_s = 20000;
  spec.metric = ErrorMetric::kZeroOne;
  spec.label_noise = 0.3;
  spec.s_features = {
      {SynthFeatureSpec::Noise("Gender", 2), 0.0},
      {SynthFeatureSpec::Noise("Age", 8, /*numeric=*/true), 0.4},
  };
  SynthAttributeTableSpec employers;
  employers.table_name = "Employers";
  employers.pk_name = "EmployerID";
  employers.fk_name = "EmployerID";
  employers.num_rows = 400;  // 20000 customers / 400 employers: TR = 25.
  employers.latent_cardinality = 8;
  employers.target_weight = 1.0;  // Rich-company employees rarely churn.
  employers.features = {
      SynthFeatureSpec::Signal("Country", 30, 0.5),
      SynthFeatureSpec::Signal("Revenue", 8, 0.8, /*numeric=*/true),
  };
  spec.tables = {employers};

  auto dataset = GenerateSyntheticDataset(spec, /*scale=*/1.0, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // --- Ask the advisor: is the Employers join safe to avoid? ---
  auto plan = AdviseJoins(*dataset);
  if (!plan.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", JoinPlanToString(*plan).c_str());

  // --- Verify the advice empirically: train NB on both designs. ---
  auto evaluate = [&](const Table& table, const char* label) -> int {
    auto encoded = EncodedDataset::FromTableAuto(table);
    if (!encoded.ok()) return 1;
    Rng rng(seed);
    HoldoutSplit split = MakeHoldoutSplit(encoded->num_rows(), rng);
    auto err = TrainAndScore(MakeNaiveBayesFactory(), *encoded, split.train,
                             split.test, encoded->AllFeatureIndices(),
                             ErrorMetric::kZeroOne);
    if (!err.ok()) return 1;
    std::printf("  %-28s zero-one test error = %.4f  (%u features)\n",
                label, *err, encoded->num_features());
    return 0;
  };

  auto joined = dataset->JoinAll();
  auto avoided = dataset->JoinSubset({});
  if (!joined.ok() || !avoided.ok()) {
    std::fprintf(stderr, "join failed\n");
    return 1;
  }
  std::printf("Empirical check:\n");
  int rc = evaluate(*joined, "JoinAll (Customers + X_R):");
  rc |= evaluate(*avoided, "NoJoin (FK as representative):");
  std::printf(
      "\nWith TR = 25 >= tau = 20 the advisor avoids the join, and the two "
      "errors above should agree closely.\n");

  // --- The same decision inside the declarative pipeline, traced. ---
  PipelineConfig config;
  config.trace = true;
  config.seed = seed;
  auto report = RunPipeline(*dataset, config);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTraced pipeline run:\n%s\n\n%s",
              report->Summary().c_str(), report->ExplainTree().c_str());

  // The tree should account for (almost) all of the pipeline's wall
  // clock: depth-1 stage totals must sum close to the root span.
  double child_seconds = 0.0;
  for (const auto& stage : report->trace_summary.stages) {
    if (stage.depth == 1) child_seconds += stage.total_seconds;
  }
  const double wall_seconds = report->trace_summary.StageSeconds("pipeline");
  std::printf("\nStage coverage: %.4fs of %.4fs traced (%.1f%%)\n",
              child_seconds, wall_seconds,
              wall_seconds > 0.0 ? 100.0 * child_seconds / wall_seconds
                                 : 0.0);

  auto write = obs::WriteChromeTraceFile(report->trace,
                                         "quickstart_trace.json");
  if (!write.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 write.ToString().c_str());
    return 1;
  }
  std::printf(
      "Wrote quickstart_trace.json — load it in chrome://tracing or "
      "https://ui.perfetto.dev\n");
  return rc;
}
