/// The recommender-style workflow the paper's intro motivates: ratings in
/// an entity table, movies and users in attribute tables, and an analyst
/// deciding which joins are worth performing before feature selection.
///
/// Uses the built-in MovieLens1M synthesizer (schema-accurate to the
/// paper's Figure 6) and walks the complete JoinOpt path: advisor ->
/// partial join -> feature selection -> holdout evaluation, then compares
/// against JoinAll and the FK-dropping anti-pattern of Figure 8(C).
///
/// Run: ./example_movielens_workflow [scale] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  auto ds = MakeDataset("MovieLens1M", scale, seed);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("MovieLens1M (synthesized): %u ratings, %u movies, %u users\n\n",
              ds->entity().num_rows(),
              ds->attribute_tables()[0].num_rows(),
              ds->attribute_tables()[1].num_rows());

  auto plan = AdviseJoins(*ds);
  if (!plan.ok()) {
    std::fprintf(stderr, "advisor failed\n");
    return 1;
  }
  std::printf("%s\n", JoinPlanToString(*plan).c_str());

  // Three designs: JoinAll, JoinOpt (per advisor), JoinAllNoFK.
  std::vector<std::string> all_fks = {"MovieID", "UserID"};
  auto run_design = [&](const std::vector<std::string>& fks, bool drop_fks,
                        FsMethod method) -> Result<FsRunReport> {
    HAMLET_ASSIGN_OR_RETURN(Table table, ds->JoinSubset(fks));
    HAMLET_ASSIGN_OR_RETURN(EncodedDataset data,
                            EncodedDataset::FromTableAuto(table));
    std::vector<uint32_t> candidates;
    for (uint32_t j = 0; j < data.num_features(); ++j) {
      if (drop_fks && (data.meta(j).name == "MovieID" ||
                       data.meta(j).name == "UserID")) {
        continue;
      }
      candidates.push_back(j);
    }
    Rng rng(seed + 1);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
    auto selector = MakeSelector(method);
    return RunFeatureSelection(*selector, data, split,
                               MakeNaiveBayesFactory(), ErrorMetric::kRmse,
                               candidates);
  };

  TablePrinter table({"Design", "Method", "RMSE", "FS time (ms)",
                      "Selected features"});
  struct Design {
    const char* label;
    const std::vector<std::string>* fks;
    bool drop_fks;
  };
  std::vector<std::string> no_joins;
  Design designs[] = {{"JoinAll", &all_fks, false},
                      {"JoinOpt", &plan->fks_to_join, false},
                      {"JoinAllNoFK", &all_fks, true}};
  for (const Design& d : designs) {
    for (FsMethod method :
         {FsMethod::kForwardSelection, FsMethod::kMiFilter}) {
      auto report = run_design(*d.fks, d.drop_fks, method);
      if (!report.ok()) {
        std::fprintf(stderr, "design %s failed: %s\n", d.label,
                     report.status().ToString().c_str());
        return 1;
      }
      table.AddRow({d.label, FsMethodToString(method),
                    StringFormat("%.4f", report->holdout_test_error),
                    StringFormat("%.1f", report->runtime_seconds * 1e3),
                    JoinStrings(report->selected_names, ", ")});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected picture (paper Figures 7/8): JoinOpt avoids both joins "
      "yet matches JoinAll at a fraction of the cost; dropping the FKs "
      "instead (JoinAllNoFK) visibly hurts RMSE.\n");
  return 0;
}
