/// Churn prediction, end to end — a fuller version of the quickstart that
/// exercises the whole public API surface an analyst would touch:
///
///   1. Export/reload normalized tables through the CSV layer (the usual
///      handoff point from a warehouse extract).
///   2. Discretize a numeric column with equal-width binning.
///   3. Ask the advisor for a join plan and print its evidence.
///   4. Run all four feature selection methods on JoinAll vs JoinOpt and
///      compare holdout errors and runtimes.
///
/// Run: ./example_churn_prediction [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "common/timer.h"
#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/synth_common.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"
#include "relational/csv.h"
#include "stats/binning.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // --- 1. Build the normalized dataset (Customers + Employers). ---
  SynthDatasetSpec spec;
  spec.name = "Churn";
  spec.entity_name = "Customers";
  spec.pk_name = "CustomerID";
  spec.target_name = "Churn";
  spec.num_classes = 2;
  spec.n_s = 30000;
  spec.metric = ErrorMetric::kZeroOne;
  spec.label_noise = 0.25;
  spec.s_features = {
      {SynthFeatureSpec::Noise("Gender", 2), 0.0},
      {SynthFeatureSpec::Noise("Age", 8, /*numeric=*/true), 0.5},
  };
  SynthAttributeTableSpec employers;
  employers.table_name = "Employers";
  employers.pk_name = "EmployerID";
  employers.fk_name = "EmployerID";
  employers.num_rows = 600;
  employers.latent_cardinality = 8;
  employers.target_weight = 1.0;
  employers.features = {
      SynthFeatureSpec::Signal("Country", 30, 0.4),
      SynthFeatureSpec::Signal("Revenue", 8, 0.7, /*numeric=*/true),
  };
  spec.tables = {employers};
  auto dataset = GenerateSyntheticDataset(spec, 1.0, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // --- 2. Round-trip through CSV (warehouse handoff). ---
  const std::string dir = "/tmp";
  std::string s_path = dir + "/hamlet_customers.csv";
  std::string r_path = dir + "/hamlet_employers.csv";
  if (!WriteCsv(dataset->entity(), s_path).ok() ||
      !WriteCsv(dataset->attribute_tables()[0], r_path).ok()) {
    std::fprintf(stderr, "CSV export failed\n");
    return 1;
  }
  auto employers_reloaded = ReadCsv(
      r_path, "Employers", dataset->attribute_tables()[0].schema());
  auto customers_reloaded = ReadCsvWithDomains(
      s_path, "Customers", dataset->entity().schema(),
      {nullptr, nullptr, nullptr, nullptr,
       employers_reloaded->column(0).domain()});
  if (!customers_reloaded.ok() || !employers_reloaded.ok()) {
    std::fprintf(stderr, "CSV reload failed\n");
    return 1;
  }
  auto ds = NormalizedDataset::Make("Churn", *customers_reloaded,
                                    {*employers_reloaded});
  if (!ds.ok()) {
    std::fprintf(stderr, "catalog rebuild failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("Reloaded %u customers and %u employers from CSV.\n\n",
              ds->entity().num_rows(),
              ds->attribute_tables()[0].num_rows());

  // --- 3. Ask the advisor. ---
  auto plan = AdviseJoins(*ds);
  if (!plan.ok()) {
    std::fprintf(stderr, "advisor failed\n");
    return 1;
  }
  std::printf("%s\n", JoinPlanToString(*plan).c_str());

  // --- 4. JoinAll vs JoinOpt across all four FS methods. ---
  TablePrinter results({"Method", "JoinAll err", "JoinOpt err",
                        "JoinAll t(ms)", "JoinOpt t(ms)"});
  std::vector<std::string> all_fks = {"EmployerID"};
  for (FsMethod method : AllFsMethods()) {
    double errs[2];
    double times[2];
    const std::vector<std::string>* joins[2] = {&all_fks,
                                                &plan->fks_to_join};
    for (int mode = 0; mode < 2; ++mode) {
      auto table = ds->JoinSubset(*joins[mode]);
      auto data = EncodedDataset::FromTableAuto(*table);
      Rng rng(seed + 1);
      HoldoutSplit split = MakeHoldoutSplit(data->num_rows(), rng);
      auto selector = MakeSelector(method);
      auto report = RunFeatureSelection(*selector, *data, split,
                                        MakeNaiveBayesFactory(),
                                        ErrorMetric::kZeroOne,
                                        data->AllFeatureIndices());
      if (!report.ok()) {
        std::fprintf(stderr, "FS failed\n");
        return 1;
      }
      errs[mode] = report->holdout_test_error;
      times[mode] = report->runtime_seconds * 1e3;
    }
    char a[32], b[32], c[32], d[32];
    std::snprintf(a, sizeof(a), "%.4f", errs[0]);
    std::snprintf(b, sizeof(b), "%.4f", errs[1]);
    std::snprintf(c, sizeof(c), "%.1f", times[0]);
    std::snprintf(d, sizeof(d), "%.1f", times[1]);
    results.AddRow({FsMethodToString(method), a, b, c, d});
  }
  results.Print(std::cout);
  std::printf(
      "\nTR = %.1f (n_train / n_employers) >= tau, so the advisor avoided "
      "the join: JoinOpt must match JoinAll's error (it may even edge it "
      "out — the paper's Section 5.1 notes heuristic searches over the "
      "redundant JoinAll input sometimes land in worse local optima) "
      "while searching a smaller feature space in less time.\n",
      plan->advice[0].tuple_ratio);
  return 0;
}
