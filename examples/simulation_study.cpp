/// A compact version of the paper's Section 4 simulation study, for
/// readers who want to *see* the bias/variance dichotomy and how the
/// decision-rule thresholds fall out of it.
///
/// Sweeps |D_FK| at fixed n_S in the lone-X_r scenario, prints the
/// Domingos decomposition for UseAll vs NoJoin, and annotates each row
/// with the worst-case ROR, the tuple ratio, and what the paper-threshold
/// rules would decide.
///
/// Run: ./example_simulation_study [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/decision_rules.h"
#include "sim/monte_carlo.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  MonteCarloOptions mc;
  mc.num_training_sets = 100;
  mc.num_repeats = 10;
  mc.seed = seed;

  RuleThresholds thresholds = ThresholdsForTolerance(0.001);
  std::printf(
      "Lone-X_r scenario, n_S = 1000, p = 0.1. Sweeping |D_FK|.\n"
      "Rules at tolerance 0.001: avoid iff TR >= %.0f or ROR <= %.1f.\n\n",
      thresholds.tau, thresholds.rho);

  TablePrinter table({"|D_FK|", "TR", "ROR", "TR rule", "UseAll err",
                      "NoJoin err", "NoJoin bias", "NoJoin netvar",
                      "noise"});
  for (uint32_t n_r : {10u, 25u, 50u, 100u, 200u, 400u, 800u}) {
    SimConfig config;
    config.scenario = TrueDistribution::kLoneXr;
    config.n_s = 1000;
    config.d_s = 4;
    config.d_r = 4;
    config.n_r = n_r;
    config.p = 0.1;

    auto result = RunMonteCarlo(config, mc);
    if (!result.ok()) {
      std::fprintf(stderr, "Monte Carlo failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double tr = TupleRatioForSimConfig(config);
    double ror = RorForSimConfig(config);
    table.AddRow({std::to_string(n_r), StringFormat("%.1f", tr),
                  StringFormat("%.2f", ror),
                  tr >= thresholds.tau ? "avoid" : "join",
                  StringFormat("%.4f", result->use_all.avg_test_error),
                  StringFormat("%.4f", result->no_join.avg_test_error),
                  StringFormat("%.4f", result->no_join.avg_bias),
                  StringFormat("%.4f", result->no_join.avg_net_variance),
                  StringFormat("%.4f", result->no_join.avg_noise)});
  }
  table.Print(std::cout);

  std::printf(
      "\nReading the table: UseAll stays at the noise floor (p = 0.1); "
      "NoJoin's error rises with |D_FK| and the rise is carried entirely "
      "by the net variance — the bias column stays flat. Exactly where "
      "the TR rule flips from 'avoid' to 'join' is where the NoJoin error "
      "starts to detach: the paper's thresholds are the safe boundary of "
      "this table.\n");
  return 0;
}
