/// Exports the seven synthesized evaluation datasets as CSV files — one
/// directory per dataset, one file per table — so they can be inspected,
/// diffed, or loaded into other tools. The files round-trip through the
/// library's own CSV reader (see tests/csv_test.cc).
///
/// Run: ./example_export_datasets [output_dir] [scale] [seed]
/// Default output directory: /tmp/hamlet_datasets

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "datasets/registry.h"
#include "relational/csv.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp/hamlet_datasets";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.01;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  uint64_t total_rows = 0;
  for (const std::string& name : AllDatasetNames()) {
    auto ds = MakeDataset(name, scale, seed);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: generation failed: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    std::string dir = out_dir + "/" + name;
    std::filesystem::create_directories(dir, ec);

    auto dump = [&](const Table& table) -> bool {
      std::string path = dir + "/" + table.name() + ".csv";
      Status st = WriteCsv(table, path);
      if (!st.ok()) {
        std::fprintf(stderr, "  %s: %s\n", path.c_str(),
                     st.ToString().c_str());
        return false;
      }
      std::printf("  %-28s %8u rows x %2u cols\n", path.c_str(),
                  table.num_rows(), table.num_columns());
      total_rows += table.num_rows();
      return true;
    };

    std::printf("%s:\n", name.c_str());
    if (!dump(ds->entity())) return 1;
    for (const Table& r : ds->attribute_tables()) {
      if (!dump(r)) return 1;
    }
  }
  std::printf(
      "\nExported %llu rows at scale %.3g (tuple ratios match the paper's "
      "Figure 6 at every scale).\n",
      static_cast<unsigned long long>(total_rows), scale);
  return 0;
}
