/// Beyond star schemas (Appendix C): an analyst receives one wide,
/// already-denormalized table — no foreign keys in sight — but the data
/// still hides functional dependencies (city -> state -> region, plan ->
/// plan family). Corollary C.1 says dependent features are redundant;
/// the generalized advisor prunes them with the same TR/ROR machinery
/// the KFK rules use.
///
///   1. Synthesize a wide table with two FD chains.
///   2. Discover the unary FDs from the instance (exactly).
///   3. Build the acyclic FD set and get the Corollary C.1 redundant set.
///   4. Apply AdviseFeatureDrops and verify with feature selection that
///      the pruned feature set loses nothing.
///
/// Run: ./example_denormalized_fds [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/generalized_avoidance.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"
#include "relational/functional_deps.h"

using namespace hamlet;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 33;
  Rng rng(seed);

  // --- 1. A wide table: City -> State -> Region; Plan -> Family. ---
  const uint32_t n = 20000, n_cities = 120, n_plans = 24;
  Schema schema({ColumnSpec::Target("Churn"), ColumnSpec::Feature("City"),
                 ColumnSpec::Feature("State"),
                 ColumnSpec::Feature("Region"),
                 ColumnSpec::Feature("Plan"),
                 ColumnSpec::Feature("PlanFamily"),
                 ColumnSpec::Feature("Tenure")});
  TableBuilder builder("Wide", schema,
                       {Domain::Dense(2, "y"), Domain::Dense(n_cities, "c"),
                        Domain::Dense(12, "s"), Domain::Dense(4, "r"),
                        Domain::Dense(n_plans, "p"), Domain::Dense(4, "f"),
                        Domain::Dense(6, "t")});
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t city = rng.Uniform(n_cities);
    uint32_t state = city % 12;       // FD City -> State.
    uint32_t region = state % 4;      // FD State -> Region.
    uint32_t plan = rng.Uniform(n_plans);
    uint32_t family = plan % 4;       // FD Plan -> PlanFamily.
    uint32_t tenure = rng.Uniform(6);
    // Churn depends on the region and the plan family (plus noise).
    double p1 = 0.15 + 0.35 * (region % 2) + 0.3 * (family % 2);
    builder.AppendRowCodes({rng.Bernoulli(p1) ? 1u : 0u, city, state,
                            region, plan, family, tenure});
  }
  Table table = builder.Build();

  // --- 2. Exact unary FD discovery on the instance. ---
  auto discovered = DiscoverUnaryFds(table);
  std::printf("Discovered unary FDs (instance-exact):\n");
  for (const auto& fd : *discovered) {
    if (fd.determinants[0] == "Churn" || fd.dependents[0] == "Churn") {
      continue;  // Label dependencies are not schema structure.
    }
    std::printf("  %s -> %s\n", fd.determinants[0].c_str(),
                fd.dependents[0].c_str());
  }

  // --- 3. The canonical acyclic FD set + Corollary C.1. ---
  FdSet fds({"Churn", "City", "State", "Region", "Plan", "PlanFamily",
             "Tenure"});
  (void)fds.Add({{"City"}, {"State"}});
  (void)fds.Add({{"State"}, {"Region"}});
  (void)fds.Add({{"Plan"}, {"PlanFamily"}});
  std::printf("\nAcyclic: %s; Corollary C.1 redundant set: {%s}\n",
              fds.IsAcyclic() ? "yes" : "no",
              JoinStrings(fds.DependentAttributes(), ", ").c_str());

  // --- 4. Generalized avoidance + empirical verification. ---
  const std::vector<std::string> candidates = {
      "City", "State", "Region", "Plan", "PlanFamily", "Tenure"};
  auto plan = AdviseFeatureDrops(table, fds, candidates);
  if (!plan.ok()) {
    std::fprintf(stderr, "advice failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  TablePrinter advice({"FD", "distinct(det)", "TR", "ROR", "Drop deps?"});
  for (const FdAdvice& a : plan->advice) {
    advice.AddRow({a.fd.determinants[0] + " -> " +
                       JoinStrings(a.fd.dependents, ","),
                   std::to_string(a.determinant_distinct),
                   StringFormat("%.1f", a.tuple_ratio),
                   StringFormat("%.2f", a.ror),
                   a.safe_to_drop_dependents ? "yes" : "no"});
  }
  advice.Print(std::cout);
  std::printf("Pruned feature set: {%s}\n",
              JoinStrings(plan->keep, ", ").c_str());

  auto evaluate = [&](const std::vector<std::string>& features) {
    auto data = *EncodedDataset::FromTable(table, "Churn", features);
    Rng split_rng(seed + 1);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), split_rng);
    auto selector = MakeSelector(FsMethod::kForwardSelection);
    auto report = *RunFeatureSelection(*selector, data, split,
                                       MakeNaiveBayesFactory(),
                                       ErrorMetric::kZeroOne,
                                       data.AllFeatureIndices());
    return report.holdout_test_error;
  };
  std::printf(
      "\nForward-selection holdout error: all features = %.4f, pruned = "
      "%.4f\n(the dependents were redundant — Corollary C.1 — and the "
      "determinants' tuple ratios said dropping them was variance-safe "
      "too).\n",
      evaluate(candidates), evaluate(plan->keep));
  return 0;
}
