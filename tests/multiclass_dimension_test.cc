#include "theory/multiclass_dimension.h"

#include <gtest/gtest.h>

#include "core/ror.h"

namespace hamlet {
namespace {

TEST(MulticlassDimensionTest, GrowsWithClassesAndDims) {
  double base = MulticlassDimensionBound(10, 2);
  EXPECT_GT(MulticlassDimensionBound(10, 5), base);
  EXPECT_GT(MulticlassDimensionBound(100, 2), base);
}

TEST(MulticlassDimensionTest, DominatesBinaryVcDimension) {
  // The bound is intentionally conservative: for K = 2 it already
  // exceeds the binary VC dimension v = dims.
  for (uint64_t dims : {2ull, 10ull, 100ull, 1000ull}) {
    EXPECT_GT(MulticlassDimensionBound(dims, 2),
              static_cast<double>(dims));
  }
}

TEST(MulticlassDimensionTest, LogLinearShape) {
  // dim(VK) / (VK) grows like log2(VK): doubling VK slightly more than
  // doubles the bound.
  double d1 = MulticlassDimensionBound(64, 4);
  double d2 = MulticlassDimensionBound(128, 4);
  EXPECT_GT(d2, 2.0 * d1);
  EXPECT_LT(d2, 2.5 * d1);
}

TEST(MulticlassRorTest, StricterThanBinaryRor) {
  // Section 4.2: the multiclass-capacity ROR should make avoidance
  // *harder*, never easier, than the binary rule — conservatism.
  RorInputs in;
  in.n_train = 100000;
  in.fk_domain_size = 300;
  in.min_foreign_domain_size = 4;
  in.delta = 0.1;
  double binary = WorstCaseRor(in);
  for (uint32_t k : {2u, 5u, 7u}) {
    double multi = MulticlassWorstCaseRor(in.n_train, in.fk_domain_size,
                                          in.min_foreign_domain_size, k,
                                          in.delta);
    EXPECT_GT(multi, binary) << "K = " << k;
  }
}

TEST(MulticlassRorTest, MonotoneInClasses) {
  double prev = 0.0;
  for (uint32_t k : {2u, 3u, 5u, 7u}) {
    double ror = MulticlassWorstCaseRor(100000, 300, 4, k);
    EXPECT_GT(ror, prev);
    prev = ror;
  }
}

TEST(MulticlassRorTest, ZeroWhenDomainsEqual) {
  EXPECT_NEAR(MulticlassWorstCaseRor(10000, 50, 50, 5), 0.0, 1e-12);
}

TEST(MulticlassRorTest, NonNegative) {
  EXPECT_GE(MulticlassWorstCaseRor(1000, 900, 2, 7), 0.0);
}

TEST(MulticlassDimensionDeathTest, BadInputsAbort) {
  EXPECT_DEATH((void)MulticlassDimensionBound(0, 3), "dims");
  EXPECT_DEATH((void)MulticlassDimensionBound(5, 1), "K");
}

}  // namespace
}  // namespace hamlet
