#include "stats/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hamlet {
namespace {

TEST(ZeroOneErrorTest, AllCorrectIsZero) {
  EXPECT_EQ(ZeroOneError({0, 1, 2}, {0, 1, 2}), 0.0);
}

TEST(ZeroOneErrorTest, AllWrongIsOne) {
  EXPECT_EQ(ZeroOneError({0, 0}, {1, 1}), 1.0);
}

TEST(ZeroOneErrorTest, Fractional) {
  EXPECT_DOUBLE_EQ(ZeroOneError({0, 1, 1, 0}, {0, 1, 0, 1}), 0.5);
}

TEST(ZeroOneErrorTest, EmptyIsZero) {
  EXPECT_EQ(ZeroOneError({}, {}), 0.0);
}

TEST(RmseTest, PerfectIsZero) {
  EXPECT_EQ(RootMeanSquaredError({2, 3}, {2, 3}), 0.0);
}

TEST(RmseTest, OffByOneEverywhere) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({1, 2, 3}, {2, 3, 4}), 1.0);
}

TEST(RmseTest, MixedDistances) {
  // Squared errors: 4, 0 -> mean 2 -> sqrt(2).
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 1}, {2, 1}), std::sqrt(2.0));
}

TEST(RmseTest, CustomClassValues) {
  // Classes valued 1..5 (star ratings); code distance 1 = value gap 1.
  std::vector<double> stars = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 4}, {1, 4}, stars),
                   std::sqrt(0.5));
}

TEST(RmseTest, ShiftedClassValuesMatchDefault) {
  // RMSE is shift-invariant in the class values.
  std::vector<double> shifted = {10, 11, 12};
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 2}, {1, 1}, shifted),
                   RootMeanSquaredError({0, 2}, {1, 1}));
}

TEST(RmseTest, EmptyIsZero) {
  EXPECT_EQ(RootMeanSquaredError({}, {}), 0.0);
}

TEST(MetricDispatchTest, ComputeErrorMatchesDirectCalls) {
  std::vector<uint32_t> t = {0, 1, 2, 1};
  std::vector<uint32_t> p = {0, 2, 2, 0};
  EXPECT_DOUBLE_EQ(ComputeError(ErrorMetric::kZeroOne, t, p),
                   ZeroOneError(t, p));
  EXPECT_DOUBLE_EQ(ComputeError(ErrorMetric::kRmse, t, p),
                   RootMeanSquaredError(t, p));
}

TEST(MetricDispatchTest, Names) {
  EXPECT_STREQ(ErrorMetricToString(ErrorMetric::kZeroOne), "zero-one");
  EXPECT_STREQ(ErrorMetricToString(ErrorMetric::kRmse), "RMSE");
}

TEST(MetricsDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH((void)ZeroOneError({0}, {0, 1}), "length");
}

}  // namespace
}  // namespace hamlet
