#include "relational/table_stats.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

Table MakeProfiled() {
  Schema schema({ColumnSpec::PrimaryKey("ID"),
                 ColumnSpec::Feature("Color"),
                 ColumnSpec::Feature("Size")});
  auto color = std::make_shared<Domain>(
      std::vector<std::string>{"red", "green", "blue"});
  auto size = std::make_shared<Domain>(
      std::vector<std::string>{"s", "m", "l", "xl"});
  TableBuilder b("T", schema, {Domain::Dense(4, "r"), color, size});
  b.AppendRowCodes({0, 0, 1});
  b.AppendRowCodes({1, 0, 1});
  b.AppendRowCodes({2, 0, 2});
  b.AppendRowCodes({3, 1, 1});
  return b.Build();
}

TEST(TableStatsTest, ProfilesEveryColumn) {
  TableStats stats = ComputeTableStats(MakeProfiled());
  EXPECT_EQ(stats.table_name, "T");
  EXPECT_EQ(stats.num_rows, 4u);
  ASSERT_EQ(stats.columns.size(), 3u);
}

TEST(TableStatsTest, DomainVsObservedDistinct) {
  TableStats stats = ComputeTableStats(MakeProfiled());
  const ColumnStats* color = stats.Find("Color");
  ASSERT_NE(color, nullptr);
  EXPECT_EQ(color->domain_size, 3u);       // blue never occurs...
  EXPECT_EQ(color->distinct_observed, 2u);  // ...but red/green do.
  const ColumnStats* id = stats.Find("ID");
  EXPECT_EQ(id->distinct_observed, 4u);     // Primary key: all distinct.
}

TEST(TableStatsTest, EntropyAndTopShare) {
  TableStats stats = ComputeTableStats(MakeProfiled());
  const ColumnStats* color = stats.Find("Color");
  // Color counts: red 3, green 1 -> H(3/4, 1/4) = 0.811 bits.
  EXPECT_NEAR(color->entropy_bits, 0.8113, 1e-3);
  EXPECT_EQ(color->top_label, "red");
  EXPECT_DOUBLE_EQ(color->top_share, 0.75);
  // The primary key is uniform: H = log2(4) = 2 bits.
  EXPECT_NEAR(stats.Find("ID")->entropy_bits, 2.0, 1e-12);
}

TEST(TableStatsTest, FindMissingIsNull) {
  EXPECT_EQ(ComputeTableStats(MakeProfiled()).Find("Nope"), nullptr);
}

TEST(TableStatsTest, RenderingMentionsColumns) {
  std::string s = ComputeTableStats(MakeProfiled()).ToString();
  EXPECT_NE(s.find("Color"), std::string::npos);
  EXPECT_NE(s.find("primary_key"), std::string::npos);
  EXPECT_NE(s.find("4 rows"), std::string::npos);
}

TEST(TableStatsTest, ToCandidateStatsUsesSmallestFeatureDomain) {
  auto cand = ToCandidateStats(MakeProfiled(), "TID");
  ASSERT_TRUE(cand.ok());
  EXPECT_EQ(cand->fk_column, "TID");
  EXPECT_EQ(cand->table_name, "T");
  EXPECT_EQ(cand->num_rows, 4u);
  EXPECT_EQ(cand->min_feature_domain, 3u);  // min(|Color|=3, |Size|=4).
  EXPECT_TRUE(cand->closed_domain);
}

TEST(TableStatsTest, ToCandidateStatsFeedsAdvisor) {
  auto cand = *ToCandidateStats(MakeProfiled(), "TID");
  auto plan = AdviseJoinsFromStats(400, 1.0, {cand});
  ASSERT_TRUE(plan.ok());
  // TR = 400 / 4 = 100: avoid.
  EXPECT_EQ(plan->fks_avoided, (std::vector<std::string>{"TID"}));
}

TEST(TableStatsTest, FeaturelessTableRejected) {
  Schema schema({ColumnSpec::PrimaryKey("ID")});
  TableBuilder b("KeysOnly", schema, {Domain::Dense(2, "k")});
  b.AppendRowCodes({0});
  b.AppendRowCodes({1});
  EXPECT_FALSE(ToCandidateStats(b.Build(), "FK").ok());
}

TEST(TableStatsTest, EmptyTable) {
  Schema schema({ColumnSpec::Feature("F")});
  TableBuilder b("Empty", schema);
  TableStats stats = ComputeTableStats(b.Build());
  EXPECT_EQ(stats.num_rows, 0u);
  EXPECT_EQ(stats.columns[0].entropy_bits, 0.0);
  EXPECT_EQ(stats.columns[0].top_share, 0.0);
}

}  // namespace
}  // namespace hamlet
