#include "relational/table.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

Table MakeEmployers() {
  Schema schema({ColumnSpec::PrimaryKey("EmployerID"),
                 ColumnSpec::Feature("Country"),
                 ColumnSpec::Feature("Revenue")});
  TableBuilder builder("Employers", schema);
  EXPECT_TRUE(builder.AppendRowLabels({"e0", "US", "high"}).ok());
  EXPECT_TRUE(builder.AppendRowLabels({"e1", "IN", "low"}).ok());
  EXPECT_TRUE(builder.AppendRowLabels({"e2", "US", "low"}).ok());
  return builder.Build();
}

TEST(TableTest, BasicShape) {
  Table t = MakeEmployers();
  EXPECT_EQ(t.name(), "Employers");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
}

TEST(TableTest, ColumnByName) {
  Table t = MakeEmployers();
  auto col = t.ColumnByName("Country");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->label(1), "IN");
  EXPECT_FALSE(t.ColumnByName("Missing").ok());
}

TEST(TableTest, ProjectByName) {
  Table t = MakeEmployers();
  auto p = t.Project({"Revenue", "EmployerID"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2u);
  EXPECT_EQ(p->schema().column(0).name, "Revenue");
  EXPECT_EQ(p->num_rows(), 3u);
}

TEST(TableTest, ProjectMissingColumnFails) {
  EXPECT_FALSE(MakeEmployers().Project({"Nope"}).ok());
}

TEST(TableTest, GatherRows) {
  Table t = MakeEmployers();
  Table g = t.GatherRows({2, 0});
  EXPECT_EQ(g.num_rows(), 2u);
  EXPECT_EQ((*g.ColumnByName("EmployerID"))->label(0), "e2");
  EXPECT_EQ((*g.ColumnByName("EmployerID"))->label(1), "e0");
}

TEST(TableTest, ValidatePasses) {
  EXPECT_TRUE(MakeEmployers().Validate().ok());
}

TEST(TableTest, UniquePrimaryKeyDetected) {
  EXPECT_TRUE(MakeEmployers().HasUniquePrimaryKey());
}

TEST(TableTest, DuplicatePrimaryKeyDetected) {
  Schema schema({ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("F")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"k", "a"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"k", "b"}).ok());
  Table t = builder.Build();
  EXPECT_FALSE(t.HasUniquePrimaryKey());
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, GatherBreaksPkUniqueness) {
  Table t = MakeEmployers().GatherRows({0, 0});
  EXPECT_FALSE(t.HasUniquePrimaryKey());
}

TEST(TableBuilderTest, RowCountTracked) {
  Schema schema({ColumnSpec::Feature("F")});
  TableBuilder builder("T", schema);
  EXPECT_EQ(builder.num_rows(), 0u);
  ASSERT_TRUE(builder.AppendRowLabels({"x"}).ok());
  EXPECT_EQ(builder.num_rows(), 1u);
}

TEST(TableBuilderTest, WrongArityRejected) {
  Schema schema({ColumnSpec::Feature("F"), ColumnSpec::Feature("G")});
  TableBuilder builder("T", schema);
  EXPECT_EQ(builder.AppendRowLabels({"only one"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.num_rows(), 0u);
}

TEST(TableBuilderTest, FixedDomainRejectsUnknownLabels) {
  Schema schema({ColumnSpec::Feature("F")});
  auto closed = std::make_shared<Domain>(std::vector<std::string>{"a", "b"});
  TableBuilder builder("T", schema, {closed});
  EXPECT_TRUE(builder.AppendRowLabels({"a"}).ok());
  Status st = builder.AppendRowLabels({"z"});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The failed append must not have grown anything.
  EXPECT_EQ(builder.num_rows(), 1u);
  EXPECT_EQ(closed->size(), 2u);
}

TEST(TableBuilderTest, FailedMixedRowLeavesBuilderConsistent) {
  Schema schema({ColumnSpec::Feature("F"), ColumnSpec::Feature("G")});
  auto closed = std::make_shared<Domain>(std::vector<std::string>{"a"});
  TableBuilder builder("T", schema, {nullptr, closed});
  // First column's label would be new; second is invalid. Neither column
  // may be mutated.
  EXPECT_FALSE(builder.AppendRowLabels({"fresh", "bad"}).ok());
  EXPECT_TRUE(builder.AppendRowLabels({"fresh2", "a"}).ok());
  Table t = builder.Build();
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TableBuilderTest, AppendRowCodes) {
  Schema schema({ColumnSpec::Feature("F")});
  auto domain = std::make_shared<Domain>(std::vector<std::string>{"a", "b"});
  TableBuilder builder("T", schema, {domain});
  builder.AppendRowCodes({1});
  builder.AppendRowCodes({0});
  Table t = builder.Build();
  EXPECT_EQ(t.column(0).label(0), "b");
  EXPECT_EQ(t.column(0).label(1), "a");
}

TEST(TableBuilderTest, SharedDomainIsShared) {
  Schema schema({ColumnSpec::Feature("F")});
  auto domain = std::make_shared<Domain>(std::vector<std::string>{"a"});
  TableBuilder builder("T", schema, {domain});
  ASSERT_TRUE(builder.AppendRowLabels({"a"}).ok());
  Table t = builder.Build();
  EXPECT_EQ(t.column(0).domain(), domain);
}

TEST(TableDeathTest, SchemaColumnMismatchAborts) {
  Schema schema({ColumnSpec::Feature("F"), ColumnSpec::Feature("G")});
  std::vector<Column> one_col(1);
  EXPECT_DEATH(Table("T", schema, std::move(one_col)), "columns");
}

TEST(TableDeathTest, RaggedColumnsAbort) {
  Schema schema({ColumnSpec::Feature("F"), ColumnSpec::Feature("G")});
  auto d = std::make_shared<Domain>(std::vector<std::string>{"a"});
  std::vector<Column> cols;
  cols.emplace_back(std::vector<uint32_t>{0, 0}, d);
  cols.emplace_back(std::vector<uint32_t>{0}, d);
  EXPECT_DEATH(Table("T", schema, std::move(cols)), "length");
}

}  // namespace
}  // namespace hamlet
