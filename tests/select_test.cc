#include "relational/select.h"

#include <gtest/gtest.h>

#include "hamlet.h"  // Also verifies the umbrella header compiles.

namespace hamlet {
namespace {

Table MakeTable() {
  Schema schema({ColumnSpec::Target("Y"), ColumnSpec::Feature("Color")});
  TableBuilder b("T", schema);
  EXPECT_TRUE(b.AppendRowLabels({"0", "red"}).ok());
  EXPECT_TRUE(b.AppendRowLabels({"1", "blue"}).ok());
  EXPECT_TRUE(b.AppendRowLabels({"0", "red"}).ok());
  EXPECT_TRUE(b.AppendRowLabels({"1", "red"}).ok());
  EXPECT_TRUE(b.AppendRowLabels({"0", "green"}).ok());
  return b.Build();
}

TEST(SelectTest, EqualMatchesAllOccurrences) {
  auto t = SelectRowsEqual(MakeTable(), "Color", "red");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3u);
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_EQ(t->column(1).label(r), "red");
  }
}

TEST(SelectTest, PreservesRowOrderAndOtherColumns) {
  auto t = *SelectRowsEqual(MakeTable(), "Color", "red");
  EXPECT_EQ(t.column(0).label(0), "0");
  EXPECT_EQ(t.column(0).label(1), "0");
  EXPECT_EQ(t.column(0).label(2), "1");
}

TEST(SelectTest, UnknownLabelYieldsEmptyTable) {
  auto t = *SelectRowsEqual(MakeTable(), "Color", "purple");
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 2u);  // Schema intact.
}

TEST(SelectTest, UnknownColumnErrors) {
  EXPECT_FALSE(SelectRowsEqual(MakeTable(), "Nope", "red").ok());
}

TEST(SelectTest, PredicateVariant) {
  Table t = MakeTable();
  uint32_t red = *t.column(1).domain()->Lookup("red");
  auto selected = *SelectRowsWhere(t, "Color",
                                   [red](uint32_t c) { return c != red; });
  EXPECT_EQ(selected.num_rows(), 2u);  // blue + green.
}

TEST(SelectTest, IndicesVariantIsZeroCopy) {
  auto rows = *SelectIndicesWhere(MakeTable(), "Y",
                                  [](uint32_t c) { return c == 1; });
  EXPECT_EQ(rows, (std::vector<uint32_t>{1, 3}));
}

TEST(SelectTest, SelectAll) {
  auto t = *SelectRowsWhere(MakeTable(), "Y",
                            [](uint32_t) { return true; });
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST(SelectTest, ComposesWithProjectAndJoinSemantics) {
  // sigma then pi: classic fragment.
  auto reds = *SelectRowsEqual(MakeTable(), "Color", "red");
  auto projected = reds.Project({"Y"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 1u);
  EXPECT_EQ(projected->num_rows(), 3u);
}

}  // namespace
}  // namespace hamlet
