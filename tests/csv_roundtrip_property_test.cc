/// Randomized CSV round-trip property: any table the library can build —
/// including labels with delimiters, quotes, and empty strings — must
/// survive WriteCsv -> ReadCsv bit-for-bit.

#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "relational/csv.h"

namespace hamlet {
namespace {

std::string RandomLabel(Rng& rng) {
  static const char* kAlphabet =
      "abcXYZ019 _-.,\"'\t;|\n\r"
      "\xC3\xA9";  // CSV specials (incl. newlines) and a UTF-8 byte pair.
  uint32_t len = rng.Uniform(10);
  std::string s;
  for (uint32_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.Uniform(22)]);
  }
  return s;
}

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomTablesSurvive) {
  Rng rng(GetParam());
  const uint32_t n_cols = 1 + rng.Uniform(5);
  const uint32_t n_rows = rng.Uniform(60);

  std::vector<ColumnSpec> specs;
  for (uint32_t c = 0; c < n_cols; ++c) {
    specs.push_back(ColumnSpec::Feature("col" + std::to_string(c)));
  }
  Schema schema(specs);
  TableBuilder builder("T", schema);
  for (uint32_t r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (uint32_t c = 0; c < n_cols; ++c) {
      // Everything round-trips via quoting, including embedded newlines:
      // the reader frames on the quoting state machine, not on lines.
      row.push_back(RandomLabel(rng));
    }
    ASSERT_TRUE(builder.AppendRowLabels(row).ok());
  }
  Table original = builder.Build();

  std::string path = ::testing::TempDir() + "/roundtrip_" +
                     std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  for (uint32_t num_threads : {1u, 4u}) {
    CsvOptions options;
    options.num_threads = num_threads;
    auto reread = ReadCsv(path, "T", schema, options);
    ASSERT_TRUE(reread.ok()) << reread.status();

    ASSERT_EQ(reread->num_rows(), original.num_rows());
    for (uint32_t c = 0; c < n_cols; ++c) {
      for (uint32_t r = 0; r < n_rows; ++r) {
        ASSERT_EQ(reread->column(c).label(r), original.column(c).label(r))
            << "cell (" << r << "," << c << ") seed " << GetParam()
            << " threads " << num_threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace hamlet
