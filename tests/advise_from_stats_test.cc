#include <gtest/gtest.h>

#include "core/advisor.h"
#include "datasets/registry.h"

namespace hamlet {
namespace {

CandidateTableStats Candidate(const char* fk, const char* table,
                              uint64_t rows, uint64_t q_star = 2,
                              bool closed = true) {
  CandidateTableStats s;
  s.fk_column = fk;
  s.table_name = table;
  s.num_rows = rows;
  s.min_feature_domain = q_star;
  s.closed_domain = closed;
  return s;
}

TEST(AdviseFromStatsTest, PureMetadataDecisions) {
  // The source-selection pitch: rule on tables that were never loaded.
  auto plan = AdviseJoinsFromStats(
      10000, /*label_entropy_bits=*/1.0,
      {Candidate("SmallID", "Small", 100),      // TR = 100: avoid.
       Candidate("BigID", "Big", 4000)});       // TR = 2.5: join.
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->fks_avoided, (std::vector<std::string>{"SmallID"}));
  EXPECT_EQ(plan->fks_to_join, (std::vector<std::string>{"BigID"}));
  EXPECT_EQ(plan->n_train, 10000u);
}

TEST(AdviseFromStatsTest, MatchesTableBackedAdvisorOnRealDatasets) {
  // Feeding the Figure 6 metadata by hand must reproduce the
  // table-backed advisor's plan exactly.
  for (const auto& name : {"Walmart", "Yelp", "Flights"}) {
    auto ds = *MakeDataset(name, 0.05, 11);
    auto table_plan = *AdviseJoins(ds);

    std::vector<CandidateTableStats> stats;
    for (const TableAdvice& a : table_plan.advice) {
      CandidateTableStats s;
      s.fk_column = a.fk_column;
      s.table_name = a.table_name;
      s.num_rows = a.n_r;
      s.min_feature_domain = a.min_foreign_domain;
      s.closed_domain = a.closed_domain;
      stats.push_back(s);
    }
    auto stats_plan = *AdviseJoinsFromStats(
        table_plan.n_train, table_plan.skew_guard.label_entropy_bits,
        stats);
    EXPECT_EQ(stats_plan.fks_avoided, table_plan.fks_avoided) << name;
    EXPECT_EQ(stats_plan.fks_to_join, table_plan.fks_to_join) << name;
    for (size_t i = 0; i < stats_plan.advice.size(); ++i) {
      EXPECT_DOUBLE_EQ(stats_plan.advice[i].ror,
                       table_plan.advice[i].ror)
          << name << " table " << i;
    }
  }
}

TEST(AdviseFromStatsTest, UnknownLabelDistributionNeverBlocks) {
  // Passing >= 1 bit (the "not yet known" convention) keeps the guard
  // out of the way.
  auto plan = *AdviseJoinsFromStats(10000, 1.0,
                                    {Candidate("A", "TA", 100)});
  EXPECT_TRUE(plan.skew_guard.passes);
  EXPECT_EQ(plan.fks_avoided.size(), 1u);
}

TEST(AdviseFromStatsTest, SkewGuardStillApplies) {
  auto plan = *AdviseJoinsFromStats(10000, /*label_entropy_bits=*/0.3,
                                    {Candidate("A", "TA", 100)});
  EXPECT_FALSE(plan.skew_guard.passes);
  EXPECT_TRUE(plan.fks_avoided.empty());
}

TEST(AdviseFromStatsTest, OpenDomainNeverAvoided) {
  auto plan = *AdviseJoinsFromStats(
      10000, 1.0, {Candidate("Ev", "Events", 10, 2, /*closed=*/false)});
  EXPECT_TRUE(plan.fks_avoided.empty());
  EXPECT_NE(plan.advice[0].rationale.find("open-domain"),
            std::string::npos);
}

TEST(AdviseFromStatsTest, BadInputsRejected) {
  EXPECT_FALSE(
      AdviseJoinsFromStats(0, 1.0, {Candidate("A", "TA", 10)}).ok());
  EXPECT_FALSE(
      AdviseJoinsFromStats(100, 1.0, {Candidate("A", "TA", 0)}).ok());
}

TEST(AdviseFromStatsTest, EmptyCandidateListIsValid) {
  auto plan = *AdviseJoinsFromStats(100, 1.0, {});
  EXPECT_TRUE(plan.advice.empty());
  EXPECT_TRUE(plan.fks_to_join.empty());
}

// --- model_capacity: the capacity-aware re-test's advisor knob. -----------

TEST(AdviseFromStatsTest, HighCapacityTightensBothThresholds) {
  AdvisorOptions options;  // tolerance 0.001: tau = 20, rho = 2.5.
  auto linear = *AdviseJoinsFromStats(10000, 1.0,
                                      {Candidate("A", "TA", 100)}, options);
  options.model_capacity = ModelCapacity::kHighCapacity;
  auto high = *AdviseJoinsFromStats(10000, 1.0,
                                    {Candidate("A", "TA", 100)}, options);
  // TR avoids iff TR >= tau, so tau goes UP; ROR avoids iff ROR <= rho,
  // so rho goes DOWN — both rules move in their conservative direction.
  EXPECT_EQ(high.thresholds.tau, linear.thresholds.tau * kHighCapacityScale);
  EXPECT_EQ(high.thresholds.rho, linear.thresholds.rho / kHighCapacityScale);
}

TEST(AdviseFromStatsTest, HighCapacityFlipsBorderlineTrVerdict) {
  // TR = 10000 / 400 = 25: avoidable at the linear tau = 20, but not at
  // the high-capacity tau = 40. A clearly redundant table (TR = 100)
  // stays avoided under both.
  AdvisorOptions options;
  auto linear = *AdviseJoinsFromStats(
      10000, 1.0,
      {Candidate("Borderline", "TB", 400), Candidate("Tiny", "TT", 100)},
      options);
  EXPECT_EQ(linear.fks_avoided,
            (std::vector<std::string>{"Borderline", "Tiny"}));

  options.model_capacity = ModelCapacity::kHighCapacity;
  auto high = *AdviseJoinsFromStats(
      10000, 1.0,
      {Candidate("Borderline", "TB", 400), Candidate("Tiny", "TT", 100)},
      options);
  EXPECT_EQ(high.fks_avoided, (std::vector<std::string>{"Tiny"}));
  EXPECT_EQ(high.fks_to_join, (std::vector<std::string>{"Borderline"}));
  // A high-capacity avoid verdict carries the honesty caveat from the
  // EXPERIMENTS.md capacity sweep; a linear-capacity one does not.
  EXPECT_NE(high.advice[1].rationale.find("conservative floor"),
            std::string::npos);
  EXPECT_EQ(linear.advice[1].rationale.find("conservative floor"),
            std::string::npos);
}

TEST(AdviseFromStatsTest, HighCapacityRorIsMonotonicallyConservative) {
  // Under the ROR rule, every table the high-capacity advisor still
  // avoids must also have been avoidable at the linear thresholds —
  // scaling can only move verdicts toward joining.
  AdvisorOptions options;
  options.rule = AvoidanceRule::kRor;
  std::vector<CandidateTableStats> candidates;
  for (uint64_t n_r : {10u, 50u, 200u, 1000u, 5000u}) {
    candidates.push_back(
        Candidate(("FK" + std::to_string(n_r)).c_str(), "T", n_r, 4));
  }
  auto linear = *AdviseJoinsFromStats(20000, 1.0, candidates, options);
  options.model_capacity = ModelCapacity::kHighCapacity;
  auto high = *AdviseJoinsFromStats(20000, 1.0, candidates, options);
  ASSERT_EQ(high.advice.size(), linear.advice.size());
  for (size_t i = 0; i < high.advice.size(); ++i) {
    EXPECT_EQ(high.advice[i].ror, linear.advice[i].ror) << i;
    EXPECT_EQ(high.advice[i].ror_verdict.threshold,
              linear.advice[i].ror_verdict.threshold / kHighCapacityScale)
        << i;
    if (high.advice[i].avoid) {
      EXPECT_TRUE(linear.advice[i].avoid) << i;
    }
  }
}

}  // namespace
}  // namespace hamlet
