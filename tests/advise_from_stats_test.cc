#include <gtest/gtest.h>

#include "core/advisor.h"
#include "datasets/registry.h"

namespace hamlet {
namespace {

CandidateTableStats Candidate(const char* fk, const char* table,
                              uint64_t rows, uint64_t q_star = 2,
                              bool closed = true) {
  CandidateTableStats s;
  s.fk_column = fk;
  s.table_name = table;
  s.num_rows = rows;
  s.min_feature_domain = q_star;
  s.closed_domain = closed;
  return s;
}

TEST(AdviseFromStatsTest, PureMetadataDecisions) {
  // The source-selection pitch: rule on tables that were never loaded.
  auto plan = AdviseJoinsFromStats(
      10000, /*label_entropy_bits=*/1.0,
      {Candidate("SmallID", "Small", 100),      // TR = 100: avoid.
       Candidate("BigID", "Big", 4000)});       // TR = 2.5: join.
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->fks_avoided, (std::vector<std::string>{"SmallID"}));
  EXPECT_EQ(plan->fks_to_join, (std::vector<std::string>{"BigID"}));
  EXPECT_EQ(plan->n_train, 10000u);
}

TEST(AdviseFromStatsTest, MatchesTableBackedAdvisorOnRealDatasets) {
  // Feeding the Figure 6 metadata by hand must reproduce the
  // table-backed advisor's plan exactly.
  for (const auto& name : {"Walmart", "Yelp", "Flights"}) {
    auto ds = *MakeDataset(name, 0.05, 11);
    auto table_plan = *AdviseJoins(ds);

    std::vector<CandidateTableStats> stats;
    for (const TableAdvice& a : table_plan.advice) {
      CandidateTableStats s;
      s.fk_column = a.fk_column;
      s.table_name = a.table_name;
      s.num_rows = a.n_r;
      s.min_feature_domain = a.min_foreign_domain;
      s.closed_domain = a.closed_domain;
      stats.push_back(s);
    }
    auto stats_plan = *AdviseJoinsFromStats(
        table_plan.n_train, table_plan.skew_guard.label_entropy_bits,
        stats);
    EXPECT_EQ(stats_plan.fks_avoided, table_plan.fks_avoided) << name;
    EXPECT_EQ(stats_plan.fks_to_join, table_plan.fks_to_join) << name;
    for (size_t i = 0; i < stats_plan.advice.size(); ++i) {
      EXPECT_DOUBLE_EQ(stats_plan.advice[i].ror,
                       table_plan.advice[i].ror)
          << name << " table " << i;
    }
  }
}

TEST(AdviseFromStatsTest, UnknownLabelDistributionNeverBlocks) {
  // Passing >= 1 bit (the "not yet known" convention) keeps the guard
  // out of the way.
  auto plan = *AdviseJoinsFromStats(10000, 1.0,
                                    {Candidate("A", "TA", 100)});
  EXPECT_TRUE(plan.skew_guard.passes);
  EXPECT_EQ(plan.fks_avoided.size(), 1u);
}

TEST(AdviseFromStatsTest, SkewGuardStillApplies) {
  auto plan = *AdviseJoinsFromStats(10000, /*label_entropy_bits=*/0.3,
                                    {Candidate("A", "TA", 100)});
  EXPECT_FALSE(plan.skew_guard.passes);
  EXPECT_TRUE(plan.fks_avoided.empty());
}

TEST(AdviseFromStatsTest, OpenDomainNeverAvoided) {
  auto plan = *AdviseJoinsFromStats(
      10000, 1.0, {Candidate("Ev", "Events", 10, 2, /*closed=*/false)});
  EXPECT_TRUE(plan.fks_avoided.empty());
  EXPECT_NE(plan.advice[0].rationale.find("open-domain"),
            std::string::npos);
}

TEST(AdviseFromStatsTest, BadInputsRejected) {
  EXPECT_FALSE(
      AdviseJoinsFromStats(0, 1.0, {Candidate("A", "TA", 10)}).ok());
  EXPECT_FALSE(
      AdviseJoinsFromStats(100, 1.0, {Candidate("A", "TA", 0)}).ok());
}

TEST(AdviseFromStatsTest, EmptyCandidateListIsValid) {
  auto plan = *AdviseJoinsFromStats(100, 1.0, {});
  EXPECT_TRUE(plan.advice.empty());
  EXPECT_TRUE(plan.fks_to_join.empty());
}

}  // namespace
}  // namespace hamlet
