/// Lockdown of the sharded scoring data plane (serve/service.h): the
/// shard-count determinism contract, typed admission-control rejections
/// (kOverloaded / kDeadlineExceeded with exact accounting and never a
/// partial result), the generation-validated warm model cache under
/// hot-swap, and the probe parity of the direct (unbatched) path. This
/// suite is part of the TSAN sweep scripts/check_determinism.sh runs —
/// every test here doubles as a data-race target.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/load_gen.h"
#include "serve/service.h"

namespace hamlet::serve {
namespace {

EncodedDataset MakeData(uint64_t seed, uint32_t n = 500) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(4);
    y[i] = rng.Bernoulli(0.85) ? f[i] : 1 - f[i];
  }
  return EncodedDataset({f, g}, {{"F", 2}, {"G", 4}}, y, 2);
}

/// Same layout as MakeData with the labels flipped: a model trained on
/// it predicts differently on the same block — the hot-swap probe.
EncodedDataset MakeFlippedData(uint64_t seed, uint32_t n = 500) {
  EncodedDataset data = MakeData(seed, n);
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(4);
    y[i] = 1 - (rng.Bernoulli(0.85) ? f[i] : 1 - f[i]);
  }
  return EncodedDataset({f, g}, {{"F", 2}, {"G", 4}}, y, 2);
}

/// A wider dataset so a SelectFeatures run occupies a dispatcher for
/// long enough to stage deterministic queue states behind it.
EncodedDataset MakeWideData(uint64_t seed, uint32_t n, uint32_t d) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(d, std::vector<uint32_t>(n));
  std::vector<FeatureMeta> meta;
  std::vector<uint32_t> y(n);
  for (uint32_t j = 0; j < d; ++j) {
    for (uint32_t i = 0; i < n; ++i) cols[j][i] = rng.Uniform(4);
    meta.push_back({"f" + std::to_string(j), 4});
  }
  for (uint32_t i = 0; i < n; ++i) {
    y[i] = rng.Bernoulli(0.8) ? cols[0][i] % 2 : 1 - cols[0][i] % 2;
  }
  return EncodedDataset(cols, meta, y, 2);
}

NaiveBayes TrainNb(const EncodedDataset& data) {
  NaiveBayes model(1.0);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

std::vector<uint32_t> AllRows(const EncodedDataset& data) {
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  return rows;
}

class ShardedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/hamlet_shard_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<ArtifactStore>(root_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<ArtifactStore> store_;
};

// The tentpole's acceptance bar: one request stream, scored at every
// (shard count x thread count) combination, yields byte-identical
// predictions per request id — batch composition, shard routing, and
// parallelism affect latency only, never results.
TEST_F(ShardedServiceTest, ShardCountDeterminism) {
  constexpr uint32_t kModels = 3;
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::vector<NaiveBayes> models;
  for (uint32_t m = 0; m < kModels; ++m) {
    EncodedDataset data = MakeData(100 + m);
    models.push_back(TrainNb(data));
    ASSERT_TRUE(
        store_->PutNaiveBayes("m" + std::to_string(m), models.back()).ok());
  }

  // One distinct block per (client, request) id and its serial-Predict
  // expectation — the ground truth every configuration must hit.
  const int kIds = kClients * kRequestsPerClient;
  std::vector<std::shared_ptr<const EncodedDataset>> block(kIds);
  std::vector<std::vector<uint32_t>> expected(kIds);
  for (int id = 0; id < kIds; ++id) {
    auto rows =
        std::make_shared<const EncodedDataset>(MakeData(1000 + id, 64));
    block[id] = rows;
    expected[id] = models[id % kModels].Predict(*rows, AllRows(*rows));
  }

  for (uint32_t shards : {1u, 2u, 8u}) {
    for (uint32_t threads : {1u, 8u}) {
      ServiceOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      options.queue_capacity = 4;  // Force backpressure + coalescing.
      options.max_batch = 3;
      HamletService service(store_.get(), options);
      ASSERT_EQ(service.num_shards(), shards);

      std::vector<int> mismatches(kClients, 0);
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (int r = 0; r < kRequestsPerClient; ++r) {
            const int id = c * kRequestsPerClient + r;
            ScoreRequest request;
            request.model = "m" + std::to_string(id % kModels);
            request.rows = block[id];
            Result<ScoreResponse> response =
                service.Score(std::move(request));
            if (!response.ok() || response->predictions != expected[id]) {
              ++mismatches[c];
            }
          }
        });
      }
      for (std::thread& t : clients) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(mismatches[c], 0)
            << "client " << c << " at shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

// Routing is a pure function of (model, version): same key, same shard,
// always in range.
TEST_F(ShardedServiceTest, ShardRoutingIsStable) {
  ServiceOptions options;
  options.num_shards = 8;
  HamletService service(store_.get(), options);
  for (const char* name : {"a", "b", "model_with_longer_name"}) {
    for (uint32_t version : {0u, 1u, 7u}) {
      const uint32_t shard = service.ShardForModel(name, version);
      EXPECT_LT(shard, service.num_shards());
      EXPECT_EQ(shard, service.ShardForModel(name, version));
    }
  }
}

// Load-shedding mode: once a shard's queue reaches the high-water mark,
// the next request is rejected with the typed kOverloaded status — it
// is never partially executed — and serve.shed_total counts it, while
// every accepted request still completes with full results.
TEST_F(ShardedServiceTest, OverloadShedsTypedAndNeverPartial) {
  EncodedDataset score_data = MakeData(40);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(score_data)).ok());
  ASSERT_TRUE(store_->PutDataset("wide", MakeWideData(41, 20000, 12)).ok());
  NaiveBayes model = TrainNb(score_data);
  auto block = std::make_shared<EncodedDataset>(MakeData(40));
  const std::vector<uint32_t> expected =
      model.Predict(score_data, AllRows(score_data));

  obs::ScopedCollection collection(true);
  ServiceOptions options;
  options.num_shards = 1;  // One dispatcher: queue states are exact.
  options.queue_capacity = 8;
  options.shed_high_water = 2;
  options.overload_policy = OverloadPolicy::kShed;
  HamletService service(store_.get(), options);

  // Occupy the dispatcher with a long SelectFeatures run, issued from a
  // helper thread (it blocks until served).
  std::thread select_client([&] {
    SelectFeaturesRequest request;
    request.dataset = "wide";
    request.model_name = "winner";
    EXPECT_TRUE(service.SelectFeatures(std::move(request)).ok());
  });
  // The dispatcher has popped the select (and is busy running it) once
  // serve.select_requests ticks; from then until it finishes, nothing
  // drains the queue.
  for (;;) {
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
    if (snap.CounterValue("serve.select_requests") == 1) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Fill the queue to the high-water mark with Scores that will block
  // behind the select...
  std::vector<std::thread> accepted;
  std::atomic<int> failures{0};
  for (int i = 0; i < 2; ++i) {
    accepted.emplace_back([&] {
      ScoreRequest request;
      request.model = "m";
      request.rows = block;
      Result<ScoreResponse> response = service.Score(std::move(request));
      if (!response.ok() || response->predictions != expected) ++failures;
    });
  }
  while (service.queue_depth() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // ...so the next arrival must be shed, typed, with no partial result.
  ScoreRequest overload;
  overload.model = "m";
  overload.rows = block;
  Result<ScoreResponse> response = service.Score(std::move(overload));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kOverloaded);

  select_client.join();
  for (std::thread& t : accepted) t.join();
  EXPECT_EQ(failures.load(), 0);  // Accepted requests: full results.
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("serve.shed_total"), 1u);
}

// A request whose deadline expired while it queued is answered
// kDeadlineExceeded at dequeue, without touching the model; a live
// deadline passes through untouched.
TEST_F(ShardedServiceTest, DeadlineExpiredAtDequeue) {
  EncodedDataset data = MakeData(50);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(data)).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(50));

  obs::ScopedCollection collection(true);
  HamletService service(store_.get());

  ScoreRequest expired;
  expired.model = "m";
  expired.rows = block;
  expired.deadline_ns = 1;  // The distant past: expired at dequeue.
  Result<ScoreResponse> rejected = service.Score(std::move(expired));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);

  ScoreRequest live;
  live.model = "m";
  live.rows = block;
  live.deadline_ns = obs::NowNanos() + 60ull * 1000 * 1000 * 1000;
  EXPECT_TRUE(service.Score(std::move(live)).ok());

  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("serve.deadline_expired"), 1u);
}

// The warm model cache never pins a stale kLatest: a publish bumps the
// store generation, the next batch revalidates and serves the new
// version. Repeat requests between publishes hit without touching the
// store.
TEST_F(ShardedServiceTest, WarmCacheServesHotSwapExactly) {
  EncodedDataset data_v1 = MakeData(60);
  EncodedDataset data_v2 = MakeFlippedData(60);
  NaiveBayes v1 = TrainNb(data_v1);
  NaiveBayes v2 = TrainNb(data_v2);
  auto block = std::make_shared<EncodedDataset>(MakeData(60));
  const std::vector<uint32_t> expect_v1 =
      v1.Predict(*block, AllRows(*block));
  const std::vector<uint32_t> expect_v2 =
      v2.Predict(*block, AllRows(*block));
  ASSERT_NE(expect_v1, expect_v2);  // The swap must be observable.
  ASSERT_TRUE(store_->PutNaiveBayes("hot", v1).ok());

  obs::ScopedCollection collection(true);
  ServiceOptions options;
  options.num_shards = 1;
  HamletService service(store_.get(), options);

  const auto score_latest = [&]() -> std::vector<uint32_t> {
    ScoreRequest request;
    request.model = "hot";
    request.rows = block;
    Result<ScoreResponse> response = service.Score(std::move(request));
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? response->predictions : std::vector<uint32_t>{};
  };

  EXPECT_EQ(score_latest(), expect_v1);  // Cold: resolves + caches.
  EXPECT_EQ(score_latest(), expect_v1);  // Warm: same generation.
  ASSERT_TRUE(store_->PutNaiveBayes("hot", v2).ok());
  EXPECT_EQ(score_latest(), expect_v2);  // Generation bumped: re-resolve.
  EXPECT_EQ(score_latest(), expect_v2);

  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("serve.warm_cache_misses"), 2u);
  EXPECT_EQ(snap.CounterValue("serve.warm_cache_hits"), 2u);
}

// Satellite of ISSUE 10: the direct (unbatched) path records the same
// probes as the queued path — batch size, per-request score latency,
// and a zero queue wait per request — so BM_ServeScoreUnbatched and
// BM_ServeScoreBatched comparisons read identical instrumentation.
TEST_F(ShardedServiceTest, DirectPathRecordsQueueWaitAndBatchProbes) {
  EncodedDataset data = MakeData(70);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(data)).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(70));

  obs::ScopedCollection collection(true);
  HamletService service(store_.get());
  std::vector<ScoreRequest> batch(3);
  for (ScoreRequest& r : batch) {
    r.model = "m";
    r.rows = block;
  }
  ASSERT_TRUE(service.ScoreBatchDirect(batch).ok());

  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  uint64_t queue_waits = 0, batches = 0, score_lat = 0;
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "serve.queue_wait_ns") queue_waits = h.count;
    if (h.name == "serve.batch_size") batches = h.count;
    if (h.name == "serve.score_ns") score_lat = h.count;
  }
  EXPECT_EQ(queue_waits, 3u);  // One zero-wait sample per request.
  EXPECT_EQ(batches, 1u);      // One fused pass.
  EXPECT_EQ(score_lat, 3u);    // Per-request latency, like the queue.
}

// The closed-loop harness's accounting identity under shedding load:
// every offered request lands in exactly one bucket.
TEST_F(ShardedServiceTest, LoadHarnessAccountingIsExact) {
  ServiceOptions service_options;
  service_options.queue_capacity = 4;
  service_options.shed_high_water = 2;
  service_options.overload_policy = OverloadPolicy::kShed;
  LoadGenOptions load;
  load.clients = 4;
  load.duration_s = 0.2;
  load.block_rows = 16;
  load.num_models = 2;
  load.train_rows = 2000;
  Result<LoadReport> report =
      RunClosedLoopLoad(store_.get(), service_options, load);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->accounting_exact);
  EXPECT_EQ(report->served + report->shed + report->expired + report->failed,
            report->offered);
  EXPECT_GT(report->served, 0u);
  EXPECT_EQ(report->shed, report->shed_total_metric);
  EXPECT_EQ(report->rows_scored, report->served * 16u);
}

}  // namespace
}  // namespace hamlet::serve
