#include "ml/eval.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

EncodedDataset MakeLearnable(uint64_t seed, uint32_t n = 400) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    y[i] = rng.Bernoulli(0.9) ? f[i] : 1 - f[i];
  }
  return EncodedDataset({f}, {{"F", 2}}, y, 2);
}

TEST(EvalTest, GatherLabels) {
  EncodedDataset d({{0, 0, 0}}, {{"F", 1}}, {2, 0, 1}, 3);
  auto labels = GatherLabels(d, {2, 0});
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1u);
  EXPECT_EQ(labels[1], 2u);
}

TEST(EvalTest, TrainAndScoreLearnableConcept) {
  EncodedDataset d = MakeLearnable(1);
  std::vector<uint32_t> train, test;
  for (uint32_t i = 0; i < d.num_rows(); ++i) {
    (i < 300 ? train : test).push_back(i);
  }
  auto err = TrainAndScore(MakeNaiveBayesFactory(), d, train, test, {0},
                           ErrorMetric::kZeroOne);
  ASSERT_TRUE(err.ok());
  EXPECT_LT(*err, 0.2);  // Bayes error is 0.1.
}

TEST(EvalTest, TrainAndScoreModelReturnsUsableModel) {
  EncodedDataset d = MakeLearnable(2);
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < d.num_rows(); ++i) rows.push_back(i);
  auto sm = TrainAndScoreModel(MakeNaiveBayesFactory(), d, rows, rows, {0},
                               ErrorMetric::kZeroOne);
  ASSERT_TRUE(sm.ok());
  ASSERT_NE(sm->model, nullptr);
  // Model is trained: its predictions reproduce the reported error.
  auto preds = sm->model->Predict(d, rows);
  EXPECT_DOUBLE_EQ(ZeroOneError(GatherLabels(d, rows), preds), sm->error);
}

TEST(EvalTest, PropagatesTrainingFailure) {
  EncodedDataset d = MakeLearnable(3);
  auto err = TrainAndScore(MakeNaiveBayesFactory(), d, /*train_rows=*/{},
                           {0}, {0}, ErrorMetric::kZeroOne);
  EXPECT_FALSE(err.ok());
}

TEST(EvalTest, EmptyEvalRowsGiveZeroError) {
  EncodedDataset d = MakeLearnable(4);
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < d.num_rows(); ++i) rows.push_back(i);
  auto err = TrainAndScore(MakeNaiveBayesFactory(), d, rows, {}, {0},
                           ErrorMetric::kZeroOne);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, 0.0);
}

}  // namespace
}  // namespace hamlet
