/// A statistical check of Theorem 3.2 itself: over many independently
/// drawn training sets, |test error − train error| must stay within the
/// VC bound at least (1 − δ) of the time. The bound is famously loose,
/// so in practice violations should be zero — the test allows the
/// nominal δ·runs budget plus slack.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/naive_bayes.h"
#include "sim/data_synthesis.h"
#include "stats/metrics.h"
#include "theory/generalization_bound.h"
#include "theory/vc_dimension.h"

namespace hamlet {
namespace {

std::vector<uint32_t> GatherTruth(const SimDraw& draw,
                                  const std::vector<uint32_t>& rows) {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(draw.data.labels()[r]);
  return out;
}

class Theorem32Test : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Theorem32Test, BoundHoldsWithHighProbability) {
  const uint32_t n_r = GetParam();
  SimConfig config;
  config.scenario = TrueDistribution::kLoneXr;
  config.n_s = 2000;
  config.d_s = 2;
  config.d_r = 2;
  config.n_r = n_r;
  config.p = 0.1;

  const double delta = 0.1;
  const uint32_t runs = 60;
  Rng rng(1234 + n_r);
  SimDataGenerator gen(config, rng);
  const std::vector<uint32_t> features = gen.NoJoinFeatures();

  // v for the NoJoin model: 1 + d_s·(2−1) + (n_r − 1) ≈ |D_FK| + d_s.
  uint64_t v = 1 + config.d_s + (n_r - 1);
  ASSERT_GT(config.n_s, v);  // The theorem's regime.
  const double bound = VcGeneralizationBound(v, config.n_s, delta);

  uint32_t violations = 0;
  for (uint32_t run = 0; run < runs; ++run) {
    SimDraw train = gen.Draw(config.n_s, rng);
    SimDraw test = gen.Draw(config.TestSize(), rng);
    std::vector<uint32_t> train_rows(train.data.num_rows());
    for (uint32_t i = 0; i < train_rows.size(); ++i) train_rows[i] = i;
    std::vector<uint32_t> test_rows(test.data.num_rows());
    for (uint32_t i = 0; i < test_rows.size(); ++i) test_rows[i] = i;

    NaiveBayes nb;
    ASSERT_TRUE(nb.Train(train.data, train_rows, features).ok());
    double train_err = ZeroOneError(GatherTruth(train, train_rows),
                                    nb.Predict(train.data, train_rows));
    double test_err = ZeroOneError(GatherTruth(test, test_rows),
                                   nb.Predict(test.data, test_rows));
    if (std::fabs(test_err - train_err) > bound) ++violations;
  }
  // Nominal allowance: delta * runs = 6; the bound's looseness means the
  // observed count should be far below even that.
  EXPECT_LE(violations, static_cast<uint32_t>(delta * runs))
      << "n_r = " << n_r << ", bound = " << bound;
}

INSTANTIATE_TEST_SUITE_P(FkDomains, Theorem32Test,
                         ::testing::Values(20u, 100u, 400u));

}  // namespace
}  // namespace hamlet
