#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hamlet {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& contents) {
    std::string path = ::testing::TempDir() + "/hamlet_csv_" +
                       std::to_string(counter_++) + ".csv";
    std::ofstream out(path);
    out << contents;
    return path;
  }
  static int counter_;
};
int CsvTest::counter_ = 0;

TEST_F(CsvTest, ParseCsvLineBasic) {
  auto fields = ParseCsvLine("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(CsvTest, ParseCsvLineQuoted) {
  auto fields = ParseCsvLine("\"a,b\",c", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST_F(CsvTest, ParseCsvLineEscapedQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST_F(CsvTest, ParseCsvLineStripsCarriageReturn) {
  auto fields = ParseCsvLine("a,b\r", ',');
  EXPECT_EQ(fields[1], "b");
}

TEST_F(CsvTest, ParseCsvLineEmptyFields) {
  auto fields = ParseCsvLine(",,", ',');
  EXPECT_EQ(fields.size(), 3u);
}

TEST_F(CsvTest, ReadsSimpleFile) {
  std::string path = WriteTemp("ID,Color\nr1,red\nr2,blue\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ((*t->ColumnByName("Color"))->label(1), "blue");
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  std::string path = WriteTemp("Wrong,Header\nr1,red\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

TEST_F(CsvTest, ColumnCountMismatchRejected) {
  std::string path = WriteTemp("ID\nr1\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  Schema schema({ColumnSpec::Feature("A")});
  EXPECT_EQ(ReadCsv("/nonexistent/x.csv", "T", schema).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, EmptyFileIsIOError) {
  std::string path = WriteTemp("");
  Schema schema({ColumnSpec::Feature("A")});
  EXPECT_EQ(ReadCsv(path, "T", schema).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, StrictModeRejectsRaggedRows) {
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

// Field-count mismatches are framing errors and reject the file in BOTH
// modes — lenient mode used to skip such rows silently, biasing the data.
TEST_F(CsvTest, LenientModeStillRejectsRaggedRows) {
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n3,4\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RaggedRowErrorNamesTheLine) {
  // The short row is on line 3 of the file (header is line 1).
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n3,4\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find(":3:"), std::string::npos)
      << t.status();
  EXPECT_NE(t.status().message().find("1 fields"), std::string::npos)
      << t.status();
}

TEST_F(CsvTest, TooManyFieldsRejectedWithLineNumber) {
  std::string path = WriteTemp("A,B\n1,2\n3,4,5\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find(":3:"), std::string::npos)
      << t.status();
}

// What lenient mode still tolerates: rows violating a closed domain are
// skipped (the framing is fine, only the value is foreign).
TEST_F(CsvTest, LenientModeSkipsDomainViolations) {
  std::string path = WriteTemp("A\nyes\nmaybe\nno\n");
  Schema schema({ColumnSpec::Feature("A")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsvWithDomains(path, "T", schema, {closed}, options);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(CsvTest, ClosedDomainEnforced) {
  std::string path = WriteTemp("A\nyes\nmaybe\n");
  Schema schema({ColumnSpec::Feature("A")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});
  auto t = ReadCsvWithDomains(path, "T", schema, {closed});
  EXPECT_FALSE(t.ok());  // "maybe" violates the closed domain.
}

TEST_F(CsvTest, RoundTripPreservesData) {
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Text")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"a", "plain"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"b", "has,comma"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"c", "has\"quote"}).ok());
  Table original = builder.Build();

  std::string path = WriteTemp("");
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto reread = ReadCsv(path, "T", schema);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->num_rows(), 3u);
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(reread->column(1).label(r), original.column(1).label(r));
  }
}

TEST_F(CsvTest, WriteToBadPathIsIOError) {
  Schema schema({ColumnSpec::Feature("A")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"x"}).ok());
  EXPECT_EQ(WriteCsv(builder.Build(), "/nonexistent/dir/x.csv").code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, CustomDelimiter) {
  std::string path = WriteTemp("A|B\n1|2\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.delimiter = '|';
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(1).label(0), "2");
}

}  // namespace
}  // namespace hamlet
