#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hamlet {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& contents) {
    // Keyed by test name: ctest runs each test in its own process (so a
    // static counter restarts at 0) and in parallel, so a bare counter
    // would collide across concurrently running tests.
    std::string path =
        ::testing::TempDir() + "/hamlet_csv_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        "_" + std::to_string(counter_++) + ".csv";
    std::ofstream out(path);
    out << contents;
    return path;
  }
  static int counter_;
};
int CsvTest::counter_ = 0;

TEST_F(CsvTest, ParseCsvLineBasic) {
  auto fields = ParseCsvLine("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(CsvTest, ParseCsvLineQuoted) {
  auto fields = ParseCsvLine("\"a,b\",c", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST_F(CsvTest, ParseCsvLineEscapedQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST_F(CsvTest, ParseCsvLineStripsCarriageReturn) {
  auto fields = ParseCsvLine("a,b\r", ',');
  EXPECT_EQ(fields[1], "b");
}

TEST_F(CsvTest, ParseCsvLineEmptyFields) {
  auto fields = ParseCsvLine(",,", ',');
  EXPECT_EQ(fields.size(), 3u);
}

TEST_F(CsvTest, ReadsSimpleFile) {
  std::string path = WriteTemp("ID,Color\nr1,red\nr2,blue\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ((*t->ColumnByName("Color"))->label(1), "blue");
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  std::string path = WriteTemp("Wrong,Header\nr1,red\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

TEST_F(CsvTest, ColumnCountMismatchRejected) {
  std::string path = WriteTemp("ID\nr1\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Color")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  Schema schema({ColumnSpec::Feature("A")});
  EXPECT_EQ(ReadCsv("/nonexistent/x.csv", "T", schema).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, EmptyFileIsIOError) {
  std::string path = WriteTemp("");
  Schema schema({ColumnSpec::Feature("A")});
  EXPECT_EQ(ReadCsv(path, "T", schema).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, StrictModeRejectsRaggedRows) {
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  EXPECT_FALSE(ReadCsv(path, "T", schema).ok());
}

// Field-count mismatches are framing errors and reject the file in BOTH
// modes — lenient mode used to skip such rows silently, biasing the data.
TEST_F(CsvTest, LenientModeStillRejectsRaggedRows) {
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n3,4\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RaggedRowErrorNamesTheLine) {
  // The short row is on line 3 of the file (header is line 1).
  std::string path = WriteTemp("A,B\n1,2\nonly_one\n3,4\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find(":3:"), std::string::npos)
      << t.status();
  EXPECT_NE(t.status().message().find("1 fields"), std::string::npos)
      << t.status();
}

TEST_F(CsvTest, TooManyFieldsRejectedWithLineNumber) {
  std::string path = WriteTemp("A,B\n1,2\n3,4,5\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find(":3:"), std::string::npos)
      << t.status();
}

// What lenient mode still tolerates: rows violating a closed domain are
// skipped (the framing is fine, only the value is foreign).
TEST_F(CsvTest, LenientModeSkipsDomainViolations) {
  std::string path = WriteTemp("A\nyes\nmaybe\nno\n");
  Schema schema({ColumnSpec::Feature("A")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});
  CsvOptions options;
  options.strict = false;
  auto t = ReadCsvWithDomains(path, "T", schema, {closed}, options);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(CsvTest, ClosedDomainEnforced) {
  std::string path = WriteTemp("A\nyes\nmaybe\n");
  Schema schema({ColumnSpec::Feature("A")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});
  auto t = ReadCsvWithDomains(path, "T", schema, {closed});
  EXPECT_FALSE(t.ok());  // "maybe" violates the closed domain.
}

TEST_F(CsvTest, RoundTripPreservesData) {
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Text")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"a", "plain"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"b", "has,comma"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"c", "has\"quote"}).ok());
  Table original = builder.Build();

  std::string path = WriteTemp("");
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto reread = ReadCsv(path, "T", schema);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->num_rows(), 3u);
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(reread->column(1).label(r), original.column(1).label(r));
  }
}

TEST_F(CsvTest, WriteToBadPathIsIOError) {
  Schema schema({ColumnSpec::Feature("A")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"x"}).ok());
  EXPECT_EQ(WriteCsv(builder.Build(), "/nonexistent/dir/x.csv").code(),
            StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// ParseCsvLine edge semantics, pinned. A '"' opens a quoted run only when
// the field is still empty; everything else about quotes is downstream of
// that rule.

TEST_F(CsvTest, ParseCsvLineMidFieldQuotesAreLiteral) {
  auto fields = ParseCsvLine("a\"b\"", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "a\"b\"");
}

TEST_F(CsvTest, ParseCsvLineEmptyQuotedField) {
  auto fields = ParseCsvLine("\"\"", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST_F(CsvTest, ParseCsvLineEscapedQuoteInsideQuotes) {
  auto fields = ParseCsvLine("\"a\"\"b\"", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "a\"b");
}

TEST_F(CsvTest, ParseCsvLineQuadQuoteIsOneQuote) {
  auto fields = ParseCsvLine("\"\"\"\"", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "\"");
}

TEST_F(CsvTest, ParseCsvLineTrailingDelimiterAddsEmptyField) {
  auto fields = ParseCsvLine("a,b,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST_F(CsvTest, ParseCsvLineTextAfterClosingQuoteAppends) {
  auto fields = ParseCsvLine("\"a\"b", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "ab");
}

// The same edge cases must hold through the full reader, in both modes.
TEST_F(CsvTest, ReaderPreservesQuoteEdgeCases) {
  std::string path = WriteTemp(
      "A,B\n"
      "a\"b\",x\n"
      "\"\",y\n"
      "\"a\"\"b\",z\n"
      "w,\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  for (bool strict : {true, false}) {
    CsvOptions options;
    options.strict = strict;
    auto t = ReadCsv(path, "T", schema, options);
    ASSERT_TRUE(t.ok()) << t.status();
    ASSERT_EQ(t->num_rows(), 4u);
    EXPECT_EQ(t->column(0).label(0), "a\"b\"");
    EXPECT_EQ(t->column(0).label(1), "");
    EXPECT_EQ(t->column(0).label(2), "a\"b");
    EXPECT_EQ(t->column(1).label(3), "");
  }
}

// ---------------------------------------------------------------------------
// Quote-aware framing: quoted fields spanning line breaks.

TEST_F(CsvTest, QuotedFieldMaySpanLines) {
  std::string path = WriteTemp(
      "ID,Text\n"
      "r1,\"line1\nline2\"\n"
      "r2,plain\n");
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Text")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->column(1).label(0), "line1\nline2");
  EXPECT_EQ(t->column(1).label(1), "plain");
}

TEST_F(CsvTest, RoundTripPreservesDelimiterQuoteAndNewline) {
  Schema schema(
      {ColumnSpec::PrimaryKey("ID"), ColumnSpec::Feature("Text")});
  TableBuilder builder("T", schema);
  ASSERT_TRUE(builder.AppendRowLabels({"a", "has,comma"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"b", "say \"hi\""}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"c", "line1\nline2"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"d", "trail\r"}).ok());
  ASSERT_TRUE(builder.AppendRowLabels({"e", ""}).ok());
  Table original = builder.Build();

  std::string path = WriteTemp("");
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto reread = ReadCsv(path, "T", schema);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->num_rows(), original.num_rows());
  for (uint32_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(reread->column(1).label(r), original.column(1).label(r)) << r;
  }
}

// Line numbers in errors count physical file lines, so a quoted newline
// above the bad row shifts the reported line.
TEST_F(CsvTest, ErrorLineNumberCountsQuotedNewlines) {
  std::string path = WriteTemp(
      "A,B\n"
      "\"line1\nline2\",x\n"
      "only_one\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  auto t = ReadCsv(path, "T", schema);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find(":4:"), std::string::npos)
      << t.status();
}

// The same error (message and line) surfaces regardless of thread count:
// the lowest-row failure wins deterministically.
TEST_F(CsvTest, ErrorsAreIdenticalAcrossThreadCounts) {
  std::string contents = "A,B\n";
  for (int i = 0; i < 50; ++i) {
    contents += "x" + std::to_string(i) + ",y\n";
  }
  contents += "ragged_row\n";  // Line 52.
  for (int i = 0; i < 50; ++i) contents += "z,w\n";
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});

  CsvOptions serial;
  serial.num_threads = 1;
  auto base = ReadCsv(path, "T", schema, serial);
  ASSERT_FALSE(base.ok());
  EXPECT_NE(base.status().message().find(":52:"), std::string::npos)
      << base.status();

  for (uint32_t num_threads : {2u, 8u}) {
    CsvOptions options;
    options.num_threads = num_threads;
    options.min_chunk_bytes = 1;  // Force one chunk per shard.
    auto t = ReadCsv(path, "T", schema, options);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().message(), base.status().message());
  }
}

TEST_F(CsvTest, StrictDomainErrorIsIdenticalAcrossThreadCounts) {
  std::string contents = "A\n";
  for (int i = 0; i < 40; ++i) contents += "yes\n";
  contents += "maybe\n";  // Line 42.
  for (int i = 0; i < 40; ++i) contents += "no\n";
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::Feature("A")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});

  CsvOptions serial;
  serial.num_threads = 1;
  auto base = ReadCsvWithDomains(path, "T", schema, {closed}, serial);
  ASSERT_FALSE(base.ok());
  EXPECT_NE(base.status().message().find(":42:"), std::string::npos)
      << base.status();
  EXPECT_NE(base.status().message().find("'maybe'"), std::string::npos)
      << base.status();

  for (uint32_t num_threads : {2u, 8u}) {
    CsvOptions options;
    options.num_threads = num_threads;
    options.min_chunk_bytes = 1;
    auto t = ReadCsvWithDomains(path, "T", schema, {closed}, options);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().message(), base.status().message());
  }
}

// A quoted newline straddling a would-be chunk boundary must not split a
// record: framing follows the quoting state machine, not raw newlines.
TEST_F(CsvTest, QuotedNewlinesAcrossChunkBoundaries) {
  std::string contents = "A,B\n";
  for (int i = 0; i < 200; ++i) {
    contents += "\"multi\nline\nvalue" + std::to_string(i % 7) +
                "\",\"v\n" + std::to_string(i) + "\"\n";
  }
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});

  CsvOptions serial;
  serial.num_threads = 1;
  auto base = ReadCsv(path, "T", schema, serial);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_EQ(base->num_rows(), 200u);

  for (uint32_t num_threads : {2u, 8u, 16u}) {
    CsvOptions options;
    options.num_threads = num_threads;
    options.min_chunk_bytes = 1;
    auto t = ReadCsv(path, "T", schema, options);
    ASSERT_TRUE(t.ok()) << t.status();
    ASSERT_EQ(t->num_rows(), base->num_rows());
    for (uint32_t c = 0; c < 2; ++c) {
      // Codes AND label order must match bit-for-bit, not just labels.
      EXPECT_EQ(t->column(c).codes(), base->column(c).codes())
          << "threads " << num_threads;
      EXPECT_EQ(t->column(c).domain()->labels(), base->column(c).domain()->labels())
          << "threads " << num_threads;
    }
  }
}

// Lenient skips must not leak labels from skipped rows into fresh
// dictionaries, at any thread count.
TEST_F(CsvTest, LenientSkipsDoNotPolluteDictionaries) {
  std::string contents = "A,B\n";
  for (int i = 0; i < 30; ++i) {
    contents += (i % 3 == 0 ? "bad" : "yes");
    contents += ",lab" + std::to_string(i) + "\n";
  }
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  auto closed =
      std::make_shared<Domain>(std::vector<std::string>{"yes", "no"});

  CsvOptions serial;
  serial.num_threads = 1;
  serial.strict = false;
  auto base = ReadCsvWithDomains(path, "T", schema, {closed, nullptr}, serial);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_EQ(base->num_rows(), 20u);
  // Skipped rows contributed nothing to B's dictionary.
  EXPECT_EQ(base->column(1).domain()->size(), 20u);

  for (uint32_t num_threads : {2u, 8u}) {
    CsvOptions options;
    options.num_threads = num_threads;
    options.min_chunk_bytes = 1;
    options.strict = false;
    auto t = ReadCsvWithDomains(path, "T", schema, {closed, nullptr}, options);
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_EQ(t->column(1).codes(), base->column(1).codes());
    EXPECT_EQ(t->column(1).domain()->labels(),
              base->column(1).domain()->labels());
  }
}

TEST_F(CsvTest, CustomDelimiter) {
  std::string path = WriteTemp("A|B\n1|2\n");
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  CsvOptions options;
  options.delimiter = '|';
  auto t = ReadCsv(path, "T", schema, options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(1).label(0), "2");
}

}  // namespace
}  // namespace hamlet
