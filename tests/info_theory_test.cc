#include "stats/info_theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace hamlet {
namespace {

TEST(EntropyTest, UniformBinaryIsOneBit) {
  EXPECT_NEAR(EntropyFromCounts({50, 50}), 1.0, 1e-12);
}

TEST(EntropyTest, DeterministicIsZero) {
  EXPECT_NEAR(EntropyFromCounts({100, 0}), 0.0, 1e-12);
}

TEST(EntropyTest, UniformKAryIsLog2K) {
  EXPECT_NEAR(EntropyFromCounts({10, 10, 10, 10}), 2.0, 1e-12);
  EXPECT_NEAR(EntropyFromCounts({7, 7, 7, 7, 7, 7, 7, 7}), 3.0, 1e-12);
}

TEST(EntropyTest, GoldenSkewedValue) {
  // H(0.9, 0.1) = 0.4690 bits — the paper's "90%:10% split ~ 0.5 bits".
  EXPECT_NEAR(EntropyFromCounts({90, 10}), 0.46899559358928133, 1e-9);
}

TEST(EntropyTest, AllZeroCountsIsZero) {
  EXPECT_EQ(EntropyFromCounts({0, 0, 0}), 0.0);
}

TEST(EntropyTest, CodesOverload) {
  EXPECT_NEAR(Entropy({0, 1, 0, 1}, 2), 1.0, 1e-12);
}

TEST(ConditionalEntropyTest, FunctionalDependenceGivesZero) {
  // Y = F exactly: H(Y|F) = 0.
  ContingencyTable t({0, 1, 0, 1}, {0, 1, 0, 1}, 2, 2);
  EXPECT_NEAR(ConditionalEntropy(t), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, IndependenceKeepsFullEntropy) {
  // F independent of Y, both uniform: H(Y|F) = H(Y) = 1.
  ContingencyTable t({0, 0, 1, 1}, {0, 1, 0, 1}, 2, 2);
  EXPECT_NEAR(ConditionalEntropy(t), 1.0, 1e-12);
}

TEST(MutualInformationTest, PerfectPredictorGetsFullEntropy) {
  ContingencyTable t({0, 1, 0, 1}, {0, 1, 0, 1}, 2, 2);
  EXPECT_NEAR(MutualInformation(t), 1.0, 1e-12);
}

TEST(MutualInformationTest, IndependentIsZero) {
  ContingencyTable t({0, 0, 1, 1}, {0, 1, 0, 1}, 2, 2);
  EXPECT_NEAR(MutualInformation(t), 0.0, 1e-12);
}

TEST(MutualInformationTest, GoldenPartialValue) {
  // Joint: P(0,0)=P(1,1)=3/8, P(0,1)=P(1,0)=1/8.
  // I = 1 - H(0.25) = 1 - 0.811278 = 0.188722 bits.
  std::vector<uint32_t> f = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<uint32_t> y = {0, 0, 0, 1, 1, 1, 1, 0};
  EXPECT_NEAR(MutualInformation(f, y, 2, 2), 0.18872187554086717, 1e-9);
}

TEST(MutualInformationTest, SymmetricInArguments) {
  Rng rng(5);
  std::vector<uint32_t> a(500), b(500);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(4);
    b[i] = rng.Bernoulli(0.7) ? a[i] % 3 : rng.Uniform(3);
  }
  EXPECT_NEAR(MutualInformation(a, b, 4, 3), MutualInformation(b, a, 3, 4),
              1e-12);
}

TEST(MutualInformationTest, NonNegativeOnRandomData) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> f(200), y(200);
    for (int i = 0; i < 200; ++i) {
      f[i] = rng.Uniform(5);
      y[i] = rng.Uniform(3);
    }
    EXPECT_GE(MutualInformation(f, y, 5, 3), 0.0);
  }
}

TEST(MutualInformationTest, BoundedByMinEntropy) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> f(300), y(300);
    for (int i = 0; i < 300; ++i) {
      f[i] = rng.Uniform(6);
      y[i] = rng.Bernoulli(0.5) ? f[i] % 2 : rng.Uniform(2);
    }
    ContingencyTable t(f, y, 6, 2);
    double mi = MutualInformation(t);
    EXPECT_LE(mi, Entropy(f, 6) + 1e-9);
    EXPECT_LE(mi, Entropy(y, 2) + 1e-9);
  }
}

TEST(InformationGainRatioTest, NormalizesByFeatureEntropy) {
  // Y = F, both uniform binary: IGR = I/H(F) = 1/1 = 1.
  EXPECT_NEAR(InformationGainRatio({0, 1, 0, 1}, {0, 1, 0, 1}, 2, 2), 1.0,
              1e-12);
}

TEST(InformationGainRatioTest, ConstantFeatureIsZero) {
  EXPECT_EQ(InformationGainRatio({0, 0, 0, 0}, {0, 1, 0, 1}, 1, 2), 0.0);
}

TEST(InformationGainRatioTest, PenalizesLargeDomains) {
  // Proposition 3.2's phenomenon: a unique-valued key F has maximal
  // I(F;Y) but its IGR is diluted; a compact perfect predictor G can
  // have higher IGR even though I(G;Y) <= I(F;Y) (Theorem 3.1).
  std::vector<uint32_t> key = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<uint32_t> g = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<uint32_t> y = {0, 0, 0, 0, 1, 1, 1, 1};
  double igr_key = InformationGainRatio(key, y, 8, 2);
  double igr_g = InformationGainRatio(g, y, 2, 2);
  double mi_key = MutualInformation(key, y, 8, 2);
  double mi_g = MutualInformation(g, y, 2, 2);
  EXPECT_GE(mi_key, mi_g - 1e-12);
  EXPECT_GT(igr_g, igr_key);
}

TEST(PearsonCorrelationTest, PerfectLinear) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSeriesIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonCorrelationTest, TooShortIsZero) {
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(PearsonCorrelationTest, InvariantToAffineTransforms) {
  std::vector<double> x = {1, 4, 2, 8, 5};
  std::vector<double> y = {2, 3, 1, 9, 4};
  double base = PearsonCorrelation(x, y);
  std::vector<double> x2;
  for (double v : x) x2.push_back(3.0 * v - 7.0);
  EXPECT_NEAR(PearsonCorrelation(x2, y), base, 1e-12);
}

}  // namespace
}  // namespace hamlet
