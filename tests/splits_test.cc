#include "data/splits.h"

#include <gtest/gtest.h>

#include <set>

namespace hamlet {
namespace {

TEST(HoldoutSplitTest, PartitionsEveryIndexOnce) {
  Rng rng(1);
  HoldoutSplit s = MakeHoldoutSplit(100, rng);
  std::set<uint32_t> all;
  all.insert(s.train.begin(), s.train.end());
  all.insert(s.validation.begin(), s.validation.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(s.train.size() + s.validation.size() + s.test.size(), 100u);
}

TEST(HoldoutSplitTest, DefaultFractionsAre50_25_25) {
  Rng rng(2);
  HoldoutSplit s = MakeHoldoutSplit(1000, rng);
  EXPECT_EQ(s.train.size(), 500u);
  EXPECT_EQ(s.validation.size(), 250u);
  EXPECT_EQ(s.test.size(), 250u);
}

TEST(HoldoutSplitTest, CustomFractions) {
  Rng rng(3);
  SplitFractions f;
  f.train = 0.6;
  f.validation = 0.2;
  HoldoutSplit s = MakeHoldoutSplit(100, rng, f);
  EXPECT_EQ(s.train.size(), 60u);
  EXPECT_EQ(s.validation.size(), 20u);
  EXPECT_EQ(s.test.size(), 20u);
}

TEST(HoldoutSplitTest, DeterministicInRng) {
  Rng a(7), b(7);
  HoldoutSplit s1 = MakeHoldoutSplit(50, a);
  HoldoutSplit s2 = MakeHoldoutSplit(50, b);
  EXPECT_EQ(s1.train, s2.train);
  EXPECT_EQ(s1.test, s2.test);
}

TEST(HoldoutSplitTest, DifferentSeedsShuffleDifferently) {
  Rng a(7), b(8);
  EXPECT_NE(MakeHoldoutSplit(50, a).train, MakeHoldoutSplit(50, b).train);
}

TEST(HoldoutSplitTest, SmallN) {
  Rng rng(9);
  HoldoutSplit s = MakeHoldoutSplit(2, rng);
  EXPECT_EQ(s.train.size() + s.validation.size() + s.test.size(), 2u);
}

TEST(TrainTestSplitTest, Partitions) {
  Rng rng(11);
  TrainTestSplit s = MakeTrainTestSplit(100, rng, 0.8);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  std::set<uint32_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, FullTrainFraction) {
  Rng rng(13);
  TrainTestSplit s = MakeTrainTestSplit(10, rng, 1.0);
  EXPECT_EQ(s.train.size(), 10u);
  EXPECT_TRUE(s.test.empty());
}

TEST(SplitsDeathTest, InvalidFractionsAbort) {
  Rng rng(15);
  SplitFractions f;
  f.train = 0.9;
  f.validation = 0.3;  // Sums past 1.
  EXPECT_DEATH((void)MakeHoldoutSplit(10, rng, f), "fraction");
  EXPECT_DEATH((void)MakeTrainTestSplit(10, rng, 0.0), "fraction");
}

}  // namespace
}  // namespace hamlet
