#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"A", "Long header"});
  printer.AddRow({"wide cell", "x"});
  std::string out = printer.ToString();
  // Every line has equal length (trailing padding included).
  size_t first_nl = out.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  EXPECT_NE(out.find("wide cell"), std::string::npos);
  EXPECT_NE(out.find("Long header"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRowPresent) {
  TablePrinter printer({"X"});
  printer.AddRow({"1"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter printer({"X"});
  EXPECT_EQ(printer.num_rows(), 0u);
  printer.AddRow({"1"});
  printer.AddRow({"2"});
  EXPECT_EQ(printer.num_rows(), 2u);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter printer({"OnlyHeader"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("OnlyHeader"), std::string::npos);
}

TEST(TablePrinterDeathTest, WrongCellCountAborts) {
  TablePrinter printer({"A", "B"});
  EXPECT_DEATH(printer.AddRow({"only one"}), "cells");
}

}  // namespace
}  // namespace hamlet
