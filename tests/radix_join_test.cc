/// Unit lockdown for the radix join path's building blocks: the blocked
/// Bloom filter (common/bloom.h), the deterministic radix partitioner
/// (common/radix_partition.h), and the algorithm/filter resolution plus
/// telemetry of relational/radix_join.h. End-to-end bit-identity against
/// the CSR join on bundled datasets lives in
/// ingest_join_determinism_test.cc; this file pins the pieces.
///
/// Suite names contain "Determinism" where the contract is layout
/// stability across thread counts, so scripts/check_determinism.sh's
/// TSAN run picks those up via its name filter as well as the `joins`
/// ctest label.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/bloom.h"
#include "common/radix_partition.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"
#include "relational/join.h"
#include "relational/radix_join.h"
#include "relational/table.h"

namespace hamlet {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Blocked Bloom filter.

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<uint32_t> codes;
  for (uint32_t i = 0; i < 5000; ++i) {
    codes.push_back(static_cast<uint32_t>(SplitMix64(i)) % 100000u);
  }
  const BlockedBloomFilter filter = BlockedBloomFilter::FromCodes(codes);
  for (uint32_t c : codes) {
    EXPECT_TRUE(filter.MayContain(c)) << c;
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsSmall) {
  std::vector<uint32_t> codes;
  std::unordered_set<uint32_t> inserted;
  for (uint32_t i = 0; i < 10000; ++i) {
    const uint32_t c = static_cast<uint32_t>(SplitMix64(i));
    codes.push_back(c);
    inserted.insert(c);
  }
  const BlockedBloomFilter filter = BlockedBloomFilter::FromCodes(codes);
  uint32_t false_positives = 0, absent = 0;
  for (uint32_t i = 0; i < 20000; ++i) {
    const uint32_t c = static_cast<uint32_t>(SplitMix64(1u << 24 | i));
    if (inserted.count(c) != 0) continue;
    ++absent;
    if (filter.MayContain(c)) ++false_positives;
  }
  ASSERT_GT(absent, 0u);
  // kBitsPerKey = 10 with 3 blocked probes lands ~2-4%; 10% is the
  // "filter still pays for itself" ceiling.
  EXPECT_LT(static_cast<double>(false_positives) / absent, 0.10);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  const BlockedBloomFilter empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MayContain(0));
  EXPECT_FALSE(empty.MayContain(12345));

  const BlockedBloomFilter from_none =
      BlockedBloomFilter::FromCodes(std::vector<uint32_t>{});
  EXPECT_FALSE(from_none.MayContain(7));
}

TEST(BloomFilterDeterminismTest, ParallelBuildBitsAreIdentical) {
  std::vector<uint32_t> codes;
  for (uint32_t i = 0; i < 40000; ++i) {
    codes.push_back(static_cast<uint32_t>(SplitMix64(i)) % 65536u);
  }
  const BlockedBloomFilter serial = BlockedBloomFilter::FromCodes(codes, 1);
  for (uint32_t num_threads : {2u, 8u, 0u}) {
    const BlockedBloomFilter par =
        BlockedBloomFilter::FromCodes(codes, num_threads);
    EXPECT_EQ(par.words(), serial.words())
        << "threads=" << num_threads;
  }
}

// ---------------------------------------------------------------------------
// Radix partitioner.

TEST(RadixPartitionTest, LayoutGroupsByHighBitsInAscendingRowOrder) {
  // shift=8 over 10-bit codes -> 4 partitions.
  std::vector<uint32_t> codes(20000);
  for (uint32_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint32_t>(SplitMix64(i)) & 1023u;
  }
  const RadixPartitions parts = PartitionByCode(codes, 8, 4, 1);
  ASSERT_EQ(parts.offsets.size(), 5u);
  EXPECT_EQ(parts.offsets.front(), 0u);
  EXPECT_EQ(parts.offsets.back(), codes.size());
  EXPECT_EQ(parts.entries.size(), codes.size());
  for (uint32_t p = 0; p < 4; ++p) {
    uint32_t prev_row = 0;
    for (uint32_t i = parts.offsets[p]; i < parts.offsets[p + 1]; ++i) {
      const uint64_t entry = parts.entries[i];
      const uint32_t row = RadixEntryRow(entry);
      const uint32_t code = RadixEntryCode(entry);
      EXPECT_EQ(code, codes[row]);
      EXPECT_EQ(code >> 8, p);
      if (i != parts.offsets[p]) {
        EXPECT_GT(row, prev_row);
      }
      prev_row = row;
    }
  }
}

TEST(RadixPartitionTest, SkipCodeRowsAppearInNoPartition) {
  std::vector<uint32_t> codes(1000);
  uint32_t kept = 0;
  for (uint32_t i = 0; i < codes.size(); ++i) {
    if (i % 3 == 0) {
      codes[i] = kRadixSkipCode;
    } else {
      codes[i] = i & 255u;
      ++kept;
    }
  }
  const RadixPartitions parts = PartitionByCode(codes, 4, 16, 1);
  EXPECT_EQ(parts.entries.size(), kept);
  for (const uint64_t entry : parts.entries) {
    EXPECT_NE(RadixEntryRow(entry) % 3, 0u);
  }
}

TEST(RadixPartitionDeterminismTest, ShardCountNeverChangesTheLayout) {
  std::vector<uint32_t> codes(100000);
  for (uint32_t i = 0; i < codes.size(); ++i) {
    const uint64_t h = SplitMix64(i);
    codes[i] = (h % 37 == 0) ? kRadixSkipCode
                             : static_cast<uint32_t>(h) & 4095u;
  }
  const RadixPartitions serial = PartitionByCode(codes, 8, 16, 1);
  for (uint32_t num_threads : {2u, 3u, 8u, 0u}) {
    const RadixPartitions par = PartitionByCode(codes, 8, 16, num_threads);
    EXPECT_EQ(par.offsets, serial.offsets) << "threads=" << num_threads;
    EXPECT_TRUE(par.entries == serial.entries)
        << "threads=" << num_threads;
  }
}

TEST(RadixPartitionDeterminismTest, MaskedVariantMatchesSkipCodeRewrite) {
  // The keep-bitmap path must produce the exact layout of rewriting
  // dropped rows to kRadixSkipCode — at any shard count, including
  // shard boundaries that split bitmap words.
  constexpr uint32_t kN = 70000;  // Not a multiple of 64.
  std::vector<uint32_t> codes(kN), rewritten(kN);
  std::vector<uint64_t> keep((kN + 63) / 64, 0);
  for (uint32_t i = 0; i < kN; ++i) {
    codes[i] = static_cast<uint32_t>(SplitMix64(i)) & 2047u;
    const bool kept = SplitMix64(i ^ 0xabcdef) % 10 == 0;  // ~10% survive.
    rewritten[i] = kept ? codes[i] : kRadixSkipCode;
    if (kept) keep[i >> 6] |= uint64_t{1} << (i & 63);
  }
  const RadixPartitions expected = PartitionByCode(rewritten, 7, 16, 1);
  for (uint32_t num_threads : {1u, 2u, 8u}) {
    const RadixPartitions masked =
        PartitionByCodeMasked(codes, keep, 7, 16, num_threads);
    EXPECT_EQ(masked.offsets, expected.offsets)
        << "threads=" << num_threads;
    EXPECT_TRUE(masked.entries == expected.entries)
        << "threads=" << num_threads;
  }
}

TEST(RadixPartitionTest, MakeRadixLayoutCoversTheDomain) {
  // Explicit bits: fanout honoured, clamped to the code range.
  const RadixLayout four_bits = MakeRadixLayout(1u << 10, 4);
  EXPECT_EQ(four_bits.shift, 6u);
  EXPECT_EQ(four_bits.num_partitions, 16u);
  EXPECT_EQ(four_bits.sub_count, 64u);

  const RadixLayout over = MakeRadixLayout(8, 30);  // More bits than codes.
  EXPECT_EQ(over.shift, 0u);
  EXPECT_EQ(over.num_partitions, 8u);

  // Auto: small domains stay monolithic, large ones cap the fanout.
  const RadixLayout small = MakeRadixLayout(1000, 0);
  EXPECT_EQ(small.num_partitions, 1u);
  const RadixLayout large = MakeRadixLayout(1u << 24, 0);
  EXPECT_LE(large.num_partitions, 32u);
  EXPECT_GT(large.num_partitions, 1u);

  // Every domain code must map to a valid partition.
  for (uint32_t domain : {1u, 2u, 1000u, 4097u, 1u << 20}) {
    for (uint32_t bits : {0u, 3u, 8u}) {
      const RadixLayout lay = MakeRadixLayout(domain, bits);
      EXPECT_LT((domain - 1) >> lay.shift, lay.num_partitions)
          << "domain=" << domain << " bits=" << bits;
    }
  }
}

// ---------------------------------------------------------------------------
// Join algorithm / Bloom resolution.

TEST(ResolveJoinAlgorithmTest, ExplicitChoicePassesThrough) {
  obs::CostProfileStore::Global().Clear();
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kCsr;
  EXPECT_EQ(ResolveJoinAlgorithm(options, 1u << 20, 1u << 20, 1u << 20,
                                 "join.hash", "join.radix"),
            JoinAlgorithm::kCsr);
  options.algorithm = JoinAlgorithm::kRadix;
  EXPECT_EQ(ResolveJoinAlgorithm(options, 8, 8, 8, "join.hash",
                                 "join.radix"),
            JoinAlgorithm::kRadix);
}

TEST(ResolveJoinAlgorithmTest, FallbackHeuristicUsesSizeThresholds) {
  obs::CostProfileStore::Global().Clear();
  obs::CostProfileStore::Global().ClearCalibration();
  JoinOptions options;  // kAuto.
  // Small on either axis: CSR.
  EXPECT_EQ(ResolveJoinAlgorithm(options, 100, 100, 100, "join.hash",
                                 "join.radix"),
            JoinAlgorithm::kCsr);
  EXPECT_EQ(ResolveJoinAlgorithm(options, 1u << 20, 1u << 20,
                                 kRadixAutoMinDistinctKeys - 1, "join.hash",
                                 "join.radix"),
            JoinAlgorithm::kCsr);
  EXPECT_EQ(ResolveJoinAlgorithm(options, kRadixAutoMinProbeRows - 1,
                                 1u << 20, 1u << 20, "join.hash",
                                 "join.radix"),
            JoinAlgorithm::kCsr);
  // Large on both: radix.
  EXPECT_EQ(ResolveJoinAlgorithm(options, kRadixAutoMinProbeRows, 1u << 20,
                                 kRadixAutoMinDistinctKeys, "join.hash",
                                 "join.radix"),
            JoinAlgorithm::kRadix);
}

TEST(ResolveJoinAlgorithmTest, MeasuredCostProfileOverridesHeuristic) {
  // Feed the store measured records where CSR is the cheaper operator at
  // a build size the heuristic would hand to radix — the measurement
  // must win. Then flip the costs and watch the choice flip.
  auto& store = obs::CostProfileStore::Global();
  store.Clear();
  store.ClearCalibration();

  obs::OperatorFeatures csr_features;
  csr_features.op = "join.hash";
  csr_features.rows_in = 1u << 20;
  csr_features.build_rows = 1u << 20;
  obs::OperatorFeatures radix_features = csr_features;
  radix_features.op = "join.radix";

  obs::CostObservation cheap, expensive;
  cheap.total_ns = 10'000'000;      // 10ns per probe row.
  expensive.total_ns = 30'000'000;  // 30ns per probe row.

  store.Record(csr_features, cheap);
  store.Record(radix_features, expensive);
  JoinOptions options;  // kAuto.
  EXPECT_EQ(ResolveJoinAlgorithm(options, 1u << 20, 1u << 20, 1u << 20,
                                 "join.hash", "join.radix"),
            JoinAlgorithm::kCsr);

  store.Clear();
  store.Record(csr_features, expensive);
  store.Record(radix_features, cheap);
  EXPECT_EQ(ResolveJoinAlgorithm(options, 1u << 20, 1u << 20, 1u << 20,
                                 "join.hash", "join.radix"),
            JoinAlgorithm::kRadix);
  store.Clear();
}

TEST(ResolveBloomFilterTest, ModesAndCoverageHeuristic) {
  EXPECT_TRUE(ResolveBloomFilter(BloomFilterMode::kOn, 1u << 20, 16));
  EXPECT_FALSE(ResolveBloomFilter(BloomFilterMode::kOff, 16, 1u << 20));
  // kAuto: on exactly when the build side cannot cover its key domain.
  EXPECT_TRUE(ResolveBloomFilter(BloomFilterMode::kAuto, 100, 1000));
  EXPECT_FALSE(ResolveBloomFilter(BloomFilterMode::kAuto, 1000, 1000));
  EXPECT_FALSE(ResolveBloomFilter(BloomFilterMode::kAuto, 499, 998));
  EXPECT_TRUE(ResolveBloomFilter(BloomFilterMode::kAuto, 498, 998));
}

// ---------------------------------------------------------------------------
// The radix joins themselves.

Table MakeBuildSide(uint32_t rows, uint32_t domain) {
  TableBuilder builder(
      "R", Schema({ColumnSpec::Feature("K2"), ColumnSpec::Feature("VR")}));
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t k = static_cast<uint32_t>(SplitMix64(i)) % domain;
    EXPECT_TRUE(builder
                    .AppendRowLabels({"k" + std::to_string(k),
                                      "v" + std::to_string(i % 17)})
                    .ok());
  }
  return builder.Build();
}

Table MakeProbeSide(uint32_t rows, uint32_t domain) {
  TableBuilder builder(
      "L", Schema({ColumnSpec::Feature("K"), ColumnSpec::Feature("VL")}));
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t k =
        static_cast<uint32_t>(SplitMix64(i ^ 0x5eed)) % domain;
    EXPECT_TRUE(builder
                    .AppendRowLabels({"k" + std::to_string(k),
                                      "w" + std::to_string(i % 13)})
                    .ok());
  }
  return builder.Build();
}

void ExpectSameJoinOutput(const Table& a, const Table& b,
                          const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (uint32_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.column(c).codes(), b.column(c).codes())
        << what << " column " << a.schema().column(c).name;
  }
}

TEST(RadixJoinDeterminismTest, ManyToManyMatchesCsrWithBloomOnAndOff) {
  // Disjoint label universes force a real DomainRemap (the non-identity
  // probe path); duplicate keys on both sides exercise many-to-many
  // emit order.
  const Table right = MakeBuildSide(4000, 500);
  const Table probe = MakeProbeSide(6000, 800);  // k500..k799 never match.

  JoinOptions csr;
  csr.num_threads = 1;
  csr.algorithm = JoinAlgorithm::kCsr;
  csr.bloom = BloomFilterMode::kOff;
  auto base = HashJoin(probe, right, "K", "K2", csr);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_GT(base->num_rows(), 0u);

  for (BloomFilterMode bloom : {BloomFilterMode::kOff, BloomFilterMode::kOn}) {
    for (uint32_t radix_bits : {0u, 2u, 6u}) {
      for (uint32_t num_threads : {1u, 8u}) {
        JoinOptions options;
        options.num_threads = num_threads;
        options.algorithm = JoinAlgorithm::kRadix;
        options.radix_bits = radix_bits;
        options.bloom = bloom;
        auto t = HashJoin(probe, right, "K", "K2", options);
        ASSERT_TRUE(t.ok()) << t.status();
        ExpectSameJoinOutput(
            *t, *base,
            "bloom=" + std::to_string(bloom == BloomFilterMode::kOn) +
                " bits=" + std::to_string(radix_bits) +
                " threads=" + std::to_string(num_threads));
      }
    }
  }
}

TEST(RadixJoinDeterminismTest, SparseAndDenseEmitPathsAgree) {
  // Sparse emit engages when the pre-filter drops >7/8 of probe rows;
  // a build side covering ~1% of the probe's key universe gets there.
  // The same join with the filter off runs the dense passes — outputs
  // must be identical either way.
  const Table right = MakeBuildSide(300, 30);      // Keys k0..k29.
  const Table probe = MakeProbeSide(50000, 4000);  // ~0.75% match.

  JoinOptions dense;
  dense.num_threads = 1;
  dense.algorithm = JoinAlgorithm::kRadix;
  dense.bloom = BloomFilterMode::kOff;
  auto dense_out = HashJoin(probe, right, "K", "K2", dense);
  ASSERT_TRUE(dense_out.ok()) << dense_out.status();
  ASSERT_GT(dense_out->num_rows(), 0u);

  for (uint32_t num_threads : {1u, 8u}) {
    JoinOptions sparse;
    sparse.num_threads = num_threads;
    sparse.algorithm = JoinAlgorithm::kRadix;
    sparse.bloom = BloomFilterMode::kOn;
    auto sparse_out = HashJoin(probe, right, "K", "K2", sparse);
    ASSERT_TRUE(sparse_out.ok()) << sparse_out.status();
    ExpectSameJoinOutput(*sparse_out, *dense_out,
                         "threads=" + std::to_string(num_threads));
  }
}

TEST(RadixJoinTest, CostRecordCarriesPartitionAndBloomPhases) {
  const Table right = MakeBuildSide(2000, 3000);  // Sparse coverage.
  const Table probe = MakeProbeSide(30000, 3000);

  auto& store = obs::CostProfileStore::Global();
  store.Clear();
  obs::SetEnabled(true);
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kRadix;
  options.bloom = BloomFilterMode::kOn;
  options.num_threads = 2;
  auto t = HashJoin(probe, right, "K", "K2", options);
  obs::SetEnabled(false);
  ASSERT_TRUE(t.ok()) << t.status();

  const obs::CostProfile profile = store.Snapshot();
  const obs::CostRecord* radix = nullptr;
  for (const auto& [key, record] : profile.records()) {
    if (record.features.op == "join.radix") radix = &record;
  }
  ASSERT_NE(radix, nullptr) << "no join.radix cost record";
  EXPECT_EQ(radix->observations, 1u);
  EXPECT_EQ(radix->features.rows_in, probe.num_rows());
  EXPECT_EQ(radix->features.build_rows, right.num_rows());
  EXPECT_GT(radix->total_ns_sum, 0u);
  EXPECT_GT(radix->partition_ns_sum, 0u);
  EXPECT_GT(radix->bloom_build_ns_sum, 0u);
  store.Clear();
}

TEST(RadixJoinTest, KfkCostRecordCarriesPartitionPhase) {
  TableBuilder rb("R", Schema({ColumnSpec::PrimaryKey("RID"),
                               ColumnSpec::Feature("XR")}));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(rb.AppendRowLabels({"r" + std::to_string(i),
                                    "x" + std::to_string(i % 7)})
                    .ok());
  }
  Table r = rb.Build();
  TableBuilder sb("S", Schema({ColumnSpec::Target("Y"),
                               ColumnSpec::ForeignKey("FK", "R")}),
                  {nullptr, r.column(0).domain()});
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        sb.AppendRowLabels({"0", "r" + std::to_string(i % 500)}).ok());
  }
  Table s = sb.Build();

  auto& store = obs::CostProfileStore::Global();
  store.Clear();
  obs::SetEnabled(true);
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kRadix;
  options.num_threads = 2;
  auto t = KfkJoin(s, r, "FK", options);
  obs::SetEnabled(false);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), s.num_rows());

  const obs::CostProfile profile = store.Snapshot();
  const obs::CostRecord* radix = nullptr;
  for (const auto& [key, record] : profile.records()) {
    if (record.features.op == "join.radix.kfk") radix = &record;
  }
  ASSERT_NE(radix, nullptr) << "no join.radix.kfk cost record";
  EXPECT_GT(radix->partition_ns_sum, 0u);
  EXPECT_EQ(radix->bloom_build_ns_sum, 0u);  // KFK joins never filter.
  store.Clear();
}

}  // namespace
}  // namespace hamlet
