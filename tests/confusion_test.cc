#include "stats/confusion.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

ConfusionMatrix Tiny() {
  // truth:     0 0 0 1 1 2
  // predicted: 0 0 1 1 1 0
  return ConfusionMatrix({0, 0, 0, 1, 1, 2}, {0, 0, 1, 1, 1, 0}, 3);
}

TEST(ConfusionMatrixTest, CellCounts) {
  ConfusionMatrix m = Tiny();
  EXPECT_EQ(m.count(0, 0), 2u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_EQ(m.count(1, 1), 2u);
  EXPECT_EQ(m.count(2, 0), 1u);
  EXPECT_EQ(m.count(2, 2), 0u);
  EXPECT_EQ(m.total(), 6u);
  EXPECT_EQ(m.num_classes(), 3u);
}

TEST(ConfusionMatrixTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Tiny().Accuracy(), 4.0 / 6.0);
}

TEST(ConfusionMatrixTest, PerClassRecall) {
  ConfusionMatrix m = Tiny();
  EXPECT_DOUBLE_EQ(m.Recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(1), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(2), 0.0);
}

TEST(ConfusionMatrixTest, PerClassPrecision) {
  ConfusionMatrix m = Tiny();
  EXPECT_DOUBLE_EQ(m.Precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Precision(2), 0.0);  // Never predicted.
}

TEST(ConfusionMatrixTest, F1AndMacroF1) {
  ConfusionMatrix m = Tiny();
  EXPECT_DOUBLE_EQ(m.F1(0), 2.0 / 3.0);  // p = r = 2/3.
  EXPECT_DOUBLE_EQ(m.F1(1), 2.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0));
  EXPECT_DOUBLE_EQ(m.F1(2), 0.0);
  EXPECT_DOUBLE_EQ(m.MacroF1(), (m.F1(0) + m.F1(1) + m.F1(2)) / 3.0);
}

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix m({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, MacroF1PunishesRareClassCollapse) {
  // 90% class 0, 10% class 1; classifier always predicts 0: accuracy is
  // flattering (0.9) but macro-F1 exposes the collapse.
  std::vector<uint32_t> truth, pred;
  for (int i = 0; i < 90; ++i) {
    truth.push_back(0);
    pred.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    truth.push_back(1);
    pred.push_back(0);
  }
  ConfusionMatrix m(truth, pred, 2);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.9);
  EXPECT_LT(m.MacroF1(), 0.5);
}

TEST(ConfusionMatrixTest, EmptyInput) {
  ConfusionMatrix m({}, {}, 2);
  EXPECT_EQ(m.Accuracy(), 0.0);
  EXPECT_EQ(m.total(), 0u);
}

TEST(ConfusionMatrixTest, RenderingMentionsEveryCell) {
  std::string s = Tiny().ToString();
  EXPECT_NE(s.find("truth"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(ConfusionMatrixDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(ConfusionMatrix({0}, {0, 1}, 2), "length");
}

}  // namespace
}  // namespace hamlet
