/// Factorized-vs-materialized equivalence suite (ctest label
/// `factorized`). The contract under test — the determinism half of
/// ml/factorized.h — is *bit* identity, not approximation: over every
/// bundled dataset, selector, and thread count, training and selecting
/// over the normalized (S, R) view must produce the exact same sufficient
/// statistics, selected subsets, model parameters, validation errors, and
/// holdout errors as the materialized join, because the factorized build
/// reorders only integer additions. Also locks the cache-key separation
/// (a factorized entry can never alias a materialized one) and the
/// property that random KFK schemas — FK skew, unreferenced attribute
/// rows, missing classes — agree cell-for-cell.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "datasets/synth_common.h"
#include "fs/exhaustive_search.h"
#include "fs/filters.h"
#include "fs/greedy_search.h"
#include "fs/runner.h"
#include "analytics/pipeline.h"
#include "ml/factorized.h"
#include "ml/naive_bayes.h"
#include "ml/suff_stats.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace hamlet {
namespace {

const uint32_t kThreadCounts[] = {1u, 2u, 8u};

struct DatasetCase {
  const char* name;
  double scale;
};
// One dataset with avoidable joins, one with an open-domain key, one
// where nothing is avoidable — the three schema shapes the paper's
// Figure 6 corpus contains.
const DatasetCase kDatasetCases[] = {
    {"Walmart", 0.02}, {"Expedia", 0.004}, {"Yelp", 0.02}};

std::vector<std::string> AllFkColumns(const NormalizedDataset& dataset) {
  std::vector<std::string> fks;
  for (const auto& fk : dataset.foreign_keys()) fks.push_back(fk.fk_column);
  return fks;
}

/// Both views of one dataset: the materialized join and the factorized
/// pair, plus the (identical) holdout split.
struct TwinCase {
  std::string name;
  NormalizedDataset dataset;
  std::unique_ptr<EncodedDataset> mat;
  FactorizedDataset fac;
  HoldoutSplit split;
  ErrorMetric metric;
};

TwinCase MakeTwinCase(const DatasetCase& c, uint64_t seed) {
  TwinCase out;
  out.name = c.name;
  out.dataset = *MakeDataset(c.name, c.scale, seed);
  const std::vector<std::string> fks = AllFkColumns(out.dataset);
  Table table = *out.dataset.JoinSubset(fks);
  out.mat =
      std::make_unique<EncodedDataset>(*EncodedDataset::FromTableAuto(table));
  out.fac = *FactorizedDataset::Make(out.dataset, fks);
  Rng rng(seed + 1);
  out.split = MakeHoldoutSplit(out.mat->num_rows(), rng);
  out.metric = *MetricForDataset(c.name);
  return out;
}

void ExpectStatsBitIdentical(const SuffStats& a, const SuffStats& b,
                             const std::string& context) {
  EXPECT_EQ(a.num_classes, b.num_classes) << context;
  EXPECT_EQ(a.class_counts, b.class_counts) << context;
  EXPECT_EQ(a.cardinalities, b.cardinalities) << context;
  ASSERT_EQ(a.feature_counts.size(), b.feature_counts.size()) << context;
  for (size_t j = 0; j < a.feature_counts.size(); ++j) {
    EXPECT_EQ(a.feature_counts[j], b.feature_counts[j])
        << context << " feature " << j;
  }
}

// --- The factorized feature space equals the materialized one. ------------

TEST(FactorizedViewTest, FeatureSpaceMatchesMaterializedJoin) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 11);
    SCOPED_TRACE(t.name);
    ASSERT_EQ(t.fac.num_rows(), t.mat->num_rows());
    ASSERT_EQ(t.fac.num_features(), t.mat->num_features());
    EXPECT_EQ(t.fac.num_classes(), t.mat->num_classes());
    EXPECT_EQ(t.fac.labels(), t.mat->labels());
    std::vector<uint32_t> all_rows(t.fac.num_rows());
    for (uint32_t i = 0; i < t.fac.num_rows(); ++i) all_rows[i] = i;
    std::vector<uint32_t> gathered;
    for (uint32_t j = 0; j < t.fac.num_features(); ++j) {
      EXPECT_EQ(t.fac.meta(j).name, t.mat->meta(j).name) << "feature " << j;
      EXPECT_EQ(t.fac.meta(j).cardinality, t.mat->meta(j).cardinality)
          << "feature " << j;
      t.fac.GatherCodes(j, all_rows, &gathered);
      EXPECT_EQ(gathered, t.mat->feature(j)) << "feature " << j;
    }
  }
}

TEST(FactorizedViewTest, ValidationMatchesKfkJoinErrors) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 12);
  // A non-FK column is rejected.
  auto bad = FactorizedDataset::Make(t.dataset, {"Dept"});
  EXPECT_FALSE(bad.ok());
  // Factorizing the same FK twice collides on R's column names, exactly
  // like joining the same table twice would.
  const std::vector<std::string> fks = AllFkColumns(t.dataset);
  ASSERT_FALSE(fks.empty());
  auto dup = FactorizedDataset::Make(t.dataset, {fks[0], fks[0]});
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("column name collision"),
            std::string::npos)
      << dup.status().message();
}

// --- Sufficient statistics: cell-for-cell, at any thread count. -----------

TEST(FactorizedSuffStatsTest, BitIdenticalToMaterializedBuild) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 13);
    const SuffStats ref = BuildSuffStats(*t.mat, t.split.train, 1);
    for (uint32_t threads : {1u, 2u, 8u, 0u}) {
      const SuffStats fac =
          BuildFactorizedSuffStats(t.fac, t.split.train, threads);
      ExpectStatsBitIdentical(
          ref, fac, t.name + " threads " + std::to_string(threads));
    }
  }
}

TEST(FactorizedSuffStatsTest, KeyIsMarkedFactorized) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 14);
  ASSERT_FALSE(t.fac.relations().empty());
  EXPECT_NE(t.fac.cache_key().secondary, 0u);
  EXPECT_NE(t.fac.cache_key().fingerprint, 0u);
  const SuffStats fac = BuildFactorizedSuffStats(t.fac, t.split.train, 1);
  EXPECT_EQ(fac.fingerprint, t.fac.cache_key().fingerprint);
  const SuffStats mat = BuildSuffStats(*t.mat, t.split.train, 1);
  EXPECT_EQ(mat.fingerprint, 0u);
}

// --- Cache-key separation regression. -------------------------------------
// SuffStatsCache used to key on EncodedDataset::cache_id() + row hash
// alone; the factorized entry shares the entity's cache id, so without
// the composite key a cached factorized build could be served to an
// entity-only consumer (and vice versa) with a different feature space.

TEST(FactorizedCacheTest, FactorizedEntryNeverAliasesMaterialized) {
  SuffStatsCache::Global().Clear();
  TwinCase t = MakeTwinCase(kDatasetCases[0], 15);
  auto fac = GetOrBuildFactorizedSuffStats(t.fac, t.split.train, 1);
  ASSERT_NE(fac, nullptr);
  // The factorized statistics cover entity + foreign features...
  EXPECT_EQ(fac->feature_counts.size(), t.fac.num_features());
  // ...but a Peek on the *entity* dataset alone must miss: its key is
  // {cache_id, 0, 0}, not the composite factorized key.
  EXPECT_EQ(SuffStatsCache::Global().Peek(t.fac.entity(), t.split.train),
            nullptr);
  // An entity-only build coexists under its own key; both stay live.
  auto entity_stats =
      SuffStatsCache::Global().GetOrBuild(t.fac.entity(), t.split.train, 1);
  ASSERT_NE(entity_stats, nullptr);
  EXPECT_NE(entity_stats.get(), fac.get());
  EXPECT_EQ(entity_stats->feature_counts.size(),
            t.fac.entity().num_features());
  // And the factorized entry is still served for the factorized key.
  auto again = GetOrBuildFactorizedSuffStats(t.fac, t.split.train, 1);
  EXPECT_EQ(again.get(), fac.get());
}

// --- Selections: every method, bit-identical, any thread count. -----------

std::vector<std::unique_ptr<FeatureSelector>> AllSelectors() {
  std::vector<std::unique_ptr<FeatureSelector>> out;
  out.push_back(std::make_unique<ForwardSelection>());
  out.push_back(std::make_unique<BackwardSelection>());
  out.push_back(std::make_unique<ExhaustiveSelection>(12));
  out.push_back(std::make_unique<ScoreFilter>(FilterScore::kMutualInformation));
  out.push_back(
      std::make_unique<ScoreFilter>(FilterScore::kInformationGainRatio));
  return out;
}

TEST(FactorizedSelectionTest, AllMethodsBitIdenticalAcrossThreadCounts) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 16);
    ClassifierFactory factory = MakeNaiveBayesFactory();
    std::vector<uint32_t> candidates = t.mat->AllFeatureIndices();
    // The exhaustive lattice is 2^d; keep d small but real.
    std::vector<uint32_t> capped = candidates;
    if (capped.size() > 10) capped.resize(10);

    for (auto& selector : AllSelectors()) {
      const bool exhaustive = selector->name() == "exhaustive_selection";
      const std::vector<uint32_t>& cands = exhaustive ? capped : candidates;
      for (uint32_t threads : kThreadCounts) {
        SCOPED_TRACE(t.name + " " + selector->name() + " threads " +
                     std::to_string(threads));
        selector->set_num_threads(threads);
        SuffStatsCache::Global().Clear();
        auto mat = selector->Select(*t.mat, t.split, factory, t.metric, cands);
        ASSERT_TRUE(mat.ok()) << mat.status();
        SuffStatsCache::Global().Clear();
        auto fac = selector->SelectFactorized(t.fac, t.split, factory,
                                              t.metric, cands);
        ASSERT_TRUE(fac.ok()) << fac.status();
        EXPECT_EQ(fac->selected, mat->selected);
        EXPECT_EQ(fac->validation_error, mat->validation_error);
        EXPECT_EQ(fac->models_trained, mat->models_trained);
      }
    }
  }
}

TEST(FactorizedSelectionTest, ModelParametersAndHoldoutBitIdentical) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 17);
    ClassifierFactory factory = MakeNaiveBayesFactory();
    const std::vector<uint32_t> candidates = t.mat->AllFeatureIndices();
    ForwardSelection forward;
    forward.set_num_threads(2);
    SCOPED_TRACE(t.name);

    SuffStatsCache::Global().Clear();
    auto mat = RunFeatureSelection(forward, *t.mat, t.split, factory,
                                   t.metric, candidates);
    ASSERT_TRUE(mat.ok()) << mat.status();
    SuffStatsCache::Global().Clear();
    auto fac = RunFeatureSelectionFactorized(forward, t.fac, t.split, factory,
                                             t.metric, candidates);
    ASSERT_TRUE(fac.ok()) << fac.status();

    EXPECT_EQ(fac->selection.selected, mat->selection.selected);
    EXPECT_EQ(fac->selection.validation_error, mat->selection.validation_error);
    EXPECT_EQ(fac->selected_names, mat->selected_names);
    EXPECT_EQ(fac->holdout_test_error, mat->holdout_test_error);

    // The final models themselves: trained from the two statistics
    // builds, every exported double must agree bit-for-bit.
    const SuffStats mat_stats = BuildSuffStats(*t.mat, t.split.train, 1);
    const SuffStats fac_stats = BuildFactorizedSuffStats(t.fac, t.split.train, 1);
    NaiveBayes nb_mat(1.0), nb_fac(1.0);
    ASSERT_TRUE(nb_mat.TrainFromStats(mat_stats, mat->selection.selected).ok());
    ASSERT_TRUE(nb_fac.TrainFromStats(fac_stats, fac->selection.selected).ok());
    const NaiveBayesParams pm = nb_mat.ExportParams();
    const NaiveBayesParams pf = nb_fac.ExportParams();
    EXPECT_EQ(pf.features, pm.features);
    EXPECT_EQ(pf.log_priors, pm.log_priors);
    ASSERT_EQ(pf.log_likelihoods.size(), pm.log_likelihoods.size());
    for (size_t j = 0; j < pm.log_likelihoods.size(); ++j) {
      EXPECT_EQ(pf.log_likelihoods[j], pm.log_likelihoods[j])
          << "feature slot " << j;
    }
  }
}

// --- Edge cases: FK skew and a class missing from the train rows. ---------

SynthDatasetSpec SkewedSpec() {
  SynthDatasetSpec spec;
  spec.name = "SkewTwin";
  spec.entity_name = "Events";
  spec.pk_name = "EventID";
  spec.target_name = "Level";
  spec.num_classes = 3;
  spec.n_s = 600;
  spec.label_noise = 0.3;
  spec.s_features.push_back({SynthFeatureSpec::Signal("Hour", 6, 0.0), 0.8});
  SynthAttributeTableSpec users;
  users.table_name = "Users";
  users.pk_name = "UserID";
  users.fk_name = "UserID";
  users.num_rows = 40;
  users.fk_zipf = 1.6;  // Head-heavy: most users have very few rows.
  users.target_weight = 0.9;
  users.features.push_back(SynthFeatureSpec::Signal("Age", 5, 0.9));
  users.features.push_back(SynthFeatureSpec::Noise("Quirk", 7));
  spec.tables.push_back(users);
  return spec;
}

TEST(FactorizedEdgeCaseTest, FkSkewedDatasetBitIdentical) {
  NormalizedDataset dataset = *GenerateSyntheticDataset(SkewedSpec(), 1.0, 23);
  const std::vector<std::string> fks = AllFkColumns(dataset);
  Table table = *dataset.JoinSubset(fks);
  EncodedDataset mat = *EncodedDataset::FromTableAuto(table);
  FactorizedDataset fac = *FactorizedDataset::Make(dataset, fks);
  Rng rng(24);
  HoldoutSplit split = MakeHoldoutSplit(mat.num_rows(), rng);
  const SuffStats a = BuildSuffStats(mat, split.train, 1);
  for (uint32_t threads : kThreadCounts) {
    const SuffStats b = BuildFactorizedSuffStats(fac, split.train, threads);
    ExpectStatsBitIdentical(a, b, "skew threads " + std::to_string(threads));
  }
  ForwardSelection forward;
  ClassifierFactory factory = MakeNaiveBayesFactory();
  SuffStatsCache::Global().Clear();
  auto mr = forward.Select(mat, split, factory, ErrorMetric::kZeroOne,
                           mat.AllFeatureIndices());
  SuffStatsCache::Global().Clear();
  auto fr = forward.SelectFactorized(fac, split, factory,
                                     ErrorMetric::kZeroOne,
                                     fac.AllFeatureIndices());
  ASSERT_TRUE(mr.ok() && fr.ok());
  EXPECT_EQ(fr->selected, mr->selected);
  EXPECT_EQ(fr->validation_error, mr->validation_error);
}

TEST(FactorizedEdgeCaseTest, ClassMissingFromTrainRows) {
  // Hand-built pair where the label domain has 3 classes but the chosen
  // train rows only contain 2 — the zero row in class_counts must
  // propagate identically through both builds.
  Schema r_schema({ColumnSpec::PrimaryKey("StoreID"),
                   ColumnSpec::Feature("Size")});
  TableBuilder rb("Stores", r_schema);
  ASSERT_TRUE(rb.AppendRowLabels({"s0", "big"}).ok());
  ASSERT_TRUE(rb.AppendRowLabels({"s1", "small"}).ok());
  ASSERT_TRUE(rb.AppendRowLabels({"s2", "big"}).ok());
  Table stores = rb.Build();

  Schema s_schema({ColumnSpec::PrimaryKey("SaleID"),
                   ColumnSpec::Target("Level"),
                   ColumnSpec::Feature("Promo"),
                   ColumnSpec::ForeignKey("StoreID", "Stores")});
  TableBuilder sb("Sales", s_schema,
                  {nullptr, nullptr, nullptr, stores.column(0).domain()});
  ASSERT_TRUE(sb.AppendRowLabels({"x0", "low", "yes", "s0"}).ok());
  ASSERT_TRUE(sb.AppendRowLabels({"x1", "mid", "no", "s1"}).ok());
  ASSERT_TRUE(sb.AppendRowLabels({"x2", "high", "yes", "s2"}).ok());
  ASSERT_TRUE(sb.AppendRowLabels({"x3", "low", "no", "s1"}).ok());
  ASSERT_TRUE(sb.AppendRowLabels({"x4", "mid", "yes", "s0"}).ok());
  Table sales = sb.Build();

  NormalizedDataset dataset =
      *NormalizedDataset::Make("MiniSales", sales, {stores});
  EncodedDataset mat =
      *EncodedDataset::FromTableAuto(*dataset.JoinSubset({"StoreID"}));
  FactorizedDataset fac = *FactorizedDataset::Make(dataset, {"StoreID"});
  // Train rows {0, 1, 3, 4} never contain the "high" class.
  const std::vector<uint32_t> train = {0, 1, 3, 4};
  const SuffStats a = BuildSuffStats(mat, train, 1);
  const SuffStats b = BuildFactorizedSuffStats(fac, train, 1);
  ExpectStatsBitIdentical(a, b, "missing class");
  // Target labels encode in first-seen order (low=0, mid=1, high=2) and
  // "high" only occurs on excluded row 2 — both builds must carry the
  // zero count rather than dropping the class.
  ASSERT_EQ(a.num_classes, 3u);
  EXPECT_EQ(a.class_counts[2], 0u);
}

// --- Property: random KFK schemas agree cell-for-cell. --------------------

TEST(FactorizedPropertyTest, RandomKfkSchemasAgreeCellForCell) {
  Rng seeder(0xFACDADull);
  for (int trial = 0; trial < 12; ++trial) {
    const uint64_t seed = seeder.NextU64();
    SCOPED_TRACE("trial " + std::to_string(trial) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);

    // Random attribute table: |R| in [1, 60], 1-4 feature columns with
    // cardinalities 2-6. Some R rows end up unreferenced by S.
    const uint32_t num_r = 1 + rng.Uniform(60);
    const uint32_t num_r_features = 1 + rng.Uniform(4);
    std::vector<ColumnSpec> r_specs = {ColumnSpec::PrimaryKey("RID")};
    for (uint32_t f = 0; f < num_r_features; ++f) {
      r_specs.push_back(ColumnSpec::Feature("R" + std::to_string(f)));
    }
    std::vector<uint32_t> r_cards(num_r_features);
    for (uint32_t f = 0; f < num_r_features; ++f) {
      r_cards[f] = 2 + rng.Uniform(5);
    }
    TableBuilder rb("R", Schema(r_specs));
    for (uint32_t i = 0; i < num_r; ++i) {
      std::vector<std::string> row = {"r" + std::to_string(i)};
      for (uint32_t f = 0; f < num_r_features; ++f) {
        row.push_back("v" + std::to_string(rng.Uniform(r_cards[f])));
      }
      ASSERT_TRUE(rb.AppendRowLabels(row).ok());
    }
    Table r = rb.Build();

    // Random entity table over those RIDs, with skewed FK draws: row i
    // references RID (i * i) % referenced_cap, a head-heavy deterministic
    // skew, with referenced_cap <= |R| so a tail of R is unreferenced.
    const uint32_t num_s = 20 + rng.Uniform(200);
    const uint32_t num_classes = 2 + rng.Uniform(3);
    const uint32_t referenced_cap = 1 + rng.Uniform(num_r);
    TableBuilder sb("S",
                    Schema({ColumnSpec::PrimaryKey("SID"),
                            ColumnSpec::Target("Y"),
                            ColumnSpec::Feature("XS"),
                            ColumnSpec::ForeignKey("RID", "R")}),
                    {nullptr, nullptr, nullptr, r.column(0).domain()});
    for (uint32_t i = 0; i < num_s; ++i) {
      const uint32_t pick = rng.Uniform(2) == 0
                                ? rng.Uniform(referenced_cap)
                                : (i * i) % referenced_cap;
      ASSERT_TRUE(sb.AppendRowLabels(
                        {"s" + std::to_string(i),
                         "y" + std::to_string(rng.Uniform(num_classes)),
                         "x" + std::to_string(rng.Uniform(4)),
                         "r" + std::to_string(pick)})
                      .ok());
    }
    Table s = sb.Build();

    NormalizedDataset dataset = *NormalizedDataset::Make("Prop", s, {r});
    EncodedDataset mat =
        *EncodedDataset::FromTableAuto(*dataset.JoinSubset({"RID"}));
    FactorizedDataset fac = *FactorizedDataset::Make(dataset, {"RID"});

    // Random row subset (possibly with repeats dropped): every third row.
    std::vector<uint32_t> rows;
    for (uint32_t i = 0; i < num_s; ++i) {
      if (rng.Uniform(4) != 0) rows.push_back(i);
    }
    const SuffStats a = BuildSuffStats(mat, rows, 1);
    for (uint32_t threads : kThreadCounts) {
      const SuffStats b = BuildFactorizedSuffStats(fac, rows, threads);
      ExpectStatsBitIdentical(a, b, "threads " + std::to_string(threads));
    }
  }
}

// --- The pipeline switch. -------------------------------------------------

TEST(FactorizedPipelineTest, AvoidMaterializationMatchesMaterializedRun) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.02, 31);
  PipelineConfig config;
  config.method = FsMethod::kForwardSelection;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.metric = *MetricForDataset("Walmart");
  config.seed = 31;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = false;
  auto mat = RunPipeline(dataset, config);
  ASSERT_TRUE(mat.ok()) << mat.status();
  SuffStatsCache::Global().Clear();
  config.avoid_materialization = true;
  auto fac = RunPipeline(dataset, config);
  ASSERT_TRUE(fac.ok()) << fac.status();

  EXPECT_TRUE(fac->factorized);
  EXPECT_FALSE(mat->factorized);
  EXPECT_EQ(fac->tables_joined, 0u);
  EXPECT_EQ(fac->tables_factorized, mat->tables_joined);
  EXPECT_EQ(fac->features_in, mat->features_in);
  EXPECT_EQ(fac->selection.selected_names, mat->selection.selected_names);
  EXPECT_EQ(fac->selection.selection.validation_error,
            mat->selection.selection.validation_error);
  EXPECT_EQ(fac->selection.holdout_test_error,
            mat->selection.holdout_test_error);
  EXPECT_NE(fac->Summary().find("factorized"), std::string::npos);
}

TEST(FactorizedPipelineTest, NonNbClassifierFallsBackToMaterializing) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.01, 32);
  PipelineConfig config;
  config.classifier = ClassifierKind::kLogisticRegressionL2;
  config.metric = *MetricForDataset("Walmart");
  config.avoid_materialization = true;
  // JoinAll so the fallback demonstrably materializes something.
  config.enable_join_avoidance = false;
  auto report = RunPipeline(dataset, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->factorized);
  EXPECT_GT(report->tables_joined, 0u);
}

TEST(FactorizedPipelineTest, ForceScanFallsBackToMaterializing) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.01, 33);
  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.metric = *MetricForDataset("Walmart");
  config.avoid_materialization = true;
  config.force_scan_eval = true;
  auto report = RunPipeline(dataset, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->factorized);
}

}  // namespace
}  // namespace hamlet
