#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "common/rng.h"

namespace hamlet {
namespace {

std::vector<uint32_t> AllRows(const EncodedDataset& d) {
  std::vector<uint32_t> rows(d.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

EncodedDataset NoisyConcept(uint32_t n, uint32_t card, double flip,
                            uint64_t seed, uint32_t num_classes = 2) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(card);
    g[i] = rng.Uniform(3);  // Pure noise.
    y[i] = rng.Bernoulli(1.0 - flip) ? f[i] % num_classes
                                     : rng.Uniform(num_classes);
  }
  return EncodedDataset({f, g}, {{"F", card}, {"Noise", 3}}, y,
                        num_classes);
}

double TrainError(LogisticRegression& lr, const EncodedDataset& d) {
  uint32_t wrong = 0;
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    wrong += lr.PredictOne(d, r) != d.labels()[r];
  }
  return wrong / static_cast<double>(d.num_rows());
}

TEST(LogisticRegressionTest, LearnsBinaryConcept) {
  EncodedDataset d = NoisyConcept(2000, 2, 0.05, 1);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_LT(TrainError(lr, d), 0.08);
}

TEST(LogisticRegressionTest, LearnsMulticlassConcept) {
  EncodedDataset d = NoisyConcept(4000, 5, 0.05, 2, /*num_classes=*/5);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_LT(TrainError(lr, d), 0.10);
}

TEST(LogisticRegressionTest, HighCardinalityFkFeature) {
  // The regime that matters for the paper: one FK-like feature with a
  // large domain. The sparse SGD solver must still fit it quickly.
  Rng rng(3);
  const uint32_t n = 20000, card = 500;
  std::vector<uint32_t> fk(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    fk[i] = rng.Uniform(card);
    y[i] = rng.Bernoulli(0.85) ? fk[i] % 2 : rng.Uniform(2);
  }
  EncodedDataset d({fk}, {{"FK", card}}, y, 2);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0}).ok());
  EXPECT_LT(TrainError(lr, d), 0.20);  // Bayes error is 0.15.
}

TEST(LogisticRegressionTest, EmptyFeatureSetLearnsPrior) {
  std::vector<uint32_t> y = {1, 1, 1, 1, 0};
  EncodedDataset d({{0, 0, 0, 0, 0}}, {{"F", 2}}, y, 2);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {}).ok());
  EXPECT_EQ(lr.PredictOne(d, 0), 1u);  // Majority class via bias.
}

TEST(LogisticRegressionTest, OneHotDimensionCount) {
  // Card 4 and card 2 features -> (4-1) + (2-1) = 4 dims.
  EncodedDataset d({{0, 1}, {0, 1}}, {{"A", 4}, {"B", 2}}, {0, 1}, 2);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_EQ(lr.num_dims(), 4u);
}

TEST(LogisticRegressionTest, L1ZeroesNoiseFeatureGroup) {
  LogisticRegressionOptions opts;
  opts.regularizer = Regularizer::kL1;
  opts.lambda = 2e-2;
  opts.max_epochs = 30;
  EncodedDataset d = NoisyConcept(5000, 2, 0.05, 4);
  LogisticRegression lr(opts);
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0, 1}).ok());
  // SGD jitter keeps exact zeros rare; a small epsilon identifies the
  // group the penalty killed (informative weights sit around 3.0).
  const double eps = 0.05;
  auto active = lr.ActiveFeatures(eps);
  auto zeroed = lr.ZeroedFeatures(eps);
  EXPECT_TRUE(std::find(active.begin(), active.end(), 0u) != active.end());
  EXPECT_TRUE(std::find(zeroed.begin(), zeroed.end(), 1u) != zeroed.end());
}

TEST(LogisticRegressionTest, L2ShrinksWeightsVsUnregularized) {
  EncodedDataset d = NoisyConcept(2000, 2, 0.05, 5);
  LogisticRegressionOptions none;
  none.lambda = 0.0;
  LogisticRegressionOptions ridge;
  ridge.regularizer = Regularizer::kL2;
  ridge.lambda = 5e-2;
  LogisticRegression free_lr(none), ridge_lr(ridge);
  ASSERT_TRUE(free_lr.Train(d, AllRows(d), {0}).ok());
  ASSERT_TRUE(ridge_lr.Train(d, AllRows(d), {0}).ok());
  EXPECT_LT(std::fabs(ridge_lr.weight(0, 0)),
            std::fabs(free_lr.weight(0, 0)));
}

TEST(LogisticRegressionTest, ActivePlusZeroedCoverAllFeatures) {
  EncodedDataset d = NoisyConcept(500, 3, 0.2, 6);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_EQ(lr.ActiveFeatures().size() + lr.ZeroedFeatures().size(), 2u);
}

TEST(LogisticRegressionTest, ZeroRowsRejected) {
  EncodedDataset d({{0}}, {{"F", 2}}, {0}, 2);
  LogisticRegression lr;
  EXPECT_EQ(lr.Train(d, {}, {0}).code(), StatusCode::kInvalidArgument);
}

TEST(LogisticRegressionTest, DeterministicTraining) {
  EncodedDataset d = NoisyConcept(1000, 2, 0.1, 7);
  LogisticRegression a, b;
  ASSERT_TRUE(a.Train(d, AllRows(d), {0, 1}).ok());
  ASSERT_TRUE(b.Train(d, AllRows(d), {0, 1}).ok());
  for (uint32_t dim = 0; dim <= a.num_dims(); ++dim) {
    EXPECT_EQ(a.weight(0, dim), b.weight(0, dim));
  }
}

TEST(LogisticRegressionTest, FactoryAndName) {
  auto factory = MakeLogisticRegressionFactory();
  EXPECT_EQ(factory()->name(), "logistic_regression");
}

}  // namespace
}  // namespace hamlet
