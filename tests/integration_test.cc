/// End-to-end integration tests: synthesized star schemas pushed through
/// the full pipeline (catalog -> advisor -> join plan -> encode -> split
/// -> feature selection -> holdout error), reproducing the paper's core
/// claims at test-suite scale.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "fs/runner.h"
#include "ml/eval.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

struct PipelineRun {
  double error;
  std::vector<std::string> selected;
};

PipelineRun RunPipeline(const NormalizedDataset& ds,
                        const std::vector<std::string>& fks, FsMethod method,
                        ErrorMetric metric, uint64_t seed) {
  auto table = ds.JoinSubset(fks);
  EXPECT_TRUE(table.ok()) << table.status();
  auto data = EncodedDataset::FromTableAuto(*table);
  EXPECT_TRUE(data.ok());
  Rng rng(seed);
  HoldoutSplit split = MakeHoldoutSplit(data->num_rows(), rng);
  auto selector = MakeSelector(method);
  auto report = RunFeatureSelection(*selector, *data, split,
                                    MakeNaiveBayesFactory(), metric,
                                    data->AllFeatureIndices());
  EXPECT_TRUE(report.ok()) << report.status();
  return {report->holdout_test_error, report->selected_names};
}

std::vector<std::string> AllFks(const NormalizedDataset& ds) {
  std::vector<std::string> fks;
  for (const auto& fk : ds.foreign_keys()) fks.push_back(fk.fk_column);
  return fks;
}

TEST(IntegrationTest, AvoidableJoinKeepsErrorFlat) {
  // MovieLens-shaped: huge TR, so JoinOpt == NoJoins and the error must
  // match JoinAll within the paper's tolerance band.
  auto ds = *MakeDataset("MovieLens1M", 0.02, 7);
  auto plan = *AdviseJoins(ds);
  EXPECT_EQ(plan.fks_avoided.size(), 2u);
  auto metric = *MetricForDataset("MovieLens1M");
  PipelineRun all =
      RunPipeline(ds, AllFks(ds), FsMethod::kForwardSelection, metric, 3);
  PipelineRun opt = RunPipeline(ds, plan.fks_to_join,
                                FsMethod::kForwardSelection, metric, 3);
  EXPECT_NEAR(opt.error, all.error, 0.05);
}

TEST(IntegrationTest, UnsafeAvoidanceBlowsUpError) {
  // Yelp-shaped: avoiding the joins the rule keeps must cost real error.
  auto ds = *MakeDataset("Yelp", 0.05, 7);
  auto plan = *AdviseJoins(ds);
  EXPECT_TRUE(plan.fks_avoided.empty());
  auto metric = *MetricForDataset("Yelp");
  PipelineRun all =
      RunPipeline(ds, AllFks(ds), FsMethod::kForwardSelection, metric, 3);
  PipelineRun none =
      RunPipeline(ds, {}, FsMethod::kForwardSelection, metric, 3);
  EXPECT_GT(none.error, all.error + 0.05);
}

TEST(IntegrationTest, JoinOptMatchesJoinAllOnEveryDataset) {
  // The paper's headline: across datasets and methods, JoinOpt's error
  // tracks JoinAll's closely.
  for (const auto& name : AllDatasetNames()) {
    auto ds = *MakeDataset(name, 0.02, 11);
    auto plan = *AdviseJoins(ds);
    auto metric = *MetricForDataset(name);
    PipelineRun all = RunPipeline(ds, AllFks(ds),
                                  FsMethod::kMiFilter, metric, 5);
    PipelineRun opt = RunPipeline(ds, plan.fks_to_join,
                                  FsMethod::kMiFilter, metric, 5);
    EXPECT_LE(opt.error, all.error + 0.08) << name;
  }
}

TEST(IntegrationTest, LastFmSelectsOnlyUserId) {
  // Section 5.1: on LastFM every method (except BS) returned {UserID}.
  auto ds = *MakeDataset("LastFM", 0.1, 42);
  auto plan = *AdviseJoins(ds);
  auto metric = *MetricForDataset("LastFM");
  PipelineRun opt = RunPipeline(ds, plan.fks_to_join,
                                FsMethod::kMiFilter, metric, 3);
  ASSERT_FALSE(opt.selected.empty());
  EXPECT_EQ(opt.selected[0], "UserID");
}

TEST(IntegrationTest, AdvisorDecisionsAreScaleInvariant) {
  // Tuple ratios survive scaling, so the plan must not change with scale.
  for (const auto& name : {"Walmart", "Yelp", "Flights"}) {
    auto small = *MakeDataset(name, 0.02, 3);
    auto large = *MakeDataset(name, 0.1, 3);
    auto plan_small = *AdviseJoins(small);
    auto plan_large = *AdviseJoins(large);
    auto sorted = [](std::vector<std::string> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(plan_small.fks_avoided), sorted(plan_large.fks_avoided))
        << name;
  }
}

TEST(IntegrationTest, LogisticRegressionPipelineAgrees) {
  // The embedded-FS path (Figure 9's machinery) must run end to end and
  // produce comparable JoinAll/JoinOpt errors on an avoidable dataset.
  auto ds = *MakeDataset("Walmart", 0.02, 13);
  auto plan = *AdviseJoins(ds);
  auto metric = *MetricForDataset("Walmart");
  LogisticRegressionOptions opts;
  opts.regularizer = Regularizer::kL1;
  opts.lambda = 1e-4;
  opts.max_epochs = 10;

  auto run = [&](const std::vector<std::string>& fks) {
    auto table = *ds.JoinSubset(fks);
    auto data = *EncodedDataset::FromTableAuto(table);
    Rng rng(5);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
    return *TrainAndScore(MakeLogisticRegressionFactory(opts), data,
                          split.train, split.test,
                          data.AllFeatureIndices(), metric);
  };
  double all = run(AllFks(ds));
  double opt = run(plan.fks_to_join);
  EXPECT_NEAR(opt, all, 0.25);
}

TEST(IntegrationTest, FewerInputFeaturesMeansFewerModelsTrained) {
  // The mechanism behind Figure 7(B)'s speedups.
  auto ds = *MakeDataset("Walmart", 0.02, 17);
  auto plan = *AdviseJoins(ds);
  auto metric = *MetricForDataset("Walmart");

  auto models_trained = [&](const std::vector<std::string>& fks) {
    auto table = *ds.JoinSubset(fks);
    auto data = *EncodedDataset::FromTableAuto(table);
    Rng rng(5);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
    auto selector = MakeSelector(FsMethod::kBackwardSelection);
    auto report = *RunFeatureSelection(*selector, data, split,
                                       MakeNaiveBayesFactory(), metric,
                                       data.AllFeatureIndices());
    return report.selection.models_trained;
  };
  EXPECT_GT(models_trained(AllFks(ds)),
            4 * models_trained(plan.fks_to_join));
}

}  // namespace
}  // namespace hamlet
