/// Pins the planted signal structure of the seven synthesizers (see
/// docs/DATASETS.md): these invariants are what make the Figure 7/8
/// benches reproduce the paper's outcomes, so they are protected here
/// against accidental spec drift.

#include <gtest/gtest.h>

#include "data/encoded_dataset.h"
#include "datasets/registry.h"
#include "stats/info_theory.h"

namespace hamlet {
namespace {

struct JoinedView {
  EncodedDataset data;

  double Mi(const std::string& feature) const {
    uint32_t j = *data.FeatureIndexOf(feature);
    return MutualInformation(data.feature(j), data.labels(),
                             data.meta(j).cardinality, data.num_classes());
  }
};

JoinedView Load(const std::string& name, double scale = 0.05) {
  auto ds = MakeDataset(name, scale, 42);
  EXPECT_TRUE(ds.ok()) << ds.status();
  auto joined = ds->JoinAll();
  EXPECT_TRUE(joined.ok());
  auto data = EncodedDataset::FromTableAuto(*joined);
  EXPECT_TRUE(data.ok());
  return JoinedView{*std::move(data)};
}

TEST(DatasetSignalTest, WalmartDeptAndBothLatentsMatter) {
  // Scale 0.2 keeps Stores at 9 rows (at 0.05 it collapses to 2, where
  // Type becomes bijective with StoreID and MI estimates degenerate).
  JoinedView v = Load("Walmart", 0.2);
  EXPECT_GT(v.Mi("Dept"), 0.05);
  // The FKs carry signal (their latents drive Y)...
  EXPECT_GT(v.Mi("StoreID"), 0.01);
  EXPECT_GT(v.Mi("IndicatorID"), 0.01);
  // ...and no foreign feature exposes more than its key (Theorem 3.1).
  EXPECT_LE(v.Mi("Type"), v.Mi("StoreID") + 1e-9);
  EXPECT_LE(v.Mi("TempAvg"), v.Mi("IndicatorID") + 1e-9);
}

TEST(DatasetSignalTest, ExpediaEntityAndSearchSignals) {
  JoinedView v = Load("Expedia");
  EXPECT_GT(v.Mi("Score2"), 5.0 * v.Mi("Score1"));        // Planted vs noise.
  EXPECT_GT(v.Mi("SatNightBool"), 3.0 * v.Mi("RandomBool"));
  EXPECT_GT(v.Mi("Stars"), 0.005);  // Hotel latent partially exposed.
}

TEST(DatasetSignalTest, FlightsAirportsAreNoise) {
  JoinedView v = Load("Flights");
  double airline_signal = v.Mi("Active") + v.Mi("AirCountry");
  double airport_signal = v.Mi("SrcCountry") + v.Mi("SrcDST") +
                          v.Mi("DestCountry") + v.Mi("DestDST");
  EXPECT_GT(airline_signal, 3.0 * airport_signal);
}

TEST(DatasetSignalTest, YelpForeignFeaturesExposeLatentsStrongly) {
  // Larger scale shrinks the accidental MI that per-business noise
  // columns (Latitude is fixed per BusinessID) pick up through the FD.
  JoinedView v = Load("Yelp", 0.2);
  EXPECT_GT(v.Mi("BusinessStars"), 0.08);
  EXPECT_GT(v.Mi("UserStars"), 0.08);
  EXPECT_GT(v.Mi("BusinessStars"), 5.0 * v.Mi("Latitude"));
}

TEST(DatasetSignalTest, MovieLensGenresAreWeakButPresent) {
  JoinedView v = Load("MovieLens1M");
  EXPECT_GT(v.Mi("Age"), 0.005);
  EXPECT_GT(v.Mi("Genre1"), 0.0005);
  EXPECT_LT(v.Mi("Genre1"), v.Mi("MovieID"));
}

TEST(DatasetSignalTest, LastFmOnlyUserIdCarriesSignal) {
  JoinedView v = Load("LastFM");
  // Every user *feature* is noise; the key itself is not.
  double user_features = v.Mi("Gender") + v.Mi("Age") + v.Mi("Country") +
                         v.Mi("JoinYear");
  EXPECT_GT(v.Mi("UserID"), 5.0 * user_features);
  // Artists are irrelevant entirely.
  EXPECT_LT(v.Mi("Genre1") + v.Mi("Listens"), 0.01);
}

TEST(DatasetSignalTest, BookCrossingUsersDominateBooks) {
  JoinedView v = Load("BookCrossing");
  EXPECT_GT(v.Mi("Age") + v.Mi("Country"),
            3.0 * (v.Mi("Year") + v.Mi("NumTitleWords")));
}

// The FD FK -> X_R must hold in every joined dataset — per foreign
// feature, fixing the FK fixes the feature.
class DatasetFdTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetFdTest, JoinedTableSatisfiesSchemaFds) {
  auto ds = *MakeDataset(GetParam(), 0.02, 9);
  auto joined = *ds.JoinAll();
  for (const auto& fk : ds.foreign_keys()) {
    auto r = *ds.AttributeTableFor(fk.fk_column);
    for (uint32_t c = 0; c < r->num_columns(); ++c) {
      const ColumnSpec& spec = r->schema().column(c);
      if (spec.role != ColumnRole::kFeature) continue;
      const Column& fk_col = **joined.ColumnByName(fk.fk_column);
      const Column& f_col = **joined.ColumnByName(spec.name);
      std::vector<int64_t> seen(fk_col.domain_size(), -1);
      for (uint32_t row = 0; row < joined.num_rows(); ++row) {
        uint32_t k = fk_col.code(row);
        if (seen[k] < 0) {
          seen[k] = f_col.code(row);
        } else {
          ASSERT_EQ(static_cast<uint32_t>(seen[k]), f_col.code(row))
              << GetParam() << ": FD " << fk.fk_column << " -> "
              << spec.name << " violated";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetFdTest,
                         ::testing::ValuesIn(AllDatasetNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace hamlet
