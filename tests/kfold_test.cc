#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/splits.h"
#include "ml/eval.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

TEST(KFoldTest, FoldsPartitionIndices) {
  Rng rng(1);
  KFoldSplit split = MakeKFoldSplit(103, 5, rng);
  ASSERT_EQ(split.num_folds(), 5u);
  std::set<uint32_t> all;
  size_t total = 0;
  for (const auto& fold : split.folds) {
    all.insert(fold.begin(), fold.end());
    total += fold.size();
  }
  EXPECT_EQ(all.size(), 103u);
  EXPECT_EQ(total, 103u);
}

TEST(KFoldTest, FoldSizesDifferByAtMostOne) {
  Rng rng(2);
  KFoldSplit split = MakeKFoldSplit(103, 5, rng);
  size_t min_size = 1000, max_size = 0;
  for (const auto& fold : split.folds) {
    min_size = std::min(min_size, fold.size());
    max_size = std::max(max_size, fold.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFoldTest, TrainForExcludesExactlyTheFold) {
  Rng rng(3);
  KFoldSplit split = MakeKFoldSplit(50, 4, rng);
  for (uint32_t f = 0; f < 4; ++f) {
    auto train = split.TrainFor(f);
    EXPECT_EQ(train.size() + split.folds[f].size(), 50u);
    std::set<uint32_t> train_set(train.begin(), train.end());
    for (uint32_t held : split.folds[f]) {
      EXPECT_EQ(train_set.count(held), 0u);
    }
  }
}

TEST(KFoldTest, DeterministicInRng) {
  Rng a(7), b(7);
  EXPECT_EQ(MakeKFoldSplit(40, 4, a).folds, MakeKFoldSplit(40, 4, b).folds);
}

TEST(KFoldDeathTest, BadKAborts) {
  Rng rng(9);
  EXPECT_DEATH((void)MakeKFoldSplit(10, 1, rng), "k");
  EXPECT_DEATH((void)MakeKFoldSplit(3, 5, rng), "k");
}

TEST(CrossValidationTest, LowErrorOnLearnableConcept) {
  Rng rng(11);
  const uint32_t n = 600;
  std::vector<uint32_t> f(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    y[i] = rng.Bernoulli(0.9) ? f[i] : 1 - f[i];
  }
  EncodedDataset d({f}, {{"F", 2}}, y, 2);
  Rng fold_rng(12);
  KFoldSplit folds = MakeKFoldSplit(n, 5, fold_rng);
  auto err = CrossValidatedError(MakeNaiveBayesFactory(), d, folds, {0},
                                 ErrorMetric::kZeroOne);
  ASSERT_TRUE(err.ok());
  EXPECT_LT(*err, 0.2);  // Bayes error 0.1.
  EXPECT_GT(*err, 0.0);
}

TEST(CrossValidationTest, CvTracksHoldoutEstimate) {
  Rng rng(13);
  const uint32_t n = 2000;
  std::vector<uint32_t> f(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(4);
    y[i] = rng.Bernoulli(0.8) ? f[i] % 2 : rng.Uniform(2);
  }
  EncodedDataset d({f}, {{"F", 4}}, y, 2);
  Rng r1(14), r2(15);
  KFoldSplit folds = MakeKFoldSplit(n, 5, r1);
  double cv = *CrossValidatedError(MakeNaiveBayesFactory(), d, folds, {0},
                                   ErrorMetric::kZeroOne);
  TrainTestSplit tt = MakeTrainTestSplit(n, r2, 0.8);
  double holdout = *TrainAndScore(MakeNaiveBayesFactory(), d, tt.train,
                                  tt.test, {0}, ErrorMetric::kZeroOne);
  EXPECT_NEAR(cv, holdout, 0.04);
}

TEST(CrossValidationTest, RejectsDegenerateFolds) {
  EncodedDataset d({{0, 1}}, {{"F", 2}}, {0, 1}, 2);
  KFoldSplit one_fold;
  one_fold.folds = {{0, 1}};
  EXPECT_FALSE(CrossValidatedError(MakeNaiveBayesFactory(), d, one_fold,
                                   {0}, ErrorMetric::kZeroOne)
                   .ok());
}

}  // namespace
}  // namespace hamlet
