#include "core/ror.h"

#include <gtest/gtest.h>

#include <cmath>

#include "theory/generalization_bound.h"

namespace hamlet {
namespace {

RorInputs BaseInputs() {
  RorInputs in;
  in.n_train = 1000;
  in.fk_domain_size = 100;
  in.min_foreign_domain_size = 2;
  in.delta = 0.1;
  return in;
}

TEST(RorTest, MatchesClosedForm) {
  RorInputs in = BaseInputs();
  double expected =
      (VcBoundTerm(100, 1000) - VcBoundTerm(2, 1000)) /
      (0.1 * std::sqrt(2000.0));
  EXPECT_NEAR(WorstCaseRor(in), expected, 1e-12);
}

TEST(RorTest, NonNegative) {
  RorInputs in = BaseInputs();
  for (uint64_t fk : {2ull, 10ull, 100ull, 999ull}) {
    in.fk_domain_size = fk;
    EXPECT_GE(WorstCaseRor(in), 0.0);
  }
}

TEST(RorTest, IncreasesWithFkDomain) {
  RorInputs in = BaseInputs();
  double prev = -1.0;
  for (uint64_t fk : {4ull, 16ull, 64ull, 256ull}) {
    in.fk_domain_size = fk;
    double ror = WorstCaseRor(in);
    EXPECT_GT(ror, prev);
    prev = ror;
  }
}

TEST(RorTest, DecreasesWithMoreTrainingData) {
  RorInputs in = BaseInputs();
  double prev = 1e18;
  for (uint64_t n : {500ull, 2000ull, 8000ull, 32000ull}) {
    in.n_train = n;
    double ror = WorstCaseRor(in);
    EXPECT_LT(ror, prev);
    prev = ror;
  }
}

TEST(RorTest, DecreasesAsForeignDomainsApproachFk) {
  // Figure 5: q*_R ~ |D_FK| makes the ROR small (the join buys little);
  // q*_R << |D_FK| makes it large.
  RorInputs in = BaseInputs();
  in.min_foreign_domain_size = 2;
  double small_q = WorstCaseRor(in);
  in.min_foreign_domain_size = 100;
  double large_q = WorstCaseRor(in);
  EXPECT_GT(small_q, large_q);
  EXPECT_NEAR(large_q, 0.0, 1e-12);  // q*_R = |D_FK|: no extra risk.
}

TEST(RorTest, OutsideTheoremRegimeIsInfiniteRisk) {
  // |D_FK| >= 2e·n: fewer than one training row per key value on
  // average — the rule must never call this safe.
  RorInputs in = BaseInputs();
  in.n_train = 100;
  in.fk_domain_size = 600;  // > 2e * 100 ~ 544.
  EXPECT_TRUE(std::isinf(WorstCaseRor(in)));
  EXPECT_FALSE(IsSafeToAvoid(in, 1e12));
  // Just inside the regime the value is finite again.
  in.fk_domain_size = 500;
  EXPECT_TRUE(std::isfinite(WorstCaseRor(in)));
}

TEST(RorTest, QStarClampedToFkDomain) {
  RorInputs in = BaseInputs();
  in.min_foreign_domain_size = 10000;  // > |D_FK|.
  EXPECT_NEAR(WorstCaseRor(in), 0.0, 1e-12);
}

TEST(RorTest, ScalesInverselyWithDelta) {
  RorInputs in = BaseInputs();
  in.delta = 0.1;
  double at_01 = WorstCaseRor(in);
  in.delta = 0.05;
  EXPECT_NEAR(WorstCaseRor(in), 2.0 * at_01, 1e-9);
}

TEST(RorTest, IsSafeToAvoidThreshold) {
  RorInputs in = BaseInputs();
  double ror = WorstCaseRor(in);
  EXPECT_TRUE(IsSafeToAvoid(in, ror + 0.01));
  EXPECT_FALSE(IsSafeToAvoid(in, ror - 0.01));
}

TEST(ExactRorTest, ZeroWhenDimensionsEqual) {
  EXPECT_NEAR(ExactRor(50, 50, 1000, 0.1), 0.0, 1e-12);
}

TEST(ExactRorTest, BiasTermAdds) {
  double without = ExactRor(100, 10, 1000, 0.1, 0.0);
  double with = ExactRor(100, 10, 1000, 0.1, 0.25);
  EXPECT_NEAR(with - without, 0.25, 1e-12);
}

TEST(ExactRorTest, WorstCaseIsUpperBoundOnOracleRors) {
  // For any oracle (v_yes, v_no) consistent with the derivation
  // (v_yes = q_S + |D_FK|, v_no in (q_S, q_S + q_R]), the worst-case ROR
  // with q*_R = min feature domain dominates the exact ROR (with
  // delta_bias <= 0 dropped).
  RorInputs in = BaseInputs();
  double worst = WorstCaseRor(in);
  for (uint64_t q_s : {0ull, 5ull, 20ull}) {
    for (uint64_t q_no : {2ull, 10ull, 60ull}) {
      double exact = ExactRor(q_s + in.fk_domain_size, q_s + q_no,
                              in.n_train, in.delta);
      EXPECT_LE(exact, worst + 1e-9)
          << "q_s=" << q_s << " q_no=" << q_no;
    }
  }
}

TEST(RorDeathTest, BadInputsAbort) {
  RorInputs in = BaseInputs();
  in.n_train = 0;
  EXPECT_DEATH((void)WorstCaseRor(in), "n_train");
  in = BaseInputs();
  in.delta = 0.0;
  EXPECT_DEATH((void)WorstCaseRor(in), "delta");
}

}  // namespace
}  // namespace hamlet
