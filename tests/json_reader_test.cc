#include "common/json_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/json_writer.h"

namespace hamlet {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue out;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &out, &error)) << text << ": " << error;
  return out;
}

std::string ParseError(const std::string& text) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(ParseJson(text, &out, &error)) << text;
  return error;
}

TEST(JsonReaderTest, ParsesEveryValueKind) {
  const JsonValue doc = MustParse(
      R"({"null":null,"t":true,"f":false,"i":-42,"d":2.5,)"
      R"("s":"hi","a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.Find("null")->is_null());
  EXPECT_TRUE(doc.Find("t")->AsBool());
  EXPECT_FALSE(doc.Find("f")->AsBool(true));
  EXPECT_EQ(doc.Find("i")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(doc.Find("d")->AsDouble(), 2.5);
  EXPECT_EQ(doc.Find("s")->AsString(), "hi");
  ASSERT_TRUE(doc.Find("a")->is_array());
  EXPECT_EQ(doc.Find("a")->AsArray().size(), 3u);
  EXPECT_EQ(doc.Find("a")->AsArray()[2].AsInt(), 3);
  EXPECT_EQ(doc.Find("o")->Find("k")->AsString(), "v");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonReaderTest, IntegersStayInt64Exact) {
  // The cost profile's bit-identical round-trip depends on large
  // nanosecond sums not passing through a double.
  const JsonValue doc = MustParse(
      R"({"max":9223372036854775807,"min":-9223372036854775808,)"
      R"("big_ns":1311768467463790320})");
  EXPECT_EQ(doc.Find("max")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(doc.Find("max")->AsInt(), INT64_MAX);
  EXPECT_EQ(doc.Find("min")->AsInt(), INT64_MIN);
  EXPECT_EQ(doc.Find("big_ns")->AsInt(), 1311768467463790320LL);
  // Past int64 range the value degrades to double instead of failing.
  const JsonValue over = MustParse(R"({"v":98765432109876543210})");
  EXPECT_EQ(over.Find("v")->kind(), JsonValue::Kind::kDouble);
  // Fractions and exponents are doubles.
  const JsonValue frac = MustParse(R"({"v":1.5e3})");
  EXPECT_DOUBLE_EQ(frac.Find("v")->AsDouble(), 1500.0);
}

TEST(JsonReaderTest, DecodesEscapesAndSurrogatePairs) {
  const JsonValue doc = MustParse(
      R"({"esc":"a\"b\\c\/d\n\t\r\b\f","uni":"é中","pair":"😀"})");
  EXPECT_EQ(doc.Find("esc")->AsString(), "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(doc.Find("uni")->AsString(), "\xC3\xA9\xE4\xB8\xAD");
  EXPECT_EQ(doc.Find("pair")->AsString(), "\xF0\x9F\x98\x80");  // U+1F600.
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.BeginObject();
    w.Key("name");
    w.String("fs.search \"quoted\"\n");
    w.Key("count");
    w.UInt(123456789);
    w.Key("nested");
    w.BeginArray();
    w.BeginObject();
    w.Key("x");
    w.Int(-1);
    w.EndObject();
    w.EndArray();
    w.EndObject();
  }
  const JsonValue doc = MustParse(os.str());
  EXPECT_EQ(doc.Find("name")->AsString(), "fs.search \"quoted\"\n");
  EXPECT_EQ(doc.Find("count")->AsUInt(), 123456789u);
  EXPECT_EQ(doc.Find("nested")->AsArray()[0].Find("x")->AsInt(), -1);
}

TEST(JsonReaderTest, RejectsMalformedDocumentsWithPositionedErrors) {
  EXPECT_FALSE(ParseError("").empty());
  EXPECT_FALSE(ParseError("{").empty());
  EXPECT_FALSE(ParseError(R"({"a":1,})").empty());
  EXPECT_FALSE(ParseError(R"(["unterminated)").empty());
  EXPECT_FALSE(ParseError(R"({"a":01})").empty());
  EXPECT_FALSE(ParseError(R"({"bad":"\q"})").empty());
  EXPECT_FALSE(ParseError(R"({"lone":"\ud83d"})").empty());
  EXPECT_FALSE(ParseError("tru").empty());
  // Trailing garbage after a complete document is an error, and the
  // message carries a position so profile-file corruption is locatable.
  const std::string error = ParseError(R"({"a":1} extra)");
  EXPECT_NE(error.find("8"), std::string::npos) << error;
}

TEST(JsonReaderTest, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseError(deep).empty());
  // Comfortably nested documents are fine.
  std::string ok = "1";
  for (int i = 0; i < 32; ++i) ok = "[" + ok + "]";
  MustParse(ok);
}

TEST(JsonReaderTest, WrongKindAccessDegradesToFallbacks) {
  const JsonValue doc = MustParse(R"({"s":"text","n":7})");
  EXPECT_EQ(doc.Find("s")->AsInt(123), 123);
  EXPECT_EQ(doc.Find("s")->AsDouble(1.5), 1.5);
  EXPECT_FALSE(doc.Find("n")->AsBool(false));
  EXPECT_TRUE(doc.Find("n")->AsString().empty());
  EXPECT_TRUE(doc.Find("n")->AsArray().empty());
  EXPECT_EQ(doc.Find("n")->Find("x"), nullptr);
}

}  // namespace
}  // namespace hamlet
