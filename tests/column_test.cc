#include "relational/column.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

Column MakeColorColumn() {
  auto domain = std::make_shared<Domain>(
      std::vector<std::string>{"red", "green", "blue"});
  return Column({0, 2, 1, 0, 2}, domain);
}

TEST(ColumnTest, SizeAndCodes) {
  Column c = MakeColorColumn();
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.code(1), 2u);
  EXPECT_EQ(c.codes().size(), 5u);
}

TEST(ColumnTest, LabelLookup) {
  Column c = MakeColorColumn();
  EXPECT_EQ(c.label(0), "red");
  EXPECT_EQ(c.label(1), "blue");
}

TEST(ColumnTest, DomainSize) {
  EXPECT_EQ(MakeColorColumn().domain_size(), 3u);
}

TEST(ColumnTest, AppendGrows) {
  Column c = MakeColorColumn();
  c.Append(1);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.label(5), "green");
}

TEST(ColumnTest, GatherSelectsAndRepeats) {
  Column c = MakeColorColumn();
  Column g = c.Gather({4, 4, 0});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.code(0), 2u);
  EXPECT_EQ(g.code(1), 2u);
  EXPECT_EQ(g.code(2), 0u);
  // The dictionary is shared, not copied.
  EXPECT_EQ(g.domain(), c.domain());
}

TEST(ColumnTest, GatherEmpty) {
  EXPECT_EQ(MakeColorColumn().Gather({}).size(), 0u);
}

TEST(ColumnTest, GatherIsIdenticalAtAnyThreadCount) {
  auto domain = std::make_shared<Domain>(
      std::vector<std::string>{"a", "b", "c", "d"});
  std::vector<uint32_t> codes(5000);
  std::vector<uint32_t> rows(12345);
  for (uint32_t i = 0; i < codes.size(); ++i) codes[i] = (i * 7) % 4;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    rows[i] = (i * 31) % static_cast<uint32_t>(codes.size());
  }
  Column c(codes, domain);
  Column serial = c.Gather(rows, 1);
  for (uint32_t num_threads : {0u, 2u, 8u}) {
    Column parallel = c.Gather(rows, num_threads);
    EXPECT_EQ(parallel.codes(), serial.codes()) << num_threads;
    EXPECT_EQ(parallel.domain(), c.domain());
  }
}

TEST(ColumnTest, CountDistinct) {
  Column c = MakeColorColumn();
  EXPECT_EQ(c.CountDistinct(), 3u);
  Column sub = c.Gather({0, 3});  // Both "red".
  EXPECT_EQ(sub.CountDistinct(), 1u);
}

TEST(ColumnTest, CountDistinctEmptyColumn) {
  Column c({}, std::make_shared<Domain>(std::vector<std::string>{"x"}));
  EXPECT_EQ(c.CountDistinct(), 0u);
}

TEST(ColumnTest, ValidateAcceptsInDomainCodes) {
  EXPECT_TRUE(MakeColorColumn().Validate());
}

TEST(ColumnTest, ValidateRejectsOutOfDomainCodes) {
  auto domain =
      std::make_shared<Domain>(std::vector<std::string>{"only"});
  Column c({0, 7}, domain);
  EXPECT_FALSE(c.Validate());
}

}  // namespace
}  // namespace hamlet
