#include "stats/contingency.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(MarginalCountsTest, CountsOccurrences) {
  auto counts = MarginalCounts({0, 1, 1, 2, 1}, 4);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(MarginalCountsTest, EmptyInput) {
  auto counts = MarginalCounts({}, 2);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(ContingencyTableTest, CellCounts) {
  //   F=0: Y = 0, 0, 1;  F=1: Y = 1.
  ContingencyTable t({0, 0, 0, 1}, {0, 0, 1, 1}, 2, 2);
  EXPECT_EQ(t.count(0, 0), 2u);
  EXPECT_EQ(t.count(0, 1), 1u);
  EXPECT_EQ(t.count(1, 0), 0u);
  EXPECT_EQ(t.count(1, 1), 1u);
}

TEST(ContingencyTableTest, Marginals) {
  ContingencyTable t({0, 0, 0, 1}, {0, 0, 1, 1}, 2, 2);
  EXPECT_EQ(t.f_marginal(0), 3u);
  EXPECT_EQ(t.f_marginal(1), 1u);
  EXPECT_EQ(t.y_marginal(0), 2u);
  EXPECT_EQ(t.y_marginal(1), 2u);
  EXPECT_EQ(t.total(), 4u);
}

TEST(ContingencyTableTest, MarginalsSumToTotal) {
  ContingencyTable t({0, 1, 2, 1, 0}, {1, 0, 1, 1, 0}, 3, 2);
  uint64_t f_sum = 0, y_sum = 0;
  for (uint32_t f = 0; f < 3; ++f) f_sum += t.f_marginal(f);
  for (uint32_t y = 0; y < 2; ++y) y_sum += t.y_marginal(y);
  EXPECT_EQ(f_sum, t.total());
  EXPECT_EQ(y_sum, t.total());
}

TEST(ContingencyTableTest, Cardinalities) {
  ContingencyTable t({0}, {0}, 5, 3);
  EXPECT_EQ(t.f_cardinality(), 5u);
  EXPECT_EQ(t.y_cardinality(), 3u);
}

TEST(ContingencyTableTest, EmptyInput) {
  ContingencyTable t({}, {}, 2, 2);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.count(1, 1), 0u);
}

TEST(ContingencyTableDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(ContingencyTable({0, 1}, {0}, 2, 2), "length");
}

}  // namespace
}  // namespace hamlet
