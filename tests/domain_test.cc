#include "relational/domain.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(DomainTest, EmptyByDefault) {
  Domain d;
  EXPECT_EQ(d.size(), 0u);
}

TEST(DomainTest, ConstructFromLabels) {
  Domain d({"red", "green", "blue"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.label(0), "red");
  EXPECT_EQ(d.label(2), "blue");
}

TEST(DomainTest, LookupFindsCodes) {
  Domain d({"a", "b"});
  ASSERT_TRUE(d.Lookup("b").ok());
  EXPECT_EQ(*d.Lookup("b"), 1u);
}

TEST(DomainTest, LookupMissingIsNotFound) {
  Domain d({"a"});
  EXPECT_EQ(d.Lookup("z").status().code(), StatusCode::kNotFound);
}

TEST(DomainTest, GetOrAddAppends) {
  Domain d;
  EXPECT_EQ(d.GetOrAdd("x"), 0u);
  EXPECT_EQ(d.GetOrAdd("y"), 1u);
  EXPECT_EQ(d.GetOrAdd("x"), 0u);  // Idempotent.
  EXPECT_EQ(d.size(), 2u);
}

TEST(DomainTest, Contains) {
  Domain d({"a"});
  EXPECT_TRUE(d.Contains("a"));
  EXPECT_FALSE(d.Contains("b"));
}

TEST(DomainTest, DenseFactory) {
  auto d = Domain::Dense(4, "id_");
  EXPECT_EQ(d->size(), 4u);
  EXPECT_EQ(d->label(0), "id_0");
  EXPECT_EQ(d->label(3), "id_3");
  EXPECT_EQ(*d->Lookup("id_2"), 2u);
}

TEST(DomainTest, DenseWithoutPrefix) {
  auto d = Domain::Dense(2);
  EXPECT_EQ(d->label(1), "1");
}

TEST(DomainTest, LabelsVectorMatchesOrder) {
  Domain d({"p", "q"});
  ASSERT_EQ(d.labels().size(), 2u);
  EXPECT_EQ(d.labels()[0], "p");
}

TEST(DomainTest, HeterogeneousLookupAcceptsStringView) {
  Domain d({"alpha", "beta"});
  // A view into a larger buffer: no temporary std::string is required.
  std::string buffer = "xxbetayy";
  std::string_view view(buffer.data() + 2, 4);
  EXPECT_TRUE(d.Contains(view));
  ASSERT_TRUE(d.Lookup(view).ok());
  EXPECT_EQ(*d.Lookup(view), 1u);
  EXPECT_EQ(d.GetOrAdd(view), 1u);
}

TEST(DomainTest, CodeOfReturnsSentinelOnMiss) {
  Domain d({"a", "b"});
  EXPECT_EQ(d.CodeOf("b"), 1u);
  EXPECT_EQ(d.CodeOf("zzz"), Domain::kNoCode);
}

TEST(DomainRemapTest, SameObjectIsIdentity) {
  auto d = std::make_shared<Domain>(std::vector<std::string>{"a", "b"});
  DomainRemap remap(d, d);
  EXPECT_TRUE(remap.identity());
  EXPECT_EQ(remap[0], 0u);
  EXPECT_EQ(remap[1], 1u);
}

TEST(DomainRemapTest, TranslatesByLabel) {
  auto from =
      std::make_shared<Domain>(std::vector<std::string>{"a", "b", "c"});
  auto to =
      std::make_shared<Domain>(std::vector<std::string>{"c", "a"});
  DomainRemap remap(from, to);
  EXPECT_FALSE(remap.identity());
  EXPECT_EQ(remap[0], 1u);                  // "a" -> 1 in `to`.
  EXPECT_EQ(remap[1], DomainRemap::kNoCode);  // "b" absent from `to`.
  EXPECT_EQ(remap[2], 0u);                  // "c" -> 0 in `to`.
}

TEST(DomainDeathTest, DuplicateLabelAborts) {
  EXPECT_DEATH(Domain d({"a", "a"}), "duplicate");
}

TEST(DomainDeathTest, LabelOutOfRangeAborts) {
  Domain d({"a"});
  EXPECT_DEATH((void)d.label(1), "out of domain");
}

}  // namespace
}  // namespace hamlet
