#include "fs/exhaustive_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fs/greedy_search.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

struct ExactFixture {
  EncodedDataset data;
  HoldoutSplit split;

  explicit ExactFixture(uint64_t seed, uint32_t n = 800) {
    Rng rng(seed);
    std::vector<uint32_t> a(n), b(n), noise(n), y(n);
    for (uint32_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(2);
      b[i] = rng.Uniform(2);
      noise[i] = rng.Uniform(4);
      uint32_t signal = (a[i] << 1) | b[i];
      y[i] = rng.Bernoulli(0.93) ? signal : rng.Uniform(4);
    }
    data = EncodedDataset({a, b, noise},
                          {{"A", 2}, {"B", 2}, {"Noise", 4}}, y, 4);
    Rng split_rng(seed + 1);
    split = MakeHoldoutSplit(n, split_rng);
  }
};

TEST(ExhaustiveSelectionTest, FindsTheSignalSubset) {
  ExactFixture f(1);
  ExhaustiveSelection ex;
  auto result = ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                          ErrorMetric::kZeroOne,
                          f.data.AllFeatureIndices());
  ASSERT_TRUE(result.ok());
  auto sel = result->selected;
  std::sort(sel.begin(), sel.end());
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 1}));
}

TEST(ExhaustiveSelectionTest, TrainsEverySubset) {
  ExactFixture f(2);
  ExhaustiveSelection ex;
  auto result = *ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne,
                           f.data.AllFeatureIndices());
  EXPECT_EQ(result.models_trained, 8u);  // 2^3 subsets.
}

TEST(ExhaustiveSelectionTest, CandidateCapEnforced) {
  ExactFixture f(3);
  ExhaustiveSelection ex(/*max_candidates=*/2);
  auto result = ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                          ErrorMetric::kZeroOne,
                          f.data.AllFeatureIndices());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExhaustiveSelectionTest, EmptyCandidatesOk) {
  ExactFixture f(4);
  ExhaustiveSelection ex;
  auto result = *ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne, {});
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.models_trained, 1u);
}

TEST(ExhaustiveSelectionTest, Name) {
  EXPECT_EQ(ExhaustiveSelection().name(), "exhaustive_selection");
}

// Property: greedy never beats exhaustive on validation error; ties are
// fine — this is the formal statement of "greedy may hit local optima".
class GreedyVsExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyVsExactTest, ExhaustiveIsValidationOptimal) {
  ExactFixture f(GetParam());
  ExhaustiveSelection ex;
  auto exact = *ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                          ErrorMetric::kZeroOne,
                          f.data.AllFeatureIndices());
  ForwardSelection fs;
  auto greedy_fwd = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                               ErrorMetric::kZeroOne,
                               f.data.AllFeatureIndices());
  BackwardSelection bs;
  auto greedy_bwd = *bs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                               ErrorMetric::kZeroOne,
                               f.data.AllFeatureIndices());
  EXPECT_LE(exact.validation_error, greedy_fwd.validation_error + 1e-12);
  EXPECT_LE(exact.validation_error, greedy_bwd.validation_error + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExactTest,
                         ::testing::Range<uint64_t>(10, 20));

}  // namespace
}  // namespace hamlet
