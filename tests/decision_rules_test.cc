#include "core/decision_rules.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuple_ratio.h"
#include "stats/info_theory.h"

namespace hamlet {
namespace {

TEST(TupleRatioTest, BasicRatio) {
  EXPECT_DOUBLE_EQ(TupleRatio(1000, 40), 25.0);
  EXPECT_DOUBLE_EQ(TupleRatio(100, 400), 0.25);
}

TEST(TupleRatioTest, PaperFigure6Values) {
  // Training halves of the paper's datasets (Figure 6 / Section 5.2.2).
  EXPECT_NEAR(TupleRatio(421570 / 2, 2340), 90.08, 0.01);
  EXPECT_NEAR(TupleRatio(66548 / 2, 3182), 10.46, 0.01);
  EXPECT_NEAR(TupleRatio(66548 / 2, 540), 61.61, 0.01);
  EXPECT_NEAR(TupleRatio(215879 / 2, 43873), 2.46, 0.01);
  EXPECT_NEAR(TupleRatio(1000209 / 2, 3706), 134.94, 0.05);
}

TEST(TupleRatioTest, RorApproximationTracksRealRor) {
  // Section 4.2: when |D_FK| >> q*_R the ROR ~ the TR-based closed form.
  for (uint64_t n_r : {100ull, 400ull, 1000ull}) {
    RorInputs in;
    in.n_train = 10000;
    in.fk_domain_size = n_r;
    in.min_foreign_domain_size = 2;
    double real = WorstCaseRor(in);
    double approx = RorFromTupleRatio(10000, n_r);
    EXPECT_NEAR(real, approx, 0.15 * approx + 0.3);
  }
}

TEST(ThresholdsTest, PaperAnchors) {
  RuleThresholds strict = ThresholdsForTolerance(0.001);
  EXPECT_NEAR(strict.rho, 2.5, 1e-9);
  EXPECT_NEAR(strict.tau, 20.0, 1e-9);
  RuleThresholds loose = ThresholdsForTolerance(0.01);
  EXPECT_NEAR(loose.rho, 4.2, 1e-9);
  EXPECT_NEAR(loose.tau, 10.0, 1e-9);
}

TEST(ThresholdsTest, MonotoneInTolerance) {
  // Looser tolerance -> higher rho, lower tau (more joins avoided).
  RuleThresholds a = ThresholdsForTolerance(0.001);
  RuleThresholds b = ThresholdsForTolerance(0.003);
  RuleThresholds c = ThresholdsForTolerance(0.01);
  EXPECT_LT(a.rho, b.rho);
  EXPECT_LT(b.rho, c.rho);
  EXPECT_GT(a.tau, b.tau);
  EXPECT_GT(b.tau, c.tau);
}

TEST(ThresholdsTest, ExtremeTolerancesStayMeaningful) {
  RuleThresholds tiny = ThresholdsForTolerance(1e-9);
  EXPECT_GE(tiny.rho, 0.1);
  RuleThresholds huge = ThresholdsForTolerance(0.5);
  EXPECT_GE(huge.tau, 1.0);
}

TEST(TrRuleTest, AvoidsAboveThreshold) {
  RuleVerdict v = TrRule(1000, 40, 20.0);  // TR = 25.
  EXPECT_TRUE(v.safe_to_avoid);
  EXPECT_DOUBLE_EQ(v.statistic, 25.0);
  EXPECT_DOUBLE_EQ(v.threshold, 20.0);
  EXPECT_EQ(v.rule, "TR");
}

TEST(TrRuleTest, JoinsBelowThreshold) {
  RuleVerdict v = TrRule(1000, 100, 20.0);  // TR = 10.
  EXPECT_FALSE(v.safe_to_avoid);
}

TEST(TrRuleTest, BoundaryIsAvoid) {
  EXPECT_TRUE(TrRule(2000, 100, 20.0).safe_to_avoid);  // TR == tau.
}

TEST(RorRuleTest, AvoidsBelowThreshold) {
  RorInputs in;
  in.n_train = 10000;
  in.fk_domain_size = 50;
  in.min_foreign_domain_size = 2;
  RuleVerdict v = RorRule(in, 2.5);
  EXPECT_TRUE(v.safe_to_avoid);
  EXPECT_EQ(v.rule, "ROR");
  EXPECT_NEAR(v.statistic, WorstCaseRor(in), 1e-12);
}

TEST(RorRuleTest, JoinsAboveThreshold) {
  RorInputs in;
  in.n_train = 1000;
  in.fk_domain_size = 500;
  in.min_foreign_domain_size = 2;
  EXPECT_FALSE(RorRule(in, 2.5).safe_to_avoid);
}

TEST(RulesAgreementTest, PaperDatasetDecisionsAgree) {
  // Section 5.2.2: on the paper's real datasets the two rules agreed on
  // every avoid/join call. Replay the Figure 6 metadata (training halves,
  // q*_R = smallest foreign feature domain we synthesize). Threshold
  // rules are knife-edged by nature: Expedia/Hotels sits within 3% of
  // rho = 2.5 (ROR ~ 2.556 at these exact n values), so for it we assert
  // borderline proximity rather than a side of the cut.
  struct Case {
    uint64_t n_train, n_r, q_star;
    bool expect_avoid;
    bool ror_borderline;
  };
  const Case cases[] = {
      {421570 / 2, 2340, 2, true, false},    // Walmart/Indicators.
      {421570 / 2, 45, 4, true, false},      // Walmart/Stores.
      {942142 / 2, 11939, 2, true, true},    // Expedia/Hotels.
      {66548 / 2, 540, 2, true, false},      // Flights/Airlines.
      {66548 / 2, 3182, 4, false, false},    // Flights/SrcAirports.
      {215879 / 2, 11537, 2, false, false},  // Yelp/Businesses.
      {215879 / 2, 43873, 3, false, false},  // Yelp/Users.
      {1000209 / 2, 3706, 2, true, false},   // MovieLens/Movies.
      {1000209 / 2, 6040, 2, true, false},   // MovieLens/Users.
      {343747 / 2, 50000, 3, false, false},  // LastFM/Users.
      {253120 / 2, 27876, 8, false, false},  // BookCrossing/Users.
      {253120 / 2, 49972, 5, false, false},  // BookCrossing/Books.
  };
  for (const Case& c : cases) {
    RuleVerdict tr = TrRule(c.n_train, c.n_r, 20.0);
    RorInputs in;
    in.n_train = c.n_train;
    in.fk_domain_size = c.n_r;
    in.min_foreign_domain_size = c.q_star;
    RuleVerdict ror = RorRule(in, 2.5);
    EXPECT_EQ(tr.safe_to_avoid, c.expect_avoid)
        << "TR on n=" << c.n_train << " n_r=" << c.n_r;
    if (c.ror_borderline) {
      EXPECT_NEAR(ror.statistic, 2.5, 0.1)
          << "ROR on n=" << c.n_train << " n_r=" << c.n_r;
    } else {
      EXPECT_EQ(ror.safe_to_avoid, c.expect_avoid)
          << "ROR on n=" << c.n_train << " n_r=" << c.n_r;
    }
  }
}

// Property sweep: the ROR is approximately linear in 1/sqrt(TR) across a
// grid (Figure 4(C): Pearson ~ 0.97).
TEST(RulesAgreementTest, RorLinearInInverseSqrtTr) {
  std::vector<double> rors, inv_sqrt;
  for (uint64_t n : {500ull, 1000ull, 2000ull, 5000ull}) {
    for (uint64_t n_r : {10ull, 20ull, 50ull, 100ull, 200ull}) {
      if (n_r * 2 >= n) continue;
      RorInputs in;
      in.n_train = n;
      in.fk_domain_size = n_r;
      in.min_foreign_domain_size = 2;
      rors.push_back(WorstCaseRor(in));
      inv_sqrt.push_back(1.0 / std::sqrt(TupleRatio(n, n_r)));
    }
  }
  EXPECT_GT(PearsonCorrelation(inv_sqrt, rors), 0.95);
}

}  // namespace
}  // namespace hamlet
