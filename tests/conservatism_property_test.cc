/// The paper's central guarantee as a randomized property: across random
/// star schemas (random table sizes, signal weights, feature strengths,
/// skews), whatever the advisor decides to avoid must not blow up the
/// post-feature-selection holdout error relative to JoinAll. This is the
/// Figure 1 "box C/D inside box A" promise, stress-tested beyond the
/// seven curated datasets.

#include <gtest/gtest.h>

#include "analytics/pipeline.h"
#include "common/rng.h"
#include "datasets/synth_common.h"

namespace hamlet {
namespace {

SynthDatasetSpec RandomSpec(uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  SynthDatasetSpec spec;
  spec.name = "Random" + std::to_string(seed);
  spec.entity_name = "S";
  spec.pk_name = "SID";
  spec.target_name = "Y";
  spec.num_classes = 2 + rng.Uniform(4);  // 2..5 classes.
  spec.n_s = 4000 + rng.Uniform(8000);
  spec.label_noise = 0.2 + 0.2 * rng.NextDouble();
  spec.metric = spec.num_classes == 2 ? ErrorMetric::kZeroOne
                                      : ErrorMetric::kRmse;

  uint32_t d_s = rng.Uniform(3);
  for (uint32_t f = 0; f < d_s; ++f) {
    spec.s_features.push_back(
        {SynthFeatureSpec::Noise("XS" + std::to_string(f),
                                 2 + rng.Uniform(6),
                                 rng.Bernoulli(0.5)),
         rng.Bernoulli(0.5) ? 0.5 : 0.0});
  }

  const uint32_t k = 1 + rng.Uniform(3);  // 1..3 attribute tables.
  for (uint32_t t = 0; t < k; ++t) {
    SynthAttributeTableSpec table;
    table.table_name = "R" + std::to_string(t);
    table.pk_name = "FK" + std::to_string(t);
    table.fk_name = table.pk_name;
    // Row counts spanning both sides of the TR threshold.
    table.num_rows = 20 + rng.Uniform(spec.n_s / 2);
    table.latent_cardinality = 4 + rng.Uniform(8);
    table.target_weight = rng.Bernoulli(0.7) ? 0.4 + rng.NextDouble() : 0.0;
    table.fk_zipf = rng.Bernoulli(0.3) ? rng.NextDouble() : 0.0;
    uint32_t d_r = 1 + rng.Uniform(4);
    for (uint32_t f = 0; f < d_r; ++f) {
      table.features.push_back(SynthFeatureSpec::Signal(
          table.table_name + "_F" + std::to_string(f),
          2 + rng.Uniform(8), rng.NextDouble() * 0.9,
          rng.Bernoulli(0.4)));
    }
    spec.tables.push_back(table);
  }
  // Guarantee some target signal so generation succeeds.
  if (spec.tables[0].target_weight == 0.0 && d_s == 0) {
    spec.tables[0].target_weight = 0.8;
  } else if (spec.tables[0].target_weight == 0.0) {
    spec.s_features[0].target_weight = 0.8;
  }
  return spec;
}

class ConservatismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservatismTest, JoinOptNeverBlowsUpVsJoinAll) {
  SynthDatasetSpec spec = RandomSpec(GetParam());
  auto dataset = GenerateSyntheticDataset(spec, 1.0, GetParam());
  ASSERT_TRUE(dataset.ok()) << dataset.status();

  PipelineConfig config;
  config.method = FsMethod::kMiFilter;
  config.metric = spec.metric;
  config.seed = GetParam() + 1;

  auto opt = RunPipeline(*dataset, config);
  ASSERT_TRUE(opt.ok()) << opt.status();
  config.enable_join_avoidance = false;
  auto all = RunPipeline(*dataset, config);
  ASSERT_TRUE(all.ok()) << all.status();

  // The conservatism promise, with an allowance for FS noise: the error
  // scale is ~1 class (RMSE) or 1 (zero-one), so 0.05 is a small band.
  EXPECT_LE(opt->selection.holdout_test_error,
            all->selection.holdout_test_error + 0.05)
      << "spec seed " << GetParam() << ": avoided {"
      << (opt->plan.fks_avoided.empty() ? ""
                                        : opt->plan.fks_avoided[0])
      << "...}";

  // And avoidance never does *more* work than the baseline.
  EXPECT_LE(opt->selection.selection.models_trained,
            all->selection.selection.models_trained);
}

INSTANTIATE_TEST_SUITE_P(RandomStarSchemas, ConservatismTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace hamlet
