#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace hamlet {
namespace {

std::vector<uint32_t> AllRows(const EncodedDataset& d) {
  std::vector<uint32_t> rows(d.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(NaiveBayesTest, LearnsDeterministicConcept) {
  // Y = F exactly; plenty of data; NB must recover it.
  std::vector<uint32_t> f, y;
  for (int i = 0; i < 100; ++i) {
    f.push_back(i % 2);
    y.push_back(i % 2);
  }
  EncodedDataset d({f}, {{"F", 2}}, y, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0}).ok());
  EXPECT_EQ(nb.PredictOne(d, 0), 0u);
  EXPECT_EQ(nb.PredictOne(d, 1), 1u);
}

TEST(NaiveBayesTest, PriorsMatchClosedForm) {
  // 3 of class 0, 1 of class 1, alpha = 1:
  // P(0) = (3+1)/(4+2) = 2/3, P(1) = (1+1)/6 = 1/3.
  EncodedDataset d({{0, 0, 0, 0}}, {{"F", 1}}, {0, 0, 0, 1}, 2);
  NaiveBayes nb(1.0);
  ASSERT_TRUE(nb.Train(d, AllRows(d), {}).ok());
  EXPECT_NEAR(nb.log_priors()[0], std::log(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(nb.log_priors()[1], std::log(1.0 / 3.0), 1e-12);
}

TEST(NaiveBayesTest, LogScoresMatchClosedForm) {
  // One binary feature; n = 4: (f,y) = (0,0), (0,0), (1,0), (1,1).
  EncodedDataset d({{0, 0, 1, 1}}, {{"F", 2}}, {0, 0, 0, 1}, 2);
  NaiveBayes nb(1.0);
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0}).ok());
  // Priors: P(0) = 4/6, P(1) = 2/6. Likelihoods with alpha=1, card=2:
  // P(f=0|y=0) = (2+1)/(3+2) = 3/5; P(f=0|y=1) = (0+1)/(1+2) = 1/3.
  auto scores = nb.LogScores(d, 0);  // f = 0.
  EXPECT_NEAR(scores[0], std::log(4.0 / 6.0) + std::log(3.0 / 5.0), 1e-12);
  EXPECT_NEAR(scores[1], std::log(2.0 / 6.0) + std::log(1.0 / 3.0), 1e-12);
}

TEST(NaiveBayesTest, EmptyFeatureSetPredictsMajority) {
  EncodedDataset d({{0, 1, 0}}, {{"F", 2}}, {1, 1, 0}, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, AllRows(d), {}).ok());
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(nb.PredictOne(d, r), 1u);
  }
}

TEST(NaiveBayesTest, SmoothingHandlesUnseenCategories) {
  // Category 2 of F never appears in training rows; prediction on it must
  // not crash and must fall back to the prior ordering.
  EncodedDataset d({{0, 1, 0, 1, 2}}, {{"F", 3}}, {0, 0, 0, 1, 1}, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, {0, 1, 2, 3}, {0}).ok());
  EXPECT_EQ(nb.PredictOne(d, 4), 0u);  // Prior favours class 0 (3 vs 1).
}

TEST(NaiveBayesTest, RowSubsetRestrictsTraining) {
  // Training only on rows where Y = 1 must predict 1 everywhere.
  EncodedDataset d({{0, 1, 0, 1}}, {{"F", 2}}, {0, 0, 1, 1}, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, {2, 3}, {0}).ok());
  EXPECT_EQ(nb.PredictOne(d, 0), 1u);
  EXPECT_EQ(nb.PredictOne(d, 1), 1u);
}

TEST(NaiveBayesTest, PredictBatchMatchesPredictOne) {
  Rng rng(3);
  std::vector<uint32_t> f1(200), f2(200), y(200);
  for (int i = 0; i < 200; ++i) {
    f1[i] = rng.Uniform(4);
    f2[i] = rng.Uniform(3);
    y[i] = rng.Uniform(3);
  }
  EncodedDataset d({f1, f2}, {{"A", 4}, {"B", 3}}, y, 3);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0, 1}).ok());
  auto batch = nb.Predict(d, AllRows(d));
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(batch[r], nb.PredictOne(d, r));
  }
}

TEST(NaiveBayesTest, MulticlassRecovery) {
  // Y = F over 5 classes with mild noise.
  Rng rng(5);
  std::vector<uint32_t> f(2000), y(2000);
  for (int i = 0; i < 2000; ++i) {
    f[i] = rng.Uniform(5);
    y[i] = rng.Bernoulli(0.9) ? f[i] : rng.Uniform(5);
  }
  EncodedDataset d({f}, {{"F", 5}}, y, 5);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0}).ok());
  int correct = 0;
  for (uint32_t r = 0; r < 2000; ++r) {
    correct += nb.PredictOne(d, r) == f[r];
  }
  EXPECT_GT(correct, 1900);
}

TEST(NaiveBayesTest, ProbabilitiesNormalizeAndMatchArgmax) {
  Rng rng(7);
  std::vector<uint32_t> f(500), y(500);
  for (int i = 0; i < 500; ++i) {
    f[i] = rng.Uniform(3);
    y[i] = rng.Bernoulli(0.8) ? f[i] % 2 : rng.Uniform(2);
  }
  EncodedDataset d({f}, {{"F", 3}}, y, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0}).ok());
  for (uint32_t r = 0; r < 20; ++r) {
    auto probs = nb.PredictProbabilities(d, r);
    double sum = 0.0;
    uint32_t best = 0;
    for (uint32_t c = 0; c < probs.size(); ++c) {
      EXPECT_GE(probs[c], 0.0);
      sum += probs[c];
      if (probs[c] > probs[best]) best = c;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(best, nb.PredictOne(d, r));
  }
}

TEST(NaiveBayesTest, ProbabilitiesMatchClosedFormPosterior) {
  // One binary feature; enumerate the exact smoothed posterior.
  EncodedDataset d({{0, 0, 1, 1}}, {{"F", 2}}, {0, 0, 0, 1}, 2);
  NaiveBayes nb(1.0);
  ASSERT_TRUE(nb.Train(d, AllRows(d), {0}).ok());
  // Row 0 has f = 0: score(0) = (4/6)(3/5), score(1) = (2/6)(1/3).
  double s0 = (4.0 / 6.0) * (3.0 / 5.0);
  double s1 = (2.0 / 6.0) * (1.0 / 3.0);
  auto probs = nb.PredictProbabilities(d, 0);
  EXPECT_NEAR(probs[0], s0 / (s0 + s1), 1e-12);
  EXPECT_NEAR(probs[1], s1 / (s0 + s1), 1e-12);
}

TEST(NaiveBayesTest, ZeroRowsRejected) {
  EncodedDataset d({{0}}, {{"F", 2}}, {0}, 2);
  NaiveBayes nb;
  EXPECT_EQ(nb.Train(d, {}, {0}).code(), StatusCode::kInvalidArgument);
}

TEST(NaiveBayesTest, FactoryCreatesFreshInstances) {
  auto factory = MakeNaiveBayesFactory(0.5);
  auto a = factory();
  auto b = factory();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "naive_bayes");
}

TEST(NaiveBayesDeathTest, NonPositiveAlphaAborts) {
  EXPECT_DEATH(NaiveBayes nb(0.0), "alpha");
}

TEST(NaiveBayesDeathTest, PredictBeforeTrainAborts) {
  EncodedDataset d({{0}}, {{"F", 2}}, {0}, 2);
  NaiveBayes nb;
  EXPECT_DEATH((void)nb.PredictOne(d, 0), "Train");
}

}  // namespace
}  // namespace hamlet
