#include "sim/monte_carlo.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

MonteCarloOptions QuickOptions() {
  MonteCarloOptions o;
  o.num_training_sets = 30;
  o.num_repeats = 3;
  o.seed = 11;
  return o;
}

TEST(MonteCarloTest, VariantNames) {
  EXPECT_STREQ(ModelVariantToString(ModelVariant::kUseAll), "UseAll");
  EXPECT_STREQ(ModelVariantToString(ModelVariant::kNoJoin), "NoJoin");
  EXPECT_STREQ(ModelVariantToString(ModelVariant::kNoFK), "NoFK");
}

TEST(MonteCarloTest, ErrorsApproachNoiseFloorWithAmpleData) {
  SimConfig c;
  c.n_s = 2000;
  c.d_s = 2;
  c.d_r = 2;
  c.n_r = 10;
  c.p = 0.1;
  auto r = RunMonteCarlo(c, QuickOptions());
  ASSERT_TRUE(r.ok());
  // TR = 200: everything should sit at the noise floor p = 0.1.
  EXPECT_NEAR(r->use_all.avg_test_error, 0.1, 0.02);
  EXPECT_NEAR(r->no_join.avg_test_error, 0.1, 0.02);
  EXPECT_NEAR(r->no_fk.avg_test_error, 0.1, 0.02);
  EXPECT_NEAR(r->DeltaTestError(), 0.0, 0.02);
}

TEST(MonteCarloTest, SmallTrDegradesNoJoinOnly) {
  // The core dichotomy (Figure 3(B)): |D_FK| comparable to n_S hurts the
  // FK-as-representative model via variance, but not UseAll/NoFK.
  SimConfig c;
  c.n_s = 500;
  c.d_s = 2;
  c.d_r = 2;
  c.n_r = 250;
  c.p = 0.1;
  auto r = *RunMonteCarlo(c, QuickOptions());
  EXPECT_GT(r.no_join.avg_test_error, r.use_all.avg_test_error + 0.03);
  EXPECT_NEAR(r.use_all.avg_test_error, 0.1, 0.02);
  EXPECT_NEAR(r.no_fk.avg_test_error, 0.1, 0.02);
  // The degradation is a variance phenomenon.
  EXPECT_GT(r.no_join.avg_net_variance, r.use_all.avg_net_variance + 0.02);
}

TEST(MonteCarloTest, ForVariantSelects) {
  SimConfig c;
  c.n_s = 400;
  c.n_r = 20;
  auto r = *RunMonteCarlo(c, QuickOptions());
  EXPECT_DOUBLE_EQ(r.ForVariant(ModelVariant::kUseAll).avg_test_error,
                   r.use_all.avg_test_error);
  EXPECT_DOUBLE_EQ(r.ForVariant(ModelVariant::kNoJoin).avg_test_error,
                   r.no_join.avg_test_error);
  EXPECT_DOUBLE_EQ(r.ForVariant(ModelVariant::kNoFK).avg_test_error,
                   r.no_fk.avg_test_error);
}

TEST(MonteCarloTest, DeterministicInSeed) {
  SimConfig c;
  c.n_s = 300;
  c.n_r = 30;
  auto a = *RunMonteCarlo(c, QuickOptions());
  auto b = *RunMonteCarlo(c, QuickOptions());
  EXPECT_DOUBLE_EQ(a.no_join.avg_test_error, b.no_join.avg_test_error);
  EXPECT_DOUBLE_EQ(a.use_all.avg_net_variance, b.use_all.avg_net_variance);
}

TEST(MonteCarloTest, RorHelpersMatchCoreModules) {
  SimConfig c;
  c.n_s = 1000;
  c.n_r = 40;
  EXPECT_DOUBLE_EQ(TupleRatioForSimConfig(c), 25.0);
  RorInputs in;
  in.n_train = 1000;
  in.fk_domain_size = 40;
  in.min_foreign_domain_size = 2;
  EXPECT_DOUBLE_EQ(RorForSimConfig(c), WorstCaseRor(in));
}

TEST(MonteCarloTest, MalignSkewWorseThanBenign) {
  SimConfig zipf;
  zipf.n_s = 400;
  zipf.n_r = 40;
  zipf.fk_dist = FkDistribution::kZipf;
  zipf.zipf_skew = 2.0;
  SimConfig needle = zipf;
  needle.fk_dist = FkDistribution::kNeedleThread;
  needle.needle_prob = 0.5;
  auto rz = *RunMonteCarlo(zipf, QuickOptions());
  auto rn = *RunMonteCarlo(needle, QuickOptions());
  // Appendix D: the malign (needle) NoJoin gap exceeds the benign one.
  double zipf_gap = rz.no_join.avg_test_error - rz.use_all.avg_test_error;
  double needle_gap = rn.no_join.avg_test_error - rn.use_all.avg_test_error;
  EXPECT_GT(needle_gap, zipf_gap - 0.005);
}

}  // namespace
}  // namespace hamlet
