#include "serve/serde.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "data/splits.h"

namespace hamlet::serve {
namespace {

/// Bit-exact double comparison (== would conflate -0.0/0.0 and choke on
/// any NaN; the format's contract is the bit pattern).
bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<uint64_t>(a[i]) != std::bit_cast<uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// Small synthetic dataset with a predictive feature and a noise feature.
EncodedDataset MakeData(uint64_t seed, uint32_t n = 400) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(5);
    y[i] = rng.Bernoulli(0.85) ? f[i] : 1 - f[i];
  }
  return EncodedDataset({f, g}, {{"F", 2}, {"G", 5}}, y, 2);
}

NaiveBayes TrainNb(const EncodedDataset& data) {
  NaiveBayes model(0.5);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

LogisticRegression TrainLr(const EncodedDataset& data) {
  LogisticRegressionOptions options;
  options.regularizer = Regularizer::kL1;
  options.lambda = 1e-3;
  options.max_epochs = 5;
  LogisticRegression model(options);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

/// Rewrites the CRC footer so a deliberate header edit is the ONLY
/// inconsistency under test.
void PatchCrc(std::string* bytes) {
  uint32_t crc = Crc32(bytes->data(), bytes->size() - kFooterSize);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[bytes->size() - kFooterSize + i] =
        static_cast<char>(crc >> (8 * i));
  }
}

TEST(SerdeTest, DatasetRoundTripIsExact) {
  EncodedDataset data = MakeData(1);
  std::string bytes = SerializeDataset(data);
  auto back = DeserializeDataset(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), data.num_rows());
  ASSERT_EQ(back->num_features(), data.num_features());
  EXPECT_EQ(back->num_classes(), data.num_classes());
  EXPECT_EQ(back->labels(), data.labels());
  for (uint32_t j = 0; j < data.num_features(); ++j) {
    EXPECT_EQ(back->feature(j), data.feature(j)) << "feature " << j;
    EXPECT_EQ(back->meta(j).name, data.meta(j).name);
    EXPECT_EQ(back->meta(j).cardinality, data.meta(j).cardinality);
  }
}

TEST(SerdeTest, NaiveBayesRoundTripIsBitExact) {
  EncodedDataset data = MakeData(2);
  NaiveBayes model = TrainNb(data);
  std::string bytes = SerializeNaiveBayes(model);
  auto back = DeserializeNaiveBayes(bytes);
  ASSERT_TRUE(back.ok()) << back.status();

  NaiveBayesParams a = model.ExportParams();
  NaiveBayesParams b = back->ExportParams();
  EXPECT_EQ(std::bit_cast<uint64_t>(a.alpha), std::bit_cast<uint64_t>(b.alpha));
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.features, b.features);
  EXPECT_TRUE(BitsEqual(a.log_priors, b.log_priors));
  ASSERT_EQ(a.log_likelihoods.size(), b.log_likelihoods.size());
  for (size_t j = 0; j < a.log_likelihoods.size(); ++j) {
    EXPECT_TRUE(BitsEqual(a.log_likelihoods[j], b.log_likelihoods[j]));
  }

  // Bit-exact parameters imply identical predictions everywhere.
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_EQ(model.Predict(data, rows), back->Predict(data, rows));
}

TEST(SerdeTest, LogisticRegressionRoundTripIsBitExact) {
  EncodedDataset data = MakeData(3);
  LogisticRegression model = TrainLr(data);
  std::string bytes = SerializeLogisticRegression(model);
  auto back = DeserializeLogisticRegression(bytes);
  ASSERT_TRUE(back.ok()) << back.status();

  LogisticRegressionParams a = model.ExportParams();
  LogisticRegressionParams b = back->ExportParams();
  EXPECT_EQ(a.options.regularizer, b.options.regularizer);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.options.lambda),
            std::bit_cast<uint64_t>(b.options.lambda));
  EXPECT_EQ(a.options.max_epochs, b.options.max_epochs);
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.num_dims, b.num_dims);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_TRUE(BitsEqual(a.weights, b.weights));

  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_EQ(model.Predict(data, rows), back->Predict(data, rows));
}

TEST(SerdeTest, FsRunReportRoundTrip) {
  FsRunReport report;
  report.method = "Forward Selection";
  report.selection.selected = {2, 0, 5};
  report.selection.validation_error = 0.125;
  report.selection.models_trained = 42;
  report.selected_names = {"C", "A", "F"};
  report.holdout_test_error = 0.0625;
  report.runtime_seconds = 1.5;
  report.fit_seconds = 0.25;
  report.total_seconds = 1.75;

  std::string bytes = SerializeFsRunReport(report);
  auto back = DeserializeFsRunReport(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->method, report.method);
  EXPECT_EQ(back->selection.selected, report.selection.selected);
  EXPECT_EQ(std::bit_cast<uint64_t>(back->selection.validation_error),
            std::bit_cast<uint64_t>(report.selection.validation_error));
  EXPECT_EQ(back->selection.models_trained, report.selection.models_trained);
  EXPECT_EQ(back->selected_names, report.selected_names);
  EXPECT_EQ(std::bit_cast<uint64_t>(back->holdout_test_error),
            std::bit_cast<uint64_t>(report.holdout_test_error));
  EXPECT_EQ(std::bit_cast<uint64_t>(back->runtime_seconds),
            std::bit_cast<uint64_t>(report.runtime_seconds));
  // The trace digest is re-derived from the stored scalars: the same
  // two-stage shape fs/runner.cc builds.
  ASSERT_EQ(back->trace_summary.stages.size(), 2u);
  EXPECT_EQ(back->trace_summary.stages[0].name, "fs.search");
  EXPECT_EQ(back->trace_summary.stages[1].name, "fs.final_fit");
  EXPECT_DOUBLE_EQ(back->trace_summary.StageSeconds("fs.search"), 1.5);
}

TEST(SerdeTest, SerializationIsDeterministic) {
  EncodedDataset data = MakeData(4);
  NaiveBayes model = TrainNb(data);
  EXPECT_EQ(SerializeNaiveBayes(model), SerializeNaiveBayes(model));
  EXPECT_EQ(SerializeDataset(data), SerializeDataset(data));
}

TEST(SerdeTest, HeaderLayoutIsAsDocumented) {
  std::string bytes = SerializeDataset(MakeData(5, 10));
  ASSERT_GE(bytes.size(), kHeaderSize + kFooterSize);
  EXPECT_EQ(bytes.substr(0, 4), "HMLT");
  uint16_t version = static_cast<uint8_t>(bytes[4]) |
                     (static_cast<uint16_t>(static_cast<uint8_t>(bytes[5]))
                      << 8);
  EXPECT_EQ(version, kFormatVersion);
  uint16_t kind = static_cast<uint8_t>(bytes[6]) |
                  (static_cast<uint16_t>(static_cast<uint8_t>(bytes[7])) << 8);
  EXPECT_EQ(kind, static_cast<uint16_t>(ArtifactKind::kEncodedDataset));
}

TEST(SerdeTest, KindOfSerializedAndMismatch) {
  EncodedDataset data = MakeData(6, 50);
  std::string dataset_bytes = SerializeDataset(data);
  auto kind = KindOfSerialized(dataset_bytes);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ArtifactKind::kEncodedDataset);

  auto as_model = DeserializeNaiveBayes(dataset_bytes);
  ASSERT_FALSE(as_model.ok());
  EXPECT_EQ(SerdeErrorOf(as_model.status()), SerdeError::kKindMismatch);
  EXPECT_EQ(as_model.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SerdeTest, WrongFormatVersionRejected) {
  std::string bytes = SerializeNaiveBayes(TrainNb(MakeData(7, 60)));
  bytes[4] = 2;  // Pretend a future format version...
  PatchCrc(&bytes);  // ...with an otherwise-valid file.
  auto back = DeserializeNaiveBayes(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kBadVersion);
  EXPECT_EQ(back.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SerdeTest, EveryTruncationIsATypedError) {
  std::string bytes = SerializeNaiveBayes(TrainNb(MakeData(8, 30)));
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto back = DeserializeNaiveBayes(bytes.substr(0, len));
    ASSERT_FALSE(back.ok()) << "prefix length " << len;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "prefix length " << len << ": " << back.status();
  }
}

TEST(SerdeTest, TrailingBytesRejected) {
  std::string bytes = SerializeNaiveBayes(TrainNb(MakeData(9, 30)));
  bytes.push_back('\0');
  auto back = DeserializeNaiveBayes(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kTrailingBytes);
}

// The fuzz contract of ISSUE 4: flipping ANY single byte of a saved
// artifact — header, payload, or CRC footer — yields a typed error,
// never a crash and never a silently wrong artifact.
TEST(SerdeTest, FlippingAnyByteIsATypedError) {
  std::string bytes = SerializeNaiveBayes(TrainNb(MakeData(10, 25)));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(~static_cast<uint8_t>(corrupt[i]));
    auto back = DeserializeNaiveBayes(corrupt);
    ASSERT_FALSE(back.ok()) << "byte " << i;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "byte " << i << ": " << back.status();
  }
}

TEST(SerdeTest, FlippingFooterBytesIsCrcMismatch) {
  std::string bytes = SerializeDataset(MakeData(11, 20));
  for (size_t i = bytes.size() - kFooterSize; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(~static_cast<uint8_t>(corrupt[i]));
    auto back = DeserializeDataset(corrupt);
    ASSERT_FALSE(back.ok()) << "byte " << i;
    EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kCrcMismatch);
    EXPECT_EQ(back.status().code(), StatusCode::kIOError);
  }
}

TEST(SerdeTest, GarbageInputsAreTypedErrors) {
  EXPECT_EQ(SerdeErrorOf(DeserializeDataset("").status()),
            SerdeError::kTruncated);
  EXPECT_EQ(SerdeErrorOf(DeserializeDataset("not a hamlet artifact").status()),
            SerdeError::kBadMagic);
  std::string zeros(64, '\0');
  EXPECT_NE(SerdeErrorOf(DeserializeDataset(zeros).status()),
            SerdeError::kNone);
}

TEST(SerdeTest, SerdeErrorOfIgnoresForeignStatuses) {
  EXPECT_EQ(SerdeErrorOf(Status::OK()), SerdeError::kNone);
  EXPECT_EQ(SerdeErrorOf(Status::IOError("disk on fire")), SerdeError::kNone);
}

TEST(SerdeTest, FileRoundTripAndMissingFile) {
  EncodedDataset data = MakeData(12, 40);
  NaiveBayes model = TrainNb(data);
  std::string path = ::testing::TempDir() + "/serde_nb_roundtrip.hamlet";
  ASSERT_TRUE(SaveNaiveBayes(model, path).ok());

  auto kind = PeekKind(path);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ArtifactKind::kNaiveBayes);

  auto back = LoadNaiveBayes(path);
  ASSERT_TRUE(back.ok()) << back.status();
  NaiveBayesParams a = model.ExportParams();
  NaiveBayesParams b = back->ExportParams();
  EXPECT_TRUE(BitsEqual(a.log_priors, b.log_priors));

  EXPECT_EQ(LoadNaiveBayes("/nonexistent/model.hamlet").status().code(),
            StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SerdeTest, TruncatedFileOnDiskIsTypedError) {
  EncodedDataset data = MakeData(13, 40);
  std::string path = ::testing::TempDir() + "/serde_truncated.hamlet";
  ASSERT_TRUE(SaveDataset(data, path).ok());
  std::string bytes = *ReadFileBytes(path);
  ASSERT_TRUE(
      WriteFileBytes(path, std::string_view(bytes).substr(0, bytes.size() / 2))
          .ok());
  auto back = LoadDataset(path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kTruncated);
  std::remove(path.c_str());
}

// Models produced by the parallel search serialize to the same bytes at
// any thread count — serde composes with the pool's determinism
// contract, so artifacts are reproducible across machines.
TEST(SerdeTest, SerializedBytesIdenticalAcrossNumThreads) {
  EncodedDataset data = MakeData(14, 600);
  Rng rng(99);
  HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);

  std::string bytes_by_threads[2];
  const uint32_t thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    auto selector = MakeSelector(FsMethod::kForwardSelection,
                                 thread_counts[t]);
    auto report = RunFeatureSelection(*selector, data, split,
                                      MakeNaiveBayesFactory(0.5),
                                      ErrorMetric::kZeroOne,
                                      data.AllFeatureIndices());
    ASSERT_TRUE(report.ok()) << report.status();
    NaiveBayes model(0.5);
    ASSERT_TRUE(
        model.Train(data, split.train, report->selection.selected).ok());
    bytes_by_threads[t] = SerializeNaiveBayes(model);
  }
  EXPECT_EQ(bytes_by_threads[0], bytes_by_threads[1]);
}

TEST(SerdeTest, ArtifactKindNames) {
  EXPECT_STREQ(ArtifactKindToString(ArtifactKind::kEncodedDataset),
               "dataset");
  EXPECT_STREQ(ArtifactKindToString(ArtifactKind::kNaiveBayes),
               "naive_bayes");
  EXPECT_STREQ(ArtifactKindToString(ArtifactKind::kDecisionTree),
               "decision_tree");
  EXPECT_STREQ(ArtifactKindToString(ArtifactKind::kGradientBoostedTrees),
               "gbt");
  EXPECT_TRUE(IsKnownArtifactKind(2));
  EXPECT_TRUE(IsKnownArtifactKind(5));
  EXPECT_TRUE(IsKnownArtifactKind(6));
  EXPECT_FALSE(IsKnownArtifactKind(0));
  EXPECT_FALSE(IsKnownArtifactKind(7));
  EXPECT_FALSE(IsKnownArtifactKind(99));
}

// --- Tree artifacts (ArtifactKind::kDecisionTree / kGradientBoostedTrees).

DecisionTree TrainTree(const EncodedDataset& data) {
  DecisionTree model;
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

Gbt TrainGbt(const EncodedDataset& data) {
  GbtOptions options;
  options.num_rounds = 3;  // Small ensemble keeps the fuzz loops fast.
  Gbt model(options);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

TEST(SerdeTest, DecisionTreeRoundTripIsBitExact) {
  EncodedDataset data = MakeData(15);
  DecisionTree model = TrainTree(data);
  std::string bytes = SerializeDecisionTree(model);
  auto kind = KindOfSerialized(bytes);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ArtifactKind::kDecisionTree);
  auto back = DeserializeDecisionTree(bytes);
  ASSERT_TRUE(back.ok()) << back.status();

  DecisionTreeParams a = model.ExportParams();
  DecisionTreeParams b = back->ExportParams();
  EXPECT_EQ(std::bit_cast<uint64_t>(a.alpha), std::bit_cast<uint64_t>(b.alpha));
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.cardinalities, b.cardinalities);
  EXPECT_EQ(a.split_slot, b.split_slot);
  EXPECT_EQ(a.split_code, b.split_code);
  EXPECT_EQ(a.left, b.left);
  EXPECT_EQ(a.right, b.right);
  EXPECT_TRUE(BitsEqual(a.scores, b.scores));

  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_EQ(model.Predict(data, rows), back->Predict(data, rows));
}

TEST(SerdeTest, GbtRoundTripIsBitExact) {
  EncodedDataset data = MakeData(16);
  Gbt model = TrainGbt(data);
  std::string bytes = SerializeGbt(model);
  auto kind = KindOfSerialized(bytes);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ArtifactKind::kGradientBoostedTrees);
  auto back = DeserializeGbt(bytes);
  ASSERT_TRUE(back.ok()) << back.status();

  GbtParams a = model.ExportParams();
  GbtParams b = back->ExportParams();
  EXPECT_EQ(std::bit_cast<uint64_t>(a.learning_rate),
            std::bit_cast<uint64_t>(b.learning_rate));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.lambda),
            std::bit_cast<uint64_t>(b.lambda));
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.cardinalities, b.cardinalities);
  EXPECT_TRUE(BitsEqual(a.base_scores, b.base_scores));
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (size_t m = 0; m < a.trees.size(); ++m) {
    EXPECT_EQ(a.trees[m].split_slot, b.trees[m].split_slot) << m;
    EXPECT_EQ(a.trees[m].split_code, b.trees[m].split_code) << m;
    EXPECT_EQ(a.trees[m].left, b.trees[m].left) << m;
    EXPECT_EQ(a.trees[m].right, b.trees[m].right) << m;
    EXPECT_TRUE(BitsEqual(a.trees[m].value, b.trees[m].value)) << m;
  }

  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_EQ(model.Predict(data, rows), back->Predict(data, rows));
}

TEST(SerdeTest, TreeKindMismatchesArePinned) {
  EncodedDataset data = MakeData(17, 60);
  std::string tree_bytes = SerializeDecisionTree(TrainTree(data));
  std::string gbt_bytes = SerializeGbt(TrainGbt(data));
  std::string nb_bytes = SerializeNaiveBayes(TrainNb(data));

  // Every cross-reading of the three model kinds is a typed mismatch.
  for (const std::string* bytes : {&gbt_bytes, &nb_bytes}) {
    auto as_tree = DeserializeDecisionTree(*bytes);
    ASSERT_FALSE(as_tree.ok());
    EXPECT_EQ(SerdeErrorOf(as_tree.status()), SerdeError::kKindMismatch);
    EXPECT_EQ(as_tree.status().code(), StatusCode::kFailedPrecondition);
  }
  for (const std::string* bytes : {&tree_bytes, &nb_bytes}) {
    auto as_gbt = DeserializeGbt(*bytes);
    ASSERT_FALSE(as_gbt.ok());
    EXPECT_EQ(SerdeErrorOf(as_gbt.status()), SerdeError::kKindMismatch);
  }
  auto as_nb = DeserializeNaiveBayes(tree_bytes);
  ASSERT_FALSE(as_nb.ok());
  EXPECT_EQ(SerdeErrorOf(as_nb.status()), SerdeError::kKindMismatch);
}

TEST(SerdeTest, EveryTreeTruncationIsATypedError) {
  std::string bytes = SerializeDecisionTree(TrainTree(MakeData(18, 30)));
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto back = DeserializeDecisionTree(bytes.substr(0, len));
    ASSERT_FALSE(back.ok()) << "prefix length " << len;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "prefix length " << len << ": " << back.status();
  }
}

TEST(SerdeTest, EveryGbtTruncationIsATypedError) {
  std::string bytes = SerializeGbt(TrainGbt(MakeData(19, 30)));
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto back = DeserializeGbt(bytes.substr(0, len));
    ASSERT_FALSE(back.ok()) << "prefix length " << len;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "prefix length " << len << ": " << back.status();
  }
}

TEST(SerdeTest, FlippingAnyTreeByteIsATypedError) {
  std::string bytes = SerializeDecisionTree(TrainTree(MakeData(20, 25)));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(~static_cast<uint8_t>(corrupt[i]));
    auto back = DeserializeDecisionTree(corrupt);
    ASSERT_FALSE(back.ok()) << "byte " << i;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "byte " << i << ": " << back.status();
  }
}

TEST(SerdeTest, FlippingAnyGbtByteIsATypedError) {
  std::string bytes = SerializeGbt(TrainGbt(MakeData(21, 25)));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(~static_cast<uint8_t>(corrupt[i]));
    auto back = DeserializeGbt(corrupt);
    ASSERT_FALSE(back.ok()) << "byte " << i;
    EXPECT_NE(SerdeErrorOf(back.status()), SerdeError::kNone)
        << "byte " << i << ": " << back.status();
  }
}

// A CRC-consistent file whose payload violates the tree schema must be
// kMalformed: deserialization re-runs ValidateTreeStructure, so a valid
// envelope cannot smuggle in an inconsistent tree. The edit below sets
// split_slot[0] to 99 at its documented payload offset — header (16) +
// alpha (8) + num_classes (4) + two length-prefixed u32 vectors of two
// features (16 each) + the split_slot length word (8) = byte 68.
TEST(SerdeTest, ValidCrcWithInconsistentTreeIsMalformed) {
  DecisionTree model = TrainTree(MakeData(22, 40));
  ASSERT_EQ(model.trained_features().size(), 2u);
  std::string bytes = SerializeDecisionTree(model);
  const size_t offset = 68;
  ASSERT_GE(bytes.size(), offset + 4 + kFooterSize);
  bytes[offset] = 99;
  bytes[offset + 1] = 0;
  bytes[offset + 2] = 0;
  bytes[offset + 3] = 0;
  PatchCrc(&bytes);
  auto back = DeserializeDecisionTree(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kMalformed);
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, TreeFileRoundTrip) {
  EncodedDataset data = MakeData(23, 40);
  DecisionTree tree = TrainTree(data);
  Gbt gbt = TrainGbt(data);
  std::string tree_path = ::testing::TempDir() + "/serde_tree.hamlet";
  std::string gbt_path = ::testing::TempDir() + "/serde_gbt.hamlet";
  ASSERT_TRUE(SaveDecisionTree(tree, tree_path).ok());
  ASSERT_TRUE(SaveGbt(gbt, gbt_path).ok());

  auto tree_kind = PeekKind(tree_path);
  ASSERT_TRUE(tree_kind.ok());
  EXPECT_EQ(*tree_kind, ArtifactKind::kDecisionTree);
  auto gbt_kind = PeekKind(gbt_path);
  ASSERT_TRUE(gbt_kind.ok());
  EXPECT_EQ(*gbt_kind, ArtifactKind::kGradientBoostedTrees);

  auto tree_back = LoadDecisionTree(tree_path);
  ASSERT_TRUE(tree_back.ok()) << tree_back.status();
  EXPECT_TRUE(BitsEqual(tree.ExportParams().scores,
                        tree_back->ExportParams().scores));
  auto gbt_back = LoadGbt(gbt_path);
  ASSERT_TRUE(gbt_back.ok()) << gbt_back.status();
  EXPECT_TRUE(BitsEqual(gbt.ExportParams().base_scores,
                        gbt_back->ExportParams().base_scores));

  EXPECT_EQ(LoadDecisionTree("/nonexistent/tree.hamlet").status().code(),
            StatusCode::kIOError);
  std::remove(tree_path.c_str());
  std::remove(gbt_path.c_str());
}

}  // namespace
}  // namespace hamlet::serve
