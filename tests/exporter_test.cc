#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_reader.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hamlet {
namespace {

obs::HistogramSnapshot MakeHistogram(const std::string& name,
                                     const std::vector<uint64_t>& values) {
  obs::HistogramSnapshot h;
  h.name = name;
  h.buckets.assign(obs::Histogram::kBuckets, 0);
  for (const uint64_t v : values) {
    ++h.count;
    h.sum_nanos += v;
    ++h.buckets[obs::Histogram::BucketFor(v)];
  }
  return h;
}

obs::MetricsSnapshot MakeSnapshot() {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"fs.models_trained", 42});
  snap.counters.push_back({"join.rows_probed", 100000});
  snap.histograms.push_back(
      MakeHistogram("serve.score_ns", {4, 4, 100, 100, 100, 5000}));
  return snap;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonlExportTest, LineIsValidJsonWithTheDocumentedShape) {
  std::ostringstream os;
  obs::WriteSnapshotJsonl(MakeSnapshot(), nullptr, 7, os);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "JSONL must be one line";

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("seq")->AsUInt(), 7u);
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("fs.models_trained")->AsUInt(), 42u);
  const JsonValue* hist = doc.Find("histograms")->Find("serve.score_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsUInt(), 6u);
  EXPECT_EQ(hist->Find("sum_ns")->AsUInt(), uint64_t{4 + 4 + 100 * 3 + 5000});
  EXPECT_NE(hist->Find("p50_ns"), nullptr);
  EXPECT_NE(hist->Find("p99_ns"), nullptr);
  // Sparse buckets: only the three non-empty buckets appear, as
  // [index, count] pairs.
  const JsonValue* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->AsArray().size(), 3u);
  const auto& first = buckets->AsArray()[0].AsArray();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].AsUInt(), obs::Histogram::BucketFor(4));
  EXPECT_EQ(first[1].AsUInt(), 2u);
}

TEST(JsonlExportTest, SummaryAddsAStagesArray) {
  obs::TraceSummary summary;
  obs::StageStat stage;
  stage.name = "pipeline";
  stage.depth = 0;
  stage.count = 1;
  stage.total_seconds = 1.5;
  stage.self_seconds = 0.25;
  stage.numeric_attrs.push_back({"candidates", 17});
  summary.stages.push_back(stage);

  std::ostringstream os;
  obs::WriteSnapshotJsonl(MakeSnapshot(), &summary, 0, os);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(os.str(), &doc, &error)) << error;
  const JsonValue* stages = doc.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->AsArray().size(), 1u);
  const JsonValue& s = stages->AsArray()[0];
  EXPECT_EQ(s.Find("name")->AsString(), "pipeline");
  EXPECT_EQ(s.Find("count")->AsUInt(), 1u);
  EXPECT_DOUBLE_EQ(s.Find("total_seconds")->AsDouble(), 1.5);
  EXPECT_EQ(s.Find("attrs")->Find("candidates")->AsInt(), 17);
}

TEST(JsonlExportTest, RenderingIsDeterministicForASnapshot) {
  std::ostringstream a, b;
  obs::WriteSnapshotJsonl(MakeSnapshot(), nullptr, 3, a);
  obs::WriteSnapshotJsonl(MakeSnapshot(), nullptr, 3, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(JsonlExportTest, ExporterAppendsSequencedDiffableLines) {
  const std::string path =
      ::testing::TempDir() + "/hamlet_exporter_test.jsonl";
  obs::JsonlExporter exporter;
  ASSERT_TRUE(exporter.Open(path).ok());

  obs::MetricsSnapshot first = MakeSnapshot();
  ASSERT_TRUE(exporter.Flush(first).ok());
  // Counters are cumulative, so line N+1 minus line N is the window's
  // activity — simulate more work and flush again.
  obs::MetricsSnapshot second = MakeSnapshot();
  second.counters[0].value += 8;  // fs.models_trained: 42 -> 50
  ASSERT_TRUE(exporter.Flush(second).ok());
  EXPECT_EQ(exporter.lines_written(), 2u);

  std::ifstream in(path);
  std::string line1, line2, extra;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_FALSE(std::getline(in, extra));

  JsonValue doc1, doc2;
  ASSERT_TRUE(ParseJson(line1 + "\n", &doc1, nullptr));
  ASSERT_TRUE(ParseJson(line2 + "\n", &doc2, nullptr));
  EXPECT_EQ(doc1.Find("seq")->AsUInt(), 0u);
  EXPECT_EQ(doc2.Find("seq")->AsUInt(), 1u);
  const uint64_t c1 = doc1.Find("counters")->Find("fs.models_trained")->AsUInt();
  const uint64_t c2 = doc2.Find("counters")->Find("fs.models_trained")->AsUInt();
  EXPECT_EQ(c2 - c1, 8u);

  // Re-opening truncates and restarts the sequence: one run, one log.
  ASSERT_TRUE(exporter.Open(path).ok());
  ASSERT_TRUE(exporter.Flush(first).ok());
  std::ifstream again(path);
  ASSERT_TRUE(std::getline(again, line1));
  EXPECT_FALSE(std::getline(again, line2));
  ASSERT_TRUE(ParseJson(line1 + "\n", &doc1, nullptr));
  EXPECT_EQ(doc1.Find("seq")->AsUInt(), 0u);
}

TEST(JsonlExportTest, ClosedExporterFlushIsANoOp) {
  obs::JsonlExporter exporter;
  EXPECT_FALSE(exporter.is_open());
  EXPECT_TRUE(exporter.Flush(MakeSnapshot()).ok());
  EXPECT_EQ(exporter.lines_written(), 0u);
}

TEST(PrometheusExportTest, RendersTypedFamiliesWithMangledNames) {
  std::ostringstream os;
  obs::DumpPrometheusText(MakeSnapshot(), os);
  const std::string text = os.str();
  // Counters: hamlet_ prefix, dots -> underscores, TYPE annotation.
  EXPECT_NE(text.find("# TYPE hamlet_fs_models_trained counter"),
            std::string::npos);
  EXPECT_NE(text.find("hamlet_fs_models_trained 42\n"), std::string::npos);
  EXPECT_NE(text.find("hamlet_join_rows_probed 100000\n"),
            std::string::npos);
  // Histograms: TYPE histogram plus _sum/_count and a mandatory +Inf.
  EXPECT_NE(text.find("# TYPE hamlet_serve_score_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hamlet_serve_score_ns_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("hamlet_serve_score_ns_count 6\n"), std::string::npos);
  const uint64_t sum = 4 + 4 + 100 * 3 + 5000;
  EXPECT_NE(text.find("hamlet_serve_score_ns_sum " + std::to_string(sum)),
            std::string::npos);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndOrdered) {
  std::ostringstream os;
  obs::DumpPrometheusText(MakeSnapshot(), os);
  std::istringstream lines(os.str());
  std::string line;
  uint64_t prev_count = 0;
  double prev_le = -1.0;
  uint32_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "hamlet_serve_score_ns_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    ++bucket_lines;
    const size_t close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos);
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const uint64_t count = std::stoull(line.substr(close + 2));
    EXPECT_GE(count, prev_count) << "cumulative counts must not drop";
    prev_count = count;
    if (le == "+Inf") {
      EXPECT_EQ(count, 6u) << "+Inf bucket must equal the total count";
    } else {
      const double v = std::stod(le);
      EXPECT_GT(v, prev_le) << "le thresholds must increase";
      prev_le = v;
    }
  }
  EXPECT_GE(bucket_lines, 4u);  // Three value buckets plus +Inf.
}

}  // namespace
}  // namespace hamlet
