#include "core/advisor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace hamlet {
namespace {

// Builds a star schema with two attribute tables whose sizes straddle the
// TR threshold: n_s / n_small >= tau (avoidable), n_s / n_big < tau.
struct AdvisorFixture {
  NormalizedDataset dataset;

  explicit AdvisorFixture(uint32_t n_s = 4000, uint32_t n_small = 50,
                          uint32_t n_big = 1000, double p_y1 = 0.5,
                          bool big_closed = true) {
    Rng rng(99);
    Table small = MakeAttr("Small", "SmallID", n_small, 4);
    Table big = MakeAttr("Big", "BigID", n_big, 6);
    Schema s_schema(
        {ColumnSpec::PrimaryKey("SID"), ColumnSpec::Target("Y"),
         ColumnSpec::Feature("XS"),
         ColumnSpec::ForeignKey("SmallID", "Small"),
         ColumnSpec::ForeignKey("BigID", "Big", big_closed)});
    TableBuilder b("S", s_schema,
                   {nullptr, nullptr, nullptr, small.column(0).domain(),
                    big.column(0).domain()});
    for (uint32_t i = 0; i < n_s; ++i) {
      EXPECT_TRUE(
          b.AppendRowLabels(
               {"r" + std::to_string(i),
                rng.Bernoulli(p_y1) ? "1" : "0",
                "x" + std::to_string(rng.Uniform(3)),
                "SmallID_" + std::to_string(rng.Uniform(n_small)),
                "BigID_" + std::to_string(rng.Uniform(n_big))})
              .ok());
    }
    auto ds = NormalizedDataset::Make("Fixture", b.Build(), {small, big});
    EXPECT_TRUE(ds.ok()) << ds.status();
    dataset = *std::move(ds);
  }

  static Table MakeAttr(const std::string& name, const std::string& pk,
                        uint32_t rows, uint32_t feature_card) {
    Schema schema({ColumnSpec::PrimaryKey(pk),
                   ColumnSpec::Feature(name + "_F1"),
                   ColumnSpec::Feature(name + "_F2")});
    auto f1 = Domain::Dense(feature_card, "a");
    auto f2 = Domain::Dense(feature_card + 2, "b");
    TableBuilder b(name, schema,
                   {Domain::Dense(rows, pk + "_"), f1, f2});
    Rng rng(7);
    for (uint32_t i = 0; i < rows; ++i) {
      b.AppendRowCodes({i, rng.Uniform(feature_card),
                        rng.Uniform(feature_card + 2)});
    }
    return b.Build();
  }
};

TEST(AdvisorTest, SplitsDecisionByTupleRatio) {
  AdvisorFixture f;
  auto plan = AdviseJoins(f.dataset);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->advice.size(), 2u);
  // n_train = 2000; TR(Small) = 40 >= 20 -> avoid; TR(Big) = 2 -> join.
  EXPECT_TRUE(plan->advice[0].avoid);
  EXPECT_FALSE(plan->advice[1].avoid);
  ASSERT_EQ(plan->fks_avoided.size(), 1u);
  EXPECT_EQ(plan->fks_avoided[0], "SmallID");
  ASSERT_EQ(plan->fks_to_join.size(), 1u);
  EXPECT_EQ(plan->fks_to_join[0], "BigID");
}

TEST(AdvisorTest, DiagnosticsArePopulated) {
  AdvisorFixture f;
  auto plan = *AdviseJoins(f.dataset);
  const TableAdvice& small = plan.advice[0];
  EXPECT_EQ(small.table_name, "Small");
  EXPECT_EQ(small.n_r, 50u);
  EXPECT_EQ(small.min_foreign_domain, 4u);  // min(card 4, card 6).
  EXPECT_DOUBLE_EQ(small.tuple_ratio, 40.0);
  EXPECT_GT(small.ror, 0.0);
  EXPECT_FALSE(small.rationale.empty());
  EXPECT_EQ(plan.n_train, 2000u);
}

TEST(AdvisorTest, RorRuleOptionUsed) {
  AdvisorFixture f;
  AdvisorOptions options;
  options.rule = AvoidanceRule::kRor;
  auto plan = *AdviseJoins(f.dataset, options);
  // Same qualitative split at the paper thresholds.
  EXPECT_TRUE(plan.advice[0].avoid);
  EXPECT_FALSE(plan.advice[1].avoid);
}

TEST(AdvisorTest, BothRuleIsMostConservative) {
  AdvisorFixture f;
  AdvisorOptions both;
  both.rule = AvoidanceRule::kBoth;
  auto plan = *AdviseJoins(f.dataset, both);
  for (const auto& advice : plan.advice) {
    if (advice.avoid) {
      EXPECT_TRUE(advice.tr_verdict.safe_to_avoid);
      EXPECT_TRUE(advice.ror_verdict.safe_to_avoid);
    }
  }
}

TEST(AdvisorTest, OpenDomainFkNeverAvoided) {
  AdvisorFixture f(4000, 50, 1000, 0.5, /*big_closed=*/false);
  // Make even the big table's TR huge by using a tiny one? Simpler: check
  // the open-domain FK joins regardless and the rationale says so.
  auto plan = *AdviseJoins(f.dataset);
  const TableAdvice& big = plan.advice[1];
  EXPECT_FALSE(big.closed_domain);
  EXPECT_FALSE(big.avoid);
  EXPECT_NE(big.rationale.find("open-domain"), std::string::npos);
}

TEST(AdvisorTest, SkewGuardBlocksAllAvoidance) {
  AdvisorFixture f(4000, 50, 1000, /*p_y1=*/0.05);  // H(Y) ~ 0.29 bits.
  auto plan = *AdviseJoins(f.dataset);
  EXPECT_FALSE(plan.skew_guard.passes);
  EXPECT_TRUE(plan.fks_avoided.empty());
  for (const auto& advice : plan.advice) {
    EXPECT_FALSE(advice.avoid);
  }
  EXPECT_NE(plan.advice[0].rationale.find("skew guard"),
            std::string::npos);
}

TEST(AdvisorTest, SkewGuardCanBeDisabled) {
  AdvisorFixture f(4000, 50, 1000, 0.05);
  AdvisorOptions options;
  options.apply_skew_guard = false;
  auto plan = *AdviseJoins(f.dataset, options);
  EXPECT_EQ(plan.fks_avoided.size(), 1u);
}

TEST(AdvisorTest, LooserToleranceAvoidsMore) {
  // Big table TR = 2000/200 = 10: joined at tolerance 0.001 (tau 20) but
  // avoided at 0.01 (tau 10).
  AdvisorFixture f(4000, 50, 200);
  AdvisorOptions strict;
  strict.error_tolerance = 0.001;
  AdvisorOptions loose;
  loose.error_tolerance = 0.01;
  auto strict_plan = *AdviseJoins(f.dataset, strict);
  auto loose_plan = *AdviseJoins(f.dataset, loose);
  EXPECT_EQ(strict_plan.fks_avoided.size(), 1u);
  EXPECT_EQ(loose_plan.fks_avoided.size(), 2u);
}

TEST(AdvisorTest, ExplicitThresholdsOverride) {
  AdvisorFixture f;
  AdvisorOptions options;
  options.use_explicit_thresholds = true;
  options.explicit_thresholds = {0.0, 1e9};  // tau so high nothing avoids.
  auto plan = *AdviseJoins(f.dataset, options);
  EXPECT_TRUE(plan.fks_avoided.empty());
}

TEST(AdvisorTest, TrainFractionScalesN) {
  AdvisorFixture f;
  AdvisorOptions options;
  options.train_fraction = 0.25;
  auto plan = *AdviseJoins(f.dataset, options);
  EXPECT_EQ(plan.n_train, 1000u);
  // TR(Small) drops to 20: exactly at tau -> still avoid.
  EXPECT_TRUE(plan.advice[0].avoid);
}

TEST(AdvisorTest, InvalidTrainFractionRejected) {
  AdvisorFixture f;
  AdvisorOptions options;
  options.train_fraction = 0.0;
  EXPECT_FALSE(AdviseJoins(f.dataset, options).ok());
}

TEST(AdvisorTest, ReportMentionsEveryTable) {
  AdvisorFixture f;
  auto plan = *AdviseJoins(f.dataset);
  std::string report = JoinPlanToString(plan);
  EXPECT_NE(report.find("Small"), std::string::npos);
  EXPECT_NE(report.find("Big"), std::string::npos);
  EXPECT_NE(report.find("AVOID JOIN"), std::string::npos);
  EXPECT_NE(report.find("n_train = 2000"), std::string::npos);
}

}  // namespace
}  // namespace hamlet
