#include "relational/cold_start.h"

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/join.h"

namespace hamlet {
namespace {

struct ColdStartFixture {
  Table employers;
  Table customers;  // FK loaded with its own dictionary (CSV-style),
                    // including a label 'e9' unknown to Employers.

  ColdStartFixture() {
    Schema r_schema({ColumnSpec::PrimaryKey("EmployerID"),
                     ColumnSpec::Feature("Country"),
                     ColumnSpec::Feature("Revenue")});
    TableBuilder rb("Employers", r_schema);
    EXPECT_TRUE(rb.AppendRowLabels({"e0", "US", "high"}).ok());
    EXPECT_TRUE(rb.AppendRowLabels({"e1", "US", "low"}).ok());
    EXPECT_TRUE(rb.AppendRowLabels({"e2", "IN", "low"}).ok());
    employers = rb.Build();

    Schema s_schema({ColumnSpec::PrimaryKey("CustomerID"),
                     ColumnSpec::Target("Churn"),
                     ColumnSpec::ForeignKey("EmployerID", "Employers")});
    TableBuilder sb("Customers", s_schema);  // Fresh FK dictionary.
    EXPECT_TRUE(sb.AppendRowLabels({"c0", "no", "e0"}).ok());
    EXPECT_TRUE(sb.AppendRowLabels({"c1", "yes", "e9"}).ok());  // Unknown.
    EXPECT_TRUE(sb.AppendRowLabels({"c2", "no", "e2"}).ok());
    EXPECT_TRUE(sb.AppendRowLabels({"c3", "yes", "e9"}).ok());  // Unknown.
    customers = sb.Build();
  }
};

TEST(ColdStartTest, UnknownKeysBreakThePlainJoin) {
  ColdStartFixture f;
  EXPECT_FALSE(KfkJoin(f.customers, f.employers, "EmployerID").ok());
}

TEST(ColdStartTest, AbsorbAddsOthersRowAndRemaps) {
  ColdStartFixture f;
  auto result = AbsorbNewKeys(f.customers, f.employers, "EmployerID");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->remapped_rows, 2u);
  EXPECT_EQ(result->attribute.num_rows(), 4u);  // 3 + Others.
  EXPECT_EQ(result->others_label, "__others__");

  const Column& rid = result->attribute.column(0);
  EXPECT_EQ(rid.label(3), "__others__");
  // Placeholder features take the modal category (US, low).
  EXPECT_EQ((*result->attribute.ColumnByName("Country"))->label(3), "US");
  EXPECT_EQ((*result->attribute.ColumnByName("Revenue"))->label(3), "low");
}

TEST(ColdStartTest, FkReencodedOnSharedDomain) {
  ColdStartFixture f;
  auto result = *AbsorbNewKeys(f.customers, f.employers, "EmployerID");
  const Column& fk = **result.entity.ColumnByName("EmployerID");
  const Column& rid = result.attribute.column(0);
  EXPECT_EQ(fk.domain(), rid.domain());
  EXPECT_EQ(fk.label(0), "e0");
  EXPECT_EQ(fk.label(1), "__others__");
  EXPECT_EQ(fk.label(3), "__others__");
}

TEST(ColdStartTest, JoinWorksAfterAbsorption) {
  ColdStartFixture f;
  auto result = *AbsorbNewKeys(f.customers, f.employers, "EmployerID");
  auto joined = KfkJoin(result.entity, result.attribute, "EmployerID");
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_EQ(joined->num_rows(), 4u);
  EXPECT_EQ((*joined->ColumnByName("Country"))->label(1), "US");
}

TEST(ColdStartTest, CatalogAcceptsAbsorbedPair) {
  ColdStartFixture f;
  auto result = *AbsorbNewKeys(f.customers, f.employers, "EmployerID");
  auto ds = NormalizedDataset::Make("Churn", result.entity,
                                    {result.attribute});
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_TRUE(ds->JoinAll().ok());
}

TEST(ColdStartTest, NoUnknownKeysStillAddsPlaceholder) {
  ColdStartFixture f;
  // Customers referencing only known employers.
  Table known = f.customers.GatherRows({0, 2});
  auto result = *AbsorbNewKeys(known, f.employers, "EmployerID");
  EXPECT_EQ(result.remapped_rows, 0u);
  EXPECT_EQ(result.attribute.num_rows(), 4u);
}

TEST(ColdStartTest, CustomOthersLabel) {
  ColdStartFixture f;
  auto result =
      *AbsorbNewKeys(f.customers, f.employers, "EmployerID", "Other Inc");
  EXPECT_EQ(result.attribute.column(0).label(3), "Other Inc");
}

TEST(ColdStartTest, CollidingOthersLabelRejected) {
  ColdStartFixture f;
  EXPECT_EQ(AbsorbNewKeys(f.customers, f.employers, "EmployerID", "e0")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(ColdStartTest, NonFkColumnRejected) {
  ColdStartFixture f;
  EXPECT_FALSE(AbsorbNewKeys(f.customers, f.employers, "Churn").ok());
}

TEST(ColdStartTest, DuplicateRidRejected) {
  ColdStartFixture f;
  Table dup = f.employers.GatherRows({0, 0, 1});
  EXPECT_FALSE(AbsorbNewKeys(f.customers, dup, "EmployerID").ok());
}

}  // namespace
}  // namespace hamlet
