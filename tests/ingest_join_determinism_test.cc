/// Determinism lockdown for the code-level ingest and join fast paths
/// (docs/PERFORMANCE.md "Ingest & join fast path"): the chunked parallel
/// CSV reader and the code-level KfkJoin/HashJoin must produce tables
/// byte-identical to the pre-optimization serial implementations, at any
/// thread count. The legacy implementations are replicated here, inside
/// the test, as the frozen reference.
///
/// Suite names contain "Determinism" so scripts/check_determinism.sh's
/// TSAN run picks them up.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <unordered_map>
#include <vector>

#include "analytics/pipeline.h"
#include "datasets/registry.h"
#include "ml/suff_stats.h"
#include "relational/catalog.h"
#include "relational/column.h"
#include "relational/csv.h"
#include "relational/join.h"

namespace hamlet {
namespace {

void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (uint32_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.schema().column(c).name, b.schema().column(c).name) << what;
    // Codes AND dictionary label order: bit-identical, not just equal
    // label sequences.
    ASSERT_EQ(a.column(c).codes(), b.column(c).codes())
        << what << " column " << a.schema().column(c).name;
    ASSERT_EQ(a.column(c).domain()->labels(), b.column(c).domain()->labels())
        << what << " column " << a.schema().column(c).name;
  }
}

// ---------------------------------------------------------------------------
// CSV ingest.

/// The pre-PR serial reader, frozen: getline framing + ParseCsvLine +
/// TableBuilder::AppendRowLabels. It cannot carry quoted newlines (that
/// is the bug the rewrite fixed) but on newline-free files it defines the
/// exact codes and dictionary order the parallel reader must reproduce.
Result<Table> LegacyReadCsv(const std::string& path, std::string table_name,
                            Schema schema,
                            std::vector<std::shared_ptr<Domain>> domains,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty");
  }
  std::vector<std::string> header = ParseCsvLine(line, options.delimiter);
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument("header column count mismatch");
  }
  if (domains.empty()) domains.assign(schema.num_columns(), nullptr);
  TableBuilder builder(std::move(table_name), schema, std::move(domains));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line, options.delimiter);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument("ragged row");
    }
    Status s = builder.AppendRowLabels(fields);
    if (!s.ok()) {
      if (!options.strict && s.code() == StatusCode::kInvalidArgument) {
        continue;  // Lenient: skip domain violations.
      }
      return s;
    }
  }
  return builder.Build();
}

class CsvDeterminismTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& contents) {
    // Per-test-name paths: parallel ctest processes each restart the
    // counter, so a bare index would collide across tests.
    std::string path =
        ::testing::TempDir() + "/hamlet_det_csv_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        "_" + std::to_string(counter_++) + ".csv";
    std::ofstream out(path);
    out << contents;
    return path;
  }
  static int counter_;
};
int CsvDeterminismTest::counter_ = 0;

TEST_F(CsvDeterminismTest, ParallelReadMatchesLegacySerialReader) {
  // A skewed, repetitive body: later chunks re-see labels first seen in
  // earlier chunks, exercising the cross-chunk dictionary merge order.
  std::string contents = "K,A,B\n";
  for (int i = 0; i < 500; ++i) {
    contents += "k" + std::to_string(i) + ",a" + std::to_string(i % 7) +
                ",b" + std::to_string((i * 13) % 29) + "\n";
  }
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::PrimaryKey("K"), ColumnSpec::Feature("A"),
                 ColumnSpec::Feature("B")});

  CsvOptions options;
  auto legacy = LegacyReadCsv(path, "T", schema, {}, options);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  ASSERT_EQ(legacy->num_rows(), 500u);

  for (uint32_t num_threads : {1u, 2u, 8u}) {
    CsvOptions par;
    par.num_threads = num_threads;
    par.min_chunk_bytes = 64;  // Force real chunking on this small file.
    auto t = ReadCsv(path, "T", schema, par);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectTablesIdentical(*t, *legacy,
                          "threads=" + std::to_string(num_threads));
  }
}

TEST_F(CsvDeterminismTest, LenientModeMatchesLegacyAcrossThreadCounts) {
  std::string contents = "A,B\n";
  for (int i = 0; i < 300; ++i) {
    contents += std::string(i % 5 == 0 ? "stray" : "ok") + ",v" +
                std::to_string(i % 11) + "\n";
  }
  std::string path = WriteTemp(contents);
  Schema schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("B")});
  auto closed = std::make_shared<Domain>(std::vector<std::string>{"ok"});

  CsvOptions options;
  options.strict = false;
  auto legacy = LegacyReadCsv(path, "T", schema, {closed, nullptr}, options);
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  for (uint32_t num_threads : {1u, 2u, 8u}) {
    CsvOptions par;
    par.strict = false;
    par.num_threads = num_threads;
    par.min_chunk_bytes = 64;
    auto t = ReadCsvWithDomains(path, "T", schema, {closed, nullptr}, par);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectTablesIdentical(*t, *legacy,
                          "threads=" + std::to_string(num_threads));
  }
}

TEST_F(CsvDeterminismTest, BundledDatasetRoundTripIsThreadInvariant) {
  // Export a bundled dataset's joined table and re-ingest it at several
  // thread counts: everything must come back identical.
  auto ds = MakeDataset("Walmart", 0.02, 13);
  ASSERT_TRUE(ds.ok()) << ds.status();
  auto joined = ds->JoinAll();
  ASSERT_TRUE(joined.ok()) << joined.status();

  std::string path =
      ::testing::TempDir() + "/hamlet_det_walmart_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(*joined, path).ok());

  CsvOptions serial;
  serial.num_threads = 1;
  auto base = ReadCsv(path, joined->name(), joined->schema(), serial);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_EQ(base->num_rows(), joined->num_rows());

  for (uint32_t num_threads : {2u, 8u}) {
    CsvOptions par;
    par.num_threads = num_threads;
    par.min_chunk_bytes = 1024;
    auto t = ReadCsv(path, joined->name(), joined->schema(), par);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectTablesIdentical(*t, *base,
                          "threads=" + std::to_string(num_threads));
  }
}

// ---------------------------------------------------------------------------
// Joins.

/// The pre-PR HashJoin, frozen: label-keyed build map, per-key row
/// vectors, serial probe in left-row order. Defines the exact output row
/// order the CSR/code-level implementation must reproduce.
Result<Table> LegacyHashJoin(const Table& left, const Table& right,
                             const std::string& left_column,
                             const std::string& right_column) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t l_idx, left.schema().IndexOf(left_column));
  HAMLET_ASSIGN_OR_RETURN(uint32_t r_idx,
                          right.schema().IndexOf(right_column));
  const Column& lcol = left.column(l_idx);
  const Column& rcol = right.column(r_idx);

  std::unordered_map<std::string, std::vector<uint32_t>> build;
  for (uint32_t row = 0; row < right.num_rows(); ++row) {
    build[rcol.label(row)].push_back(row);
  }
  std::vector<uint32_t> l_rows, r_rows;
  for (uint32_t row = 0; row < left.num_rows(); ++row) {
    auto it = build.find(lcol.label(row));
    if (it == build.end()) continue;
    for (uint32_t r_row : it->second) {
      l_rows.push_back(row);
      r_rows.push_back(r_row);
    }
  }

  std::vector<ColumnSpec> out_specs = left.schema().columns();
  std::vector<Column> out_cols;
  for (uint32_t c = 0; c < left.num_columns(); ++c) {
    out_cols.push_back(left.column(c).Gather(l_rows));
  }
  for (uint32_t c = 0; c < right.num_columns(); ++c) {
    if (c == r_idx) continue;
    out_specs.push_back(right.schema().column(c));
    out_cols.push_back(right.column(c).Gather(r_rows));
  }
  return Table(left.name() + "_join_" + right.name(),
               Schema(std::move(out_specs)), std::move(out_cols));
}

class JoinDeterminismTest : public ::testing::Test {};

TEST_F(JoinDeterminismTest, KfkJoinIsThreadInvariantOnBundledDatasets) {
  for (const char* name : {"Walmart", "MovieLens1M"}) {
    auto ds = MakeDataset(name, 0.02, 7);
    ASSERT_TRUE(ds.ok()) << ds.status();
    const auto fks = ds->foreign_keys();
    ASSERT_FALSE(fks.empty());
    const Table* r = *ds->AttributeTableFor(fks[0].fk_column);

    JoinOptions serial;
    serial.num_threads = 1;
    auto base = KfkJoin(ds->entity(), *r, fks[0].fk_column, serial);
    ASSERT_TRUE(base.ok()) << base.status();

    for (uint32_t num_threads : {2u, 8u}) {
      JoinOptions par;
      par.num_threads = num_threads;
      auto t = KfkJoin(ds->entity(), *r, fks[0].fk_column, par);
      ASSERT_TRUE(t.ok()) << t.status();
      ExpectTablesIdentical(*t, *base,
                            std::string(name) + " threads=" +
                                std::to_string(num_threads));
    }
  }
}

TEST_F(JoinDeterminismTest, HashJoinMatchesLegacyLabelKeyedJoin) {
  for (const char* name : {"Walmart", "Yelp"}) {
    auto ds = MakeDataset(name, 0.02, 11);
    ASSERT_TRUE(ds.ok()) << ds.status();
    const auto fks = ds->foreign_keys();
    ASSERT_FALSE(fks.empty());
    const Table* r = *ds->AttributeTableFor(fks[0].fk_column);
    auto rid_idx = r->schema().PrimaryKeyIndex();
    ASSERT_TRUE(rid_idx.ok()) << rid_idx.status();
    const std::string rid_name = r->schema().column(*rid_idx).name;

    auto legacy =
        LegacyHashJoin(ds->entity(), *r, fks[0].fk_column, rid_name);
    ASSERT_TRUE(legacy.ok()) << legacy.status();

    for (uint32_t num_threads : {1u, 2u, 8u}) {
      JoinOptions par;
      par.num_threads = num_threads;
      auto t = HashJoin(ds->entity(), *r, fks[0].fk_column, rid_name, par);
      ASSERT_TRUE(t.ok()) << t.status();
      ExpectTablesIdentical(*t, *legacy,
                            std::string(name) + " threads=" +
                                std::to_string(num_threads));
    }
  }
}

TEST_F(JoinDeterminismTest, ManyToManyHashJoinMatchesLegacyOrder) {
  // Duplicate keys on both sides: output order (left-row-major, right
  // rows ascending within a key) must match the legacy implementation.
  Schema l_schema({ColumnSpec::Feature("K"), ColumnSpec::Feature("L")});
  TableBuilder lb("L", l_schema);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(lb.AppendRowLabels({"k" + std::to_string(i % 5),
                                    "l" + std::to_string(i)})
                    .ok());
  }
  Schema r_schema({ColumnSpec::Feature("K2"), ColumnSpec::Feature("R")});
  TableBuilder rb("R", r_schema);
  for (int i = 0; i < 40; ++i) {
    // Keys k0..k7: some match the left side, some do not.
    ASSERT_TRUE(rb.AppendRowLabels({"k" + std::to_string(i % 8),
                                    "r" + std::to_string(i)})
                    .ok());
  }
  Table left = lb.Build();
  Table right = rb.Build();

  auto legacy = LegacyHashJoin(left, right, "K", "K2");
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  for (uint32_t num_threads : {1u, 2u, 8u}) {
    JoinOptions par;
    par.num_threads = num_threads;
    auto t = HashJoin(left, right, "K", "K2", par);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectTablesIdentical(*t, *legacy,
                          "threads=" + std::to_string(num_threads));
  }
}

TEST_F(JoinDeterminismTest,
       ReferentialIntegrityErrorIsIdenticalAcrossThreadCounts) {
  // S references r5, which the shrunken R lacks. The error must name the
  // *lowest* offending S row's FK label and the attribute table, at every
  // thread count.
  Schema r_schema(
      {ColumnSpec::PrimaryKey("RID"), ColumnSpec::Feature("XR")});
  TableBuilder rb("R", r_schema);
  for (int i = 0; i < 5; ++i) {  // r0..r4 only.
    ASSERT_TRUE(rb.AppendRowLabels({"r" + std::to_string(i),
                                    "v" + std::to_string(i)})
                    .ok());
  }
  Table r = rb.Build();

  Schema s_schema(
      {ColumnSpec::Target("Y"), ColumnSpec::ForeignKey("FK", "R")});
  TableBuilder sb("S", s_schema);
  for (int i = 0; i < 100; ++i) {
    // Rows 40 and 70 dangle; row 40 must win the error report.
    std::string fk = i == 40 ? "r5" : (i == 70 ? "r6" : "r" +
                                       std::to_string(i % 5));
    ASSERT_TRUE(sb.AppendRowLabels({"0", fk}).ok());
  }
  Table s = sb.Build();

  std::string serial_message;
  for (uint32_t num_threads : {1u, 2u, 8u}) {
    JoinOptions options;
    options.num_threads = num_threads;
    auto t = KfkJoin(s, r, "FK", options);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(t.status().message().find("referential integrity"),
              std::string::npos)
        << t.status();
    EXPECT_NE(t.status().message().find("'r5'"), std::string::npos)
        << t.status();
    EXPECT_NE(t.status().message().find("'R'"), std::string::npos)
        << t.status();
    if (num_threads == 1) {
      serial_message = t.status().message();
    } else {
      EXPECT_EQ(t.status().message(), serial_message);
    }
  }
}

TEST_F(JoinDeterminismTest, RadixHashJoinMatchesCsrAcrossThreadsAndBits) {
  // The radix path must reproduce the monolithic CSR join bit for bit at
  // every thread count and partition fanout — the partitioned layout is
  // allowed to change cache behaviour, never results. The Bloom
  // pre-filter must be invisible in the output too.
  for (const char* name : {"Walmart", "Yelp"}) {
    auto ds = MakeDataset(name, 0.02, 23);
    ASSERT_TRUE(ds.ok()) << ds.status();
    const auto fks = ds->foreign_keys();
    ASSERT_FALSE(fks.empty());
    const Table* r = *ds->AttributeTableFor(fks[0].fk_column);
    auto rid_idx = r->schema().PrimaryKeyIndex();
    ASSERT_TRUE(rid_idx.ok()) << rid_idx.status();
    const std::string rid_name = r->schema().column(*rid_idx).name;

    JoinOptions serial;
    serial.num_threads = 1;
    serial.algorithm = JoinAlgorithm::kCsr;
    auto base = HashJoin(ds->entity(), *r, fks[0].fk_column, rid_name,
                         serial);
    ASSERT_TRUE(base.ok()) << base.status();

    for (uint32_t radix_bits : {4u, 8u, 16u}) {
      for (uint32_t num_threads : {1u, 2u, 8u}) {
        JoinOptions par;
        par.num_threads = num_threads;
        par.algorithm = JoinAlgorithm::kRadix;
        par.radix_bits = radix_bits;
        auto t = HashJoin(ds->entity(), *r, fks[0].fk_column, rid_name,
                          par);
        ASSERT_TRUE(t.ok()) << t.status();
        ExpectTablesIdentical(
            *t, *base,
            std::string(name) + " bits=" + std::to_string(radix_bits) +
                " threads=" + std::to_string(num_threads));
      }
    }

    // Bloom on: FK-shaped input, so the filter drops nothing — but it
    // must also change nothing.
    JoinOptions bloom_on;
    bloom_on.num_threads = 8;
    bloom_on.algorithm = JoinAlgorithm::kRadix;
    bloom_on.bloom = BloomFilterMode::kOn;
    auto t = HashJoin(ds->entity(), *r, fks[0].fk_column, rid_name,
                      bloom_on);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectTablesIdentical(*t, *base, std::string(name) + " bloom=on");
  }
}

TEST_F(JoinDeterminismTest, RadixKfkJoinMatchesCsrAcrossThreadsAndBits) {
  for (const char* name : {"Walmart", "MovieLens1M"}) {
    auto ds = MakeDataset(name, 0.02, 29);
    ASSERT_TRUE(ds.ok()) << ds.status();
    const auto fks = ds->foreign_keys();
    ASSERT_FALSE(fks.empty());
    const Table* r = *ds->AttributeTableFor(fks[0].fk_column);

    JoinOptions serial;
    serial.num_threads = 1;
    serial.algorithm = JoinAlgorithm::kCsr;
    auto base = KfkJoin(ds->entity(), *r, fks[0].fk_column, serial);
    ASSERT_TRUE(base.ok()) << base.status();

    for (uint32_t radix_bits : {4u, 8u, 16u}) {
      for (uint32_t num_threads : {1u, 2u, 8u}) {
        JoinOptions par;
        par.num_threads = num_threads;
        par.algorithm = JoinAlgorithm::kRadix;
        par.radix_bits = radix_bits;
        auto t = KfkJoin(ds->entity(), *r, fks[0].fk_column, par);
        ASSERT_TRUE(t.ok()) << t.status();
        ExpectTablesIdentical(
            *t, *base,
            std::string(name) + " bits=" + std::to_string(radix_bits) +
                " threads=" + std::to_string(num_threads));
      }
    }
  }
}

TEST_F(JoinDeterminismTest,
       RadixReferentialIntegrityErrorMatchesCsrAcrossThreadsAndBits) {
  // Same dangling-FK construction as the CSR test above: the radix path
  // must report the lowest offending S row's label, byte-identically,
  // at every thread count and fanout.
  Schema r_schema(
      {ColumnSpec::PrimaryKey("RID"), ColumnSpec::Feature("XR")});
  TableBuilder rb("R", r_schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rb.AppendRowLabels({"r" + std::to_string(i),
                                    "v" + std::to_string(i)})
                    .ok());
  }
  Table r = rb.Build();

  Schema s_schema(
      {ColumnSpec::Target("Y"), ColumnSpec::ForeignKey("FK", "R")});
  TableBuilder sb("S", s_schema);
  for (int i = 0; i < 100; ++i) {
    std::string fk = i == 40 ? "r5" : (i == 70 ? "r6" : "r" +
                                       std::to_string(i % 5));
    ASSERT_TRUE(sb.AppendRowLabels({"0", fk}).ok());
  }
  Table s = sb.Build();

  JoinOptions csr;
  csr.num_threads = 1;
  csr.algorithm = JoinAlgorithm::kCsr;
  auto base = KfkJoin(s, r, "FK", csr);
  ASSERT_FALSE(base.ok());

  for (uint32_t radix_bits : {0u, 2u, 8u}) {
    for (uint32_t num_threads : {1u, 2u, 8u}) {
      JoinOptions options;
      options.num_threads = num_threads;
      options.algorithm = JoinAlgorithm::kRadix;
      options.radix_bits = radix_bits;
      auto t = KfkJoin(s, r, "FK", options);
      ASSERT_FALSE(t.ok());
      EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
      EXPECT_EQ(t.status().message(), base.status().message())
          << "bits=" << radix_bits << " threads=" << num_threads;
    }
  }
}

TEST_F(JoinDeterminismTest, DuplicateRidErrorNamesTheLabel) {
  Schema r_schema(
      {ColumnSpec::PrimaryKey("RID"), ColumnSpec::Feature("XR")});
  TableBuilder rb("R", r_schema);
  ASSERT_TRUE(rb.AppendRowLabels({"r0", "a"}).ok());
  ASSERT_TRUE(rb.AppendRowLabels({"r1", "b"}).ok());
  Table r = rb.Build();
  Table dup = r.GatherRows({0, 1, 0});  // r0 appears twice.

  Schema s_schema(
      {ColumnSpec::Target("Y"), ColumnSpec::ForeignKey("FK", "R")});
  TableBuilder sb("S", s_schema, {nullptr, r.column(0).domain()});
  ASSERT_TRUE(sb.AppendRowLabels({"0", "r1"}).ok());
  Table s = sb.Build();

  for (uint32_t num_threads : {1u, 8u}) {
    JoinOptions options;
    options.num_threads = num_threads;
    auto t = KfkJoin(s, dup, "FK", options);
    ASSERT_FALSE(t.ok());
    EXPECT_NE(t.status().message().find("duplicate RID 'r0'"),
              std::string::npos)
        << t.status();
  }
}

// ---------------------------------------------------------------------------
// Factorized learning (ml/factorized.h).

class FactorizedDeterminismTest : public ::testing::Test {};

TEST_F(FactorizedDeterminismTest, PipelineEndToEndIsThreadInvariant) {
  // The full avoid-materialization pipeline — factorize, split, search,
  // final fit, holdout — must be bit-identical at any thread count, and
  // identical to the materialized run. This is the e2e sweep the TSAN
  // build in scripts/check_determinism.sh races.
  auto ds = MakeDataset("Walmart", 0.02, 19);
  ASSERT_TRUE(ds.ok()) << ds.status();

  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.metric = *MetricForDataset("Walmart");
  config.enable_join_avoidance = false;  // Factorize every table.
  config.seed = 19;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = false;
  config.num_threads = 1;
  auto mat = RunPipeline(*ds, config);
  ASSERT_TRUE(mat.ok()) << mat.status();

  config.avoid_materialization = true;
  for (uint32_t num_threads : {1u, 2u, 8u, 0u}) {
    SuffStatsCache::Global().Clear();
    config.num_threads = num_threads;
    auto fac = RunPipeline(*ds, config);
    ASSERT_TRUE(fac.ok()) << fac.status();
    const std::string what = "threads=" + std::to_string(num_threads);
    EXPECT_TRUE(fac->factorized) << what;
    EXPECT_EQ(fac->tables_joined, 0u) << what;
    EXPECT_EQ(fac->selection.selected_names, mat->selection.selected_names)
        << what;
    EXPECT_EQ(fac->selection.selection.validation_error,
              mat->selection.selection.validation_error)
        << what;
    EXPECT_EQ(fac->selection.holdout_test_error,
              mat->selection.holdout_test_error)
        << what;
  }
}

TEST_F(FactorizedDeterminismTest, AvoidModePeaksBelowMaterializedRun) {
  // The memory win the factorized path exists for: over the same dataset
  // and search, the avoid-materialization run's peak live Column bytes
  // must stay strictly below the materialized run's, because T = R ⋈ S is
  // never built. (BM_FactorizedVsMaterialized measures the ratio at 1M+
  // rows; this asserts the direction on a size ctest can afford.)
  auto ds = MakeDataset("Walmart", 0.05, 21);
  ASSERT_TRUE(ds.ok()) << ds.status();

  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.metric = *MetricForDataset("Walmart");
  config.enable_join_avoidance = false;  // The join is the cost measured.
  config.seed = 21;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = false;
  ColumnMemory::ResetPeak();
  const int64_t mat_base = ColumnMemory::LiveBytes();
  auto mat = RunPipeline(*ds, config);
  ASSERT_TRUE(mat.ok()) << mat.status();
  const int64_t mat_peak = ColumnMemory::PeakBytes() - mat_base;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = true;
  ColumnMemory::ResetPeak();
  const int64_t fac_base = ColumnMemory::LiveBytes();
  auto fac = RunPipeline(*ds, config);
  ASSERT_TRUE(fac.ok()) << fac.status();
  const int64_t fac_peak = ColumnMemory::PeakBytes() - fac_base;

  EXPECT_EQ(fac->selection.selected_names, mat->selection.selected_names);
  EXPECT_LT(fac_peak, mat_peak)
      << "avoid-materialization peaked at " << fac_peak
      << " transient Column bytes vs " << mat_peak << " materialized";
}

}  // namespace
}  // namespace hamlet
