/// End-to-end: the warehouse-extract path. Tables arrive as CSV, the
/// entity side references employers the attribute extract has never seen
/// (the Section 2.1 cold-start case), "Others" absorption repairs
/// referential integrity, the catalog accepts the pair, the advisor
/// rules, and the pipeline trains — the full analyst journey across
/// module boundaries.

#include <gtest/gtest.h>

#include <fstream>

#include "analytics/pipeline.h"
#include "common/rng.h"
#include "relational/cold_start.h"
#include "relational/csv.h"

namespace hamlet {
namespace {

std::string WriteTemp(const std::string& name, const std::string& body) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(ColdStartEndToEndTest, CsvToPipeline) {
  // Attribute extract: 4 employers.
  std::string r_csv = "EmployerID,Country,Revenue\n";
  for (int e = 0; e < 4; ++e) {
    r_csv += "e" + std::to_string(e) + "," +
             (e % 2 ? "US" : "IN") + "," + (e < 2 ? "high" : "low") + "\n";
  }
  // Entity extract: 600 customers, ~10% referencing an employer the
  // attribute extract lacks ('e9'); churn follows revenue.
  Rng rng(3);
  std::string s_csv = "CustomerID,Churn,Age,EmployerID\n";
  uint32_t unknown = 0;
  for (int i = 0; i < 600; ++i) {
    bool novel = rng.Bernoulli(0.1);
    unknown += novel;
    int e = static_cast<int>(rng.Uniform(4));
    std::string churn =
        rng.Bernoulli(0.85) ? (e < 2 ? "no" : "yes")
                            : (e < 2 ? "yes" : "no");
    s_csv += "c" + std::to_string(i) + "," + churn + ",a" +
             std::to_string(rng.Uniform(4)) + "," +
             (novel ? std::string("e9") : "e" + std::to_string(e)) + "\n";
  }

  Schema r_schema({ColumnSpec::PrimaryKey("EmployerID"),
                   ColumnSpec::Feature("Country"),
                   ColumnSpec::Feature("Revenue")});
  Schema s_schema({ColumnSpec::PrimaryKey("CustomerID"),
                   ColumnSpec::Target("Churn"),
                   ColumnSpec::Feature("Age"),
                   ColumnSpec::ForeignKey("EmployerID", "Employers")});
  auto employers = ReadCsv(WriteTemp("cs_employers.csv", r_csv),
                           "Employers", r_schema);
  ASSERT_TRUE(employers.ok()) << employers.status();
  auto customers = ReadCsv(WriteTemp("cs_customers.csv", s_csv),
                           "Customers", s_schema);
  ASSERT_TRUE(customers.ok()) << customers.status();

  // Without absorption the catalog-join path must refuse the dataset.
  {
    auto broken =
        NormalizedDataset::Make("Churn", *customers, {*employers});
    ASSERT_TRUE(broken.ok());  // Structure is fine...
    EXPECT_FALSE(broken->JoinAll().ok());  // ...but the join detects e9.
  }

  // Absorb, rebuild, advise, run.
  auto absorbed = AbsorbNewKeys(*customers, *employers, "EmployerID");
  ASSERT_TRUE(absorbed.ok()) << absorbed.status();
  EXPECT_EQ(absorbed->remapped_rows, unknown);

  auto dataset = NormalizedDataset::Make("Churn", absorbed->entity,
                                         {absorbed->attribute});
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  ASSERT_TRUE(dataset->JoinAll().ok());

  PipelineConfig config;
  config.method = FsMethod::kForwardSelection;
  config.metric = ErrorMetric::kZeroOne;
  config.seed = 5;
  auto report = RunPipeline(*dataset, config);
  ASSERT_TRUE(report.ok()) << report.status();
  // TR = 300 / 5 = 60 >= 20: the join is avoided...
  EXPECT_EQ(report->plan.fks_avoided,
            (std::vector<std::string>{"EmployerID"}));
  // ...and the FK-as-representative model still learns the concept.
  EXPECT_LT(report->selection.holdout_test_error, 0.35);
}

}  // namespace
}  // namespace hamlet
