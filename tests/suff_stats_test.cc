/// Cached-vs-scan equivalence suite for the sufficient-statistics fast
/// path (docs/PERFORMANCE.md). The contract under test: with the cache
/// active, every search selects the *identical* subset, reports an error
/// within 1e-12 of the scan path (bit-equal for forward/exhaustive/
/// filters, whose summation order matches the scan path exactly), and
/// trains the same number of candidate models — across bundled datasets
/// and thread counts {1, 2, 8}. The scan reference runs under
/// ScopedSuffStatsBypass + set_force_scan_eval, which is also how
/// PipelineConfig::force_scan_eval is exercised.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "common/rng.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "fs/candidate_eval.h"
#include "fs/exhaustive_search.h"
#include "fs/filters.h"
#include "fs/greedy_search.h"
#include "fs/runner.h"
#include "ml/eval.h"
#include "ml/naive_bayes.h"
#include "ml/suff_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hamlet {
namespace {

const uint32_t kThreadCounts[] = {1u, 2u, 8u};

// Bundled datasets the sweep covers: one with avoidable joins, one
// open-domain-key schema, one where nothing is avoidable — small scales
// keep the whole sweep fast while exercising real cardinalities.
struct DatasetCase {
  const char* name;
  double scale;
};
const DatasetCase kDatasetCases[] = {
    {"Walmart", 0.02}, {"Expedia", 0.004}, {"Yelp", 0.02}};

struct EncodedCase {
  std::string name;
  std::unique_ptr<EncodedDataset> data;
  HoldoutSplit split;
  ErrorMetric metric;
};

EncodedCase MakeEncodedCase(const DatasetCase& c, uint64_t seed) {
  EncodedCase out;
  out.name = c.name;
  NormalizedDataset dataset = *MakeDataset(c.name, c.scale, seed);
  std::vector<std::string> to_join;
  for (const auto& fk : dataset.foreign_keys()) {
    to_join.push_back(fk.fk_column);
  }
  Table table = *dataset.JoinSubset(to_join);
  out.data =
      std::make_unique<EncodedDataset>(*EncodedDataset::FromTableAuto(table));
  Rng rng(seed + 1);
  out.split = MakeHoldoutSplit(out.data->num_rows(), rng);
  out.metric = *MetricForDataset(c.name);
  return out;
}

// --- TrainFromStats is bit-identical to the scan Train. -------------------

TEST(SuffStatsTest, TrainFromStatsMatchesScanTrainBitExactly) {
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 7);
  const SuffStats stats = BuildSuffStats(*c.data, c.split.train, 1);
  const std::vector<uint32_t> features = c.data->AllFeatureIndices();

  NaiveBayes scan(1.0);
  {
    ScopedSuffStatsBypass bypass;  // Guarantee the scan path.
    ASSERT_TRUE(scan.Train(*c.data, c.split.train, features).ok());
  }
  NaiveBayes from_stats(1.0);
  ASSERT_TRUE(from_stats.TrainFromStats(stats, features).ok());

  ASSERT_EQ(scan.log_priors().size(), from_stats.log_priors().size());
  for (size_t c2 = 0; c2 < scan.log_priors().size(); ++c2) {
    EXPECT_EQ(scan.log_priors()[c2], from_stats.log_priors()[c2]);
  }
  for (uint32_t r : c.split.validation) {
    const std::vector<double> a = scan.LogScores(*c.data, r);
    const std::vector<double> b = from_stats.LogScores(*c.data, r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(SuffStatsTest, BuildIsIdenticalAtAnyThreadCount) {
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 8);
  const SuffStats ref = BuildSuffStats(*c.data, c.split.train, 1);
  for (uint32_t threads : {2u, 8u, 0u}) {
    const SuffStats got = BuildSuffStats(*c.data, c.split.train, threads);
    EXPECT_EQ(got.class_counts, ref.class_counts) << "threads " << threads;
    EXPECT_EQ(got.cardinalities, ref.cardinalities) << "threads " << threads;
    EXPECT_EQ(got.feature_counts, ref.feature_counts) << "threads " << threads;
  }
}

// --- Cache behavior: hit, bypass, eviction. -------------------------------

TEST(SuffStatsCacheTest, GetOrBuildHitsAndPeeks) {
  SuffStatsCache::Global().Clear();
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 9);
  auto a = SuffStatsCache::Global().GetOrBuild(*c.data, c.split.train, 1);
  ASSERT_NE(a, nullptr);
  auto b = SuffStatsCache::Global().GetOrBuild(*c.data, c.split.train, 1);
  EXPECT_EQ(a.get(), b.get());  // Same entry, no rebuild.
  auto p = SuffStatsCache::Global().Peek(*c.data, c.split.train);
  EXPECT_EQ(a.get(), p.get());
  // A different row subset is a different key.
  EXPECT_EQ(SuffStatsCache::Global().Peek(*c.data, c.split.validation),
            nullptr);
  SuffStatsCache::Global().Clear();
  EXPECT_EQ(SuffStatsCache::Global().Peek(*c.data, c.split.train), nullptr);
}

TEST(SuffStatsCacheTest, BypassForcesMisses) {
  SuffStatsCache::Global().Clear();
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 10);
  auto a = SuffStatsCache::Global().GetOrBuild(*c.data, c.split.train, 1);
  ASSERT_NE(a, nullptr);
  {
    ScopedSuffStatsBypass bypass;
    EXPECT_TRUE(SuffStatsCache::Bypassed());
    EXPECT_EQ(SuffStatsCache::Global().Peek(*c.data, c.split.train), nullptr);
    EXPECT_EQ(SuffStatsCache::Global().GetOrBuild(*c.data, c.split.train, 1),
              nullptr);
    {
      ScopedSuffStatsBypass nested;  // Nestable.
      EXPECT_TRUE(SuffStatsCache::Bypassed());
    }
    EXPECT_TRUE(SuffStatsCache::Bypassed());
  }
  EXPECT_FALSE(SuffStatsCache::Bypassed());
  EXPECT_NE(SuffStatsCache::Global().Peek(*c.data, c.split.train), nullptr);
  SuffStatsCache::Global().Clear();
}

TEST(SuffStatsCacheTest, EvictsLeastRecentlyUsed) {
  SuffStatsCache::Global().Clear();
  SuffStatsCache::Global().set_capacity(2);
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 11);
  std::vector<uint32_t> rows_a = {0, 1, 2, 3};
  std::vector<uint32_t> rows_b = {4, 5, 6, 7};
  std::vector<uint32_t> rows_c = {8, 9, 10, 11};
  SuffStatsCache::Global().GetOrBuild(*c.data, rows_a, 1);
  SuffStatsCache::Global().GetOrBuild(*c.data, rows_b, 1);
  // Touch A so B is the LRU entry, then insert C.
  ASSERT_NE(SuffStatsCache::Global().Peek(*c.data, rows_a), nullptr);
  SuffStatsCache::Global().GetOrBuild(*c.data, rows_c, 1);
  EXPECT_NE(SuffStatsCache::Global().Peek(*c.data, rows_a), nullptr);
  EXPECT_EQ(SuffStatsCache::Global().Peek(*c.data, rows_b), nullptr);
  EXPECT_NE(SuffStatsCache::Global().Peek(*c.data, rows_c), nullptr);
  SuffStatsCache::Global().set_capacity(16);
  SuffStatsCache::Global().Clear();
}

// --- Fast path vs scan path: full search equivalence. ---------------------

SelectionResult RunScanReference(FeatureSelector& selector,
                                 const EncodedCase& c,
                                 const std::vector<uint32_t>& candidates) {
  ScopedSuffStatsBypass bypass;
  selector.set_force_scan_eval(true);
  selector.set_num_threads(1);
  return *selector.Select(*c.data, c.split, MakeNaiveBayesFactory(),
                          c.metric, candidates);
}

void ExpectEquivalent(const SelectionResult& scan, const SelectionResult& fast,
                      const std::string& label) {
  EXPECT_EQ(fast.selected, scan.selected) << label;
  EXPECT_LE(std::fabs(fast.validation_error - scan.validation_error), 1e-12)
      << label;
  EXPECT_EQ(fast.models_trained, scan.models_trained) << label;
}

TEST(FastPathEquivalenceTest, ForwardSelectionMatchesScanOnBundledDatasets) {
  for (const DatasetCase& dc : kDatasetCases) {
    EncodedCase c = MakeEncodedCase(dc, 21);
    const std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
    ForwardSelection scan_fs;
    const SelectionResult scan = RunScanReference(scan_fs, c, candidates);
    for (uint32_t threads : kThreadCounts) {
      SuffStatsCache::Global().Clear();
      ForwardSelection fs;
      fs.set_num_threads(threads);
      const SelectionResult fast = *fs.Select(
          *c.data, c.split, MakeNaiveBayesFactory(), c.metric, candidates);
      ExpectEquivalent(scan, fast,
                       c.name + " threads=" + std::to_string(threads));
      // Forward's summation order matches the scan path exactly.
      EXPECT_EQ(fast.validation_error, scan.validation_error) << c.name;
    }
  }
}

TEST(FastPathEquivalenceTest, BackwardSelectionMatchesScanOnBundledDatasets) {
  for (const DatasetCase& dc : kDatasetCases) {
    EncodedCase c = MakeEncodedCase(dc, 22);
    const std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
    BackwardSelection scan_bs;
    const SelectionResult scan = RunScanReference(scan_bs, c, candidates);
    for (uint32_t threads : kThreadCounts) {
      SuffStatsCache::Global().Clear();
      BackwardSelection bs;
      bs.set_num_threads(threads);
      const SelectionResult fast = *bs.Select(
          *c.data, c.split, MakeNaiveBayesFactory(), c.metric, candidates);
      ExpectEquivalent(scan, fast,
                       c.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(FastPathEquivalenceTest, ExhaustiveSelectionMatchesScanOnBundledDatasets) {
  for (const DatasetCase& dc : kDatasetCases) {
    EncodedCase c = MakeEncodedCase(dc, 23);
    // Cap the lattice: the first (up to) 8 features.
    std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
    if (candidates.size() > 8) candidates.resize(8);
    ExhaustiveSelection scan_ex;
    const SelectionResult scan = RunScanReference(scan_ex, c, candidates);
    for (uint32_t threads : kThreadCounts) {
      SuffStatsCache::Global().Clear();
      ExhaustiveSelection ex;
      ex.set_num_threads(threads);
      const SelectionResult fast = *ex.Select(
          *c.data, c.split, MakeNaiveBayesFactory(), c.metric, candidates);
      ExpectEquivalent(scan, fast,
                       c.name + " threads=" + std::to_string(threads));
      // The DFS accumulates features in ascending bit order — the scan
      // path's subset order — so errors are bit-equal, not just close.
      EXPECT_EQ(fast.validation_error, scan.validation_error) << c.name;
    }
  }
}

TEST(FastPathEquivalenceTest, FiltersMatchScanOnBundledDatasets) {
  for (const DatasetCase& dc : kDatasetCases) {
    EncodedCase c = MakeEncodedCase(dc, 24);
    const std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
    for (FilterScore score : {FilterScore::kMutualInformation,
                              FilterScore::kInformationGainRatio}) {
      ScoreFilter scan_filter(score);
      const SelectionResult scan = RunScanReference(scan_filter, c,
                                                    candidates);
      for (uint32_t threads : kThreadCounts) {
        SuffStatsCache::Global().Clear();
        ScoreFilter filter(score);
        filter.set_num_threads(threads);
        const SelectionResult fast = *filter.Select(
            *c.data, c.split, MakeNaiveBayesFactory(), c.metric, candidates);
        ExpectEquivalent(scan, fast,
                         c.name + " threads=" + std::to_string(threads));
        EXPECT_EQ(fast.validation_error, scan.validation_error) << c.name;
      }
    }
  }
}

TEST(FastPathEquivalenceTest, FilterScoresMatchCachedContingencyTables) {
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 25);
  const std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
  for (FilterScore score : {FilterScore::kMutualInformation,
                            FilterScore::kInformationGainRatio}) {
    ScoreFilter filter(score);
    filter.set_num_threads(1);
    std::vector<double> scan_scores;
    {
      ScopedSuffStatsBypass bypass;
      scan_scores = filter.ScoreFeatures(*c.data, c.split.train, candidates);
    }
    SuffStatsCache::Global().Clear();
    SuffStatsCache::Global().GetOrBuild(*c.data, c.split.train, 1);
    const std::vector<double> cached_scores =
        filter.ScoreFeatures(*c.data, c.split.train, candidates);
    ASSERT_EQ(cached_scores.size(), scan_scores.size());
    for (size_t i = 0; i < scan_scores.size(); ++i) {
      EXPECT_EQ(cached_scores[i], scan_scores[i]) << "feature " << i;
    }
    SuffStatsCache::Global().Clear();
  }
}

// --- NbSubsetEvaluator unit invariants. -----------------------------------

TEST(NbSubsetEvaluatorTest, EvalPathsAgreeWithEachOther) {
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 26);
  const std::vector<uint32_t> candidates = c.data->AllFeatureIndices();
  auto stats = std::make_shared<const SuffStats>(
      BuildSuffStats(*c.data, c.split.train, 1));
  NbSubsetEvaluator ev(*c.data, stats, c.split.validation, c.metric, 1.0,
                       candidates, 1);

  std::vector<uint32_t> subset;
  ev.ResetBase(subset);
  for (uint32_t f : candidates) {
    // EvalBasePlus(f) must equal evaluating S ∪ {f} from scratch.
    const double plus = ev.EvalBasePlus(f);
    std::vector<uint32_t> grown = subset;
    grown.push_back(f);
    EXPECT_EQ(plus, ev.EvalSubset(grown)) << "feature " << f;
    if (subset.size() < 3) {
      subset = grown;
      ev.AddToBase(f);
      EXPECT_EQ(ev.EvalBase(), ev.EvalSubset(subset));
    }
  }
  // RemoveFromBase then EvalBase ≈ evaluating the shrunk subset (the
  // subtraction re-associates the sum, hence tolerance not equality).
  const uint32_t dropped = subset.back();
  ev.RemoveFromBase(dropped);
  subset.pop_back();
  EXPECT_LE(std::fabs(ev.EvalBase() - ev.EvalSubset(subset)), 1e-12);
}

// --- Observability: the fs.* probes record under collection. --------------

TEST(SuffStatsObservabilityTest, ProbesRecordUnderCollection) {
  SuffStatsCache::Global().Clear();
  EncodedCase c = MakeEncodedCase(kDatasetCases[0], 27);
  obs::ScopedCollection collection(true);
  ForwardSelection fs;
  fs.set_num_threads(1);
  ASSERT_TRUE(fs.Select(*c.data, c.split, MakeNaiveBayesFactory(), c.metric,
                        c.data->AllFeatureIndices())
                  .ok());
  // A Peek hit on the same split must also count.
  ASSERT_NE(SuffStatsCache::Global().Peek(*c.data, c.split.train), nullptr);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  uint64_t hits = 0, misses = 0, deltas = 0, builds = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "fs.cache_hits") hits = counter.value;
    if (counter.name == "fs.cache_misses") misses = counter.value;
    if (counter.name == "fs.delta_evals") deltas = counter.value;
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "fs.stats_build_ns") builds = histogram.count;
  }
  EXPECT_GE(misses, 1u);  // The search's GetOrBuild built once...
  EXPECT_EQ(builds, misses);
  EXPECT_GE(hits, 1u);    // ...and the later Peek hit.
  EXPECT_GE(deltas, c.data->num_features());
  SuffStatsCache::Global().Clear();
}

}  // namespace
}  // namespace hamlet
