#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace hamlet {
namespace {

TEST(ThreadPoolTest, ConstructionAndTeardown) {
  // Pools of various sizes construct, idle, and join cleanly — including
  // repeatedly, since teardown must leave no detached state behind.
  for (int round = 0; round < 3; ++round) {
    ThreadPool one(1);
    EXPECT_EQ(one.num_workers(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.num_workers(), 4u);
    ThreadPool hardware;
    EXPECT_GE(hardware.num_workers(), 1u);
  }
}

TEST(ThreadPoolTest, TeardownAfterWork) {
  std::atomic<uint32_t> count{0};
  {
    ThreadPool pool(3);
    pool.ParallelFor(100, 0, [&](uint32_t) { ++count; });
  }  // Destructor joins workers with an empty queue.
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, ChunkedSchedulingCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  for (uint32_t shards : {1u, 2u, 3u, 7u, 16u, 0u}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    pool.ParallelFor(257, shards, [&](uint32_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1)
          << "index " << i << " shards " << shards;
    }
  }
}

TEST(ThreadPoolTest, MoreShardsThanWorkersStillCompletes) {
  // Shards beyond the worker count queue up and drain; nothing is lost.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> visits(100);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(100, 32, [&](uint32_t i) { ++visits[i]; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 8,
                                [](uint32_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("bad item");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a throwing region and remains usable.
  std::atomic<uint32_t> count{0};
  pool.ParallelFor(64, 8, [&](uint32_t) { ++count; });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, LowestShardExceptionWinsDeterministically) {
  // When several shards throw, the caller must always observe the
  // lowest-indexed shard's exception — shard 0 owns index 0, so with
  // every item throwing its own index the winner is "0" regardless of
  // which shard *finished* throwing first.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(64, 8, [](uint32_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, SoleThrowingItemIsTheOneRethrown) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(40, 4, [](uint32_t i) {
      if (i == 23) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "23");
  }
}

TEST(ThreadPoolTest, NestedSubmissionDegradesToSerial) {
  ThreadPool pool(2);
  std::atomic<uint32_t> outer_done{0};
  pool.ParallelFor(4, 4, [&](uint32_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested region must run entirely on this thread (serial), and
    // must not deadlock even though every worker may be busy with the
    // outer region.
    const std::thread::id me = std::this_thread::get_id();
    std::vector<std::thread::id> ran_on(50);
    pool.ParallelFor(50, 4, [&](uint32_t j) {
      ran_on[j] = std::this_thread::get_id();
    });
    for (const auto& id : ran_on) EXPECT_EQ(id, me);
    ++outer_done;
  });
  EXPECT_EQ(outer_done.load(), 4u);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, SerialFallbackDoesNotMarkRegion) {
  // A single-shard call runs inline without claiming the region, so a
  // loop nested under an explicitly-serial outer loop may still
  // parallelize (the Monte Carlo serial-outer/parallel-inner shape).
  ThreadPool pool(2);
  pool.ParallelFor(3, 1, [&](uint32_t) {
    EXPECT_FALSE(ThreadPool::InParallelRegion());
  });
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_workers(), 1u);
}

TEST(ThreadPoolTest, SlotWritesAreDeterministic) {
  ThreadPool pool(4);
  auto run = [&](uint32_t shards) {
    std::vector<uint64_t> out(1000);
    pool.ParallelFor(1000, shards, [&](uint32_t i) {
      out[i] = static_cast<uint64_t>(i) * 2654435761u + 7;
    });
    return out;
  };
  const auto reference = run(1);
  for (uint32_t shards : {2u, 7u, 0u}) {
    EXPECT_EQ(run(shards), reference) << "shards " << shards;
  }
}

}  // namespace
}  // namespace hamlet
