#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace hamlet {
namespace {

TEST(ThreadPoolTest, ConstructionAndTeardown) {
  // Pools of various sizes construct, idle, and join cleanly — including
  // repeatedly, since teardown must leave no detached state behind.
  for (int round = 0; round < 3; ++round) {
    ThreadPool one(1);
    EXPECT_EQ(one.num_workers(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.num_workers(), 4u);
    ThreadPool hardware;
    EXPECT_GE(hardware.num_workers(), 1u);
  }
}

TEST(ThreadPoolTest, TeardownAfterWork) {
  std::atomic<uint32_t> count{0};
  {
    ThreadPool pool(3);
    pool.ParallelFor(100, 0, [&](uint32_t) { ++count; });
  }  // Destructor joins workers with an empty queue.
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, ChunkedSchedulingCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  for (uint32_t shards : {1u, 2u, 3u, 7u, 16u, 0u}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    pool.ParallelFor(257, shards, [&](uint32_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1)
          << "index " << i << " shards " << shards;
    }
  }
}

TEST(ThreadPoolTest, MoreShardsThanWorkersStillCompletes) {
  // Shards beyond the worker count queue up and drain; nothing is lost.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> visits(100);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(100, 32, [&](uint32_t i) { ++visits[i]; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 8,
                                [](uint32_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("bad item");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a throwing region and remains usable.
  std::atomic<uint32_t> count{0};
  pool.ParallelFor(64, 8, [&](uint32_t) { ++count; });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, LowestShardExceptionWinsDeterministically) {
  // When several shards throw, the caller must always observe the
  // lowest-indexed shard's exception — shard 0 owns index 0, so with
  // every item throwing its own index the winner is "0" regardless of
  // which shard *finished* throwing first.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(64, 8, [](uint32_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, SoleThrowingItemIsTheOneRethrown) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(40, 4, [](uint32_t i) {
      if (i == 23) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "23");
  }
}

TEST(ThreadPoolTest, NestedSubmissionDegradesToSerial) {
  ThreadPool pool(2);
  std::atomic<uint32_t> outer_done{0};
  pool.ParallelFor(4, 4, [&](uint32_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested region must run entirely on this thread (serial), and
    // must not deadlock even though every worker may be busy with the
    // outer region.
    const std::thread::id me = std::this_thread::get_id();
    std::vector<std::thread::id> ran_on(50);
    pool.ParallelFor(50, 4, [&](uint32_t j) {
      ran_on[j] = std::this_thread::get_id();
    });
    for (const auto& id : ran_on) EXPECT_EQ(id, me);
    ++outer_done;
  });
  EXPECT_EQ(outer_done.load(), 4u);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, SerialFallbackDoesNotMarkRegion) {
  // A single-shard call runs inline without claiming the region, so a
  // loop nested under an explicitly-serial outer loop may still
  // parallelize (the Monte Carlo serial-outer/parallel-inner shape).
  ThreadPool pool(2);
  pool.ParallelFor(3, 1, [&](uint32_t) {
    EXPECT_FALSE(ThreadPool::InParallelRegion());
  });
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_workers(), 1u);
}

TEST(ThreadPoolTest, LifetimeStatsCountRegionsAndTasks) {
  ThreadPool pool(2);
  const ThreadPoolStats before = pool.GetStats();
  EXPECT_EQ(before.regions, 0u);
  EXPECT_EQ(before.tasks_run, 0u);
  EXPECT_EQ(before.serial_degradations, 0u);

  pool.ParallelFor(100, 4, [](uint32_t) {});
  pool.ParallelFor(100, 4, [](uint32_t) {});
  const ThreadPoolStats after = pool.GetStats();
  EXPECT_EQ(after.regions, 2u);
  // Shard 0 runs inline on the caller; the rest are pool tasks.
  EXPECT_GE(after.tasks_run, 2u);
  EXPECT_EQ(after.serial_degradations, 0u);

  // A single-shard call never reaches the pool and counts nothing.
  pool.ParallelFor(100, 1, [](uint32_t) {});
  EXPECT_EQ(pool.GetStats().regions, 2u);
}

TEST(ThreadPoolTest, NestedRegionsCountAsSerialDegradations) {
  // The regression the stats exist to catch: parallel work accidentally
  // issued from inside a parallel region silently runs serial — the
  // counter makes that visible.
  ThreadPool pool(2);
  pool.ParallelFor(4, 4, [&](uint32_t) {
    pool.ParallelFor(4, 4, [](uint32_t) {});
  });
  const ThreadPoolStats stats = pool.GetStats();
  EXPECT_EQ(stats.serial_degradations, 4u);
  // Only the outer call was a real pool region.
  EXPECT_EQ(stats.regions, 1u);

  // Explicitly-serial inner loops (shards <= 1) are not degradations.
  pool.ParallelFor(4, 4, [&](uint32_t) {
    pool.ParallelFor(4, 1, [](uint32_t) {});
  });
  EXPECT_EQ(pool.GetStats().serial_degradations, 4u);
}

TEST(ThreadPoolTest, QueueWaitCollectionIsOffByDefaultAndGated) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.collect_queue_wait());
  pool.ParallelFor(64, 4, [](uint32_t) {});
  EXPECT_EQ(pool.GetStats().queue_wait_count, 0u);

  pool.set_collect_queue_wait(true);
  pool.ParallelFor(64, 4, [](uint32_t) {});
  pool.set_collect_queue_wait(false);
  const ThreadPoolStats stats = pool.GetStats();
  EXPECT_GT(stats.queue_wait_count, 0u);
  ASSERT_EQ(stats.queue_wait_ns_buckets.size(),
            ThreadPool::kQueueWaitBuckets);
  uint64_t bucket_sum = 0;
  for (uint64_t b : stats.queue_wait_ns_buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, stats.queue_wait_count);

  // Back off: no further samples accumulate.
  pool.ParallelFor(64, 4, [](uint32_t) {});
  EXPECT_EQ(pool.GetStats().queue_wait_count, stats.queue_wait_count);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndNonZeroOnWorkers) {
  // Worker threads get dense nonzero ids (the metrics shard key); the
  // caller thread reports 0 unless it is itself a pool worker.
  ThreadPool pool(3);
  std::vector<uint32_t> seen(64, 0);
  pool.ParallelFor(64, 64, [&](uint32_t i) {
    seen[i] = ThreadPool::CurrentWorkerId();
  });
  // Shard 0 ran inline on this thread; its id must match ours.
  EXPECT_EQ(seen[0], ThreadPool::CurrentWorkerId());
  bool any_worker = false;
  for (uint32_t id : seen) any_worker |= id != 0;
  EXPECT_TRUE(any_worker);
}

TEST(ThreadPoolTest, SlotWritesAreDeterministic) {
  ThreadPool pool(4);
  auto run = [&](uint32_t shards) {
    std::vector<uint64_t> out(1000);
    pool.ParallelFor(1000, shards, [&](uint32_t i) {
      out[i] = static_cast<uint64_t>(i) * 2654435761u + 7;
    });
    return out;
  };
  const auto reference = run(1);
  for (uint32_t shards : {2u, 7u, 0u}) {
    EXPECT_EQ(run(shards), reference) << "shards " << shards;
  }
}

}  // namespace
}  // namespace hamlet
