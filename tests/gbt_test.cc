#include "ml/gbt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/naive_bayes.h"
#include "stats/metrics.h"

namespace hamlet {
namespace {

std::vector<uint32_t> AllRows(const EncodedDataset& d) {
  std::vector<uint32_t> rows(d.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

EncodedDataset NoisyCopyDataset(uint64_t seed, uint32_t n) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(3);
    g[i] = rng.Uniform(5);
    y[i] = rng.Bernoulli(0.9) ? f[i] : (f[i] + 1) % 3;
  }
  return EncodedDataset({f, g}, {{"F", 3}, {"G", 5}}, y, 3);
}

TEST(GbtTest, LearnsSimpleConcept) {
  EncodedDataset d = NoisyCopyDataset(1, 1200);
  Gbt gbt;
  ASSERT_TRUE(gbt.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_EQ(gbt.num_classes(), 3u);
  EXPECT_EQ(gbt.num_trees(), gbt.options().num_rounds * 3u);
  uint32_t correct = 0;
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    correct += gbt.PredictOne(d, r) == d.feature(0)[r];
  }
  EXPECT_GT(correct, d.num_rows() * 95 / 100);
}

TEST(GbtTest, CapturesXorThatNaiveBayesCannot) {
  Rng rng(2);
  const uint32_t n = 4000;
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(2);
    y[i] = f[i] ^ g[i];
  }
  EncodedDataset d({f, g}, {{"F", 2}, {"G", 2}}, y, 2);
  std::vector<uint32_t> rows = AllRows(d);

  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, rows, {0, 1}).ok());
  Gbt gbt;
  ASSERT_TRUE(gbt.Train(d, rows, {0, 1}).ok());

  auto truth = d.labels();
  EXPECT_GT(ZeroOneError(truth, nb.Predict(d, rows)), 0.4);
  EXPECT_LT(ZeroOneError(truth, gbt.Predict(d, rows)), 0.05);
}

TEST(GbtTest, MoreRoundsDoNotHurtTrainError) {
  EncodedDataset d = NoisyCopyDataset(3, 1000);
  const std::vector<uint32_t> rows = AllRows(d);
  auto truth = d.labels();
  GbtOptions few;
  few.num_rounds = 1;
  Gbt a(few);
  ASSERT_TRUE(a.Train(d, rows, {0, 1}).ok());
  GbtOptions many;
  many.num_rounds = 15;
  Gbt b(many);
  ASSERT_TRUE(b.Train(d, rows, {0, 1}).ok());
  EXPECT_LE(ZeroOneError(truth, b.Predict(d, rows)),
            ZeroOneError(truth, a.Predict(d, rows)) + 1e-12);
}

TEST(GbtTest, BitIdenticalAcrossThreadCounts) {
  EncodedDataset d = NoisyCopyDataset(4, 900);
  const std::vector<uint32_t> rows = AllRows(d);
  GbtOptions ref_options;
  ref_options.num_rounds = 6;
  ref_options.num_threads = 1;
  Gbt ref(ref_options);
  ASSERT_TRUE(ref.Train(d, rows, {0, 1}).ok());
  const GbtParams ref_params = ref.ExportParams();
  for (uint32_t threads : {2u, 8u, 0u}) {
    GbtOptions options = ref_options;
    options.num_threads = threads;
    Gbt gbt(options);
    ASSERT_TRUE(gbt.Train(d, rows, {0, 1}).ok());
    const GbtParams p = gbt.ExportParams();
    EXPECT_EQ(p.base_scores, ref_params.base_scores) << threads;
    ASSERT_EQ(p.trees.size(), ref_params.trees.size()) << threads;
    for (size_t m = 0; m < p.trees.size(); ++m) {
      EXPECT_EQ(p.trees[m].split_slot, ref_params.trees[m].split_slot)
          << "threads " << threads << " tree " << m;
      EXPECT_EQ(p.trees[m].value, ref_params.trees[m].value)
          << "threads " << threads << " tree " << m;
    }
  }
}

TEST(GbtTest, RefitBudgetCapsRoundsWhileActive) {
  EncodedDataset d = NoisyCopyDataset(5, 800);
  const std::vector<uint32_t> rows = AllRows(d);
  GbtOptions options;
  options.num_rounds = 10;
  options.candidate_rounds = 2;
  options.candidate_max_depth = 1;

  Gbt full(options);
  ASSERT_TRUE(full.Train(d, rows, {0, 1}).ok());
  EXPECT_EQ(full.num_trees(), 10u * 3u);

  {
    ScopedTreeRefitBudget budget;
    Gbt capped(options);
    ASSERT_TRUE(capped.Train(d, rows, {0, 1}).ok());
    EXPECT_EQ(capped.num_trees(), 2u * 3u);
  }

  Gbt after(options);
  ASSERT_TRUE(after.Train(d, rows, {0, 1}).ok());
  EXPECT_EQ(after.num_trees(), 10u * 3u);
}

TEST(GbtTest, LogScoresIntoMatchesPredictOne) {
  EncodedDataset d = NoisyCopyDataset(6, 600);
  GbtOptions options;
  options.num_rounds = 5;
  Gbt gbt(options);
  ASSERT_TRUE(gbt.Train(d, AllRows(d), {0, 1}).ok());
  std::vector<double> scores;
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    gbt.LogScoresInto(d, r, &scores);
    ASSERT_EQ(scores.size(), 3u);
    uint32_t best = 0;
    for (uint32_t c = 1; c < 3; ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    EXPECT_EQ(best, gbt.PredictOne(d, r)) << "row " << r;
  }
}

TEST(GbtTest, ExportImportRoundTripIsBitExact) {
  EncodedDataset d = NoisyCopyDataset(7, 800);
  const std::vector<uint32_t> rows = AllRows(d);
  GbtOptions options;
  options.num_rounds = 4;
  Gbt gbt(options);
  ASSERT_TRUE(gbt.Train(d, rows, {0, 1}).ok());
  auto copy = Gbt::FromParams(gbt.ExportParams());
  ASSERT_TRUE(copy.ok()) << copy.status();
  const GbtParams a = gbt.ExportParams();
  const GbtParams b = copy->ExportParams();
  EXPECT_EQ(b.learning_rate, a.learning_rate);
  EXPECT_EQ(b.lambda, a.lambda);
  EXPECT_EQ(b.base_scores, a.base_scores);
  ASSERT_EQ(b.trees.size(), a.trees.size());
  for (size_t m = 0; m < a.trees.size(); ++m) {
    EXPECT_EQ(b.trees[m].split_slot, a.trees[m].split_slot) << m;
    EXPECT_EQ(b.trees[m].value, a.trees[m].value) << m;
  }
  EXPECT_EQ(copy->Predict(d, rows), gbt.Predict(d, rows));
}

TEST(GbtTest, FromParamsRejectsInconsistencies) {
  EncodedDataset d = NoisyCopyDataset(8, 500);
  GbtOptions options;
  options.num_rounds = 2;
  Gbt gbt(options);
  ASSERT_TRUE(gbt.Train(d, AllRows(d), {0, 1}).ok());
  const GbtParams good = gbt.ExportParams();
  ASSERT_FALSE(good.trees.empty());

  {
    GbtParams p = good;
    p.lambda = 0.0;
    EXPECT_FALSE(Gbt::FromParams(std::move(p)).ok());
  }
  {
    GbtParams p = good;
    p.base_scores.pop_back();
    EXPECT_FALSE(Gbt::FromParams(std::move(p)).ok());
  }
  {
    GbtParams p = good;
    p.trees.pop_back();  // No longer a multiple of num_classes.
    EXPECT_FALSE(Gbt::FromParams(std::move(p)).ok());
  }
  {
    GbtParams p = good;
    p.trees[0].value.pop_back();
    EXPECT_FALSE(Gbt::FromParams(std::move(p)).ok());
  }
  {
    GbtParams p = good;
    p.trees[0].split_slot[0] = 99;
    EXPECT_FALSE(Gbt::FromParams(std::move(p)).ok());
  }
}

TEST(GbtTest, TrainRejectsBadIndices) {
  EncodedDataset d = NoisyCopyDataset(9, 100);
  Gbt gbt;
  EXPECT_FALSE(gbt.Train(d, AllRows(d), {0, 7}).ok());
  EXPECT_FALSE(gbt.Train(d, {0, 1, 5000}, {0}).ok());
}

}  // namespace
}  // namespace hamlet
