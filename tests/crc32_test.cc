#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace hamlet {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for the canonical 9-byte test input.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, ChunkedMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t chained = Crc32(data.data(), cut);
    chained = Crc32(data.data() + cut, data.size() - cut, chained);
    EXPECT_EQ(chained, one_shot) << "cut at " << cut;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "hamlet artifact payload";
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace hamlet
