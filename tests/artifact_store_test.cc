#include "serve/artifact_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace hamlet::serve {
namespace {

EncodedDataset MakeData(uint64_t seed, uint32_t n = 100) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(3);
    y[i] = rng.Bernoulli(0.8) ? (f[i] % 2) : 1 - (f[i] % 2);
  }
  return EncodedDataset({f}, {{"F", 3}}, y, 2);
}

NaiveBayes TrainNb(const EncodedDataset& data, double alpha = 1.0) {
  NaiveBayes model(alpha);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0}).ok());
  return model;
}

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/hamlet_store_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
};

TEST_F(ArtifactStoreTest, PutAllocatesGrowingVersions) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(1);
  NaiveBayes model = TrainNb(data);
  auto v1 = store.PutNaiveBayes("m", model);
  auto v2 = store.PutNaiveBayes("m", model);
  auto v3 = store.PutNaiveBayes("m", model);
  ASSERT_TRUE(v1.ok() && v2.ok() && v3.ok());
  EXPECT_EQ(*v1, 1u);
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(*v3, 3u);
  auto latest = store.LatestVersion("m");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 3u);
}

TEST_F(ArtifactStoreTest, GetLatestResolvesHighestVersion) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(2);
  NaiveBayes a = TrainNb(data, 1.0);
  NaiveBayes b = TrainNb(data, 2.0);  // Distinguishable by alpha.
  ASSERT_TRUE(store.PutNaiveBayes("m", a).ok());
  ASSERT_TRUE(store.PutNaiveBayes("m", b).ok());
  auto latest = store.GetNaiveBayes("m");
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ((*latest)->alpha(), 2.0);
  auto pinned = store.GetNaiveBayes("m", 1);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ((*pinned)->alpha(), 1.0);
}

TEST_F(ArtifactStoreTest, MissingArtifactsAreNotFound) {
  ArtifactStore store(root_);
  EXPECT_EQ(store.GetNaiveBayes("absent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.LatestVersion("absent").status().code(),
            StatusCode::kNotFound);
  // Present name, absent version.
  ASSERT_TRUE(store.PutDataset("d", MakeData(3)).ok());
  EXPECT_EQ(store.GetDataset("d", 9).status().code(), StatusCode::kNotFound);
}

TEST_F(ArtifactStoreTest, BadNamesRejected) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(4);
  for (const char* name : {"", "../escape", "a/b", ".hidden", "sp ace"}) {
    EXPECT_EQ(store.PutDataset(name, data).status().code(),
              StatusCode::kInvalidArgument)
        << "name '" << name << "'";
  }
  EXPECT_TRUE(store.PutDataset("ok_name-1.2", data).ok());
}

TEST_F(ArtifactStoreTest, KindMismatchIsTypedError) {
  ArtifactStore store(root_);
  ASSERT_TRUE(store.PutDataset("d", MakeData(5)).ok());
  auto as_model = store.GetNaiveBayes("d");
  ASSERT_FALSE(as_model.ok());
  EXPECT_EQ(SerdeErrorOf(as_model.status()), SerdeError::kKindMismatch);
}

TEST_F(ArtifactStoreTest, CorruptFileIsTypedErrorNotCrash) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(6);
  ASSERT_TRUE(store.PutDataset("d", data).ok());
  // Flip one payload byte in place on disk.
  const std::string path = root_ + "/d/v1.hamlet";
  std::string bytes = *ReadFileBytes(path);
  bytes[kHeaderSize + 3] =
      static_cast<char>(~static_cast<uint8_t>(bytes[kHeaderSize + 3]));
  ASSERT_TRUE(WriteFileBytes(path, bytes).ok());
  auto back = store.GetDataset("d");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(SerdeErrorOf(back.status()), SerdeError::kCrcMismatch);
}

TEST_F(ArtifactStoreTest, CacheHitsAfterFirstLoad) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(7);
  ASSERT_TRUE(store.PutNaiveBayes("m", TrainNb(data)).ok());
  auto first = store.GetNaiveBayes("m", 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(store.cache_hits(), 0u);
  EXPECT_EQ(store.cache_misses(), 1u);
  auto second = store.GetNaiveBayes("m", 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(store.cache_hits(), 1u);
  // Cache hits hand back the same deserialized instance.
  EXPECT_EQ(first->get(), second->get());

  store.ClearCache();
  auto third = store.GetNaiveBayes("m", 1);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(store.cache_hits(), 1u);
  EXPECT_EQ(store.cache_misses(), 2u);
}

TEST_F(ArtifactStoreTest, LruEvictsLeastRecentlyUsed) {
  ArtifactStore store(root_, /*cache_capacity=*/2);
  EncodedDataset data = MakeData(8);
  NaiveBayes model = TrainNb(data);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(store.PutNaiveBayes(name, model).ok());
  }
  ASSERT_TRUE(store.GetNaiveBayes("a").ok());  // miss → {a}
  ASSERT_TRUE(store.GetNaiveBayes("b").ok());  // miss → {a, b}
  ASSERT_TRUE(store.GetNaiveBayes("a").ok());  // hit, a now most recent
  ASSERT_TRUE(store.GetNaiveBayes("c").ok());  // miss, evicts b → {a, c}
  uint64_t misses_before = store.cache_misses();
  ASSERT_TRUE(store.GetNaiveBayes("a").ok());  // still cached
  EXPECT_EQ(store.cache_misses(), misses_before);
  ASSERT_TRUE(store.GetNaiveBayes("b").ok());  // evicted → miss again
  EXPECT_EQ(store.cache_misses(), misses_before + 1);
}

TEST_F(ArtifactStoreTest, ListReportsEverythingSorted) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(9);
  ASSERT_TRUE(store.PutDataset("data", data).ok());
  ASSERT_TRUE(store.PutNaiveBayes("model", TrainNb(data)).ok());
  ASSERT_TRUE(store.PutNaiveBayes("model", TrainNb(data)).ok());
  auto list = store.List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].name, "data");
  EXPECT_EQ((*list)[0].kind, ArtifactKind::kEncodedDataset);
  EXPECT_EQ((*list)[1].name, "model");
  EXPECT_EQ((*list)[1].version, 1u);
  EXPECT_EQ((*list)[2].version, 2u);
  EXPECT_GT((*list)[0].size_bytes, 0u);
}

TEST_F(ArtifactStoreTest, ListSkipsForeignFiles) {
  ArtifactStore store(root_);
  ASSERT_TRUE(store.PutDataset("d", MakeData(10)).ok());
  std::ofstream(root_ + "/d/README.txt") << "not an artifact";
  std::ofstream(root_ + "/d/v2.hamlet") << "garbage bytes";
  auto list = store.List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);  // Foreign + corrupt files skipped.
  EXPECT_EQ((*list)[0].version, 1u);
}

TEST_F(ArtifactStoreTest, NoTmpFilesLeftBehindAfterPut) {
  ArtifactStore store(root_);
  ASSERT_TRUE(store.PutDataset("d", MakeData(11)).ok());
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_)) {
    if (entry.is_directory()) continue;
    EXPECT_EQ(entry.path().extension(), ".hamlet") << entry.path();
  }
}

TEST_F(ArtifactStoreTest, KindOfProbesWithoutFullLoad) {
  ArtifactStore store(root_);
  ASSERT_TRUE(store.PutDataset("d", MakeData(12)).ok());
  auto kind = store.KindOf("d");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ArtifactKind::kEncodedDataset);
}

TEST_F(ArtifactStoreTest, DatasetRoundTripThroughStore) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(13);
  ASSERT_TRUE(store.PutDataset("d", data).ok());
  auto back = store.GetDataset("d");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ((*back)->labels(), data.labels());
  EXPECT_EQ((*back)->feature(0), data.feature(0));
}

TEST_F(ArtifactStoreTest, TreeModelsRoundTripThroughStore) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(14, 300);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;

  DecisionTree tree;
  ASSERT_TRUE(tree.Train(data, rows, {0}).ok());
  GbtOptions gbt_options;
  gbt_options.num_rounds = 3;
  Gbt gbt(gbt_options);
  ASSERT_TRUE(gbt.Train(data, rows, {0}).ok());

  auto tree_version = store.PutDecisionTree("tree", tree);
  ASSERT_TRUE(tree_version.ok()) << tree_version.status();
  EXPECT_EQ(*tree_version, 1u);
  auto gbt_version = store.PutGbt("gbt", gbt);
  ASSERT_TRUE(gbt_version.ok()) << gbt_version.status();

  auto tree_kind = store.KindOf("tree");
  ASSERT_TRUE(tree_kind.ok());
  EXPECT_EQ(*tree_kind, ArtifactKind::kDecisionTree);
  auto gbt_kind = store.KindOf("gbt");
  ASSERT_TRUE(gbt_kind.ok());
  EXPECT_EQ(*gbt_kind, ArtifactKind::kGradientBoostedTrees);

  auto tree_back = store.GetDecisionTree("tree");
  ASSERT_TRUE(tree_back.ok()) << tree_back.status();
  EXPECT_EQ((*tree_back)->Predict(data, rows), tree.Predict(data, rows));
  auto gbt_back = store.GetGbt("gbt");
  ASSERT_TRUE(gbt_back.ok()) << gbt_back.status();
  EXPECT_EQ((*gbt_back)->Predict(data, rows), gbt.Predict(data, rows));

  // Cache hits hand back the same deserialized instance.
  auto tree_again = store.GetDecisionTree("tree");
  ASSERT_TRUE(tree_again.ok());
  EXPECT_EQ(tree_back->get(), tree_again->get());
}

TEST_F(ArtifactStoreTest, TreeKindMismatchIsTypedError) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(15);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(data, rows, {0}).ok());
  ASSERT_TRUE(store.PutDecisionTree("tree", tree).ok());
  auto as_gbt = store.GetGbt("tree");
  ASSERT_FALSE(as_gbt.ok());
  EXPECT_EQ(SerdeErrorOf(as_gbt.status()), SerdeError::kKindMismatch);
  auto as_nb = store.GetNaiveBayes("tree");
  ASSERT_FALSE(as_nb.ok());
  EXPECT_EQ(SerdeErrorOf(as_nb.status()), SerdeError::kKindMismatch);
  EXPECT_EQ(store.GetDecisionTree("absent").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ArtifactStoreTest, FsRunReportRoundTripThroughStore) {
  ArtifactStore store(root_);
  FsRunReport report;
  report.method = "MI Filter";
  report.selection.selected = {1};
  report.holdout_test_error = 0.5;
  ASSERT_TRUE(store.PutFsRunReport("run.fs_report", report).ok());
  auto back = store.GetFsRunReport("run.fs_report");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->method, "MI Filter");
  EXPECT_EQ(back->selection.selected, std::vector<uint32_t>{1});
}

// Every successful publish bumps the generation counter exactly once —
// the warm-model-cache's kLatest revalidation signal — and a failed
// publish (bad name) leaves it untouched.
TEST_F(ArtifactStoreTest, GenerationCountsSuccessfulPublishes) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(20);
  EXPECT_EQ(store.generation(), 0u);
  ASSERT_TRUE(store.PutNaiveBayes("m", TrainNb(data)).ok());
  EXPECT_EQ(store.generation(), 1u);
  ASSERT_TRUE(store.PutNaiveBayes("m", TrainNb(data)).ok());
  ASSERT_TRUE(store.PutDataset("d", data).ok());
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_FALSE(store.PutNaiveBayes("bad/name", TrainNb(data)).ok());
  EXPECT_EQ(store.generation(), 3u);
}

// Concurrent cache hits take the shared-lock path while the handed-out
// shared_ptrs pin the artifact: readers racing a publish (which evicts
// nothing, but bumps generation) and each other must always see a
// structurally-valid model. Primarily a TSAN target for
// scripts/check_determinism.sh.
TEST_F(ArtifactStoreTest, ConcurrentHitsSharePinnedModels) {
  ArtifactStore store(root_);
  EncodedDataset data = MakeData(21);
  NaiveBayes model = TrainNb(data);
  ASSERT_TRUE(store.PutNaiveBayes("m", model).ok());
  ASSERT_TRUE(store.GetNaiveBayes("m", 1).ok());  // Warm the cache.
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  const std::vector<uint32_t> expected = model.Predict(data, rows);

  constexpr int kReaders = 8;
  constexpr int kGetsPerReader = 50;
  std::vector<int> failures(kReaders, 0);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kGetsPerReader; ++i) {
        auto hit = store.GetNaiveBayes("m", 1);  // Concrete: pure hit.
        if (!hit.ok() || (*hit)->Predict(data, rows) != expected) {
          ++failures[t];
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      if (!store.PutNaiveBayes("other", model).ok()) return;
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(failures[t], 0) << "reader " << t;
  }
  EXPECT_GE(store.cache_hits(), static_cast<uint64_t>(kReaders));
}

}  // namespace
}  // namespace hamlet::serve
