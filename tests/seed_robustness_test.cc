/// Seed-robustness: the qualitative outcomes the benches report must not
/// hinge on one lucky seed. These parameterized suites re-check the
/// core claims — advisor plans, the Yelp blow-up, the MovieLens flatness,
/// and the simulation dichotomy — across generator seeds.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/advisor.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"
#include "sim/monte_carlo.h"

namespace hamlet {
namespace {

double PipelineError(const NormalizedDataset& ds,
                     const std::vector<std::string>& fks,
                     ErrorMetric metric, uint64_t seed) {
  auto table = *ds.JoinSubset(fks);
  auto data = *EncodedDataset::FromTableAuto(table);
  Rng rng(seed);
  HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
  auto selector = MakeSelector(FsMethod::kForwardSelection);
  auto report = *RunFeatureSelection(*selector, data, split,
                                     MakeNaiveBayesFactory(), metric,
                                     data.AllFeatureIndices());
  return report.holdout_test_error;
}

class SeedRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedRobustnessTest, AdvisorPlansAreSeedInvariant) {
  // Decisions depend only on schema statistics, which the seed does not
  // change — any drift would mean the generator corrupts row counts.
  for (const auto& name : AllDatasetNames()) {
    auto ds = *MakeDataset(name, 0.02, GetParam());
    auto baseline = *MakeDataset(name, 0.02, 42);
    auto plan = *AdviseJoins(ds);
    auto ref = *AdviseJoins(baseline);
    auto sorted = [](std::vector<std::string> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(plan.fks_avoided), sorted(ref.fks_avoided)) << name;
  }
}

TEST_P(SeedRobustnessTest, YelpAvoidanceAlwaysHurts) {
  auto ds = *MakeDataset("Yelp", 0.05, GetParam());
  auto metric = *MetricForDataset("Yelp");
  double all = PipelineError(ds, {"BusinessID", "UserID"}, metric, 7);
  double none = PipelineError(ds, {}, metric, 7);
  EXPECT_GT(none, all + 0.03) << "seed " << GetParam();
}

TEST_P(SeedRobustnessTest, MovieLensAvoidanceAlwaysFree) {
  auto ds = *MakeDataset("MovieLens1M", 0.02, GetParam());
  auto metric = *MetricForDataset("MovieLens1M");
  double all = PipelineError(ds, {"MovieID", "UserID"}, metric, 7);
  double none = PipelineError(ds, {}, metric, 7);
  EXPECT_LE(none, all + 0.02) << "seed " << GetParam();
}

TEST_P(SeedRobustnessTest, SimulationDichotomyHolds) {
  MonteCarloOptions mc;
  mc.num_training_sets = 30;
  mc.num_repeats = 3;
  mc.seed = GetParam();
  SimConfig low_tr;
  low_tr.n_s = 500;
  low_tr.n_r = 250;
  SimConfig high_tr;
  high_tr.n_s = 2000;
  high_tr.n_r = 20;
  auto low = *RunMonteCarlo(low_tr, mc);
  auto high = *RunMonteCarlo(high_tr, mc);
  EXPECT_GT(low.DeltaTestError(), 0.03) << "seed " << GetParam();
  EXPECT_NEAR(high.DeltaTestError(), 0.0, 0.01) << "seed " << GetParam();
}

TEST_P(SeedRobustnessTest, ParallelSearchMatchesSerialOnEverySeed) {
  // The determinism contract must hold on real (generated) schemas, not
  // just synthetic fixtures: a parallel forward selection returns exactly
  // the serial run's subset, errors, and model count, whatever the seed.
  auto ds = *MakeDataset("MovieLens1M", 0.02, GetParam());
  auto table = *ds.JoinAll();
  auto data = *EncodedDataset::FromTableAuto(table);
  auto run = [&](uint32_t threads) {
    Rng rng(7);
    HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
    auto selector = MakeSelector(FsMethod::kForwardSelection, threads);
    return *RunFeatureSelection(*selector, data, split,
                                MakeNaiveBayesFactory(),
                                *MetricForDataset("MovieLens1M"),
                                data.AllFeatureIndices());
  };
  const FsRunReport serial = run(1);
  for (uint32_t threads : {2u, 7u, 0u}) {
    const FsRunReport parallel = run(threads);
    EXPECT_EQ(parallel.selection.selected, serial.selection.selected)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_EQ(parallel.selection.validation_error,
              serial.selection.validation_error)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_EQ(parallel.selection.models_trained,
              serial.selection.models_trained)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_EQ(parallel.holdout_test_error, serial.holdout_test_error)
        << "seed " << GetParam() << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(1u, 137u, 9001u));

}  // namespace
}  // namespace hamlet
