#include "ml/tan.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/naive_bayes.h"
#include "sim/data_synthesis.h"
#include "stats/metrics.h"

namespace hamlet {
namespace {

std::vector<uint32_t> AllRows(const EncodedDataset& d) {
  std::vector<uint32_t> rows(d.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(TanTest, LearnsSimpleConcept) {
  Rng rng(1);
  std::vector<uint32_t> f(1000), g(1000), y(1000);
  for (int i = 0; i < 1000; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(2);
    y[i] = rng.Bernoulli(0.95) ? f[i] : 1 - f[i];
  }
  EncodedDataset d({f, g}, {{"F", 2}, {"G", 2}}, y, 2);
  TreeAugmentedNaiveBayes tan;
  ASSERT_TRUE(tan.Train(d, AllRows(d), {0, 1}).ok());
  uint32_t correct = 0;
  for (uint32_t r = 0; r < 1000; ++r) {
    correct += tan.PredictOne(d, r) == f[r];
  }
  EXPECT_GT(correct, 900u);
}

TEST(TanTest, CapturesXorThatNaiveBayesCannot) {
  // Y = F XOR G: marginally both features are independent of Y, so NB is
  // at chance; TAN's pairwise conditional P(G | F, Y) captures it.
  Rng rng(2);
  std::vector<uint32_t> f(4000), g(4000), y(4000);
  for (int i = 0; i < 4000; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(2);
    y[i] = f[i] ^ g[i];
  }
  EncodedDataset d({f, g}, {{"F", 2}, {"G", 2}}, y, 2);
  std::vector<uint32_t> rows = AllRows(d);

  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, rows, {0, 1}).ok());
  TreeAugmentedNaiveBayes tan;
  ASSERT_TRUE(tan.Train(d, rows, {0, 1}).ok());

  auto truth = d.labels();
  double nb_err = ZeroOneError(truth, nb.Predict(d, rows));
  double tan_err = ZeroOneError(truth, tan.Predict(d, rows));
  EXPECT_GT(nb_err, 0.4);   // NB is blind to XOR.
  EXPECT_LT(tan_err, 0.05);  // TAN nails it.
}

TEST(TanTest, SingleFeatureDegeneratesToNaiveBayes) {
  Rng rng(3);
  std::vector<uint32_t> f(500), y(500);
  for (int i = 0; i < 500; ++i) {
    f[i] = rng.Uniform(3);
    y[i] = rng.Bernoulli(0.9) ? f[i] % 2 : rng.Uniform(2);
  }
  EncodedDataset d({f}, {{"F", 3}}, y, 2);
  std::vector<uint32_t> rows = AllRows(d);
  TreeAugmentedNaiveBayes tan;
  NaiveBayes nb;
  ASSERT_TRUE(tan.Train(d, rows, {0}).ok());
  ASSERT_TRUE(nb.Train(d, rows, {0}).ok());
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(tan.PredictOne(d, r), nb.PredictOne(d, r));
  }
  EXPECT_EQ(tan.parents()[0], -1);  // Root, no parent.
}

TEST(TanTest, FdPullsForeignFeaturesUnderFk) {
  // Appendix E: under the FD FK -> X_R, every X_R feature's strongest
  // conditional dependency is FK, so the Chow-Liu tree hangs X_R off FK.
  SimConfig config;
  config.scenario = TrueDistribution::kLoneXr;
  config.n_s = 3000;
  config.d_s = 2;
  config.d_r = 4;
  config.n_r = 30;
  Rng rng(4);
  SimDataGenerator gen(config, rng);
  SimDraw draw = gen.Draw(config.n_s, rng);
  TreeAugmentedNaiveBayes tan;
  ASSERT_TRUE(
      tan.Train(draw.data, AllRows(draw.data), gen.UseAllFeatures()).ok());
  uint32_t fk_pos = gen.FkFeatureIndex();
  for (uint32_t j = fk_pos + 1; j < fk_pos + 1 + config.d_r; ++j) {
    EXPECT_EQ(tan.parents()[j], static_cast<int32_t>(fk_pos))
        << "X_R feature " << j << " should hang off FK";
  }
}

TEST(TanTest, EdgeWeightsAreSymmetricAndNonNegative) {
  Rng rng(5);
  std::vector<uint32_t> f(400), g(400), h(400), y(400);
  for (int i = 0; i < 400; ++i) {
    f[i] = rng.Uniform(3);
    g[i] = rng.Uniform(2);
    h[i] = (f[i] + g[i]) % 2;
    y[i] = rng.Uniform(2);
  }
  EncodedDataset d({f, g, h}, {{"F", 3}, {"G", 2}, {"H", 2}}, y, 2);
  TreeAugmentedNaiveBayes tan;
  ASSERT_TRUE(tan.Train(d, AllRows(d), {0, 1, 2}).ok());
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_GE(tan.EdgeWeight(i, j), 0.0);
      EXPECT_DOUBLE_EQ(tan.EdgeWeight(i, j), tan.EdgeWeight(j, i));
    }
  }
}

TEST(TanTest, TreeHasExactlyOneRoot) {
  Rng rng(6);
  std::vector<std::vector<uint32_t>> feats(5,
                                           std::vector<uint32_t>(300));
  std::vector<uint32_t> y(300);
  std::vector<FeatureMeta> metas;
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 300; ++i) feats[j][i] = rng.Uniform(3);
    metas.push_back({"F" + std::to_string(j), 3});
  }
  for (int i = 0; i < 300; ++i) y[i] = rng.Uniform(2);
  EncodedDataset d(feats, metas, y, 2);
  TreeAugmentedNaiveBayes tan;
  ASSERT_TRUE(tan.Train(d, AllRows(d), d.AllFeatureIndices()).ok());
  int roots = 0;
  for (int32_t p : tan.parents()) roots += (p < 0);
  EXPECT_EQ(roots, 1);
}

TEST(TanTest, ZeroRowsRejected) {
  EncodedDataset d({{0}}, {{"F", 2}}, {0}, 2);
  TreeAugmentedNaiveBayes tan;
  EXPECT_EQ(tan.Train(d, {}, {0}).code(), StatusCode::kInvalidArgument);
}

TEST(TanTest, FactoryAndName) {
  auto factory = MakeTanFactory();
  auto model = factory();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "tan");
}

}  // namespace
}  // namespace hamlet
