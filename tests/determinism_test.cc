/// Determinism regression suite: the threading contract says every
/// parallel path — greedy/exhaustive wrapper search, filter scoring and
/// k-tuning, and the Monte Carlo protocol — produces *bit-for-bit*
/// identical results at any thread count. These tests pin that down by
/// running each path at num_threads ∈ {1, 2, 7, hardware} and comparing
/// selections, scores, errors, and bias/variance decompositions with
/// exact (==) equality against the serial run.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fs/exhaustive_search.h"
#include "fs/filters.h"
#include "fs/greedy_search.h"
#include "fs/runner.h"
#include "ml/naive_bayes.h"
#include "sim/monte_carlo.h"

namespace hamlet {
namespace {

// Thread counts every suite sweeps: serial, small, odd (uneven chunks),
// and hardware (0).
const uint32_t kThreadCounts[] = {1u, 2u, 7u, 0u};

// A dataset where features 0 and 1 jointly determine Y plus noise
// features, with a fixed 50/25/25 split — enough structure that searches
// do nontrivial work (multiple steps, real ties in the noise tail).
struct DetFixture {
  EncodedDataset data;
  HoldoutSplit split;

  explicit DetFixture(uint64_t seed, uint32_t n = 800,
                      uint32_t num_noise = 4)
      : data(Build(seed, n, num_noise)) {
    Rng rng(seed + 1);
    split = MakeHoldoutSplit(data.num_rows(), rng);
  }

  static EncodedDataset Build(uint64_t seed, uint32_t n,
                              uint32_t num_noise) {
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> feats(2 + num_noise,
                                             std::vector<uint32_t>(n));
    std::vector<uint32_t> y(n);
    std::vector<FeatureMeta> metas = {{"Signal0", 2}, {"Signal1", 2}};
    for (uint32_t j = 0; j < num_noise; ++j) {
      metas.push_back({"Noise" + std::to_string(j), 4});
    }
    for (uint32_t i = 0; i < n; ++i) {
      feats[0][i] = rng.Uniform(2);
      feats[1][i] = rng.Uniform(2);
      for (uint32_t j = 0; j < num_noise; ++j) {
        feats[2 + j][i] = rng.Uniform(4);
      }
      uint32_t target = feats[0][i] | (feats[1][i] << 1);
      y[i] = rng.Bernoulli(0.9) ? target : rng.Uniform(4);
    }
    return EncodedDataset(std::move(feats), std::move(metas),
                          std::move(y), 4);
  }
};

void ExpectSameSelection(const SelectionResult& ref,
                         const SelectionResult& got, uint32_t threads) {
  EXPECT_EQ(got.selected, ref.selected) << "threads " << threads;
  EXPECT_EQ(got.validation_error, ref.validation_error)
      << "threads " << threads;
  EXPECT_EQ(got.models_trained, ref.models_trained) << "threads " << threads;
}

TEST(DeterminismTest, ForwardSelectionIdenticalAtAnyThreadCount) {
  DetFixture f(11);
  auto run = [&](uint32_t threads) {
    ForwardSelection fs;
    fs.set_num_threads(threads);
    return *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                      ErrorMetric::kZeroOne, f.data.AllFeatureIndices());
  };
  const SelectionResult ref = run(1);
  for (uint32_t threads : kThreadCounts) {
    ExpectSameSelection(ref, run(threads), threads);
  }
}

TEST(DeterminismTest, BackwardSelectionIdenticalAtAnyThreadCount) {
  DetFixture f(12);
  auto run = [&](uint32_t threads) {
    BackwardSelection bs;
    bs.set_num_threads(threads);
    return *bs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                      ErrorMetric::kZeroOne, f.data.AllFeatureIndices());
  };
  const SelectionResult ref = run(1);
  for (uint32_t threads : kThreadCounts) {
    ExpectSameSelection(ref, run(threads), threads);
  }
}

TEST(DeterminismTest, ExhaustiveSelectionIdenticalAtAnyThreadCount) {
  DetFixture f(13);
  auto run = [&](uint32_t threads) {
    ExhaustiveSelection ex;
    ex.set_num_threads(threads);
    return *ex.Select(f.data, f.split, MakeNaiveBayesFactory(),
                      ErrorMetric::kZeroOne, f.data.AllFeatureIndices());
  };
  const SelectionResult ref = run(1);
  for (uint32_t threads : kThreadCounts) {
    ExpectSameSelection(ref, run(threads), threads);
  }
}

TEST(DeterminismTest, FilterScoresIdenticalAtAnyThreadCount) {
  DetFixture f(14);
  std::vector<uint32_t> rows = f.split.train;
  for (FilterScore score : {FilterScore::kMutualInformation,
                            FilterScore::kInformationGainRatio}) {
    ScoreFilter serial(score);
    serial.set_num_threads(1);
    const std::vector<double> ref = serial.ScoreFeatures(
        f.data, rows, f.data.AllFeatureIndices());
    for (uint32_t threads : kThreadCounts) {
      ScoreFilter filter(score);
      filter.set_num_threads(threads);
      const std::vector<double> got = filter.ScoreFeatures(
          f.data, rows, f.data.AllFeatureIndices());
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "feature " << i << " threads "
                                  << threads;
      }
    }
  }
}

TEST(DeterminismTest, FilterSelectionIdenticalAtAnyThreadCount) {
  DetFixture f(15);
  for (FsMethod method : {FsMethod::kMiFilter, FsMethod::kIgrFilter}) {
    auto run = [&](uint32_t threads) {
      auto filter = MakeSelector(method, threads);
      return *filter->Select(f.data, f.split, MakeNaiveBayesFactory(),
                             ErrorMetric::kZeroOne,
                             f.data.AllFeatureIndices());
    };
    const SelectionResult ref = run(1);
    for (uint32_t threads : kThreadCounts) {
      ExpectSameSelection(ref, run(threads), threads);
    }
  }
}

void ExpectSameDecomposition(const BiasVarianceResult& ref,
                             const BiasVarianceResult& got,
                             uint32_t threads) {
  EXPECT_EQ(got.avg_test_error, ref.avg_test_error) << "threads " << threads;
  EXPECT_EQ(got.avg_bias, ref.avg_bias) << "threads " << threads;
  EXPECT_EQ(got.avg_variance, ref.avg_variance) << "threads " << threads;
  EXPECT_EQ(got.avg_net_variance, ref.avg_net_variance)
      << "threads " << threads;
  EXPECT_EQ(got.avg_noise, ref.avg_noise) << "threads " << threads;
  EXPECT_EQ(got.num_points, ref.num_points) << "threads " << threads;
}

TEST(DeterminismTest, MonteCarloIdenticalAtAnyThreadCount) {
  SimConfig config;
  config.n_s = 400;
  config.n_r = 40;
  MonteCarloOptions options;
  options.num_training_sets = 25;
  options.num_repeats = 3;
  options.num_threads = 1;
  const MonteCarloResult ref = *RunMonteCarlo(config, options);
  for (uint32_t threads : kThreadCounts) {
    MonteCarloOptions parallel = options;
    parallel.num_threads = threads;
    const MonteCarloResult got = *RunMonteCarlo(config, parallel);
    ExpectSameDecomposition(ref.use_all, got.use_all, threads);
    ExpectSameDecomposition(ref.no_join, got.no_join, threads);
    ExpectSameDecomposition(ref.no_fk, got.no_fk, threads);
  }
}

TEST(DeterminismTest, MonteCarloSingleRepeatParallelizesInnerLoop) {
  // num_repeats = 1 leaves the outer loop serial, so the inner
  // training-set loop is the one that parallelizes — it must produce the
  // same decomposition as a fully serial run.
  SimConfig config;
  config.n_s = 300;
  config.n_r = 30;
  MonteCarloOptions options;
  options.num_training_sets = 40;
  options.num_repeats = 1;
  options.num_threads = 1;
  const MonteCarloResult ref = *RunMonteCarlo(config, options);
  for (uint32_t threads : kThreadCounts) {
    MonteCarloOptions parallel = options;
    parallel.num_threads = threads;
    const MonteCarloResult got = *RunMonteCarlo(config, parallel);
    ExpectSameDecomposition(ref.use_all, got.use_all, threads);
    ExpectSameDecomposition(ref.no_join, got.no_join, threads);
    ExpectSameDecomposition(ref.no_fk, got.no_fk, threads);
  }
}

}  // namespace
}  // namespace hamlet
