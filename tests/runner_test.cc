#include "fs/runner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

struct RunnerFixture {
  EncodedDataset data;
  HoldoutSplit split;

  explicit RunnerFixture(uint64_t seed) {
    Rng rng(seed);
    const uint32_t n = 1000;
    std::vector<uint32_t> f(n), g(n), y(n);
    for (uint32_t i = 0; i < n; ++i) {
      f[i] = rng.Uniform(2);
      g[i] = rng.Uniform(3);
      y[i] = rng.Bernoulli(0.9) ? f[i] : 1 - f[i];
    }
    data = EncodedDataset({f, g}, {{"F", 2}, {"G", 3}}, y, 2);
    Rng split_rng(seed + 1);
    split = MakeHoldoutSplit(n, split_rng);
  }
};

TEST(FsRunnerTest, MakeSelectorCoversAllMethods) {
  for (FsMethod m : AllFsMethods()) {
    auto selector = MakeSelector(m);
    ASSERT_NE(selector, nullptr);
    EXPECT_FALSE(selector->name().empty());
  }
}

TEST(FsRunnerTest, MethodNames) {
  EXPECT_STREQ(FsMethodToString(FsMethod::kForwardSelection),
               "Forward Selection");
  EXPECT_STREQ(FsMethodToString(FsMethod::kBackwardSelection),
               "Backward Selection");
  EXPECT_STREQ(FsMethodToString(FsMethod::kMiFilter), "MI Filter");
  EXPECT_STREQ(FsMethodToString(FsMethod::kIgrFilter), "IGR Filter");
}

TEST(FsRunnerTest, AllMethodsOrderedAsInFigure7) {
  auto methods = AllFsMethods();
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0], FsMethod::kForwardSelection);
  EXPECT_EQ(methods[3], FsMethod::kIgrFilter);
}

TEST(FsRunnerTest, ReportContainsEverything) {
  RunnerFixture f(1);
  auto selector = MakeSelector(FsMethod::kForwardSelection);
  auto report = RunFeatureSelection(*selector, f.data, f.split,
                                    MakeNaiveBayesFactory(),
                                    ErrorMetric::kZeroOne,
                                    f.data.AllFeatureIndices());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->method, "forward_selection");
  EXPECT_FALSE(report->selected_names.empty());
  EXPECT_EQ(report->selected_names.size(), report->selection.selected.size());
  EXPECT_GE(report->runtime_seconds, 0.0);
  EXPECT_LT(report->holdout_test_error, 0.2);  // Bayes error 0.1.
  EXPECT_GE(report->selection.models_trained, 1u);
}

TEST(FsRunnerTest, AllMethodsProduceLowErrorOnEasyConcept) {
  RunnerFixture f(2);
  for (FsMethod m : AllFsMethods()) {
    auto selector = MakeSelector(m);
    auto report = RunFeatureSelection(*selector, f.data, f.split,
                                      MakeNaiveBayesFactory(),
                                      ErrorMetric::kZeroOne,
                                      f.data.AllFeatureIndices());
    ASSERT_TRUE(report.ok()) << FsMethodToString(m);
    EXPECT_LT(report->holdout_test_error, 0.2) << FsMethodToString(m);
  }
}

}  // namespace
}  // namespace hamlet
