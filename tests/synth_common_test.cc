#include "datasets/synth_common.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/encoded_dataset.h"
#include "stats/contingency.h"
#include "stats/info_theory.h"

namespace hamlet {
namespace {

SynthDatasetSpec ToySpec() {
  SynthDatasetSpec spec;
  spec.name = "Toy";
  spec.entity_name = "S";
  spec.pk_name = "SID";
  spec.target_name = "Y";
  spec.num_classes = 3;
  spec.n_s = 3000;
  spec.label_noise = 0.2;
  spec.s_features = {
      {SynthFeatureSpec::Noise("SNoise", 4), 0.0},
      {SynthFeatureSpec::Noise("SSig", 4), 0.8},
  };
  SynthAttributeTableSpec r;
  r.table_name = "R";
  r.pk_name = "RID";
  r.fk_name = "RID";
  r.num_rows = 60;
  r.latent_cardinality = 8;
  r.target_weight = 1.0;
  r.features = {
      SynthFeatureSpec::Signal("Exposed", 8, 0.9),
      SynthFeatureSpec::Signal("NumExposed", 6, 0.8, /*numeric=*/true),
      SynthFeatureSpec::Noise("Junk", 5),
  };
  spec.tables = {r};
  return spec;
}

TEST(CenteredValueTest, MapsToUnitInterval) {
  EXPECT_DOUBLE_EQ(CenteredValue(0, 5), -1.0);
  EXPECT_DOUBLE_EQ(CenteredValue(4, 5), 1.0);
  EXPECT_DOUBLE_EQ(CenteredValue(2, 5), 0.0);
  EXPECT_DOUBLE_EQ(CenteredValue(0, 1), 0.0);  // Degenerate domain.
}

TEST(LatentToCodeTest, InjectiveWhenCardinalityCovers) {
  // card >= L: distinct latents get distinct codes.
  std::set<uint32_t> codes;
  for (uint32_t l = 0; l < 8; ++l) codes.insert(LatentToCode(l, 0, 8, 8));
  EXPECT_EQ(codes.size(), 8u);
}

TEST(LatentToCodeTest, GroupsContiguouslyWhenSmaller) {
  // card 2, L 8: lower half -> one code, upper half -> the other.
  uint32_t low = LatentToCode(0, 0, 2, 8);
  for (uint32_t l = 1; l < 4; ++l) {
    EXPECT_EQ(LatentToCode(l, 0, 2, 8), low);
  }
  uint32_t high = LatentToCode(4, 0, 2, 8);
  EXPECT_NE(low, high);
  for (uint32_t l = 5; l < 8; ++l) {
    EXPECT_EQ(LatentToCode(l, 0, 2, 8), high);
  }
}

TEST(LatentToCodeTest, SaltRotates) {
  EXPECT_NE(LatentToCode(0, 0, 8, 8), LatentToCode(0, 3, 8, 8));
}

TEST(SynthDatasetTest, GeneratesValidStarSchema) {
  auto ds = GenerateSyntheticDataset(ToySpec(), 1.0, 42);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->entity().num_rows(), 3000u);
  ASSERT_EQ(ds->attribute_tables().size(), 1u);
  EXPECT_EQ(ds->attribute_tables()[0].num_rows(), 60u);
  EXPECT_TRUE(ds->entity().Validate().ok());
  EXPECT_TRUE(ds->attribute_tables()[0].Validate().ok());
}

TEST(SynthDatasetTest, ScalePreservesTupleRatio) {
  auto full = *GenerateSyntheticDataset(ToySpec(), 1.0, 42);
  auto tenth = *GenerateSyntheticDataset(ToySpec(), 0.1, 42);
  double tr_full = static_cast<double>(full.entity().num_rows()) /
                   full.attribute_tables()[0].num_rows();
  double tr_tenth = static_cast<double>(tenth.entity().num_rows()) /
                    tenth.attribute_tables()[0].num_rows();
  EXPECT_NEAR(tr_full, tr_tenth, 0.05 * tr_full);
}

TEST(SynthDatasetTest, ScaleNeverBelowTwoRows) {
  auto ds = *GenerateSyntheticDataset(ToySpec(), 1e-6, 42);
  EXPECT_GE(ds.entity().num_rows(), 2u);
  EXPECT_GE(ds.attribute_tables()[0].num_rows(), 2u);
}

TEST(SynthDatasetTest, DeterministicInSeed) {
  auto a = *GenerateSyntheticDataset(ToySpec(), 0.5, 7);
  auto b = *GenerateSyntheticDataset(ToySpec(), 0.5, 7);
  EXPECT_EQ(a.entity().column(1).codes(), b.entity().column(1).codes());
  auto c = *GenerateSyntheticDataset(ToySpec(), 0.5, 8);
  EXPECT_NE(a.entity().column(1).codes(), c.entity().column(1).codes());
}

TEST(SynthDatasetTest, SignalFeaturesAreInformative) {
  auto ds = *GenerateSyntheticDataset(ToySpec(), 1.0, 42);
  auto joined = *ds.JoinAll();
  auto enc = *EncodedDataset::FromTableAuto(joined);
  const auto& y = enc.labels();
  auto mi = [&](const char* name) {
    uint32_t j = *enc.FeatureIndexOf(name);
    return MutualInformation(enc.feature(j), y, enc.meta(j).cardinality,
                             enc.num_classes());
  };
  EXPECT_GT(mi("Exposed"), 5.0 * mi("Junk"));
  EXPECT_GT(mi("NumExposed"), 5.0 * mi("Junk"));
  EXPECT_GT(mi("SSig"), 5.0 * mi("SNoise"));
}

TEST(SynthDatasetTest, FkSharesAttributePkDomain) {
  auto ds = *GenerateSyntheticDataset(ToySpec(), 1.0, 42);
  auto fk_col = *ds.entity().ColumnByName("RID");
  auto pk_col = ds.attribute_tables()[0].column(0);
  EXPECT_EQ(fk_col->domain(), pk_col.domain());
}

TEST(SynthDatasetTest, ZipfSkewConcentratesHeadRids) {
  SynthDatasetSpec spec = ToySpec();
  spec.tables[0].fk_zipf = 1.5;
  auto ds = *GenerateSyntheticDataset(spec, 1.0, 42);
  auto fk_col = *ds.entity().ColumnByName("RID");
  std::vector<uint32_t> counts(60, 0);
  for (uint32_t c : fk_col->codes()) ++counts[c];
  // Head RID far more popular than a tail RID.
  EXPECT_GT(counts[0], 8 * std::max(counts[59], 1u));
}

TEST(SynthDatasetTest, InvalidInputsRejected) {
  EXPECT_FALSE(GenerateSyntheticDataset(ToySpec(), 0.0, 1).ok());
  SynthDatasetSpec no_signal = ToySpec();
  no_signal.s_features.clear();
  no_signal.tables[0].target_weight = 0.0;
  EXPECT_FALSE(GenerateSyntheticDataset(no_signal, 1.0, 1).ok());
}

TEST(SynthDatasetTest, BinaryTargetUsesSignOfScore) {
  SynthDatasetSpec spec = ToySpec();
  spec.num_classes = 2;
  auto ds = *GenerateSyntheticDataset(spec, 1.0, 42);
  auto y_idx = ds.entity().schema().TargetIndex();
  const Column& y = ds.entity().column(*y_idx);
  EXPECT_EQ(y.domain_size(), 2u);
  // Roughly balanced classes for a symmetric score.
  auto counts = MarginalCounts(y.codes(), 2);
  double frac = static_cast<double>(counts[1]) / y.size();
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

}  // namespace
}  // namespace hamlet
