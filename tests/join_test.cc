#include "relational/join.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamlet {
namespace {

// The paper's running example: Customers ⋈ Employers.
struct ChurnFixture {
  Table customers;
  Table employers;

  ChurnFixture() {
    Schema r_schema({ColumnSpec::PrimaryKey("EmployerID"),
                     ColumnSpec::Feature("Country"),
                     ColumnSpec::Feature("Revenue")});
    TableBuilder rb("Employers", r_schema);
    EXPECT_TRUE(rb.AppendRowLabels({"e0", "US", "high"}).ok());
    EXPECT_TRUE(rb.AppendRowLabels({"e1", "IN", "low"}).ok());
    EXPECT_TRUE(rb.AppendRowLabels({"e2", "UK", "high"}).ok());
    employers = rb.Build();

    Schema s_schema({ColumnSpec::PrimaryKey("CustomerID"),
                     ColumnSpec::Target("Churn"),
                     ColumnSpec::Feature("Gender"),
                     ColumnSpec::ForeignKey("EmployerID", "Employers")});
    // FK shares the Employers PK domain (closed-domain setting).
    auto pk_domain = employers.column(0).domain();
    TableBuilder sb("Customers", s_schema,
                    {nullptr, nullptr, nullptr, pk_domain});
    EXPECT_TRUE(sb.AppendRowLabels({"c0", "yes", "F", "e1"}).ok());
    EXPECT_TRUE(sb.AppendRowLabels({"c1", "no", "M", "e0"}).ok());
    EXPECT_TRUE(sb.AppendRowLabels({"c2", "no", "F", "e1"}).ok());
    EXPECT_TRUE(sb.AppendRowLabels({"c3", "yes", "M", "e2"}).ok());
    customers = sb.Build();
  }
};

TEST(KfkJoinTest, ProducesExpectedSchema) {
  ChurnFixture f;
  auto t = KfkJoin(f.customers, f.employers, "EmployerID");
  ASSERT_TRUE(t.ok()) << t.status();
  // T(SID, Y, X_S, FK, X_R): RID dropped, FK kept.
  EXPECT_EQ(t->num_columns(), 6u);
  EXPECT_TRUE(t->schema().Contains("EmployerID"));
  EXPECT_TRUE(t->schema().Contains("Country"));
  EXPECT_TRUE(t->schema().Contains("Revenue"));
  EXPECT_EQ(t->num_rows(), 4u);
}

TEST(KfkJoinTest, GathersMatchingForeignFeatures) {
  ChurnFixture f;
  auto t = *KfkJoin(f.customers, f.employers, "EmployerID");
  const Column& country = **t.ColumnByName("Country");
  EXPECT_EQ(country.label(0), "IN");  // c0 -> e1.
  EXPECT_EQ(country.label(1), "US");  // c1 -> e0.
  EXPECT_EQ(country.label(2), "IN");  // c2 -> e1.
  EXPECT_EQ(country.label(3), "UK");  // c3 -> e2.
}

TEST(KfkJoinTest, FdHoldsInOutput) {
  // The FD FK -> X_R of Section 3.1: equal FK codes imply equal X_R.
  ChurnFixture f;
  auto t = *KfkJoin(f.customers, f.employers, "EmployerID");
  const Column& fk = **t.ColumnByName("EmployerID");
  const Column& country = **t.ColumnByName("Country");
  const Column& revenue = **t.ColumnByName("Revenue");
  for (uint32_t i = 0; i < t.num_rows(); ++i) {
    for (uint32_t j = 0; j < t.num_rows(); ++j) {
      if (fk.code(i) == fk.code(j)) {
        EXPECT_EQ(country.code(i), country.code(j));
        EXPECT_EQ(revenue.code(i), revenue.code(j));
      }
    }
  }
}

TEST(KfkJoinTest, NonFkColumnRejected) {
  ChurnFixture f;
  auto t = KfkJoin(f.customers, f.employers, "Gender");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(KfkJoinTest, MissingColumnRejected) {
  ChurnFixture f;
  EXPECT_EQ(KfkJoin(f.customers, f.employers, "Nope").status().code(),
            StatusCode::kNotFound);
}

TEST(KfkJoinTest, ReferentialIntegrityViolationDetected) {
  ChurnFixture f;
  // An employers table missing e2, which c3 references.
  Table shrunk = f.employers.GatherRows({0, 1});
  auto t = KfkJoin(f.customers, shrunk, "EmployerID");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("referential integrity"),
            std::string::npos);
}

TEST(KfkJoinTest, DuplicateRidRejected) {
  ChurnFixture f;
  Table dup = f.employers.GatherRows({0, 0, 1, 2});
  EXPECT_FALSE(KfkJoin(f.customers, dup, "EmployerID").ok());
}

TEST(KfkJoinTest, NameCollisionRejected) {
  ChurnFixture f;
  // An attribute table with a feature named like an S column.
  Schema r_schema({ColumnSpec::PrimaryKey("EmployerID2"),
                   ColumnSpec::Feature("Gender")});
  TableBuilder rb("Employers2", r_schema);
  ASSERT_TRUE(rb.AppendRowLabels({"e0", "x"}).ok());
  Schema s_schema({ColumnSpec::Target("Y"),
                   ColumnSpec::Feature("Gender"),
                   ColumnSpec::ForeignKey("FK", "Employers2")});
  TableBuilder sb("S", s_schema);
  ASSERT_TRUE(sb.AppendRowLabels({"1", "F", "e0"}).ok());
  auto t = KfkJoin(sb.Build(), rb.Build(), "FK");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(KfkJoinTest, WorksAcrossDistinctDomainObjects) {
  // FK built with its own dictionary (same labels, different object).
  ChurnFixture f;
  Schema s_schema({ColumnSpec::Target("Y"),
                   ColumnSpec::ForeignKey("EmpFK", "Employers")});
  TableBuilder sb("S2", s_schema);
  ASSERT_TRUE(sb.AppendRowLabels({"1", "e2"}).ok());
  ASSERT_TRUE(sb.AppendRowLabels({"0", "e0"}).ok());
  Schema r_schema({ColumnSpec::PrimaryKey("EmployerID"),
                   ColumnSpec::Feature("Country"),
                   ColumnSpec::Feature("Revenue")});
  auto t = KfkJoin(sb.Build(), f.employers, "EmpFK");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t->ColumnByName("Country"))->label(0), "UK");
  EXPECT_EQ((*t->ColumnByName("Country"))->label(1), "US");
}

TEST(HashJoinTest, MatchesOnEquality) {
  ChurnFixture f;
  auto t = HashJoin(f.customers, f.employers, "EmployerID", "EmployerID");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 4u);  // Every customer matches exactly once.
}

TEST(HashJoinTest, DropsNonMatchingRows) {
  ChurnFixture f;
  Table shrunk = f.employers.GatherRows({1});  // Only e1 remains.
  auto t = HashJoin(f.customers, shrunk, "EmployerID", "EmployerID");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);  // c0 and c2 reference e1.
}

TEST(HashJoinTest, ManyToManyProducesCrossMatches) {
  Schema l_schema({ColumnSpec::Feature("K"), ColumnSpec::Feature("L")});
  TableBuilder lb("L", l_schema);
  ASSERT_TRUE(lb.AppendRowLabels({"k1", "l1"}).ok());
  ASSERT_TRUE(lb.AppendRowLabels({"k1", "l2"}).ok());
  Schema r_schema({ColumnSpec::Feature("K2"), ColumnSpec::Feature("R")});
  TableBuilder rb("R", r_schema);
  ASSERT_TRUE(rb.AppendRowLabels({"k1", "r1"}).ok());
  ASSERT_TRUE(rb.AppendRowLabels({"k1", "r2"}).ok());
  auto t = HashJoin(lb.Build(), rb.Build(), "K", "K2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 4u);  // 2 x 2 cross matches.
}

// Property test: KfkJoin agrees with HashJoin (the nested-loop-equivalent
// reference) on randomized star schemas.
class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, KfkJoinMatchesHashJoin) {
  Rng rng(GetParam());
  const uint32_t n_r = 3 + rng.Uniform(20);
  const uint32_t n_s = 5 + rng.Uniform(60);

  Schema r_schema({ColumnSpec::PrimaryKey("RID"),
                   ColumnSpec::Feature("XR1"),
                   ColumnSpec::Feature("XR2")});
  TableBuilder rb("R", r_schema);
  for (uint32_t i = 0; i < n_r; ++i) {
    ASSERT_TRUE(rb.AppendRowLabels({"r" + std::to_string(i),
                                    "v" + std::to_string(rng.Uniform(4)),
                                    "w" + std::to_string(rng.Uniform(3))})
                    .ok());
  }
  Table r = rb.Build();

  Schema s_schema({ColumnSpec::Target("Y"), ColumnSpec::Feature("XS"),
                   ColumnSpec::ForeignKey("FK", "R")});
  TableBuilder sb("S", s_schema, {nullptr, nullptr, r.column(0).domain()});
  for (uint32_t i = 0; i < n_s; ++i) {
    ASSERT_TRUE(
        sb.AppendRowLabels({std::to_string(rng.Uniform(2)),
                            "x" + std::to_string(rng.Uniform(5)),
                            "r" + std::to_string(rng.Uniform(n_r))})
            .ok());
  }
  Table s = sb.Build();

  auto kfk = KfkJoin(s, r, "FK");
  ASSERT_TRUE(kfk.ok()) << kfk.status();
  auto reference = HashJoin(s, r, "FK", "RID");
  ASSERT_TRUE(reference.ok()) << reference.status();

  ASSERT_EQ(kfk->num_rows(), reference->num_rows());
  // HashJoin emits matches in left-row order and each S row matches one R
  // row, so outputs must agree cell-for-cell on the shared columns.
  for (const char* col : {"Y", "XS", "FK", "XR1", "XR2"}) {
    const Column& a = **kfk->ColumnByName(col);
    const Column& b = **reference->ColumnByName(col);
    for (uint32_t row = 0; row < kfk->num_rows(); ++row) {
      ASSERT_EQ(a.label(row), b.label(row))
          << "column " << col << " row " << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStarSchemas, JoinEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace hamlet
