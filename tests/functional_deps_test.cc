#include "relational/functional_deps.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relational/join.h"

namespace hamlet {
namespace {

FdSet CustomerFds() {
  // Universe: the joined churn table's features.
  FdSet fds({"Gender", "Age", "EmployerID", "Country", "Revenue"});
  EXPECT_TRUE(
      fds.Add({{"EmployerID"}, {"Country", "Revenue"}}).ok());
  return fds;
}

TEST(FdSetTest, ClosureIncludesSelf) {
  FdSet fds = CustomerFds();
  auto closure = *fds.Closure({"Age"});
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_EQ(closure[0], "Age");
}

TEST(FdSetTest, ClosureFollowsFd) {
  FdSet fds = CustomerFds();
  auto closure = *fds.Closure({"EmployerID"});
  EXPECT_EQ(closure,
            (std::vector<std::string>{"EmployerID", "Country", "Revenue"}));
}

TEST(FdSetTest, ClosureIsTransitive) {
  FdSet fds({"A", "B", "C", "D"});
  ASSERT_TRUE(fds.Add({{"A"}, {"B"}}).ok());
  ASSERT_TRUE(fds.Add({{"B"}, {"C"}}).ok());
  auto closure = *fds.Closure({"A"});
  EXPECT_EQ(closure, (std::vector<std::string>{"A", "B", "C"}));
}

TEST(FdSetTest, CompositeDeterminants) {
  FdSet fds({"A", "B", "C"});
  ASSERT_TRUE(fds.Add({{"A", "B"}, {"C"}}).ok());
  EXPECT_FALSE(*fds.Implies({"A"}, "C"));
  EXPECT_TRUE(*fds.Implies({"A", "B"}, "C"));
}

TEST(FdSetTest, ImpliesRejectsUnknownAttributes) {
  FdSet fds = CustomerFds();
  EXPECT_FALSE(fds.Implies({"Nope"}, "Country").ok());
  EXPECT_FALSE(fds.Implies({"Age"}, "Nope").ok());
}

TEST(FdSetTest, AddRejectsBadFds) {
  FdSet fds({"A"});
  EXPECT_FALSE(fds.Add({{}, {"A"}}).ok());           // Empty determinant.
  EXPECT_FALSE(fds.Add({{"A"}, {"Missing"}}).ok());  // Unknown attribute.
}

TEST(FdSetTest, AcyclicDetection) {
  FdSet acyclic({"A", "B", "C"});
  ASSERT_TRUE(acyclic.Add({{"A"}, {"B"}}).ok());
  ASSERT_TRUE(acyclic.Add({{"B"}, {"C"}}).ok());
  EXPECT_TRUE(acyclic.IsAcyclic());

  FdSet cyclic({"A", "B"});
  ASSERT_TRUE(cyclic.Add({{"A"}, {"B"}}).ok());
  ASSERT_TRUE(cyclic.Add({{"B"}, {"A"}}).ok());
  EXPECT_FALSE(cyclic.IsAcyclic());
}

TEST(FdSetTest, SelfLoopIsCyclic) {
  FdSet fds({"A", "B"});
  ASSERT_TRUE(fds.Add({{"A"}, {"A", "B"}}).ok());
  EXPECT_FALSE(fds.IsAcyclic());
}

TEST(FdSetTest, EmptyFdSetIsAcyclic) {
  EXPECT_TRUE(FdSet({"A", "B"}).IsAcyclic());
}

TEST(FdSetTest, CorollaryC1RedundantAndRepresentativeSets) {
  FdSet fds = CustomerFds();
  EXPECT_EQ(fds.DependentAttributes(),
            (std::vector<std::string>{"Country", "Revenue"}));
  EXPECT_EQ(fds.RepresentativeAttributes(),
            (std::vector<std::string>{"Gender", "Age", "EmployerID"}));
}

TEST(FdSetTest, ChainedDependentsAllRedundant) {
  // A -> B, B -> C: both B and C are dependents; A alone represents.
  FdSet fds({"A", "B", "C"});
  ASSERT_TRUE(fds.Add({{"A"}, {"B"}}).ok());
  ASSERT_TRUE(fds.Add({{"B"}, {"C"}}).ok());
  EXPECT_EQ(fds.RepresentativeAttributes(),
            (std::vector<std::string>{"A"}));
}

// --- Instance-level verification and discovery. ---

Table MakeJoinedInstance() {
  Schema r_schema({ColumnSpec::PrimaryKey("RID"),
                   ColumnSpec::Feature("F1"),
                   ColumnSpec::Feature("F2")});
  TableBuilder rb("R", r_schema);
  EXPECT_TRUE(rb.AppendRowLabels({"r0", "a", "x"}).ok());
  EXPECT_TRUE(rb.AppendRowLabels({"r1", "b", "x"}).ok());
  EXPECT_TRUE(rb.AppendRowLabels({"r2", "a", "y"}).ok());
  Table r = rb.Build();

  Schema s_schema({ColumnSpec::Target("Y"), ColumnSpec::Feature("XS"),
                   ColumnSpec::ForeignKey("FK", "R")});
  TableBuilder sb("S", s_schema, {nullptr, nullptr, r.column(0).domain()});
  EXPECT_TRUE(sb.AppendRowLabels({"0", "p", "r0"}).ok());
  EXPECT_TRUE(sb.AppendRowLabels({"1", "q", "r1"}).ok());
  EXPECT_TRUE(sb.AppendRowLabels({"0", "p", "r2"}).ok());
  EXPECT_TRUE(sb.AppendRowLabels({"1", "q", "r0"}).ok());
  return *KfkJoin(sb.Build(), r, "FK");
}

TEST(FdInstanceTest, KfkJoinMaterializesFkToXrFds) {
  Table t = MakeJoinedInstance();
  EXPECT_TRUE(*FdHoldsInTable(t, "FK", "F1"));
  EXPECT_TRUE(*FdHoldsInTable(t, "FK", "F2"));
  // The reverse generally fails: F2 = "x" maps to two FK values.
  EXPECT_FALSE(*FdHoldsInTable(t, "F2", "FK"));
}

TEST(FdInstanceTest, MissingColumnErrors) {
  Table t = MakeJoinedInstance();
  EXPECT_FALSE(FdHoldsInTable(t, "Nope", "F1").ok());
}

TEST(FdInstanceTest, DiscoveryFindsSchemaFds) {
  Table t = MakeJoinedInstance();
  auto fds = *DiscoverUnaryFds(t);
  auto has = [&](const std::string& det, const std::string& dep) {
    return std::any_of(fds.begin(), fds.end(), [&](const auto& fd) {
      return fd.determinants == std::vector<std::string>{det} &&
             fd.dependents == std::vector<std::string>{dep};
    });
  };
  EXPECT_TRUE(has("FK", "F1"));
  EXPECT_TRUE(has("FK", "F2"));
  EXPECT_FALSE(has("F2", "FK"));
}

TEST(FdInstanceTest, SchemaFdsForJoinBuildsCorollarySet) {
  Table t = MakeJoinedInstance();
  FdSet fds = SchemaFdsForJoin(t, {"FK"}, {{"F1", "F2"}});
  EXPECT_TRUE(fds.IsAcyclic());
  EXPECT_EQ(fds.DependentAttributes(),
            (std::vector<std::string>{"F1", "F2"}));
  // The representative set keeps Y, XS, FK — exactly the NoJoin design.
  auto rep = fds.RepresentativeAttributes();
  EXPECT_TRUE(std::find(rep.begin(), rep.end(), "FK") != rep.end());
  EXPECT_TRUE(std::find(rep.begin(), rep.end(), "XS") != rep.end());
}

}  // namespace
}  // namespace hamlet
