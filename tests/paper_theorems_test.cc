/// Property-based suites for the paper's formal results (Section 3 and
/// Appendix C), exercised over randomized joined instances:
///   * Theorem 3.1:      I(F;Y) <= I(FK;Y) for every foreign feature F.
///   * Proposition 3.1:  every F in X_R is redundant — FK is a Markov
///                       blanket (F is a deterministic function of FK).
///   * Proposition 3.2:  IGR can nevertheless prefer F over FK.
///   * Proposition 3.3:  H_X = H_FK ⊇ H_{X_R}: any classifier over X_R is
///                       expressible as a function of FK alone.
///   * The log-sum inequality underlying Theorem 3.1's proof.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/encoded_dataset.h"
#include "ml/naive_bayes.h"
#include "sim/data_synthesis.h"
#include "stats/info_theory.h"

namespace hamlet {
namespace {

// A randomized KFK-joined instance: FK uniform or skewed, X_R features
// deterministic functions of FK (the FD), Y correlated with one X_R
// feature.
struct JoinedInstance {
  std::vector<uint32_t> fk;
  std::vector<std::vector<uint32_t>> xr;  // d_r foreign features.
  std::vector<uint32_t> y;
  uint32_t n_r;
  std::vector<uint32_t> xr_cards;

  JoinedInstance(uint64_t seed, uint32_t n, uint32_t n_r_in, uint32_t d_r)
      : n_r(n_r_in) {
    Rng rng(seed);
    // Fixed R: each feature maps rid -> code.
    std::vector<std::vector<uint32_t>> r_map(d_r);
    for (uint32_t j = 0; j < d_r; ++j) {
      uint32_t card = 2 + rng.Uniform(5);
      xr_cards.push_back(card);
      r_map[j].resize(n_r);
      for (uint32_t rid = 0; rid < n_r; ++rid) {
        r_map[j][rid] = rng.Uniform(card);
      }
    }
    xr.resize(d_r);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t rid = rng.Uniform(n_r);
      fk.push_back(rid);
      for (uint32_t j = 0; j < d_r; ++j) xr[j].push_back(r_map[j][rid]);
      // Y depends on X_R feature 0 with noise.
      uint32_t signal = r_map[0][rid] % 2;
      y.push_back(rng.Bernoulli(0.8) ? signal : 1 - signal);
    }
  }
};

class JoinedInstanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinedInstanceTest, Theorem31_FkMutualInfoDominates) {
  JoinedInstance inst(GetParam(), 3000, 10 + GetParam() % 40, 4);
  double i_fk = MutualInformation(inst.fk, inst.y, inst.n_r, 2);
  for (uint32_t j = 0; j < inst.xr.size(); ++j) {
    double i_f =
        MutualInformation(inst.xr[j], inst.y, inst.xr_cards[j], 2);
    EXPECT_LE(i_f, i_fk + 1e-9) << "foreign feature " << j;
  }
}

TEST_P(JoinedInstanceTest, Proposition31_ForeignFeaturesAreFunctionsOfFk) {
  // The Markov-blanket property reduces, under the FD, to: fixing FK
  // fixes every foreign feature. Verify across all row pairs per FK.
  JoinedInstance inst(GetParam(), 2000, 10 + GetParam() % 40, 4);
  for (uint32_t j = 0; j < inst.xr.size(); ++j) {
    std::vector<int64_t> seen(inst.n_r, -1);
    for (size_t i = 0; i < inst.fk.size(); ++i) {
      uint32_t rid = inst.fk[i];
      if (seen[rid] < 0) {
        seen[rid] = inst.xr[j][i];
      } else {
        ASSERT_EQ(static_cast<uint32_t>(seen[rid]), inst.xr[j][i]);
      }
    }
  }
}

TEST_P(JoinedInstanceTest, Proposition33_FkModelMimicsXrModel) {
  // H_{X_R} ⊆ H_FK: train NB on the X_R features, then verify its
  // predictions are constant per FK value (hence expressible as a
  // function of FK alone).
  JoinedInstance inst(GetParam(), 2000, 10 + GetParam() % 40, 3);
  std::vector<std::vector<uint32_t>> features = inst.xr;
  features.push_back(inst.fk);
  std::vector<FeatureMeta> metas;
  for (uint32_t j = 0; j < inst.xr.size(); ++j) {
    metas.push_back({"XR" + std::to_string(j), inst.xr_cards[j]});
  }
  metas.push_back({"FK", inst.n_r});
  EncodedDataset data(features, metas, inst.y, 2);

  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  NaiveBayes xr_model;
  std::vector<uint32_t> xr_features;
  for (uint32_t j = 0; j < inst.xr.size(); ++j) xr_features.push_back(j);
  ASSERT_TRUE(xr_model.Train(data, rows, xr_features).ok());

  std::vector<int64_t> pred_per_fk(inst.n_r, -1);
  for (uint32_t i = 0; i < data.num_rows(); ++i) {
    uint32_t pred = xr_model.PredictOne(data, i);
    uint32_t rid = inst.fk[i];
    if (pred_per_fk[rid] < 0) {
      pred_per_fk[rid] = pred;
    } else {
      ASSERT_EQ(static_cast<uint32_t>(pred_per_fk[rid]), pred)
          << "an X_R-only model must be a function of FK";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JoinedInstanceTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(PaperTheoremsTest, Proposition32_IgrCanPreferForeignFeature) {
  // Construct the paper's counterexample shape: FK has a huge domain and
  // maximal I(FK;Y), but its entropy dilutes IGR below a compact foreign
  // feature's.
  const uint32_t n = 1024, n_r = 256;
  std::vector<uint32_t> fk(n), f(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    fk[i] = i % n_r;
    f[i] = fk[i] % 2;  // The FD: F is a function of FK.
    y[i] = f[i];       // Y determined by the compact feature.
  }
  double igr_fk = InformationGainRatio(fk, y, n_r, 2);
  double igr_f = InformationGainRatio(f, y, 2, 2);
  double i_fk = MutualInformation(fk, y, n_r, 2);
  double i_f = MutualInformation(f, y, 2, 2);
  EXPECT_GE(i_fk, i_f - 1e-9);  // Theorem 3.1 still holds...
  EXPECT_GT(igr_f, igr_fk);     // ...but IGR flips the preference.
}

TEST(PaperTheoremsTest, LogSumInequality) {
  // sum a_i log(a_i/b_i) >= (sum a_i) log(sum a_i / sum b_i).
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 2 + rng.Uniform(8);
    double a_sum = 0, b_sum = 0, lhs = 0;
    for (int i = 0; i < k; ++i) {
      double a = rng.NextDouble() + 1e-6;
      double b = rng.NextDouble() + 1e-6;
      lhs += a * std::log(a / b);
      a_sum += a;
      b_sum += b;
    }
    double rhs = a_sum * std::log(a_sum / b_sum);
    EXPECT_GE(lhs, rhs - 1e-9);
  }
}

TEST(PaperTheoremsTest, FkModelShattersItsDomain) {
  // Section 3.2: using FK alone, the maximum VC dimension |D_FK| is
  // "matched by almost all popular classifiers". Demonstrate it for NB:
  // with m = |D_FK| distinct points (one per FK value), NB on FK realizes
  // every one of the 2^m labelings — the domain is shattered.
  const uint32_t m = 4;
  for (uint32_t labeling = 0; labeling < (1u << m); ++labeling) {
    std::vector<uint32_t> fk, y;
    // Several copies of each point keep counts away from ties.
    for (uint32_t rep = 0; rep < 3; ++rep) {
      for (uint32_t v = 0; v < m; ++v) {
        fk.push_back(v);
        y.push_back((labeling >> v) & 1);
      }
    }
    EncodedDataset data({fk}, {{"FK", m}}, y, 2);
    std::vector<uint32_t> rows(data.num_rows());
    for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
    NaiveBayes nb(0.01);  // Light smoothing: counts dominate.
    ASSERT_TRUE(nb.Train(data, rows, {0}).ok());
    for (uint32_t v = 0; v < m; ++v) {
      EXPECT_EQ(nb.PredictOne(data, v), (labeling >> v) & 1)
          << "labeling " << labeling << " point " << v;
    }
  }
}

TEST(PaperTheoremsTest, XrModelCannotShatterBeyondDistinctRows) {
  // The flip side of Proposition 3.3: if two FK values share the same
  // X_R tuple, no X_R-based model can label them differently — the
  // EmployerID-exclusion example of Section 3.2.
  std::vector<uint32_t> fk = {0, 1};  // Two employers...
  std::vector<uint32_t> xr = {1, 1};  // ...same Country/Revenue profile.
  std::vector<uint32_t> y = {0, 1};   // Only one of them churns.
  EncodedDataset data({fk, xr}, {{"FK", 2}, {"XR", 2}}, y, 2);
  NaiveBayes on_xr(0.01), on_fk(0.01);
  ASSERT_TRUE(on_xr.Train(data, {0, 1}, {1}).ok());
  ASSERT_TRUE(on_fk.Train(data, {0, 1}, {0}).ok());
  // The X_R model must collapse the two points to one prediction...
  EXPECT_EQ(on_xr.PredictOne(data, 0), on_xr.PredictOne(data, 1));
  // ...while the FK model separates them.
  EXPECT_EQ(on_fk.PredictOne(data, 0), 0u);
  EXPECT_EQ(on_fk.PredictOne(data, 1), 1u);
}

TEST(PaperTheoremsTest, Theorem31HoldsUnderFkSkew) {
  // The information-theoretic result needs no uniformity assumption.
  SimConfig c;
  c.scenario = TrueDistribution::kLoneXr;
  c.n_s = 4000;
  c.d_s = 1;
  c.d_r = 3;
  c.n_r = 30;
  c.fk_dist = FkDistribution::kZipf;
  c.zipf_skew = 1.5;
  Rng rng(9);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(c.n_s, rng);
  const auto& y = draw.data.labels();
  double i_fk = MutualInformation(draw.data.feature(gen.FkFeatureIndex()),
                                  y, c.n_r, 2);
  for (uint32_t j = 0; j < c.d_r; ++j) {
    uint32_t idx = c.d_s + 1 + j;
    double i_f = MutualInformation(draw.data.feature(idx), y, 2, 2);
    EXPECT_LE(i_f, i_fk + 1e-9);
  }
}

}  // namespace
}  // namespace hamlet
