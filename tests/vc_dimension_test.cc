#include "theory/vc_dimension.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(VcDimensionTest, EmptyFeatureSetHasBiasOnly) {
  EXPECT_EQ(LinearVcDimension(std::vector<uint32_t>{}), 1u);
}

TEST(VcDimensionTest, BinaryFeaturesAddOneEach) {
  EXPECT_EQ(LinearVcDimension({2, 2, 2}), 4u);
}

TEST(VcDimensionTest, MixedCardinalities) {
  // 1 + (4-1) + (2-1) + (10-1) = 14.
  EXPECT_EQ(LinearVcDimension({4, 2, 10}), 14u);
}

TEST(VcDimensionTest, ConstantFeatureAddsNothing) {
  EXPECT_EQ(LinearVcDimension({1}), 1u);
}

TEST(VcDimensionTest, FkAloneIsItsDomainSize) {
  EXPECT_EQ(ForeignKeyVcDimension(540), 540u);
}

TEST(VcDimensionTest, DatasetOverload) {
  EncodedDataset d({{0, 1}, {0, 2}}, {{"A", 2}, {"B", 5}}, {0, 1}, 2);
  EXPECT_EQ(LinearVcDimension(d, {0, 1}), 1u + 1u + 4u);
  EXPECT_EQ(LinearVcDimension(d, {1}), 5u);
  EXPECT_EQ(LinearVcDimension(d, {}), 1u);
}

TEST(VcDimensionTest, FkFeatureVcDimConsistency) {
  // Section 3.2: the VC dim of a linear model on a lone FK (one-hot) is
  // 1 + (|D_FK| - 1) = |D_FK| — consistent with ForeignKeyVcDimension.
  for (uint32_t card : {2u, 10u, 540u, 3182u}) {
    EXPECT_EQ(LinearVcDimension({card}), ForeignKeyVcDimension(card));
  }
}

}  // namespace
}  // namespace hamlet
