#include "core/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hamlet {
namespace {

std::vector<CalibrationPoint> MonotonePoints() {
  // Clean scatter: higher ROR <-> lower TR <-> higher delta error.
  return {
      {100.0, 0.5, 0.0000}, {50.0, 1.0, 0.0002}, {25.0, 2.0, 0.0008},
      {12.0, 3.0, 0.0050},  {6.0, 4.5, 0.0200},  {3.0, 6.0, 0.0800},
  };
}

TEST(CalibrationTest, FindsSafePrefixThresholds) {
  RuleThresholds th = CalibrateThresholds(MonotonePoints(), 0.001);
  // Safe points: the first three (delta <= 0.001).
  EXPECT_DOUBLE_EQ(th.rho, 2.0);
  EXPECT_DOUBLE_EQ(th.tau, 25.0);
}

TEST(CalibrationTest, LooserToleranceLoosensThresholds) {
  RuleThresholds strict = CalibrateThresholds(MonotonePoints(), 0.001);
  RuleThresholds loose = CalibrateThresholds(MonotonePoints(), 0.01);
  EXPECT_GT(loose.rho, strict.rho);
  EXPECT_LT(loose.tau, strict.tau);
  EXPECT_DOUBLE_EQ(loose.rho, 3.0);
  EXPECT_DOUBLE_EQ(loose.tau, 12.0);
}

TEST(CalibrationTest, NoSafePointsGivesDegenerateThresholds) {
  std::vector<CalibrationPoint> points = {{5.0, 1.0, 0.5},
                                          {50.0, 0.5, 0.4}};
  RuleThresholds th = CalibrateThresholds(points, 0.001);
  EXPECT_DOUBLE_EQ(th.rho, 0.0);           // Nothing avoidable by ROR.
  EXPECT_TRUE(std::isinf(th.tau));         // Nothing avoidable by TR.
}

TEST(CalibrationTest, AllSafeGivesExtremeThresholds) {
  std::vector<CalibrationPoint> points = {{5.0, 1.0, 0.0},
                                          {50.0, 6.0, 0.0}};
  RuleThresholds th = CalibrateThresholds(points, 0.001);
  EXPECT_DOUBLE_EQ(th.rho, 6.0);
  EXPECT_DOUBLE_EQ(th.tau, 5.0);
}

TEST(CalibrationTest, NonMonotoneScatterStopsAtFirstUnsafe) {
  // An unsafe point with a small ROR truncates the safe prefix even if
  // later points are safe again (conservatism).
  std::vector<CalibrationPoint> points = {
      {40.0, 1.0, 0.0},
      {30.0, 1.5, 0.01},  // Unsafe at tolerance 0.001.
      {20.0, 2.0, 0.0},
  };
  RuleThresholds th = CalibrateThresholds(points, 0.001);
  EXPECT_DOUBLE_EQ(th.rho, 1.0);
  EXPECT_DOUBLE_EQ(th.tau, 40.0);
}

TEST(CalibrationTest, DerivedThresholdsAuditClean) {
  auto points = MonotonePoints();
  RuleThresholds th = CalibrateThresholds(points, 0.001);
  CalibrationAudit audit = AuditThresholds(points, th, 0.001);
  EXPECT_EQ(audit.ror_unsafe, 0u);
  EXPECT_EQ(audit.tr_unsafe, 0u);
  EXPECT_EQ(audit.ror_avoided, 3u);
  EXPECT_EQ(audit.tr_avoided, 3u);
}

TEST(CalibrationTest, AuditCountsUnsafeAvoids) {
  auto points = MonotonePoints();
  RuleThresholds reckless{10.0, 1.0};  // Avoid everything.
  CalibrationAudit audit = AuditThresholds(points, reckless, 0.001);
  EXPECT_EQ(audit.ror_avoided, 6u);
  EXPECT_EQ(audit.ror_unsafe, 3u);
  EXPECT_EQ(audit.tr_avoided, 6u);
  EXPECT_EQ(audit.tr_unsafe, 3u);
}

TEST(CalibrationTest, TiedValuesStayOutIfAnyMemberUnsafe) {
  // Two points share TR = 12 / ROR = 3.0 but only one is safe; a
  // threshold admitting the value would admit both, so the prefix must
  // stop before the tie group.
  std::vector<CalibrationPoint> points = {
      {40.0, 1.0, 0.0},
      {12.0, 3.0, 0.0},
      {12.0, 3.0, 0.02},  // Unsafe twin.
      {6.0, 4.0, 0.05},
  };
  RuleThresholds th = CalibrateThresholds(points, 0.001);
  EXPECT_DOUBLE_EQ(th.rho, 1.0);
  EXPECT_DOUBLE_EQ(th.tau, 40.0);
  CalibrationAudit audit = AuditThresholds(points, th, 0.001);
  EXPECT_EQ(audit.ror_unsafe, 0u);
  EXPECT_EQ(audit.tr_unsafe, 0u);
}

TEST(CalibrationDeathTest, EmptyPointsAbort) {
  EXPECT_DEATH((void)CalibrateThresholds({}, 0.001), "point");
}

}  // namespace
}  // namespace hamlet
