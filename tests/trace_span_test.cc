#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "obs/report.h"

namespace hamlet {
namespace {

// --- A minimal JSON well-formedness checker for the exporter tests.
// Recursive descent over value / object / array / string / number /
// literal; rejects trailing garbage. Deliberately strict about the
// subset JsonWriter emits.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Unescaped.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string text_;
  size_t pos_ = 0;
};

TEST(TraceSpanTest, DisabledSpansAreInert) {
  ASSERT_FALSE(obs::Enabled());
  obs::Tracer::Global().Clear();
  {
    obs::TraceSpan span("test.disabled");
    span.AddAttr("k", static_cast<uint64_t>(1));
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_TRUE(obs::Tracer::Global().Collect().empty());
}

TEST(TraceSpanTest, NestedSpansFormATree) {
  obs::ScopedCollection collection(true);
  {
    obs::TraceSpan root("test.root");
    {
      obs::TraceSpan child("test.child");
      obs::TraceSpan grandchild("test.grandchild");
    }
    obs::TraceSpan sibling("test.child");  // Second span, same name.
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  ASSERT_EQ(trace.events.size(), 4u);
  // Collect() sorts by start time, so the root comes first.
  std::map<std::string, std::vector<const obs::TraceEvent*>> by_name;
  for (const auto& e : trace.events) by_name[e.name].push_back(&e);
  ASSERT_EQ(by_name["test.root"].size(), 1u);
  ASSERT_EQ(by_name["test.child"].size(), 2u);
  ASSERT_EQ(by_name["test.grandchild"].size(), 1u);
  const auto* root = by_name["test.root"][0];
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(trace.events[0].name, "test.root");
  for (const auto* child : by_name["test.child"]) {
    EXPECT_EQ(child->parent_id, root->id);
  }
  EXPECT_EQ(by_name["test.grandchild"][0]->parent_id,
            by_name["test.child"][0]->id);
  for (const auto& e : trace.events) EXPECT_GE(e.end_ns, e.start_ns);
}

TEST(TraceSpanTest, AttributesAreRecorded) {
  obs::ScopedCollection collection(true);
  {
    obs::TraceSpan span("test.attrs");
    span.AddAttr("count", static_cast<uint64_t>(42));
    span.AddAttr("mode", std::string("JoinOpt"));
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  ASSERT_EQ(trace.events.size(), 1u);
  ASSERT_EQ(trace.events[0].attrs.size(), 2u);
  EXPECT_EQ(trace.events[0].attrs[0].key, "count");
  EXPECT_TRUE(trace.events[0].attrs[0].is_number);
  EXPECT_EQ(trace.events[0].attrs[0].number, 42);
  EXPECT_EQ(trace.events[0].attrs[1].key, "mode");
  EXPECT_FALSE(trace.events[0].attrs[1].is_number);
  EXPECT_EQ(trace.events[0].attrs[1].text, "JoinOpt");
}

TEST(TraceSpanTest, PoolSpansRootWhenSubmitterHasNoSpan) {
  // Cross-thread propagation parents worker spans under the span active
  // on the *submitting* thread (tests/trace_propagation_test.cc). When
  // the submitter has no active span, worker spans are roots.
  obs::ScopedCollection collection(true);
  ThreadPool pool(4);
  pool.ParallelFor(8, 0, [](uint32_t i) {
    obs::TraceSpan span("test.worker");
    span.AddAttr("item", i);
  });
  obs::Trace trace = obs::Tracer::Global().Collect();
  ASSERT_EQ(trace.events.size(), 8u);
  for (const auto& e : trace.events) {
    EXPECT_EQ(e.name, "test.worker");
    EXPECT_EQ(e.parent_id, 0u);  // Nothing to inherit from the submitter.
  }
}

TEST(TraceSpanTest, ExplainTreeMergesSpansByNameUnderParent) {
  obs::ScopedCollection collection(true);
  {
    obs::TraceSpan root("test.root");
    for (int i = 0; i < 3; ++i) {
      obs::TraceSpan step("test.step");
      step.AddAttr("candidates", static_cast<uint64_t>(10));
    }
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  obs::TraceSummary summary = obs::SummarizeTrace(trace);
  ASSERT_EQ(summary.stages.size(), 2u);
  EXPECT_EQ(summary.stages[0].name, "test.root");
  EXPECT_EQ(summary.stages[0].depth, 0u);
  EXPECT_EQ(summary.stages[0].count, 1u);
  EXPECT_EQ(summary.stages[1].name, "test.step");
  EXPECT_EQ(summary.stages[1].depth, 1u);
  EXPECT_EQ(summary.stages[1].count, 3u);
  // Numeric attrs sum across merged spans: 3 steps x 10 candidates.
  ASSERT_EQ(summary.stages[1].numeric_attrs.size(), 1u);
  EXPECT_EQ(summary.stages[1].numeric_attrs[0].first, "candidates");
  EXPECT_EQ(summary.stages[1].numeric_attrs[0].second, 30);
  // Self time of the root excludes its children; totals stay positive.
  EXPECT_GE(summary.stages[0].total_seconds,
            summary.stages[1].total_seconds);
  EXPECT_GE(summary.stages[0].self_seconds, 0.0);
  EXPECT_GT(summary.total_seconds, 0.0);
  EXPECT_EQ(summary.StageSeconds("test.step"),
            summary.stages[1].total_seconds);
  EXPECT_EQ(summary.StageSeconds("missing"), 0.0);

  const std::string rendered = obs::RenderExplainTree(trace);
  EXPECT_NE(rendered.find("test.root"), std::string::npos);
  EXPECT_NE(rendered.find("  test.step"), std::string::npos);  // Indented.
  EXPECT_NE(rendered.find("candidates=30"), std::string::npos);
}

TEST(TraceSpanTest, ChromeTraceJsonIsWellFormed) {
  obs::ScopedCollection collection(true);
  {
    obs::TraceSpan root("test.root");
    root.AddAttr("label", std::string("quotes \" and \\ back\nslash"));
    obs::TraceSpan child("test.child");
    child.AddAttr("n", static_cast<uint64_t>(7));
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  std::ostringstream oss;
  obs::WriteChromeTraceJson(trace, oss);
  const std::string json = oss.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test.child\""), std::string::npos);
  // The tricky attribute string must round-trip escaped.
  EXPECT_NE(json.find("quotes \\\" and \\\\ back\\nslash"),
            std::string::npos);
}

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonWriter::Escape("a\001b"), "a\\u0001b");
}

TEST(JsonWriterTest, WritesNestedStructures) {
  std::ostringstream oss;
  {
    JsonWriter w(oss);
    w.BeginObject();
    w.Key("name");
    w.String("x");
    w.Key("vals");
    w.BeginArray();
    w.Int(-3);
    w.UInt(7);
    w.Double(1.5);
    w.Bool(true);
    w.Null();
    w.EndArray();
    w.EndObject();
  }
  EXPECT_EQ(oss.str(), "{\"name\":\"x\",\"vals\":[-3,7,1.5,true,null]}");
  JsonChecker checker(oss.str());
  EXPECT_TRUE(checker.Valid());
}

TEST(TraceSpanTest, ScopedCollectionRestoresDisabledState) {
  ASSERT_FALSE(obs::Enabled());
  {
    obs::ScopedCollection collection(true);
    EXPECT_TRUE(obs::Enabled());
    {
      // Nested windows restore the enabled state they found.
      obs::ScopedCollection inner(true);
      EXPECT_TRUE(obs::Enabled());
    }
    EXPECT_TRUE(obs::Enabled());
  }
  EXPECT_FALSE(obs::Enabled());
  {
    obs::ScopedCollection off(false);
    EXPECT_FALSE(obs::Enabled());
    EXPECT_FALSE(off.enabled());
  }
  EXPECT_FALSE(obs::Enabled());
}

}  // namespace
}  // namespace hamlet
