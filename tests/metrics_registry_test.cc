#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace hamlet {
namespace {

TEST(MetricsRegistryTest, DisabledCounterCountsNothing) {
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.disabled_counter");
  counter.Reset();
  ASSERT_FALSE(obs::Enabled());
  counter.Add(5);
  counter.Add();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(MetricsRegistryTest, EnabledCounterSumsAcrossShards) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.enabled_counter");
  counter.Add(3);
  counter.Add();
  EXPECT_EQ(counter.Total(), 4u);
  counter.Reset();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromPoolWorkersAreLossless) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  constexpr uint32_t kItems = 10000;
  ThreadPool pool(4);
  pool.ParallelFor(kItems, 0, [&](uint32_t) { counter.Add(); });
  EXPECT_EQ(counter.Total(), kItems);
}

TEST(MetricsRegistryTest, RegistryReturnsSameObjectForSameName) {
  obs::Counter& a = obs::MetricsRegistry::Global().GetCounter("test.dedup");
  obs::Counter& b = obs::MetricsRegistry::Global().GetCounter("test.dedup");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 =
      obs::MetricsRegistry::Global().GetHistogram("test.dedup_ns");
  obs::Histogram& h2 =
      obs::MetricsRegistry::Global().GetHistogram("test.dedup_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(HistogramTest, BucketEdges) {
  // Bucket b holds [2^b, 2^(b+1)); bucket 0 additionally holds 0 and 1.
  EXPECT_EQ(obs::Histogram::BucketFor(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(1), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(2), 1u);
  EXPECT_EQ(obs::Histogram::BucketFor(3), 1u);
  EXPECT_EQ(obs::Histogram::BucketFor(4), 2u);
  EXPECT_EQ(obs::Histogram::BucketFor(7), 2u);
  EXPECT_EQ(obs::Histogram::BucketFor(8), 3u);
  for (uint32_t k = 1; k < obs::Histogram::kBuckets; ++k) {
    EXPECT_EQ(obs::Histogram::BucketFor(uint64_t{1} << k), k) << "k=" << k;
    EXPECT_EQ(obs::Histogram::BucketFor((uint64_t{1} << (k + 1)) - 1), k)
        << "k=" << k;
  }
  // Everything past the last bucket's floor clamps into it.
  EXPECT_EQ(obs::Histogram::BucketFor(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketLowerBoundInvertsBucketFor) {
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0u);
  for (uint32_t b = 1; b < obs::Histogram::kBuckets; ++b) {
    const uint64_t lo = obs::Histogram::BucketLowerBound(b);
    EXPECT_EQ(lo, uint64_t{1} << b);
    EXPECT_EQ(obs::Histogram::BucketFor(lo), b);
    EXPECT_EQ(obs::Histogram::BucketFor(lo - 1), b - 1);
  }
}

TEST(HistogramTest, RecordSnapshotMeanAndPercentile) {
  obs::ScopedCollection collection(true);
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.latency_ns");
  // 10 observations in bucket 2 ([4,8)) and 90 in bucket 6 ([64,128)).
  for (int i = 0; i < 10; ++i) histogram.Record(4);
  for (int i = 0; i < 90; ++i) histogram.Record(100);
  obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum_nanos, 10u * 4 + 90u * 100);
  ASSERT_EQ(snap.buckets.size(), obs::Histogram::kBuckets);
  EXPECT_EQ(snap.buckets[2], 10u);
  EXPECT_EQ(snap.buckets[6], 90u);
  EXPECT_DOUBLE_EQ(snap.MeanNanos(), (10.0 * 4 + 90.0 * 100) / 100.0);
  // p5 falls inside the first bucket; p50 and p99 inside the second.
  EXPECT_EQ(snap.PercentileNanos(0.05), 4u);
  EXPECT_EQ(snap.PercentileNanos(0.50), 64u);
  EXPECT_EQ(snap.PercentileNanos(0.99), 64u);
}

TEST(HistogramTest, DisabledRecordIsANoOp) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.noop_ns");
  histogram.Reset();
  ASSERT_FALSE(obs::Enabled());
  histogram.Record(1000);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, SnapshotIncludesThreadPoolLifetimeStats) {
  obs::ScopedCollection collection(true);
  // Force at least one global-pool region so the counters are nonzero.
  // The explicit shard count matters: a default-width (0) region runs
  // serial on a single-core host and would never reach the pool.
  ParallelFor(64, 2, [](uint32_t) {});
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.CounterValue("threadpool.regions"), 1u);
  EXPECT_GE(snap.CounterValue("threadpool.tasks_run"),
            snap.CounterValue("threadpool.regions"));
  bool found_queue_wait = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "threadpool.queue_wait_ns") found_queue_wait = true;
  }
  EXPECT_TRUE(found_queue_wait);
  // Snapshots are sorted by name for deterministic rendering.
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_NE(snap.ToString().find("threadpool.tasks_run"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesRegisteredMetrics) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.reset_counter");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.reset_ns");
  counter.Add(7);
  histogram.Record(42);
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(counter.Total(), 0u);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ScopedCollectionResetsAndRestores) {
  ASSERT_FALSE(obs::Enabled());
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.window_counter");
  {
    obs::ScopedCollection collection(true);
    EXPECT_TRUE(obs::Enabled());
    EXPECT_TRUE(collection.enabled());
    counter.Add(2);
    EXPECT_EQ(counter.Total(), 2u);
  }
  EXPECT_FALSE(obs::Enabled());
  {
    // A second window starts from a clean registry.
    obs::ScopedCollection collection(true);
    EXPECT_EQ(counter.Total(), 0u);
  }
}

}  // namespace
}  // namespace hamlet
