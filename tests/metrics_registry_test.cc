#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace hamlet {
namespace {

TEST(MetricsRegistryTest, DisabledCounterCountsNothing) {
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.disabled_counter");
  counter.Reset();
  ASSERT_FALSE(obs::Enabled());
  counter.Add(5);
  counter.Add();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(MetricsRegistryTest, EnabledCounterSumsAcrossShards) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.enabled_counter");
  counter.Add(3);
  counter.Add();
  EXPECT_EQ(counter.Total(), 4u);
  counter.Reset();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromPoolWorkersAreLossless) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  constexpr uint32_t kItems = 10000;
  ThreadPool pool(4);
  pool.ParallelFor(kItems, 0, [&](uint32_t) { counter.Add(); });
  EXPECT_EQ(counter.Total(), kItems);
}

TEST(MetricsRegistryTest, RegistryReturnsSameObjectForSameName) {
  obs::Counter& a = obs::MetricsRegistry::Global().GetCounter("test.dedup");
  obs::Counter& b = obs::MetricsRegistry::Global().GetCounter("test.dedup");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 =
      obs::MetricsRegistry::Global().GetHistogram("test.dedup_ns");
  obs::Histogram& h2 =
      obs::MetricsRegistry::Global().GetHistogram("test.dedup_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(HistogramTest, BucketEdges) {
  // Log-linear layout (common/histogram_buckets.h): one exact bucket
  // per value below 32, then 32 linear sub-buckets per octave.
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(obs::Histogram::BucketFor(v), v) << "v=" << v;
  }
  // First sub-bucketed octave [32, 64): sub-bucket width 1.
  EXPECT_EQ(obs::Histogram::BucketFor(32), 32u);
  EXPECT_EQ(obs::Histogram::BucketFor(33), 33u);
  EXPECT_EQ(obs::Histogram::BucketFor(63), 63u);
  // Octave [64, 128): sub-bucket width 2, group starts at index 64.
  EXPECT_EQ(obs::Histogram::BucketFor(64), 64u);
  EXPECT_EQ(obs::Histogram::BucketFor(65), 64u);
  EXPECT_EQ(obs::Histogram::BucketFor(66), 65u);
  EXPECT_EQ(obs::Histogram::BucketFor(127), 95u);
  // Every octave start lands on a group boundary (index multiple of 32).
  for (uint32_t e = 5; e <= 47; ++e) {
    const uint64_t lo = uint64_t{1} << e;
    EXPECT_EQ(obs::Histogram::BucketFor(lo), (e - 5 + 1) * 32u)
        << "e=" << e;
    EXPECT_EQ(obs::Histogram::BucketFor(2 * lo - 1),
              (e - 5 + 1) * 32u + 31u)
        << "e=" << e;
  }
  // Everything past the last octave clamps into the final bucket.
  EXPECT_EQ(obs::Histogram::BucketFor(uint64_t{1} << 48),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketFor(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketBoundsInvertBucketFor) {
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0u);
  for (uint32_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    const uint64_t lo = obs::Histogram::BucketLowerBound(b);
    const uint64_t hi = obs::Histogram::BucketUpperBound(b);
    // The lower bound maps back to its own bucket; the value just below
    // it maps to the previous bucket; the upper bound starts the next.
    EXPECT_EQ(obs::Histogram::BucketFor(lo), b) << "b=" << b;
    if (b > 0) {
      EXPECT_EQ(obs::Histogram::BucketFor(lo - 1), b - 1) << "b=" << b;
    }
    if (b + 1 < obs::Histogram::kBuckets) {
      EXPECT_EQ(hi, obs::Histogram::BucketLowerBound(b + 1));
      EXPECT_EQ(obs::Histogram::BucketFor(hi), b + 1) << "b=" << b;
    } else {
      EXPECT_EQ(hi, UINT64_MAX);  // Final bucket is unbounded.
    }
  }
}

TEST(HistogramTest, BucketRelativeWidthIsBoundedBy1Over32) {
  // The property the percentile-accuracy contract rests on: above the
  // exact region, every bucket spans at most 1/32 of its lower bound.
  for (uint32_t b = 32; b + 1 < obs::Histogram::kBuckets; ++b) {
    const uint64_t lo = obs::Histogram::BucketLowerBound(b);
    const uint64_t width = obs::Histogram::BucketUpperBound(b) - lo;
    EXPECT_LE(width * 32, lo) << "b=" << b;
  }
}

TEST(HistogramTest, RecordSnapshotMeanAndPercentile) {
  obs::ScopedCollection collection(true);
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.latency_ns");
  // 10 observations of 4 ns (exact bucket 4) and 90 of 100 ns (octave
  // [64,128), sub-bucket width 2 -> bucket holds [100, 102)).
  for (int i = 0; i < 10; ++i) histogram.Record(4);
  for (int i = 0; i < 90; ++i) histogram.Record(100);
  obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum_nanos, 10u * 4 + 90u * 100);
  ASSERT_EQ(snap.buckets.size(), obs::Histogram::kBuckets);
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketFor(4)], 10u);
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketFor(100)], 90u);
  EXPECT_DOUBLE_EQ(snap.MeanNanos(), (10.0 * 4 + 90.0 * 100) / 100.0);
  // p5 lands in the exact 4-ns bucket; p50 and p99 in [100, 102), so
  // the interpolated estimate stays within that bucket.
  EXPECT_EQ(snap.PercentileNanos(0.05), 4u);
  EXPECT_GE(snap.PercentileNanos(0.50), 100u);
  EXPECT_LT(snap.PercentileNanos(0.50), 102u);
  EXPECT_GE(snap.PercentileNanos(0.99), 100u);
  EXPECT_LT(snap.PercentileNanos(0.99), 102u);
}

TEST(HistogramTest, PercentileEdgeCasesArePinned) {
  // Empty histogram: no observation to rank -> 0 at every p.
  obs::HistogramSnapshot empty;
  empty.buckets.assign(obs::Histogram::kBuckets, 0);
  EXPECT_EQ(empty.PercentileNanos(0.0), 0u);
  EXPECT_EQ(empty.PercentileNanos(0.5), 0u);
  EXPECT_EQ(empty.PercentileNanos(1.0), 0u);

  // Observations past 2^47 ns clamp into the final (unbounded) bucket;
  // a percentile landing there reports the bucket's lower bound rather
  // than interpolating into values that were never observed.
  obs::ScopedCollection collection(true);
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.overflow_ns");
  histogram.Record(UINT64_MAX);
  histogram.Record(UINT64_MAX - 1);
  obs::HistogramSnapshot snap = histogram.Snapshot();
  const uint64_t last_floor =
      obs::Histogram::BucketLowerBound(obs::Histogram::kBuckets - 1);
  EXPECT_EQ(snap.PercentileNanos(0.5), last_floor);
  EXPECT_EQ(snap.PercentileNanos(1.0), last_floor);
}

TEST(HistogramTest, LogLinearP99TracksExactOrderStatistic) {
  // Calibration contract (ISSUE acceptance): the p50/p99 read from the
  // log-linear buckets must land within 10% of the exact order
  // statistic of the recorded values. A deterministic LCG produces a
  // long-tailed sample spanning several octaves, like serve.score_ns.
  obs::ScopedCollection collection(true);
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.calibration_ns");
  std::vector<uint64_t> values;
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Mix of scales: ~1us base with a x16 tail on every 16th draw.
    uint64_t v = 200 + (x >> 40);  // [200, ~17M) ns.
    if (i % 16 == 0) v *= 16;
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  obs::HistogramSnapshot snap = histogram.Snapshot();
  for (const double p : {0.50, 0.90, 0.99}) {
    const uint64_t exact =
        values[static_cast<size_t>(p * (values.size() - 1))];
    const uint64_t approx = snap.PercentileNanos(p);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LT(rel, 0.10) << "p=" << p << " exact=" << exact
                         << " approx=" << approx;
  }
}

TEST(MetricsRegistryTest, WriterStormSnapshotsSeeMonotonicCounts) {
  // Writer storm: pool workers hammer a counter and a histogram while
  // the main thread repeatedly snapshots. Every snapshot must be
  // internally consistent (histogram bucket sum == histogram count) and
  // counts must grow monotonically across snapshots — torn or partially
  // visible shard reads would violate both. Runs under TSAN via
  // scripts/check_determinism.sh's obs pass.
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.storm_counter");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.storm_ns");
  constexpr uint32_t kItems = 200000;
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    uint64_t last_count = 0;
    uint64_t last_hist = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t c = counter.Total();
      const obs::HistogramSnapshot h = histogram.Snapshot();
      uint64_t bucket_sum = 0;
      for (const uint64_t b : h.buckets) bucket_sum += b;
      // Mid-storm snapshots may lag the writers, but the counts a
      // reader sees must never run backwards or overshoot the total
      // work submitted.
      EXPECT_GE(c, last_count);
      EXPECT_GE(h.count, last_hist);
      EXPECT_LE(bucket_sum, kItems);
      last_count = c;
      last_hist = h.count;
    }
  });
  pool.ParallelFor(kItems, 0, [&](uint32_t i) {
    counter.Add();
    histogram.Record(i);
  });
  done.store(true, std::memory_order_release);
  snapshotter.join();
  // Quiesced: everything is visible and self-consistent.
  EXPECT_EQ(counter.Total(), kItems);
  const obs::HistogramSnapshot final_snap = histogram.Snapshot();
  EXPECT_EQ(final_snap.count, kItems);
  uint64_t bucket_sum = 0;
  for (const uint64_t b : final_snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kItems);
}

TEST(HistogramTest, DisabledRecordIsANoOp) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.noop_ns");
  histogram.Reset();
  ASSERT_FALSE(obs::Enabled());
  histogram.Record(1000);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, SnapshotIncludesThreadPoolLifetimeStats) {
  obs::ScopedCollection collection(true);
  // Force at least one global-pool region so the counters are nonzero.
  // The explicit shard count matters: a default-width (0) region runs
  // serial on a single-core host and would never reach the pool.
  ParallelFor(64, 2, [](uint32_t) {});
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.CounterValue("threadpool.regions"), 1u);
  EXPECT_GE(snap.CounterValue("threadpool.tasks_run"),
            snap.CounterValue("threadpool.regions"));
  bool found_queue_wait = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "threadpool.queue_wait_ns") found_queue_wait = true;
  }
  EXPECT_TRUE(found_queue_wait);
  // Snapshots are sorted by name for deterministic rendering.
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_NE(snap.ToString().find("threadpool.tasks_run"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesRegisteredMetrics) {
  obs::ScopedCollection collection(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.reset_counter");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.reset_ns");
  counter.Add(7);
  histogram.Record(42);
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(counter.Total(), 0u);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ScopedCollectionResetsAndRestores) {
  ASSERT_FALSE(obs::Enabled());
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.window_counter");
  {
    obs::ScopedCollection collection(true);
    EXPECT_TRUE(obs::Enabled());
    EXPECT_TRUE(collection.enabled());
    counter.Add(2);
    EXPECT_EQ(counter.Total(), 2u);
  }
  EXPECT_FALSE(obs::Enabled());
  {
    // A second window starts from a clean registry.
    obs::ScopedCollection collection(true);
    EXPECT_EQ(counter.Total(), 0u);
  }
}

}  // namespace
}  // namespace hamlet
