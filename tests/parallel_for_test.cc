#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sim/monte_carlo.h"

namespace hamlet {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    ParallelFor(257, threads, [&](uint32_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
    }
  }
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  auto run = [](uint32_t threads) {
    std::vector<uint64_t> out(100);
    ParallelFor(100, threads, [&](uint32_t i) {
      out[i] = static_cast<uint64_t>(i) * i + 7;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), run(0));
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<int> out(3, 0);
  ParallelFor(3, 16, [&](uint32_t i) { out[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelForTest, MonteCarloIdenticalAtAnyThreadCount) {
  // The promise the Monte Carlo driver makes: bit-for-bit identical
  // results regardless of threads.
  SimConfig c;
  c.n_s = 300;
  c.n_r = 30;
  MonteCarloOptions serial;
  serial.num_training_sets = 20;
  serial.num_repeats = 4;
  serial.num_threads = 1;
  MonteCarloOptions parallel = serial;
  parallel.num_threads = 4;
  auto a = *RunMonteCarlo(c, serial);
  auto b = *RunMonteCarlo(c, parallel);
  EXPECT_EQ(a.no_join.avg_test_error, b.no_join.avg_test_error);
  EXPECT_EQ(a.use_all.avg_net_variance, b.use_all.avg_net_variance);
  EXPECT_EQ(a.no_fk.avg_bias, b.no_fk.avg_bias);
}

}  // namespace
}  // namespace hamlet
