#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "sim/monte_carlo.h"

namespace hamlet {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    ParallelFor(257, threads, [&](uint32_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
    }
  }
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  auto run = [](uint32_t threads) {
    std::vector<uint64_t> out(100);
    ParallelFor(100, threads, [&](uint32_t i) {
      out[i] = static_cast<uint64_t>(i) * i + 7;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), run(0));
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<int> out(3, 0);
  ParallelFor(3, 16, [&](uint32_t i) { out[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelForTest, MonteCarloIdenticalAtAnyThreadCount) {
  // The promise the Monte Carlo driver makes: bit-for-bit identical
  // results regardless of threads — serial, even, odd, and hardware.
  SimConfig c;
  c.n_s = 300;
  c.n_r = 30;
  MonteCarloOptions serial;
  serial.num_training_sets = 20;
  serial.num_repeats = 4;
  serial.num_threads = 1;
  auto a = *RunMonteCarlo(c, serial);
  for (uint32_t threads : {2u, 4u, 7u, 0u}) {
    MonteCarloOptions parallel = serial;
    parallel.num_threads = threads;
    auto b = *RunMonteCarlo(c, parallel);
    EXPECT_EQ(a.no_join.avg_test_error, b.no_join.avg_test_error)
        << "threads " << threads;
    EXPECT_EQ(a.use_all.avg_net_variance, b.use_all.avg_net_variance)
        << "threads " << threads;
    EXPECT_EQ(a.no_fk.avg_bias, b.no_fk.avg_bias) << "threads " << threads;
  }
}

TEST(ParallelForTest, WorkerExceptionRethrownOnCaller) {
  // An exception thrown by fn(i) on a worker thread must reach the
  // caller instead of std::terminate-ing the process.
  EXPECT_THROW(ParallelFor(100, 4,
                           [](uint32_t i) {
                             if (i == 57) {
                               throw std::runtime_error("item 57 failed");
                             }
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, FirstShardExceptionWins) {
  // With every item throwing, the deterministic choice is the lowest
  // shard's exception — shard 0 starts at index 0.
  try {
    ParallelFor(64, 8, [](uint32_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ParallelForTest, SerialFallbackAlsoPropagates) {
  EXPECT_THROW(ParallelFor(10, 1,
                           [](uint32_t i) {
                             if (i == 3) throw std::runtime_error("serial");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallsCompleteWithoutDeadlock) {
  // ParallelFor inside ParallelFor degrades to serial on the shared pool.
  std::vector<uint64_t> out(16, 0);
  ParallelFor(16, 4, [&](uint32_t i) {
    uint64_t sum = 0;
    ParallelFor(100, 4, [&](uint32_t j) { sum += j; });  // Serial inside.
    out[i] = sum;
  });
  for (uint64_t v : out) EXPECT_EQ(v, 4950u);
}

}  // namespace
}  // namespace hamlet
