#include "theory/generalization_bound.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hamlet {
namespace {

TEST(VcBoundTermTest, MatchesClosedForm) {
  // sqrt(v log(2en/v)) at v = 10, n = 1000.
  double expected = std::sqrt(10.0 * std::log(2.0 * M_E * 1000.0 / 10.0));
  EXPECT_NEAR(VcBoundTerm(10, 1000), expected, 1e-12);
}

TEST(VcBoundTermTest, IncreasesWithVcDimensionInTheoremRegime) {
  // For n > v the term grows with v — the heart of the ROR's sign.
  double prev = 0.0;
  for (uint64_t v : {2ull, 10ull, 50ull, 200ull, 900ull}) {
    double term = VcBoundTerm(v, 1000);
    EXPECT_GT(term, prev);
    prev = term;
  }
}

TEST(VcBoundTermTest, ClampsNegativeLogs) {
  // v >> n would make the log negative; the term clamps to 0, not NaN.
  double term = VcBoundTerm(1000000, 10);
  EXPECT_GE(term, 0.0);
  EXPECT_FALSE(std::isnan(term));
}

TEST(VcGeneralizationBoundTest, MatchesTheorem32Formula) {
  const uint64_t v = 40, n = 1000;
  const double delta = 0.1;
  double expected = (4.0 + std::sqrt(40.0 * std::log(2.0 * M_E * 1000.0 /
                                                     40.0))) /
                    (0.1 * std::sqrt(2000.0));
  EXPECT_NEAR(VcGeneralizationBound(v, n, delta), expected, 1e-12);
}

TEST(VcGeneralizationBoundTest, ShrinksWithMoreData) {
  double prev = VcGeneralizationBound(40, 100, 0.1);
  for (uint64_t n : {1000ull, 10000ull, 100000ull}) {
    double bound = VcGeneralizationBound(40, n, 0.1);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

TEST(VcGeneralizationBoundTest, TightensWithLargerDelta) {
  // The bound is proportional to 1/delta.
  double strict = VcGeneralizationBound(40, 1000, 0.05);
  double loose = VcGeneralizationBound(40, 1000, 0.1);
  EXPECT_NEAR(strict, 2.0 * loose, 1e-9);
}

TEST(GeneralizationBoundDeathTest, BadInputsAbort) {
  EXPECT_DEATH((void)VcBoundTerm(0, 10), "positive");
  EXPECT_DEATH((void)VcGeneralizationBound(10, 100, 0.0), "delta");
  EXPECT_DEATH((void)VcGeneralizationBound(10, 100, 1.0), "delta");
}

}  // namespace
}  // namespace hamlet
