#include "fs/filters.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "ml/naive_bayes.h"
#include "stats/info_theory.h"

namespace hamlet {
namespace {

struct FilterFixture {
  EncodedDataset data;
  HoldoutSplit split;

  explicit FilterFixture(uint64_t seed, uint32_t n = 1600) {
    Rng rng(seed);
    std::vector<uint32_t> strong(n), weak(n), noise(n), y(n);
    for (uint32_t i = 0; i < n; ++i) {
      strong[i] = rng.Uniform(2);
      weak[i] = rng.Uniform(2);
      noise[i] = rng.Uniform(4);
      uint32_t base = rng.Bernoulli(0.9) ? strong[i] : 1 - strong[i];
      y[i] = rng.Bernoulli(0.7) ? base : weak[i];
    }
    data = EncodedDataset({strong, weak, noise},
                          {{"Strong", 2}, {"Weak", 2}, {"Noise", 4}}, y,
                          2);
    Rng split_rng(seed + 1);
    split = MakeHoldoutSplit(n, split_rng);
  }
};

TEST(ScoreFilterTest, MiScoresOrderByInformativeness) {
  FilterFixture f(1);
  ScoreFilter filter(FilterScore::kMutualInformation);
  auto scores = filter.ScoreFeatures(f.data, f.split.train,
                                     f.data.AllFeatureIndices());
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], scores[1]);  // Strong > weak.
  EXPECT_GT(scores[1], scores[2]);  // Weak > noise.
}

TEST(ScoreFilterTest, ScoresMatchDirectComputation) {
  FilterFixture f(2);
  ScoreFilter filter(FilterScore::kMutualInformation);
  auto scores =
      filter.ScoreFeatures(f.data, f.split.train, {0});
  std::vector<uint32_t> fcodes, ycodes;
  for (uint32_t r : f.split.train) {
    fcodes.push_back(f.data.feature(0)[r]);
    ycodes.push_back(f.data.labels()[r]);
  }
  EXPECT_NEAR(scores[0], MutualInformation(fcodes, ycodes, 2, 2), 1e-12);
}

TEST(ScoreFilterTest, SelectsInformativeSubset) {
  FilterFixture f(3);
  ScoreFilter filter(FilterScore::kMutualInformation);
  auto result = filter.Select(f.data, f.split, MakeNaiveBayesFactory(),
                              ErrorMetric::kZeroOne,
                              f.data.AllFeatureIndices());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->selected.empty());
  EXPECT_EQ(result->selected[0], 0u);  // Strong ranks first.
}

TEST(ScoreFilterTest, TunesKOnValidation) {
  FilterFixture f(4);
  ScoreFilter filter(FilterScore::kMutualInformation);
  auto result = *filter.Select(f.data, f.split, MakeNaiveBayesFactory(),
                               ErrorMetric::kZeroOne,
                               f.data.AllFeatureIndices());
  // One model per k = 1..3.
  EXPECT_EQ(result.models_trained, 3u);
  EXPECT_LE(result.selected.size(), 3u);
}

TEST(ScoreFilterTest, IgrVariantRuns) {
  FilterFixture f(5);
  ScoreFilter filter(FilterScore::kInformationGainRatio);
  auto result = *filter.Select(f.data, f.split, MakeNaiveBayesFactory(),
                               ErrorMetric::kZeroOne,
                               f.data.AllFeatureIndices());
  EXPECT_FALSE(result.selected.empty());
  EXPECT_LT(result.validation_error, 0.35);
}

TEST(ScoreFilterTest, IgrPenalizesHighCardinalityKeys) {
  // A key-like feature (unique per row) has max MI but diluted IGR: the
  // IGR filter must rank a compact predictor first, the MI filter the key.
  Rng rng(6);
  const uint32_t n = 800;
  std::vector<uint32_t> key(n), compact(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    key[i] = i;
    compact[i] = rng.Uniform(2);
    y[i] = rng.Bernoulli(0.95) ? compact[i] : 1 - compact[i];
  }
  EncodedDataset d({key, compact}, {{"Key", n}, {"Compact", 2}}, y, 2);
  std::vector<uint32_t> rows(n);
  for (uint32_t i = 0; i < n; ++i) rows[i] = i;

  ScoreFilter mi(FilterScore::kMutualInformation);
  ScoreFilter igr(FilterScore::kInformationGainRatio);
  auto mi_scores = mi.ScoreFeatures(d, rows, {0, 1});
  auto igr_scores = igr.ScoreFeatures(d, rows, {0, 1});
  EXPECT_GT(mi_scores[0], mi_scores[1]);    // MI prefers the key.
  EXPECT_GT(igr_scores[1], igr_scores[0]);  // IGR prefers compact.
}

TEST(ScoreFilterTest, EmptyCandidates) {
  FilterFixture f(7);
  ScoreFilter filter(FilterScore::kMutualInformation);
  auto result = *filter.Select(f.data, f.split, MakeNaiveBayesFactory(),
                               ErrorMetric::kZeroOne, {});
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.models_trained, 1u);
}

TEST(ScoreFilterTest, Names) {
  EXPECT_EQ(ScoreFilter(FilterScore::kMutualInformation).name(),
            "mi_filter");
  EXPECT_EQ(ScoreFilter(FilterScore::kInformationGainRatio).name(),
            "igr_filter");
}

}  // namespace
}  // namespace hamlet
