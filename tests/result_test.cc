#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace hamlet {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::IOError("io"); };
  auto outer = [&]() -> Status {
    HAMLET_ASSIGN_OR_RETURN(int v, fails());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto succeeds = []() -> Result<int> { return 5; };
  int seen = 0;
  auto outer = [&]() -> Status {
    HAMLET_ASSIGN_OR_RETURN(int v, succeeds());
    seen = v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_EQ(seen, 5);
}

TEST(ResultTest, AssignOrReturnWorksTwiceInOneScope) {
  auto make = [](int v) -> Result<int> { return v; };
  auto outer = [&]() -> Result<int> {
    HAMLET_ASSIGN_OR_RETURN(int a, make(2));
    HAMLET_ASSIGN_OR_RETURN(int b, make(3));
    return a * b;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 6);
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::Internal("gone");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "ValueOrDie");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r = Status::OK(); (void)r; }, "OK status");
}

}  // namespace
}  // namespace hamlet
