#include "common/string_util.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, PreservesEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoSeparator) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, EmptyInput) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\r\n"), "hi");
}

TEST(TrimWhitespaceTest, NoWhitespaceUnchanged) {
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
}

TEST(TrimWhitespaceTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(TrimWhitespaceTest, InteriorWhitespaceKept) {
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinStringsTest, SingleItem) {
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(JoinStringsTest, Empty) {
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StringFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StringFormatTest, EmptyFormat) {
  EXPECT_EQ(StringFormat("%s", ""), "");
}

TEST(StringFormatTest, LongOutput) {
  std::string long_arg(500, 'y');
  std::string out = StringFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.14", &v));
  EXPECT_DOUBLE_EQ(v, 3.14);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble(" 7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}

}  // namespace
}  // namespace hamlet
