#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/naive_bayes.h"
#include "stats/metrics.h"

namespace hamlet {
namespace {

std::vector<uint32_t> AllRows(const EncodedDataset& d) {
  std::vector<uint32_t> rows(d.num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

EncodedDataset NoisyCopyDataset(uint64_t seed, uint32_t n) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(3);
    g[i] = rng.Uniform(5);
    y[i] = rng.Bernoulli(0.9) ? f[i] : (f[i] + 1) % 3;
  }
  return EncodedDataset({f, g}, {{"F", 3}, {"G", 5}}, y, 3);
}

TEST(DecisionTreeTest, LearnsSimpleConcept) {
  EncodedDataset d = NoisyCopyDataset(1, 1200);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_EQ(tree.num_classes(), 3u);
  EXPECT_EQ(tree.trained_features(), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(tree.trained_cardinality(0), 3u);
  EXPECT_EQ(tree.trained_cardinality(1), 5u);
  uint32_t correct = 0;
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    correct += tree.PredictOne(d, r) == d.feature(0)[r];
  }
  EXPECT_GT(correct, d.num_rows() * 95 / 100);
}

TEST(DecisionTreeTest, CapturesXorThatNaiveBayesCannot) {
  // Y = F XOR G: no single split helps marginally, but the greedy search
  // still picks one (finite-sample imbalance gives a positive gain) and
  // the depth-2 children then split pure — the capacity gap the
  // capacity-aware advisor re-test is about.
  Rng rng(2);
  const uint32_t n = 4000;
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(2);
    y[i] = f[i] ^ g[i];
  }
  EncodedDataset d({f, g}, {{"F", 2}, {"G", 2}}, y, 2);
  std::vector<uint32_t> rows = AllRows(d);

  NaiveBayes nb;
  ASSERT_TRUE(nb.Train(d, rows, {0, 1}).ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(d, rows, {0, 1}).ok());

  auto truth = d.labels();
  EXPECT_GT(ZeroOneError(truth, nb.Predict(d, rows)), 0.4);
  EXPECT_LT(ZeroOneError(truth, tree.Predict(d, rows)), 0.05);
}

TEST(DecisionTreeTest, BitIdenticalAcrossThreadCounts) {
  EncodedDataset d = NoisyCopyDataset(3, 900);
  const std::vector<uint32_t> rows = AllRows(d);
  DecisionTreeOptions ref_options;
  ref_options.num_threads = 1;
  DecisionTree ref(ref_options);
  ASSERT_TRUE(ref.Train(d, rows, {0, 1}).ok());
  const DecisionTreeParams ref_params = ref.ExportParams();
  for (uint32_t threads : {2u, 8u, 0u}) {
    DecisionTreeOptions options;
    options.num_threads = threads;
    DecisionTree tree(options);
    ASSERT_TRUE(tree.Train(d, rows, {0, 1}).ok());
    const DecisionTreeParams p = tree.ExportParams();
    EXPECT_EQ(p.split_slot, ref_params.split_slot) << threads;
    EXPECT_EQ(p.split_code, ref_params.split_code) << threads;
    EXPECT_EQ(p.left, ref_params.left) << threads;
    EXPECT_EQ(p.right, ref_params.right) << threads;
    EXPECT_EQ(p.scores, ref_params.scores) << threads;
  }
}

TEST(DecisionTreeTest, DepthZeroTreeIsThePriorModel) {
  EncodedDataset d = NoisyCopyDataset(4, 300);
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Train(d, AllRows(d), {0, 1}).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  // Every row lands in the root leaf: the majority class everywhere.
  uint32_t majority = 0;
  std::vector<uint32_t> counts(3, 0);
  for (uint32_t y : d.labels()) ++counts[y];
  for (uint32_t c = 1; c < 3; ++c) {
    if (counts[c] > counts[majority]) majority = c;
  }
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(tree.PredictOne(d, r), majority);
  }
}

TEST(DecisionTreeTest, RefitBudgetCapsDepthWhileActive) {
  EncodedDataset d = NoisyCopyDataset(5, 1500);
  const std::vector<uint32_t> rows = AllRows(d);
  DecisionTreeOptions options;
  options.max_depth = 6;
  options.candidate_max_depth = 0;

  DecisionTree full(options);
  ASSERT_TRUE(full.Train(d, rows, {0, 1}).ok());
  ASSERT_GT(full.num_nodes(), 1u);

  EXPECT_FALSE(ScopedTreeRefitBudget::Active());
  {
    ScopedTreeRefitBudget budget;
    EXPECT_TRUE(ScopedTreeRefitBudget::Active());
    DecisionTree capped(options);
    ASSERT_TRUE(capped.Train(d, rows, {0, 1}).ok());
    EXPECT_EQ(capped.num_nodes(), 1u);
    {
      // Nestable, and a disabled scope does not release the budget.
      ScopedTreeRefitBudget inner;
      ScopedTreeRefitBudget disabled(false);
    }
    EXPECT_TRUE(ScopedTreeRefitBudget::Active());
  }
  EXPECT_FALSE(ScopedTreeRefitBudget::Active());

  // Outside the scope the same options grow the full tree again.
  DecisionTree after(options);
  ASSERT_TRUE(after.Train(d, rows, {0, 1}).ok());
  EXPECT_EQ(after.num_nodes(), full.num_nodes());
}

TEST(DecisionTreeTest, LogScoresIntoMatchesPredictOne) {
  EncodedDataset d = NoisyCopyDataset(6, 600);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(d, AllRows(d), {0, 1}).ok());
  std::vector<double> scores;
  for (uint32_t r = 0; r < d.num_rows(); ++r) {
    tree.LogScoresInto(d, r, &scores);
    ASSERT_EQ(scores.size(), 3u);
    uint32_t best = 0;
    for (uint32_t c = 1; c < 3; ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    EXPECT_EQ(best, tree.PredictOne(d, r)) << "row " << r;
    for (double s : scores) EXPECT_LT(s, 0.0);  // Smoothed log-probs.
  }
}

TEST(DecisionTreeTest, ExportImportRoundTripIsBitExact) {
  EncodedDataset d = NoisyCopyDataset(7, 800);
  const std::vector<uint32_t> rows = AllRows(d);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(d, rows, {0, 1}).ok());
  auto copy = DecisionTree::FromParams(tree.ExportParams());
  ASSERT_TRUE(copy.ok()) << copy.status();
  const DecisionTreeParams a = tree.ExportParams();
  const DecisionTreeParams b = copy->ExportParams();
  EXPECT_EQ(b.alpha, a.alpha);
  EXPECT_EQ(b.features, a.features);
  EXPECT_EQ(b.cardinalities, a.cardinalities);
  EXPECT_EQ(b.split_slot, a.split_slot);
  EXPECT_EQ(b.split_code, a.split_code);
  EXPECT_EQ(b.scores, a.scores);
  EXPECT_EQ(copy->Predict(d, rows), tree.Predict(d, rows));
}

TEST(DecisionTreeTest, FromParamsRejectsInconsistencies) {
  EncodedDataset d = NoisyCopyDataset(8, 500);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(d, AllRows(d), {0, 1}).ok());
  const DecisionTreeParams good = tree.ExportParams();
  ASSERT_GT(good.split_slot.size(), 1u);

  {
    DecisionTreeParams p = good;
    p.alpha = 0.0;
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    p.left.pop_back();  // Inconsistent node arrays.
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    p.scores.pop_back();  // scores != nodes * classes.
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    p.split_slot[0] = 99;  // Split slot out of range.
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    p.split_code[0] = 1000;  // Outside the slot's domain.
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    p.left[0] = 0;  // Backward edge: a cycle in pre-order storage.
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
  {
    DecisionTreeParams p = good;
    // Find a leaf and give it a child: leaves must have none.
    for (size_t i = 0; i < p.split_slot.size(); ++i) {
      if (p.split_slot[i] < 0) {
        p.left[i] = static_cast<int32_t>(p.split_slot.size()) - 1;
        break;
      }
    }
    EXPECT_FALSE(DecisionTree::FromParams(std::move(p)).ok());
  }
}

TEST(DecisionTreeTest, TrainRejectsBadIndices) {
  EncodedDataset d = NoisyCopyDataset(9, 100);
  DecisionTree tree;
  EXPECT_FALSE(tree.Train(d, AllRows(d), {0, 7}).ok());  // Bad feature.
  EXPECT_FALSE(tree.Train(d, {0, 1, 5000}, {0}).ok());   // Bad row.
}

}  // namespace
}  // namespace hamlet
