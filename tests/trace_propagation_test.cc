#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analytics/pipeline.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "datasets/registry.h"
#include "obs/report.h"

namespace hamlet {
namespace {

// Collected events by name, for asserting on the parent links.
std::vector<obs::TraceEvent> EventsNamed(const obs::Trace& trace,
                                         const std::string& name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& e : trace.events) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

TEST(TracePropagationTest, ParallelForSpansParentUnderSubmittingSpan) {
  // The ISSUE acceptance case: spans opened inside ParallelFor bodies
  // running on pool workers must parent under the span that issued the
  // region, at num_threads >= 4.
  obs::ScopedCollection collection(true);
  ThreadPool pool(4);
  {
    obs::TraceSpan region("test.region");
    pool.ParallelFor(32, 2, [](uint32_t i) {
      obs::TraceSpan shard("test.shard");
      shard.AddAttr("item", i);
    });
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  const auto regions = EventsNamed(trace, "test.region");
  const auto shards = EventsNamed(trace, "test.shard");
  ASSERT_EQ(regions.size(), 1u);
  ASSERT_EQ(shards.size(), 32u);
  // Work actually fanned out to more than one worker; propagation must
  // hold regardless of which thread ran each shard.
  std::set<uint32_t> workers;
  for (const auto& s : shards) {
    workers.insert(s.worker_id);
    EXPECT_EQ(s.parent_id, regions[0].id);
  }
  EXPECT_GT(workers.size(), 1u);
}

TEST(TracePropagationTest, CurrentSpanIdPropagatesIntoPoolTasks) {
  obs::ScopedCollection collection(true);
  ThreadPool pool(4);
  uint64_t submitter_span = 0;
  std::atomic<uint32_t> mismatches{0};
  {
    obs::TraceSpan region("test.region");
    submitter_span = obs::CurrentSpanId();
    ASSERT_NE(submitter_span, 0u);
    pool.ParallelFor(16, 2, [&](uint32_t) {
      // Inside a task with no span of its own, the current id IS the
      // submitter's innermost span — the propagated context.
      if (obs::CurrentSpanId() != submitter_span) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
    // Propagation must not disturb the submitting thread's own context.
    EXPECT_EQ(obs::CurrentSpanId(), submitter_span);
  }
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(obs::CurrentSpanId(), 0u);
}

TEST(TracePropagationTest, NestedSpansInsideTasksChainToTheirOwnParent) {
  // A span opened inside a task becomes the context for further spans
  // in that task: outer (parented to the submitter) -> inner (parented
  // to outer), never inner -> submitter directly.
  obs::ScopedCollection collection(true);
  ThreadPool pool(4);
  {
    obs::TraceSpan region("test.region");
    pool.ParallelFor(8, 2, [](uint32_t) {
      obs::TraceSpan outer("test.outer");
      obs::TraceSpan inner("test.inner");
    });
  }
  obs::Trace trace = obs::Tracer::Global().Collect();
  const auto regions = EventsNamed(trace, "test.region");
  ASSERT_EQ(regions.size(), 1u);
  std::map<uint64_t, uint64_t> outer_ids;  // id -> parent
  for (const auto& e : EventsNamed(trace, "test.outer")) {
    EXPECT_EQ(e.parent_id, regions[0].id);
    outer_ids[e.id] = e.parent_id;
  }
  const auto inners = EventsNamed(trace, "test.inner");
  ASSERT_EQ(inners.size(), 8u);
  for (const auto& e : inners) {
    EXPECT_TRUE(outer_ids.count(e.parent_id))
        << "inner span skipped its task-local parent";
  }
}

TEST(TracePropagationTest, WorkersRestoreContextBetweenRegions) {
  // A worker that ran region A's tasks must not leak A's context into
  // region B's tasks: each region's shard spans parent under their own
  // region span only.
  obs::ScopedCollection collection(true);
  ThreadPool pool(4);
  {
    obs::TraceSpan a("test.region_a");
    pool.ParallelFor(16, 2, [](uint32_t) { obs::TraceSpan s("test.shard_a"); });
  }
  {
    obs::TraceSpan b("test.region_b");
    pool.ParallelFor(16, 2, [](uint32_t) { obs::TraceSpan s("test.shard_b"); });
  }
  // And with no region open at all, tasks see no stale context.
  pool.ParallelFor(16, 2, [](uint32_t) { obs::TraceSpan s("test.shard_none"); });

  obs::Trace trace = obs::Tracer::Global().Collect();
  const auto a = EventsNamed(trace, "test.region_a");
  const auto b = EventsNamed(trace, "test.region_b");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  for (const auto& e : EventsNamed(trace, "test.shard_a")) {
    EXPECT_EQ(e.parent_id, a[0].id);
  }
  for (const auto& e : EventsNamed(trace, "test.shard_b")) {
    EXPECT_EQ(e.parent_id, b[0].id);
  }
  for (const auto& e : EventsNamed(trace, "test.shard_none")) {
    EXPECT_EQ(e.parent_id, 0u);
  }
}

TEST(TracePropagationTest, TracedPipelineRunHasNoOrphanedPoolSpans) {
  // End to end: in a traced pipeline run, every span recorded from a
  // pool worker must hang off the stage that submitted it — parent ids
  // always resolve to a collected event, and no pool-worker span is a
  // root (before propagation, every shard-level span opened on a worker
  // rooted at its thread and the explain tree lost the hierarchy).
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config;
  config.method = FsMethod::kMiFilter;
  config.metric = ErrorMetric::kRmse;
  config.seed = 7;
  config.trace = true;
  auto report = RunPipeline(ds, config);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->trace.empty());

  std::set<uint64_t> ids;
  for (const auto& e : report->trace.events) ids.insert(e.id);
  for (const auto& e : report->trace.events) {
    if (e.parent_id != 0) {
      EXPECT_TRUE(ids.count(e.parent_id))
          << e.name << " points at an uncollected parent";
    }
    if (e.worker_id != 0) {
      EXPECT_NE(e.parent_id, 0u)
          << e.name << " ran on worker " << e.worker_id
          << " but is an orphaned root";
    }
  }
}

}  // namespace
}  // namespace hamlet
