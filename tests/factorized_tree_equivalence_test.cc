/// Factorized-vs-materialized equivalence for the tree subsystem (ctest
/// label `factorized`). The contract under test is the determinism half
/// of ml/decision_tree.h and ml/gbt.h: training a histogram CART tree or
/// a gradient-boosted ensemble over the normalized (S, R) view must
/// produce *bit*-identical models — every split, every stored double —
/// to training on the materialized join, at any thread count, because
/// split histograms are integer counts (tree) or pinned-order float
/// accumulations (GBT) and the factorized path differs only in how
/// candidate columns are gathered. Selections, runner reports, and the
/// pipeline's avoid-materialization switch must then agree end to end.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/pipeline.h"
#include "common/rng.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "datasets/registry.h"
#include "fs/greedy_search.h"
#include "fs/runner.h"
#include "ml/decision_tree.h"
#include "ml/factorized.h"
#include "ml/gbt.h"
#include "ml/suff_stats.h"
#include "relational/catalog.h"

namespace hamlet {
namespace {

const uint32_t kThreadCounts[] = {1u, 2u, 8u};

struct DatasetCase {
  const char* name;
  double scale;
};
// The same three schema shapes the NB equivalence suite covers.
const DatasetCase kDatasetCases[] = {
    {"Walmart", 0.02}, {"Expedia", 0.004}, {"Yelp", 0.02}};

std::vector<std::string> AllFkColumns(const NormalizedDataset& dataset) {
  std::vector<std::string> fks;
  for (const auto& fk : dataset.foreign_keys()) fks.push_back(fk.fk_column);
  return fks;
}

/// Both views of one dataset plus the (identical) holdout split.
struct TwinCase {
  std::string name;
  NormalizedDataset dataset;
  std::unique_ptr<EncodedDataset> mat;
  FactorizedDataset fac;
  HoldoutSplit split;
  ErrorMetric metric;
};

TwinCase MakeTwinCase(const DatasetCase& c, uint64_t seed) {
  TwinCase out;
  out.name = c.name;
  out.dataset = *MakeDataset(c.name, c.scale, seed);
  const std::vector<std::string> fks = AllFkColumns(out.dataset);
  Table table = *out.dataset.JoinSubset(fks);
  out.mat =
      std::make_unique<EncodedDataset>(*EncodedDataset::FromTableAuto(table));
  out.fac = *FactorizedDataset::Make(out.dataset, fks);
  Rng rng(seed + 1);
  out.split = MakeHoldoutSplit(out.mat->num_rows(), rng);
  out.metric = *MetricForDataset(c.name);
  return out;
}

void ExpectTreeParamsBitIdentical(const DecisionTreeParams& a,
                                  const DecisionTreeParams& b,
                                  const std::string& context) {
  EXPECT_EQ(a.alpha, b.alpha) << context;
  EXPECT_EQ(a.num_classes, b.num_classes) << context;
  EXPECT_EQ(a.features, b.features) << context;
  EXPECT_EQ(a.cardinalities, b.cardinalities) << context;
  EXPECT_EQ(a.split_slot, b.split_slot) << context;
  EXPECT_EQ(a.split_code, b.split_code) << context;
  EXPECT_EQ(a.left, b.left) << context;
  EXPECT_EQ(a.right, b.right) << context;
  // operator== on vector<double> is exact FP equality: bit identity
  // modulo -0.0/NaN, neither of which a log-probability table contains.
  EXPECT_EQ(a.scores, b.scores) << context;
}

void ExpectGbtParamsBitIdentical(const GbtParams& a, const GbtParams& b,
                                 const std::string& context) {
  EXPECT_EQ(a.learning_rate, b.learning_rate) << context;
  EXPECT_EQ(a.lambda, b.lambda) << context;
  EXPECT_EQ(a.num_classes, b.num_classes) << context;
  EXPECT_EQ(a.features, b.features) << context;
  EXPECT_EQ(a.cardinalities, b.cardinalities) << context;
  EXPECT_EQ(a.base_scores, b.base_scores) << context;
  ASSERT_EQ(a.trees.size(), b.trees.size()) << context;
  for (size_t m = 0; m < a.trees.size(); ++m) {
    const std::string tc = context + " tree " + std::to_string(m);
    EXPECT_EQ(a.trees[m].split_slot, b.trees[m].split_slot) << tc;
    EXPECT_EQ(a.trees[m].split_code, b.trees[m].split_code) << tc;
    EXPECT_EQ(a.trees[m].left, b.trees[m].left) << tc;
    EXPECT_EQ(a.trees[m].right, b.trees[m].right) << tc;
    EXPECT_EQ(a.trees[m].value, b.trees[m].value) << tc;
  }
}

// --- Training: bit-identical models across views and thread counts. -------

TEST(FactorizedTreeTest, TrainBitIdenticalAcrossViewsAndThreads) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 41);
    const std::vector<uint32_t> features = t.mat->AllFeatureIndices();

    DecisionTreeOptions ref_options;
    ref_options.num_threads = 1;
    DecisionTree ref(ref_options);
    SuffStatsCache::Global().Clear();
    ASSERT_TRUE(ref.Train(*t.mat, t.split.train, features).ok());
    const DecisionTreeParams ref_params = ref.ExportParams();
    ASSERT_GT(ref.num_nodes(), 1u) << t.name << ": degenerate stump";
    const std::vector<uint32_t> ref_pred = ref.Predict(*t.mat, t.split.test);

    for (uint32_t threads : kThreadCounts) {
      SCOPED_TRACE(t.name + " threads " + std::to_string(threads));
      DecisionTreeOptions options;
      options.num_threads = threads;

      DecisionTree mat_tree(options);
      SuffStatsCache::Global().Clear();
      ASSERT_TRUE(mat_tree.Train(*t.mat, t.split.train, features).ok());
      ExpectTreeParamsBitIdentical(mat_tree.ExportParams(), ref_params,
                                   "materialized");

      DecisionTree fac_tree(options);
      SuffStatsCache::Global().Clear();
      ASSERT_TRUE(
          fac_tree.TrainFactorized(t.fac, t.split.train, features).ok());
      ExpectTreeParamsBitIdentical(fac_tree.ExportParams(), ref_params,
                                   "factorized");

      std::vector<uint32_t> fac_pred;
      ASSERT_TRUE(
          fac_tree.PredictFactorized(t.fac, t.split.test, &fac_pred).ok());
      EXPECT_EQ(fac_pred, ref_pred);
    }
  }
}

TEST(FactorizedGbtTest, TrainBitIdenticalAcrossViewsAndThreads) {
  for (const DatasetCase& c : kDatasetCases) {
    TwinCase t = MakeTwinCase(c, 43);
    const std::vector<uint32_t> features = t.mat->AllFeatureIndices();

    GbtOptions ref_options;
    ref_options.num_rounds = 5;  // Enough rounds to exercise boosting.
    ref_options.num_threads = 1;
    Gbt ref(ref_options);
    ASSERT_TRUE(ref.Train(*t.mat, t.split.train, features).ok());
    const GbtParams ref_params = ref.ExportParams();
    ASSERT_EQ(ref.num_trees(), 5u * ref.num_classes());
    const std::vector<uint32_t> ref_pred = ref.Predict(*t.mat, t.split.test);

    for (uint32_t threads : kThreadCounts) {
      SCOPED_TRACE(t.name + " threads " + std::to_string(threads));
      GbtOptions options = ref_options;
      options.num_threads = threads;

      Gbt mat_gbt(options);
      ASSERT_TRUE(mat_gbt.Train(*t.mat, t.split.train, features).ok());
      ExpectGbtParamsBitIdentical(mat_gbt.ExportParams(), ref_params,
                                  "materialized");

      Gbt fac_gbt(options);
      ASSERT_TRUE(
          fac_gbt.TrainFactorized(t.fac, t.split.train, features).ok());
      ExpectGbtParamsBitIdentical(fac_gbt.ExportParams(), ref_params,
                                  "factorized");

      std::vector<uint32_t> fac_pred;
      ASSERT_TRUE(
          fac_gbt.PredictFactorized(t.fac, t.split.test, &fac_pred).ok());
      EXPECT_EQ(fac_pred, ref_pred);
    }
  }
}

// --- The cached-SuffStats root seed changes nothing but the cost. ---------

TEST(FactorizedTreeTest, WarmSuffStatsCacheDoesNotChangeBits) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 45);
  const std::vector<uint32_t> features = t.mat->AllFeatureIndices();
  DecisionTreeOptions options;
  options.num_threads = 2;

  // Cold: Train counts the root histograms from the gathered codes.
  SuffStatsCache::Global().Clear();
  DecisionTree cold(options);
  ASSERT_TRUE(cold.Train(*t.mat, t.split.train, features).ok());

  // Warm: the root histograms come from the cached (materialized or
  // factorized) statistics via Peek — integer counts, so bit-identical.
  SuffStatsCache::Global().Clear();
  ASSERT_NE(SuffStatsCache::Global().GetOrBuild(*t.mat, t.split.train, 1),
            nullptr);
  DecisionTree warm_mat(options);
  ASSERT_TRUE(warm_mat.Train(*t.mat, t.split.train, features).ok());
  ExpectTreeParamsBitIdentical(warm_mat.ExportParams(), cold.ExportParams(),
                               "warm materialized cache");

  SuffStatsCache::Global().Clear();
  ASSERT_NE(GetOrBuildFactorizedSuffStats(t.fac, t.split.train, 1), nullptr);
  DecisionTree warm_fac(options);
  ASSERT_TRUE(warm_fac.TrainFactorized(t.fac, t.split.train, features).ok());
  ExpectTreeParamsBitIdentical(warm_fac.ExportParams(), cold.ExportParams(),
                               "warm factorized cache");
}

// --- Selections: the tree scan paths agree with the materialized scan. ----

TEST(FactorizedTreeSelectionTest, ForwardAndBackwardMatchMaterialized) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 47);
  const ClassifierFactory factory = MakeDecisionTreeFactory();
  const std::vector<uint32_t> candidates = t.mat->AllFeatureIndices();

  std::vector<std::unique_ptr<FeatureSelector>> selectors;
  selectors.push_back(std::make_unique<ForwardSelection>());
  selectors.push_back(std::make_unique<BackwardSelection>());
  for (auto& selector : selectors) {
    for (uint32_t threads : {1u, 2u}) {
      SCOPED_TRACE(selector->name() + " threads " + std::to_string(threads));
      selector->set_num_threads(threads);
      SuffStatsCache::Global().Clear();
      auto mat =
          selector->Select(*t.mat, t.split, factory, t.metric, candidates);
      ASSERT_TRUE(mat.ok()) << mat.status();
      SuffStatsCache::Global().Clear();
      auto fac = selector->SelectFactorized(t.fac, t.split, factory, t.metric,
                                            candidates);
      ASSERT_TRUE(fac.ok()) << fac.status();
      EXPECT_EQ(fac->selected, mat->selected);
      EXPECT_EQ(fac->validation_error, mat->validation_error);
      EXPECT_EQ(fac->models_trained, mat->models_trained);
    }
  }
}

TEST(FactorizedGbtSelectionTest, ForwardSelectionMatchesMaterialized) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 49);
  const ClassifierFactory factory = MakeGbtFactory();
  const std::vector<uint32_t> candidates = t.mat->AllFeatureIndices();
  ForwardSelection forward;
  for (uint32_t threads : {1u, 2u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    forward.set_num_threads(threads);
    SuffStatsCache::Global().Clear();
    auto mat = forward.Select(*t.mat, t.split, factory, t.metric, candidates);
    ASSERT_TRUE(mat.ok()) << mat.status();
    SuffStatsCache::Global().Clear();
    auto fac =
        forward.SelectFactorized(t.fac, t.split, factory, t.metric, candidates);
    ASSERT_TRUE(fac.ok()) << fac.status();
    EXPECT_EQ(fac->selected, mat->selected);
    EXPECT_EQ(fac->validation_error, mat->validation_error);
    EXPECT_EQ(fac->models_trained, mat->models_trained);
  }
}

// --- Runner: final fit and holdout error agree. ---------------------------

TEST(FactorizedTreeRunnerTest, ReportBitIdenticalToMaterialized) {
  TwinCase t = MakeTwinCase(kDatasetCases[0], 51);
  const ClassifierFactory factory = MakeDecisionTreeFactory();
  const std::vector<uint32_t> candidates = t.mat->AllFeatureIndices();
  ForwardSelection forward;
  forward.set_num_threads(2);

  SuffStatsCache::Global().Clear();
  auto mat = RunFeatureSelection(forward, *t.mat, t.split, factory, t.metric,
                                 candidates);
  ASSERT_TRUE(mat.ok()) << mat.status();
  SuffStatsCache::Global().Clear();
  auto fac = RunFeatureSelectionFactorized(forward, t.fac, t.split, factory,
                                           t.metric, candidates);
  ASSERT_TRUE(fac.ok()) << fac.status();

  EXPECT_EQ(fac->selection.selected, mat->selection.selected);
  EXPECT_EQ(fac->selection.validation_error, mat->selection.validation_error);
  EXPECT_EQ(fac->selected_names, mat->selected_names);
  EXPECT_EQ(fac->holdout_test_error, mat->holdout_test_error);

  // The final fits themselves: retrain both views on the selected subset
  // and require bit identity (the runner's fits ran outside the refit
  // budget, so these full-depth twins are what it reported on).
  DecisionTreeOptions options;
  options.num_threads = 2;
  DecisionTree from_mat(options), from_fac(options);
  SuffStatsCache::Global().Clear();
  ASSERT_TRUE(
      from_mat.Train(*t.mat, t.split.train, mat->selection.selected).ok());
  ASSERT_TRUE(
      from_fac.TrainFactorized(t.fac, t.split.train, fac->selection.selected)
          .ok());
  ExpectTreeParamsBitIdentical(from_fac.ExportParams(), from_mat.ExportParams(),
                               "final fit");
}

// --- The pipeline switch, for both tree classifiers. ----------------------

TEST(FactorizedTreePipelineTest, DecisionTreeAvoidMaterializationMatches) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.02, 53);
  PipelineConfig config;
  config.method = FsMethod::kForwardSelection;
  config.classifier = ClassifierKind::kDecisionTree;
  config.metric = *MetricForDataset("Walmart");
  config.seed = 53;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = false;
  auto mat = RunPipeline(dataset, config);
  ASSERT_TRUE(mat.ok()) << mat.status();
  SuffStatsCache::Global().Clear();
  config.avoid_materialization = true;
  auto fac = RunPipeline(dataset, config);
  ASSERT_TRUE(fac.ok()) << fac.status();

  EXPECT_TRUE(fac->factorized);
  EXPECT_FALSE(mat->factorized);
  EXPECT_EQ(fac->tables_joined, 0u);
  EXPECT_EQ(fac->tables_factorized, mat->tables_joined);
  EXPECT_EQ(fac->selection.selected_names, mat->selection.selected_names);
  EXPECT_EQ(fac->selection.selection.validation_error,
            mat->selection.selection.validation_error);
  EXPECT_EQ(fac->selection.holdout_test_error,
            mat->selection.holdout_test_error);
}

TEST(FactorizedGbtPipelineTest, GbtAvoidMaterializationMatches) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.01, 55);
  PipelineConfig config;
  config.method = FsMethod::kForwardSelection;
  config.classifier = ClassifierKind::kGradientBoostedTrees;
  config.metric = *MetricForDataset("Walmart");
  config.seed = 55;

  SuffStatsCache::Global().Clear();
  config.avoid_materialization = false;
  auto mat = RunPipeline(dataset, config);
  ASSERT_TRUE(mat.ok()) << mat.status();
  SuffStatsCache::Global().Clear();
  config.avoid_materialization = true;
  auto fac = RunPipeline(dataset, config);
  ASSERT_TRUE(fac.ok()) << fac.status();

  EXPECT_TRUE(fac->factorized);
  EXPECT_EQ(fac->tables_joined, 0u);
  EXPECT_EQ(fac->selection.selected_names, mat->selection.selected_names);
  EXPECT_EQ(fac->selection.holdout_test_error,
            mat->selection.holdout_test_error);
}

// --- force_scan_eval does not break trees (their scan IS factorized). -----

TEST(FactorizedTreePipelineTest, ForceScanStillTrainsFactorized) {
  NormalizedDataset dataset = *MakeDataset("Walmart", 0.01, 57);
  PipelineConfig config;
  config.classifier = ClassifierKind::kDecisionTree;
  config.metric = *MetricForDataset("Walmart");
  config.avoid_materialization = true;
  // force_scan_eval only forces NB off its sufficient-statistics fast
  // path; the tree candidate evaluation is already a factorized scan.
  config.force_scan_eval = true;
  auto report = RunPipeline(dataset, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->factorized);
  EXPECT_EQ(report->tables_joined, 0u);
}

}  // namespace
}  // namespace hamlet
