#include "relational/catalog.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

// Two attribute tables, mirroring the Walmart shape at toy size.
struct StarFixture {
  Table sales, stores, indicators;

  StarFixture() {
    {
      Schema schema({ColumnSpec::PrimaryKey("StoreID"),
                     ColumnSpec::Feature("Type")});
      TableBuilder b("Stores", schema);
      EXPECT_TRUE(b.AppendRowLabels({"s0", "A"}).ok());
      EXPECT_TRUE(b.AppendRowLabels({"s1", "B"}).ok());
      stores = b.Build();
    }
    {
      Schema schema({ColumnSpec::PrimaryKey("IndicatorID"),
                     ColumnSpec::Feature("IsHoliday"),
                     ColumnSpec::Feature("Temp")});
      TableBuilder b("Indicators", schema);
      EXPECT_TRUE(b.AppendRowLabels({"i0", "yes", "hot"}).ok());
      EXPECT_TRUE(b.AppendRowLabels({"i1", "no", "cold"}).ok());
      EXPECT_TRUE(b.AppendRowLabels({"i2", "no", "hot"}).ok());
      indicators = b.Build();
    }
    {
      Schema schema({ColumnSpec::PrimaryKey("SalesID"),
                     ColumnSpec::Target("SalesLevel"),
                     ColumnSpec::Feature("Dept"),
                     ColumnSpec::ForeignKey("IndicatorID", "Indicators"),
                     ColumnSpec::ForeignKey("StoreID", "Stores")});
      TableBuilder b("Sales", schema,
                     {nullptr, nullptr, nullptr,
                      indicators.column(0).domain(),
                      stores.column(0).domain()});
      EXPECT_TRUE(b.AppendRowLabels({"x0", "hi", "d1", "i0", "s0"}).ok());
      EXPECT_TRUE(b.AppendRowLabels({"x1", "lo", "d2", "i1", "s1"}).ok());
      EXPECT_TRUE(b.AppendRowLabels({"x2", "hi", "d1", "i2", "s0"}).ok());
      sales = b.Build();
    }
  }
};

TEST(CatalogTest, MakeValidates) {
  StarFixture f;
  auto ds = NormalizedDataset::Make("Toy", f.sales,
                                    {f.stores, f.indicators});
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->name(), "Toy");
  EXPECT_EQ(ds->entity().num_rows(), 3u);
  EXPECT_EQ(ds->attribute_tables().size(), 2u);
}

TEST(CatalogTest, ForeignKeysInSchemaOrder) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  auto fks = ds.foreign_keys();
  ASSERT_EQ(fks.size(), 2u);
  EXPECT_EQ(fks[0].fk_column, "IndicatorID");
  EXPECT_EQ(fks[0].table_name, "Indicators");
  EXPECT_EQ(fks[0].num_rows, 3u);
  EXPECT_EQ(fks[0].num_features, 2u);
  EXPECT_EQ(fks[1].fk_column, "StoreID");
  EXPECT_EQ(fks[1].num_rows, 2u);
  EXPECT_EQ(fks[1].num_features, 1u);
}

TEST(CatalogTest, AttributeTableLookup) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  auto r = ds.AttributeTableFor("StoreID");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name(), "Stores");
  EXPECT_FALSE(ds.AttributeTableFor("Nope").ok());
}

TEST(CatalogTest, TargetName) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  EXPECT_EQ(*ds.TargetName(), "SalesLevel");
}

TEST(CatalogTest, JoinAllBringsEveryForeignFeature) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  auto t = ds.JoinAll();
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_TRUE(t->schema().Contains("Type"));
  EXPECT_TRUE(t->schema().Contains("IsHoliday"));
  EXPECT_TRUE(t->schema().Contains("Temp"));
}

TEST(CatalogTest, JoinSubsetAvoidsOthers) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  auto t = ds.JoinSubset({"StoreID"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->schema().Contains("Type"));
  EXPECT_FALSE(t->schema().Contains("Temp"));
  // The avoided FK survives as a feature (FK-as-representative).
  EXPECT_TRUE(t->schema().Contains("IndicatorID"));
}

TEST(CatalogTest, EmptySubsetIsNoJoins) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  auto t = ds.JoinSubset({});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), f.sales.num_columns());
}

TEST(CatalogTest, UnknownFkInSubsetIsNotFound) {
  StarFixture f;
  auto ds = *NormalizedDataset::Make("Toy", f.sales,
                                     {f.stores, f.indicators});
  EXPECT_EQ(ds.JoinSubset({"Nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, MissingAttributeTableRejected) {
  StarFixture f;
  auto ds = NormalizedDataset::Make("Toy", f.sales, {f.stores});
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, UnreferencedAttributeTableRejected) {
  StarFixture f;
  Schema extra_schema({ColumnSpec::PrimaryKey("XID"),
                       ColumnSpec::Feature("F")});
  TableBuilder b("Orphan", extra_schema);
  ASSERT_TRUE(b.AppendRowLabels({"x", "v"}).ok());
  auto ds = NormalizedDataset::Make(
      "Toy", f.sales, {f.stores, f.indicators, b.Build()});
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, DuplicateRidInAttributeTableRejected) {
  StarFixture f;
  Table dup_stores = f.stores.GatherRows({0, 0});
  auto ds = NormalizedDataset::Make("Toy", f.sales,
                                    {dup_stores, f.indicators});
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, MissingTargetRejected) {
  StarFixture f;
  // An entity table without a target column.
  Schema schema({ColumnSpec::PrimaryKey("ID"),
                 ColumnSpec::ForeignKey("StoreID", "Stores")});
  TableBuilder b("S", schema, {nullptr, f.stores.column(0).domain()});
  ASSERT_TRUE(b.AppendRowLabels({"a", "s0"}).ok());
  auto ds = NormalizedDataset::Make("Toy", b.Build(), {f.stores});
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hamlet
