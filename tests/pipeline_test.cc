#include "analytics/pipeline.h"

#include <gtest/gtest.h>

#include "datasets/registry.h"

namespace hamlet {
namespace {

PipelineConfig BaseConfig() {
  PipelineConfig config;
  config.method = FsMethod::kMiFilter;  // Cheapest of the four.
  config.metric = ErrorMetric::kRmse;
  config.seed = 7;
  return config;
}

TEST(PipelineTest, ClassifierKindNames) {
  EXPECT_STREQ(ClassifierKindToString(ClassifierKind::kNaiveBayes),
               "naive_bayes");
  EXPECT_STREQ(
      ClassifierKindToString(ClassifierKind::kLogisticRegressionL1),
      "logreg_l1");
  EXPECT_STREQ(
      ClassifierKindToString(ClassifierKind::kLogisticRegressionL2),
      "logreg_l2");
  EXPECT_STREQ(ClassifierKindToString(ClassifierKind::kTan), "tan");
}

TEST(PipelineTest, FactoriesProduceWorkingClassifiers) {
  EncodedDataset d({{0, 1, 0, 1}}, {{"F", 2}}, {0, 1, 0, 1}, 2);
  for (ClassifierKind kind :
       {ClassifierKind::kNaiveBayes, ClassifierKind::kLogisticRegressionL1,
        ClassifierKind::kLogisticRegressionL2, ClassifierKind::kTan}) {
    auto model = MakeClassifierFactory(kind)();
    ASSERT_NE(model, nullptr) << ClassifierKindToString(kind);
    EXPECT_TRUE(model->Train(d, {0, 1, 2, 3}, {0}).ok());
    EXPECT_EQ(model->PredictOne(d, 0), 0u);
    EXPECT_EQ(model->PredictOne(d, 1), 1u);
  }
}

TEST(PipelineTest, JoinOptAppliesAdvisorPlan) {
  auto ds = *MakeDataset("MovieLens1M", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto report = RunPipeline(ds, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->avoidance_applied);
  EXPECT_EQ(report->plan.fks_avoided.size(), 2u);
  EXPECT_EQ(report->tables_joined, 0u);  // Both joins avoided.
  EXPECT_EQ(report->features_in, 2u);    // Just the two FKs.
}

TEST(PipelineTest, JoinAllBaselineJoinsEverything) {
  auto ds = *MakeDataset("MovieLens1M", 0.02, 3);
  PipelineConfig config = BaseConfig();
  config.enable_join_avoidance = false;
  auto report = *RunPipeline(ds, config);
  EXPECT_FALSE(report.avoidance_applied);
  EXPECT_EQ(report.tables_joined, 2u);
  EXPECT_EQ(report.features_in, 27u);  // 21 + 4 foreign + 2 FKs.
  // The plan is still computed and reports the missed optimization.
  EXPECT_EQ(report.plan.fks_avoided.size(), 2u);
}

TEST(PipelineTest, OptimizerPreservesAccuracyAndCutsWork) {
  auto ds = *MakeDataset("MovieLens1M", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto opt = *RunPipeline(ds, config);
  config.enable_join_avoidance = false;
  auto all = *RunPipeline(ds, config);
  EXPECT_LE(opt.selection.holdout_test_error,
            all.selection.holdout_test_error + 0.05);
  EXPECT_LT(opt.selection.selection.models_trained,
            all.selection.selection.models_trained);
}

TEST(PipelineTest, OpenDomainTablesAlwaysJoined) {
  auto ds = *MakeDataset("Expedia", 0.02, 3);
  PipelineConfig config = BaseConfig();
  config.metric = ErrorMetric::kZeroOne;
  auto report = *RunPipeline(ds, config);
  // Hotels avoided; Searches (open-domain SearchID) must be joined.
  EXPECT_EQ(report.tables_joined, 1u);
  EXPECT_EQ(report.plan.fks_avoided,
            (std::vector<std::string>{"HotelID"}));
}

TEST(PipelineTest, SummaryMentionsTheEssentials) {
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto report = *RunPipeline(ds, config);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("JoinOpt"), std::string::npos);
  EXPECT_NE(summary.find("avoided"), std::string::npos);
  EXPECT_NE(summary.find("holdout error"), std::string::npos);
}

TEST(PipelineTest, WorksWithEveryClassifierKind) {
  auto ds = *MakeDataset("Walmart", 0.01, 3);
  for (ClassifierKind kind :
       {ClassifierKind::kNaiveBayes, ClassifierKind::kLogisticRegressionL1,
        ClassifierKind::kTan}) {
    PipelineConfig config = BaseConfig();
    config.classifier = kind;
    auto report = RunPipeline(ds, config);
    ASSERT_TRUE(report.ok()) << ClassifierKindToString(kind);
    EXPECT_GT(report->selection.selection.models_trained, 0u);
  }
}

TEST(PipelineTest, UntracedRunStillCarriesATimingSummary) {
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto report = *RunPipeline(ds, config);
  EXPECT_FALSE(config.trace);
  EXPECT_TRUE(report.trace.empty());
  EXPECT_EQ(report.ExplainTree(), "");
  // The coarse rollup is always there, with the same stage names a
  // traced run would produce.
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.trace_summary.total_seconds,
                   report.total_seconds);
  EXPECT_DOUBLE_EQ(report.trace_summary.StageSeconds("pipeline.join"),
                   report.join_seconds);
  EXPECT_DOUBLE_EQ(report.trace_summary.StageSeconds("fs.search"),
                   report.selection.runtime_seconds);
  EXPECT_GT(report.selection.total_seconds,
            report.selection.runtime_seconds);
  EXPECT_GE(report.selection.fit_seconds, 0.0);
}

TEST(PipelineTest, TracedRunProducesACoveringSpanTree) {
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config = BaseConfig();
  config.trace = true;
  auto report = *RunPipeline(ds, config);
  ASSERT_FALSE(report.trace.empty());
  ASSERT_FALSE(report.trace_summary.stages.empty());
  EXPECT_EQ(report.trace_summary.stages[0].name, "pipeline");

  // Every expected stage shows up, and the depth-1 stages account for
  // nearly all of the root span's time (the explain-tree contract).
  for (const char* stage :
       {"pipeline.advise", "pipeline.join", "pipeline.encode",
        "pipeline.split", "fs.search", "fs.final_fit"}) {
    EXPECT_GT(report.trace_summary.StageSeconds(stage), 0.0) << stage;
  }
  double child_seconds = 0.0;
  for (const auto& stage : report.trace_summary.stages) {
    if (stage.depth == 1) child_seconds += stage.total_seconds;
  }
  const double wall = report.trace_summary.StageSeconds("pipeline");
  EXPECT_GT(wall, 0.0);
  EXPECT_GE(child_seconds, 0.9 * wall);
  EXPECT_LE(child_seconds, wall * 1.001);

  // Tracing folds the run's counters into the summary.
  EXPECT_GT(report.trace_summary.counters.size(), 0u);
  uint64_t models = 0;
  for (const auto& c : report.trace_summary.counters) {
    if (c.name == "fs.models_trained") models = c.value;
  }
  EXPECT_EQ(models, report.selection.selection.models_trained);

  // The rendered tree and the trace survive the collection window.
  EXPECT_NE(report.ExplainTree().find("pipeline"), std::string::npos);
  EXPECT_FALSE(obs::Enabled());
}

TEST(PipelineTest, TracingDoesNotChangeResults) {
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto plain = *RunPipeline(ds, config);
  config.trace = true;
  auto traced = *RunPipeline(ds, config);
  EXPECT_DOUBLE_EQ(plain.selection.holdout_test_error,
                   traced.selection.holdout_test_error);
  EXPECT_EQ(plain.selection.selected_names,
            traced.selection.selected_names);
}

TEST(PipelineTest, DeterministicInSeed) {
  auto ds = *MakeDataset("Walmart", 0.02, 3);
  PipelineConfig config = BaseConfig();
  auto a = *RunPipeline(ds, config);
  auto b = *RunPipeline(ds, config);
  EXPECT_DOUBLE_EQ(a.selection.holdout_test_error,
                   b.selection.holdout_test_error);
  EXPECT_EQ(a.selection.selected_names, b.selection.selected_names);
}

}  // namespace
}  // namespace hamlet
