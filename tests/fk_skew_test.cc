#include "core/fk_skew.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/data_synthesis.h"

namespace hamlet {
namespace {

// Draws a labeled FK sample from a simulation config.
struct Sample {
  std::vector<uint32_t> fk;
  std::vector<uint32_t> y;
  uint32_t n_r;
};

Sample DrawSample(FkDistribution dist, double param, uint64_t seed,
                  uint32_t n = 8000) {
  SimConfig c;
  c.scenario = TrueDistribution::kLoneXr;
  c.n_s = n;
  c.d_s = 1;
  c.d_r = 2;
  c.n_r = 40;
  c.p = 0.1;
  c.fk_dist = dist;
  if (dist == FkDistribution::kZipf) c.zipf_skew = param;
  if (dist == FkDistribution::kNeedleThread) c.needle_prob = param;
  Rng rng(seed);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(n, rng);
  return {draw.data.feature(gen.FkFeatureIndex()), draw.data.labels(),
          c.n_r};
}

TEST(FkSkewTest, UniformFkBalancedYIsBenign) {
  Sample s = DrawSample(FkDistribution::kUniform, 0, 1);
  auto r = AnalyzeFkSkew(s.fk, s.n_r, s.y, 2);
  EXPECT_FALSE(r.malign);
  EXPECT_FALSE(r.label_skewed);
  EXPECT_NEAR(r.fk_entropy_bits, std::log2(40.0), 0.05);
}

TEST(FkSkewTest, ZipfSkewAloneIsBenign) {
  // Heavy P(FK) skew, but Y stays balanced: the guard must not trip.
  Sample s = DrawSample(FkDistribution::kZipf, 2.0, 2);
  auto r = AnalyzeFkSkew(s.fk, s.n_r, s.y, 2);
  EXPECT_FALSE(r.malign);
  EXPECT_LT(r.fk_entropy_bits, std::log2(40.0) - 1.0);  // Skew visible.
}

TEST(FkSkewTest, NeedleThreadWithSkewedYIsMalign) {
  // Hand-built extreme case (3) of Appendix D: the needle FK carries 92%
  // of the rows and the dominant label; the rare thread FKs carry the
  // rare label exclusively. H(Y) ~ 0.40 bits and rarity colludes.
  Rng rng(3);
  const uint32_t n = 10000, n_r = 40;
  std::vector<uint32_t> fk, y;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.92)) {
      fk.push_back(0);
      y.push_back(0);
    } else {
      fk.push_back(1 + rng.Uniform(n_r - 1));
      y.push_back(1);
    }
  }
  auto r = AnalyzeFkSkew(fk, n_r, y, 2);
  EXPECT_TRUE(r.label_skewed);
  EXPECT_GT(r.rarity_correlation, 0.2);
  EXPECT_TRUE(r.malign);
}

TEST(FkSkewTest, BalancedNeedleIsNotLabelSkewed) {
  // Needle p = 0.5 splits Y evenly: H(Y) ~ 1 bit, so even though the
  // rarity structure exists the conservative H(Y) precondition holds it
  // back (the paper's simpler guard would also pass here).
  Sample s = DrawSample(FkDistribution::kNeedleThread, 0.5, 4);
  auto r = AnalyzeFkSkew(s.fk, s.n_r, s.y, 2);
  EXPECT_FALSE(r.label_skewed);
  EXPECT_FALSE(r.malign);
}

TEST(FkSkewTest, EntropyIdentityHolds) {
  Sample s = DrawSample(FkDistribution::kZipf, 1.0, 5);
  auto r = AnalyzeFkSkew(s.fk, s.n_r, s.y, 2);
  EXPECT_NEAR(r.fk_entropy_bits - r.fk_given_y_bits, r.mutual_information,
              1e-9);
  EXPECT_GE(r.fk_given_y_bits, 0.0);
  EXPECT_LE(r.mutual_information, r.fk_entropy_bits + 1e-9);
}

TEST(FkSkewTest, ThresholdKnobsRespected) {
  Sample s = DrawSample(FkDistribution::kNeedleThread, 0.9, 6);
  FkSkewOptions lax;
  lax.rarity_correlation_threshold = 0.99;  // Nothing colludes this hard.
  EXPECT_FALSE(AnalyzeFkSkew(s.fk, s.n_r, s.y, 2, lax).malign);
  FkSkewOptions strict;
  strict.label_entropy_threshold_bits = 2.0;  // Everything label-skewed.
  auto r = AnalyzeFkSkew(s.fk, s.n_r, s.y, 2, strict);
  EXPECT_TRUE(r.label_skewed);
}

TEST(FkSkewDeathTest, BadInputsAbort) {
  EXPECT_DEATH((void)AnalyzeFkSkew({}, 2, {}, 2), "rows");
  EXPECT_DEATH((void)AnalyzeFkSkew({0}, 2, {0, 1}, 2), "mismatch");
}

}  // namespace
}  // namespace hamlet
