#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hamlet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopySemantics) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "missing");
  // Mutating the copy target via assignment does not affect the source.
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
  EXPECT_FALSE(original.ok());
}

TEST(StatusTest, MoveSemantics) {
  Status original = Status::IOError("disk gone");
  Status moved = std::move(original);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status s = Status::Internal("boom");
  Status& ref = s;
  s = ref;
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream oss;
  oss << Status::OutOfRange("index 9");
  EXPECT_EQ(oss.str(), "Out of range: index 9");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    HAMLET_RETURN_NOT_OK(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOnOk) {
  auto succeeds = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    HAMLET_RETURN_NOT_OK(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusCodeTest, ToStringNamesAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace hamlet
