#include "serve/service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/splits.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hamlet::serve {
namespace {

EncodedDataset MakeData(uint64_t seed, uint32_t n = 500) {
  Rng rng(seed);
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(4);
    y[i] = rng.Bernoulli(0.85) ? f[i] : 1 - f[i];
  }
  return EncodedDataset({f, g}, {{"F", 2}, {"G", 4}}, y, 2);
}

NaiveBayes TrainNb(const EncodedDataset& data) {
  NaiveBayes model(1.0);
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  EXPECT_TRUE(model.Train(data, rows, {0, 1}).ok());
  return model;
}

std::vector<uint32_t> AllRows(const EncodedDataset& data) {
  std::vector<uint32_t> rows(data.num_rows());
  for (uint32_t i = 0; i < data.num_rows(); ++i) rows[i] = i;
  return rows;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/hamlet_service_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<ArtifactStore>(root_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<ArtifactStore> store_;
};

TEST_F(ServiceTest, AdviseMatchesDirectAdvisorCall) {
  AdviseRequest request;
  request.n_train = 100000;
  request.label_entropy_bits = 1.0;
  request.candidates = {
      {"AdID", "Ads", 641707, 2, true},
      {"UserID", "Users", 984893, 4, true},
  };
  Result<JoinPlan> direct = AdviseJoinsFromStats(
      request.n_train, request.label_entropy_bits, request.candidates,
      request.options);
  ASSERT_TRUE(direct.ok()) << direct.status();

  HamletService service(store_.get());
  Result<JoinPlan> served = service.Advise(request);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served->fks_avoided, direct->fks_avoided);
  EXPECT_EQ(served->fks_to_join, direct->fks_to_join);
  ASSERT_EQ(served->advice.size(), direct->advice.size());
  for (size_t i = 0; i < served->advice.size(); ++i) {
    EXPECT_EQ(served->advice[i].avoid, direct->advice[i].avoid);
  }
}

TEST_F(ServiceTest, ScoreMatchesSerialPredict) {
  EncodedDataset data = MakeData(1);
  NaiveBayes model = TrainNb(data);
  ASSERT_TRUE(store_->PutNaiveBayes("m", model).ok());
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  HamletService service(store_.get());
  ScoreRequest request;
  request.model = "m";
  request.rows = std::make_shared<EncodedDataset>(MakeData(1));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->predictions, expected);
  EXPECT_GE(response->batch_requests, 1u);
}

TEST_F(ServiceTest, ScoreLogisticRegressionModel) {
  EncodedDataset data = MakeData(2);
  LogisticRegressionOptions options;
  options.max_epochs = 5;
  LogisticRegression model(options);
  ASSERT_TRUE(model.Train(data, AllRows(data), {0, 1}).ok());
  ASSERT_TRUE(store_->PutLogisticRegression("lr", model).ok());
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  HamletService service(store_.get());
  ScoreRequest request;
  request.model = "lr";
  request.rows = std::make_shared<EncodedDataset>(MakeData(2));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->predictions, expected);
}

TEST_F(ServiceTest, ScoreDecisionTreeModel) {
  EncodedDataset data = MakeData(11);
  DecisionTree model;
  ASSERT_TRUE(model.Train(data, AllRows(data), {0, 1}).ok());
  ASSERT_TRUE(store_->PutDecisionTree("tree", model).ok());
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  HamletService service(store_.get());
  ScoreRequest request;
  request.model = "tree";
  request.rows = std::make_shared<EncodedDataset>(MakeData(11));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->predictions, expected);
}

TEST_F(ServiceTest, ScoreGbtModel) {
  EncodedDataset data = MakeData(12);
  GbtOptions options;
  options.num_rounds = 4;
  Gbt model(options);
  ASSERT_TRUE(model.Train(data, AllRows(data), {0, 1}).ok());
  ASSERT_TRUE(store_->PutGbt("gbt", model).ok());
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  HamletService service(store_.get());
  ScoreRequest request;
  request.model = "gbt";
  request.rows = std::make_shared<EncodedDataset>(MakeData(12));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->predictions, expected);

  // Batched direct scoring resolves the same GBT artifact and agrees.
  auto block = std::make_shared<EncodedDataset>(MakeData(12));
  std::vector<ScoreRequest> batch(3);
  for (ScoreRequest& r : batch) {
    r.model = "gbt";
    r.rows = block;
  }
  Result<std::vector<ScoreResponse>> responses =
      service.ScoreBatchDirect(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  for (const ScoreResponse& r : *responses) {
    EXPECT_EQ(r.predictions, expected);
  }
}

TEST_F(ServiceTest, TreeLayoutMismatchRejected) {
  EncodedDataset data = MakeData(13);
  DecisionTree model;
  ASSERT_TRUE(model.Train(data, AllRows(data), {0, 1}).ok());
  ASSERT_TRUE(store_->PutDecisionTree("tree", model).ok());
  HamletService service(store_.get());

  // Wrong cardinality on feature 1: walking the tree could chase an
  // out-of-domain code, so the block must be rejected up front.
  Rng rng(13);
  const uint32_t n = 20;
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(9);
    y[i] = 0;
  }
  ScoreRequest request;
  request.model = "tree";
  request.rows = std::make_shared<EncodedDataset>(
      EncodedDataset({f, g}, {{"F", 2}, {"G", 9}}, y, 2));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

// The acceptance bar of ISSUE 4: under >= 8 concurrent clients, every
// Score response is identical to serial scoring — batching and request
// interleaving affect latency only, never results.
TEST_F(ServiceTest, ConcurrentClientsMatchSerialScoring) {
  EncodedDataset data = MakeData(3);
  NaiveBayes model = TrainNb(data);
  ASSERT_TRUE(store_->PutNaiveBayes("m", model).ok());
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));
  auto block = std::make_shared<EncodedDataset>(MakeData(3));

  // Tight queue + small batches so backpressure AND coalescing both
  // trigger under the concurrent load.
  ServiceOptions options;
  options.queue_capacity = 4;
  options.max_batch = 3;
  HamletService service(store_.get(), options);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 16;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        ScoreRequest request;
        request.model = "m";
        request.rows = block;
        Result<ScoreResponse> response = service.Score(std::move(request));
        if (!response.ok() || response->predictions != expected) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
}

TEST_F(ServiceTest, BatchedAndUnbatchedAgree) {
  EncodedDataset data = MakeData(4);
  NaiveBayes model = TrainNb(data);
  ASSERT_TRUE(store_->PutNaiveBayes("m", model).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(4));
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  ServiceOptions unbatched;
  unbatched.batch_scoring = false;
  HamletService service_a(store_.get(), ServiceOptions{});
  HamletService service_b(store_.get(), unbatched);
  for (HamletService* service : {&service_a, &service_b}) {
    ScoreRequest request;
    request.model = "m";
    request.rows = block;
    Result<ScoreResponse> response = service->Score(std::move(request));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->predictions, expected);
  }
}

TEST_F(ServiceTest, ScoreBatchDirectGroupsAndAgrees) {
  EncodedDataset data = MakeData(5);
  NaiveBayes model = TrainNb(data);
  ASSERT_TRUE(store_->PutNaiveBayes("m", model).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(5));
  std::vector<uint32_t> expected = model.Predict(data, AllRows(data));

  HamletService service(store_.get());
  std::vector<ScoreRequest> batch(5);
  for (ScoreRequest& r : batch) {
    r.model = "m";
    r.rows = block;
  }
  Result<std::vector<ScoreResponse>> responses =
      service.ScoreBatchDirect(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 5u);
  for (const ScoreResponse& response : *responses) {
    EXPECT_EQ(response.predictions, expected);
    EXPECT_EQ(response.batch_requests, 5u);
  }
}

TEST_F(ServiceTest, ScoreErrorsAreTyped) {
  HamletService service(store_.get());
  ScoreRequest missing_rows;
  missing_rows.model = "m";
  EXPECT_EQ(service.Score(std::move(missing_rows)).status().code(),
            StatusCode::kInvalidArgument);

  ScoreRequest missing_model;
  missing_model.model = "absent";
  missing_model.rows = std::make_shared<EncodedDataset>(MakeData(6, 10));
  EXPECT_EQ(service.Score(std::move(missing_model)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, LayoutMismatchRejectedNotCrashed) {
  EncodedDataset data = MakeData(7);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(data)).ok());
  HamletService service(store_.get());

  // A block whose feature 1 has the wrong cardinality: scoring it would
  // index the model's likelihood table out of bounds.
  Rng rng(7);
  const uint32_t n = 20;
  std::vector<uint32_t> f(n), g(n), y(n);
  for (uint32_t i = 0; i < n; ++i) {
    f[i] = rng.Uniform(2);
    g[i] = rng.Uniform(9);
    y[i] = 0;
  }
  ScoreRequest request;
  request.model = "m";
  request.rows = std::make_shared<EncodedDataset>(
      EncodedDataset({f, g}, {{"F", 2}, {"G", 9}}, y, 2));
  Result<ScoreResponse> response = service.Score(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, StoppedServiceRejectsNewRequests) {
  HamletService service(store_.get());
  service.Stop();
  AdviseRequest request;
  EXPECT_EQ(service.Advise(request).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST_F(ServiceTest, SelectFeaturesPersistsTheWinningModel) {
  EncodedDataset data = MakeData(8, 800);
  ASSERT_TRUE(store_->PutDataset("train", data).ok());

  // The request's protocol, replicated directly for the expected result.
  Rng rng(21);
  HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), rng);
  auto selector = MakeSelector(FsMethod::kForwardSelection);
  Result<FsRunReport> direct = RunFeatureSelection(
      *selector, data, split, MakeNaiveBayesFactory(1.0),
      ErrorMetric::kZeroOne, data.AllFeatureIndices());
  ASSERT_TRUE(direct.ok()) << direct.status();

  HamletService service(store_.get());
  SelectFeaturesRequest request;
  request.dataset = "train";
  request.method = FsMethod::kForwardSelection;
  request.seed = 21;
  request.model_name = "winner";
  Result<SelectFeaturesResponse> response =
      service.SelectFeatures(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->report.selection.selected, direct->selection.selected);
  EXPECT_EQ(response->report.holdout_test_error, direct->holdout_test_error);
  EXPECT_EQ(response->model_version, 1u);
  EXPECT_EQ(response->report_version, 1u);

  // The persisted model scores exactly like a fresh train on the same
  // split + selection.
  auto persisted = store_->GetNaiveBayes("winner");
  ASSERT_TRUE(persisted.ok()) << persisted.status();
  NaiveBayes fresh(1.0);
  ASSERT_TRUE(fresh.Train(data, split.train, direct->selection.selected).ok());
  EXPECT_EQ((*persisted)->Predict(data, split.test),
            fresh.Predict(data, split.test));

  auto report = store_->GetFsRunReport("winner.fs_report");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->selection.selected, direct->selection.selected);
}

TEST_F(ServiceTest, ServeMetricsAndSpansAreRecorded) {
  EncodedDataset data = MakeData(9);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(data)).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(9));

  obs::ScopedCollection collection(true);
  HamletService service(store_.get());
  AdviseRequest advise;
  advise.n_train = 1000;
  ASSERT_TRUE(service.Advise(advise).ok());
  for (int i = 0; i < 3; ++i) {
    ScoreRequest request;
    request.model = "m";
    request.rows = block;
    ASSERT_TRUE(service.Score(std::move(request)).ok());
  }
  service.Stop();

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serve.requests"), 4u);
  EXPECT_EQ(snapshot.CounterValue("serve.advise_requests"), 1u);
  EXPECT_EQ(snapshot.CounterValue("serve.score_requests"), 3u);
  EXPECT_EQ(snapshot.CounterValue("serve.score_rows"),
            3u * data.num_rows());
  EXPECT_GE(snapshot.CounterValue("serve.score_batches"), 1u);
  bool saw_score_latency = false;
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "serve.score_ns") {
      saw_score_latency = h.count == 3;
    }
  }
  EXPECT_TRUE(saw_score_latency);

  // The spans land in the trace, so serve stages show up in the explain
  // tree next to the pipeline stages.
  obs::Trace trace = obs::Tracer::Global().Collect();
  bool saw_advise = false, saw_score = false;
  for (const obs::TraceEvent& event : trace.events) {
    saw_advise |= event.name == "serve.advise";
    saw_score |= event.name == "serve.score";
  }
  EXPECT_TRUE(saw_advise);
  EXPECT_TRUE(saw_score);
  EXPECT_NE(obs::RenderExplainTree(trace).find("serve.score"),
            std::string::npos);
}

TEST_F(ServiceTest, DestructorDrainsCleanly) {
  EncodedDataset data = MakeData(10);
  ASSERT_TRUE(store_->PutNaiveBayes("m", TrainNb(data)).ok());
  auto block = std::make_shared<EncodedDataset>(MakeData(10));
  {
    HamletService service(store_.get());
    ScoreRequest request;
    request.model = "m";
    request.rows = block;
    ASSERT_TRUE(service.Score(std::move(request)).ok());
  }  // Destructor stops + joins; nothing to assert beyond "no hang".
}

}  // namespace
}  // namespace hamlet::serve
