#include "core/generalized_avoidance.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamlet {
namespace {

// A denormalized table with two FD chains of different tuple ratios:
//   Wide  -> {WideDep}   (many distinct determinant values: low TR)
//   Narrow-> {NarrowDep1, NarrowDep2} (few distinct values: high TR)
Table MakeDenormalized(uint32_t n = 2000) {
  Rng rng(5);
  Schema schema({ColumnSpec::Target("Y"), ColumnSpec::Feature("Wide"),
                 ColumnSpec::Feature("WideDep"),
                 ColumnSpec::Feature("Narrow"),
                 ColumnSpec::Feature("NarrowDep1"),
                 ColumnSpec::Feature("NarrowDep2"),
                 ColumnSpec::Feature("Free")});
  auto y_d = Domain::Dense(2);
  auto wide_d = Domain::Dense(800, "w");
  auto widedep_d = Domain::Dense(4, "wd");
  auto narrow_d = Domain::Dense(10, "n");
  auto narrowdep_d = Domain::Dense(3, "nd");
  auto free_d = Domain::Dense(5, "f");
  TableBuilder b("T", schema,
                 {y_d, wide_d, widedep_d, narrow_d, narrowdep_d,
                  narrowdep_d, free_d});
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t wide = rng.Uniform(800);
    uint32_t narrow = rng.Uniform(10);
    b.AppendRowCodes({rng.Uniform(2), wide, wide % 4, narrow, narrow % 3,
                      (narrow + 1) % 3, rng.Uniform(5)});
  }
  return b.Build();
}

FdSet MakeFds(const Table& t) {
  std::vector<std::string> attrs;
  for (uint32_t c = 0; c < t.num_columns(); ++c) {
    attrs.push_back(t.schema().column(c).name);
  }
  FdSet fds(std::move(attrs));
  EXPECT_TRUE(fds.Add({{"Wide"}, {"WideDep"}}).ok());
  EXPECT_TRUE(fds.Add({{"Narrow"}, {"NarrowDep1", "NarrowDep2"}}).ok());
  return fds;
}

const std::vector<std::string> kCandidates = {
    "Wide", "WideDep", "Narrow", "NarrowDep1", "NarrowDep2", "Free"};

TEST(GeneralizedAvoidanceTest, DropsOnlyHighTrDependents) {
  Table t = MakeDenormalized();
  auto plan = AdviseFeatureDrops(t, MakeFds(t), kCandidates);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Narrow: TR = 1000/10 = 100 >= 20 -> dependents droppable.
  // Wide: TR = 1000/~780 distinct ~ 1.3 -> keep.
  EXPECT_EQ(plan->drop,
            (std::vector<std::string>{"NarrowDep1", "NarrowDep2"}));
  EXPECT_EQ(plan->keep, (std::vector<std::string>{"Wide", "WideDep",
                                                  "Narrow", "Free"}));
}

TEST(GeneralizedAvoidanceTest, AdviceCarriesDiagnostics) {
  Table t = MakeDenormalized();
  auto plan = *AdviseFeatureDrops(t, MakeFds(t), kCandidates);
  ASSERT_EQ(plan.advice.size(), 2u);
  const FdAdvice& wide = plan.advice[0];
  EXPECT_EQ(wide.fd.determinants[0], "Wide");
  EXPECT_GT(wide.determinant_distinct, 500u);
  EXPECT_EQ(wide.min_dependent_domain, 4u);
  EXPECT_FALSE(wide.safe_to_drop_dependents);
  const FdAdvice& narrow = plan.advice[1];
  EXPECT_EQ(narrow.determinant_distinct, 10u);
  EXPECT_EQ(narrow.min_dependent_domain, 3u);
  EXPECT_TRUE(narrow.safe_to_drop_dependents);
  EXPECT_GT(wide.ror, narrow.ror);  // Lower TR, higher risk.
}

TEST(GeneralizedAvoidanceTest, DropKeepPartitionCandidates) {
  Table t = MakeDenormalized();
  auto plan = *AdviseFeatureDrops(t, MakeFds(t), kCandidates);
  EXPECT_EQ(plan.drop.size() + plan.keep.size(), kCandidates.size());
}

TEST(GeneralizedAvoidanceTest, CyclicFdsRejected) {
  Table t = MakeDenormalized();
  FdSet cyclic({"Y", "Wide", "WideDep", "Narrow", "NarrowDep1",
                "NarrowDep2", "Free"});
  ASSERT_TRUE(cyclic.Add({{"Wide"}, {"WideDep"}}).ok());
  ASSERT_TRUE(cyclic.Add({{"WideDep"}, {"Wide"}}).ok());
  EXPECT_EQ(AdviseFeatureDrops(t, cyclic, kCandidates).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GeneralizedAvoidanceTest, CompositeDeterminantsNotImplemented) {
  Table t = MakeDenormalized();
  FdSet fds({"Y", "Wide", "WideDep", "Narrow", "NarrowDep1", "NarrowDep2",
             "Free"});
  ASSERT_TRUE(fds.Add({{"Wide", "Narrow"}, {"Free"}}).ok());
  EXPECT_EQ(AdviseFeatureDrops(t, fds, kCandidates).status().code(),
            StatusCode::kNotImplemented);
}

TEST(GeneralizedAvoidanceTest, LooserToleranceDropsMore) {
  Table t = MakeDenormalized();
  // Make the narrow determinant's TR land between the two taus (10, 20):
  // use a 2000-row table, train_fraction tuned so TR ~ 15.
  GeneralizedAvoidanceOptions strict;
  strict.error_tolerance = 0.001;  // tau 20.
  strict.train_fraction = 0.075;   // n = 150, TR(Narrow) = 15.
  GeneralizedAvoidanceOptions loose = strict;
  loose.error_tolerance = 0.01;  // tau 10.
  auto strict_plan = *AdviseFeatureDrops(t, MakeFds(t), kCandidates, strict);
  auto loose_plan = *AdviseFeatureDrops(t, MakeFds(t), kCandidates, loose);
  EXPECT_TRUE(strict_plan.drop.empty());
  EXPECT_EQ(loose_plan.drop.size(), 2u);
}

TEST(GeneralizedAvoidanceTest, UnknownColumnErrors) {
  Table t = MakeDenormalized();
  FdSet fds({"Ghost", "Y"});
  ASSERT_TRUE(fds.Add({{"Ghost"}, {"Y"}}).ok());
  EXPECT_FALSE(AdviseFeatureDrops(t, fds, {"Y"}).ok());
}

}  // namespace
}  // namespace hamlet
