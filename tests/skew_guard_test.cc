#include "core/skew_guard.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamlet {
namespace {

std::vector<uint32_t> LabelsWithSplit(uint32_t n, double p1, Rng& rng) {
  std::vector<uint32_t> y(n);
  for (uint32_t i = 0; i < n; ++i) y[i] = rng.Bernoulli(p1) ? 1 : 0;
  return y;
}

TEST(SkewGuardTest, BalancedLabelsPass) {
  Rng rng(1);
  auto y = LabelsWithSplit(5000, 0.5, rng);
  auto r = CheckSkewGuard(y, 2);
  EXPECT_TRUE(r.passes);
  EXPECT_NEAR(r.label_entropy_bits, 1.0, 0.01);
}

TEST(SkewGuardTest, NinetyTenSplitFailsAtDefaultThreshold) {
  // The paper's calibration: 90%:10% ~ H = 0.469 < 0.5 bits.
  Rng rng(2);
  auto y = LabelsWithSplit(20000, 0.1, rng);
  auto r = CheckSkewGuard(y, 2);
  EXPECT_FALSE(r.passes);
  EXPECT_NEAR(r.label_entropy_bits, 0.469, 0.02);
}

TEST(SkewGuardTest, EightyTwentySplitPasses) {
  // H(0.8, 0.2) = 0.722 bits > 0.5.
  Rng rng(3);
  auto y = LabelsWithSplit(20000, 0.2, rng);
  EXPECT_TRUE(CheckSkewGuard(y, 2).passes);
}

TEST(SkewGuardTest, ConstantLabelsFail) {
  std::vector<uint32_t> y(100, 1);
  auto r = CheckSkewGuard(y, 2);
  EXPECT_FALSE(r.passes);
  EXPECT_DOUBLE_EQ(r.label_entropy_bits, 0.0);
}

TEST(SkewGuardTest, CustomThreshold) {
  Rng rng(4);
  auto y = LabelsWithSplit(20000, 0.2, rng);  // H ~ 0.72.
  EXPECT_TRUE(CheckSkewGuard(y, 2, 0.5).passes);
  EXPECT_FALSE(CheckSkewGuard(y, 2, 0.9).passes);
  EXPECT_DOUBLE_EQ(CheckSkewGuard(y, 2, 0.9).threshold_bits, 0.9);
}

TEST(SkewGuardTest, MulticlassEntropy) {
  // Uniform 5-class: H = log2(5) ~ 2.32 bits, easily passing.
  Rng rng(5);
  std::vector<uint32_t> y(5000);
  for (auto& v : y) v = rng.Uniform(5);
  auto r = CheckSkewGuard(y, 5);
  EXPECT_TRUE(r.passes);
  EXPECT_NEAR(r.label_entropy_bits, 2.32, 0.02);
}

}  // namespace
}  // namespace hamlet
