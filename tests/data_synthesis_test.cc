#include "sim/data_synthesis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hamlet {
namespace {

SimConfig BaseConfig() {
  SimConfig c;
  c.scenario = TrueDistribution::kLoneXr;
  c.n_s = 1000;
  c.d_s = 3;
  c.d_r = 4;
  c.n_r = 20;
  c.p = 0.1;
  return c;
}

TEST(SimConfigTest, TestSizeIsQuarter) {
  SimConfig c = BaseConfig();
  EXPECT_EQ(c.TestSize(), 250u);
  c.n_s = 2;
  EXPECT_EQ(c.TestSize(), 1u);  // Never zero.
}

TEST(SimConfigTest, EnumNames) {
  EXPECT_STREQ(TrueDistributionToString(TrueDistribution::kLoneXr),
               "lone_xr");
  EXPECT_STREQ(TrueDistributionToString(TrueDistribution::kAllXsXr),
               "all_xs_xr");
  EXPECT_STREQ(TrueDistributionToString(TrueDistribution::kXsFkOnly),
               "xs_fk_only");
  EXPECT_STREQ(FkDistributionToString(FkDistribution::kUniform),
               "uniform");
  EXPECT_STREQ(FkDistributionToString(FkDistribution::kZipf), "zipf");
  EXPECT_STREQ(FkDistributionToString(FkDistribution::kNeedleThread),
               "needle_thread");
}

TEST(FkWeightsTest, UniformByDefault) {
  auto w = MakeFkWeights(BaseConfig());
  ASSERT_EQ(w.size(), 20u);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(FkWeightsTest, ZipfDecays) {
  SimConfig c = BaseConfig();
  c.fk_dist = FkDistribution::kZipf;
  c.zipf_skew = 1.0;
  auto w = MakeFkWeights(c);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[3], 0.25);
}

TEST(FkWeightsTest, NeedleThreadSplitsMass) {
  SimConfig c = BaseConfig();
  c.fk_dist = FkDistribution::kNeedleThread;
  c.needle_prob = 0.5;
  auto w = MakeFkWeights(c);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], 0.5 / 19.0, 1e-12);
  }
}

TEST(SimDataGeneratorTest, LayoutAndCardinalities) {
  SimConfig c = BaseConfig();
  Rng rng(1);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(100, rng);
  EXPECT_EQ(draw.data.num_rows(), 100u);
  EXPECT_EQ(draw.data.num_features(), c.d_s + 1 + c.d_r);
  for (uint32_t j = 0; j < c.d_s; ++j) {
    EXPECT_EQ(draw.data.meta(j).cardinality, 2u);
  }
  EXPECT_EQ(draw.data.meta(gen.FkFeatureIndex()).cardinality, c.n_r);
  EXPECT_EQ(draw.data.meta(gen.XrFeatureIndex()).cardinality, 2u);
  EXPECT_EQ(draw.data.num_classes(), 2u);
  EXPECT_EQ(draw.true_conditionals.size(), 100u);
}

TEST(SimDataGeneratorTest, FeatureSubsetsPartitionCorrectly) {
  SimConfig c = BaseConfig();
  Rng rng(2);
  SimDataGenerator gen(c, rng);
  EXPECT_EQ(gen.UseAllFeatures().size(), c.d_s + 1 + c.d_r);
  EXPECT_EQ(gen.NoJoinFeatures().size(), c.d_s + 1);
  EXPECT_EQ(gen.NoFkFeatures().size(), c.d_s + c.d_r);
  // NoJoin drops exactly the X_R block; NoFK drops exactly the FK.
  auto no_join = gen.NoJoinFeatures();
  EXPECT_EQ(no_join.back(), gen.FkFeatureIndex());
  auto no_fk = gen.NoFkFeatures();
  for (uint32_t j : no_fk) EXPECT_NE(j, gen.FkFeatureIndex());
}

TEST(SimDataGeneratorTest, FdFkToXrHoldsInDraws) {
  // The FD FK -> X_R must hold by construction: same FK, same X_R.
  SimConfig c = BaseConfig();
  Rng rng(3);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(2000, rng);
  const auto& fk = draw.data.feature(gen.FkFeatureIndex());
  // Every X_R feature must be constant per FK value...
  for (uint32_t j = 0; j < c.d_r; ++j) {
    const auto& xr = draw.data.feature(c.d_s + 1 + j);
    std::vector<int64_t> seen(c.n_r, -1);
    for (uint32_t i = 0; i < draw.data.num_rows(); ++i) {
      if (seen[fk[i]] < 0) {
        seen[fk[i]] = xr[i];
      } else {
        ASSERT_EQ(static_cast<uint32_t>(seen[fk[i]]), xr[i]);
      }
    }
  }
  // ...and the designated signal column X_r matches the generator's map.
  const auto& xr0 = draw.data.feature(gen.XrFeatureIndex());
  for (uint32_t i = 0; i < draw.data.num_rows(); ++i) {
    ASSERT_EQ(xr0[i], gen.XrOfRid(fk[i]));
  }
}

TEST(SimDataGeneratorTest, LoneXrConditionalMatchesSpec) {
  // Paper: P(Y=0|X_r=0) = P(Y=1|X_r=1) = p.
  SimConfig c = BaseConfig();
  c.p = 0.2;
  Rng rng(4);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(20000, rng);
  const auto& xr = draw.data.feature(gen.XrFeatureIndex());
  uint64_t n0 = 0, y1_given_0 = 0, n1 = 0, y1_given_1 = 0;
  for (uint32_t i = 0; i < draw.data.num_rows(); ++i) {
    if (xr[i] == 0) {
      ++n0;
      y1_given_0 += draw.data.labels()[i];
    } else {
      ++n1;
      y1_given_1 += draw.data.labels()[i];
    }
  }
  EXPECT_NEAR(static_cast<double>(y1_given_0) / n0, 1.0 - c.p, 0.02);
  EXPECT_NEAR(static_cast<double>(y1_given_1) / n1, c.p, 0.02);
}

TEST(SimDataGeneratorTest, ConditionalsMatchLabels) {
  // Empirical P(Y=1) within strata must match the recorded conditionals.
  SimConfig c = BaseConfig();
  c.scenario = TrueDistribution::kAllXsXr;
  Rng rng(5);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(5000, rng);
  double expected = 0.0;
  uint64_t observed = 0;
  for (uint32_t i = 0; i < draw.data.num_rows(); ++i) {
    expected += draw.true_conditionals[i][1];
    observed += draw.data.labels()[i];
  }
  EXPECT_NEAR(expected / draw.data.num_rows(),
              static_cast<double>(observed) / draw.data.num_rows(), 0.02);
}

TEST(SimDataGeneratorTest, XsFkOnlyIgnoresXr) {
  // In the kXsFkOnly scenario the conditional depends on FK's latent and
  // X_S only — two rows with the same FK and X_S get identical P(Y|x).
  SimConfig c = BaseConfig();
  c.scenario = TrueDistribution::kXsFkOnly;
  Rng rng(6);
  SimDataGenerator gen(c, rng);
  std::vector<uint32_t> codes(c.d_s + 1 + c.d_r, 0);
  codes[c.d_s] = 3;  // Some FK.
  double p1 = gen.TrueProbY1(codes);
  for (uint32_t j = 0; j < c.d_r; ++j) codes[c.d_s + 1 + j] = 1;
  EXPECT_DOUBLE_EQ(gen.TrueProbY1(codes), p1);
}

TEST(SimDataGeneratorTest, NeedleThreadTiesXrToNeedle) {
  SimConfig c = BaseConfig();
  c.fk_dist = FkDistribution::kNeedleThread;
  Rng rng(7);
  SimDataGenerator gen(c, rng);
  EXPECT_EQ(gen.XrOfRid(0), 0u);
  for (uint32_t rid = 1; rid < c.n_r; ++rid) {
    EXPECT_EQ(gen.XrOfRid(rid), 1u);
  }
}

TEST(SimDataGeneratorTest, WideXrCardinality) {
  // The Figure 5 knob: a lone signal column of cardinality xr_card.
  SimConfig c = BaseConfig();
  c.d_r = 1;
  c.n_r = 24;
  c.xr_card = 8;
  Rng rng(21);
  SimDataGenerator gen(c, rng);
  SimDraw draw = gen.Draw(2000, rng);
  EXPECT_EQ(draw.data.meta(gen.XrFeatureIndex()).cardinality, 8u);
  // Balanced dealing: rid % xr_card.
  for (uint32_t rid = 0; rid < c.n_r; ++rid) {
    EXPECT_EQ(gen.XrOfRid(rid), rid % 8);
  }
  // Concept generalizes to a halves split of the X_r domain.
  std::vector<uint32_t> codes(c.d_s + 1 + c.d_r, 0);
  codes[c.d_s + 1] = 0;  // Lower half.
  EXPECT_DOUBLE_EQ(gen.TrueProbY1(codes), 1.0 - c.p);
  codes[c.d_s + 1] = 7;  // Upper half.
  EXPECT_DOUBLE_EQ(gen.TrueProbY1(codes), c.p);
}

TEST(SimDataGeneratorTest, XrCardEqualToFkMakesXrBijective) {
  SimConfig c = BaseConfig();
  c.d_r = 1;
  c.n_r = 16;
  c.xr_card = 16;
  Rng rng(23);
  SimDataGenerator gen(c, rng);
  for (uint32_t rid = 0; rid < c.n_r; ++rid) {
    EXPECT_EQ(gen.XrOfRid(rid), rid);
  }
}

TEST(SimDataGeneratorDeathTest, BadXrCardAborts) {
  SimConfig c = BaseConfig();
  c.xr_card = c.n_r + 1;
  Rng rng(25);
  EXPECT_DEATH(SimDataGenerator gen(c, rng), "xr_card");
}

TEST(SimDataGeneratorTest, DeterministicInRng) {
  SimConfig c = BaseConfig();
  Rng a(8), b(8);
  SimDataGenerator ga(c, a), gb(c, b);
  SimDraw da = ga.Draw(50, a), db = gb.Draw(50, b);
  EXPECT_EQ(da.data.labels(), db.data.labels());
  for (uint32_t j = 0; j < da.data.num_features(); ++j) {
    EXPECT_EQ(da.data.feature(j), db.data.feature(j));
  }
}

}  // namespace
}  // namespace hamlet
