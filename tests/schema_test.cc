#include "relational/schema.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

Schema CustomerSchema() {
  return Schema({ColumnSpec::PrimaryKey("CustomerID"),
                 ColumnSpec::Target("Churn"),
                 ColumnSpec::Feature("Gender"),
                 ColumnSpec::Feature("Age"),
                 ColumnSpec::ForeignKey("EmployerID", "Employers")});
}

TEST(SchemaTest, CountsColumns) {
  EXPECT_EQ(CustomerSchema().num_columns(), 5u);
}

TEST(SchemaTest, IndexOfFindsColumns) {
  Schema s = CustomerSchema();
  EXPECT_EQ(*s.IndexOf("CustomerID"), 0u);
  EXPECT_EQ(*s.IndexOf("EmployerID"), 4u);
}

TEST(SchemaTest, IndexOfMissingIsNotFound) {
  EXPECT_EQ(CustomerSchema().IndexOf("Nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, Contains) {
  Schema s = CustomerSchema();
  EXPECT_TRUE(s.Contains("Age"));
  EXPECT_FALSE(s.Contains("Salary"));
}

TEST(SchemaTest, PrimaryKeyIndex) {
  EXPECT_EQ(*CustomerSchema().PrimaryKeyIndex(), 0u);
}

TEST(SchemaTest, TargetIndex) {
  EXPECT_EQ(*CustomerSchema().TargetIndex(), 1u);
}

TEST(SchemaTest, MissingPrimaryKeyIsNotFound) {
  Schema s({ColumnSpec::Feature("F")});
  EXPECT_FALSE(s.PrimaryKeyIndex().ok());
  EXPECT_FALSE(s.TargetIndex().ok());
}

TEST(SchemaTest, ForeignKeyIndices) {
  Schema s = CustomerSchema();
  auto fks = s.ForeignKeyIndices();
  ASSERT_EQ(fks.size(), 1u);
  EXPECT_EQ(fks[0], 4u);
  EXPECT_EQ(s.column(fks[0]).ref_table, "Employers");
}

TEST(SchemaTest, FeatureIndices) {
  auto feats = CustomerSchema().FeatureIndices();
  ASSERT_EQ(feats.size(), 2u);
  EXPECT_EQ(feats[0], 2u);
  EXPECT_EQ(feats[1], 3u);
}

TEST(SchemaTest, ForeignKeyClosedDomainDefaultsTrue) {
  ColumnSpec fk = ColumnSpec::ForeignKey("A", "T");
  EXPECT_TRUE(fk.closed_domain);
  ColumnSpec open = ColumnSpec::ForeignKey("B", "T", false);
  EXPECT_FALSE(open.closed_domain);
}

TEST(SchemaTest, ProjectKeepsOrderAndSpecs) {
  Schema s = CustomerSchema();
  Schema p = s.Project({3, 1});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "Age");
  EXPECT_EQ(p.column(1).name, "Churn");
  EXPECT_EQ(p.column(1).role, ColumnRole::kTarget);
}

TEST(SchemaTest, RoleToString) {
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kFeature), "feature");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kPrimaryKey), "primary_key");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kForeignKey), "foreign_key");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kTarget), "target");
}

TEST(SchemaDeathTest, DuplicateNameAborts) {
  EXPECT_DEATH(
      Schema({ColumnSpec::Feature("A"), ColumnSpec::Feature("A")}),
      "duplicate");
}

TEST(SchemaDeathTest, ColumnIndexOutOfRangeAborts) {
  Schema s = CustomerSchema();
  EXPECT_DEATH((void)s.column(9), "out of range");
}

}  // namespace
}  // namespace hamlet
