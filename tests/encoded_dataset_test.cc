#include "data/encoded_dataset.h"

#include <gtest/gtest.h>

#include "relational/table.h"

namespace hamlet {
namespace {

EncodedDataset TinyDataset() {
  return EncodedDataset({{0, 1, 0, 2}, {1, 1, 0, 0}},
                        {{"F1", 3}, {"F2", 2}}, {0, 1, 1, 0}, 2);
}

TEST(EncodedDatasetTest, Shape) {
  EncodedDataset d = TinyDataset();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 2u);
}

TEST(EncodedDatasetTest, FeatureAccess) {
  EncodedDataset d = TinyDataset();
  EXPECT_EQ(d.feature(0)[3], 2u);
  EXPECT_EQ(d.meta(0).name, "F1");
  EXPECT_EQ(d.meta(0).cardinality, 3u);
}

TEST(EncodedDatasetTest, FeatureIndexOf) {
  EncodedDataset d = TinyDataset();
  EXPECT_EQ(*d.FeatureIndexOf("F2"), 1u);
  EXPECT_FALSE(d.FeatureIndexOf("F9").ok());
}

TEST(EncodedDatasetTest, FeatureNames) {
  EncodedDataset d = TinyDataset();
  auto names = d.FeatureNames({1, 0});
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "F2");
  EXPECT_EQ(names[1], "F1");
}

TEST(EncodedDatasetTest, AllFeatureIndices) {
  auto idx = TinyDataset().AllFeatureIndices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(EncodedDatasetTest, GatherRows) {
  EncodedDataset d = TinyDataset();
  EncodedDataset g = d.GatherRows({3, 1});
  EXPECT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.feature(0)[0], 2u);
  EXPECT_EQ(g.labels()[0], 0u);
  EXPECT_EQ(g.labels()[1], 1u);
  EXPECT_EQ(g.num_classes(), 2u);
}

Table BuildJoinedTable() {
  Schema schema({ColumnSpec::PrimaryKey("ID"),
                 ColumnSpec::Target("Y"),
                 ColumnSpec::Feature("A"),
                 ColumnSpec::ForeignKey("FK1", "R1", /*closed=*/true),
                 ColumnSpec::ForeignKey("FK2", "R2", /*closed=*/false),
                 ColumnSpec::Feature("B")});
  TableBuilder b("T", schema);
  EXPECT_TRUE(b.AppendRowLabels({"i0", "y0", "a0", "k0", "q0", "b0"}).ok());
  EXPECT_TRUE(b.AppendRowLabels({"i1", "y1", "a1", "k1", "q1", "b1"}).ok());
  return b.Build();
}

TEST(EncodedDatasetTest, FromTableSelectsNamedColumns) {
  Table t = BuildJoinedTable();
  auto d = EncodedDataset::FromTable(t, "Y", {"A", "FK1"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_features(), 2u);
  EXPECT_EQ(d->meta(0).name, "A");
  EXPECT_EQ(d->meta(1).name, "FK1");
  EXPECT_EQ(d->num_classes(), 2u);
}

TEST(EncodedDatasetTest, FromTableMissingColumnFails) {
  Table t = BuildJoinedTable();
  EXPECT_FALSE(EncodedDataset::FromTable(t, "Y", {"Nope"}).ok());
  EXPECT_FALSE(EncodedDataset::FromTable(t, "NoTarget", {"A"}).ok());
}

TEST(EncodedDatasetTest, FromTableAutoExcludesKeysAndOpenFks) {
  Table t = BuildJoinedTable();
  auto d = EncodedDataset::FromTableAuto(t);
  ASSERT_TRUE(d.ok());
  // Usable: A, B, FK1 (closed). Excluded: ID (pk), Y (target),
  // FK2 (open domain).
  EXPECT_EQ(d->num_features(), 3u);
  EXPECT_TRUE(d->FeatureIndexOf("A").ok());
  EXPECT_TRUE(d->FeatureIndexOf("B").ok());
  EXPECT_TRUE(d->FeatureIndexOf("FK1").ok());
  EXPECT_FALSE(d->FeatureIndexOf("FK2").ok());
  EXPECT_FALSE(d->FeatureIndexOf("ID").ok());
}

TEST(EncodedDatasetDeathTest, RaggedFeaturesAbort) {
  EXPECT_DEATH(EncodedDataset({{0, 1}, {0}}, {{"A", 2}, {"B", 2}}, {0, 1},
                              2),
               "rows");
}

TEST(EncodedDatasetDeathTest, MetaMismatchAborts) {
  EXPECT_DEATH(EncodedDataset({{0}}, {}, {0}, 2), "meta");
}

}  // namespace
}  // namespace hamlet
