#include "stats/binning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace hamlet {
namespace {

TEST(BinningTest, FitComputesRange) {
  EqualWidthBinner b(4);
  ASSERT_TRUE(b.Fit({1.0, 5.0, 3.0}).ok());
  EXPECT_TRUE(b.fitted());
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 5.0);
}

TEST(BinningTest, TransformAssignsEqualWidthBins) {
  EqualWidthBinner b(4);
  ASSERT_TRUE(b.Fit({0.0, 4.0}).ok());
  EXPECT_EQ(b.Transform(0.0), 0u);
  EXPECT_EQ(b.Transform(0.5), 0u);
  EXPECT_EQ(b.Transform(1.5), 1u);
  EXPECT_EQ(b.Transform(2.5), 2u);
  EXPECT_EQ(b.Transform(3.5), 3u);
  EXPECT_EQ(b.Transform(4.0), 3u);  // Max lands in the last bin.
}

TEST(BinningTest, OutOfRangeClamps) {
  EqualWidthBinner b(3);
  ASSERT_TRUE(b.Fit({0.0, 3.0}).ok());
  EXPECT_EQ(b.Transform(-100.0), 0u);
  EXPECT_EQ(b.Transform(100.0), 2u);
}

TEST(BinningTest, ConstantSeriesDegeneratesToBinZero) {
  EqualWidthBinner b(5);
  ASSERT_TRUE(b.Fit({2.0, 2.0, 2.0}).ok());
  EXPECT_EQ(b.Transform(2.0), 0u);
  EXPECT_EQ(b.Transform(99.0), 0u);
}

TEST(BinningTest, EmptyInputRejected) {
  EqualWidthBinner b(3);
  EXPECT_EQ(b.Fit({}).code(), StatusCode::kInvalidArgument);
}

TEST(BinningTest, NonFiniteRejected) {
  EqualWidthBinner b(3);
  EXPECT_FALSE(b.Fit({1.0, std::nan("")}).ok());
  EXPECT_FALSE(
      b.Fit({1.0, std::numeric_limits<double>::infinity()}).ok());
}

TEST(BinningTest, TransformAllMatchesScalar) {
  EqualWidthBinner b(6);
  std::vector<double> values = {0.1, 0.9, 0.4, 0.77, 0.2};
  ASSERT_TRUE(b.Fit(values).ok());
  auto all = b.TransformAll(values);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(all[i], b.Transform(values[i]));
  }
}

TEST(BinningTest, FitTransformToColumnBuildsIntervalDomain) {
  EqualWidthBinner b(2);
  auto col = b.FitTransformToColumn({0.0, 1.0, 0.25}, "v");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->domain_size(), 2u);
  EXPECT_EQ(col->size(), 3u);
  EXPECT_EQ(col->code(0), 0u);
  EXPECT_EQ(col->code(1), 1u);
  EXPECT_EQ(col->code(2), 0u);
  // Labels name the intervals.
  EXPECT_NE(col->domain()->label(0).find("v["), std::string::npos);
}

TEST(BinningTest, MonotoneValuesGetMonotoneBins) {
  EqualWidthBinner b(10);
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble() * 50);
  ASSERT_TRUE(b.Fit(values).ok());
  for (int i = 0; i < 100; ++i) {
    double a = rng.NextDouble() * 50;
    double c = a + rng.NextDouble() * 10;
    EXPECT_LE(b.Transform(a), b.Transform(c));
  }
}

TEST(BinningTest, RoughlyBalancedOnUniformData) {
  EqualWidthBinner b(5);
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextDouble());
  ASSERT_TRUE(b.Fit(values).ok());
  std::vector<int> counts(5, 0);
  for (double v : values) ++counts[b.Transform(v)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(BinningDeathTest, ZeroBinsAborts) {
  EXPECT_DEATH(EqualWidthBinner b(0), "bin");
}

TEST(BinningDeathTest, TransformBeforeFitAborts) {
  EqualWidthBinner b(3);
  EXPECT_DEATH((void)b.Transform(1.0), "Fit");
}

}  // namespace
}  // namespace hamlet
