#include "fs/greedy_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "ml/eval.h"
#include "ml/naive_bayes.h"

namespace hamlet {
namespace {

// Builds a dataset where features 0 and 1 jointly determine Y (plus mild
// noise) and features 2..d-1 are pure noise, with a fixed 50/25/25 split.
struct FsFixture {
  EncodedDataset data;
  HoldoutSplit split;

  explicit FsFixture(uint64_t seed, uint32_t n = 1200,
                     uint32_t num_noise = 3)
      : data(Build(seed, n, num_noise)) {
    Rng rng(seed + 1);
    split = MakeHoldoutSplit(data.num_rows(), rng);
  }

  static EncodedDataset Build(uint64_t seed, uint32_t n,
                              uint32_t num_noise) {
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> feats(2 + num_noise,
                                             std::vector<uint32_t>(n));
    std::vector<uint32_t> y(n);
    std::vector<FeatureMeta> metas = {{"Signal0", 2}, {"Signal1", 2}};
    for (uint32_t j = 0; j < num_noise; ++j) {
      metas.push_back({"Noise" + std::to_string(j), 4});
    }
    for (uint32_t i = 0; i < n; ++i) {
      feats[0][i] = rng.Uniform(2);
      feats[1][i] = rng.Uniform(2);
      for (uint32_t j = 0; j < num_noise; ++j) {
        feats[2 + j][i] = rng.Uniform(4);
      }
      uint32_t target = feats[0][i] | (feats[1][i] << 1);  // 4 classes.
      y[i] = rng.Bernoulli(0.95) ? target : rng.Uniform(4);
    }
    return EncodedDataset(std::move(feats), std::move(metas),
                          std::move(y), 4);
  }
};

TEST(ForwardSelectionTest, FindsSignalFeatures) {
  FsFixture f(1);
  ForwardSelection fs;
  auto result = fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                          ErrorMetric::kZeroOne,
                          f.data.AllFeatureIndices());
  ASSERT_TRUE(result.ok());
  auto& sel = result->selected;
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 0u) != sel.end());
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 1u) != sel.end());
  EXPECT_LT(result->validation_error, 0.15);
}

TEST(ForwardSelectionTest, MostlySkipsNoise) {
  FsFixture f(2);
  ForwardSelection fs;
  auto result = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne,
                           f.data.AllFeatureIndices());
  EXPECT_LE(result.selected.size(), 3u);
}

TEST(ForwardSelectionTest, EmptyCandidatesGivePriorModel) {
  FsFixture f(3);
  ForwardSelection fs;
  auto result = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne, {});
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.models_trained, 1u);
}

TEST(ForwardSelectionTest, CountsTrainedModels) {
  FsFixture f(4);
  ForwardSelection fs;
  auto result = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne,
                           f.data.AllFeatureIndices());
  // At least: 1 baseline + one full pass over 5 candidates.
  EXPECT_GE(result.models_trained, 6u);
}

TEST(BackwardSelectionTest, RetainsSignalDropsSomeNoise) {
  FsFixture f(5);
  BackwardSelection bs;
  auto result = *bs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne,
                           f.data.AllFeatureIndices());
  auto& sel = result.selected;
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 0u) != sel.end());
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 1u) != sel.end());
  EXPECT_LT(sel.size(), f.data.num_features());
  EXPECT_LT(result.validation_error, 0.15);
}

TEST(BackwardSelectionTest, SingleCandidateKept) {
  FsFixture f(6);
  BackwardSelection bs;
  auto result = *bs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne, {0});
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 0u);
}

TEST(GreedySearchTest, ForwardAndBackwardAgreeOnStrongSignal) {
  FsFixture f(7);
  ForwardSelection fs;
  BackwardSelection bs;
  auto fwd = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                        ErrorMetric::kZeroOne,
                        f.data.AllFeatureIndices());
  auto bwd = *bs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                        ErrorMetric::kZeroOne,
                        f.data.AllFeatureIndices());
  // Both must achieve comparable validation error on this easy concept.
  EXPECT_NEAR(fwd.validation_error, bwd.validation_error, 0.05);
}

TEST(GreedySearchTest, Names) {
  EXPECT_EQ(ForwardSelection().name(), "forward_selection");
  EXPECT_EQ(BackwardSelection().name(), "backward_selection");
}

TEST(ForwardSelectionTest, TieBreaksByLowestIndexAtAnyThreadCount) {
  // Features 0 and 1 are byte-identical columns (each alone determines Y
  // up to noise), so their candidate models — and validation errors — are
  // exactly equal. The determinism contract requires the tie to go to the
  // lower feature index no matter how many threads evaluate the step.
  const uint32_t n = 600;
  Rng rng(21);
  std::vector<std::vector<uint32_t>> feats(3, std::vector<uint32_t>(n));
  std::vector<uint32_t> y(n);
  std::vector<FeatureMeta> metas = {{"TwinA", 2}, {"TwinB", 2},
                                    {"Noise0", 4}};
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t bit = rng.Uniform(2);
    feats[0][i] = bit;
    feats[1][i] = bit;  // Exact duplicate of feature 0.
    feats[2][i] = rng.Uniform(4);
    y[i] = rng.Bernoulli(0.9) ? bit : rng.Uniform(2);
  }
  EncodedDataset data(std::move(feats), std::move(metas), std::move(y), 2);
  Rng split_rng(22);
  HoldoutSplit split = MakeHoldoutSplit(data.num_rows(), split_rng);

  SelectionResult reference;
  for (uint32_t threads : {1u, 2u, 7u, 0u}) {
    ForwardSelection fs;
    fs.set_num_threads(threads);
    auto result = *fs.Select(data, split, MakeNaiveBayesFactory(),
                             ErrorMetric::kZeroOne,
                             data.AllFeatureIndices());
    ASSERT_FALSE(result.selected.empty()) << "threads " << threads;
    // The twin with the lower index wins the exact tie.
    EXPECT_EQ(result.selected[0], 0u) << "threads " << threads;
    if (threads == 1u) {
      reference = result;
    } else {
      EXPECT_EQ(result.selected, reference.selected)
          << "threads " << threads;
      EXPECT_EQ(result.validation_error, reference.validation_error)
          << "threads " << threads;
    }
  }
}

// Property sweep: forward selection's validation error never exceeds the
// prior-only baseline, across seeds.
class ForwardNeverWorseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForwardNeverWorseTest, ValidationErrorAtMostBaseline) {
  FsFixture f(GetParam());
  // Baseline: prior-only model.
  auto base = TrainAndScore(MakeNaiveBayesFactory(), f.data, f.split.train,
                            f.split.validation, {}, ErrorMetric::kZeroOne);
  ForwardSelection fs;
  auto result = *fs.Select(f.data, f.split, MakeNaiveBayesFactory(),
                           ErrorMetric::kZeroOne,
                           f.data.AllFeatureIndices());
  EXPECT_LE(result.validation_error, *base + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardNeverWorseTest,
                         ::testing::Range<uint64_t>(10, 18));

}  // namespace
}  // namespace hamlet
