#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace hamlet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ConsecutiveSeedsAreDecorrelated) {
  // SplitMix64 seeding should whiten small seed deltas; check the first
  // draws across seeds 0..999 look uniform-ish in the top bit.
  int ones = 0;
  for (uint64_t s = 0; s < 1000; ++s) {
    Rng r(s);
    ones += (r.NextU32() >> 31) & 1;
  }
  EXPECT_GT(ones, 420);
  EXPECT_LT(ones, 580);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng r(11);
  const uint32_t k = 8;
  std::vector<int> counts(k, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.Uniform(k)];
  for (uint32_t c = 0; c < k; ++c) {
    EXPECT_NEAR(counts[c], n / k, 4 * std::sqrt(n / k));
  }
}

TEST(RngTest, UniformOfOneIsZero) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.Uniform(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng r(23);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng r(29);
  auto perm = r.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng r(31);
  EXPECT_TRUE(r.Permutation(0).empty());
  auto one = r.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, PermutationShuffles) {
  Rng r(37);
  auto perm = r.Permutation(50);
  std::vector<uint32_t> identity(50);
  for (uint32_t i = 0; i < 50; ++i) identity[i] = i;
  EXPECT_NE(perm, identity);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(41);
  Rng c0 = parent.Fork(0);
  Rng c1 = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c0.NextU32() == c1.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng r(43);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({2.0, 6.0, 2.0});
  EXPECT_NEAR(sampler.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.2, 1e-12);
}

TEST(AliasSamplerTest, SamplesMatchDistribution) {
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(w);
  Rng r(47);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(r)];
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(counts[c] / static_cast<double>(n), w[c] / 10.0, 0.01);
  }
}

TEST(AliasSamplerTest, SingleCategory) {
  AliasSampler sampler({5.0});
  Rng r(53);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(r), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng r(59);
  for (int i = 0; i < 5000; ++i) {
    uint32_t s = sampler.Sample(r);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, HandlesLargeSkewedDomains) {
  // Zipf over 10k categories: head category should dominate.
  std::vector<double> w(10000);
  for (size_t i = 0; i < w.size(); ++i) w[i] = 1.0 / (i + 1.0);
  AliasSampler sampler(w);
  Rng r(61);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += sampler.Sample(r) == 0;
  // P(0) = 1/H(10000) ~ 0.102.
  EXPECT_NEAR(head / static_cast<double>(n), 0.102, 0.01);
}

}  // namespace
}  // namespace hamlet
