#include "obs/cost_profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hamlet {
namespace {

obs::OperatorFeatures JoinFeatures(uint64_t rows_in) {
  obs::OperatorFeatures f;
  f.op = "join.kfk";
  f.rows_in = rows_in;
  f.rows_out = rows_in;
  f.build_rows = 1000;
  f.distinct_keys = 1000;
  f.num_threads = 4;
  return f;
}

obs::CostObservation Cost(uint64_t total_ns) {
  obs::CostObservation c;
  c.total_ns = total_ns;
  c.build_ns = total_ns / 4;
  c.probe_ns = total_ns / 2;
  c.materialize_ns = total_ns / 4;
  return c;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CostProfileFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/hamlet_cost_profile_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".json";
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST(CostProfileTest, SameFeaturesAggregateIntoOneRecord) {
  obs::CostProfile profile;
  profile.Add(JoinFeatures(50000), Cost(2000));
  profile.Add(JoinFeatures(50000), Cost(1000));
  profile.Add(JoinFeatures(50000), Cost(3000));
  ASSERT_EQ(profile.size(), 1u);
  const obs::CostRecord& r = profile.records().begin()->second;
  EXPECT_EQ(r.observations, 3u);
  EXPECT_EQ(r.total_ns_sum, 6000u);
  EXPECT_EQ(r.total_ns_min, 1000u);
  EXPECT_EQ(r.total_ns_max, 3000u);
  EXPECT_EQ(r.MeanTotalNs(), 2000u);
  // Different feature vectors open distinct records.
  profile.Add(JoinFeatures(90000), Cost(4000));
  EXPECT_EQ(profile.size(), 2u);
}

TEST(CostProfileTest, KeyIsCanonicalAndSortsByOperator) {
  EXPECT_EQ(JoinFeatures(50000).Key(), "join.kfk|50000|50000|1000|1000|4|0");
  obs::CostProfile profile;
  obs::OperatorFeatures ingest;
  ingest.op = "ingest.csv";
  profile.Add(JoinFeatures(1), Cost(1));
  profile.Add(ingest, Cost(1));
  // std::map ordering: ingest.csv before join.kfk.
  EXPECT_EQ(profile.records().begin()->second.features.op, "ingest.csv");
}

TEST_F(CostProfileFileTest, MergeIntoFileAccumulatesAcrossRuns) {
  // The ISSUE acceptance case: two consecutive runs merging into the
  // same file leave a growing record count — run N+1 folds its window
  // into what run N persisted instead of overwriting it.
  {
    obs::CostProfile run1;
    run1.Add(JoinFeatures(50000), Cost(2000));
    ASSERT_TRUE(run1.SaveToFile(path_).ok());
  }
  obs::CostProfile run2;
  run2.Add(JoinFeatures(50000), Cost(4000));   // Same features: merges.
  run2.Add(JoinFeatures(250000), Cost(9000));  // New features: appends.

  obs::CostProfile on_disk;
  ASSERT_TRUE(on_disk.LoadFromFile(path_).ok());
  EXPECT_EQ(on_disk.size(), 1u);
  on_disk.Merge(run2);
  ASSERT_TRUE(on_disk.SaveToFile(path_).ok());

  obs::CostProfile merged;
  ASSERT_TRUE(merged.LoadFromFile(path_).ok());
  EXPECT_EQ(merged.size(), 2u);
  const obs::CostRecord& r =
      merged.records().at(JoinFeatures(50000).Key());
  EXPECT_EQ(r.observations, 2u);
  EXPECT_EQ(r.total_ns_sum, 6000u);
  EXPECT_EQ(r.total_ns_min, 2000u);
  EXPECT_EQ(r.total_ns_max, 4000u);
}

TEST_F(CostProfileFileTest, LoadMergeSaveRoundTripsBitIdentically) {
  obs::CostProfile profile;
  profile.Add(JoinFeatures(50000), Cost(2000));
  profile.Add(JoinFeatures(250000), Cost(9000));
  obs::OperatorFeatures ingest;
  ingest.op = "ingest.csv";
  ingest.rows_in = 123456;
  ingest.rows_out = 123456;
  ingest.distinct_keys = 27;
  ingest.num_threads = 8;
  profile.Add(ingest, Cost(777777));
  ASSERT_TRUE(profile.SaveToFile(path_).ok());
  const std::string original = ReadWholeFile(path_);
  ASSERT_FALSE(original.empty());

  // load -> merge(empty) -> save must reproduce the file byte for byte:
  // sorted map keys, all-integer fields, deterministic writer.
  obs::CostProfile reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path_).ok());
  reloaded.Merge(obs::CostProfile());
  ASSERT_TRUE(reloaded.SaveToFile(path_).ok());
  EXPECT_EQ(ReadWholeFile(path_), original);
}

TEST_F(CostProfileFileTest, MissingFileIsNotFoundNotAnError) {
  obs::CostProfile profile;
  const Status s = profile.LoadFromFile(path_);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(CostProfileTest, LoaderRejectsNewerSchemaVersions) {
  obs::CostProfile profile;
  profile.Add(JoinFeatures(1), Cost(1));
  std::ostringstream os;
  profile.WriteJson(os);
  std::string text = os.str();
  const std::string version_field = "\"hamlet_cost_profile_version\":1";
  const size_t pos = text.find(version_field);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, version_field.size(),
               "\"hamlet_cost_profile_version\":99");
  obs::CostProfile reloaded;
  const Status s = reloaded.ParseJsonText(text);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(CostProfileTest, ParseRederivesKeysFromFeatures) {
  // Keys in the file are presentation; the loader trusts the parsed
  // feature fields and rebuilds the map key from them, so a hand-edited
  // key cannot desynchronize the map from its records.
  obs::CostProfile profile;
  profile.Add(JoinFeatures(50000), Cost(2000));
  std::ostringstream os;
  profile.WriteJson(os);
  std::string text = os.str();
  const std::string key = JoinFeatures(50000).Key();
  const size_t pos = text.find("\"" + key + "\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, key.size() + 2, "\"bogus-key\"");
  obs::CostProfile reloaded;
  ASSERT_TRUE(reloaded.ParseJsonText(text).ok());
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.records().begin()->first, key);
}

TEST(CostProfileStoreTest, ScopedCollectionClearsTheStore) {
  obs::CostProfileStore::Global().Clear();
  {
    obs::ScopedCollection collection(true);
    obs::CostProfileStore::Global().Record(JoinFeatures(50000), Cost(2000));
    EXPECT_EQ(obs::CostProfileStore::Global().Snapshot().size(), 1u);
  }
  // A new window starts clean: leftover records would pollute the next
  // run's merge.
  obs::ScopedCollection collection(true);
  EXPECT_TRUE(obs::CostProfileStore::Global().Snapshot().empty());
}

TEST_F(CostProfileFileTest, StoreMergeIntoFileKeepsItsRecords) {
  obs::CostProfileStore::Global().Clear();
  obs::CostProfileStore::Global().Record(JoinFeatures(50000), Cost(2000));
  ASSERT_TRUE(obs::CostProfileStore::Global().MergeIntoFile(path_).ok());
  // The store still holds the window (callers may merge into several
  // files), and the file holds the record.
  EXPECT_EQ(obs::CostProfileStore::Global().Snapshot().size(), 1u);
  obs::CostProfile on_disk;
  ASSERT_TRUE(on_disk.LoadFromFile(path_).ok());
  EXPECT_EQ(on_disk.size(), 1u);
  obs::CostProfileStore::Global().Clear();
}

TEST_F(CostProfileFileTest, RadixPhaseTimingsRoundTripThroughJson) {
  // The radix join's extra phases (partition scatter, Bloom build) must
  // survive save -> load -> merge -> save with every integer intact —
  // they are the training data the kAuto algorithm choice reads back.
  obs::OperatorFeatures features;
  features.op = "join.radix";
  features.rows_in = 1u << 20;
  features.rows_out = 9953;
  features.build_rows = 10240;
  features.distinct_keys = 1u << 20;
  features.num_threads = 1;

  obs::CostObservation cost;
  cost.total_ns = 12'600'000;
  cost.build_ns = 3'800'000;
  cost.probe_ns = 800'000;
  cost.materialize_ns = 200'000;
  cost.partition_ns = 7'500'000;
  cost.bloom_build_ns = 60'000;

  obs::CostProfile profile;
  profile.Add(features, cost);
  profile.Add(features, cost);
  ASSERT_TRUE(profile.SaveToFile(path_).ok());

  obs::CostProfile reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path_).ok());
  ASSERT_EQ(reloaded.size(), 1u);
  const obs::CostRecord& r = reloaded.records().at(features.Key());
  EXPECT_EQ(r.observations, 2u);
  EXPECT_EQ(r.partition_ns_sum, 15'000'000u);
  EXPECT_EQ(r.bloom_build_ns_sum, 120'000u);

  // And the loaded profile's writer reproduces the file byte for byte.
  const std::string original = ReadWholeFile(path_);
  ASSERT_TRUE(reloaded.SaveToFile(path_).ok());
  EXPECT_EQ(ReadWholeFile(path_), original);
}

TEST(CostProfileTest, MeanNsPerProbeRowUsesLogScaleNeighborhood) {
  obs::CostProfile profile;
  obs::OperatorFeatures features;
  features.op = "join.radix";
  features.rows_in = 1'000'000;
  features.build_rows = 1'000'000;
  obs::CostObservation cost;
  cost.total_ns = 20'000'000;  // 20ns per probe row.
  profile.Add(features, cost);

  // Within a factor of 4 of the recorded build size: comparable.
  EXPECT_DOUBLE_EQ(profile.MeanNsPerProbeRow("join.radix", 1'000'000), 20.0);
  EXPECT_GT(profile.MeanNsPerProbeRow("join.radix", 3'000'000), 0.0);
  EXPECT_GT(profile.MeanNsPerProbeRow("join.radix", 300'000), 0.0);
  // Outside the neighborhood, or the wrong operator: no estimate.
  EXPECT_EQ(profile.MeanNsPerProbeRow("join.radix", 10'000'000), 0.0);
  EXPECT_EQ(profile.MeanNsPerProbeRow("join.radix", 1'000), 0.0);
  EXPECT_EQ(profile.MeanNsPerProbeRow("join.hash", 1'000'000), 0.0);
}

TEST_F(CostProfileFileTest, CalibrationSeedBacksTheLiveWindow) {
  // Persist a profile, seed it as calibration, and confirm the store
  // answers MeanNsPerProbeRow from it when the live window is empty —
  // the cross-run feedback loop behind JoinAlgorithm::kAuto. A live
  // record for the same operator then takes precedence, and
  // ClearCalibration() forgets the seed (while Clear() does not).
  auto& store = obs::CostProfileStore::Global();
  store.Clear();
  store.ClearCalibration();

  obs::OperatorFeatures features;
  features.op = "join.radix";
  features.rows_in = 1'000'000;
  features.build_rows = 1'000'000;
  obs::CostObservation seeded;
  seeded.total_ns = 40'000'000;  // 40ns per probe row.
  {
    obs::CostProfile profile;
    profile.Add(features, seeded);
    ASSERT_TRUE(profile.SaveToFile(path_).ok());
  }
  ASSERT_TRUE(store.SeedCalibrationFromFile(path_).ok());
  EXPECT_DOUBLE_EQ(store.MeanNsPerProbeRow("join.radix", 1'000'000), 40.0);

  // Clear() resets the live window only; the calibration seed survives.
  store.Clear();
  EXPECT_DOUBLE_EQ(store.MeanNsPerProbeRow("join.radix", 1'000'000), 40.0);

  // A live measurement shadows the seed.
  obs::CostObservation live;
  live.total_ns = 10'000'000;  // 10ns per probe row.
  store.Record(features, live);
  EXPECT_DOUBLE_EQ(store.MeanNsPerProbeRow("join.radix", 1'000'000), 10.0);

  store.Clear();
  store.ClearCalibration();
  EXPECT_EQ(store.MeanNsPerProbeRow("join.radix", 1'000'000), 0.0);

  // Seeding from a missing file reports NotFound and leaves no seed.
  std::remove(path_.c_str());
  EXPECT_EQ(store.SeedCalibrationFromFile(path_).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.MeanNsPerProbeRow("join.radix", 1'000'000), 0.0);
}

}  // namespace
}  // namespace hamlet
