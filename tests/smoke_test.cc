#include <gtest/gtest.h>

#include "common/status.h"

TEST(Smoke, StatusOk) { EXPECT_TRUE(hamlet::Status::OK().ok()); }
