#include "datasets/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/advisor.h"

namespace hamlet {
namespace {

TEST(RegistryTest, SevenDatasetsInPaperOrder) {
  auto names = AllDatasetNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "Walmart");
  EXPECT_EQ(names[6], "BookCrossing");
}

TEST(RegistryTest, SpecLookup) {
  for (const auto& name : AllDatasetNames()) {
    auto spec = DatasetSpecByName(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->name, name);
  }
  EXPECT_FALSE(DatasetSpecByName("Nope").ok());
}

TEST(RegistryTest, MetricsMatchPaper) {
  EXPECT_EQ(*MetricForDataset("Expedia"), ErrorMetric::kZeroOne);
  EXPECT_EQ(*MetricForDataset("Flights"), ErrorMetric::kZeroOne);
  for (const char* rmse :
       {"Walmart", "Yelp", "MovieLens1M", "LastFM", "BookCrossing"}) {
    EXPECT_EQ(*MetricForDataset(rmse), ErrorMetric::kRmse) << rmse;
  }
}

// Figure 6 schema statistics, parameterized over datasets.
struct Fig6Row {
  const char* name;
  uint32_t num_classes;
  uint32_t n_s, d_s;
  uint32_t k, k_closed;
  std::vector<std::pair<uint32_t, uint32_t>> tables;  // (n_Ri, d_Ri).
};

class Figure6Test : public ::testing::TestWithParam<Fig6Row> {};

TEST_P(Figure6Test, SpecMatchesPaperStatistics) {
  const Fig6Row& row = GetParam();
  auto spec = *DatasetSpecByName(row.name);
  EXPECT_EQ(spec.num_classes, row.num_classes);
  EXPECT_EQ(spec.n_s, row.n_s);
  EXPECT_EQ(spec.s_features.size(), row.d_s);
  ASSERT_EQ(spec.tables.size(), row.k);
  uint32_t closed = 0;
  for (size_t i = 0; i < spec.tables.size(); ++i) {
    EXPECT_EQ(spec.tables[i].num_rows, row.tables[i].first)
        << row.name << " table " << i;
    EXPECT_EQ(spec.tables[i].features.size(), row.tables[i].second)
        << row.name << " table " << i;
    closed += spec.tables[i].closed_domain;
  }
  EXPECT_EQ(closed, row.k_closed);
}

INSTANTIATE_TEST_SUITE_P(
    PaperFigure6, Figure6Test,
    ::testing::Values(
        Fig6Row{"Walmart", 7, 421570, 1, 2, 2, {{2340, 9}, {45, 2}}},
        Fig6Row{"Expedia", 2, 942142, 6, 2, 1,
                {{11939, 8}, {37021, 14}}},
        Fig6Row{"Flights", 2, 66548, 20, 3, 3,
                {{540, 5}, {3182, 6}, {3182, 6}}},
        Fig6Row{"Yelp", 5, 215879, 0, 2, 2, {{11537, 32}, {43873, 6}}},
        Fig6Row{"MovieLens1M", 5, 1000209, 0, 2, 2,
                {{3706, 21}, {6040, 4}}},
        Fig6Row{"LastFM", 5, 343747, 0, 2, 2, {{4999, 7}, {50000, 4}}},
        Fig6Row{"BookCrossing", 5, 253120, 0, 2, 2,
                {{27876, 2}, {49972, 4}}}),
    [](const ::testing::TestParamInfo<Fig6Row>& info) {
      return info.param.name;
    });

// The advisor's per-dataset decisions must reproduce the paper's
// (Figures 7/8): which joins JoinOpt avoided on each dataset.
struct DecisionRow {
  const char* name;
  std::vector<const char*> avoided;
};

class PaperDecisionTest : public ::testing::TestWithParam<DecisionRow> {};

TEST_P(PaperDecisionTest, AdvisorReproducesPaperPlan) {
  const DecisionRow& row = GetParam();
  auto ds = MakeDataset(row.name, /*scale=*/0.05, /*seed=*/42);
  ASSERT_TRUE(ds.ok()) << ds.status();
  auto plan = AdviseJoins(*ds);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<std::string> avoided = plan->fks_avoided;
  std::sort(avoided.begin(), avoided.end());
  std::vector<std::string> expected(row.avoided.begin(),
                                    row.avoided.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(avoided, expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSection5, PaperDecisionTest,
    ::testing::Values(
        DecisionRow{"Walmart", {"IndicatorID", "StoreID"}},
        DecisionRow{"Expedia", {"HotelID"}},  // SearchID is open-domain.
        DecisionRow{"Flights", {"AirlineID"}},
        DecisionRow{"Yelp", {}},
        DecisionRow{"MovieLens1M", {"MovieID", "UserID"}},
        DecisionRow{"LastFM", {"ArtistID"}},
        DecisionRow{"BookCrossing", {}}),
    [](const ::testing::TestParamInfo<DecisionRow>& info) {
      return info.param.name;
    });

TEST(RegistryTest, GeneratedDatasetsValidate) {
  for (const auto& name : AllDatasetNames()) {
    auto ds = MakeDataset(name, 0.02, 1);
    ASSERT_TRUE(ds.ok()) << name << ": " << ds.status();
    EXPECT_TRUE(ds->entity().Validate().ok()) << name;
    for (const auto& r : ds->attribute_tables()) {
      EXPECT_TRUE(r.Validate().ok()) << name << "/" << r.name();
    }
    EXPECT_TRUE(ds->JoinAll().ok()) << name;
  }
}

TEST(RegistryTest, LabelEntropyPassesSkewGuardEverywhere) {
  // The decisions above only follow the TR rule if H(Y) >= 0.5 bits.
  for (const auto& name : AllDatasetNames()) {
    auto ds = *MakeDataset(name, 0.02, 1);
    auto plan = *AdviseJoins(ds);
    EXPECT_TRUE(plan.skew_guard.passes) << name;
  }
}

}  // namespace
}  // namespace hamlet
