#include "theory/bias_variance.h"

#include <gtest/gtest.h>

namespace hamlet {
namespace {

TEST(BiasVarianceTest, PerfectStableModelHasOnlyNoise) {
  // Two test points, P(Y=1|x) = 0.9 / 0.1; every model predicts the
  // optimal class.
  std::vector<std::vector<double>> cond = {{0.1, 0.9}, {0.9, 0.1}};
  std::vector<std::vector<uint32_t>> preds = {{1, 0}, {1, 0}, {1, 0}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_DOUBLE_EQ(r.avg_bias, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_variance, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_net_variance, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_noise, 0.1);
  EXPECT_DOUBLE_EQ(r.avg_test_error, 0.1);
  EXPECT_EQ(r.num_points, 2u);
}

TEST(BiasVarianceTest, SystematicallyWrongModelIsPureBias) {
  std::vector<std::vector<double>> cond = {{0.0, 1.0}};
  std::vector<std::vector<uint32_t>> preds = {{0}, {0}, {0}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_DOUBLE_EQ(r.avg_bias, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_variance, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_test_error, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_noise, 0.0);
}

TEST(BiasVarianceTest, UnstableModelShowsVariance) {
  // 4 models: predictions 1, 1, 1, 0 at a point whose truth is 1 surely.
  std::vector<std::vector<double>> cond = {{0.0, 1.0}};
  std::vector<std::vector<uint32_t>> preds = {{1}, {1}, {1}, {0}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_DOUBLE_EQ(r.avg_bias, 0.0);        // Main prediction = 1 = optimal.
  EXPECT_DOUBLE_EQ(r.avg_variance, 0.25);   // One dissent in four.
  EXPECT_DOUBLE_EQ(r.avg_net_variance, 0.25);  // Unbiased: (1-0)*V.
  EXPECT_DOUBLE_EQ(r.avg_test_error, 0.25);
}

TEST(BiasVarianceTest, NetVarianceFlipsSignOnBiasedPoints) {
  // Main prediction wrong (bias 1); dissenting models are actually right,
  // so variance *reduces* the error: net variance = (1-2B)V = -V.
  std::vector<std::vector<double>> cond = {{0.0, 1.0}};
  std::vector<std::vector<uint32_t>> preds = {{0}, {0}, {0}, {1}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_DOUBLE_EQ(r.avg_bias, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_variance, 0.25);
  EXPECT_DOUBLE_EQ(r.avg_net_variance, -0.25);
  // Eq. (1): error = B + (1-2B)V + noise = 1 - 0.25 = 0.75.
  EXPECT_DOUBLE_EQ(r.avg_test_error, 0.75);
}

TEST(BiasVarianceTest, DecompositionIdentityHoldsWithoutNoise) {
  // With deterministic conditionals, error = B + (1-2B)V exactly
  // (two-class case, Domingos 2000).
  std::vector<std::vector<double>> cond = {{1.0, 0.0}, {0.0, 1.0},
                                           {1.0, 0.0}};
  std::vector<std::vector<uint32_t>> preds = {{0, 1, 1}, {0, 0, 1},
                                              {1, 1, 0}, {0, 1, 1}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_NEAR(r.avg_test_error, r.avg_bias + r.avg_net_variance, 1e-12);
}

TEST(BiasVarianceTest, MulticlassMainPredictionIsMode) {
  std::vector<std::vector<double>> cond = {{0.2, 0.2, 0.6}};
  std::vector<std::vector<uint32_t>> preds = {{2}, {1}, {2}, {0}, {2}};
  auto r = DecomposeBiasVariance(preds, cond);
  EXPECT_DOUBLE_EQ(r.avg_bias, 0.0);           // Mode 2 = optimal 2.
  EXPECT_DOUBLE_EQ(r.avg_variance, 0.4);       // 2 of 5 dissent.
  EXPECT_DOUBLE_EQ(r.avg_noise, 0.4);          // 1 - 0.6.
}

TEST(BiasVarianceTest, AccumulatorMatchesBatch) {
  std::vector<std::vector<double>> cond = {{0.3, 0.7}, {0.8, 0.2}};
  std::vector<std::vector<uint32_t>> preds = {{1, 0}, {0, 0}, {1, 1}};
  auto batch = DecomposeBiasVariance(preds, cond);
  BiasVarianceAccumulator acc(cond);
  for (const auto& p : preds) acc.AddModel(p);
  auto streamed = acc.Finalize();
  EXPECT_DOUBLE_EQ(batch.avg_test_error, streamed.avg_test_error);
  EXPECT_DOUBLE_EQ(batch.avg_bias, streamed.avg_bias);
  EXPECT_DOUBLE_EQ(batch.avg_variance, streamed.avg_variance);
  EXPECT_DOUBLE_EQ(batch.avg_net_variance, streamed.avg_net_variance);
  EXPECT_DOUBLE_EQ(batch.avg_noise, streamed.avg_noise);
}

TEST(BiasVarianceDeathTest, EmptyTestSetAborts) {
  EXPECT_DEATH(BiasVarianceAccumulator acc({}), "test point");
}

TEST(BiasVarianceDeathTest, WrongPredictionLengthAborts) {
  BiasVarianceAccumulator acc({{0.5, 0.5}});
  EXPECT_DEATH(acc.AddModel({0, 1}), "predicted");
}

TEST(BiasVarianceDeathTest, FinalizeWithoutModelsAborts) {
  BiasVarianceAccumulator acc({{0.5, 0.5}});
  EXPECT_DEATH((void)acc.Finalize(), "no models");
}

}  // namespace
}  // namespace hamlet
