#!/usr/bin/env python3
"""Compares two google-benchmark JSON files and fails on regressions.

Usage: compare_bench.py OLD.json NEW.json [--threshold 0.10]

Benchmarks are matched by full name ("BM_Foo/25"). Only the feature
selection / Naive Bayes microbenches gate (see GATED below) — the rest of
the suite is reported but informational, since e.g. the obs probes sit at
nanosecond scale where scheduler noise swamps any real signal. Exits
nonzero when any gated benchmark's real_time regressed by more than the
threshold (default +10%).
"""

import argparse
import json
import re
import sys

# The perf-gated families: candidate evaluation and model training, the
# paths BENCH trajectories track across PRs (docs/PERFORMANCE.md), plus
# the serving stack's serde and batched-scoring paths plus the closed-
# loop load harness's sustained-throughput entries (docs/SERVING.md:
# BM_ServeLoad*, recorded by scripts/run_benchmarks.sh --serve-load as
# ns per scored row so a throughput drop reads as a real_time
# regression),
# the data-plane ingest/join fast paths (docs/PERFORMANCE.md "Ingest
# & join fast path" and "Join algorithm matrix": BM_ReadCsv*,
# BM_HashJoin*, BM_KfkJoin, BM_RadixHashJoin, BM_BloomFilterProbe), the
# factorized-learning family (docs/PERFORMANCE.md "Factorized training":
# BM_Factorized*, BM_MaterializedStatsBuild), and the observability cost
# contract (docs/OBSERVABILITY.md: BM_HistogramRecord* — the prefix
# covers both the disabled probe path and its Enabled twin — and
# BM_TraceSpanPropagated, the cross-thread span propagation overhead).
GATED = re.compile(
    r"^BM_(NBTrain|NaiveBayesTrain|GreedyForward|ForwardSelection"
    r"|MiFilterScoring|SerdeSave|SerdeLoad|ServeScore|ServeLoad"
    r"|ReadCsv|HashJoin|KfkJoin|RadixHashJoin|BloomFilterProbe"
    r"|Factorized|MaterializedStatsBuild"
    r"|HistogramRecord|TraceSpanPropagated"
    r"|TreeTrain|GbtTrain)"
)


def build_type(path):
    """Hamlet's own build type recorded in a BENCH file's context.

    The binary stamps "hamlet_build_type" via AddCustomContext (the stock
    "library_build_type" key only describes libbenchmark's build, which
    the distro ships as debug). BENCH files from before the stamp exist
    and report "unknown" — comparisons against them stay allowed, with a
    warning, so history remains usable.
    """
    with open(path) as f:
        doc = json.load(f)
    return doc.get("context", {}).get("hamlet_build_type", "unknown")


def load(path):
    """Loads {base name -> entry}, preferring median aggregates.

    Files recorded with --benchmark_repetitions carry aggregate entries
    (mean/median/stddev/cv) whose run_name is the base benchmark name;
    the median is robust to the scheduler noise a single run picks up on
    a busy host, so it wins over raw entries when both exist. Raw-format
    files (one entry per benchmark, no aggregates) load unchanged, so
    old and new BENCH files stay comparable across the format change.
    """
    with open(path) as f:
        doc = json.load(f)
    raw = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        base = b.get("run_name", b["name"])
        if b.get("error_occurred"):
            # Skipped variants (e.g. BM_FactorizedVsMaterialized's 10M-row
            # arm without HAMLET_BENCH_LARGE=1) record real_time 0, which
            # would read as an infinite regression.
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[base] = b
            continue
        raw[base] = b
    out = raw
    out.update(medians)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed real_time regression fraction")
    args = parser.parse_args()

    bt_old, bt_new = build_type(args.old), build_type(args.new)
    if "unknown" in (bt_old, bt_new):
        print("compare_bench: warning: build type unknown for "
              f"{args.old if bt_old == 'unknown' else args.new} "
              "(recorded before hamlet_build_type was stamped); "
              "comparing anyway", file=sys.stderr)
    elif bt_old != bt_new:
        print(f"compare_bench: refusing to compare {args.old} "
              f"(hamlet_build_type={bt_old}) against {args.new} "
              f"(hamlet_build_type={bt_new}): debug-vs-release ratios "
              "are meaningless", file=sys.stderr)
        return 2

    old = load(args.old)
    new = load(args.new)
    common = [name for name in new if name in old]
    if not common:
        print("compare_bench: no common benchmarks between "
              f"{args.old} and {args.new}", file=sys.stderr)
        return 2

    regressions = []
    print(f"{'benchmark':<44} {'old':>12} {'new':>12} {'ratio':>7}  gated")
    for name in common:
        t_old = old[name]["real_time"]
        t_new = new[name]["real_time"]
        ratio = t_new / t_old if t_old > 0 else float("inf")
        gated = bool(GATED.match(name))
        unit = new[name].get("time_unit", "ns")
        flag = "yes" if gated else "-"
        marker = ""
        if gated and ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            marker = "  << REGRESSION"
        print(f"{name:<44} {t_old:>10.1f}{unit:>2} {t_new:>10.1f}{unit:>2} "
              f"{ratio:>6.2f}x  {flag}{marker}")

    # A gated benchmark silently disappearing from the new file is how a
    # perf gate stops gating — e.g. a rename or a deleted registration
    # would otherwise pass every future comparison. Shout, don't note.
    missing = sorted(
        name for name in old if name not in new and GATED.match(name))
    if missing:
        print(f"\ncompare_bench: WARNING: {len(missing)} gated "
              f"benchmark(s) present in {args.old} but MISSING from "
              f"{args.new} — these paths are no longer perf-gated:",
              file=sys.stderr)
        for name in missing:
            print(f"  MISSING GATED: {name}", file=sys.stderr)

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} gated regression(s) "
              f"beyond +{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: no gated regressions beyond "
          f"+{args.threshold:.0%} ({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
