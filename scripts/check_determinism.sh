#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer (HAMLET_SANITIZE=thread) and runs
# the threading + determinism suites: the thread pool contract, the
# ParallelFor exception/no-op/coverage tests, the bit-for-bit determinism
# regressions for search/filters/Monte Carlo, the greedy tie-break, and
# the factorized-vs-materialized equivalence sweep (every Factorized*
# suite, including the avoid-materialization pipeline end to end).
# A second pass runs the obs-labeled suite under TSAN: the telemetry
# pipeline's lock-free sharded histograms, cross-thread span
# propagation, and concurrent registry snapshots (the writer-storm test)
# are exactly the code most likely to hide a data race.
# A third pass runs the joins-labeled suite (tests/radix_join_test.cc)
# under TSAN: the radix partitioner's two-pass parallel scatter, the
# Bloom filter's relaxed-atomic parallel build, and the per-partition
# join passes all write shared arrays from ParallelFor workers.
# A fourth pass runs the sharded serving data plane
# (tests/service_shard_determinism_test.cc + the artifact store's
# concurrent shared-lock hit tests): N dispatcher threads draining MPSC
# queues, load shedding, deadline expiry, the generation-validated warm
# model cache, and the closed-loop load harness — the serving stack's
# cross-thread hand-offs.
#
# Usage: scripts/check_determinism.sh [extra ctest args...]
# Env:   BUILD_DIR (default build-tsan), JOBS (default nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHAMLET_SANITIZE=thread \
  -DHAMLET_BUILD_BENCHMARKS=OFF \
  -DHAMLET_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j"${JOBS}"

# Everything whose name binds it to the threading/determinism contract.
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ThreadPool|ParallelFor|Determinism|TieBreak|ThreadInvariant|ParallelSearch|Factorized' \
  "$@"

# The observability suite (metrics/trace/exporter/cost-profile tests,
# label `obs`) under the same TSAN build.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L obs "$@"

# The join engine lockdown (radix partitioner, Bloom filter, radix-vs-CSR
# equivalence, label `joins`) under the same TSAN build.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L joins "$@"

# The sharded scoring data plane (multi-queue dispatch, admission
# control, warm cache) and the artifact store's concurrent hit path.
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ShardedServiceTest|ServiceTest|ArtifactStoreTest' "$@"
