#!/usr/bin/env bash
# Builds the google-benchmark targets in Release and runs the
# microbenchmark suite with JSON output, writing BENCH_<date>.json at the
# repo root (see docs/DEVELOPMENT.md "Benchmarks"). Pass a filter regex
# to run a subset, e.g.:
#
#   scripts/run_benchmarks.sh                    # everything
#   scripts/run_benchmarks.sh 'BM_TraceSpan.*'   # just the obs probes
#
# --compare additionally diffs the fresh BENCH json against the most
# recent previous one (scripts/compare_bench.py) and exits nonzero on a
# >10% real_time regression in the gated microbenches (the FS/NB
# families, the serving stack's BM_SerdeSave/Load and BM_ServeScore* —
# see docs/SERVING.md — the ingest/join fast paths BM_ReadCsv*,
# BM_HashJoin*, BM_KfkJoin, the factorized-learning family
# BM_Factorized* / BM_MaterializedStatsBuild — see docs/PERFORMANCE.md —
# and the tree training family BM_TreeTrain* / BM_GbtTrain* — see
# docs/TREES.md; BM_FactorizedVsMaterialized's 10M-row variant and
# BM_GbtTrain's 1M-row arm additionally need HAMLET_BENCH_LARGE=1):
#
#   scripts/run_benchmarks.sh --compare          # run + regression gate
#
# --serve-load additionally builds and runs the closed-loop serve-load
# harness (bench/serve_load.cc) and merges its google-benchmark-format
# output — the BM_ServeLoadSustained/{baseline,sharded} entries, whose
# real_time is ns per scored row, plus a structured "serve_load"
# section — into the same BENCH file, so the --compare gate covers
# sustained serving throughput too (a >10% scores/s drop reads as a
# >10% real_time regression; see docs/SERVING.md "Load harness"):
#
#   scripts/run_benchmarks.sh --serve-load --compare
#
# Env: BUILD_DIR (default build-bench), JOBS (default nproc),
#      OUT (default BENCH_<YYYY-MM-DD>.json),
#      COMPARE_THRESHOLD (default 0.10), REPETITIONS (default 3; the
#      JSON records mean/median/stddev/cv aggregates and the gate
#      compares medians — raw-format BENCH files from before the
#      repetition change still compare fine).
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
SERVE_LOAD=0
while [[ "${1:-}" == "--compare" || "${1:-}" == "--serve-load" ]]; do
  if [[ "$1" == "--compare" ]]; then COMPARE=1; else SERVE_LOAD=1; fi
  shift
done

BUILD_DIR=${BUILD_DIR:-build-bench}
JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-BENCH_$(date +%Y-%m-%d).json}
FILTER=${1:-.}
COMPARE_THRESHOLD=${COMPARE_THRESHOLD:-0.10}

# Before overwriting today's file, remember the newest BENCH json as the
# comparison baseline (lexicographic order == chronological order).
PREV=""
if [[ "${COMPARE}" == 1 ]]; then
  PREV=$(ls BENCH_*.json 2>/dev/null | grep -vFx "${OUT}" | sort | tail -1 \
         || true)
fi

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DHAMLET_BUILD_BENCHMARKS=ON \
  -DHAMLET_BUILD_EXAMPLES=OFF
BENCH_TARGETS=(micro_benchmarks tree_benchmarks)
if [[ "${SERVE_LOAD}" == 1 ]]; then
  BENCH_TARGETS+=(serve_load)
fi
cmake --build "${BUILD_DIR}" -j"${JOBS}" \
  $(printf -- '--target %s ' "${BENCH_TARGETS[@]}")

# Three repetitions, medians recorded: single runs on a shared (noisy)
# host swing short benches by 10-30%; compare_bench.py gates on the
# median aggregate, which is stable run to run. The gated suite spans
# two binaries (micro_benchmarks + tree_benchmarks — the tree/GBT
# training paths live in their own binary, docs/TREES.md); each writes
# its own JSON and the two are merged into one BENCH file so the
# compare gate sees every gated family in a single place.
PARTS=()
for BIN in micro_benchmarks tree_benchmarks; do
  PART="${OUT}.${BIN}.part"
  "${BUILD_DIR}/bench/${BIN}" \
    --benchmark_filter="${FILTER}" \
    --benchmark_repetitions="${REPETITIONS:-3}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="${PART}" \
    --benchmark_out_format=json
  PARTS+=("${PART}")
done

# The serve-load harness is not a google-benchmark binary (it drives a
# wall-clock closed loop, not a timed inner loop) but writes the same
# JSON shape: BM_ServeLoadSustained/* entries with real_time = ns per
# scored row, plus a "serve_load" section the merge carries through.
if [[ "${SERVE_LOAD}" == 1 ]]; then
  PART="${OUT}.serve_load.part"
  "${BUILD_DIR}/bench/serve_load" \
    --duration="${SERVE_LOAD_DURATION:-1.5}" \
    --clients="${SERVE_LOAD_CLIENTS:-8}" \
    --out="${PART}"
  PARTS+=("${PART}")
fi

python3 - "${OUT}" "${PARTS[@]}" <<'EOF'
import json, sys
out, parts = sys.argv[1], sys.argv[2:]
docs = [json.load(open(p)) for p in parts]
merged = docs[0]
for doc in docs[1:]:
    theirs = doc.get("context", {}).get("hamlet_build_type")
    ours = merged.get("context", {}).get("hamlet_build_type")
    if theirs != ours:
        sys.exit(f"refusing to merge: hamlet_build_type {ours} vs {theirs}")
    merged["benchmarks"].extend(doc.get("benchmarks", []))
    if "serve_load" in doc:
        merged["serve_load"] = doc["serve_load"]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
EOF
rm -f "${PARTS[@]}"

echo "Wrote ${OUT}"

# Provenance check: the benchmark binary records hamlet's own build type
# in the JSON context as "hamlet_build_type" (the stock
# "library_build_type" key describes how *libbenchmark* was compiled —
# the distro package is a debug build, so that key always says "debug"
# and proves nothing about hamlet). A debug-built hamlet produces
# numbers that are meaningless to compare; fail loudly rather than let
# them land in a BENCH file.
HAMLET_BUILD_TYPE=$(python3 - "${OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    print(json.load(f).get("context", {}).get("hamlet_build_type", "unknown"))
EOF
)
if [[ "${HAMLET_BUILD_TYPE}" != "release" ]]; then
  echo "ERROR: ${OUT} was produced by a '${HAMLET_BUILD_TYPE}' hamlet" >&2
  echo "build; benchmarks must run with CMAKE_BUILD_TYPE=Release" >&2
  echo "(delete ${BUILD_DIR} if its cache pinned another build type)." >&2
  rm -f "${OUT}"
  exit 1
fi
echo "Provenance: hamlet_build_type=${HAMLET_BUILD_TYPE}"

if [[ "${COMPARE}" == 1 ]]; then
  if [[ -z "${PREV}" ]]; then
    echo "No previous BENCH_*.json to compare against; skipping the gate."
  else
    echo "Comparing ${PREV} -> ${OUT}"
    python3 scripts/compare_bench.py "${PREV}" "${OUT}" \
      --threshold "${COMPARE_THRESHOLD}"
  fi
fi
