#!/usr/bin/env bash
# Builds the google-benchmark targets in Release and runs the
# microbenchmark suite with JSON output, writing BENCH_<date>.json at the
# repo root (see docs/DEVELOPMENT.md "Benchmarks"). Pass a filter regex
# to run a subset, e.g.:
#
#   scripts/run_benchmarks.sh                    # everything
#   scripts/run_benchmarks.sh 'BM_TraceSpan.*'   # just the obs probes
#
# Env: BUILD_DIR (default build-bench), JOBS (default nproc),
#      OUT (default BENCH_<YYYY-MM-DD>.json).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-BENCH_$(date +%Y-%m-%d).json}
FILTER=${1:-.}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DHAMLET_BUILD_BENCHMARKS=ON \
  -DHAMLET_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j"${JOBS}" --target micro_benchmarks

"${BUILD_DIR}/bench/micro_benchmarks" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json

echo "Wrote ${OUT}"
