#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every figure/table
# harness, microbenches. Outputs land in test_output.txt and
# bench_output.txt at the repo root. Pass --full for paper-scale data
# (scale 1.0 and 100x100 Monte Carlo; much slower).
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA="${1:-}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" $EXTRA 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "Done. See test_output.txt and bench_output.txt."
