#ifndef HAMLET_HAMLET_H_
#define HAMLET_HAMLET_H_

/// \file hamlet.h
/// Umbrella header: the whole public API in one include, organized the
/// way the paper is. Downstream users who want a single entry point can
/// `#include "hamlet.h"`; the individual headers remain the
/// finer-grained option.

// Shared runtime (deterministic parallelism substrate).
#include "common/bloom.h"              // Blocked Bloom semi-join filter.
#include "common/parallel_for.h"       // Indexed data-parallel loops.
#include "common/radix_partition.h"    // Deterministic radix scatter.
#include "common/thread_pool.h"        // Persistent shared worker pool.

// Observability (tracing, metrics, explain-style run reports).
#include "common/json_writer.h"        // Hand-rolled JSON serializer.
#include "obs/cost_profile.h"          // Persisted operator cost records.
#include "obs/exporter.h"              // JSONL + Prometheus export.
#include "obs/metrics.h"               // Counters + latency histograms.
#include "obs/report.h"                // Explain tree + Chrome JSON.
#include "obs/trace.h"                 // RAII spans + collection switch.

// Relational substrate (Section 2.1's data model).
#include "relational/catalog.h"        // NormalizedDataset (S + R_i).
#include "relational/cold_start.h"     // "Others" key absorption.
#include "relational/csv.h"            // Ingestion/export.
#include "relational/functional_deps.h"  // Corollary C.1 machinery.
#include "relational/join.h"           // KFK + hash joins.
#include "relational/radix_join.h"     // Radix-partitioned join path.
#include "relational/select.h"         // Row selection.
#include "relational/table.h"

// Statistics and data preparation (Sections 2.2, 3.1).
#include "data/encoded_dataset.h"
#include "data/splits.h"               // Holdout + k-fold.
#include "stats/binning.h"
#include "stats/confusion.h"
#include "stats/info_theory.h"
#include "stats/metrics.h"

// Classifiers and feature selection (Sections 2.2, 5).
#include "fs/exhaustive_search.h"
#include "fs/filters.h"
#include "fs/greedy_search.h"
#include "fs/runner.h"
#include "ml/decision_tree.h"          // Histogram CART (high capacity).
#include "ml/eval.h"
#include "ml/factorized.h"             // Train over (S, R) without the join.
#include "ml/gbt.h"                    // Gradient-boosted trees.
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/tan.h"

// Learning theory (Section 3.2).
#include "theory/bias_variance.h"
#include "theory/generalization_bound.h"
#include "theory/multiclass_dimension.h"
#include "theory/vc_dimension.h"

// The paper's contribution (Section 4).
#include "core/advisor.h"
#include "core/calibration.h"
#include "core/decision_rules.h"
#include "core/fk_skew.h"
#include "core/generalized_avoidance.h"
#include "core/ror.h"
#include "core/skew_guard.h"
#include "core/tuple_ratio.h"

// Simulation study (Section 4.1, Appendix D).
#include "sim/data_synthesis.h"
#include "sim/monte_carlo.h"
#include "sim/scenario.h"

// Evaluation corpus and the analyst-facing pipeline (Sections 5, 5.4).
#include "analytics/pipeline.h"
#include "datasets/registry.h"

// Serving (docs/SERVING.md): versioned binary serde, the artifact
// store, and the in-process scoring + join-advice service.
#include "common/crc32.h"
#include "serve/artifact_store.h"
#include "serve/serde.h"
#include "serve/service.h"

#endif  // HAMLET_HAMLET_H_
