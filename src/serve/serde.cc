#include "serve/serde.h"

#include <bit>
#include <cstring>
#include <fstream>

#include "common/crc32.h"
#include "common/string_util.h"

namespace hamlet::serve {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'L', 'T'};

/// Tag strings, indexed by SerdeError (kNone unused).
const char* SerdeErrorTag(SerdeError error) {
  switch (error) {
    case SerdeError::kNone:
      return "none";
    case SerdeError::kBadMagic:
      return "bad_magic";
    case SerdeError::kBadVersion:
      return "bad_version";
    case SerdeError::kBadKind:
      return "bad_kind";
    case SerdeError::kKindMismatch:
      return "kind_mismatch";
    case SerdeError::kTruncated:
      return "truncated";
    case SerdeError::kTrailingBytes:
      return "trailing_bytes";
    case SerdeError::kCrcMismatch:
      return "crc_mismatch";
    case SerdeError::kMalformed:
      return "malformed";
  }
  return "none";
}

/// Builds the typed Status for a serde failure: a per-class StatusCode
/// plus the "serde/<tag>:" prefix SerdeErrorOf() parses back.
Status SerdeStatus(SerdeError error, std::string detail) {
  std::string msg = StringFormat("serde/%s: %s", SerdeErrorTag(error),
                                 detail.c_str());
  switch (error) {
    case SerdeError::kBadVersion:
    case SerdeError::kKindMismatch:
      return Status::FailedPrecondition(std::move(msg));
    case SerdeError::kTruncated:
      return Status::OutOfRange(std::move(msg));
    case SerdeError::kCrcMismatch:
      return Status::IOError(std::move(msg));
    default:
      return Status::InvalidArgument(std::move(msg));
  }
}

/// Little-endian byte-level writer for payloads and the envelope.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) {
    PutU8(static_cast<uint8_t>(v));
    PutU8(static_cast<uint8_t>(v >> 8));
  }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutF64(double v) { PutU64(std::bit_cast<uint64_t>(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void PutVecU32(const std::vector<uint32_t>& v) {
    PutU64(v.size());
    for (uint32_t x : v) PutU32(x);
  }
  void PutVecI32(const std::vector<int32_t>& v) {
    PutU64(v.size());
    for (int32_t x : v) PutU32(static_cast<uint32_t>(x));
  }
  void PutVecF64(const std::vector<double>& v) {
    PutU64(v.size());
    for (double x : v) PutF64(x);
  }

  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Little-endian reader over a validated payload. Reads past the end
/// return kMalformed (the envelope's size and CRC already passed, so a
/// short payload means schema violation, not truncation in transit).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* out) {
    if (pos_ + 1 > bytes_.size()) return Short("u8");
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }
  Status GetU16(uint16_t* out) {
    if (pos_ + 2 > bytes_.size()) return Short("u16");
    *out = 0;
    for (int i = 0; i < 2; ++i) {
      *out |= static_cast<uint16_t>(static_cast<uint8_t>(bytes_[pos_++]))
              << (8 * i);
    }
    return Status::OK();
  }
  Status GetU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return Short("u32");
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      *out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
              << (8 * i);
    }
    return Status::OK();
  }
  Status GetU64(uint64_t* out) {
    if (pos_ + 8 > bytes_.size()) return Short("u64");
    *out = 0;
    for (int i = 0; i < 8; ++i) {
      *out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
              << (8 * i);
    }
    return Status::OK();
  }
  Status GetF64(double* out) {
    uint64_t bits = 0;
    HAMLET_RETURN_NOT_OK(GetU64(&bits));
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }
  Status GetString(std::string* out) {
    uint32_t len = 0;
    HAMLET_RETURN_NOT_OK(GetU32(&len));
    if (pos_ + len > bytes_.size()) return Short("string body");
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status GetVecU32(std::vector<uint32_t>* out) {
    uint64_t len = 0;
    HAMLET_RETURN_NOT_OK(GetU64(&len));
    if (len > Remaining() / 4) return Short("u32 vector body");
    out->resize(len);
    for (uint64_t i = 0; i < len; ++i) {
      HAMLET_RETURN_NOT_OK(GetU32(&(*out)[i]));
    }
    return Status::OK();
  }
  Status GetVecI32(std::vector<int32_t>* out) {
    uint64_t len = 0;
    HAMLET_RETURN_NOT_OK(GetU64(&len));
    if (len > Remaining() / 4) return Short("i32 vector body");
    out->resize(len);
    for (uint64_t i = 0; i < len; ++i) {
      uint32_t bits = 0;
      HAMLET_RETURN_NOT_OK(GetU32(&bits));
      (*out)[i] = static_cast<int32_t>(bits);
    }
    return Status::OK();
  }
  Status GetVecF64(std::vector<double>* out) {
    uint64_t len = 0;
    HAMLET_RETURN_NOT_OK(GetU64(&len));
    if (len > Remaining() / 8) return Short("f64 vector body");
    out->resize(len);
    for (uint64_t i = 0; i < len; ++i) {
      HAMLET_RETURN_NOT_OK(GetF64(&(*out)[i]));
    }
    return Status::OK();
  }

  size_t Remaining() const { return bytes_.size() - pos_; }

  Status ExpectEnd() const {
    if (pos_ != bytes_.size()) {
      return SerdeStatus(
          SerdeError::kMalformed,
          StringFormat("%zu unparsed payload bytes", Remaining()));
    }
    return Status::OK();
  }

 private:
  Status Short(const char* what) const {
    return SerdeStatus(SerdeError::kMalformed,
                       StringFormat("payload ends inside a %s", what));
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Wraps a payload in the header/footer envelope.
std::string WrapEnvelope(ArtifactKind kind, std::string payload) {
  ByteWriter header;
  header.PutU8(static_cast<uint8_t>(kMagic[0]));
  header.PutU8(static_cast<uint8_t>(kMagic[1]));
  header.PutU8(static_cast<uint8_t>(kMagic[2]));
  header.PutU8(static_cast<uint8_t>(kMagic[3]));
  header.PutU16(kFormatVersion);
  header.PutU16(static_cast<uint16_t>(kind));
  header.PutU64(payload.size());
  std::string bytes = header.Take();
  bytes += payload;
  uint32_t crc = Crc32(bytes.data(), bytes.size());
  ByteWriter footer;
  footer.PutU32(crc);
  bytes += footer.Take();
  return bytes;
}

/// Validates magic/version/kind/size from the 16-byte header. Does not
/// verify the CRC (PeekKind and the store's List use it on a prefix).
Status ParseHeader(std::string_view bytes, ArtifactKind* kind,
                   uint64_t* payload_size) {
  if (bytes.size() < kHeaderSize) {
    return SerdeStatus(SerdeError::kTruncated,
                       StringFormat("%zu bytes is smaller than the %zu-byte "
                                    "header",
                                    bytes.size(), kHeaderSize));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return SerdeStatus(SerdeError::kBadMagic,
                       "file does not start with the HMLT magic");
  }
  ByteReader reader(bytes.substr(4, 12));
  uint16_t version = 0;
  uint16_t raw_kind = 0;
  HAMLET_RETURN_NOT_OK(reader.GetU16(&version));
  HAMLET_RETURN_NOT_OK(reader.GetU16(&raw_kind));
  HAMLET_RETURN_NOT_OK(reader.GetU64(payload_size));
  if (version != kFormatVersion) {
    return SerdeStatus(
        SerdeError::kBadVersion,
        StringFormat("file has format version %u, this build reads %u",
                     version, kFormatVersion));
  }
  if (!IsKnownArtifactKind(raw_kind)) {
    return SerdeStatus(SerdeError::kBadKind,
                       StringFormat("unknown artifact kind %u", raw_kind));
  }
  *kind = static_cast<ArtifactKind>(raw_kind);
  return Status::OK();
}

/// Full envelope validation (header + size + CRC); on success returns
/// the payload view into `bytes`.
Result<std::string_view> UnwrapEnvelope(std::string_view bytes,
                                        ArtifactKind expected) {
  ArtifactKind kind;
  uint64_t payload_size = 0;
  HAMLET_RETURN_NOT_OK(ParseHeader(bytes, &kind, &payload_size));
  const uint64_t want = kHeaderSize + payload_size + kFooterSize;
  if (bytes.size() < want) {
    return SerdeStatus(
        SerdeError::kTruncated,
        StringFormat("header promises %llu bytes, file has %zu",
                     static_cast<unsigned long long>(want), bytes.size()));
  }
  if (bytes.size() > want) {
    return SerdeStatus(
        SerdeError::kTrailingBytes,
        StringFormat("%zu bytes after the footer",
                     bytes.size() - static_cast<size_t>(want)));
  }
  const size_t covered = kHeaderSize + payload_size;
  uint32_t want_crc = 0;
  {
    ByteReader footer(bytes.substr(covered, kFooterSize));
    HAMLET_RETURN_NOT_OK(footer.GetU32(&want_crc));
  }
  uint32_t got_crc = Crc32(bytes.data(), covered);
  if (got_crc != want_crc) {
    return SerdeStatus(
        SerdeError::kCrcMismatch,
        StringFormat("checksum %08x does not match stored %08x", got_crc,
                     want_crc));
  }
  if (kind != expected) {
    return SerdeStatus(
        SerdeError::kKindMismatch,
        StringFormat("file holds a %s artifact, caller asked for %s",
                     ArtifactKindToString(kind),
                     ArtifactKindToString(expected)));
  }
  return bytes.substr(kHeaderSize, payload_size);
}

Status Malformed(std::string detail) {
  return SerdeStatus(SerdeError::kMalformed, std::move(detail));
}

}  // namespace

const char* ArtifactKindToString(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kEncodedDataset:
      return "dataset";
    case ArtifactKind::kNaiveBayes:
      return "naive_bayes";
    case ArtifactKind::kLogisticRegression:
      return "logistic_regression";
    case ArtifactKind::kFsRunReport:
      return "fs_report";
    case ArtifactKind::kDecisionTree:
      return "decision_tree";
    case ArtifactKind::kGradientBoostedTrees:
      return "gbt";
  }
  return "unknown";
}

bool IsKnownArtifactKind(uint16_t kind) {
  return kind >= static_cast<uint16_t>(ArtifactKind::kEncodedDataset) &&
         kind <= static_cast<uint16_t>(ArtifactKind::kGradientBoostedTrees);
}

SerdeError SerdeErrorOf(const Status& status) {
  if (status.ok()) return SerdeError::kNone;
  const std::string& msg = status.message();
  constexpr std::string_view kPrefix = "serde/";
  if (msg.rfind(kPrefix, 0) != 0) return SerdeError::kNone;
  const size_t colon = msg.find(':', kPrefix.size());
  if (colon == std::string::npos) return SerdeError::kNone;
  std::string_view tag(msg.data() + kPrefix.size(),
                       colon - kPrefix.size());
  for (SerdeError e :
       {SerdeError::kBadMagic, SerdeError::kBadVersion, SerdeError::kBadKind,
        SerdeError::kKindMismatch, SerdeError::kTruncated,
        SerdeError::kTrailingBytes, SerdeError::kCrcMismatch,
        SerdeError::kMalformed}) {
    if (tag == SerdeErrorTag(e)) return e;
  }
  return SerdeError::kNone;
}

// --- EncodedDataset ---

std::string SerializeDataset(const EncodedDataset& data) {
  ByteWriter w;
  w.PutU32(data.num_classes());
  w.PutU32(data.num_features());
  w.PutU64(data.num_rows());
  for (uint32_t j = 0; j < data.num_features(); ++j) {
    w.PutString(data.meta(j).name);
    w.PutU32(data.meta(j).cardinality);
  }
  for (uint32_t label : data.labels()) w.PutU32(label);
  for (uint32_t j = 0; j < data.num_features(); ++j) {
    for (uint32_t code : data.feature(j)) w.PutU32(code);
  }
  return WrapEnvelope(ArtifactKind::kEncodedDataset, w.Take());
}

Result<EncodedDataset> DeserializeDataset(std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapEnvelope(bytes, ArtifactKind::kEncodedDataset));
  ByteReader r(payload);
  uint32_t num_classes = 0;
  uint32_t num_features = 0;
  uint64_t num_rows = 0;
  HAMLET_RETURN_NOT_OK(r.GetU32(&num_classes));
  HAMLET_RETURN_NOT_OK(r.GetU32(&num_features));
  HAMLET_RETURN_NOT_OK(r.GetU64(&num_rows));
  if (num_classes == 0) {
    return Malformed("dataset has zero classes");
  }
  // Bound every count by the bytes actually present before allocating
  // (a flipped length field must produce a typed error, not an OOM).
  if (num_features > r.Remaining() / 8) {
    return Malformed("feature count exceeds the payload size");
  }
  std::vector<FeatureMeta> meta(num_features);
  for (uint32_t j = 0; j < num_features; ++j) {
    HAMLET_RETURN_NOT_OK(r.GetString(&meta[j].name));
    HAMLET_RETURN_NOT_OK(r.GetU32(&meta[j].cardinality));
  }
  if (num_rows > r.Remaining() / 4 ||
      (num_features > 0 &&
       num_rows > r.Remaining() / 4 / (1 + static_cast<uint64_t>(
                                               num_features)))) {
    return Malformed("dataset columns exceed the payload size");
  }
  std::vector<uint32_t> labels(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    HAMLET_RETURN_NOT_OK(r.GetU32(&labels[i]));
    if (labels[i] >= num_classes) {
      return Malformed(StringFormat("label %u at row %llu out of %u classes",
                                    labels[i],
                                    static_cast<unsigned long long>(i),
                                    num_classes));
    }
  }
  std::vector<std::vector<uint32_t>> features(num_features);
  for (uint32_t j = 0; j < num_features; ++j) {
    features[j].resize(num_rows);
    for (uint64_t i = 0; i < num_rows; ++i) {
      HAMLET_RETURN_NOT_OK(r.GetU32(&features[j][i]));
      if (features[j][i] >= meta[j].cardinality) {
        return Malformed(StringFormat(
            "code %u in feature '%s' out of its domain of %u",
            features[j][i], meta[j].name.c_str(), meta[j].cardinality));
      }
    }
  }
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  return EncodedDataset(std::move(features), std::move(meta),
                        std::move(labels), num_classes);
}

// --- NaiveBayes ---

std::string SerializeNaiveBayes(const NaiveBayes& model) {
  NaiveBayesParams params = model.ExportParams();
  ByteWriter w;
  w.PutF64(params.alpha);
  w.PutU32(params.num_classes);
  w.PutVecU32(params.features);
  w.PutVecF64(params.log_priors);
  for (const std::vector<double>& ll : params.log_likelihoods) {
    w.PutVecF64(ll);
  }
  return WrapEnvelope(ArtifactKind::kNaiveBayes, w.Take());
}

Result<NaiveBayes> DeserializeNaiveBayes(std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(std::string_view payload,
                          UnwrapEnvelope(bytes, ArtifactKind::kNaiveBayes));
  ByteReader r(payload);
  NaiveBayesParams params;
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.alpha));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.num_classes));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.features));
  HAMLET_RETURN_NOT_OK(r.GetVecF64(&params.log_priors));
  params.log_likelihoods.resize(params.features.size());
  for (std::vector<double>& ll : params.log_likelihoods) {
    HAMLET_RETURN_NOT_OK(r.GetVecF64(&ll));
  }
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  Result<NaiveBayes> model = NaiveBayes::FromParams(std::move(params));
  if (!model.ok()) return Malformed(model.status().message());
  return model;
}

// --- LogisticRegression ---

std::string SerializeLogisticRegression(const LogisticRegression& model) {
  LogisticRegressionParams params = model.ExportParams();
  ByteWriter w;
  w.PutU8(params.options.regularizer == Regularizer::kL1 ? 0 : 1);
  w.PutF64(params.options.lambda);
  w.PutU32(params.options.max_epochs);
  w.PutF64(params.options.learning_rate);
  w.PutF64(params.options.tolerance);
  w.PutU32(params.num_classes);
  w.PutU32(params.num_dims);
  w.PutVecU32(params.features);
  w.PutVecU32(params.offsets);
  w.PutVecF64(params.weights);
  return WrapEnvelope(ArtifactKind::kLogisticRegression, w.Take());
}

Result<LogisticRegression> DeserializeLogisticRegression(
    std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapEnvelope(bytes, ArtifactKind::kLogisticRegression));
  ByteReader r(payload);
  LogisticRegressionParams params;
  uint8_t regularizer = 0;
  HAMLET_RETURN_NOT_OK(r.GetU8(&regularizer));
  if (regularizer > 1) {
    return Malformed(
        StringFormat("unknown regularizer code %u", regularizer));
  }
  params.options.regularizer =
      regularizer == 0 ? Regularizer::kL1 : Regularizer::kL2;
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.options.lambda));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.options.max_epochs));
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.options.learning_rate));
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.options.tolerance));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.num_classes));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.num_dims));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.features));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.offsets));
  HAMLET_RETURN_NOT_OK(r.GetVecF64(&params.weights));
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  Result<LogisticRegression> model =
      LogisticRegression::FromParams(std::move(params));
  if (!model.ok()) return Malformed(model.status().message());
  return model;
}

// --- DecisionTree ---

std::string SerializeDecisionTree(const DecisionTree& model) {
  DecisionTreeParams params = model.ExportParams();
  ByteWriter w;
  w.PutF64(params.alpha);
  w.PutU32(params.num_classes);
  w.PutVecU32(params.features);
  w.PutVecU32(params.cardinalities);
  w.PutVecI32(params.split_slot);
  w.PutVecU32(params.split_code);
  w.PutVecI32(params.left);
  w.PutVecI32(params.right);
  w.PutVecF64(params.scores);
  return WrapEnvelope(ArtifactKind::kDecisionTree, w.Take());
}

Result<DecisionTree> DeserializeDecisionTree(std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(std::string_view payload,
                          UnwrapEnvelope(bytes, ArtifactKind::kDecisionTree));
  ByteReader r(payload);
  DecisionTreeParams params;
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.alpha));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.num_classes));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.features));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.cardinalities));
  HAMLET_RETURN_NOT_OK(r.GetVecI32(&params.split_slot));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.split_code));
  HAMLET_RETURN_NOT_OK(r.GetVecI32(&params.left));
  HAMLET_RETURN_NOT_OK(r.GetVecI32(&params.right));
  HAMLET_RETURN_NOT_OK(r.GetVecF64(&params.scores));
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  Result<DecisionTree> model_result =
      DecisionTree::FromParams(std::move(params));
  if (!model_result.ok()) return Malformed(model_result.status().message());
  return model_result;
}

// --- Gbt ---

std::string SerializeGbt(const Gbt& model) {
  GbtParams params = model.ExportParams();
  ByteWriter w;
  w.PutF64(params.learning_rate);
  w.PutF64(params.lambda);
  w.PutU32(params.num_classes);
  w.PutVecU32(params.features);
  w.PutVecU32(params.cardinalities);
  w.PutVecF64(params.base_scores);
  w.PutU64(params.trees.size());
  for (const GbtTree& tree : params.trees) {
    w.PutVecI32(tree.split_slot);
    w.PutVecU32(tree.split_code);
    w.PutVecI32(tree.left);
    w.PutVecI32(tree.right);
    w.PutVecF64(tree.value);
  }
  return WrapEnvelope(ArtifactKind::kGradientBoostedTrees, w.Take());
}

Result<Gbt> DeserializeGbt(std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapEnvelope(bytes, ArtifactKind::kGradientBoostedTrees));
  ByteReader r(payload);
  GbtParams params;
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.learning_rate));
  HAMLET_RETURN_NOT_OK(r.GetF64(&params.lambda));
  HAMLET_RETURN_NOT_OK(r.GetU32(&params.num_classes));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.features));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&params.cardinalities));
  HAMLET_RETURN_NOT_OK(r.GetVecF64(&params.base_scores));
  uint64_t num_trees = 0;
  HAMLET_RETURN_NOT_OK(r.GetU64(&num_trees));
  // An empty tree still costs five 8-byte vector lengths; bound the count
  // by that before allocating (a flipped length field must produce a
  // typed error, not an OOM).
  if (num_trees > r.Remaining() / 40) {
    return Malformed("tree count exceeds the payload size");
  }
  params.trees.resize(num_trees);
  for (GbtTree& tree : params.trees) {
    HAMLET_RETURN_NOT_OK(r.GetVecI32(&tree.split_slot));
    HAMLET_RETURN_NOT_OK(r.GetVecU32(&tree.split_code));
    HAMLET_RETURN_NOT_OK(r.GetVecI32(&tree.left));
    HAMLET_RETURN_NOT_OK(r.GetVecI32(&tree.right));
    HAMLET_RETURN_NOT_OK(r.GetVecF64(&tree.value));
  }
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  Result<Gbt> model_result = Gbt::FromParams(std::move(params));
  if (!model_result.ok()) return Malformed(model_result.status().message());
  return model_result;
}

// --- FsRunReport ---

std::string SerializeFsRunReport(const FsRunReport& report) {
  ByteWriter w;
  w.PutString(report.method);
  w.PutVecU32(report.selection.selected);
  w.PutF64(report.selection.validation_error);
  w.PutU64(report.selection.models_trained);
  w.PutU64(report.selected_names.size());
  for (const std::string& name : report.selected_names) w.PutString(name);
  w.PutF64(report.holdout_test_error);
  w.PutF64(report.runtime_seconds);
  w.PutF64(report.fit_seconds);
  w.PutF64(report.total_seconds);
  return WrapEnvelope(ArtifactKind::kFsRunReport, w.Take());
}

Result<FsRunReport> DeserializeFsRunReport(std::string_view bytes) {
  HAMLET_ASSIGN_OR_RETURN(std::string_view payload,
                          UnwrapEnvelope(bytes, ArtifactKind::kFsRunReport));
  ByteReader r(payload);
  FsRunReport report;
  HAMLET_RETURN_NOT_OK(r.GetString(&report.method));
  HAMLET_RETURN_NOT_OK(r.GetVecU32(&report.selection.selected));
  HAMLET_RETURN_NOT_OK(r.GetF64(&report.selection.validation_error));
  HAMLET_RETURN_NOT_OK(r.GetU64(&report.selection.models_trained));
  uint64_t num_names = 0;
  HAMLET_RETURN_NOT_OK(r.GetU64(&num_names));
  if (num_names > r.Remaining() / 4) {
    return Malformed("selected-name list exceeds the payload size");
  }
  report.selected_names.resize(num_names);
  for (uint64_t i = 0; i < num_names; ++i) {
    HAMLET_RETURN_NOT_OK(r.GetString(&report.selected_names[i]));
  }
  HAMLET_RETURN_NOT_OK(r.GetF64(&report.holdout_test_error));
  HAMLET_RETURN_NOT_OK(r.GetF64(&report.runtime_seconds));
  HAMLET_RETURN_NOT_OK(r.GetF64(&report.fit_seconds));
  HAMLET_RETURN_NOT_OK(r.GetF64(&report.total_seconds));
  HAMLET_RETURN_NOT_OK(r.ExpectEnd());
  // Re-derive the embedded digest exactly the way fs/runner.cc builds it.
  report.trace_summary.stages = {
      {"fs.search", 0, 1, report.runtime_seconds, report.runtime_seconds,
       {{"models_trained",
         static_cast<int64_t>(report.selection.models_trained)}}},
      {"fs.final_fit", 0, 1, report.fit_seconds, report.fit_seconds, {}}};
  report.trace_summary.counters = {
      {"fs.models_trained", report.selection.models_trained}};
  report.trace_summary.total_seconds = report.total_seconds;
  return report;
}

Result<ArtifactKind> KindOfSerialized(std::string_view bytes) {
  ArtifactKind kind;
  uint64_t payload_size = 0;
  HAMLET_RETURN_NOT_OK(ParseHeader(bytes, &kind, &payload_size));
  const uint64_t want = kHeaderSize + payload_size + kFooterSize;
  if (bytes.size() < want) {
    return SerdeStatus(
        SerdeError::kTruncated,
        StringFormat("header promises %llu bytes, buffer has %zu",
                     static_cast<unsigned long long>(want), bytes.size()));
  }
  if (bytes.size() > want) {
    return SerdeStatus(
        SerdeError::kTrailingBytes,
        StringFormat("%zu bytes after the footer",
                     bytes.size() - static_cast<size_t>(want)));
  }
  const size_t covered = kHeaderSize + static_cast<size_t>(payload_size);
  uint32_t want_crc = 0;
  ByteReader footer(bytes.substr(covered, kFooterSize));
  HAMLET_RETURN_NOT_OK(footer.GetU32(&want_crc));
  if (Crc32(bytes.data(), covered) != want_crc) {
    return SerdeStatus(SerdeError::kCrcMismatch,
                       "checksum does not match the stored footer");
  }
  return kind;
}

// --- File IO ---

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(
        StringFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError(StringFormat("read of '%s' failed", path.c_str()));
  }
  return bytes;
}

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError(
        StringFormat("cannot open '%s' for writing", path.c_str()));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError(StringFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Status SaveDataset(const EncodedDataset& data, const std::string& path) {
  return WriteFileBytes(path, SerializeDataset(data));
}

Result<EncodedDataset> LoadDataset(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeDataset(bytes);
}

Status SaveNaiveBayes(const NaiveBayes& model, const std::string& path) {
  return WriteFileBytes(path, SerializeNaiveBayes(model));
}

Result<NaiveBayes> LoadNaiveBayes(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeNaiveBayes(bytes);
}

Status SaveLogisticRegression(const LogisticRegression& model,
                              const std::string& path) {
  return WriteFileBytes(path, SerializeLogisticRegression(model));
}

Result<LogisticRegression> LoadLogisticRegression(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeLogisticRegression(bytes);
}

Status SaveDecisionTree(const DecisionTree& model, const std::string& path) {
  return WriteFileBytes(path, SerializeDecisionTree(model));
}

Result<DecisionTree> LoadDecisionTree(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeDecisionTree(bytes);
}

Status SaveGbt(const Gbt& model, const std::string& path) {
  return WriteFileBytes(path, SerializeGbt(model));
}

Result<Gbt> LoadGbt(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeGbt(bytes);
}

Status SaveFsRunReport(const FsRunReport& report, const std::string& path) {
  return WriteFileBytes(path, SerializeFsRunReport(report));
}

Result<FsRunReport> LoadFsRunReport(const std::string& path) {
  HAMLET_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeFsRunReport(bytes);
}

Result<ArtifactKind> PeekKind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(
        StringFormat("cannot open '%s' for reading", path.c_str()));
  }
  char header[kHeaderSize];
  in.read(header, static_cast<std::streamsize>(kHeaderSize));
  const std::string_view view(header,
                              static_cast<size_t>(in.gcount()));
  ArtifactKind kind;
  uint64_t payload_size = 0;
  HAMLET_RETURN_NOT_OK(ParseHeader(view, &kind, &payload_size));
  return kind;
}

}  // namespace hamlet::serve
