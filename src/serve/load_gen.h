#ifndef HAMLET_SERVE_LOAD_GEN_H_
#define HAMLET_SERVE_LOAD_GEN_H_

/// \file load_gen.h
/// Closed-loop load harness for the sharded scoring data plane — the
/// SLO measurement half of serve/service.h. RunClosedLoopLoad stands up
/// a HamletService over a caller-provided artifact store, publishes a
/// synthetic dataset plus `num_models` trained Naive Bayes models, and
/// drives the service with M client threads for a fixed wall-clock
/// window. Each client is closed-loop (its next request is issued the
/// moment the previous one returns) with optional pacing toward an
/// aggregate target rate, and cycles deterministically through the
/// published models so every dispatcher shard sees traffic.
///
/// The report is built on exact accounting: every request a client
/// issues lands in exactly one of served / shed (kOverloaded) /
/// expired (kDeadlineExceeded) / failed (anything else), counted
/// client-side — so `served + shed + expired + failed == offered` holds
/// by construction and the harness (plus tests/service_shard_
/// determinism_test.cc) asserts it. Sustained throughput is rows
/// scored per wall second; latency comes twice, client-observed
/// (includes queue wait) and service-side (the serve.score_ns
/// histogram), so queueing pathologies show up as a gap between the
/// two.
///
/// The run RESETS the process-global metrics registry and opens a
/// collection window (the service-side percentiles and warm-cache
/// numbers must cover exactly this run). Callers holding their own
/// metrics window should snapshot before calling.
///
/// scripts/run_benchmarks.sh --serve-load packages this behind
/// bench/serve_load.cc, which emits google-benchmark-compatible JSON so
/// scripts/compare_bench.py gates sustained throughput like any other
/// benchmark; `hamlet_serve_cli --load-test` is the interactive front
/// end.

#include <cstdint>
#include <string>

#include "serve/artifact_store.h"
#include "serve/service.h"

namespace hamlet::serve {

/// Workload shape for one RunClosedLoopLoad window.
struct LoadGenOptions {
  /// Closed-loop client threads.
  uint32_t clients = 8;
  /// Wall-clock window to drive load for.
  double duration_s = 2.0;
  /// Aggregate target request rate over all clients (requests/s);
  /// 0 = unthrottled (each client re-issues immediately).
  double target_rate = 0.0;
  /// Rows per Score block. Small blocks put the run in the
  /// per-request-overhead regime the sharded plane optimizes.
  uint32_t block_rows = 16;
  /// Distinct models published and scored against (>= 1); clients cycle
  /// through them so traffic spreads across shards.
  uint32_t num_models = 4;
  /// Versions published per model (>= 1; clients always score the
  /// newest). Production stores accrete version history, and resolving
  /// kLatest costs a directory scan that grows with it — exactly the
  /// per-pass cost the warm model cache exists to eliminate, so the
  /// harness models a store with history rather than a freshly wiped
  /// one.
  uint32_t versions_per_model = 64;
  /// Training rows for the synthetic dataset the models are fit on.
  uint32_t train_rows = 20000;
  /// Relative per-request deadline (0 = none); stamped as an absolute
  /// obs-clock deadline at issue time.
  uint64_t deadline_ns = 0;
  /// Score by explicit version (true) or ArtifactStore::kLatest
  /// (false). kLatest exercises the generation-validated warm cache.
  bool score_latest = true;
  uint64_t seed = 7;
};

/// What one window measured. All counts are client-side.
struct LoadReport {
  uint64_t offered = 0;  ///< Requests issued.
  uint64_t served = 0;   ///< OK responses.
  uint64_t shed = 0;     ///< kOverloaded rejections.
  uint64_t expired = 0;  ///< kDeadlineExceeded rejections.
  uint64_t failed = 0;   ///< Any other failure.
  uint64_t rows_scored = 0;
  double wall_s = 0;
  double sustained_scores_per_s = 0;    ///< rows_scored / wall_s.
  double sustained_requests_per_s = 0;  ///< served / wall_s.
  /// Client-observed latency of served requests (includes queue wait).
  double client_p50_us = 0, client_p95_us = 0, client_p99_us = 0;
  /// Service-side scoring latency (serve.score_ns histogram).
  double service_p50_us = 0, service_p95_us = 0, service_p99_us = 0;
  /// Mean fused batch size (serve.batch_size histogram).
  double mean_batch_requests = 0;
  uint64_t warm_cache_hits = 0, warm_cache_misses = 0;
  uint64_t shed_total_metric = 0;  ///< serve.shed_total (cross-check).
  uint32_t num_shards = 0;         ///< Resolved shard count of the run.

  /// served + shed + expired + failed == offered (always true by
  /// construction; carried so callers can assert without recomputing).
  bool accounting_exact = false;
};

/// Publishes the synthetic models into `store` (names
/// "load_nb_<i>") and drives the service described by `service_options`
/// for the window. Fails if the dataset cannot be synthesized/trained
/// or the store rejects a publish; load-time rejections (shed/expired)
/// are data, not errors.
Result<LoadReport> RunClosedLoopLoad(ArtifactStore* store,
                                     const ServiceOptions& service_options,
                                     const LoadGenOptions& options);

/// Renders the report as the human-readable block `hamlet_serve_cli
/// --load-test` prints.
std::string FormatLoadReport(const LoadReport& report);

}  // namespace hamlet::serve

#endif  // HAMLET_SERVE_LOAD_GEN_H_
