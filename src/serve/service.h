#ifndef HAMLET_SERVE_SERVICE_H_
#define HAMLET_SERVE_SERVICE_H_

/// \file service.h
/// HamletService: the in-process serving surface of src/serve/ — the
/// deployment shape of the ROADMAP's "heavy traffic" north star. Three
/// request types:
///
///   - Advise:         the paper's ROR/TR join-avoidance decision from
///                     schema metadata only (core/advisor's
///                     AdviseJoinsFromStats) — the cheap advisory call
///                     that is worth serving rather than recomputing;
///   - Score:          batched classification of an encoded row block
///                     against a named model from the artifact store;
///   - SelectFeatures: a full feature selection run over a stored
///                     dataset, persisting the winning model.
///
/// Concurrency model — the sharded scoring data plane: requests hash by
/// (model, version) onto one of N dispatcher shards, each a bounded
/// MPSC queue (common/mpsc_queue.h) drained by its own dispatcher
/// thread. Same-(model, version) Score requests always land on the
/// same shard, so micro-batch fusion needs no cross-shard coordination:
/// each dispatcher coalesces up to max_batch queued requests for its
/// head's (model, version) into ONE scoring pass — a single parallel
/// region running LogScoresInto row by row — and N such passes run
/// concurrently across shards. Requests without a model key (Advise,
/// SelectFeatures) round-robin across shards.
///
/// Determinism contract (extended from the single-queue service): a
/// request's response payload — the predictions — is a pure function of
/// the request and the referenced artifacts, never of timing, batch
/// composition, shard count, or thread count. The shard-count
/// determinism suite scores one request stream at shards ∈ {1, 2, 8} ×
/// threads ∈ {1, 8} and pins byte-identical predictions per request id.
/// (`ScoreResponse::batch_requests` is a scheduling diagnostic and sits
/// outside the contract, exactly as before.)
///
/// Admission control: each shard queue is bounded (queue_capacity per
/// shard). Under OverloadPolicy::kBlock, enqueue blocks while the shard
/// is full — backpressure toward the caller, the original behavior.
/// Under OverloadPolicy::kShed, a request arriving while the shard
/// already holds shed_high_water items is rejected immediately with a
/// typed `StatusCode::kOverloaded` status (counted in
/// `serve.shed_total`) and is never partially executed. A request may
/// also carry an absolute deadline (`deadline_ns`, obs::NowNanos
/// clock); deadlines are checked at dequeue — a request whose deadline
/// passed while it queued is answered `kDeadlineExceeded` (counted in
/// `serve.deadline_expired`) without touching the model.
///
/// Warm model cache: each dispatcher keeps a shard-local (model,
/// version) → resolved-model map, read without any lock (the dispatcher
/// thread owns it). Concrete versions are immutable, so entries for
/// them never expire; kLatest entries revalidate against the artifact
/// store's publish `generation()` with one atomic load, so a hot model
/// batch skips both the store mutex and the directory scan, while a
/// publish is picked up on the very next batch (hot-swap never stalls
/// traffic). The store's own LRU hit path takes a shared lock, and the
/// shared_ptr handed out pins the artifact for the pass — a concurrent
/// evict can never tear a batch.
///
/// Observability: every endpoint records `serve.*` counters and latency
/// histograms (see docs/SERVING.md and docs/OBSERVABILITY.md) when obs
/// collection is enabled; queue depth/wait, batch sizes, sheds, expired
/// deadlines and warm-cache hits are measured too, and each scoring
/// pass reports a `serve.score` cost-profile record carrying the shard
/// count and fused batch size.

#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "fs/runner.h"
#include "serve/artifact_store.h"

namespace hamlet::serve {

/// What happens when a request arrives at a full (or beyond-high-water)
/// shard queue.
enum class OverloadPolicy {
  kBlock = 0,  ///< Enqueue blocks — backpressure toward the caller.
  kShed,       ///< Reject with StatusCode::kOverloaded, never block.
};

/// Service tuning knobs.
struct ServiceOptions {
  /// Bounded request queue capacity PER SHARD; under kBlock, enqueue
  /// blocks while the target shard holds this many requests.
  size_t queue_capacity = 256;
  /// Most Score requests coalesced into one scoring pass.
  size_t max_batch = 64;
  /// Micro-batching switch; off = one scoring pass per request (the
  /// BM_ServeScoreUnbatched baseline).
  bool batch_scoring = true;
  /// ParallelFor shards for scoring passes and FS runs (0 = one per
  /// hardware thread, 1 = serial). Results are identical either way.
  uint32_t num_threads = 0;
  /// Dispatcher shards. 0 = auto: min(hardware concurrency, 4), at
  /// least 1. Results are identical at any shard count.
  uint32_t num_shards = 0;
  /// Admission control mode (see OverloadPolicy).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// kShed only: reject once a shard's depth reaches this mark
  /// (0 = queue_capacity, i.e. shed only when actually full).
  size_t shed_high_water = 0;
  /// Shard-local lock-free model resolution (see the \file block). On
  /// by default; off forces every pass through the artifact store.
  bool warm_model_cache = true;
};

/// Join-advice from pure metadata (see AdviseJoinsFromStats).
struct AdviseRequest {
  uint64_t n_train = 0;
  double label_entropy_bits = 1.0;
  std::vector<CandidateTableStats> candidates;
  AdvisorOptions options;
  /// Absolute deadline on the obs::NowNanos clock (0 = none), checked
  /// at dequeue.
  uint64_t deadline_ns = 0;
};

/// Score an encoded row block against a stored model. The block must
/// share the feature layout the model was trained on (same feature
/// indices and cardinalities).
struct ScoreRequest {
  std::string model;                           ///< Artifact name.
  uint32_t version = ArtifactStore::kLatest;   ///< 0 = latest.
  std::shared_ptr<const EncodedDataset> rows;  ///< Block to score.
  /// Absolute deadline on the obs::NowNanos clock (0 = none), checked
  /// at dequeue: expired requests answer kDeadlineExceeded unscored.
  uint64_t deadline_ns = 0;
};

struct ScoreResponse {
  /// Predicted class code per row of the block, in row order. Identical
  /// to calling the model's Predict serially (the determinism tests
  /// lock this down under concurrency, at every shard/thread count).
  std::vector<uint32_t> predictions;
  /// How many requests shared the scoring pass (1 when unbatched);
  /// diagnostic only — outside the determinism contract.
  uint32_t batch_requests = 1;
};

/// Run feature selection over a stored dataset and persist the winner.
struct SelectFeaturesRequest {
  std::string dataset;                              ///< Dataset artifact.
  uint32_t dataset_version = ArtifactStore::kLatest;
  FsMethod method = FsMethod::kForwardSelection;
  ErrorMetric metric = ErrorMetric::kZeroOne;
  double nb_alpha = 1.0;   ///< Naive Bayes smoothing for the models.
  uint64_t seed = 7;       ///< Drives the holdout split.
  std::string model_name;  ///< Store the winning model under this name.
  /// Absolute deadline on the obs::NowNanos clock (0 = none), checked
  /// at dequeue.
  uint64_t deadline_ns = 0;
};

struct SelectFeaturesResponse {
  FsRunReport report;
  uint32_t model_version = 0;   ///< Version of the persisted NB model.
  uint32_t report_version = 0;  ///< Version of "<model_name>.fs_report".
};

/// The in-process service. Public methods are safe to call from any
/// number of client threads; each blocks until its response is ready
/// (or returns a typed rejection under kShed / an expired deadline).
class HamletService {
 public:
  /// `store` must outlive the service.
  explicit HamletService(ArtifactStore* store, ServiceOptions options = {});

  /// Stops and drains (see Stop()).
  ~HamletService();

  HamletService(const HamletService&) = delete;
  HamletService& operator=(const HamletService&) = delete;

  Result<JoinPlan> Advise(AdviseRequest request);
  Result<ScoreResponse> Score(ScoreRequest request);
  Result<SelectFeaturesResponse> SelectFeatures(SelectFeaturesRequest request);

  /// Finishes every queued request, rejects new ones
  /// (FailedPrecondition), and joins all dispatchers. Idempotent.
  void Stop();

  /// The exact scoring pass the dispatcher's micro-batcher runs, minus
  /// the queue: resolves each distinct (model, version) once (through
  /// the artifact store — the warm cache is dispatcher-local) and
  /// scores all blocks in one parallel region per model group. Exposed
  /// so the determinism tests and benchmarks can drive the batched
  /// path directly.
  Result<std::vector<ScoreResponse>> ScoreBatchDirect(
      const std::vector<ScoreRequest>& batch);

  /// Requests currently queued across all shards (diagnostics/tests).
  size_t queue_depth() const;

  /// Requests currently queued on one shard (< num_shards()).
  size_t queue_depth(uint32_t shard) const;

  /// Resolved dispatcher shard count (>= 1).
  uint32_t num_shards() const;

  /// The shard a Score request for (model, version) routes to — a pure
  /// function of the key and num_shards(), exposed for tests.
  uint32_t ShardForModel(const std::string& model, uint32_t version) const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServiceOptions options_;
};

}  // namespace hamlet::serve

#endif  // HAMLET_SERVE_SERVICE_H_
