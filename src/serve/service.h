#ifndef HAMLET_SERVE_SERVICE_H_
#define HAMLET_SERVE_SERVICE_H_

/// \file service.h
/// HamletService: the in-process serving surface of src/serve/ — the
/// deployment shape of the ROADMAP's "heavy traffic" north star. Three
/// request types:
///
///   - Advise:         the paper's ROR/TR join-avoidance decision from
///                     schema metadata only (core/advisor's
///                     AdviseJoinsFromStats) — the cheap advisory call
///                     that is worth serving rather than recomputing;
///   - Score:          batched classification of an encoded row block
///                     against a named model from the artifact store;
///   - SelectFeatures: a full feature selection run over a stored
///                     dataset, persisting the winning model.
///
/// Concurrency model: callers block on their own threads; requests pass
/// through a bounded FIFO queue (enqueue blocks when full — natural
/// backpressure) drained by one dispatcher thread. The dispatcher
/// executes the actual work as data-parallel regions on the existing
/// shared ThreadPool (common/thread_pool.h), so the service composes
/// with the library's determinism contract: a request's response is a
/// pure function of the request and the referenced artifacts, never of
/// timing or batch composition.
///
/// Micro-batching: while a Score request is being served, other Score
/// requests for the same (model, version) queue up behind it; the
/// dispatcher coalesces them (up to max_batch) into ONE scoring pass —
/// a single parallel region running LogScoresInto row by row — so
/// concurrent clients share the model resolution and the region
/// dispatch overhead instead of paying it per call. Batch composition
/// affects only latency, never results.
///
/// Observability: every endpoint records `serve.*` counters and latency
/// histograms (see docs/SERVING.md and docs/OBSERVABILITY.md) when obs
/// collection is enabled; queue wait and batch sizes are measured too.

#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "fs/runner.h"
#include "serve/artifact_store.h"

namespace hamlet::serve {

/// Service tuning knobs.
struct ServiceOptions {
  /// Bounded request queue; enqueue blocks while the queue holds this
  /// many requests (backpressure toward the clients).
  size_t queue_capacity = 256;
  /// Most Score requests coalesced into one scoring pass.
  size_t max_batch = 64;
  /// Micro-batching switch; off = one scoring pass per request (the
  /// BM_ServeScoreUnbatched baseline).
  bool batch_scoring = true;
  /// ParallelFor shards for scoring passes and FS runs (0 = one per
  /// hardware thread, 1 = serial). Results are identical either way.
  uint32_t num_threads = 0;
};

/// Join-advice from pure metadata (see AdviseJoinsFromStats).
struct AdviseRequest {
  uint64_t n_train = 0;
  double label_entropy_bits = 1.0;
  std::vector<CandidateTableStats> candidates;
  AdvisorOptions options;
};

/// Score an encoded row block against a stored model. The block must
/// share the feature layout the model was trained on (same feature
/// indices and cardinalities).
struct ScoreRequest {
  std::string model;                           ///< Artifact name.
  uint32_t version = ArtifactStore::kLatest;   ///< 0 = latest.
  std::shared_ptr<const EncodedDataset> rows;  ///< Block to score.
};

struct ScoreResponse {
  /// Predicted class code per row of the block, in row order. Identical
  /// to calling the model's Predict serially (the determinism tests
  /// lock this down under concurrency).
  std::vector<uint32_t> predictions;
  /// How many requests shared the scoring pass (1 when unbatched);
  /// diagnostic only.
  uint32_t batch_requests = 1;
};

/// Run feature selection over a stored dataset and persist the winner.
struct SelectFeaturesRequest {
  std::string dataset;                              ///< Dataset artifact.
  uint32_t dataset_version = ArtifactStore::kLatest;
  FsMethod method = FsMethod::kForwardSelection;
  ErrorMetric metric = ErrorMetric::kZeroOne;
  double nb_alpha = 1.0;   ///< Naive Bayes smoothing for the models.
  uint64_t seed = 7;       ///< Drives the holdout split.
  std::string model_name;  ///< Store the winning model under this name.
};

struct SelectFeaturesResponse {
  FsRunReport report;
  uint32_t model_version = 0;   ///< Version of the persisted NB model.
  uint32_t report_version = 0;  ///< Version of "<model_name>.fs_report".
};

/// The in-process service. Public methods are safe to call from any
/// number of client threads; each blocks until its response is ready.
class HamletService {
 public:
  /// `store` must outlive the service.
  explicit HamletService(ArtifactStore* store, ServiceOptions options = {});

  /// Stops and drains (see Stop()).
  ~HamletService();

  HamletService(const HamletService&) = delete;
  HamletService& operator=(const HamletService&) = delete;

  Result<JoinPlan> Advise(AdviseRequest request);
  Result<ScoreResponse> Score(ScoreRequest request);
  Result<SelectFeaturesResponse> SelectFeatures(SelectFeaturesRequest request);

  /// Finishes every queued request, rejects new ones
  /// (FailedPrecondition), and joins the dispatcher. Idempotent.
  void Stop();

  /// The exact scoring pass the dispatcher's micro-batcher runs, minus
  /// the queue: resolves each distinct (model, version) once and scores
  /// all blocks in one parallel region per model group. Exposed so the
  /// determinism tests and benchmarks can drive the batched path
  /// directly.
  Result<std::vector<ScoreResponse>> ScoreBatchDirect(
      const std::vector<ScoreRequest>& batch);

  /// Requests currently queued (diagnostics/tests).
  size_t queue_depth() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServiceOptions options_;
};

}  // namespace hamlet::serve

#endif  // HAMLET_SERVE_SERVICE_H_
