#include "serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/data_synthesis.h"

namespace hamlet::serve {

namespace {

/// Per-client tallies, merged after the window closes. Each request
/// lands in exactly one bucket — the accounting identity the harness
/// asserts.
struct ClientTally {
  uint64_t offered = 0;
  uint64_t served = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
  uint64_t rows_scored = 0;
  std::vector<uint64_t> latency_ns;
};

double PercentileUs(std::vector<uint64_t>* sorted_ns, double p) {
  if (sorted_ns->empty()) return 0.0;
  const size_t i = static_cast<size_t>(p * (sorted_ns->size() - 1));
  return static_cast<double>((*sorted_ns)[i]) / 1e3;
}

}  // namespace

Result<LoadReport> RunClosedLoopLoad(ArtifactStore* store,
                                     const ServiceOptions& service_options,
                                     const LoadGenOptions& options) {
  const uint32_t clients = options.clients == 0 ? 1 : options.clients;
  const uint32_t num_models = options.num_models == 0 ? 1 : options.num_models;
  const uint32_t block_rows = options.block_rows == 0 ? 1 : options.block_rows;

  // --- Synthesize one dataset; publish it as `num_models` models. ---
  SimConfig config;
  config.n_s = options.train_rows;
  config.d_s = 8;
  config.d_r = 8;
  config.n_r = 200;
  Rng rng(options.seed);
  SimDataGenerator gen(config, rng);
  SimDraw draw = gen.Draw(config.n_s, rng);
  std::vector<uint32_t> all_rows(draw.data.num_rows());
  for (uint32_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  NaiveBayes model(1.0);
  HAMLET_RETURN_NOT_OK(model.Train(draw.data, all_rows,
                                   gen.UseAllFeatures()));
  const uint32_t versions =
      options.versions_per_model == 0 ? 1 : options.versions_per_model;
  std::vector<std::string> model_names;
  std::vector<uint32_t> model_versions;
  for (uint32_t i = 0; i < num_models; ++i) {
    model_names.push_back(StringFormat("load_nb_%u", i));
    uint32_t version = 0;
    for (uint32_t v = 0; v < versions; ++v) {
      HAMLET_ASSIGN_OR_RETURN(
          version, store->PutNaiveBayes(model_names.back(), model));
    }
    model_versions.push_back(version);
  }

  // Pre-build the score blocks outside the window (the loop measures
  // serving, not data prep): a few distinct blocks per client, reused
  // round-robin.
  constexpr uint32_t kBlocksPerClient = 4;
  std::vector<std::vector<std::shared_ptr<const EncodedDataset>>> blocks(
      clients);
  for (uint32_t c = 0; c < clients; ++c) {
    Rng block_rng(options.seed + 1000 + c);
    for (uint32_t b = 0; b < kBlocksPerClient; ++b) {
      std::vector<uint32_t> sample(block_rows);
      for (auto& r : sample) r = block_rng.Uniform(draw.data.num_rows());
      blocks[c].push_back(std::make_shared<const EncodedDataset>(
          draw.data.GatherRows(sample)));
    }
  }

  // --- The measured window. The run owns the global metrics state:
  // reset + fresh collection window, so service-side percentiles and
  // cache counters cover exactly this load. ---
  obs::MetricsRegistry::Global().Reset();
  obs::ScopedCollection collect(true);
  HamletService service(store, service_options);

  // Pacing: with a target rate, client c's i-th request is due at
  // t0 + (i * clients + c) / rate — a deterministic interleave that
  // approximates a global arrival process without shared state.
  const double per_client_interval_ns =
      options.target_rate > 0.0
          ? 1e9 * static_cast<double>(clients) / options.target_rate
          : 0.0;

  std::vector<ClientTally> tallies(clients);
  std::atomic<bool> stop_flag{false};
  const uint64_t t0 = obs::NowNanos();
  const uint64_t t_end =
      t0 + static_cast<uint64_t>(options.duration_s * 1e9);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        const std::vector<std::shared_ptr<const EncodedDataset>>& mine =
            blocks[c];
        const uint64_t phase_ns =
            per_client_interval_ns > 0.0
                ? static_cast<uint64_t>(per_client_interval_ns *
                                        static_cast<double>(c) /
                                        static_cast<double>(clients))
                : 0;
        for (uint64_t i = 0;; ++i) {
          uint64_t now = obs::NowNanos();
          if (now >= t_end || stop_flag.load(std::memory_order_relaxed)) {
            break;
          }
          if (per_client_interval_ns > 0.0) {
            const uint64_t due =
                t0 + phase_ns +
                static_cast<uint64_t>(per_client_interval_ns *
                                      static_cast<double>(i));
            while (now < due) {
              if (now >= t_end) return;
              std::this_thread::sleep_for(
                  std::chrono::nanoseconds(std::min<uint64_t>(due - now,
                                                              200000)));
              now = obs::NowNanos();
            }
          }
          const uint32_t m = static_cast<uint32_t>((i + c) % num_models);
          ScoreRequest req;
          req.model = model_names[m];
          req.version = options.score_latest ? ArtifactStore::kLatest
                                             : model_versions[m];
          req.rows = mine[i % kBlocksPerClient];
          if (options.deadline_ns != 0) {
            req.deadline_ns = now + options.deadline_ns;
          }
          const uint32_t rows = req.rows->num_rows();
          ++tally.offered;
          const uint64_t start = obs::NowNanos();
          Result<ScoreResponse> resp = service.Score(std::move(req));
          if (resp.ok()) {
            ++tally.served;
            tally.rows_scored += rows;
            tally.latency_ns.push_back(obs::NowNanos() - start);
          } else if (resp.status().code() == StatusCode::kOverloaded) {
            ++tally.shed;
          } else if (resp.status().code() == StatusCode::kDeadlineExceeded) {
            ++tally.expired;
          } else {
            ++tally.failed;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s =
      static_cast<double>(obs::NowNanos() - t0) / 1e9;
  service.Stop();

  // --- Merge tallies and fold in the service-side histograms. ---
  LoadReport report;
  report.num_shards = service.num_shards();
  std::vector<uint64_t> latency;
  for (const ClientTally& t : tallies) {
    report.offered += t.offered;
    report.served += t.served;
    report.shed += t.shed;
    report.expired += t.expired;
    report.failed += t.failed;
    report.rows_scored += t.rows_scored;
    latency.insert(latency.end(), t.latency_ns.begin(), t.latency_ns.end());
  }
  report.wall_s = wall_s;
  report.sustained_scores_per_s =
      wall_s > 0.0 ? static_cast<double>(report.rows_scored) / wall_s : 0.0;
  report.sustained_requests_per_s =
      wall_s > 0.0 ? static_cast<double>(report.served) / wall_s : 0.0;
  std::sort(latency.begin(), latency.end());
  report.client_p50_us = PercentileUs(&latency, 0.50);
  report.client_p95_us = PercentileUs(&latency, 0.95);
  report.client_p99_us = PercentileUs(&latency, 0.99);

  auto& reg = obs::MetricsRegistry::Global();
  const auto score_hist = reg.GetHistogram("serve.score_ns").Snapshot();
  if (score_hist.count > 0) {
    report.service_p50_us =
        static_cast<double>(score_hist.PercentileNanos(0.50)) / 1e3;
    report.service_p95_us =
        static_cast<double>(score_hist.PercentileNanos(0.95)) / 1e3;
    report.service_p99_us =
        static_cast<double>(score_hist.PercentileNanos(0.99)) / 1e3;
  }
  const auto batch_hist = reg.GetHistogram("serve.batch_size").Snapshot();
  if (batch_hist.count > 0) {
    report.mean_batch_requests = static_cast<double>(batch_hist.sum_nanos) /
                                 static_cast<double>(batch_hist.count);
  }
  const auto metrics = reg.Snapshot();
  report.warm_cache_hits = metrics.CounterValue("serve.warm_cache_hits");
  report.warm_cache_misses = metrics.CounterValue("serve.warm_cache_misses");
  report.shed_total_metric = metrics.CounterValue("serve.shed_total");
  report.accounting_exact =
      report.served + report.shed + report.expired + report.failed ==
      report.offered;
  return report;
}

std::string FormatLoadReport(const LoadReport& report) {
  std::ostringstream os;
  os << StringFormat(
      "  offered %llu = served %llu + shed %llu + expired %llu + "
      "failed %llu  (%s)\n",
      static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.served),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.expired),
      static_cast<unsigned long long>(report.failed),
      report.accounting_exact ? "exact" : "MISMATCH");
  os << StringFormat(
      "  sustained   %.0f scores/s (%.0f req/s) over %.3fs, %u shards, "
      "mean fused batch %.2f\n",
      report.sustained_scores_per_s, report.sustained_requests_per_s,
      report.wall_s, report.num_shards, report.mean_batch_requests);
  os << StringFormat(
      "  client lat  p50 %9.1f us   p95 %9.1f us   p99 %9.1f us\n",
      report.client_p50_us, report.client_p95_us, report.client_p99_us);
  os << StringFormat(
      "  service lat p50 %9.1f us   p95 %9.1f us   p99 %9.1f us\n",
      report.service_p50_us, report.service_p95_us, report.service_p99_us);
  os << StringFormat(
      "  warm cache  %llu hits / %llu misses; serve.shed_total %llu\n",
      static_cast<unsigned long long>(report.warm_cache_hits),
      static_cast<unsigned long long>(report.warm_cache_misses),
      static_cast<unsigned long long>(report.shed_total_metric));
  return os.str();
}

}  // namespace hamlet::serve
