#ifndef HAMLET_SERVE_ARTIFACT_STORE_H_
#define HAMLET_SERVE_ARTIFACT_STORE_H_

/// \file artifact_store.h
/// A directory-backed, versioned, thread-safe artifact registry — the
/// middle layer of src/serve/. Artifacts are addressed by (name,
/// version); every Put allocates the next version and writes atomically
/// (tmp file + rename), so readers — including other processes scanning
/// the same directory — never observe a half-written artifact.
///
/// Layout: `<root>/<name>/v<version>.hamlet`, each file in the
/// serve/serde.h envelope format. Version numbers start at 1 and only
/// grow; version 0 (kLatest) means "the highest version present".
///
/// Deserialized datasets and models are held in a small in-memory LRU
/// keyed by (name, resolved version) — the same eviction pattern as
/// ml/suff_stats.h's SuffStatsCache — so a scoring service resolving the
/// same model per request pays the disk + decode cost once. Cache hits
/// and misses surface as the `serve.model_cache_hits` /
/// `serve.model_cache_misses` counters when obs collection is enabled.
///
/// Concurrency: the cache hit path takes a SHARED lock only — hits
/// update recency via relaxed atomics, so any number of scoring shards
/// can resolve hot models concurrently without serializing on the
/// store. Misses, inserts, and evictions take the exclusive side.
/// Every Get* returns a shared_ptr that PINS the artifact for as long
/// as the caller holds it: a concurrent evict drops only the cache's
/// reference, never the bytes under a scoring pass in flight.
///
/// Publishes bump a monotonic `generation()` counter (released after
/// the rename lands). A layer caching kLatest resolutions — the
/// service's warm per-shard model cache — revalidates with one relaxed
/// atomic load instead of re-scanning the directory: unchanged
/// generation means no Put has happened, so the cached resolution is
/// still the latest.

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/serde.h"

namespace hamlet::serve {

/// One stored artifact, as List() reports it.
struct ArtifactRef {
  std::string name;
  uint32_t version = 0;
  ArtifactKind kind = ArtifactKind::kEncodedDataset;
  uint64_t size_bytes = 0;
};

/// The versioned registry. All methods are safe to call concurrently.
class ArtifactStore {
 public:
  /// Version argument meaning "resolve the highest stored version".
  static constexpr uint32_t kLatest = 0;

  /// Artifacts live under `root` (created on first Put if missing).
  /// `cache_capacity` bounds the deserialized-artifact LRU.
  explicit ArtifactStore(std::string root, size_t cache_capacity = 8);

  const std::string& root() const { return root_; }

  /// --- Writers: serialize, write tmp, rename; return the new version.
  /// Fails with InvalidArgument on a bad name (names are restricted to
  /// [A-Za-z0-9_.-], no leading dot, so they stay path-safe). ---
  Result<uint32_t> PutDataset(const std::string& name,
                              const EncodedDataset& data);
  Result<uint32_t> PutNaiveBayes(const std::string& name,
                                 const NaiveBayes& model);
  Result<uint32_t> PutLogisticRegression(const std::string& name,
                                         const LogisticRegression& model);
  Result<uint32_t> PutDecisionTree(const std::string& name,
                                   const DecisionTree& model);
  Result<uint32_t> PutGbt(const std::string& name, const Gbt& model);
  Result<uint32_t> PutFsRunReport(const std::string& name,
                                  const FsRunReport& report);

  /// --- Readers: resolve the version (kLatest → highest), consult the
  /// LRU, load + verify + deserialize on miss. NotFound when the name
  /// or version does not exist; serde's typed errors when the file is
  /// corrupt or of the wrong kind. ---
  Result<std::shared_ptr<const EncodedDataset>> GetDataset(
      const std::string& name, uint32_t version = kLatest);
  Result<std::shared_ptr<const NaiveBayes>> GetNaiveBayes(
      const std::string& name, uint32_t version = kLatest);
  Result<std::shared_ptr<const LogisticRegression>> GetLogisticRegression(
      const std::string& name, uint32_t version = kLatest);
  Result<std::shared_ptr<const DecisionTree>> GetDecisionTree(
      const std::string& name, uint32_t version = kLatest);
  Result<std::shared_ptr<const Gbt>> GetGbt(const std::string& name,
                                            uint32_t version = kLatest);
  /// Reports are small and rarely re-read; loaded fresh each call.
  Result<FsRunReport> GetFsRunReport(const std::string& name,
                                     uint32_t version = kLatest);

  /// Highest stored version of `name`; NotFound when absent.
  Result<uint32_t> LatestVersion(const std::string& name) const;

  /// Artifact kind of (name, version) from the file header (cheap probe).
  Result<ArtifactKind> KindOf(const std::string& name,
                              uint32_t version = kLatest) const;

  /// Every stored artifact, sorted by (name, version). Unreadable or
  /// foreign files under the root are skipped, not errors.
  Result<std::vector<ArtifactRef>> List() const;

  /// Drops the deserialized-artifact LRU (not the files).
  void ClearCache();

  /// Lifetime LRU counters (also mirrored into serve.model_cache_*).
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;

  /// Number of successful publishes through this store instance.
  /// Monotonic; bumped after the rename makes the new version visible.
  /// A cached kLatest resolution is still current iff the generation it
  /// was taken at is unchanged (see the \file block).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  struct CacheEntry {
    std::string name;
    uint32_t version = 0;
    ArtifactKind kind = ArtifactKind::kEncodedDataset;
    /// Recency tick, written on the shared-lock hit path — atomic so
    /// concurrent hits on the same entry never race.
    std::atomic<uint64_t> last_used{0};
    std::shared_ptr<const void> value;

    CacheEntry() = default;
    CacheEntry(std::string n, uint32_t v, ArtifactKind k, uint64_t tick,
               std::shared_ptr<const void> val)
        : name(std::move(n)), version(v), kind(k), last_used(tick),
          value(std::move(val)) {}
    CacheEntry(CacheEntry&& other) noexcept
        : name(std::move(other.name)), version(other.version),
          kind(other.kind),
          last_used(other.last_used.load(std::memory_order_relaxed)),
          value(std::move(other.value)) {}
    CacheEntry& operator=(CacheEntry&& other) noexcept {
      name = std::move(other.name);
      version = other.version;
      kind = other.kind;
      last_used.store(other.last_used.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      value = std::move(other.value);
      return *this;
    }
  };

  /// Serialize-agnostic write path shared by every Put.
  Result<uint32_t> PutBytes(const std::string& name,
                            const std::string& bytes);

  /// Directory + file path helpers (no filesystem access).
  std::string DirFor(const std::string& name) const;
  std::string PathFor(const std::string& name, uint32_t version) const;

  /// Resolves kLatest to a concrete version (NotFound when absent).
  Result<uint32_t> ResolveVersion(const std::string& name,
                                  uint32_t version) const;

  /// Highest version currently on disk, 0 when none (caller holds no
  /// lock; the scan reads directory entries only).
  uint32_t ScanLatestVersion(const std::string& name) const;

  std::shared_ptr<const void> CacheLookup(const std::string& name,
                                          uint32_t version,
                                          ArtifactKind kind);
  void CacheInsert(const std::string& name, uint32_t version,
                   ArtifactKind kind, std::shared_ptr<const void> value);

  std::string root_;
  size_t cache_capacity_;

  /// Serializes version allocation (scan + write + rename) per Put.
  mutable std::mutex publish_mu_;
  std::atomic<uint64_t> generation_{0};

  /// Guards the LRU's structure: hits take the shared side, mutation
  /// (insert/evict/clear) the exclusive side. Recency + counters are
  /// atomics so the hit path never upgrades.
  mutable std::shared_mutex cache_mu_;
  mutable std::atomic<uint64_t> tick_{0};
  std::vector<CacheEntry> cache_;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace hamlet::serve

#endif  // HAMLET_SERVE_ARTIFACT_STORE_H_
