#ifndef HAMLET_SERVE_SERDE_H_
#define HAMLET_SERVE_SERDE_H_

/// \file serde.h
/// Versioned binary serialization for Hamlet artifacts: encoded datasets,
/// trained Naive Bayes / logistic regression / decision tree / GBT
/// models, and feature selection run reports. This is the bottom layer of src/serve/ — the
/// artifact store (artifact_store.h) persists these bytes, and the
/// service (service.h) scores against models loaded from them.
///
/// Format (see docs/SERVING.md for the full layout):
///
///   [0..3]   magic "HMLT"
///   [4..5]   format version, little-endian u16 (kFormatVersion)
///   [6..7]   artifact kind, little-endian u16 (ArtifactKind)
///   [8..15]  payload size in bytes, little-endian u64
///   [16..]   kind-specific payload (all integers little-endian, all
///            doubles as their IEEE-754 bit pattern in a little-endian
///            u64 — round trips are bit-exact)
///   [last 4] CRC-32 (common/crc32.h), little-endian u32, over every
///            byte before the footer (header + payload)
///
/// Every Load/Deserialize failure is a typed error: the Status carries a
/// distinct code per failure class plus a "serde/<tag>:" message prefix
/// that SerdeErrorOf() parses back into a SerdeError. Corrupt, truncated,
/// or wrong-version files never crash and never produce a silently wrong
/// artifact (the CRC is verified before any payload parsing).

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/encoded_dataset.h"
#include "fs/runner.h"
#include "ml/decision_tree.h"
#include "ml/gbt.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace hamlet::serve {

/// What a serialized artifact holds. Values are part of the on-disk
/// format — never renumber.
enum class ArtifactKind : uint16_t {
  kEncodedDataset = 1,
  kNaiveBayes = 2,
  kLogisticRegression = 3,
  kFsRunReport = 4,
  kDecisionTree = 5,
  kGradientBoostedTrees = 6,
};

/// Display name ("dataset", "naive_bayes", ...); "unknown" otherwise.
const char* ArtifactKindToString(ArtifactKind kind);

/// True for a kind value this build can deserialize.
bool IsKnownArtifactKind(uint16_t kind);

/// The format version this build writes and reads. Readers reject any
/// other version with kBadVersion (strict versioning; see
/// docs/SERVING.md "Versioning policy").
inline constexpr uint16_t kFormatVersion = 1;

/// Envelope sizes (fixed; the payload length lives in the header).
inline constexpr size_t kHeaderSize = 16;
inline constexpr size_t kFooterSize = 4;

/// The distinct ways deserialization can fail.
enum class SerdeError {
  kNone = 0,       ///< Status was OK or not a serde error.
  kBadMagic,       ///< Not a Hamlet artifact file.
  kBadVersion,     ///< Format version this build does not read.
  kBadKind,        ///< Kind field holds an unknown value.
  kKindMismatch,   ///< Valid artifact, but not the requested kind.
  kTruncated,      ///< Fewer bytes than the header promises.
  kTrailingBytes,  ///< More bytes than the header promises.
  kCrcMismatch,    ///< Checksum failure: payload corrupt.
  kMalformed,      ///< CRC passed but the payload violates its schema.
};

/// Parses the "serde/<tag>:" prefix of a Status message back into the
/// typed error; kNone for OK statuses and non-serde failures.
SerdeError SerdeErrorOf(const Status& status);

/// --- In-memory encode/decode (the file APIs below wrap these). ---

std::string SerializeDataset(const EncodedDataset& data);
Result<EncodedDataset> DeserializeDataset(std::string_view bytes);

std::string SerializeNaiveBayes(const NaiveBayes& model);
Result<NaiveBayes> DeserializeNaiveBayes(std::string_view bytes);

std::string SerializeLogisticRegression(const LogisticRegression& model);
Result<LogisticRegression> DeserializeLogisticRegression(
    std::string_view bytes);

/// Tree payloads store the flat pre-order node arrays of
/// DecisionTreeParams / GbtParams; deserialization re-validates the
/// structure (ValidateTreeStructure), so a CRC-passing but inconsistent
/// tree is kMalformed, never a wild pointer walk.
std::string SerializeDecisionTree(const DecisionTree& model);
Result<DecisionTree> DeserializeDecisionTree(std::string_view bytes);

std::string SerializeGbt(const Gbt& model);
Result<Gbt> DeserializeGbt(std::string_view bytes);

/// FsRunReport serialization persists the selection and every scalar;
/// the embedded trace_summary is re-derived on load from those scalars
/// (the same two-stage digest fs/runner.cc builds), not stored.
std::string SerializeFsRunReport(const FsRunReport& report);
Result<FsRunReport> DeserializeFsRunReport(std::string_view bytes);

/// Validates the envelope (magic, version, kind, size, CRC) and returns
/// the artifact kind without parsing the payload.
Result<ArtifactKind> KindOfSerialized(std::string_view bytes);

/// --- File APIs. Save writes the serialized bytes; Load reads and
/// deserializes with the full typed-error contract. Writes are plain
/// (the artifact store layers tmp-file + rename atomicity on top). ---

Status SaveDataset(const EncodedDataset& data, const std::string& path);
Result<EncodedDataset> LoadDataset(const std::string& path);

Status SaveNaiveBayes(const NaiveBayes& model, const std::string& path);
Result<NaiveBayes> LoadNaiveBayes(const std::string& path);

Status SaveLogisticRegression(const LogisticRegression& model,
                              const std::string& path);
Result<LogisticRegression> LoadLogisticRegression(const std::string& path);

Status SaveDecisionTree(const DecisionTree& model, const std::string& path);
Result<DecisionTree> LoadDecisionTree(const std::string& path);

Status SaveGbt(const Gbt& model, const std::string& path);
Result<Gbt> LoadGbt(const std::string& path);

Status SaveFsRunReport(const FsRunReport& report, const std::string& path);
Result<FsRunReport> LoadFsRunReport(const std::string& path);

/// Reads only the header and reports the artifact kind (no CRC check —
/// this is the cheap "what is this file?" probe the store's List uses).
Result<ArtifactKind> PeekKind(const std::string& path);

/// Whole-file byte IO (binary, IOError on failure); exposed for the
/// store and tests.
Result<std::string> ReadFileBytes(const std::string& path);
Status WriteFileBytes(const std::string& path, std::string_view bytes);

}  // namespace hamlet::serve

#endif  // HAMLET_SERVE_SERDE_H_
