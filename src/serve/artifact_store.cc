#include "serve/artifact_store.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace hamlet::serve {

namespace fs = std::filesystem;

namespace {

/// Path-safe artifact names: no separators, no leading dot, so a name
/// can never escape the store root or collide with tmp files.
Status ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 200) {
    return Status::InvalidArgument(
        StringFormat("artifact name '%s' must be 1..200 characters",
                     name.c_str()));
  }
  if (name.front() == '.') {
    return Status::InvalidArgument(StringFormat(
        "artifact name '%s' must not start with '.'", name.c_str()));
  }
  for (char ch : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(ch)) ||
                    ch == '_' || ch == '.' || ch == '-';
    if (!ok) {
      return Status::InvalidArgument(StringFormat(
          "artifact name '%s' may only contain [A-Za-z0-9_.-]",
          name.c_str()));
    }
  }
  return Status::OK();
}

/// Parses "v<digits>.hamlet" → version, or 0 when the name is foreign.
uint32_t ParseVersionFileName(const std::string& file_name) {
  constexpr std::string_view kSuffix = ".hamlet";
  if (file_name.size() <= 1 + kSuffix.size() || file_name[0] != 'v') {
    return 0;
  }
  if (file_name.compare(file_name.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) != 0) {
    return 0;
  }
  uint64_t version = 0;
  for (size_t i = 1; i < file_name.size() - kSuffix.size(); ++i) {
    char ch = file_name[i];
    if (ch < '0' || ch > '9') return 0;
    version = version * 10 + static_cast<uint64_t>(ch - '0');
    if (version > UINT32_MAX) return 0;
  }
  return static_cast<uint32_t>(version);
}

obs::Counter& CacheHitCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("serve.model_cache_hits");
  return counter;
}

obs::Counter& CacheMissCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("serve.model_cache_misses");
  return counter;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root, size_t cache_capacity)
    : root_(std::move(root)),
      cache_capacity_(std::max<size_t>(1, cache_capacity)) {}

std::string ArtifactStore::DirFor(const std::string& name) const {
  return (fs::path(root_) / name).string();
}

std::string ArtifactStore::PathFor(const std::string& name,
                                   uint32_t version) const {
  return (fs::path(root_) / name /
          StringFormat("v%u.hamlet", version))
      .string();
}

uint32_t ArtifactStore::ScanLatestVersion(const std::string& name) const {
  std::error_code ec;
  fs::directory_iterator it(DirFor(name), ec);
  if (ec) return 0;
  uint32_t latest = 0;
  for (const fs::directory_entry& entry : it) {
    latest = std::max(latest,
                      ParseVersionFileName(entry.path().filename().string()));
  }
  return latest;
}

Result<uint32_t> ArtifactStore::ResolveVersion(const std::string& name,
                                               uint32_t version) const {
  HAMLET_RETURN_NOT_OK(ValidateName(name));
  if (version != kLatest) return version;
  uint32_t latest = ScanLatestVersion(name);
  if (latest == 0) {
    return Status::NotFound(
        StringFormat("no artifact named '%s' in '%s'", name.c_str(),
                     root_.c_str()));
  }
  return latest;
}

Result<uint32_t> ArtifactStore::LatestVersion(const std::string& name) const {
  return ResolveVersion(name, kLatest);
}

Result<uint32_t> ArtifactStore::PutBytes(const std::string& name,
                                         const std::string& bytes) {
  HAMLET_RETURN_NOT_OK(ValidateName(name));
  // The mutex serializes version allocation within the process; the
  // rename makes the publish atomic for every observer.
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::error_code ec;
  fs::create_directories(DirFor(name), ec);
  if (ec) {
    return Status::IOError(
        StringFormat("cannot create artifact directory '%s': %s",
                     DirFor(name).c_str(), ec.message().c_str()));
  }
  const uint32_t version = ScanLatestVersion(name) + 1;
  const std::string final_path = PathFor(name, version);
  const std::string tmp_path =
      (fs::path(DirFor(name)) / StringFormat(".v%u.tmp", version)).string();
  HAMLET_RETURN_NOT_OK(WriteFileBytes(tmp_path, bytes));
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::IOError(
        StringFormat("cannot publish artifact '%s' v%u: rename failed",
                     name.c_str(), version));
  }
  // Release AFTER the rename: an observer that sees the new generation
  // is guaranteed to also see the new version on disk.
  generation_.fetch_add(1, std::memory_order_release);
  return version;
}

Result<uint32_t> ArtifactStore::PutDataset(const std::string& name,
                                           const EncodedDataset& data) {
  return PutBytes(name, SerializeDataset(data));
}

Result<uint32_t> ArtifactStore::PutNaiveBayes(const std::string& name,
                                              const NaiveBayes& model) {
  return PutBytes(name, SerializeNaiveBayes(model));
}

Result<uint32_t> ArtifactStore::PutLogisticRegression(
    const std::string& name, const LogisticRegression& model) {
  return PutBytes(name, SerializeLogisticRegression(model));
}

Result<uint32_t> ArtifactStore::PutDecisionTree(const std::string& name,
                                                const DecisionTree& model) {
  return PutBytes(name, SerializeDecisionTree(model));
}

Result<uint32_t> ArtifactStore::PutGbt(const std::string& name,
                                       const Gbt& model) {
  return PutBytes(name, SerializeGbt(model));
}

Result<uint32_t> ArtifactStore::PutFsRunReport(const std::string& name,
                                               const FsRunReport& report) {
  return PutBytes(name, SerializeFsRunReport(report));
}

std::shared_ptr<const void> ArtifactStore::CacheLookup(
    const std::string& name, uint32_t version, ArtifactKind kind) {
  // Hit path: shared lock only. The returned shared_ptr copy pins the
  // artifact — a concurrent evict (exclusive side) can remove the
  // entry, but never the value a pass already holds.
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  for (CacheEntry& entry : cache_) {
    if (entry.version == version && entry.kind == kind &&
        entry.name == name) {
      entry.last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      CacheHitCounter().Add();
      return entry.value;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMissCounter().Add();
  return nullptr;
}

void ArtifactStore::CacheInsert(const std::string& name, uint32_t version,
                                ArtifactKind kind,
                                std::shared_ptr<const void> value) {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  for (CacheEntry& entry : cache_) {
    if (entry.version == version && entry.kind == kind &&
        entry.name == name) {
      // Lost a benign race; keep the winner.
      entry.last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return;
    }
  }
  if (cache_.size() >= cache_capacity_) {
    auto victim = std::min_element(
        cache_.begin(), cache_.end(),
        [](const CacheEntry& a, const CacheEntry& b) {
          return a.last_used.load(std::memory_order_relaxed) <
                 b.last_used.load(std::memory_order_relaxed);
        });
    cache_.erase(victim);
  }
  cache_.emplace_back(name, version, kind,
                      tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::move(value));
}

Result<std::shared_ptr<const EncodedDataset>> ArtifactStore::GetDataset(
    const std::string& name, uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  if (std::shared_ptr<const void> hit =
          CacheLookup(name, v, ArtifactKind::kEncodedDataset)) {
    return std::static_pointer_cast<const EncodedDataset>(hit);
  }
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(EncodedDataset data, DeserializeDataset(*bytes));
  auto value = std::make_shared<const EncodedDataset>(std::move(data));
  CacheInsert(name, v, ArtifactKind::kEncodedDataset, value);
  return value;
}

Result<std::shared_ptr<const NaiveBayes>> ArtifactStore::GetNaiveBayes(
    const std::string& name, uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  if (std::shared_ptr<const void> hit =
          CacheLookup(name, v, ArtifactKind::kNaiveBayes)) {
    return std::static_pointer_cast<const NaiveBayes>(hit);
  }
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(NaiveBayes model, DeserializeNaiveBayes(*bytes));
  auto value = std::make_shared<const NaiveBayes>(std::move(model));
  CacheInsert(name, v, ArtifactKind::kNaiveBayes, value);
  return value;
}

Result<std::shared_ptr<const LogisticRegression>>
ArtifactStore::GetLogisticRegression(const std::string& name,
                                     uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  if (std::shared_ptr<const void> hit =
          CacheLookup(name, v, ArtifactKind::kLogisticRegression)) {
    return std::static_pointer_cast<const LogisticRegression>(hit);
  }
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(LogisticRegression model,
                          DeserializeLogisticRegression(*bytes));
  auto value = std::make_shared<const LogisticRegression>(std::move(model));
  CacheInsert(name, v, ArtifactKind::kLogisticRegression, value);
  return value;
}

Result<std::shared_ptr<const DecisionTree>> ArtifactStore::GetDecisionTree(
    const std::string& name, uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  if (std::shared_ptr<const void> hit =
          CacheLookup(name, v, ArtifactKind::kDecisionTree)) {
    return std::static_pointer_cast<const DecisionTree>(hit);
  }
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(DecisionTree model, DeserializeDecisionTree(*bytes));
  auto value = std::make_shared<const DecisionTree>(std::move(model));
  CacheInsert(name, v, ArtifactKind::kDecisionTree, value);
  return value;
}

Result<std::shared_ptr<const Gbt>> ArtifactStore::GetGbt(
    const std::string& name, uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  if (std::shared_ptr<const void> hit =
          CacheLookup(name, v, ArtifactKind::kGradientBoostedTrees)) {
    return std::static_pointer_cast<const Gbt>(hit);
  }
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(Gbt model, DeserializeGbt(*bytes));
  auto value = std::make_shared<const Gbt>(std::move(model));
  CacheInsert(name, v, ArtifactKind::kGradientBoostedTrees, value);
  return value;
}

Result<FsRunReport> ArtifactStore::GetFsRunReport(const std::string& name,
                                                  uint32_t version) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  Result<std::string> bytes = ReadFileBytes(PathFor(name, v));
  if (!bytes.ok()) {
    return Status::NotFound(
        StringFormat("artifact '%s' v%u not found in '%s'", name.c_str(), v,
                     root_.c_str()));
  }
  return DeserializeFsRunReport(*bytes);
}

Result<ArtifactKind> ArtifactStore::KindOf(const std::string& name,
                                           uint32_t version) const {
  HAMLET_ASSIGN_OR_RETURN(uint32_t v, ResolveVersion(name, version));
  return PeekKind(PathFor(name, v));
}

Result<std::vector<ArtifactRef>> ArtifactStore::List() const {
  std::vector<ArtifactRef> out;
  std::error_code ec;
  fs::directory_iterator root_it(root_, ec);
  if (ec) return out;  // An absent root is an empty store, not an error.
  for (const fs::directory_entry& dir : root_it) {
    if (!dir.is_directory(ec) || ec) continue;
    const std::string name = dir.path().filename().string();
    fs::directory_iterator file_it(dir.path(), ec);
    if (ec) continue;
    for (const fs::directory_entry& file : file_it) {
      const uint32_t version =
          ParseVersionFileName(file.path().filename().string());
      if (version == 0) continue;
      Result<ArtifactKind> kind = PeekKind(file.path().string());
      if (!kind.ok()) continue;  // Foreign or still-corrupt file: skip.
      const uint64_t size = file.file_size(ec);
      out.push_back(ArtifactRef{name, version, *kind, ec ? 0 : size});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ArtifactRef& a, const ArtifactRef& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return out;
}

void ArtifactStore::ClearCache() {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  cache_.clear();
}

uint64_t ArtifactStore::cache_hits() const {
  return cache_hits_.load(std::memory_order_relaxed);
}

uint64_t ArtifactStore::cache_misses() const {
  return cache_misses_.load(std::memory_order_relaxed);
}

}  // namespace hamlet::serve
