#include "serve/service.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/splits.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"

namespace hamlet::serve {

namespace {

/// Static-local metric handles so the registry mutex is paid once per
/// process, not per request (the obs layer's caching idiom).
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& advise_requests;
  obs::Counter& score_requests;
  obs::Counter& select_requests;
  obs::Counter& score_rows;
  obs::Counter& score_batches;
  obs::Counter& shed_total;
  obs::Counter& deadline_expired;
  obs::Counter& warm_cache_hits;
  obs::Counter& warm_cache_misses;
  obs::Histogram& advise_ns;
  obs::Histogram& score_ns;
  obs::Histogram& select_ns;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& batch_size;
  obs::Histogram& queue_depth;

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ServeMetrics m{reg.GetCounter("serve.requests"),
                          reg.GetCounter("serve.advise_requests"),
                          reg.GetCounter("serve.score_requests"),
                          reg.GetCounter("serve.select_requests"),
                          reg.GetCounter("serve.score_rows"),
                          reg.GetCounter("serve.score_batches"),
                          reg.GetCounter("serve.shed_total"),
                          reg.GetCounter("serve.deadline_expired"),
                          reg.GetCounter("serve.warm_cache_hits"),
                          reg.GetCounter("serve.warm_cache_misses"),
                          reg.GetHistogram("serve.advise_ns"),
                          reg.GetHistogram("serve.score_ns"),
                          reg.GetHistogram("serve.select_ns"),
                          reg.GetHistogram("serve.queue_wait_ns"),
                          reg.GetHistogram("serve.batch_size"),
                          reg.GetHistogram("serve.queue_depth")};
    return m;
  }
};

struct AdvisePending {
  AdviseRequest request;
  std::promise<Result<JoinPlan>> out;
};

struct ScorePending {
  ScoreRequest request;
  std::promise<Result<ScoreResponse>> out;
};

struct SelectPending {
  SelectFeaturesRequest request;
  std::promise<Result<SelectFeaturesResponse>> out;
};

struct Pending {
  std::variant<AdvisePending, ScorePending, SelectPending> op;
  uint64_t enqueue_ns = 0;  ///< 0 when collection was off at enqueue.
};

uint64_t DeadlineOf(const Pending& p) {
  return std::visit([](const auto& o) { return o.request.deadline_ns; }, p.op);
}

/// Answers a pending request with a typed failure without executing it.
void FailPending(Pending* p, Status status) {
  std::visit([&status](auto& o) { o.out.set_value(std::move(status)); },
             p->op);
}

/// Exactly one of the pointers is set.
struct ResolvedModel {
  std::shared_ptr<const NaiveBayes> nb;
  std::shared_ptr<const LogisticRegression> lr;
  std::shared_ptr<const DecisionTree> tree;
  std::shared_ptr<const Gbt> gbt;
};

/// The block must have every trained feature at its training-time
/// cardinality; anything else would index the model's tables out of
/// bounds (NB) or shift the zero-vector convention (LR).
template <typename Model>
Status ValidateBlockForModel(const EncodedDataset& block, const Model& model,
                             const char* model_kind) {
  const std::vector<uint32_t>& features = model.trained_features();
  for (size_t jj = 0; jj < features.size(); ++jj) {
    uint32_t j = features[jj];
    if (j >= block.num_features()) {
      return Status::InvalidArgument(StringFormat(
          "score block has %u features but %s model was trained on "
          "feature index %u",
          block.num_features(), model_kind, j));
    }
    uint32_t want = model.trained_cardinality(jj);
    if (block.meta(j).cardinality != want) {
      return Status::InvalidArgument(StringFormat(
          "score block feature %u has cardinality %u but %s model was "
          "trained with cardinality %u",
          j, block.meta(j).cardinality, model_kind, want));
    }
  }
  return Status::OK();
}

/// Per-block outcome of one scoring pass. A block-level failure (layout
/// mismatch) fails only that block's request, not the batch.
struct BlockScore {
  Status status = Status::OK();
  std::vector<uint32_t> predictions;
};

/// FNV-1a over the model name, then the version folded in — the shard
/// routing hash. Must be a pure function of (model, version) so every
/// request for one key lands on one shard (the fusion invariant).
uint64_t ModelKeyHash(const std::string& model, uint32_t version) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : model) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= version;
  h *= 1099511628211ull;
  return h;
}

}  // namespace

struct HamletService::Impl {
  /// A resolved model pinned in a dispatcher's warm cache. Concrete
  /// versions are immutable, so their entries never expire; kLatest
  /// entries are valid only while the store's publish generation is
  /// unchanged.
  struct WarmEntry {
    ResolvedModel model;
    uint64_t generation = 0;  ///< store->generation() read BEFORE resolving.
  };

  /// One dispatcher shard: a bounded MPSC queue, the thread draining
  /// it, and that thread's private warm model cache (no lock — only the
  /// dispatcher touches it).
  struct Shard {
    explicit Shard(size_t capacity) : queue(capacity) {}
    BoundedMpscQueue<Pending> queue;
    std::thread dispatcher;
    std::unordered_map<std::string, WarmEntry> warm_cache;
  };

  ArtifactStore* store = nullptr;
  ServiceOptions options;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<uint32_t> round_robin{0};  ///< Advise/Select placement.
  std::atomic<bool> stopped{false};

  /// Keeps each dispatcher's warm cache from growing without bound when
  /// clients cycle through many model names. Crossing it just resets
  /// the map — correctness never depends on an entry being present.
  static constexpr size_t kWarmCacheMaxEntries = 256;

  uint32_t ShardForKey(const std::string& model, uint32_t version) const {
    return static_cast<uint32_t>(ModelKeyHash(model, version) %
                                 shards.size());
  }

  template <typename PendingT, typename ResponseT>
  Result<ResponseT> EnqueueAndWait(uint32_t shard_index, PendingT pending) {
    std::future<Result<ResponseT>> future = pending.out.get_future();
    Shard& shard = *shards[shard_index];
    Pending p;
    p.op = std::move(pending);
    p.enqueue_ns = obs::Enabled() ? obs::NowNanos() : 0;
    MpscPushResult pushed =
        options.overload_policy == OverloadPolicy::kShed
            ? shard.queue.TryPush(std::move(p), options.shed_high_water)
            : shard.queue.PushBlocking(std::move(p));
    switch (pushed) {
      case MpscPushResult::kOk:
        break;
      case MpscPushResult::kOverloaded: {
        ServeMetrics::Get().shed_total.Add();
        return Status::Overloaded(StringFormat(
            "shard %u queue is beyond its high-water mark; retry with "
            "backoff",
            shard_index));
      }
      case MpscPushResult::kStopped:
        return Status::FailedPrecondition("HamletService is stopped");
    }
    if (obs::Enabled()) {
      ServeMetrics::Get().queue_depth.RecordAlways(
          static_cast<uint64_t>(shard.queue.size()));
    }
    return future.get();
  }

  static void RecordQueueWait(const Pending& p) {
    if (p.enqueue_ns != 0 && obs::Enabled()) {
      ServeMetrics::Get().queue_wait_ns.RecordAlways(obs::NowNanos() -
                                                     p.enqueue_ns);
    }
  }

  /// Deadline gate at dequeue: a request whose absolute deadline passed
  /// while it queued is answered kDeadlineExceeded without any side
  /// effects. Returns true when the request was consumed (expired).
  static bool ExpireIfPastDeadline(Pending* p) {
    const uint64_t deadline = DeadlineOf(*p);
    if (deadline == 0 || obs::NowNanos() < deadline) return false;
    ServeMetrics::Get().deadline_expired.Add();
    FailPending(p, Status::DeadlineExceeded(
                       "deadline expired while the request was queued"));
    return true;
  }

  void DispatchLoop(uint32_t shard_index) {
    Shard& shard = *shards[shard_index];
    for (;;) {
      Pending head;
      if (!shard.queue.PopHead(&head)) return;  // Stopped and drained.
      std::vector<Pending> coalesced;
      if (options.batch_scoring &&
          std::holds_alternative<ScorePending>(head.op)) {
        // Coalesce queued Score requests for the same (model, version)
        // behind the head into one scoring pass. Requests left behind
        // keep their arrival order. A kLatest request only batches with
        // other kLatest requests — resolution happens once per pass, so
        // mixing could pin a concrete version a client did not ask for.
        const ScoreRequest& lead = std::get<ScorePending>(head.op).request;
        shard.queue.ExtractMatching(
            [&lead](const Pending& p) {
              const auto* sp = std::get_if<ScorePending>(&p.op);
              return sp != nullptr && sp->request.model == lead.model &&
                     sp->request.version == lead.version;
            },
            options.max_batch - 1, &coalesced);
      }
      RecordQueueWait(head);
      for (const Pending& c : coalesced) RecordQueueWait(c);
      if (std::holds_alternative<ScorePending>(head.op)) {
        std::vector<ScorePending> group;
        group.reserve(1 + coalesced.size());
        if (!ExpireIfPastDeadline(&head)) {
          group.push_back(std::move(std::get<ScorePending>(head.op)));
        }
        for (Pending& c : coalesced) {
          if (!ExpireIfPastDeadline(&c)) {
            group.push_back(std::move(std::get<ScorePending>(c.op)));
          }
        }
        if (!group.empty()) DoScoreGroup(shard_index, std::move(group));
      } else if (ExpireIfPastDeadline(&head)) {
        continue;
      } else if (auto* a = std::get_if<AdvisePending>(&head.op)) {
        DoAdvise(std::move(*a));
      } else {
        DoSelect(std::move(std::get<SelectPending>(head.op)));
      }
    }
  }

  void DoAdvise(AdvisePending p) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add();
    m.advise_requests.Add();
    obs::TraceSpan span("serve.advise");
    span.AddAttr("candidates",
                 static_cast<uint64_t>(p.request.candidates.size()));
    obs::ScopedLatency latency(m.advise_ns);
    p.out.set_value(AdviseJoinsFromStats(p.request.n_train,
                                         p.request.label_entropy_bits,
                                         p.request.candidates,
                                         p.request.options));
  }

  /// Tries each servable model kind in turn; a kind-mismatch means "try
  /// the next kind", any other failure is final.
  Result<ResolvedModel> ResolveModel(const std::string& name,
                                     uint32_t version) {
    Result<std::shared_ptr<const NaiveBayes>> nb =
        store->GetNaiveBayes(name, version);
    if (nb.ok()) {
      return ResolvedModel{std::move(nb).ValueOrDie(), nullptr, nullptr,
                           nullptr};
    }
    if (SerdeErrorOf(nb.status()) != SerdeError::kKindMismatch) {
      return nb.status();
    }
    Result<std::shared_ptr<const LogisticRegression>> lr =
        store->GetLogisticRegression(name, version);
    if (lr.ok()) {
      return ResolvedModel{nullptr, std::move(lr).ValueOrDie(), nullptr,
                           nullptr};
    }
    if (SerdeErrorOf(lr.status()) != SerdeError::kKindMismatch) {
      return lr.status();
    }
    Result<std::shared_ptr<const DecisionTree>> tree =
        store->GetDecisionTree(name, version);
    if (tree.ok()) {
      return ResolvedModel{nullptr, nullptr, std::move(tree).ValueOrDie(),
                           nullptr};
    }
    if (SerdeErrorOf(tree.status()) != SerdeError::kKindMismatch) {
      return tree.status();
    }
    HAMLET_ASSIGN_OR_RETURN(std::shared_ptr<const Gbt> gbt,
                            store->GetGbt(name, version));
    return ResolvedModel{nullptr, nullptr, nullptr, std::move(gbt)};
  }

  /// Dispatcher-side resolution through the shard's warm cache. Only
  /// the shard's own dispatcher thread may call this (the map is
  /// unlocked by design). A hit costs one hash lookup — and for kLatest
  /// one atomic generation load — instead of the artifact-store path
  /// (cache mutex + directory scan for kLatest).
  Result<ResolvedModel> ResolveOnShard(Shard* shard, const std::string& name,
                                       uint32_t version) {
    if (!options.warm_model_cache) return ResolveModel(name, version);
    ServeMetrics& m = ServeMetrics::Get();
    const std::string key = name + "@" + std::to_string(version);
    auto it = shard->warm_cache.find(key);
    if (it != shard->warm_cache.end()) {
      // Concrete versions are immutable — always valid. kLatest is
      // valid only while no publish happened since the entry was
      // resolved.
      if (version != ArtifactStore::kLatest ||
          it->second.generation == store->generation()) {
        m.warm_cache_hits.Add();
        return it->second.model;
      }
      shard->warm_cache.erase(it);
    }
    m.warm_cache_misses.Add();
    // Read the generation BEFORE resolving: if a publish races the
    // resolve, the entry is stamped stale and the next batch re-resolves
    // — conservative, never serves a version older than it cached.
    const uint64_t generation = store->generation();
    HAMLET_ASSIGN_OR_RETURN(ResolvedModel model, ResolveModel(name, version));
    if (shard->warm_cache.size() >= kWarmCacheMaxEntries) {
      shard->warm_cache.clear();
    }
    shard->warm_cache.emplace(key, WarmEntry{model, generation});
    return model;
  }

  /// The scoring pass: validate each block, score every valid row in
  /// one parallel region. `preresolved` carries the dispatcher's
  /// warm-cache resolution (including its failure — counted against the
  /// pass's requests exactly like an inline resolve failure);
  /// ScoreBatchDirect passes nullptr and resolves through the store
  /// here. Top-level failure fails every request of the pass.
  Result<std::vector<BlockScore>> ScorePass(
      const std::string& model_name, uint32_t version,
      const std::vector<const EncodedDataset*>& blocks,
      const Result<ResolvedModel>* preresolved, uint32_t shard_index) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add(blocks.size());
    m.score_requests.Add(blocks.size());
    m.score_batches.Add();
    obs::TraceSpan span("serve.score");
    span.AddAttr("batch_requests", static_cast<uint64_t>(blocks.size()));
    span.AddAttr("shard", shard_index);
    const uint64_t start_ns = obs::Enabled() ? obs::NowNanos() : 0;
    if (start_ns != 0) {
      m.batch_size.RecordAlways(static_cast<uint64_t>(blocks.size()));
    }

    ResolvedModel model;
    if (preresolved != nullptr) {
      HAMLET_RETURN_NOT_OK(preresolved->status());
      model = preresolved->ValueOrDie();
    } else {
      HAMLET_ASSIGN_OR_RETURN(model, ResolveModel(model_name, version));
    }

    std::vector<BlockScore> out(blocks.size());
    // Row offsets of the valid blocks within the fused index space.
    std::vector<size_t> valid;
    std::vector<uint64_t> base;
    uint64_t total_rows = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
      const EncodedDataset& block = *blocks[i];
      Status st;
      if (model.nb != nullptr) {
        st = ValidateBlockForModel(block, *model.nb, "naive_bayes");
      } else if (model.lr != nullptr) {
        st = ValidateBlockForModel(block, *model.lr, "logistic_regression");
      } else if (model.tree != nullptr) {
        st = ValidateBlockForModel(block, *model.tree, "decision_tree");
      } else {
        st = ValidateBlockForModel(block, *model.gbt, "gbt");
      }
      if (!st.ok()) {
        out[i].status = std::move(st);
        continue;
      }
      out[i].predictions.resize(block.num_rows());
      valid.push_back(i);
      base.push_back(total_rows);
      total_rows += block.num_rows();
    }
    if (total_rows > UINT32_MAX) {
      return Status::InvalidArgument(StringFormat(
          "score batch holds %llu rows; at most 2^32 - 1 per pass",
          static_cast<unsigned long long>(total_rows)));
    }
    span.AddAttr("rows", total_rows);
    m.score_rows.Add(total_rows);

    const NaiveBayes* nb = model.nb.get();
    const LogisticRegression* lr = model.lr.get();
    const DecisionTree* tree = model.tree.get();
    const Gbt* gbt = model.gbt.get();
    // Same argmax tie-break as every PredictOne in ml/: first
    // strictly-greatest class wins.
    const auto argmax = [](const std::vector<double>& scores) {
      uint32_t best = 0;
      for (uint32_t c = 1; c < scores.size(); ++c) {
        if (scores[c] > scores[best]) best = c;
      }
      return best;
    };
    ThreadPool::Global().ParallelFor(
        static_cast<uint32_t>(total_rows), options.num_threads,
        [&](uint32_t fused) {
          // Fused index → (block, row). Blocks are few; linear scan over
          // the offset table stays cheap and branch-predictable.
          size_t b = valid.size() - 1;
          while (base[b] > fused) --b;
          const EncodedDataset& block = *blocks[valid[b]];
          const uint32_t row = static_cast<uint32_t>(fused - base[b]);
          uint32_t pred;
          thread_local std::vector<double> scores;
          if (nb != nullptr) {
            nb->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else if (tree != nullptr) {
            tree->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else if (gbt != nullptr) {
            gbt->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else {
            pred = lr->PredictOne(block, row);
          }
          out[valid[b]].predictions[row] = pred;
        });

    if (start_ns != 0) {
      const uint64_t elapsed = obs::NowNanos() - start_ns;
      // One observation per request of the pass, so per-request latency
      // percentiles stay meaningful under batching.
      for (size_t i = 0; i < blocks.size(); ++i) {
        m.score_ns.RecordAlways(elapsed);
      }
      // Cost profile: one record per pass. rows_out = predictions
      // written; build_rows = requests coalesced into the pass; shards =
      // dispatcher shards of the data plane.
      obs::OperatorFeatures features;
      features.op = "serve.score";
      features.rows_in = total_rows;
      features.rows_out = total_rows;
      features.build_rows = blocks.size();
      features.num_threads = options.num_threads == 0
                                 ? ThreadPool::Global().DefaultShards()
                                 : options.num_threads;
      features.shards = options.num_shards;
      obs::CostObservation cost;
      cost.total_ns = elapsed;
      obs::CostProfileStore::Global().Record(features, cost);
    }
    return out;
  }

  void DoScoreGroup(uint32_t shard_index, std::vector<ScorePending> group) {
    const std::string& model_name = group[0].request.model;
    const uint32_t version = group[0].request.version;
    std::vector<const EncodedDataset*> blocks;
    blocks.reserve(group.size());
    for (const ScorePending& g : group) blocks.push_back(g.request.rows.get());
    // Resolve through the shard's warm cache before the pass; the
    // shared_ptrs inside keep the artifacts pinned for its duration.
    Result<ResolvedModel> model =
        ResolveOnShard(shards[shard_index].get(), model_name, version);
    Result<std::vector<BlockScore>> scored =
        ScorePass(model_name, version, blocks, &model, shard_index);
    if (!scored.ok()) {
      for (ScorePending& g : group) g.out.set_value(scored.status());
      return;
    }
    std::vector<BlockScore>& per_block = scored.ValueOrDie();
    for (size_t i = 0; i < group.size(); ++i) {
      if (!per_block[i].status.ok()) {
        group[i].out.set_value(std::move(per_block[i].status));
        continue;
      }
      ScoreResponse response;
      response.predictions = std::move(per_block[i].predictions);
      response.batch_requests = static_cast<uint32_t>(group.size());
      group[i].out.set_value(std::move(response));
    }
  }

  Result<SelectFeaturesResponse> RunSelect(SelectFeaturesRequest request) {
    if (request.model_name.empty()) {
      return Status::InvalidArgument(
          "SelectFeaturesRequest.model_name must be set");
    }
    HAMLET_ASSIGN_OR_RETURN(
        std::shared_ptr<const EncodedDataset> data,
        store->GetDataset(request.dataset, request.dataset_version));
    Rng rng(request.seed);
    HoldoutSplit split = MakeHoldoutSplit(data->num_rows(), rng);
    std::unique_ptr<FeatureSelector> selector =
        MakeSelector(request.method, options.num_threads);
    ClassifierFactory factory = MakeNaiveBayesFactory(request.nb_alpha);
    std::vector<uint32_t> candidates(data->num_features());
    std::iota(candidates.begin(), candidates.end(), 0u);
    HAMLET_ASSIGN_OR_RETURN(
        FsRunReport report,
        RunFeatureSelection(*selector, *data, split, factory, request.metric,
                            candidates));
    // Refit the winner exactly as the runner's final fit did, so the
    // persisted model reproduces the reported holdout error.
    NaiveBayes model(request.nb_alpha);
    HAMLET_RETURN_NOT_OK(
        model.Train(*data, split.train, report.selection.selected));
    SelectFeaturesResponse response;
    HAMLET_ASSIGN_OR_RETURN(response.model_version,
                            store->PutNaiveBayes(request.model_name, model));
    HAMLET_ASSIGN_OR_RETURN(
        response.report_version,
        store->PutFsRunReport(request.model_name + ".fs_report", report));
    response.report = std::move(report);
    return response;
  }

  void DoSelect(SelectPending p) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add();
    m.select_requests.Add();
    obs::TraceSpan span("serve.select_features");
    span.AddAttr("method", std::string(FsMethodToString(p.request.method)));
    obs::ScopedLatency latency(m.select_ns);
    p.out.set_value(RunSelect(std::move(p.request)));
  }
};

HamletService::HamletService(ArtifactStore* store, ServiceOptions options)
    : impl_(std::make_unique<Impl>()), options_(options) {
  HAMLET_CHECK(store != nullptr, "HamletService needs an ArtifactStore");
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.num_shards == 0) {
    // Auto: one dispatcher per hardware thread, capped — shards beyond
    // the core count only buy routing isolation, not parallelism.
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_shards = hw == 0 ? 1 : (hw > 4 ? 4 : hw);
  }
  impl_->store = store;
  impl_->options = options_;
  impl_->shards.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    impl_->shards.push_back(
        std::make_unique<Impl::Shard>(options_.queue_capacity));
  }
  // Threads only after every shard exists: a dispatcher may inspect
  // shards.size() through ShardForKey.
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    impl_->shards[s]->dispatcher =
        std::thread([impl = impl_.get(), s] { impl->DispatchLoop(s); });
  }
}

HamletService::~HamletService() { Stop(); }

void HamletService::Stop() {
  impl_->stopped.store(true, std::memory_order_relaxed);
  for (auto& shard : impl_->shards) shard->queue.Stop();
  for (auto& shard : impl_->shards) {
    if (shard->dispatcher.joinable()) shard->dispatcher.join();
  }
}

Result<JoinPlan> HamletService::Advise(AdviseRequest request) {
  AdvisePending pending;
  pending.request = std::move(request);
  const uint32_t shard =
      impl_->round_robin.fetch_add(1, std::memory_order_relaxed) %
      impl_->shards.size();
  return impl_->EnqueueAndWait<AdvisePending, JoinPlan>(shard,
                                                        std::move(pending));
}

Result<ScoreResponse> HamletService::Score(ScoreRequest request) {
  if (request.rows == nullptr) {
    return Status::InvalidArgument("ScoreRequest.rows must be set");
  }
  if (request.model.empty()) {
    return Status::InvalidArgument("ScoreRequest.model must be set");
  }
  const uint32_t shard = impl_->ShardForKey(request.model, request.version);
  ScorePending pending;
  pending.request = std::move(request);
  return impl_->EnqueueAndWait<ScorePending, ScoreResponse>(
      shard, std::move(pending));
}

Result<SelectFeaturesResponse> HamletService::SelectFeatures(
    SelectFeaturesRequest request) {
  SelectPending pending;
  pending.request = std::move(request);
  const uint32_t shard =
      impl_->round_robin.fetch_add(1, std::memory_order_relaxed) %
      impl_->shards.size();
  return impl_->EnqueueAndWait<SelectPending, SelectFeaturesResponse>(
      shard, std::move(pending));
}

Result<std::vector<ScoreResponse>> HamletService::ScoreBatchDirect(
    const std::vector<ScoreRequest>& batch) {
  std::vector<ScoreResponse> responses(batch.size());
  // Group request indices by (model, version), preserving arrival order
  // within each group — the dispatcher's coalescing rule without the
  // queue.
  std::vector<char> done(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) continue;
    if (batch[i].rows == nullptr) {
      return Status::InvalidArgument("ScoreRequest.rows must be set");
    }
    std::vector<size_t> group;
    for (size_t j = i; j < batch.size(); ++j) {
      if (!done[j] && batch[j].model == batch[i].model &&
          batch[j].version == batch[i].version) {
        if (batch[j].rows == nullptr) {
          return Status::InvalidArgument("ScoreRequest.rows must be set");
        }
        group.push_back(j);
        done[j] = 1;
      }
    }
    std::vector<const EncodedDataset*> blocks;
    blocks.reserve(group.size());
    for (size_t j : group) blocks.push_back(batch[j].rows.get());
    // Direct requests never queue: record zero queue wait per request
    // so batched-vs-unbatched benchmark comparisons read the same
    // probes (the queued path records real waits at dequeue).
    if (obs::Enabled()) {
      ServeMetrics& m = ServeMetrics::Get();
      for (size_t k = 0; k < group.size(); ++k) {
        m.queue_wait_ns.RecordAlways(0);
      }
    }
    HAMLET_ASSIGN_OR_RETURN(
        std::vector<BlockScore> scored,
        impl_->ScorePass(batch[i].model, batch[i].version, blocks,
                         /*preresolved=*/nullptr,
                         impl_->ShardForKey(batch[i].model,
                                            batch[i].version)));
    for (size_t k = 0; k < group.size(); ++k) {
      HAMLET_RETURN_NOT_OK(scored[k].status);
      responses[group[k]].predictions = std::move(scored[k].predictions);
      responses[group[k]].batch_requests = static_cast<uint32_t>(group.size());
    }
  }
  return responses;
}

size_t HamletService::queue_depth() const {
  size_t depth = 0;
  for (const auto& shard : impl_->shards) depth += shard->queue.size();
  return depth;
}

size_t HamletService::queue_depth(uint32_t shard) const {
  HAMLET_CHECK(shard < impl_->shards.size(),
               "queue_depth(%u) out of range: %zu shards", shard,
               impl_->shards.size());
  return impl_->shards[shard]->queue.size();
}

uint32_t HamletService::num_shards() const {
  return static_cast<uint32_t>(impl_->shards.size());
}

uint32_t HamletService::ShardForModel(const std::string& model,
                                      uint32_t version) const {
  return impl_->ShardForKey(model, version);
}

}  // namespace hamlet::serve
