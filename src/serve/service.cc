#include "serve/service.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/splits.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"

namespace hamlet::serve {

namespace {

/// Static-local metric handles so the registry mutex is paid once per
/// process, not per request (the obs layer's caching idiom).
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& advise_requests;
  obs::Counter& score_requests;
  obs::Counter& select_requests;
  obs::Counter& score_rows;
  obs::Counter& score_batches;
  obs::Histogram& advise_ns;
  obs::Histogram& score_ns;
  obs::Histogram& select_ns;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& batch_size;

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ServeMetrics m{reg.GetCounter("serve.requests"),
                          reg.GetCounter("serve.advise_requests"),
                          reg.GetCounter("serve.score_requests"),
                          reg.GetCounter("serve.select_requests"),
                          reg.GetCounter("serve.score_rows"),
                          reg.GetCounter("serve.score_batches"),
                          reg.GetHistogram("serve.advise_ns"),
                          reg.GetHistogram("serve.score_ns"),
                          reg.GetHistogram("serve.select_ns"),
                          reg.GetHistogram("serve.queue_wait_ns"),
                          reg.GetHistogram("serve.batch_size")};
    return m;
  }
};

struct AdvisePending {
  AdviseRequest request;
  std::promise<Result<JoinPlan>> out;
};

struct ScorePending {
  ScoreRequest request;
  std::promise<Result<ScoreResponse>> out;
};

struct SelectPending {
  SelectFeaturesRequest request;
  std::promise<Result<SelectFeaturesResponse>> out;
};

struct Pending {
  std::variant<AdvisePending, ScorePending, SelectPending> op;
  uint64_t enqueue_ns = 0;  ///< 0 when collection was off at enqueue.
};

/// Exactly one of the pointers is set.
struct ResolvedModel {
  std::shared_ptr<const NaiveBayes> nb;
  std::shared_ptr<const LogisticRegression> lr;
  std::shared_ptr<const DecisionTree> tree;
  std::shared_ptr<const Gbt> gbt;
};

/// The block must have every trained feature at its training-time
/// cardinality; anything else would index the model's tables out of
/// bounds (NB) or shift the zero-vector convention (LR).
template <typename Model>
Status ValidateBlockForModel(const EncodedDataset& block, const Model& model,
                             const char* model_kind) {
  const std::vector<uint32_t>& features = model.trained_features();
  for (size_t jj = 0; jj < features.size(); ++jj) {
    uint32_t j = features[jj];
    if (j >= block.num_features()) {
      return Status::InvalidArgument(StringFormat(
          "score block has %u features but %s model was trained on "
          "feature index %u",
          block.num_features(), model_kind, j));
    }
    uint32_t want = model.trained_cardinality(jj);
    if (block.meta(j).cardinality != want) {
      return Status::InvalidArgument(StringFormat(
          "score block feature %u has cardinality %u but %s model was "
          "trained with cardinality %u",
          j, block.meta(j).cardinality, model_kind, want));
    }
  }
  return Status::OK();
}

/// Per-block outcome of one scoring pass. A block-level failure (layout
/// mismatch) fails only that block's request, not the batch.
struct BlockScore {
  Status status = Status::OK();
  std::vector<uint32_t> predictions;
};

}  // namespace

struct HamletService::Impl {
  ArtifactStore* store = nullptr;
  ServiceOptions options;

  std::mutex mu;
  std::condition_variable cv_nonempty;  ///< Dispatcher waits for work.
  std::condition_variable cv_space;     ///< Clients wait for queue room.
  std::deque<Pending> queue;
  bool stopping = false;
  std::thread dispatcher;

  template <typename PendingT, typename ResponseT>
  Result<ResponseT> EnqueueAndWait(PendingT pending) {
    std::future<Result<ResponseT>> future = pending.out.get_future();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_space.wait(lock, [&] {
        return stopping || queue.size() < options.queue_capacity;
      });
      if (stopping) {
        return Status::FailedPrecondition("HamletService is stopped");
      }
      Pending p;
      p.op = std::move(pending);
      p.enqueue_ns = obs::Enabled() ? obs::NowNanos() : 0;
      queue.push_back(std::move(p));
    }
    cv_nonempty.notify_one();
    return future.get();
  }

  static void RecordQueueWait(const Pending& p) {
    if (p.enqueue_ns != 0 && obs::Enabled()) {
      ServeMetrics::Get().queue_wait_ns.RecordAlways(obs::NowNanos() -
                                                     p.enqueue_ns);
    }
  }

  void DispatchLoop() {
    for (;;) {
      Pending head;
      std::vector<ScorePending> coalesced;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_nonempty.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // Stopping and fully drained.
        head = std::move(queue.front());
        queue.pop_front();
        if (options.batch_scoring &&
            std::holds_alternative<ScorePending>(head.op)) {
          // Coalesce queued Score requests for the same (model, version)
          // behind the head into one scoring pass. Requests left behind
          // keep their arrival order. A kLatest request only batches
          // with other kLatest requests — resolution happens once per
          // pass, so mixing could pin a concrete version a client did
          // not ask for.
          const ScoreRequest& lead = std::get<ScorePending>(head.op).request;
          for (auto it = queue.begin();
               it != queue.end() && 1 + coalesced.size() < options.max_batch;) {
            auto* sp = std::get_if<ScorePending>(&it->op);
            if (sp != nullptr && sp->request.model == lead.model &&
                sp->request.version == lead.version) {
              RecordQueueWait(*it);
              coalesced.push_back(std::move(*sp));
              it = queue.erase(it);
            } else {
              ++it;
            }
          }
        }
        if (!coalesced.empty()) cv_space.notify_all();
      }
      cv_space.notify_one();
      RecordQueueWait(head);
      if (auto* a = std::get_if<AdvisePending>(&head.op)) {
        DoAdvise(std::move(*a));
      } else if (auto* s = std::get_if<ScorePending>(&head.op)) {
        std::vector<ScorePending> group;
        group.reserve(1 + coalesced.size());
        group.push_back(std::move(*s));
        for (ScorePending& c : coalesced) group.push_back(std::move(c));
        DoScoreGroup(std::move(group));
      } else {
        DoSelect(std::move(std::get<SelectPending>(head.op)));
      }
    }
  }

  void DoAdvise(AdvisePending p) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add();
    m.advise_requests.Add();
    obs::TraceSpan span("serve.advise");
    span.AddAttr("candidates",
                 static_cast<uint64_t>(p.request.candidates.size()));
    obs::ScopedLatency latency(m.advise_ns);
    p.out.set_value(AdviseJoinsFromStats(p.request.n_train,
                                         p.request.label_entropy_bits,
                                         p.request.candidates,
                                         p.request.options));
  }

  /// Tries each servable model kind in turn; a kind-mismatch means "try
  /// the next kind", any other failure is final.
  Result<ResolvedModel> ResolveModel(const std::string& name,
                                     uint32_t version) {
    Result<std::shared_ptr<const NaiveBayes>> nb =
        store->GetNaiveBayes(name, version);
    if (nb.ok()) {
      return ResolvedModel{std::move(nb).ValueOrDie(), nullptr, nullptr,
                           nullptr};
    }
    if (SerdeErrorOf(nb.status()) != SerdeError::kKindMismatch) {
      return nb.status();
    }
    Result<std::shared_ptr<const LogisticRegression>> lr =
        store->GetLogisticRegression(name, version);
    if (lr.ok()) {
      return ResolvedModel{nullptr, std::move(lr).ValueOrDie(), nullptr,
                           nullptr};
    }
    if (SerdeErrorOf(lr.status()) != SerdeError::kKindMismatch) {
      return lr.status();
    }
    Result<std::shared_ptr<const DecisionTree>> tree =
        store->GetDecisionTree(name, version);
    if (tree.ok()) {
      return ResolvedModel{nullptr, nullptr, std::move(tree).ValueOrDie(),
                           nullptr};
    }
    if (SerdeErrorOf(tree.status()) != SerdeError::kKindMismatch) {
      return tree.status();
    }
    HAMLET_ASSIGN_OR_RETURN(std::shared_ptr<const Gbt> gbt,
                            store->GetGbt(name, version));
    return ResolvedModel{nullptr, nullptr, nullptr, std::move(gbt)};
  }

  /// The scoring pass: resolve once, validate each block, score every
  /// valid row in one parallel region. Top-level failure = the model
  /// could not be resolved (fails every request of the pass).
  Result<std::vector<BlockScore>> ScorePass(
      const std::string& model_name, uint32_t version,
      const std::vector<const EncodedDataset*>& blocks) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add(blocks.size());
    m.score_requests.Add(blocks.size());
    m.score_batches.Add();
    obs::TraceSpan span("serve.score");
    span.AddAttr("batch_requests", static_cast<uint64_t>(blocks.size()));
    const uint64_t start_ns = obs::Enabled() ? obs::NowNanos() : 0;
    if (start_ns != 0) {
      m.batch_size.RecordAlways(static_cast<uint64_t>(blocks.size()));
    }

    HAMLET_ASSIGN_OR_RETURN(ResolvedModel model,
                            ResolveModel(model_name, version));

    std::vector<BlockScore> out(blocks.size());
    // Row offsets of the valid blocks within the fused index space.
    std::vector<size_t> valid;
    std::vector<uint64_t> base;
    uint64_t total_rows = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
      const EncodedDataset& block = *blocks[i];
      Status st;
      if (model.nb != nullptr) {
        st = ValidateBlockForModel(block, *model.nb, "naive_bayes");
      } else if (model.lr != nullptr) {
        st = ValidateBlockForModel(block, *model.lr, "logistic_regression");
      } else if (model.tree != nullptr) {
        st = ValidateBlockForModel(block, *model.tree, "decision_tree");
      } else {
        st = ValidateBlockForModel(block, *model.gbt, "gbt");
      }
      if (!st.ok()) {
        out[i].status = std::move(st);
        continue;
      }
      out[i].predictions.resize(block.num_rows());
      valid.push_back(i);
      base.push_back(total_rows);
      total_rows += block.num_rows();
    }
    if (total_rows > UINT32_MAX) {
      return Status::InvalidArgument(StringFormat(
          "score batch holds %llu rows; at most 2^32 - 1 per pass",
          static_cast<unsigned long long>(total_rows)));
    }
    span.AddAttr("rows", total_rows);
    m.score_rows.Add(total_rows);

    const NaiveBayes* nb = model.nb.get();
    const LogisticRegression* lr = model.lr.get();
    const DecisionTree* tree = model.tree.get();
    const Gbt* gbt = model.gbt.get();
    // Same argmax tie-break as every PredictOne in ml/: first
    // strictly-greatest class wins.
    const auto argmax = [](const std::vector<double>& scores) {
      uint32_t best = 0;
      for (uint32_t c = 1; c < scores.size(); ++c) {
        if (scores[c] > scores[best]) best = c;
      }
      return best;
    };
    ThreadPool::Global().ParallelFor(
        static_cast<uint32_t>(total_rows), options.num_threads,
        [&](uint32_t fused) {
          // Fused index → (block, row). Blocks are few; linear scan over
          // the offset table stays cheap and branch-predictable.
          size_t b = valid.size() - 1;
          while (base[b] > fused) --b;
          const EncodedDataset& block = *blocks[valid[b]];
          const uint32_t row = static_cast<uint32_t>(fused - base[b]);
          uint32_t pred;
          thread_local std::vector<double> scores;
          if (nb != nullptr) {
            nb->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else if (tree != nullptr) {
            tree->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else if (gbt != nullptr) {
            gbt->LogScoresInto(block, row, &scores);
            pred = argmax(scores);
          } else {
            pred = lr->PredictOne(block, row);
          }
          out[valid[b]].predictions[row] = pred;
        });

    if (start_ns != 0) {
      const uint64_t elapsed = obs::NowNanos() - start_ns;
      // One observation per request of the pass, so per-request latency
      // percentiles stay meaningful under batching.
      for (size_t i = 0; i < blocks.size(); ++i) {
        m.score_ns.RecordAlways(elapsed);
      }
      // Cost profile: one record per pass. rows_out = predictions
      // written; build_rows = requests coalesced into the pass.
      obs::OperatorFeatures features;
      features.op = "serve.score";
      features.rows_in = total_rows;
      features.rows_out = total_rows;
      features.build_rows = blocks.size();
      features.num_threads = options.num_threads == 0
                                 ? ThreadPool::Global().DefaultShards()
                                 : options.num_threads;
      obs::CostObservation cost;
      cost.total_ns = elapsed;
      obs::CostProfileStore::Global().Record(features, cost);
    }
    return out;
  }

  void DoScoreGroup(std::vector<ScorePending> group) {
    std::vector<const EncodedDataset*> blocks;
    blocks.reserve(group.size());
    for (const ScorePending& g : group) blocks.push_back(g.request.rows.get());
    Result<std::vector<BlockScore>> scored =
        ScorePass(group[0].request.model, group[0].request.version, blocks);
    if (!scored.ok()) {
      for (ScorePending& g : group) g.out.set_value(scored.status());
      return;
    }
    std::vector<BlockScore>& per_block = scored.ValueOrDie();
    for (size_t i = 0; i < group.size(); ++i) {
      if (!per_block[i].status.ok()) {
        group[i].out.set_value(std::move(per_block[i].status));
        continue;
      }
      ScoreResponse response;
      response.predictions = std::move(per_block[i].predictions);
      response.batch_requests = static_cast<uint32_t>(group.size());
      group[i].out.set_value(std::move(response));
    }
  }

  Result<SelectFeaturesResponse> RunSelect(SelectFeaturesRequest request) {
    if (request.model_name.empty()) {
      return Status::InvalidArgument(
          "SelectFeaturesRequest.model_name must be set");
    }
    HAMLET_ASSIGN_OR_RETURN(
        std::shared_ptr<const EncodedDataset> data,
        store->GetDataset(request.dataset, request.dataset_version));
    Rng rng(request.seed);
    HoldoutSplit split = MakeHoldoutSplit(data->num_rows(), rng);
    std::unique_ptr<FeatureSelector> selector =
        MakeSelector(request.method, options.num_threads);
    ClassifierFactory factory = MakeNaiveBayesFactory(request.nb_alpha);
    std::vector<uint32_t> candidates(data->num_features());
    std::iota(candidates.begin(), candidates.end(), 0u);
    HAMLET_ASSIGN_OR_RETURN(
        FsRunReport report,
        RunFeatureSelection(*selector, *data, split, factory, request.metric,
                            candidates));
    // Refit the winner exactly as the runner's final fit did, so the
    // persisted model reproduces the reported holdout error.
    NaiveBayes model(request.nb_alpha);
    HAMLET_RETURN_NOT_OK(
        model.Train(*data, split.train, report.selection.selected));
    SelectFeaturesResponse response;
    HAMLET_ASSIGN_OR_RETURN(response.model_version,
                            store->PutNaiveBayes(request.model_name, model));
    HAMLET_ASSIGN_OR_RETURN(
        response.report_version,
        store->PutFsRunReport(request.model_name + ".fs_report", report));
    response.report = std::move(report);
    return response;
  }

  void DoSelect(SelectPending p) {
    ServeMetrics& m = ServeMetrics::Get();
    m.requests.Add();
    m.select_requests.Add();
    obs::TraceSpan span("serve.select_features");
    span.AddAttr("method", std::string(FsMethodToString(p.request.method)));
    obs::ScopedLatency latency(m.select_ns);
    p.out.set_value(RunSelect(std::move(p.request)));
  }
};

HamletService::HamletService(ArtifactStore* store, ServiceOptions options)
    : impl_(std::make_unique<Impl>()), options_(options) {
  HAMLET_CHECK(store != nullptr, "HamletService needs an ArtifactStore");
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  impl_->store = store;
  impl_->options = options_;
  impl_->dispatcher = std::thread([impl = impl_.get()] {
    impl->DispatchLoop();
  });
}

HamletService::~HamletService() { Stop(); }

void HamletService::Stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv_nonempty.notify_all();
  impl_->cv_space.notify_all();
  if (impl_->dispatcher.joinable()) impl_->dispatcher.join();
}

Result<JoinPlan> HamletService::Advise(AdviseRequest request) {
  AdvisePending pending;
  pending.request = std::move(request);
  return impl_->EnqueueAndWait<AdvisePending, JoinPlan>(std::move(pending));
}

Result<ScoreResponse> HamletService::Score(ScoreRequest request) {
  if (request.rows == nullptr) {
    return Status::InvalidArgument("ScoreRequest.rows must be set");
  }
  if (request.model.empty()) {
    return Status::InvalidArgument("ScoreRequest.model must be set");
  }
  ScorePending pending;
  pending.request = std::move(request);
  return impl_->EnqueueAndWait<ScorePending, ScoreResponse>(
      std::move(pending));
}

Result<SelectFeaturesResponse> HamletService::SelectFeatures(
    SelectFeaturesRequest request) {
  SelectPending pending;
  pending.request = std::move(request);
  return impl_->EnqueueAndWait<SelectPending, SelectFeaturesResponse>(
      std::move(pending));
}

Result<std::vector<ScoreResponse>> HamletService::ScoreBatchDirect(
    const std::vector<ScoreRequest>& batch) {
  std::vector<ScoreResponse> responses(batch.size());
  // Group request indices by (model, version), preserving arrival order
  // within each group — the dispatcher's coalescing rule without the
  // queue.
  std::vector<char> done(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) continue;
    if (batch[i].rows == nullptr) {
      return Status::InvalidArgument("ScoreRequest.rows must be set");
    }
    std::vector<size_t> group;
    for (size_t j = i; j < batch.size(); ++j) {
      if (!done[j] && batch[j].model == batch[i].model &&
          batch[j].version == batch[i].version) {
        if (batch[j].rows == nullptr) {
          return Status::InvalidArgument("ScoreRequest.rows must be set");
        }
        group.push_back(j);
        done[j] = 1;
      }
    }
    std::vector<const EncodedDataset*> blocks;
    blocks.reserve(group.size());
    for (size_t j : group) blocks.push_back(batch[j].rows.get());
    HAMLET_ASSIGN_OR_RETURN(
        std::vector<BlockScore> scored,
        impl_->ScorePass(batch[i].model, batch[i].version, blocks));
    for (size_t k = 0; k < group.size(); ++k) {
      HAMLET_RETURN_NOT_OK(scored[k].status);
      responses[group[k]].predictions = std::move(scored[k].predictions);
      responses[group[k]].batch_requests = static_cast<uint32_t>(group.size());
    }
  }
  return responses;
}

size_t HamletService::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queue.size();
}

}  // namespace hamlet::serve
