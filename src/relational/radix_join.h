#ifndef HAMLET_RELATIONAL_RADIX_JOIN_H_
#define HAMLET_RELATIONAL_RADIX_JOIN_H_

/// \file radix_join.h
/// The radix-partitioned join path (JoinAlgorithm::kRadix) and the
/// cost-profile-driven algorithm choice behind JoinAlgorithm::kAuto.
///
/// The monolithic CSR join (join.cc) random-accesses two code-indexed
/// arrays per probe row; once the build side's code range outgrows the
/// last-level cache, every one of those accesses is a miss — on the
/// build pass as well as both probe passes. The radix path instead
/// splits the code range into contiguous sub-ranges of ~2^11 codes
/// (common/radix_partition.h): a deterministic two-pass scatter groups
/// the rows of each side by sub-range, and the CSR build + probe then
/// run per partition against an offsets slice small enough to stay
/// cache-resident. A blocked Bloom filter (common/bloom.h) built from
/// the build side's key codes optionally drops never-matching probe
/// rows before they are partitioned at all.
///
/// Determinism contract (tests/ingest_join_determinism_test.cc,
/// tests/radix_join_test.cc): output tables are bit-identical to
/// HashJoin/KfkJoin's CSR path — same left-row-major order, right rows
/// ascending within a key — at every thread count and partition fanout,
/// and error reports (referential integrity, duplicate RIDs, name
/// collisions) are byte-identical too.
///
/// Telemetry: phase timings land in the join.partition_ns /
/// join.bloom_build_ns histograms and rows the pre-filter drops in the
/// join.probe_skipped counter; whole-operator observations are recorded
/// under the cost-profile operator keys "join.radix" (hash) and
/// "join.radix.kfk" — the records kAuto reads back on later runs
/// (docs/OBSERVABILITY.md).

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/join.h"
#include "relational/table.h"

namespace hamlet {

/// kAuto thresholds for the no-profile fallback heuristic: radix pays
/// once the build side's code range (≈ 4 bytes of CSR offsets per code)
/// and the probe side both leave cache-resident scale.
inline constexpr uint64_t kRadixAutoMinDistinctKeys = 1u << 15;
inline constexpr uint64_t kRadixAutoMinProbeRows = 1u << 15;

/// Resolves options.algorithm to a concrete kCsr/kRadix choice for one
/// join. Explicit choices pass through. For kAuto: if the cost-profile
/// store holds measured per-probe-row costs for both `csr_op` and
/// `radix_op` near this build size (live window first, then the seeded
/// calibration profile — see CostProfileStore::SeedCalibrationFromFile),
/// the cheaper one wins; otherwise the size heuristic above decides.
JoinAlgorithm ResolveJoinAlgorithm(const JoinOptions& options,
                                   uint64_t probe_rows, uint64_t build_rows,
                                   uint64_t distinct_keys,
                                   const char* csr_op, const char* radix_op);

/// Resolves a BloomFilterMode to a concrete on/off decision. kAuto turns
/// the filter on exactly when the build side cannot cover its key domain
/// (build_rows * 2 < distinct_keys) — when every probe row could match,
/// a pre-filter can only cost. Shared by HashJoin's CSR and radix paths
/// so kAuto behaves identically under either algorithm.
bool ResolveBloomFilter(BloomFilterMode mode, uint64_t build_rows,
                        uint64_t distinct_keys);

/// HashJoin's radix path: same contract, same output, same errors as
/// HashJoin (join.h); callers normally reach it via
/// JoinOptions::algorithm rather than directly.
Result<Table> RadixHashJoin(const Table& left, const Table& right,
                            const std::string& left_column,
                            const std::string& right_column,
                            const JoinOptions& options = {});

/// KfkJoin's radix path: S rows are partitioned by FK-code sub-range so
/// the probe's rid_to_row lookups stay inside one contiguous,
/// cache-resident slice per partition. No Bloom filter — KFK joins
/// require every row to match. Same contract/output/errors as KfkJoin.
Result<Table> RadixKfkJoin(const Table& s, const Table& r,
                           const std::string& fk_column,
                           const JoinOptions& options = {});

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_RADIX_JOIN_H_
