#include "relational/csv.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_map>

#include "common/parallel_for.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"

namespace hamlet {

namespace {

obs::Counter& BytesReadCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("ingest.bytes_read");
  return counter;
}

obs::Counter& RowsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("ingest.rows");
  return counter;
}

obs::Histogram& ReadLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("ingest.read_ns");
  return h;
}

obs::Histogram& ParseLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("ingest.parse_ns");
  return h;
}

obs::Histogram& MergeLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("ingest.merge_ns");
  return h;
}

/// The quoting state machine every pass below shares (framing pre-scan,
/// chunk tokenizer, field unescape): a '"' opens a quoted run only while
/// the field has no content yet, "" inside quotes is an escaped quote, a
/// '"' closing a run returns to unquoted mode (later characters append
/// literally), unquoted '\r' is dropped, and unquoted delimiter/newline
/// end the field/record. This is exactly ParseCsvLine's behavior
/// extended with in-quote newlines.

/// Unescapes one field's raw bytes into `scratch` (which is reused) and
/// returns a view of the result. Only called for fields that need a
/// transformation (quotes or '\r'); plain fields are viewed in place.
std::string_view UnescapeField(const char* begin, const char* end,
                               std::string& scratch) {
  scratch.clear();
  bool in_quotes = false;
  for (const char* p = begin; p < end; ++p) {
    const char ch = *p;
    if (in_quotes) {
      if (ch == '"') {
        if (p + 1 < end && p[1] == '"') {
          scratch.push_back('"');
          ++p;
        } else {
          in_quotes = false;
        }
      } else {
        scratch.push_back(ch);
      }
    } else if (ch == '"' && scratch.empty()) {
      in_quotes = true;
    } else if (ch != '\r') {
      // Unquoted delimiters/newlines cannot occur inside an extent: the
      // tokenizer already ended the field there.
      scratch.push_back(ch);
    }
  }
  return scratch;
}

/// Splits one record's raw bytes (no trailing record terminator) into
/// unescaped fields.
std::vector<std::string> SplitRecord(const char* begin, const char* end,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (const char* p = begin; p < end; ++p) {
    const char ch = *p;
    if (in_quotes) {
      if (ch == '"') {
        if (p + 1 < end && p[1] == '"') {
          cur.push_back('"');
          ++p;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(ch);
      }
    } else if (ch == '"' && cur.empty()) {
      in_quotes = true;
    } else if (ch == delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

/// A record-aligned chunk boundary: byte offset into the body plus the
/// 1-based file line its first record starts on.
struct ChunkStart {
  size_t offset = 0;
  size_t line = 0;
};

/// Serial framing pre-scan: walks the body once with the quoting state
/// machine and records a record-start boundary at (roughly) every
/// `body.size()/n_chunks` bytes. Boundaries land only on true record
/// starts — a quoted field spanning lines never gets split — so each
/// chunk parses independently from a clean state.
std::vector<ChunkStart> PlanChunks(std::string_view body, size_t start_line,
                                   uint32_t n_chunks, char delimiter) {
  std::vector<ChunkStart> starts{{0, start_line}};
  if (n_chunks <= 1 || body.empty()) return starts;
  size_t line = start_line;
  bool in_quotes = false;
  bool field_empty = true;
  uint32_t next = 1;
  size_t target = body.size() * next / n_chunks;
  for (size_t i = 0; i < body.size(); ++i) {
    const char ch = body[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < body.size() && body[i + 1] == '"') {
          ++i;
          field_empty = false;
        } else {
          in_quotes = false;
        }
      } else {
        if (ch == '\n') ++line;
        field_empty = false;
      }
    } else if (ch == '"' && field_empty) {
      in_quotes = true;
    } else if (ch == delimiter) {
      field_empty = true;
    } else if (ch == '\n') {
      ++line;
      field_empty = true;
      const size_t record_start = i + 1;
      if (next < n_chunks && record_start >= target &&
          record_start < body.size()) {
        starts.push_back({record_start, line});
        do {
          ++next;
          target = body.size() * next / n_chunks;
        } while (next < n_chunks && target <= record_start);
      }
    } else if (ch != '\r') {
      field_empty = false;
    }
  }
  return starts;
}

/// Raw extent of one field within the buffer; `escaped` marks fields
/// whose bytes need a transformation (quote handling or '\r' removal)
/// before they become a label.
struct FieldExtent {
  const char* begin = nullptr;
  const char* end = nullptr;
  bool escaped = false;
};

/// Read-only parse context shared by every chunk.
struct ParseContext {
  const std::string* path = nullptr;
  const Schema* schema = nullptr;
  /// Fixed (closed) domain per column, nullptr for fresh columns.
  const std::vector<std::shared_ptr<Domain>>* fixed = nullptr;
  char delimiter = ',';
  bool strict = true;
};

/// One chunk's parse result. Fresh-column codes are chunk-local (indices
/// into `labels[col]`, first-occurrence order); fixed-column codes are
/// final. The merge translates local codes in chunk order, which
/// reproduces the serial reader's first-occurrence global order exactly.
struct ChunkOutput {
  std::vector<std::vector<uint32_t>> codes;
  std::vector<std::vector<std::string>> labels;
  Status status = Status::OK();
  uint32_t rows = 0;
};

/// Tokenizes and encodes one record-aligned chunk.
class ChunkParser {
 public:
  ChunkParser(const ParseContext& ctx, ChunkOutput* out)
      : ctx_(ctx), out_(out) {
    const uint32_t n_cols = ctx_.schema->num_columns();
    out_->codes.resize(n_cols);
    out_->labels.resize(n_cols);
    local_index_.resize(n_cols);
    row_codes_.resize(n_cols);
  }

  void Parse(const char* begin, const char* end, size_t start_line) {
    size_t line = start_line;
    const char* p = begin;
    while (p < end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<size_t>(end - p)));
      const char* record_end = nl != nullptr ? nl : end;
      if (record_end == p) {  // Blank line: skip, like the old reader.
        ++line;
        p = record_end + 1;
        continue;
      }
      const size_t len = static_cast<size_t>(record_end - p);
      // Fast path: a record with no quoting and no '\r' needs no state
      // machine — the newline found above is a true record end and every
      // delimiter byte is a field break, so memchr does all the scanning.
      if (std::memchr(p, '"', len) == nullptr &&
          std::memchr(p, '\r', len) == nullptr) {
        extents_.clear();
        const char* field_start = p;
        for (;;) {
          const char* d = static_cast<const char*>(
              std::memchr(field_start, ctx_.delimiter,
                          static_cast<size_t>(record_end - field_start)));
          if (d == nullptr) break;
          extents_.push_back({field_start, d, false});
          field_start = d + 1;
        }
        extents_.push_back({field_start, record_end, false});
        if (!HandleRecord(line)) return;
        if (nl == nullptr) return;
        ++line;
        p = nl + 1;
        continue;
      }
      // Slow path: quoting may extend the record past `nl` (quoted
      // newlines), and '\r' needs stripping — run the state machine for
      // this one record.
      const size_t record_line = line;
      bool newline_terminated = false;
      p = ScanRecordSlow(p, end, &line, &newline_terminated);
      if (!HandleRecord(record_line)) return;
      if (newline_terminated) ++line;
    }
  }

 private:
  /// State-machine scan of one record starting at `p` (used when the
  /// record contains quoting or '\r'). Fills extents_, bumps *line once
  /// per quoted newline, and returns the position just past the record —
  /// past its terminating newline when *newline_terminated is set.
  const char* ScanRecordSlow(const char* p, const char* end, size_t* line,
                             bool* newline_terminated) {
    extents_.clear();
    const char* field_start = p;
    bool in_quotes = false;
    bool field_empty = true;
    bool field_escaped = false;
    while (p < end) {
      const char ch = *p;
      if (in_quotes) {
        if (ch == '"') {
          if (p + 1 < end && p[1] == '"') {
            field_empty = false;
            p += 2;
            continue;
          }
          in_quotes = false;
        } else {
          if (ch == '\n') ++*line;
          field_empty = false;
        }
        ++p;
        continue;
      }
      if (ch == '"' && field_empty) {
        in_quotes = true;
        field_escaped = true;  // The opening quote must be stripped.
        ++p;
        continue;
      }
      if (ch == ctx_.delimiter) {
        extents_.push_back({field_start, p, field_escaped});
        field_start = p + 1;
        field_empty = true;
        field_escaped = false;
        ++p;
        continue;
      }
      if (ch == '\n') {
        extents_.push_back({field_start, p, field_escaped});
        *newline_terminated = true;
        return p + 1;
      }
      if (ch == '\r') {
        field_escaped = true;  // Dropped on unescape.
        ++p;
        continue;
      }
      field_empty = false;
      ++p;
    }
    extents_.push_back({field_start, p, field_escaped});
    return end;
  }

  std::string_view FieldView(const FieldExtent& extent) {
    if (!extent.escaped) {
      return std::string_view(extent.begin,
                              static_cast<size_t>(extent.end - extent.begin));
    }
    return UnescapeField(extent.begin, extent.end, scratch_);
  }

  /// Encodes one record. Returns false when the chunk must stop (error).
  bool HandleRecord(size_t record_line) {
    const uint32_t n_cols = ctx_.schema->num_columns();
    if (extents_.size() != n_cols) {
      out_->status = Status::InvalidArgument(StringFormat(
          "%s:%zu: row has %zu fields, header has %u", ctx_.path->c_str(),
          record_line, extents_.size(), n_cols));
      return false;
    }
    // Validate every fixed (closed) domain before touching any local
    // dictionary, so a lenient-skipped row adds no labels anywhere —
    // exactly the old AppendRowLabels ordering.
    for (uint32_t c = 0; c < n_cols; ++c) {
      const auto& domain = (*ctx_.fixed)[c];
      if (domain == nullptr) continue;
      const std::string_view value = FieldView(extents_[c]);
      const uint32_t code = domain->CodeOf(value);
      if (code == Domain::kNoCode) {
        if (ctx_.strict) {
          out_->status = Status::InvalidArgument(StringFormat(
              "%s:%zu: value '%.*s' not in the closed domain of column '%s'",
              ctx_.path->c_str(), record_line,
              static_cast<int>(value.size()), value.data(),
              ctx_.schema->column(c).name.c_str()));
          return false;
        }
        return true;  // Lenient: skip the row.
      }
      row_codes_[c] = code;
    }
    for (uint32_t c = 0; c < n_cols; ++c) {
      if ((*ctx_.fixed)[c] != nullptr) continue;
      const std::string_view value = FieldView(extents_[c]);
      auto& index = local_index_[c];
      auto it = index.find(value);
      if (it != index.end()) {
        row_codes_[c] = it->second;
      } else {
        const uint32_t code =
            static_cast<uint32_t>(out_->labels[c].size());
        out_->labels[c].emplace_back(value);
        index.emplace(std::string(value), code);
        row_codes_[c] = code;
      }
    }
    for (uint32_t c = 0; c < n_cols; ++c) {
      out_->codes[c].push_back(row_codes_[c]);
    }
    ++out_->rows;
    return true;
  }

  const ParseContext& ctx_;
  ChunkOutput* out_;
  std::vector<FieldExtent> extents_;
  std::vector<uint32_t> row_codes_;
  std::string scratch_;
  /// Per fresh column: label -> chunk-local code, probed heterogeneously
  /// so in-buffer fields never materialize a temporary key.
  std::vector<
      std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>>
      local_index_;
};

}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delimiter) {
  return SplitRecord(line.data(), line.data() + line.size(), delimiter);
}

Result<Table> ReadCsvWithDomains(const std::string& path,
                                 std::string table_name, Schema schema,
                                 std::vector<std::shared_ptr<Domain>> domains,
                                 const CsvOptions& options) {
  obs::TraceSpan span("ingest.csv");

  // Explicit phase clocks (instead of ScopedLatency) because the phase
  // times also feed the operator cost profile below.
  const bool collect = obs::Enabled();
  uint64_t read_ns = 0;
  uint64_t parse_ns = 0;
  const uint64_t start_ns = collect ? obs::NowNanos() : 0;

  std::string buffer;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError(
          StringFormat("cannot open '%s' for reading", path.c_str()));
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    buffer.resize(static_cast<size_t>(size > 0 ? size : 0));
    if (!buffer.empty() &&
        !in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()))) {
      return Status::IOError(
          StringFormat("short read from '%s'", path.c_str()));
    }
    if (collect) {
      read_ns = obs::NowNanos() - t;
      ReadLatency().RecordAlways(read_ns);
    }
  }
  BytesReadCounter().Add(buffer.size());
  if (buffer.empty()) {
    return Status::IOError(StringFormat("'%s' is empty", path.c_str()));
  }

  // Frame and validate the header record (it may itself contain quoted
  // newlines, so it is walked with the same state machine).
  size_t header_end = buffer.size();
  size_t body_line = 1;
  {
    bool in_quotes = false;
    bool field_empty = true;
    for (size_t i = 0; i < buffer.size(); ++i) {
      const char ch = buffer[i];
      if (in_quotes) {
        if (ch == '"') {
          if (i + 1 < buffer.size() && buffer[i + 1] == '"') {
            ++i;
            field_empty = false;
          } else {
            in_quotes = false;
          }
        } else {
          if (ch == '\n') ++body_line;
          field_empty = false;
        }
      } else if (ch == '"' && field_empty) {
        in_quotes = true;
      } else if (ch == options.delimiter) {
        field_empty = true;
      } else if (ch == '\n') {
        ++body_line;
        header_end = i;
        break;
      } else if (ch != '\r') {
        field_empty = false;
      }
    }
  }
  std::vector<std::string> header = SplitRecord(
      buffer.data(), buffer.data() + header_end, options.delimiter);
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "'%s' header has %zu columns, schema has %u", path.c_str(),
        header.size(), schema.num_columns()));
  }
  for (uint32_t c = 0; c < header.size(); ++c) {
    std::string name(TrimWhitespace(header[c]));
    if (name != schema.column(c).name) {
      return Status::InvalidArgument(StringFormat(
          "'%s' header column %u is '%s', schema expects '%s'",
          path.c_str(), c, name.c_str(), schema.column(c).name.c_str()));
    }
  }

  const uint32_t num_columns = schema.num_columns();
  const size_t body_start =
      header_end < buffer.size() ? header_end + 1 : buffer.size();
  const std::string_view body =
      std::string_view(buffer).substr(body_start);

  ParseContext ctx;
  ctx.path = &path;
  ctx.schema = &schema;
  ctx.fixed = &domains;
  ctx.delimiter = options.delimiter;
  ctx.strict = options.strict;

  // Shard the body into record-aligned chunks: one per thread, floored
  // so tiny inputs stay single-chunk.
  uint32_t n_chunks = options.num_threads == 0
                          ? ThreadPool::Global().DefaultShards()
                          : options.num_threads;
  const size_t min_chunk = std::max<size_t>(options.min_chunk_bytes, 1);
  const size_t max_chunks = body.size() / min_chunk + 1;
  n_chunks = static_cast<uint32_t>(
      std::min<size_t>(std::max<uint32_t>(n_chunks, 1), max_chunks));
  const std::vector<ChunkStart> starts =
      PlanChunks(body, body_line, n_chunks, options.delimiter);

  std::vector<ChunkOutput> outs(starts.size());
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    ParallelFor(static_cast<uint32_t>(starts.size()),
                static_cast<uint32_t>(starts.size()), [&](uint32_t j) {
                  const size_t lo = starts[j].offset;
                  const size_t hi = j + 1 < starts.size()
                                        ? starts[j + 1].offset
                                        : body.size();
                  ChunkParser parser(ctx, &outs[j]);
                  parser.Parse(body.data() + lo, body.data() + hi,
                               starts[j].line);
                });
    if (collect) {
      parse_ns = obs::NowNanos() - t;
      ParseLatency().RecordAlways(parse_ns);
    }
  }
  // The lowest-indexed chunk's error is the first error in row order —
  // identical to what a serial read would have reported.
  for (const ChunkOutput& out : outs) {
    if (!out.status.ok()) return out.status;
  }

  // Deterministic merge: per column, walk the chunks in order, extend
  // the (fresh) global dictionary with each chunk's labels in local
  // first-occurrence order, and translate local codes through a one-shot
  // uint32 remap. Chunk order == row order, so the global dictionary
  // comes out in exactly the serial reader's first-occurrence order.
  std::vector<uint64_t> row_offset(outs.size() + 1, 0);
  for (size_t j = 0; j < outs.size(); ++j) {
    row_offset[j + 1] = row_offset[j] + outs[j].rows;
  }
  const uint64_t total_rows = row_offset[outs.size()];
  std::vector<bool> fresh(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    fresh[c] = domains[c] == nullptr;
    if (fresh[c]) domains[c] = std::make_shared<Domain>();
  }
  std::vector<std::vector<uint32_t>> final_codes(num_columns);
  const uint64_t t_merge = collect ? obs::NowNanos() : 0;
  {
    // Columns are independent (distinct fresh Domain objects; fixed
    // domains are read-only), so the merge shards per column.
    ParallelFor(num_columns, options.num_threads, [&](uint32_t c) {
      std::vector<uint32_t>& out = final_codes[c];
      if (outs.size() == 1) {
        // Single chunk: the local codes are already the global codes. A
        // fresh column's (empty) global dictionary extends in the local
        // first-occurrence order, so the translation is the identity;
        // fixed-column codes were final all along. Move, don't copy.
        if (fresh[c]) {
          for (const std::string& label : outs[0].labels[c]) {
            domains[c]->GetOrAdd(label);
          }
        }
        out = std::move(outs[0].codes[c]);
        return;
      }
      out.resize(total_rows);
      std::vector<uint32_t> translate;
      for (size_t j = 0; j < outs.size(); ++j) {
        const std::vector<uint32_t>& chunk_codes = outs[j].codes[c];
        uint64_t pos = row_offset[j];
        if (fresh[c]) {
          const std::vector<std::string>& labels = outs[j].labels[c];
          translate.resize(labels.size());
          for (uint32_t l = 0; l < labels.size(); ++l) {
            translate[l] = domains[c]->GetOrAdd(labels[l]);
          }
          for (uint32_t code : chunk_codes) out[pos++] = translate[code];
        } else {
          for (uint32_t code : chunk_codes) out[pos++] = code;
        }
      }
    });
  }

  RowsCounter().Add(total_rows);
  if (span.active()) {
    span.AddAttr("path", path);
    span.AddAttr("bytes", static_cast<uint64_t>(buffer.size()));
    span.AddAttr("rows", total_rows);
    span.AddAttr("chunks", static_cast<uint64_t>(starts.size()));
    span.AddAttr("columns", num_columns);
  }
  if (collect) {
    const uint64_t merge_ns = obs::NowNanos() - t_merge;
    MergeLatency().RecordAlways(merge_ns);
    // Cost-profile phase mapping for ingest: build = file read,
    // probe = chunk parse, materialize = dictionary merge;
    // distinct_keys carries the column count (the merge's width).
    obs::OperatorFeatures features;
    features.op = "ingest.csv";
    features.rows_in = total_rows;
    features.rows_out = total_rows;
    features.distinct_keys = num_columns;
    features.num_threads = static_cast<uint32_t>(starts.size());
    obs::CostObservation obs_cost;
    obs_cost.total_ns = obs::NowNanos() - start_ns;
    obs_cost.build_ns = read_ns;
    obs_cost.probe_ns = parse_ns;
    obs_cost.materialize_ns = merge_ns;
    obs::CostProfileStore::Global().Record(features, obs_cost);
  }

  std::vector<Column> cols;
  cols.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    cols.emplace_back(std::move(final_codes[c]), domains[c]);
  }
  return Table(std::move(table_name), std::move(schema), std::move(cols));
}

Result<Table> ReadCsv(const std::string& path, std::string table_name,
                      Schema schema, const CsvOptions& options) {
  std::vector<std::shared_ptr<Domain>> domains(schema.num_columns(), nullptr);
  return ReadCsvWithDomains(path, std::move(table_name), std::move(schema),
                            std::move(domains), options);
}

namespace {

void WriteField(std::ostream& os, const std::string& field, char delimiter) {
  // '\r' must be quoted too (the reader drops unquoted carriage
  // returns), and so must the empty field: a single-column row with an
  // empty label would otherwise print as a blank line, which the reader
  // skips.
  bool needs_quotes = field.empty() ||
                      field.find(delimiter) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(
        StringFormat("cannot open '%s' for writing", path.c_str()));
  }
  for (uint32_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << options.delimiter;
    WriteField(out, table.schema().column(c).name, options.delimiter);
  }
  out << '\n';
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    for (uint32_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteField(out, table.column(c).label(r), options.delimiter);
    }
    out << '\n';
  }
  if (!out) {
    return Status::IOError(
        StringFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace hamlet
