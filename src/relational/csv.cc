#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace hamlet {

std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(ch);
      }
    } else if (ch == '"' && cur.empty()) {
      in_quotes = true;
    } else if (ch == delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Table> ReadCsvWithDomains(const std::string& path,
                                 std::string table_name, Schema schema,
                                 std::vector<std::shared_ptr<Domain>> domains,
                                 const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(
        StringFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError(StringFormat("'%s' is empty", path.c_str()));
  }
  std::vector<std::string> header = ParseCsvLine(line, options.delimiter);
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "'%s' header has %zu columns, schema has %u", path.c_str(),
        header.size(), schema.num_columns()));
  }
  for (uint32_t c = 0; c < header.size(); ++c) {
    std::string name(TrimWhitespace(header[c]));
    if (name != schema.column(c).name) {
      return Status::InvalidArgument(StringFormat(
          "'%s' header column %u is '%s', schema expects '%s'",
          path.c_str(), c, name.c_str(), schema.column(c).name.c_str()));
    }
  }

  const uint32_t num_columns = schema.num_columns();
  TableBuilder builder(std::move(table_name), std::move(schema),
                       std::move(domains));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line, options.delimiter);
    // A wrong field count means the file's framing is broken (stray
    // delimiter, unclosed quote); dropping such rows would silently skew
    // every downstream statistic, so it is an error even when !strict.
    if (fields.size() != num_columns) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: row has %zu fields, header has %u",
                       path.c_str(), line_no, fields.size(), num_columns));
    }
    Status st = builder.AppendRowLabels(fields);
    if (!st.ok()) {
      if (options.strict) {
        return Status::InvalidArgument(StringFormat(
            "%s:%zu: %s", path.c_str(), line_no, st.message().c_str()));
      }
      continue;
    }
  }
  return builder.Build();
}

Result<Table> ReadCsv(const std::string& path, std::string table_name,
                      Schema schema, const CsvOptions& options) {
  std::vector<std::shared_ptr<Domain>> domains(schema.num_columns(), nullptr);
  return ReadCsvWithDomains(path, std::move(table_name), std::move(schema),
                            std::move(domains), options);
}

namespace {

void WriteField(std::ostream& os, const std::string& field, char delimiter) {
  bool needs_quotes = field.find(delimiter) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos;
  if (!needs_quotes) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(
        StringFormat("cannot open '%s' for writing", path.c_str()));
  }
  for (uint32_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << options.delimiter;
    WriteField(out, table.schema().column(c).name, options.delimiter);
  }
  out << '\n';
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    for (uint32_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteField(out, table.column(c).label(r), options.delimiter);
    }
    out << '\n';
  }
  if (!out) {
    return Status::IOError(
        StringFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace hamlet
