#include "relational/cold_start.h"

#include <algorithm>

#include "common/string_util.h"
#include "stats/contingency.h"

namespace hamlet {

Result<ColdStartResult> AbsorbNewKeys(const Table& s, const Table& r,
                                      const std::string& fk_column,
                                      const std::string& others_label) {
  HAMLET_ASSIGN_OR_RETURN(uint32_t fk_idx, s.schema().IndexOf(fk_column));
  if (s.schema().column(fk_idx).role != ColumnRole::kForeignKey) {
    return Status::InvalidArgument(StringFormat(
        "'%s' is not a foreign key of '%s'", fk_column.c_str(),
        s.name().c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(uint32_t rid_idx, r.schema().PrimaryKeyIndex());
  if (!r.HasUniquePrimaryKey()) {
    return Status::InvalidArgument(StringFormat(
        "attribute table '%s' has duplicate RIDs", r.name().c_str()));
  }
  const Column& old_rid = r.column(rid_idx);
  if (old_rid.domain()->Contains(others_label)) {
    return Status::AlreadyExists(StringFormat(
        "'%s' already has a key labeled '%s'", r.name().c_str(),
        others_label.c_str()));
  }

  // Extended PK dictionary: existing labels + Others.
  std::vector<std::string> labels = old_rid.domain()->labels();
  labels.push_back(others_label);
  auto new_pk_domain = std::make_shared<Domain>(std::move(labels));
  const uint32_t others_code = new_pk_domain->size() - 1;

  // Rebuild R: same rows re-encoded (codes unchanged, new dictionary),
  // plus the Others row with each feature's modal category.
  std::vector<Column> r_cols;
  for (uint32_t c = 0; c < r.num_columns(); ++c) {
    const Column& col = r.column(c);
    std::vector<uint32_t> codes = col.codes();
    if (c == rid_idx) {
      codes.push_back(others_code);
      r_cols.emplace_back(std::move(codes), new_pk_domain);
    } else {
      uint32_t placeholder = 0;
      if (col.size() > 0) {
        auto counts = MarginalCounts(col.codes(), col.domain_size());
        placeholder = static_cast<uint32_t>(
            std::max_element(counts.begin(), counts.end()) -
            counts.begin());
      }
      codes.push_back(placeholder);
      r_cols.emplace_back(std::move(codes), col.domain());
    }
  }
  Table new_r(r.name(), r.schema(), std::move(r_cols));

  // Rebuild S: FK column re-encoded onto the extended PK dictionary.
  uint32_t remapped = 0;
  std::vector<Column> s_cols;
  for (uint32_t c = 0; c < s.num_columns(); ++c) {
    if (c != fk_idx) {
      s_cols.push_back(s.column(c));
      continue;
    }
    const Column& fk = s.column(c);
    std::vector<uint32_t> codes;
    codes.reserve(fk.size());
    for (uint32_t row = 0; row < fk.size(); ++row) {
      auto lookup = new_pk_domain->Lookup(fk.label(row));
      if (lookup.ok()) {
        codes.push_back(*lookup);
      } else {
        codes.push_back(others_code);
        ++remapped;
      }
    }
    s_cols.emplace_back(std::move(codes), new_pk_domain);
  }
  Table new_s(s.name(), s.schema(), std::move(s_cols));

  return ColdStartResult{std::move(new_s), std::move(new_r), remapped,
                         others_label};
}

}  // namespace hamlet
