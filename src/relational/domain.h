#ifndef HAMLET_RELATIONAL_DOMAIN_H_
#define HAMLET_RELATIONAL_DOMAIN_H_

/// \file domain.h
/// Closed categorical domains (string dictionaries).
///
/// Per the paper's Section 2.1 every feature — including the target and
/// every foreign key — is a discrete random variable over a known finite
/// domain. A Domain maps each category label to a dense code in
/// [0, size()). Foreign-key columns *share* the Domain of the primary key
/// they reference, which is what makes the closed-domain assumption
/// (dom(FK) = set of RID values in R) structural rather than a runtime
/// convention.
///
/// Lookups are heterogeneous (std::string_view), so hot paths — the
/// chunked CSV parser, DomainRemap construction — never materialize a
/// temporary std::string just to probe the index.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamlet {

/// Transparent hash so the label index accepts std::string_view probes
/// without constructing a std::string key.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// A finite, ordered set of category labels with O(1) label<->code lookup.
class Domain {
 public:
  Domain() = default;

  /// Builds a domain from distinct labels. Duplicate labels are a
  /// programming error (checked).
  explicit Domain(std::vector<std::string> labels);

  /// Creates the domain {"0","1",...,"<n-1>"} — handy for synthetic data
  /// and integer-coded categories.
  static std::shared_ptr<Domain> Dense(uint32_t n, const std::string& prefix = "");

  /// Returns the code of `label`, adding it if absent.
  uint32_t GetOrAdd(std::string_view label);

  /// Returns the code of `label` or NotFound.
  Result<uint32_t> Lookup(std::string_view label) const;

  /// Like Lookup but without a Status on miss: returns kNoCode when the
  /// label is absent. The code-level join/ingest paths use this form.
  static constexpr uint32_t kNoCode = UINT32_MAX;
  uint32_t CodeOf(std::string_view label) const {
    auto it = index_.find(label);
    return it == index_.end() ? kNoCode : it->second;
  }

  /// True iff the label is present.
  bool Contains(std::string_view label) const {
    return index_.find(label) != index_.end();
  }

  /// The label for a code; code must be < size().
  const std::string& label(uint32_t code) const;

  /// Number of categories.
  uint32_t size() const { return static_cast<uint32_t>(labels_.size()); }

  /// All labels in code order.
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      index_;
};

/// A one-shot code→code translation between two domains, so joins probe
/// integer codes instead of labels even when the two columns were built
/// with distinct Domain objects. map[c] is the code in `to` of
/// from.label(c), or Domain::kNoCode when `to` lacks the label. When
/// `from` and `to` are the same object the remap is the identity and no
/// table is built.
class DomainRemap {
 public:
  static constexpr uint32_t kNoCode = Domain::kNoCode;

  DomainRemap(const std::shared_ptr<Domain>& from,
              const std::shared_ptr<Domain>& to);

  /// Translates a `from` code (must be < from.size()).
  uint32_t operator[](uint32_t from_code) const {
    if (identity_) return from_code;
    return map_[from_code];
  }

  /// True when the two domains are the same object (zero-cost remap).
  bool identity() const { return identity_; }

 private:
  bool identity_ = false;
  std::vector<uint32_t> map_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_DOMAIN_H_
