#ifndef HAMLET_RELATIONAL_DOMAIN_H_
#define HAMLET_RELATIONAL_DOMAIN_H_

/// \file domain.h
/// Closed categorical domains (string dictionaries).
///
/// Per the paper's Section 2.1 every feature — including the target and
/// every foreign key — is a discrete random variable over a known finite
/// domain. A Domain maps each category label to a dense code in
/// [0, size()). Foreign-key columns *share* the Domain of the primary key
/// they reference, which is what makes the closed-domain assumption
/// (dom(FK) = set of RID values in R) structural rather than a runtime
/// convention.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamlet {

/// A finite, ordered set of category labels with O(1) label<->code lookup.
class Domain {
 public:
  Domain() = default;

  /// Builds a domain from distinct labels. Duplicate labels are a
  /// programming error (checked).
  explicit Domain(std::vector<std::string> labels);

  /// Creates the domain {"0","1",...,"<n-1>"} — handy for synthetic data
  /// and integer-coded categories.
  static std::shared_ptr<Domain> Dense(uint32_t n, const std::string& prefix = "");

  /// Returns the code of `label`, adding it if absent.
  uint32_t GetOrAdd(const std::string& label);

  /// Returns the code of `label` or NotFound.
  Result<uint32_t> Lookup(const std::string& label) const;

  /// True iff the label is present.
  bool Contains(const std::string& label) const {
    return index_.find(label) != index_.end();
  }

  /// The label for a code; code must be < size().
  const std::string& label(uint32_t code) const;

  /// Number of categories.
  uint32_t size() const { return static_cast<uint32_t>(labels_.size()); }

  /// All labels in code order.
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_DOMAIN_H_
