#ifndef HAMLET_RELATIONAL_CATALOG_H_
#define HAMLET_RELATIONAL_CATALOG_H_

/// \file catalog.h
/// NormalizedDataset: the star-schema container of Section 2.1 — one
/// entity table S(SID, Y, X_S, FK_1..FK_k) plus k attribute tables
/// R_i(RID_i, X_Ri) — with the join plumbing the experiments need.

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/join.h"
#include "relational/table.h"

namespace hamlet {

/// Metadata for one KFK relationship of the dataset.
struct ForeignKeyInfo {
  std::string fk_column;    ///< FK column name in S.
  std::string table_name;   ///< Referenced attribute table R_i.
  bool closed_domain;       ///< Section 2.1 closed-domain flag.
  uint32_t num_rows;        ///< n_Ri (= |D_FKi| under closed domains).
  uint32_t num_features;    ///< d_Ri = |X_Ri|.
};

/// A normalized dataset: S plus its attribute tables, with validation and
/// partial-join construction. Attribute tables are addressed by the FK
/// column in S that references them.
class NormalizedDataset {
 public:
  NormalizedDataset() = default;

  /// Builds and validates a dataset. Every FK in `entity`'s schema must
  /// reference (via ColumnSpec::ref_table) exactly one of the
  /// `attribute_tables` by name, and each attribute table must have a
  /// unique primary key.
  static Result<NormalizedDataset> Make(std::string name, Table entity,
                                        std::vector<Table> attribute_tables);

  /// Dataset name (e.g., "Walmart").
  const std::string& name() const { return name_; }

  /// The entity table S.
  const Table& entity() const { return entity_; }

  /// All attribute tables, in the order of S's FK columns.
  const std::vector<Table>& attribute_tables() const {
    return attribute_tables_;
  }

  /// Per-FK metadata, in the order of S's FK columns.
  std::vector<ForeignKeyInfo> foreign_keys() const;

  /// The attribute table referenced by `fk_column`, or NotFound.
  Result<const Table*> AttributeTableFor(const std::string& fk_column) const;

  /// Target column name in S.
  Result<std::string> TargetName() const;

  /// Joins S with *every* attribute table ("JoinAll" in the paper).
  /// `options` selects the physical join algorithm (join.h); the result
  /// is bit-identical for every choice.
  Result<Table> JoinAll(const JoinOptions& options = {}) const;

  /// Joins S with exactly the attribute tables referenced by
  /// `fks_to_join`; the rest are avoided (their X_R never materializes).
  /// Passing an empty list returns S itself ("NoJoins").
  Result<Table> JoinSubset(const std::vector<std::string>& fks_to_join,
                           const JoinOptions& options = {}) const;

 private:
  std::string name_;
  Table entity_;
  std::vector<Table> attribute_tables_;   // Parallel to fk_columns_.
  std::vector<std::string> fk_columns_;   // FK column names in schema order.
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_CATALOG_H_
