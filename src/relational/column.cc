#include "relational/column.h"

#include "common/parallel_for.h"

namespace hamlet {

Column Column::Gather(const std::vector<uint32_t>& rows,
                      uint32_t num_threads) const {
  const uint32_t n = static_cast<uint32_t>(rows.size());
  std::vector<uint32_t> out(n);
  if (num_threads == 1) {
    for (uint32_t i = 0; i < n; ++i) out[i] = code(rows[i]);
  } else {
    // Each index writes only its own slot, so the result is identical at
    // any thread count (the pool's determinism contract).
    ParallelFor(n, num_threads,
                [&](uint32_t i) { out[i] = code(rows[i]); });
  }
  return Column(std::move(out), domain_);
}

uint32_t Column::CountDistinct() const {
  std::vector<bool> seen(domain_->size(), false);
  uint32_t distinct = 0;
  for (uint32_t c : codes_) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  return distinct;
}

bool Column::Validate() const {
  for (uint32_t c : codes_) {
    if (c >= domain_->size()) return false;
  }
  return true;
}

}  // namespace hamlet
