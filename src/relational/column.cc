#include "relational/column.h"

#include <atomic>

#include "common/parallel_for.h"

namespace hamlet {

namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

}  // namespace

int64_t ColumnMemory::LiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

int64_t ColumnMemory::PeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void ColumnMemory::ResetPeak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void ColumnMemory::Add(int64_t bytes) {
  if (bytes == 0) return;
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (bytes > 0) {
    int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_peak_bytes.compare_exchange_weak(peak, live,
                                               std::memory_order_relaxed)) {
    }
  }
}

Column Column::Gather(const std::vector<uint32_t>& rows,
                      uint32_t num_threads) const {
  const uint32_t n = static_cast<uint32_t>(rows.size());
  std::vector<uint32_t> out(n);
  if (num_threads == 1) {
    for (uint32_t i = 0; i < n; ++i) out[i] = code(rows[i]);
  } else {
    // Each index writes only its own slot, so the result is identical at
    // any thread count (the pool's determinism contract).
    ParallelFor(n, num_threads,
                [&](uint32_t i) { out[i] = code(rows[i]); });
  }
  return Column(std::move(out), domain_);
}

uint32_t Column::CountDistinct() const {
  std::vector<bool> seen(domain_->size(), false);
  uint32_t distinct = 0;
  for (uint32_t c : codes_) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  return distinct;
}

bool Column::Validate() const {
  for (uint32_t c : codes_) {
    if (c >= domain_->size()) return false;
  }
  return true;
}

}  // namespace hamlet
