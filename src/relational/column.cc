#include "relational/column.h"

namespace hamlet {

Column Column::Gather(const std::vector<uint32_t>& rows) const {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) {
    out.push_back(code(r));
  }
  return Column(std::move(out), domain_);
}

uint32_t Column::CountDistinct() const {
  std::vector<bool> seen(domain_->size(), false);
  uint32_t distinct = 0;
  for (uint32_t c : codes_) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  return distinct;
}

bool Column::Validate() const {
  for (uint32_t c : codes_) {
    if (c >= domain_->size()) return false;
  }
  return true;
}

}  // namespace hamlet
