#ifndef HAMLET_RELATIONAL_SCHEMA_H_
#define HAMLET_RELATIONAL_SCHEMA_H_

/// \file schema.h
/// Table schemas with the column roles the paper's setting needs:
/// primary key, foreign key (with referenced-table metadata and the
/// closed-domain flag of Section 2.1), prediction target, and plain
/// feature.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hamlet {

/// The role a column plays in the normalized-schema setting of Section 2.1.
enum class ColumnRole {
  kFeature = 0,   ///< An X_S or X_R feature.
  kPrimaryKey,    ///< RID of an attribute table / SID of the entity table.
  kForeignKey,    ///< An FK_i in S referring to attribute table R_i.
  kTarget,        ///< The label Y (entity table only).
};

/// Returns "feature" / "primary_key" / "foreign_key" / "target".
const char* ColumnRoleToString(ColumnRole role);

/// Declarative description of one column.
struct ColumnSpec {
  std::string name;
  ColumnRole role = ColumnRole::kFeature;

  /// For kForeignKey: name of the referenced attribute table.
  std::string ref_table;

  /// For kForeignKey: whether the FK's domain is closed with respect to the
  /// prediction task (Section 2.1). Open-domain FKs (e.g., Expedia's
  /// SearchID) are excluded from both modeling and join-avoidance
  /// decisions.
  bool closed_domain = true;

  static ColumnSpec Feature(std::string name) {
    return {std::move(name), ColumnRole::kFeature, "", true};
  }
  static ColumnSpec PrimaryKey(std::string name) {
    return {std::move(name), ColumnRole::kPrimaryKey, "", true};
  }
  static ColumnSpec ForeignKey(std::string name, std::string ref_table,
                               bool closed = true) {
    return {std::move(name), ColumnRole::kForeignKey, std::move(ref_table),
            closed};
  }
  static ColumnSpec Target(std::string name) {
    return {std::move(name), ColumnRole::kTarget, "", true};
  }
};

/// An ordered list of ColumnSpecs with O(1) lookup by name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  /// Number of columns.
  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  /// The spec at `index` (must be < num_columns()).
  const ColumnSpec& column(uint32_t index) const;

  /// All specs in order.
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<uint32_t> IndexOf(const std::string& name) const;

  /// True iff a column with this name exists.
  bool Contains(const std::string& name) const {
    return by_name_.find(name) != by_name_.end();
  }

  /// Index of the unique primary-key column, or NotFound if none.
  Result<uint32_t> PrimaryKeyIndex() const;

  /// Index of the unique target column, or NotFound if none.
  Result<uint32_t> TargetIndex() const;

  /// Indices of all foreign-key columns, in schema order.
  std::vector<uint32_t> ForeignKeyIndices() const;

  /// Indices of all kFeature columns, in schema order.
  std::vector<uint32_t> FeatureIndices() const;

  /// A schema restricted to the given column indices (order preserved as
  /// given). Indices must be valid and distinct.
  Schema Project(const std::vector<uint32_t>& indices) const;

 private:
  std::vector<ColumnSpec> columns_;
  std::unordered_map<std::string, uint32_t> by_name_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_SCHEMA_H_
