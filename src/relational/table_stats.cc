#include "relational/table_stats.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "stats/contingency.h"
#include "stats/info_theory.h"

namespace hamlet {

const ColumnStats* TableStats::Find(const std::string& name) const {
  for (const auto& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.table_name = table.name();
  stats.num_rows = table.num_rows();
  for (uint32_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats cs;
    cs.name = table.schema().column(c).name;
    cs.role = table.schema().column(c).role;
    cs.domain_size = col.domain_size();
    cs.distinct_observed = col.CountDistinct();
    auto counts = MarginalCounts(col.codes(), col.domain_size());
    cs.entropy_bits = EntropyFromCounts(counts);
    if (!counts.empty() && table.num_rows() > 0) {
      uint32_t top = static_cast<uint32_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      cs.top_label = col.domain()->label(top);
      cs.top_share = static_cast<double>(counts[top]) /
                     static_cast<double>(table.num_rows());
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

std::string TableStats::ToString() const {
  TablePrinter printer({"Column", "Role", "|D_F|", "Distinct", "H (bits)",
                        "Top", "Share"});
  for (const ColumnStats& c : columns) {
    printer.AddRow({c.name, ColumnRoleToString(c.role),
                    std::to_string(c.domain_size),
                    std::to_string(c.distinct_observed),
                    StringFormat("%.3f", c.entropy_bits), c.top_label,
                    StringFormat("%.3f", c.top_share)});
  }
  std::ostringstream oss;
  oss << StringFormat("%s: %u rows\n", table_name.c_str(), num_rows);
  printer.Print(oss);
  return oss.str();
}

Result<CandidateTableStats> ToCandidateStats(const Table& attribute_table,
                                             const std::string& fk_column,
                                             bool closed) {
  std::vector<uint32_t> features =
      attribute_table.schema().FeatureIndices();
  if (features.empty()) {
    return Status::InvalidArgument(StringFormat(
        "attribute table '%s' has no features",
        attribute_table.name().c_str()));
  }
  CandidateTableStats out;
  out.fk_column = fk_column;
  out.table_name = attribute_table.name();
  out.num_rows = attribute_table.num_rows();
  out.min_feature_domain = UINT64_MAX;
  for (uint32_t idx : features) {
    out.min_feature_domain = std::min<uint64_t>(
        out.min_feature_domain, attribute_table.column(idx).domain_size());
  }
  out.min_feature_domain = std::max<uint64_t>(out.min_feature_domain, 1);
  out.closed_domain = closed;
  return out;
}

}  // namespace hamlet
