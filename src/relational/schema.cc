#include "relational/schema.h"

#include "common/check.h"
#include "common/string_util.h"

namespace hamlet {

const char* ColumnRoleToString(ColumnRole role) {
  switch (role) {
    case ColumnRole::kFeature:
      return "feature";
    case ColumnRole::kPrimaryKey:
      return "primary_key";
    case ColumnRole::kForeignKey:
      return "foreign_key";
    case ColumnRole::kTarget:
      return "target";
  }
  return "unknown";
}

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  by_name_.reserve(columns_.size());
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = by_name_.emplace(columns_[i].name, i);
    HAMLET_CHECK(inserted, "duplicate column name '%s' in schema",
                 columns_[i].name.c_str());
  }
}

const ColumnSpec& Schema::column(uint32_t index) const {
  HAMLET_CHECK(index < num_columns(), "column index %u out of range %u",
               index, num_columns());
  return columns_[index];
}

Result<uint32_t> Schema::IndexOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(
        StringFormat("no column named '%s'", name.c_str()));
  }
  return it->second;
}

Result<uint32_t> Schema::PrimaryKeyIndex() const {
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].role == ColumnRole::kPrimaryKey) return i;
  }
  return Status::NotFound("schema has no primary key column");
}

Result<uint32_t> Schema::TargetIndex() const {
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].role == ColumnRole::kTarget) return i;
  }
  return Status::NotFound("schema has no target column");
}

std::vector<uint32_t> Schema::ForeignKeyIndices() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].role == ColumnRole::kForeignKey) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> Schema::FeatureIndices() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].role == ColumnRole::kFeature) out.push_back(i);
  }
  return out;
}

Schema Schema::Project(const std::vector<uint32_t>& indices) const {
  std::vector<ColumnSpec> specs;
  specs.reserve(indices.size());
  for (uint32_t idx : indices) {
    specs.push_back(column(idx));
  }
  return Schema(std::move(specs));
}

}  // namespace hamlet
