#include "relational/catalog.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace hamlet {

Result<NormalizedDataset> NormalizedDataset::Make(
    std::string name, Table entity, std::vector<Table> attribute_tables) {
  NormalizedDataset ds;
  ds.name_ = std::move(name);
  ds.entity_ = std::move(entity);

  std::unordered_map<std::string, size_t> by_name;
  for (size_t i = 0; i < attribute_tables.size(); ++i) {
    by_name[attribute_tables[i].name()] = i;
  }

  std::vector<bool> used(attribute_tables.size(), false);
  for (uint32_t idx : ds.entity_.schema().ForeignKeyIndices()) {
    const ColumnSpec& spec = ds.entity_.schema().column(idx);
    auto it = by_name.find(spec.ref_table);
    if (it == by_name.end()) {
      return Status::InvalidArgument(StringFormat(
          "FK '%s' references unknown table '%s'", spec.name.c_str(),
          spec.ref_table.c_str()));
    }
    const Table& r = attribute_tables[it->second];
    if (!r.schema().PrimaryKeyIndex().ok()) {
      return Status::InvalidArgument(StringFormat(
          "attribute table '%s' has no primary key", r.name().c_str()));
    }
    if (!r.HasUniquePrimaryKey()) {
      return Status::InvalidArgument(StringFormat(
          "attribute table '%s' has duplicate RIDs", r.name().c_str()));
    }
    if (used[it->second]) {
      return Status::InvalidArgument(StringFormat(
          "attribute table '%s' referenced by multiple FKs; give each FK "
          "its own table copy (as the paper's Flights dataset does)",
          r.name().c_str()));
    }
    used[it->second] = true;
    ds.fk_columns_.push_back(spec.name);
    ds.attribute_tables_.push_back(std::move(attribute_tables[it->second]));
  }

  for (size_t i = 0; i < attribute_tables.size(); ++i) {
    if (!used[i] && attribute_tables[i].num_rows() > 0) {
      return Status::InvalidArgument(StringFormat(
          "attribute table '%s' is not referenced by any FK",
          attribute_tables[i].name().c_str()));
    }
  }

  if (!ds.entity_.schema().TargetIndex().ok()) {
    return Status::InvalidArgument("entity table has no target column");
  }
  return ds;
}

std::vector<ForeignKeyInfo> NormalizedDataset::foreign_keys() const {
  std::vector<ForeignKeyInfo> out;
  out.reserve(fk_columns_.size());
  for (size_t i = 0; i < fk_columns_.size(); ++i) {
    auto idx = entity_.schema().IndexOf(fk_columns_[i]);
    const ColumnSpec& spec = entity_.schema().column(*idx);
    const Table& r = attribute_tables_[i];
    out.push_back(ForeignKeyInfo{
        fk_columns_[i], r.name(), spec.closed_domain, r.num_rows(),
        static_cast<uint32_t>(r.schema().FeatureIndices().size())});
  }
  return out;
}

Result<const Table*> NormalizedDataset::AttributeTableFor(
    const std::string& fk_column) const {
  for (size_t i = 0; i < fk_columns_.size(); ++i) {
    if (fk_columns_[i] == fk_column) return &attribute_tables_[i];
  }
  return Status::NotFound(
      StringFormat("no attribute table for FK '%s'", fk_column.c_str()));
}

Result<std::string> NormalizedDataset::TargetName() const {
  HAMLET_ASSIGN_OR_RETURN(uint32_t idx, entity_.schema().TargetIndex());
  return entity_.schema().column(idx).name;
}

Result<Table> NormalizedDataset::JoinAll(const JoinOptions& options) const {
  return JoinSubset(fk_columns_, options);
}

Result<Table> NormalizedDataset::JoinSubset(
    const std::vector<std::string>& fks_to_join,
    const JoinOptions& options) const {
  Table result = entity_;
  for (const auto& fk : fks_to_join) {
    auto pos = std::find(fk_columns_.begin(), fk_columns_.end(), fk);
    if (pos == fk_columns_.end()) {
      return Status::NotFound(
          StringFormat("'%s' is not a foreign key of '%s'", fk.c_str(),
                       entity_.name().c_str()));
    }
    const Table& r = attribute_tables_[pos - fk_columns_.begin()];
    HAMLET_ASSIGN_OR_RETURN(result, KfkJoin(result, r, fk, options));
  }
  return result;
}

}  // namespace hamlet
