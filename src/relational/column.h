#ifndef HAMLET_RELATIONAL_COLUMN_H_
#define HAMLET_RELATIONAL_COLUMN_H_

/// \file column.h
/// Dictionary-encoded categorical columns.
///
/// A Column is a dense vector of uint32 codes plus a shared Domain. All
/// columns in this library are categorical (the paper's all-nominal
/// setting); numeric inputs are discretized at ingestion (see
/// stats/binning.h). Key and foreign-key columns are ordinary categorical
/// columns whose Domain is the referenced dictionary.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "relational/domain.h"

namespace hamlet {

/// Process-wide accounting of the code bytes held by live Column objects.
/// Every Column registers its code vector's bytes on construction and
/// releases them on destruction, so LiveBytes()/PeakBytes() measure what
/// the relational layer actually materializes — the quantity factorized
/// training avoids (a joined table's gathered columns never exist in
/// avoid-materialization mode; see ml/factorized.h). Counters are relaxed
/// atomics: exact under serial phases, race-free always.
class ColumnMemory {
 public:
  /// Code bytes of all currently live Columns.
  static int64_t LiveBytes();

  /// High-water mark of LiveBytes() since the last ResetPeak().
  static int64_t PeakBytes();

  /// Resets the peak to the current live figure (benchmarks and the
  /// memory-win tests bracket a phase with this).
  static void ResetPeak();

  /// Adjusts the live figure by `bytes` (internal; called by Column).
  static void Add(int64_t bytes);
};

/// A dictionary-encoded column of categorical values.
class Column {
 public:
  Column() : domain_(std::make_shared<Domain>()) {}

  /// Constructs from codes and a domain; every code must be < domain size
  /// (checked lazily by accessors in debug paths, and by Validate()).
  Column(std::vector<uint32_t> codes, std::shared_ptr<Domain> domain)
      : codes_(std::move(codes)), domain_(std::move(domain)) {
    HAMLET_CHECK(domain_ != nullptr, "Column requires a non-null domain");
    Account();
  }

  Column(const Column& other)
      : codes_(other.codes_), domain_(other.domain_) {
    Account();
  }

  Column(Column&& other) noexcept
      : codes_(std::move(other.codes_)),
        domain_(std::move(other.domain_)),
        accounted_(other.accounted_) {
    other.accounted_ = 0;
  }

  Column& operator=(const Column& other) {
    if (this != &other) {
      codes_ = other.codes_;
      domain_ = other.domain_;
      Account();
    }
    return *this;
  }

  Column& operator=(Column&& other) noexcept {
    if (this != &other) {
      ColumnMemory::Add(-accounted_);
      codes_ = std::move(other.codes_);
      domain_ = std::move(other.domain_);
      accounted_ = other.accounted_;
      other.accounted_ = 0;
    }
    return *this;
  }

  ~Column() { ColumnMemory::Add(-accounted_); }

  /// Number of rows.
  uint32_t size() const { return static_cast<uint32_t>(codes_.size()); }

  /// Code at `row`.
  uint32_t code(uint32_t row) const {
    HAMLET_DCHECK(row < size(), "row %u out of range %u", row, size());
    return codes_[row];
  }

  /// Label at `row` (dictionary lookup).
  const std::string& label(uint32_t row) const {
    return domain_->label(code(row));
  }

  /// The whole code vector.
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// The dictionary.
  const std::shared_ptr<Domain>& domain() const { return domain_; }

  /// Domain cardinality |D_F|.
  uint32_t domain_size() const { return domain_->size(); }

  /// Appends a code (must be < domain size).
  void Append(uint32_t code) {
    HAMLET_DCHECK(code < domain_->size(), "code %u out of domain %u", code,
                  domain_->size());
    codes_.push_back(code);
    accounted_ += static_cast<int64_t>(sizeof(uint32_t));
    ColumnMemory::Add(static_cast<int64_t>(sizeof(uint32_t)));
  }

  /// Returns a column with rows picked (with repetition allowed) by
  /// `rows`; shares this column's domain. With `num_threads` != 1 the
  /// copy runs as chunked writes into the pre-sized output on the shared
  /// pool (0 = all hardware threads); every thread count produces the
  /// same column, so join materialization can parallelize freely.
  Column Gather(const std::vector<uint32_t>& rows,
                uint32_t num_threads = 1) const;

  /// Number of *distinct* codes that actually occur (≤ domain_size()).
  /// The ROR derivation needs this (q_R: observed distinct values).
  uint32_t CountDistinct() const;

  /// Checks every code is within the domain.
  bool Validate() const;

 private:
  void Account() {
    const int64_t bytes =
        static_cast<int64_t>(codes_.size() * sizeof(uint32_t));
    ColumnMemory::Add(bytes - accounted_);
    accounted_ = bytes;
  }

  std::vector<uint32_t> codes_;
  std::shared_ptr<Domain> domain_;
  int64_t accounted_ = 0;  ///< Bytes this object has registered.
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_COLUMN_H_
