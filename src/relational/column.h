#ifndef HAMLET_RELATIONAL_COLUMN_H_
#define HAMLET_RELATIONAL_COLUMN_H_

/// \file column.h
/// Dictionary-encoded categorical columns.
///
/// A Column is a dense vector of uint32 codes plus a shared Domain. All
/// columns in this library are categorical (the paper's all-nominal
/// setting); numeric inputs are discretized at ingestion (see
/// stats/binning.h). Key and foreign-key columns are ordinary categorical
/// columns whose Domain is the referenced dictionary.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "relational/domain.h"

namespace hamlet {

/// A dictionary-encoded column of categorical values.
class Column {
 public:
  Column() : domain_(std::make_shared<Domain>()) {}

  /// Constructs from codes and a domain; every code must be < domain size
  /// (checked lazily by accessors in debug paths, and by Validate()).
  Column(std::vector<uint32_t> codes, std::shared_ptr<Domain> domain)
      : codes_(std::move(codes)), domain_(std::move(domain)) {
    HAMLET_CHECK(domain_ != nullptr, "Column requires a non-null domain");
  }

  /// Number of rows.
  uint32_t size() const { return static_cast<uint32_t>(codes_.size()); }

  /// Code at `row`.
  uint32_t code(uint32_t row) const {
    HAMLET_DCHECK(row < size(), "row %u out of range %u", row, size());
    return codes_[row];
  }

  /// Label at `row` (dictionary lookup).
  const std::string& label(uint32_t row) const {
    return domain_->label(code(row));
  }

  /// The whole code vector.
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// The dictionary.
  const std::shared_ptr<Domain>& domain() const { return domain_; }

  /// Domain cardinality |D_F|.
  uint32_t domain_size() const { return domain_->size(); }

  /// Appends a code (must be < domain size).
  void Append(uint32_t code) {
    HAMLET_DCHECK(code < domain_->size(), "code %u out of domain %u", code,
                  domain_->size());
    codes_.push_back(code);
  }

  /// Returns a column with rows picked (with repetition allowed) by
  /// `rows`; shares this column's domain. With `num_threads` != 1 the
  /// copy runs as chunked writes into the pre-sized output on the shared
  /// pool (0 = all hardware threads); every thread count produces the
  /// same column, so join materialization can parallelize freely.
  Column Gather(const std::vector<uint32_t>& rows,
                uint32_t num_threads = 1) const;

  /// Number of *distinct* codes that actually occur (≤ domain_size()).
  /// The ROR derivation needs this (q_R: observed distinct values).
  uint32_t CountDistinct() const;

  /// Checks every code is within the domain.
  bool Validate() const;

 private:
  std::vector<uint32_t> codes_;
  std::shared_ptr<Domain> domain_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_COLUMN_H_
