#include "relational/table.h"

#include "common/check.h"
#include "common/string_util.h"

namespace hamlet {

Table::Table(std::string name, Schema schema, std::vector<Column> columns)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(std::move(columns)) {
  HAMLET_CHECK(schema_.num_columns() == columns_.size(),
               "table '%s': schema has %u columns, data has %zu",
               name_.c_str(), schema_.num_columns(), columns_.size());
  for (size_t i = 1; i < columns_.size(); ++i) {
    HAMLET_CHECK(columns_[i].size() == columns_[0].size(),
                 "table '%s': column %zu length mismatch", name_.c_str(), i);
  }
}

const Column& Table::column(uint32_t index) const {
  HAMLET_CHECK(index < num_columns(), "column index %u out of range %u",
               index, num_columns());
  return columns_[index];
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  HAMLET_ASSIGN_OR_RETURN(uint32_t idx, schema_.IndexOf(name));
  return &columns_[idx];
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  std::vector<uint32_t> indices;
  indices.reserve(names.size());
  for (const auto& n : names) {
    HAMLET_ASSIGN_OR_RETURN(uint32_t idx, schema_.IndexOf(n));
    indices.push_back(idx);
  }
  return ProjectIndices(indices);
}

Table Table::ProjectIndices(const std::vector<uint32_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (uint32_t idx : indices) {
    cols.push_back(column(idx));
  }
  return Table(name_, schema_.Project(indices), std::move(cols));
}

Table Table::GatherRows(const std::vector<uint32_t>& rows) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const auto& col : columns_) {
    cols.push_back(col.Gather(rows));
  }
  return Table(name_, schema_, std::move(cols));
}

Status Table::Validate() const {
  if (schema_.num_columns() != columns_.size()) {
    return Status::Internal("schema/column count mismatch");
  }
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].size() != num_rows()) {
      return Status::Internal(StringFormat(
          "column %u has %u rows, expected %u", i, columns_[i].size(),
          num_rows()));
    }
    if (!columns_[i].Validate()) {
      return Status::Internal(StringFormat(
          "column '%s' has codes outside its domain",
          schema_.column(i).name.c_str()));
    }
  }
  auto pk = schema_.PrimaryKeyIndex();
  if (pk.ok() && !HasUniquePrimaryKey()) {
    return Status::Internal(StringFormat(
        "primary key '%s' of table '%s' has duplicate values",
        schema_.column(*pk).name.c_str(), name_.c_str()));
  }
  return Status::OK();
}

bool Table::HasUniquePrimaryKey() const {
  auto pk = schema_.PrimaryKeyIndex();
  if (!pk.ok()) return false;
  const Column& col = columns_[*pk];
  std::vector<bool> seen(col.domain_size(), false);
  for (uint32_t r = 0; r < col.size(); ++r) {
    uint32_t c = col.code(r);
    if (seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

TableBuilder::TableBuilder(std::string name, Schema schema,
                           std::vector<std::shared_ptr<Domain>> domains)
    : name_(std::move(name)), schema_(std::move(schema)) {
  HAMLET_CHECK(domains.size() == schema_.num_columns(),
               "TableBuilder: %zu domains for %u columns", domains.size(),
               schema_.num_columns());
  domains_.reserve(domains.size());
  fixed_domain_.reserve(domains.size());
  for (auto& d : domains) {
    if (d == nullptr) {
      domains_.push_back(std::make_shared<Domain>());
      fixed_domain_.push_back(false);
    } else {
      domains_.push_back(std::move(d));
      fixed_domain_.push_back(true);
    }
  }
  codes_.resize(schema_.num_columns());
}

TableBuilder::TableBuilder(std::string name, Schema schema)
    : TableBuilder(std::move(name), schema,
                   std::vector<std::shared_ptr<Domain>>(schema.num_columns(),
                                                        nullptr)) {}

Status TableBuilder::AppendRowLabels(const std::vector<std::string>& labels) {
  if (labels.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "row has %zu fields, schema has %u", labels.size(),
        schema_.num_columns()));
  }
  // Validate fixed-domain labels before mutating anything, so a failed
  // append leaves the builder unchanged.
  for (uint32_t c = 0; c < labels.size(); ++c) {
    if (fixed_domain_[c] && !domains_[c]->Contains(labels[c])) {
      return Status::InvalidArgument(StringFormat(
          "value '%s' not in the closed domain of column '%s'",
          labels[c].c_str(), schema_.column(c).name.c_str()));
    }
  }
  for (uint32_t c = 0; c < labels.size(); ++c) {
    codes_[c].push_back(domains_[c]->GetOrAdd(labels[c]));
  }
  ++num_rows_;
  return Status::OK();
}

void TableBuilder::AppendRowCodes(const std::vector<uint32_t>& codes) {
  HAMLET_CHECK(codes.size() == schema_.num_columns(),
               "row has %zu codes, schema has %u", codes.size(),
               schema_.num_columns());
  for (uint32_t c = 0; c < codes.size(); ++c) {
    HAMLET_DCHECK(codes[c] < domains_[c]->size(),
                  "code %u out of domain %u for column %u", codes[c],
                  domains_[c]->size(), c);
    codes_[c].push_back(codes[c]);
  }
  ++num_rows_;
}

Table TableBuilder::Build() {
  std::vector<Column> cols;
  cols.reserve(codes_.size());
  for (uint32_t c = 0; c < codes_.size(); ++c) {
    cols.emplace_back(std::move(codes_[c]), domains_[c]);
  }
  return Table(std::move(name_), std::move(schema_), std::move(cols));
}

}  // namespace hamlet
