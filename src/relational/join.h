#ifndef HAMLET_RELATIONAL_JOIN_H_
#define HAMLET_RELATIONAL_JOIN_H_

/// \file join.h
/// Key–foreign-key equi-joins: the operation the paper asks whether you can
/// skip.
///
/// KfkJoin computes T ← π(R ⋈_{RID=FK} S) from Section 2.1: every S row is
/// matched with exactly one R row (RID is R's primary key; referential
/// integrity is required), and R's feature columns are appended to S's.
/// R's RID column is dropped from the output — it is duplicated by FK.
///
/// HashJoin is a general inner equi-join used as a reference implementation
/// and by tests.
///
/// Both joins are code-level: when the key columns use distinct Domain
/// objects a one-shot DomainRemap (domain.h) translates codes once, so
/// build and probe never touch labels. HashJoin's build side is a
/// CSR-style offsets+rows layout indexed by key code (no per-key
/// allocations), and output materialization gathers each column with
/// chunked parallel writes. Results are bit-identical at any thread count
/// (the repo's determinism contract).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// Sentinel for "this key code has no matching row" in BuildFkRowIndex.
inline constexpr uint32_t kNoFkRow = UINT32_MAX;

/// Maps every code of `fk`'s domain to the `rid`-side row holding that
/// RID, or kNoFkRow when no row carries it. A DomainRemap translates rid
/// codes into fk codes once, so the per-row loop is integer-only even when
/// the two columns use distinct Domain objects. Fails on duplicate RIDs.
/// This is KfkJoin's probe index, exposed because factorized training
/// (ml/factorized.h) walks the same FK -> R hop without materializing the
/// join.
Result<std::vector<uint32_t>> BuildFkRowIndex(const Column& fk,
                                              const Column& rid);

/// Per-(key code, group) occurrence counts over a row subset: the result
/// is flat [code * num_groups + g], counting the rows r of `rows` with
/// key_codes[r] == code and groups[r] == g. This is the one entity-side
/// pass factorized training makes per FK — the table is then scattered
/// through the BuildFkRowIndex hop instead of joining. `rows` is sharded
/// across threads with per-shard local tables merged serially in shard
/// order; counts are integers, so the result is bit-identical at any
/// thread count (0 = all hardware threads, 1 = serial).
std::vector<uint64_t> GroupCountByCode(const std::vector<uint32_t>& key_codes,
                                       uint32_t num_codes,
                                       const std::vector<uint32_t>& groups,
                                       uint32_t num_groups,
                                       const std::vector<uint32_t>& rows,
                                       uint32_t num_threads = 0);

/// Physical join algorithm. Every choice produces bit-identical tables
/// (and identical error reports); only cache behaviour differs.
enum class JoinAlgorithm : uint8_t {
  /// Pick per call: measured cost-profile records for the competing
  /// operators when the store has them (obs/cost_profile.h), else a
  /// size heuristic — radix once the build side's code range and the
  /// probe side both outgrow cache-resident scale. See
  /// docs/PERFORMANCE.md "Join algorithm matrix".
  kAuto = 0,
  /// One monolithic CSR over the whole key-code range (the PR 5 path):
  /// unbeatable while offsets+rows stay LLC-resident.
  kCsr,
  /// Radix-partitioned per-partition CSR (relational/radix_join.h):
  /// two-pass deterministic partition scatter, then build+probe inside
  /// cache-sized code sub-ranges.
  kRadix,
};

/// Blocked Bloom semi-join pre-filter over the build side's key codes
/// (common/bloom.h). Probe rows whose key the filter rejects never touch
/// the CSR. Applies to HashJoin only — KfkJoin requires every row to
/// match, so a pre-filter could only hide referential-integrity errors.
enum class BloomFilterMode : uint8_t {
  /// On exactly when the build side cannot cover its key domain
  /// (build_rows * 2 < distinct codes), i.e. when misses are certain to
  /// exist; off for FK-shaped joins where every probe row matches.
  kAuto = 0,
  kOff,
  kOn,
};

/// Knobs shared by both joins.
struct JoinOptions {
  /// Shards for probe and output materialization (0 = all hardware
  /// threads, 1 = serial). Any value yields the same table.
  uint32_t num_threads = 0;
  /// Physical algorithm; results never depend on it.
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
  /// log2 of the requested partition fanout for kRadix (0 = derive from
  /// the build side's code range; see MakeRadixLayout). Any fanout
  /// yields the same table.
  uint32_t radix_bits = 0;
  /// Bloom pre-filter switch (HashJoin only).
  BloomFilterMode bloom = BloomFilterMode::kAuto;
};

/// Joins entity table `s` with attribute table `r` on `s.fk_column` =
/// r's primary key. Fails if the FK column is missing or not a foreign
/// key, if `r` has no primary key or duplicate RIDs, if referential
/// integrity is violated (an FK value with no matching RID), or if a
/// feature name in `r` collides with a column of `s`.
///
/// The output preserves `s`'s columns (including the FK itself, which the
/// paper keeps as a feature) followed by `r`'s feature columns.
Result<Table> KfkJoin(const Table& s, const Table& r,
                      const std::string& fk_column,
                      const JoinOptions& options = {});

/// General inner equi-join of `left` and `right` on
/// left.`left_column` = right.`right_column`. The output contains all
/// left columns followed by all right columns except `right_column`.
/// Output rows appear in left-row-major order of matches (right rows
/// ascending within a key). Used as the nested-loop-checked reference for
/// KfkJoin and available to library users for non-KFK joins.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_column,
                       const std::string& right_column,
                       const JoinOptions& options = {});

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_JOIN_H_
