#ifndef HAMLET_RELATIONAL_TABLE_STATS_H_
#define HAMLET_RELATIONAL_TABLE_STATS_H_

/// \file table_stats.h
/// Table profiling: the per-column statistics an analyst (or the
/// metadata-only advisor) needs before modeling — domain sizes, observed
/// distinct counts, entropies, top categories. This is the bridge from a
/// raw extract to AdviseJoinsFromStats' CandidateTableStats.

#include <string>
#include <vector>

#include "common/result.h"
#include "core/advisor.h"
#include "relational/table.h"

namespace hamlet {

/// Profile of one column.
struct ColumnStats {
  std::string name;
  ColumnRole role = ColumnRole::kFeature;
  uint32_t domain_size = 0;      ///< |D_F| (dictionary size).
  uint32_t distinct_observed = 0;  ///< Values actually present.
  double entropy_bits = 0.0;     ///< H(F) over the instance.
  /// The modal category and its frequency share.
  std::string top_label;
  double top_share = 0.0;
};

/// Profile of a whole table.
struct TableStats {
  std::string table_name;
  uint32_t num_rows = 0;
  std::vector<ColumnStats> columns;

  /// The column profile by name, or nullptr.
  const ColumnStats* Find(const std::string& name) const;

  /// Fixed-width rendering.
  std::string ToString() const;
};

/// Profiles every column of `table` in one pass per column.
TableStats ComputeTableStats(const Table& table);

/// Derives the advisor's metadata record for an attribute table: n_R from
/// the row count and q*_R from the smallest feature domain. `fk_column`
/// names the referencing FK in the entity table; `closed` its domain
/// flag. Fails if the table has no features.
Result<CandidateTableStats> ToCandidateStats(const Table& attribute_table,
                                             const std::string& fk_column,
                                             bool closed = true);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_TABLE_STATS_H_
