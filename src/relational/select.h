#ifndef HAMLET_RELATIONAL_SELECT_H_
#define HAMLET_RELATIONAL_SELECT_H_

/// \file select.h
/// Row selection (relational σ), completing the algebra fragment the
/// library exposes (σ, π via Table::Project, ⋈ via join.h). Used by the
/// drill-down analyses — e.g., isolating the rows of one class or one
/// foreign-key value when studying where avoidance errors concentrate.

#include <functional>
#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// Rows of `table` whose `column` equals `label` (exact dictionary
/// match). Unknown column errors; a label outside the column's domain
/// yields an empty table (nothing can match a closed domain's outside).
Result<Table> SelectRowsEqual(const Table& table, const std::string& column,
                              const std::string& label);

/// Rows whose `column` code satisfies `predicate`. The predicate sees the
/// dictionary code; use the column's Domain to reason about labels.
Result<Table> SelectRowsWhere(const Table& table, const std::string& column,
                              const std::function<bool(uint32_t)>& predicate);

/// Row indices (not a materialized table) matching a code predicate —
/// the zero-copy variant for the ML layer's (rows, features) interfaces.
Result<std::vector<uint32_t>> SelectIndicesWhere(
    const Table& table, const std::string& column,
    const std::function<bool(uint32_t)>& predicate);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_SELECT_H_
