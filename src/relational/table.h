#ifndef HAMLET_RELATIONAL_TABLE_H_
#define HAMLET_RELATIONAL_TABLE_H_

/// \file table.h
/// In-memory column-store tables over categorical columns.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"

namespace hamlet {

/// An immutable-by-convention, named collection of equal-length Columns
/// described by a Schema. Tables are cheap to move; columns share their
/// Domains so projections and row-gathers do not copy dictionaries.
class Table {
 public:
  Table() = default;

  /// Constructs from parts; all columns must have equal length and the
  /// column count must match the schema.
  Table(std::string name, Schema schema, std::vector<Column> columns);

  /// Table name (e.g., "Customers").
  const std::string& name() const { return name_; }

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// Number of rows.
  uint32_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// Number of columns.
  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  /// Column by position.
  const Column& column(uint32_t index) const;

  /// Column by name, or NotFound.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// New table keeping only the named columns (in the given order).
  Result<Table> Project(const std::vector<std::string>& names) const;

  /// New table keeping only the given column indices.
  Table ProjectIndices(const std::vector<uint32_t>& indices) const;

  /// New table with rows picked by `rows` (repetition allowed) — the
  /// primitive underlying splits and sampling.
  Table GatherRows(const std::vector<uint32_t>& rows) const;

  /// Structural sanity: column count/length agreement, codes within
  /// domains, primary key (if any) has distinct values.
  Status Validate() const;

  /// True iff the primary key column exists and all its values are
  /// distinct (every RID appears exactly once, as in an attribute table).
  bool HasUniquePrimaryKey() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
};

/// Row-at-a-time construction of a Table from labels or codes.
class TableBuilder {
 public:
  /// Starts building a table with the given schema. Each column gets the
  /// corresponding domain from `domains` (shared), or a fresh empty domain
  /// if the entry is nullptr (labels are then added on first use).
  TableBuilder(std::string name, Schema schema,
               std::vector<std::shared_ptr<Domain>> domains);

  /// Convenience: all-fresh domains.
  TableBuilder(std::string name, Schema schema);

  /// Appends a row of labels; unseen labels extend fresh domains but are
  /// an error for fixed (shared) domains.
  Status AppendRowLabels(const std::vector<std::string>& labels);

  /// Appends a row of pre-encoded codes (no checks beyond domain bounds).
  void AppendRowCodes(const std::vector<uint32_t>& codes);

  /// Number of rows appended so far.
  uint32_t num_rows() const { return num_rows_; }

  /// The domain backing column `col` (to pre-populate or share).
  const std::shared_ptr<Domain>& domain(uint32_t col) const {
    return domains_[col];
  }

  /// Finalizes the table. The builder must not be reused afterwards.
  Table Build();

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::shared_ptr<Domain>> domains_;
  std::vector<std::vector<uint32_t>> codes_;
  std::vector<bool> fixed_domain_;
  uint32_t num_rows_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_TABLE_H_
