#ifndef HAMLET_RELATIONAL_COLD_START_H_
#define HAMLET_RELATIONAL_COLD_START_H_

/// \file cold_start.h
/// The cold-start handling Section 2.1 describes as common practice:
/// between model revisions, FK values with no matching attribute-table
/// row (new employers, new movies) are absorbed by a special "Others"
/// placeholder record in R, keeping the closed-domain assumption intact
/// and referential integrity satisfied.
///
/// AbsorbNewKeys takes an entity table whose FK column was ingested with
/// its *own* dictionary (as a CSV load produces) and an attribute table,
/// and rebuilds both so that:
///   * R gains one "Others" row whose features take each column's most
///     frequent category (a neutral placeholder);
///   * S's FK column is re-encoded onto R's (extended) PK dictionary,
///     with unseen labels mapped to the Others row;
/// after which KfkJoin and NormalizedDataset::Make work as usual.

#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// The rebuilt pair plus bookkeeping.
struct ColdStartResult {
  Table entity;           ///< S with the FK re-encoded on R's dictionary.
  Table attribute;        ///< R with the appended Others row.
  uint32_t remapped_rows = 0;  ///< S rows that referenced unknown keys.
  std::string others_label;    ///< The placeholder key label used.
};

/// Absorbs S-side FK labels absent from `r`'s primary key into an
/// "Others" record. Fails if `fk_column` is not a foreign key of `s` or
/// `r` lacks a unique primary key. If every FK label already resolves,
/// the Others row is still added (so future revisions have a stable
/// placeholder) but remapped_rows is 0.
Result<ColdStartResult> AbsorbNewKeys(const Table& s, const Table& r,
                                      const std::string& fk_column,
                                      const std::string& others_label =
                                          "__others__");

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_COLD_START_H_
