#ifndef HAMLET_RELATIONAL_FUNCTIONAL_DEPS_H_
#define HAMLET_RELATIONAL_FUNCTIONAL_DEPS_H_

/// \file functional_deps.h
/// General functional dependencies — the machinery behind Corollary C.1:
/// given a table T(ID, Y, X) with a canonical *acyclic* set of FDs Q over
/// the features, every feature appearing in a dependent set of Q is
/// redundant (it has a Markov blanket among the determinants), exactly as
/// X_R is redundant given FK after a KFK join.
///
/// The module provides:
///   * an FdSet container with attribute-closure computation (Armstrong),
///   * the acyclicity test of Definition C.1,
///   * the Corollary C.1 redundant-feature set,
///   * instance-level FD verification and exact unary FD discovery on
///     tables (the joined table T materializes FK -> X_R; discovery finds
///     it back).

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// One functional dependency: determinants -> dependents.
struct FunctionalDependency {
  std::vector<std::string> determinants;
  std::vector<std::string> dependents;
};

/// A set of FDs over a named attribute universe.
class FdSet {
 public:
  /// Creates an FD set over the given attributes.
  explicit FdSet(std::vector<std::string> attributes);

  /// Adds an FD; every named attribute must be in the universe and the
  /// determinant set must be non-empty.
  Status Add(FunctionalDependency fd);

  /// The attribute closure {attrs}+ under the FDs (all attributes
  /// functionally determined by `attrs`). Unknown attributes error.
  Result<std::vector<std::string>> Closure(
      const std::vector<std::string>& attrs) const;

  /// True iff `attrs` functionally determine `attribute`.
  Result<bool> Implies(const std::vector<std::string>& attrs,
                       const std::string& attribute) const;

  /// Definition C.1: the digraph with an edge determinant -> dependent
  /// for each FD is acyclic.
  bool IsAcyclic() const;

  /// Corollary C.1: every attribute appearing in some dependent set. For
  /// an acyclic FD set these features are redundant for prediction — the
  /// determinants form their Markov blanket.
  std::vector<std::string> DependentAttributes() const;

  /// The complement: attributes never functionally determined by others —
  /// the minimal "representative" set that Corollary C.1 says suffices.
  std::vector<std::string> RepresentativeAttributes() const;

  /// All FDs added so far.
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// The attribute universe.
  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  Result<uint32_t> IndexOf(const std::string& attribute) const;

  std::vector<std::string> attributes_;
  std::vector<FunctionalDependency> fds_;
};

/// Instance-level check: does `determinant -> dependent` hold in every
/// row pair of `table`? (Exact, O(n) with a hash map.)
Result<bool> FdHoldsInTable(const Table& table,
                            const std::string& determinant,
                            const std::string& dependent);

/// Exact unary FD discovery: all pairs (A -> B) of distinct columns such
/// that A functionally determines B in the instance. On a KFK-joined
/// table this returns FK -> F for every foreign feature F (plus whatever
/// incidental dependencies the instance satisfies).
Result<std::vector<FunctionalDependency>> DiscoverUnaryFds(
    const Table& table);

/// Builds the FdSet implied by a KFK-joined table's schema: one FD per
/// foreign key, FK -> {features gathered from its attribute table}.
/// `foreign_features[i]` lists the features the i-th FK brought in.
FdSet SchemaFdsForJoin(const Table& joined,
                       const std::vector<std::string>& fk_columns,
                       const std::vector<std::vector<std::string>>&
                           foreign_features);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_FUNCTIONAL_DEPS_H_
