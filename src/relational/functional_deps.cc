#include "relational/functional_deps.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace hamlet {

FdSet::FdSet(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {}

Result<uint32_t> FdSet::IndexOf(const std::string& attribute) const {
  for (uint32_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return i;
  }
  return Status::NotFound(
      StringFormat("attribute '%s' not in FD universe", attribute.c_str()));
}

Status FdSet::Add(FunctionalDependency fd) {
  if (fd.determinants.empty()) {
    return Status::InvalidArgument("FD needs a non-empty determinant set");
  }
  for (const auto& a : fd.determinants) {
    HAMLET_RETURN_NOT_OK(IndexOf(a).status());
  }
  for (const auto& a : fd.dependents) {
    HAMLET_RETURN_NOT_OK(IndexOf(a).status());
  }
  fds_.push_back(std::move(fd));
  return Status::OK();
}

Result<std::vector<std::string>> FdSet::Closure(
    const std::vector<std::string>& attrs) const {
  std::unordered_set<std::string> closure;
  for (const auto& a : attrs) {
    HAMLET_RETURN_NOT_OK(IndexOf(a).status());
    closure.insert(a);
  }
  // Fixpoint iteration (Armstrong: reflexivity + transitivity suffice for
  // closure computation over explicit FDs).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds_) {
      bool applicable = std::all_of(
          fd.determinants.begin(), fd.determinants.end(),
          [&](const std::string& d) { return closure.count(d) > 0; });
      if (!applicable) continue;
      for (const auto& dep : fd.dependents) {
        if (closure.insert(dep).second) changed = true;
      }
    }
  }
  // Emit in universe order for determinism.
  std::vector<std::string> out;
  for (const auto& a : attributes_) {
    if (closure.count(a)) out.push_back(a);
  }
  return out;
}

Result<bool> FdSet::Implies(const std::vector<std::string>& attrs,
                            const std::string& attribute) const {
  HAMLET_RETURN_NOT_OK(IndexOf(attribute).status());
  HAMLET_ASSIGN_OR_RETURN(std::vector<std::string> closure, Closure(attrs));
  return std::find(closure.begin(), closure.end(), attribute) !=
         closure.end();
}

bool FdSet::IsAcyclic() const {
  // Build the Definition C.1 digraph and look for a cycle (DFS colors).
  const uint32_t n = static_cast<uint32_t>(attributes_.size());
  std::vector<std::vector<uint32_t>> adjacency(n);
  auto index_of = [&](const std::string& a) {
    return static_cast<uint32_t>(
        std::find(attributes_.begin(), attributes_.end(), a) -
        attributes_.begin());
  };
  for (const auto& fd : fds_) {
    for (const auto& d : fd.determinants) {
      for (const auto& dep : fd.dependents) {
        adjacency[index_of(d)].push_back(index_of(dep));
      }
    }
  }
  // 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.push_back({start, 0});
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adjacency[node].size()) {
        uint32_t next = adjacency[node][edge++];
        if (color[next] == 1) return false;  // Back edge: cycle.
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::vector<std::string> FdSet::DependentAttributes() const {
  std::unordered_set<std::string> dependents;
  for (const auto& fd : fds_) {
    dependents.insert(fd.dependents.begin(), fd.dependents.end());
  }
  std::vector<std::string> out;
  for (const auto& a : attributes_) {
    if (dependents.count(a)) out.push_back(a);
  }
  return out;
}

std::vector<std::string> FdSet::RepresentativeAttributes() const {
  std::vector<std::string> dependents = DependentAttributes();
  std::unordered_set<std::string> dep_set(dependents.begin(),
                                          dependents.end());
  std::vector<std::string> out;
  for (const auto& a : attributes_) {
    if (!dep_set.count(a)) out.push_back(a);
  }
  return out;
}

Result<bool> FdHoldsInTable(const Table& table,
                            const std::string& determinant,
                            const std::string& dependent) {
  HAMLET_ASSIGN_OR_RETURN(const Column* det, table.ColumnByName(determinant));
  HAMLET_ASSIGN_OR_RETURN(const Column* dep, table.ColumnByName(dependent));
  std::unordered_map<uint32_t, uint32_t> mapping;
  mapping.reserve(det->domain_size());
  for (uint32_t row = 0; row < table.num_rows(); ++row) {
    auto [it, inserted] = mapping.emplace(det->code(row), dep->code(row));
    if (!inserted && it->second != dep->code(row)) return false;
  }
  return true;
}

Result<std::vector<FunctionalDependency>> DiscoverUnaryFds(
    const Table& table) {
  std::vector<FunctionalDependency> out;
  for (uint32_t a = 0; a < table.num_columns(); ++a) {
    for (uint32_t b = 0; b < table.num_columns(); ++b) {
      if (a == b) continue;
      const std::string& name_a = table.schema().column(a).name;
      const std::string& name_b = table.schema().column(b).name;
      HAMLET_ASSIGN_OR_RETURN(bool holds,
                              FdHoldsInTable(table, name_a, name_b));
      if (holds) {
        out.push_back(FunctionalDependency{{name_a}, {name_b}});
      }
    }
  }
  return out;
}

FdSet SchemaFdsForJoin(
    const Table& joined, const std::vector<std::string>& fk_columns,
    const std::vector<std::vector<std::string>>& foreign_features) {
  std::vector<std::string> attributes;
  for (uint32_t c = 0; c < joined.num_columns(); ++c) {
    attributes.push_back(joined.schema().column(c).name);
  }
  FdSet fds(std::move(attributes));
  HAMLET_CHECK(fk_columns.size() == foreign_features.size(),
               "one foreign-feature list per FK");
  for (size_t i = 0; i < fk_columns.size(); ++i) {
    Status st = fds.Add(
        FunctionalDependency{{fk_columns[i]}, foreign_features[i]});
    HAMLET_CHECK(st.ok(), "schema FD invalid: %s",
                 st.ToString().c_str());
  }
  return fds;
}

}  // namespace hamlet
