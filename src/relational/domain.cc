#include "relational/domain.h"

#include "common/check.h"
#include "common/string_util.h"

namespace hamlet {

Domain::Domain(std::vector<std::string> labels) : labels_(std::move(labels)) {
  index_.reserve(labels_.size());
  for (uint32_t i = 0; i < labels_.size(); ++i) {
    auto [it, inserted] = index_.emplace(labels_[i], i);
    HAMLET_CHECK(inserted, "duplicate label '%s' in Domain",
                 labels_[i].c_str());
  }
}

std::shared_ptr<Domain> Domain::Dense(uint32_t n, const std::string& prefix) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    labels.push_back(prefix + std::to_string(i));
  }
  return std::make_shared<Domain>(std::move(labels));
}

uint32_t Domain::GetOrAdd(std::string_view label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  uint32_t code = size();
  labels_.emplace_back(label);
  index_.emplace(std::string(label), code);
  return code;
}

Result<uint32_t> Domain::Lookup(std::string_view label) const {
  auto it = index_.find(label);
  if (it == index_.end()) {
    return Status::NotFound(
        StringFormat("label '%.*s' not in domain",
                     static_cast<int>(label.size()), label.data()));
  }
  return it->second;
}

const std::string& Domain::label(uint32_t code) const {
  HAMLET_CHECK(code < size(), "code %u out of domain of size %u", code,
               size());
  return labels_[code];
}

DomainRemap::DomainRemap(const std::shared_ptr<Domain>& from,
                         const std::shared_ptr<Domain>& to) {
  HAMLET_CHECK(from != nullptr && to != nullptr,
               "DomainRemap requires non-null domains");
  if (from == to) {
    identity_ = true;
    return;
  }
  map_.resize(from->size());
  for (uint32_t c = 0; c < from->size(); ++c) {
    map_[c] = to->CodeOf(from->label(c));
  }
}

}  // namespace hamlet
