#ifndef HAMLET_RELATIONAL_CSV_H_
#define HAMLET_RELATIONAL_CSV_H_

/// \file csv.h
/// CSV ingestion and export for categorical tables.
///
/// The reader expects a header row and treats every field as a category
/// label. Numeric columns should be discretized after loading (see
/// stats/binning.h) per the paper's all-nominal assumption; the reader
/// itself stays typeless. RFC-4180-style quoting ("" escapes a quote) is
/// supported.

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// If true, any malformed row is an error; otherwise rows with domain
  /// violations are skipped. A row whose field count mismatches the
  /// header is a line-numbered error in BOTH modes — such rows signal
  /// broken framing, and dropping them would silently bias the data.
  bool strict = true;
};

/// Reads a CSV file into a table. The schema must name exactly the header
/// columns (in file order). Domains are built from the data.
Result<Table> ReadCsv(const std::string& path, std::string table_name,
                      Schema schema, const CsvOptions& options = {});

/// Like ReadCsv but with caller-provided (possibly shared/closed) domains;
/// pass nullptr entries for fresh domains. A value outside a provided
/// domain is an error (closed-domain enforcement).
Result<Table> ReadCsvWithDomains(const std::string& path,
                                 std::string table_name, Schema schema,
                                 std::vector<std::shared_ptr<Domain>> domains,
                                 const CsvOptions& options = {});

/// Writes `table` (header + label rows) to `path`.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Parses one CSV record with quoting; exposed for tests.
std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delimiter);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_CSV_H_
