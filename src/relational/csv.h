#ifndef HAMLET_RELATIONAL_CSV_H_
#define HAMLET_RELATIONAL_CSV_H_

/// \file csv.h
/// CSV ingestion and export for categorical tables.
///
/// The reader expects a header row and treats every field as a category
/// label. Numeric columns should be discretized after loading (see
/// stats/binning.h) per the paper's all-nominal assumption; the reader
/// itself stays typeless. RFC-4180-style quoting ("" escapes a quote) is
/// supported, including quoted fields that span line breaks.
///
/// Ingestion is chunked and parallel (docs/PERFORMANCE.md "Ingest & join
/// fast path"): the file is read into one buffer, a serial framing scan
/// splits it into record-aligned byte ranges, each chunk is tokenized
/// with std::string_view fields into per-chunk dictionaries, and the
/// dictionaries merge deterministically in chunk order — so codes and
/// domain label order are bit-identical to a serial read at any
/// `num_threads`.

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace hamlet {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// If true, any malformed row is an error; otherwise rows with domain
  /// violations are skipped. A row whose field count mismatches the
  /// header is a line-numbered error in BOTH modes — such rows signal
  /// broken framing, and dropping them would silently bias the data.
  bool strict = true;
  /// Parse shards (0 = all hardware threads, 1 = serial). Every value
  /// produces the same table: same codes, same domain label order.
  uint32_t num_threads = 0;
  /// Floor on bytes per parse chunk, so tiny files stay single-chunk
  /// where sharding overhead would dominate. Tests lower it to force
  /// multi-chunk parsing on small inputs; the result is identical.
  size_t min_chunk_bytes = 64 * 1024;
};

/// Reads a CSV file into a table. The schema must name exactly the header
/// columns (in file order). Domains are built from the data.
Result<Table> ReadCsv(const std::string& path, std::string table_name,
                      Schema schema, const CsvOptions& options = {});

/// Like ReadCsv but with caller-provided (possibly shared/closed) domains;
/// pass nullptr entries for fresh domains. A value outside a provided
/// domain is an error (closed-domain enforcement).
Result<Table> ReadCsvWithDomains(const std::string& path,
                                 std::string table_name, Schema schema,
                                 std::vector<std::shared_ptr<Domain>> domains,
                                 const CsvOptions& options = {});

/// Writes `table` (header + label rows) to `path`.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Parses one CSV record with quoting; exposed for tests. A '"' opens a
/// quoted run only at the start of a field (mid-field quotes are
/// literal), "" inside quotes escapes a quote, characters after a
/// closing quote append literally, and unquoted '\r' is dropped.
std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delimiter);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_CSV_H_
