#include "relational/select.h"

namespace hamlet {

Result<std::vector<uint32_t>> SelectIndicesWhere(
    const Table& table, const std::string& column,
    const std::function<bool(uint32_t)>& predicate) {
  HAMLET_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    if (predicate(col->code(r))) rows.push_back(r);
  }
  return rows;
}

Result<Table> SelectRowsWhere(
    const Table& table, const std::string& column,
    const std::function<bool(uint32_t)>& predicate) {
  HAMLET_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                          SelectIndicesWhere(table, column, predicate));
  return table.GatherRows(rows);
}

Result<Table> SelectRowsEqual(const Table& table, const std::string& column,
                              const std::string& label) {
  HAMLET_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  auto code = col->domain()->Lookup(label);
  if (!code.ok()) {
    // Closed domain: a label that does not exist matches nothing.
    return table.GatherRows({});
  }
  uint32_t want = *code;
  return SelectRowsWhere(table, column,
                         [want](uint32_t c) { return c == want; });
}

}  // namespace hamlet
