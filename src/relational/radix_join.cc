#include "relational/radix_join.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/bloom.h"
#include "common/parallel_for.h"
#include "common/radix_partition.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"

namespace hamlet {

namespace {

uint32_t ResolvedThreads(uint32_t num_threads) {
  return num_threads == 0 ? ThreadPool::Global().DefaultShards()
                          : num_threads;
}

// Same registry entries join.cc reports into: GetCounter/GetHistogram
// return the one named instance, so both algorithms share join.rows_*
// and join.{build,probe,materialize}_ns.
obs::Counter& RowsBuiltCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_built");
  return counter;
}

obs::Counter& RowsProbedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_probed");
  return counter;
}

obs::Counter& RowsEmittedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_emitted");
  return counter;
}

obs::Counter& ProbeSkippedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.probe_skipped");
  return counter;
}

obs::Histogram& BuildLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.build_ns");
  return h;
}

obs::Histogram& ProbeLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.probe_ns");
  return h;
}

obs::Histogram& MaterializeLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.materialize_ns");
  return h;
}

obs::Histogram& PartitionLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.partition_ns");
  return h;
}

obs::Histogram& BloomBuildLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.bloom_build_ns");
  return h;
}

// Lowest index for which a parallel work item reported failure, or
// UINT32_MAX — identical to join.cc's, so error reports match the CSR
// path byte for byte.
class FirstFailure {
 public:
  void Report(uint32_t index) {
    uint32_t seen = index_.load(std::memory_order_relaxed);
    while (index < seen &&
           !index_.compare_exchange_weak(seen, index,
                                         std::memory_order_relaxed)) {
    }
  }
  uint32_t index() const { return index_.load(std::memory_order_relaxed); }
  bool failed() const { return index() != UINT32_MAX; }

 private:
  std::atomic<uint32_t> index_{UINT32_MAX};
};

// The per-partition CSR over the build side: partition p's sub-range
// offsets live at offsets[p * (sub_count + 1)] (values relative to the
// partition's slice of entries), and its rows at
// rows[partitions.offsets[p]..], sorted by sub-key with original row
// order preserved inside each bucket — the exact bucket contents the
// monolithic CSR would hold for each code.
struct PartitionedCsr {
  RadixPartitions partitions;
  std::vector<uint32_t> offsets;
  // Default-initialized storage: the per-partition counting sorts tile
  // [0, n) exactly, so every slot is written before it is read.
  std::vector<uint32_t, UninitAllocator<uint32_t>> rows;
};

PartitionedCsr BuildPartitionedCsr(const Column& key, const RadixLayout& lay,
                                   uint32_t num_threads,
                                   uint64_t* partition_ns, uint64_t* build_ns,
                                   bool collect) {
  PartitionedCsr csr;
  const uint32_t n = key.size();

  uint64_t t = collect ? obs::NowNanos() : 0;
  // The scatter carries each row's code inside its packed entry, so the
  // per-partition passes below read codes sequentially instead of
  // chasing scattered row ids back into the column (which would re-pay
  // the monolithic CSR's cache miss per row).
  csr.partitions = PartitionByCode(key.codes(), lay.shift,
                                   lay.num_partitions, num_threads);
  if (collect) *partition_ns += obs::NowNanos() - t;

  t = collect ? obs::NowNanos() : 0;
  const uint32_t sub_mask = lay.sub_count - 1;
  // Stride sub_count + 2 makes room for the destructive-cursor trick:
  // counts land at off[sub + 2], the prefix sum turns off[k + 1] into
  // bucket k's start, and the scatter's off[sub + 1]++ walks each
  // cursor forward until it equals the NEXT bucket's start — leaving
  // off[k] = bucket k's start and off[k + 1] = its end, exactly the
  // probe's read layout, without a separate cursor copy of the offsets.
  const size_t stride = static_cast<size_t>(lay.sub_count) + 2;
  csr.offsets.assign(static_cast<size_t>(lay.num_partitions) * stride, 0);
  csr.rows.resize(n);
  ParallelFor(lay.num_partitions, num_threads, [&](uint32_t p) {
    uint32_t* off = &csr.offsets[p * stride];
    const uint32_t begin = csr.partitions.offsets[p];
    const uint32_t end = csr.partitions.offsets[p + 1];
    for (uint32_t i = begin; i < end; ++i) {
      ++off[(RadixEntryCode(csr.partitions.entries[i]) & sub_mask) + 2];
    }
    for (uint32_t k = 0; k < lay.sub_count; ++k) off[k + 2] += off[k + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint64_t e = csr.partitions.entries[i];
      csr.rows[begin + off[(RadixEntryCode(e) & sub_mask) + 1]++] =
          RadixEntryRow(e);
    }
  });
  if (collect) *build_ns += obs::NowNanos() - t;
  return csr;
}

}  // namespace

bool ResolveBloomFilter(BloomFilterMode mode, uint64_t build_rows,
                        uint64_t distinct_keys) {
  switch (mode) {
    case BloomFilterMode::kOn:
      return true;
    case BloomFilterMode::kOff:
      return false;
    case BloomFilterMode::kAuto:
      break;
  }
  // Worth it only when the build side cannot cover its key domain, so
  // probe misses are certain to exist; FK-shaped joins (every probe
  // matches) keep the filter off and pay nothing.
  return build_rows * 2 < distinct_keys;
}

JoinAlgorithm ResolveJoinAlgorithm(const JoinOptions& options,
                                   uint64_t probe_rows, uint64_t build_rows,
                                   uint64_t distinct_keys,
                                   const char* csr_op, const char* radix_op) {
  if (options.algorithm != JoinAlgorithm::kAuto) return options.algorithm;
  const auto& store = obs::CostProfileStore::Global();
  const double csr_ns = store.MeanNsPerProbeRow(csr_op, build_rows);
  const double radix_ns = store.MeanNsPerProbeRow(radix_op, build_rows);
  if (csr_ns > 0.0 && radix_ns > 0.0) {
    return radix_ns < csr_ns ? JoinAlgorithm::kRadix : JoinAlgorithm::kCsr;
  }
  return distinct_keys >= kRadixAutoMinDistinctKeys &&
                 probe_rows >= kRadixAutoMinProbeRows
             ? JoinAlgorithm::kRadix
             : JoinAlgorithm::kCsr;
}

Result<Table> RadixHashJoin(const Table& left, const Table& right,
                            const std::string& left_column,
                            const std::string& right_column,
                            const JoinOptions& options) {
  obs::TraceSpan span("join.hash");
  if (span.active()) {
    span.AddAttr("rows_built", right.num_rows());
    span.AddAttr("rows_probed", left.num_rows());
    span.AddAttr("algorithm", "radix");
  }
  RowsBuiltCounter().Add(right.num_rows());
  RowsProbedCounter().Add(left.num_rows());

  const bool collect = obs::Enabled();
  uint64_t partition_ns = 0;
  uint64_t bloom_build_ns = 0;
  uint64_t build_ns = 0;
  uint64_t probe_ns = 0;
  const uint64_t start_ns = collect ? obs::NowNanos() : 0;

  HAMLET_ASSIGN_OR_RETURN(uint32_t l_idx, left.schema().IndexOf(left_column));
  HAMLET_ASSIGN_OR_RETURN(uint32_t r_idx,
                          right.schema().IndexOf(right_column));
  const Column& lcol = left.column(l_idx);
  const Column& rcol = right.column(r_idx);

  const uint32_t n_buckets = rcol.domain_size();
  const RadixLayout lay = MakeRadixLayout(n_buckets, options.radix_bits);
  const uint32_t sub_mask = lay.sub_count - 1;
  // Matches BuildPartitionedCsr's layout; see the stride comment there.
  const size_t stride = static_cast<size_t>(lay.sub_count) + 2;

  // Build side: partition right rows by code sub-range, then a CSR per
  // partition. Bucket (p, sub) holds exactly the rows of code
  // p * sub_count + sub in ascending row order — the monolithic CSR's
  // bucket for that code.
  const PartitionedCsr csr =
      BuildPartitionedCsr(rcol, lay, options.num_threads, &partition_ns,
                          &build_ns, collect);
  if (collect) BuildLatency().RecordAlways(build_ns);

  BlockedBloomFilter bloom;
  const bool use_bloom =
      ResolveBloomFilter(options.bloom, right.num_rows(), n_buckets);
  if (use_bloom) {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    bloom = BlockedBloomFilter::FromCodes(rcol.codes(), options.num_threads);
    if (collect) {
      bloom_build_ns = obs::NowNanos() - t;
      BloomBuildLatency().RecordAlways(bloom_build_ns);
    }
  }

  // Probe side: remap codes once, drop rows the pre-filter rejects, and
  // partition the survivors into the same sub-ranges as the build side.
  // DomainRemap::kNoCode doubles as kRadixSkipCode, so a remapped-code
  // array is already in PartitionByCode's input form; when the domains
  // are shared and nothing is pre-filtered, the column's own code array
  // is, and the remap pass disappears entirely.
  const DomainRemap remap(lcol.domain(), rcol.domain());
  const uint32_t n_left = left.num_rows();
  RadixPartitions lparts;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    if (remap.identity() && !use_bloom) {
      lparts = PartitionByCode(lcol.codes(), lay.shift, lay.num_partitions,
                               options.num_threads);
    } else if (remap.identity()) {
      // Shared domain + Bloom: the pre-filter's verdicts fit in one bit
      // per row, so hand the partitioner a keep-bitmap over the column's
      // own code array instead of rewriting a full uint32 code copy —
      // the filter's whole point is touching less memory per dropped
      // row. Each parallel work item owns whole 64-bit words, so no two
      // threads write the same word.
      const std::vector<uint32_t>& codes = lcol.codes();
      std::vector<uint64_t> keep((n_left + 63) / 64);
      ParallelFor(static_cast<uint32_t>(keep.size()), options.num_threads,
                  [&](uint32_t word) {
                    const uint32_t begin = word * 64;
                    const uint32_t end = std::min(n_left, begin + 64);
                    uint64_t bits = 0;
                    for (uint32_t row = begin; row < end; ++row) {
                      const uint32_t c = codes[row];
                      if (c != Domain::kNoCode && bloom.MayContain(c)) {
                        bits |= uint64_t{1} << (row - begin);
                      }
                    }
                    keep[word] = bits;
                  });
      lparts = PartitionByCodeMasked(codes, keep, lay.shift,
                                     lay.num_partitions, options.num_threads);
    } else {
      std::vector<uint32_t> rc(n_left);
      ParallelFor(n_left, options.num_threads, [&](uint32_t row) {
        const uint32_t c = remap[lcol.code(row)];
        rc[row] = c != DomainRemap::kNoCode && use_bloom &&
                          !bloom.MayContain(c)
                      ? kRadixSkipCode
                      : c;
      });
      lparts = PartitionByCode(rc, lay.shift, lay.num_partitions,
                               options.num_threads);
    }
    if (collect) {
      partition_ns += obs::NowNanos() - t;
      PartitionLatency().RecordAlways(partition_ns);
    }
  }
  const uint64_t skipped = n_left - lparts.entries.size();
  ProbeSkippedCounter().Add(skipped);
  if (span.active()) span.AddAttr("probe_skipped", skipped);

  // Probe in three deterministic passes that reproduce the monolithic
  // CSR path's left-row-major output exactly. Within a partition,
  // consecutive entries sit ~fanout rows apart, so the row-indexed
  // scatters below walk their arrays in ascending page order instead of
  // jumping randomly.
  std::vector<uint32_t> l_rows, r_rows;
  const uint64_t t_probe = collect ? obs::NowNanos() : 0;
  if (lparts.entries.size() * 8 < n_left) {
    // Sparse path: the pre-filter (or a disjoint key domain) dropped
    // most probe rows, so the dense path's row-indexed count and
    // prefix-sum arrays — which cost a fixed sweep per LEFT row no
    // matter how few survive — would dominate. Collect the surviving
    // matches, order them by left row (rows are unique across
    // partitions, so a plain sort reproduces the dense path's
    // left-row-major output exactly), and emit serially.
    struct Match {
      uint32_t row;
      uint32_t start;  // Global index into csr.rows.
      uint32_t count;
    };
    std::vector<Match> ms;
    ms.reserve(lparts.entries.size());
    for (uint32_t p = 0; p < lay.num_partitions; ++p) {
      const uint32_t* off = &csr.offsets[p * stride];
      const uint32_t rbase = csr.partitions.offsets[p];
      const uint32_t begin = lparts.offsets[p];
      const uint32_t end = lparts.offsets[p + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const uint64_t entry = lparts.entries[i];
        const uint32_t sub = RadixEntryCode(entry) & sub_mask;
        const uint32_t b = off[sub];
        const uint32_t e = off[sub + 1];
        if (b == e) continue;
        ms.push_back(Match{RadixEntryRow(entry), rbase + b, e - b});
      }
    }
    std::sort(ms.begin(), ms.end(),
              [](const Match& a, const Match& b) { return a.row < b.row; });
    uint64_t total = 0;
    for (const Match& m : ms) total += m.count;
    l_rows.resize(total);
    r_rows.resize(total);
    uint64_t pos = 0;
    for (const Match& m : ms) {
      for (uint32_t k = 0; k < m.count; ++k) {
        l_rows[pos] = m.row;
        r_rows[pos] = csr.rows[m.start + k];
        ++pos;
      }
    }
  } else {
    // Pass 1: per-partition bucket lookup against the partition's own
    // cache-resident offsets slice, recording each left row's match
    // count.
    std::vector<uint32_t> cnt(n_left, 0);
    ParallelFor(lay.num_partitions, options.num_threads, [&](uint32_t p) {
      const uint32_t* off = &csr.offsets[p * stride];
      const uint32_t begin = lparts.offsets[p];
      const uint32_t end = lparts.offsets[p + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const uint64_t entry = lparts.entries[i];
        const uint32_t sub = RadixEntryCode(entry) & sub_mask;
        cnt[RadixEntryRow(entry)] = off[sub + 1] - off[sub];
      }
    });
    // Pass 2: row-ordered prefix sum fixes every match's output
    // position.
    std::vector<uint64_t, UninitAllocator<uint64_t>> out_pos;
    out_pos.resize(n_left + 1);
    out_pos[0] = 0;
    for (uint32_t row = 0; row < n_left; ++row) {
      out_pos[row + 1] = out_pos[row] + cnt[row];
    }
    const uint64_t total = out_pos[n_left];
    l_rows.resize(total);
    r_rows.resize(total);
    // Pass 3: per-partition emit. Each matched row owns a disjoint
    // output range, and the right rows it copies live in the
    // partition's own csr.rows slice — the gather that costs a random
    // full-array access per output row in the monolithic path stays
    // inside the partition's cache-resident window here.
    ParallelFor(lay.num_partitions, options.num_threads, [&](uint32_t p) {
      const uint32_t* off = &csr.offsets[p * stride];
      const uint32_t rbase = csr.partitions.offsets[p];
      const uint32_t begin = lparts.offsets[p];
      const uint32_t end = lparts.offsets[p + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const uint64_t entry = lparts.entries[i];
        const uint32_t row = RadixEntryRow(entry);
        const uint32_t sub = RadixEntryCode(entry) & sub_mask;
        const uint32_t b = off[sub];
        const uint32_t e = off[sub + 1];
        uint64_t pos = out_pos[row];
        for (uint32_t k = b; k < e; ++k) {
          l_rows[pos] = row;
          r_rows[pos] = csr.rows[rbase + k];
          ++pos;
        }
      }
    });
  }
  if (collect) {
    probe_ns = obs::NowNanos() - t_probe;
    ProbeLatency().RecordAlways(probe_ns);
  }
  RowsEmittedCounter().Add(l_rows.size());
  if (span.active()) {
    span.AddAttr("rows_emitted", static_cast<uint64_t>(l_rows.size()));
  }

  const uint64_t t_mat = collect ? obs::NowNanos() : 0;
  std::vector<ColumnSpec> out_specs = left.schema().columns();
  std::vector<Column> out_cols;
  for (uint32_t c = 0; c < left.num_columns(); ++c) {
    out_cols.push_back(left.column(c).Gather(l_rows, options.num_threads));
  }
  for (uint32_t c = 0; c < right.num_columns(); ++c) {
    if (c == r_idx) continue;
    const ColumnSpec& spec = right.schema().column(c);
    if (left.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s'", spec.name.c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(right.column(c).Gather(r_rows, options.num_threads));
  }
  Table result(left.name() + "_join_" + right.name(),
               Schema(std::move(out_specs)), std::move(out_cols));
  if (collect) {
    const uint64_t materialize_ns = obs::NowNanos() - t_mat;
    MaterializeLatency().RecordAlways(materialize_ns);
    obs::OperatorFeatures features;
    features.op = "join.radix";
    features.rows_in = left.num_rows();
    features.rows_out = result.num_rows();
    features.build_rows = right.num_rows();
    features.distinct_keys = rcol.domain_size();
    features.num_threads = ResolvedThreads(options.num_threads);
    obs::CostObservation obs_cost;
    obs_cost.total_ns = obs::NowNanos() - start_ns;
    obs_cost.build_ns = build_ns;
    obs_cost.probe_ns = probe_ns;
    obs_cost.materialize_ns = materialize_ns;
    obs_cost.partition_ns = partition_ns;
    obs_cost.bloom_build_ns = bloom_build_ns;
    obs::CostProfileStore::Global().Record(features, obs_cost);
  }
  return result;
}

Result<Table> RadixKfkJoin(const Table& s, const Table& r,
                           const std::string& fk_column,
                           const JoinOptions& options) {
  obs::TraceSpan span("join.kfk");
  if (span.active()) {
    span.AddAttr("entity", s.name());
    span.AddAttr("attribute_table", r.name());
    span.AddAttr("rows_built", r.num_rows());
    span.AddAttr("rows_probed", s.num_rows());
    span.AddAttr("algorithm", "radix");
  }
  RowsBuiltCounter().Add(r.num_rows());
  RowsProbedCounter().Add(s.num_rows());

  const bool collect = obs::Enabled();
  uint64_t build_ns = 0;
  uint64_t partition_ns = 0;
  uint64_t probe_ns = 0;
  const uint64_t start_ns = collect ? obs::NowNanos() : 0;

  HAMLET_ASSIGN_OR_RETURN(uint32_t fk_idx, s.schema().IndexOf(fk_column));
  const ColumnSpec& fk_spec = s.schema().column(fk_idx);
  if (fk_spec.role != ColumnRole::kForeignKey) {
    return Status::InvalidArgument(StringFormat(
        "column '%s' of '%s' is not a foreign key", fk_column.c_str(),
        s.name().c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(uint32_t rid_idx, r.schema().PrimaryKeyIndex());

  const Column& fk = s.column(fk_idx);
  const Column& rid = r.column(rid_idx);
  std::vector<uint32_t> rid_to_row;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    HAMLET_ASSIGN_OR_RETURN(rid_to_row, BuildFkRowIndex(fk, rid));
    if (collect) {
      build_ns = obs::NowNanos() - t;
      BuildLatency().RecordAlways(build_ns);
    }
  }

  // Partition S rows by FK-code sub-range: each partition's rid_to_row
  // slice is one contiguous cache-sized window, so the gather below hits
  // cache instead of striding across the whole index.
  const RadixLayout lay = MakeRadixLayout(fk.domain_size(),
                                          options.radix_bits);
  RadixPartitions parts;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    parts = PartitionByCode(fk.codes(), lay.shift, lay.num_partitions,
                            options.num_threads);
    if (collect) {
      partition_ns = obs::NowNanos() - t;
      PartitionLatency().RecordAlways(partition_ns);
    }
  }

  std::vector<uint32_t> matched(s.num_rows());
  FirstFailure failure;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    ParallelFor(lay.num_partitions, options.num_threads, [&](uint32_t p) {
      const uint32_t begin = parts.offsets[p];
      const uint32_t end = parts.offsets[p + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const uint64_t entry = parts.entries[i];
        const uint32_t row = RadixEntryRow(entry);
        const uint32_t m = rid_to_row[RadixEntryCode(entry)];
        if (m == kNoFkRow) failure.Report(row);
        matched[row] = m;
      }
    });
    if (collect) {
      probe_ns = obs::NowNanos() - t;
      ProbeLatency().RecordAlways(probe_ns);
    }
  }
  if (failure.failed()) {
    return Status::InvalidArgument(StringFormat(
        "referential integrity violation: FK value '%s' has no matching "
        "RID in '%s'",
        fk.label(failure.index()).c_str(), r.name().c_str()));
  }
  RowsEmittedCounter().Add(s.num_rows());
  if (span.active()) span.AddAttr("rows_emitted", s.num_rows());

  std::vector<ColumnSpec> out_specs = s.schema().columns();
  std::vector<Column> out_cols;
  out_cols.reserve(s.num_columns() + r.num_columns() - 1);
  for (uint32_t c = 0; c < s.num_columns(); ++c) out_cols.push_back(s.column(c));

  const uint64_t t_mat = collect ? obs::NowNanos() : 0;
  for (uint32_t c = 0; c < r.num_columns(); ++c) {
    if (c == rid_idx) continue;  // RID is represented by FK in the output.
    const ColumnSpec& spec = r.schema().column(c);
    if (s.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s' between '%s' and '%s'",
          spec.name.c_str(), s.name().c_str(), r.name().c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(r.column(c).Gather(matched, options.num_threads));
  }

  Table result(s.name() + "_join_" + r.name(), Schema(std::move(out_specs)),
               std::move(out_cols));
  if (collect) {
    const uint64_t materialize_ns = obs::NowNanos() - t_mat;
    MaterializeLatency().RecordAlways(materialize_ns);
    obs::OperatorFeatures features;
    features.op = "join.radix.kfk";
    features.rows_in = s.num_rows();
    features.rows_out = result.num_rows();
    features.build_rows = r.num_rows();
    features.distinct_keys = fk.domain_size();
    features.num_threads = ResolvedThreads(options.num_threads);
    obs::CostObservation obs_cost;
    obs_cost.total_ns = obs::NowNanos() - start_ns;
    obs_cost.build_ns = build_ns;
    obs_cost.probe_ns = probe_ns;
    obs_cost.materialize_ns = materialize_ns;
    obs_cost.partition_ns = partition_ns;
    obs::CostProfileStore::Global().Record(features, obs_cost);
  }
  return result;
}

}  // namespace hamlet
