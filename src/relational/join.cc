#include "relational/join.h"

#include <algorithm>
#include <atomic>

#include "common/bloom.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "common/string_util.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"
#include "relational/radix_join.h"

namespace hamlet {

namespace {

// Shards a join actually runs with (0 = pool default), recorded as a
// cost-profile feature so timings calibrate against real parallelism.
uint32_t ResolvedThreads(uint32_t num_threads) {
  return num_threads == 0 ? ThreadPool::Global().DefaultShards()
                          : num_threads;
}

obs::Counter& RowsBuiltCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_built");
  return counter;
}

obs::Counter& RowsProbedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_probed");
  return counter;
}

obs::Counter& RowsEmittedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_emitted");
  return counter;
}

obs::Histogram& BuildLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.build_ns");
  return h;
}

obs::Histogram& ProbeLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.probe_ns");
  return h;
}

obs::Histogram& MaterializeLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.materialize_ns");
  return h;
}

obs::Counter& ProbeSkippedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.probe_skipped");
  return counter;
}

obs::Histogram& BloomBuildLatency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("join.bloom_build_ns");
  return h;
}

// Lowest index for which a parallel work item reported failure, or
// UINT32_MAX. The min makes the reported error independent of thread
// count and timing.
class FirstFailure {
 public:
  void Report(uint32_t index) {
    uint32_t seen = index_.load(std::memory_order_relaxed);
    while (index < seen &&
           !index_.compare_exchange_weak(seen, index,
                                         std::memory_order_relaxed)) {
    }
  }
  uint32_t index() const { return index_.load(std::memory_order_relaxed); }
  bool failed() const { return index() != UINT32_MAX; }

 private:
  std::atomic<uint32_t> index_{UINT32_MAX};
};

}  // namespace

Result<std::vector<uint32_t>> BuildFkRowIndex(const Column& fk,
                                              const Column& rid) {
  std::vector<uint32_t> rid_to_row(fk.domain_size(), kNoFkRow);
  const DomainRemap remap(rid.domain(), fk.domain());
  for (uint32_t row = 0; row < rid.size(); ++row) {
    const uint32_t fk_code = remap[rid.code(row)];
    if (fk_code == DomainRemap::kNoCode) continue;  // Never referenced by S.
    if (fk_code >= rid_to_row.size()) continue;
    if (rid_to_row[fk_code] != kNoFkRow) {
      return Status::InvalidArgument(StringFormat(
          "duplicate RID '%s' in attribute table", rid.label(row).c_str()));
    }
    rid_to_row[fk_code] = row;
  }
  return rid_to_row;
}

std::vector<uint64_t> GroupCountByCode(const std::vector<uint32_t>& key_codes,
                                       uint32_t num_codes,
                                       const std::vector<uint32_t>& groups,
                                       uint32_t num_groups,
                                       const std::vector<uint32_t>& rows,
                                       uint32_t num_threads) {
  const size_t cells = static_cast<size_t>(num_codes) * num_groups;
  std::vector<uint64_t> counts(cells, 0);

  // Sharding only pays when the row subset dwarfs the table each shard
  // must allocate and merge; small inputs count serially.
  const uint32_t effective =
      num_threads == 0
          ? static_cast<uint32_t>(ThreadPool::Global().num_workers() + 1)
          : num_threads;
  const uint32_t max_shards =
      cells == 0 ? 1
                 : static_cast<uint32_t>(std::min<size_t>(
                       effective, std::max<size_t>(1, rows.size() / cells)));
  const uint32_t num_shards =
      rows.size() < (1u << 14) ? 1 : std::max(1u, max_shards);
  if (num_shards <= 1) {
    for (uint32_t r : rows) {
      ++counts[static_cast<size_t>(key_codes[r]) * num_groups + groups[r]];
    }
    return counts;
  }

  const size_t chunk = (rows.size() + num_shards - 1) / num_shards;
  std::vector<std::vector<uint64_t>> partial(num_shards);
  ParallelFor(num_shards, num_threads, [&](uint32_t shard) {
    const size_t begin = static_cast<size_t>(shard) * chunk;
    const size_t end = std::min(rows.size(), begin + chunk);
    std::vector<uint64_t>& local = partial[shard];
    local.assign(cells, 0);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows[i];
      ++local[static_cast<size_t>(key_codes[r]) * num_groups + groups[r]];
    }
  });
  // Serial shard-ordered merge; integer sums, so the result is identical
  // at any thread count.
  for (const std::vector<uint64_t>& local : partial) {
    for (size_t i = 0; i < cells; ++i) counts[i] += local[i];
  }
  return counts;
}

Result<Table> KfkJoin(const Table& s, const Table& r,
                      const std::string& fk_column,
                      const JoinOptions& options) {
  if (options.algorithm != JoinAlgorithm::kCsr) {
    // Dispatch needs the FK's code range; if the column is missing the
    // CSR body below produces the canonical error, so fall through.
    const Result<uint32_t> fk_idx = s.schema().IndexOf(fk_column);
    if (fk_idx.ok() &&
        ResolveJoinAlgorithm(options, s.num_rows(), r.num_rows(),
                             s.column(*fk_idx).domain_size(), "join.kfk",
                             "join.radix.kfk") == JoinAlgorithm::kRadix) {
      return RadixKfkJoin(s, r, fk_column, options);
    }
  }
  obs::TraceSpan span("join.kfk");
  if (span.active()) {
    span.AddAttr("entity", s.name());
    span.AddAttr("attribute_table", r.name());
    span.AddAttr("rows_built", r.num_rows());
    span.AddAttr("rows_probed", s.num_rows());
    span.AddAttr("algorithm", "csr");
  }
  RowsBuiltCounter().Add(r.num_rows());
  RowsProbedCounter().Add(s.num_rows());

  // Phase timings feed both the join.*_ns histograms and the operator
  // cost profile, so they are read explicitly rather than via
  // ScopedLatency (the profile needs the raw numbers).
  const bool collect = obs::Enabled();
  uint64_t build_ns = 0;
  uint64_t probe_ns = 0;
  const uint64_t start_ns = collect ? obs::NowNanos() : 0;

  HAMLET_ASSIGN_OR_RETURN(uint32_t fk_idx, s.schema().IndexOf(fk_column));
  const ColumnSpec& fk_spec = s.schema().column(fk_idx);
  if (fk_spec.role != ColumnRole::kForeignKey) {
    return Status::InvalidArgument(StringFormat(
        "column '%s' of '%s' is not a foreign key", fk_column.c_str(),
        s.name().c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(uint32_t rid_idx, r.schema().PrimaryKeyIndex());

  const Column& fk = s.column(fk_idx);
  const Column& rid = r.column(rid_idx);
  std::vector<uint32_t> rid_to_row;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    HAMLET_ASSIGN_OR_RETURN(rid_to_row, BuildFkRowIndex(fk, rid));
    if (collect) {
      build_ns = obs::NowNanos() - t;
      BuildLatency().RecordAlways(build_ns);
    }
  }

  // Match every S row to its unique R row: a pure per-index gather, so
  // the probe shards freely. The lowest unmatched row (if any) names the
  // referential-integrity error, independent of thread count.
  std::vector<uint32_t> matched(s.num_rows());
  FirstFailure failure;
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    ParallelFor(s.num_rows(), options.num_threads, [&](uint32_t row) {
      const uint32_t m = rid_to_row[fk.code(row)];
      if (m == kNoFkRow) failure.Report(row);
      matched[row] = m;
    });
    if (collect) {
      probe_ns = obs::NowNanos() - t;
      ProbeLatency().RecordAlways(probe_ns);
    }
  }
  if (failure.failed()) {
    return Status::InvalidArgument(StringFormat(
        "referential integrity violation: FK value '%s' has no matching "
        "RID in '%s'",
        fk.label(failure.index()).c_str(), r.name().c_str()));
  }
  RowsEmittedCounter().Add(s.num_rows());
  if (span.active()) span.AddAttr("rows_emitted", s.num_rows());

  std::vector<ColumnSpec> out_specs = s.schema().columns();
  std::vector<Column> out_cols;
  out_cols.reserve(s.num_columns() + r.num_columns() - 1);
  for (uint32_t c = 0; c < s.num_columns(); ++c) out_cols.push_back(s.column(c));

  const uint64_t t_mat = collect ? obs::NowNanos() : 0;
  for (uint32_t c = 0; c < r.num_columns(); ++c) {
    if (c == rid_idx) continue;  // RID is represented by FK in the output.
    const ColumnSpec& spec = r.schema().column(c);
    if (s.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s' between '%s' and '%s'",
          spec.name.c_str(), s.name().c_str(), r.name().c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(r.column(c).Gather(matched, options.num_threads));
  }

  Table result(s.name() + "_join_" + r.name(), Schema(std::move(out_specs)),
               std::move(out_cols));
  if (collect) {
    const uint64_t materialize_ns = obs::NowNanos() - t_mat;
    MaterializeLatency().RecordAlways(materialize_ns);
    obs::OperatorFeatures features;
    features.op = "join.kfk";
    features.rows_in = s.num_rows();
    features.rows_out = result.num_rows();
    features.build_rows = r.num_rows();
    features.distinct_keys = fk.domain_size();
    features.num_threads = ResolvedThreads(options.num_threads);
    obs::CostObservation obs_cost;
    obs_cost.total_ns = obs::NowNanos() - start_ns;
    obs_cost.build_ns = build_ns;
    obs_cost.probe_ns = probe_ns;
    obs_cost.materialize_ns = materialize_ns;
    obs::CostProfileStore::Global().Record(features, obs_cost);
  }
  return result;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_column,
                       const std::string& right_column,
                       const JoinOptions& options) {
  if (options.algorithm != JoinAlgorithm::kCsr) {
    const Result<uint32_t> dispatch_idx = right.schema().IndexOf(right_column);
    if (dispatch_idx.ok() &&
        ResolveJoinAlgorithm(options, left.num_rows(), right.num_rows(),
                             right.column(*dispatch_idx).domain_size(),
                             "join.hash",
                             "join.radix") == JoinAlgorithm::kRadix) {
      return RadixHashJoin(left, right, left_column, right_column, options);
    }
  }
  obs::TraceSpan span("join.hash");
  if (span.active()) {
    span.AddAttr("rows_built", right.num_rows());
    span.AddAttr("rows_probed", left.num_rows());
    span.AddAttr("algorithm", "csr");
  }
  RowsBuiltCounter().Add(right.num_rows());
  RowsProbedCounter().Add(left.num_rows());

  const bool collect = obs::Enabled();
  uint64_t build_ns = 0;
  uint64_t bloom_build_ns = 0;
  uint64_t probe_ns = 0;
  const uint64_t start_ns = collect ? obs::NowNanos() : 0;

  HAMLET_ASSIGN_OR_RETURN(uint32_t l_idx, left.schema().IndexOf(left_column));
  HAMLET_ASSIGN_OR_RETURN(uint32_t r_idx,
                          right.schema().IndexOf(right_column));
  const Column& lcol = left.column(l_idx);
  const Column& rcol = right.column(r_idx);

  // Build side: a CSR-style counting sort of right rows by key code —
  // bucket k holds rows offsets[k]..offsets[k+1] in ascending row order
  // (the order the old per-key vectors accumulated). One allocation per
  // side, no hash map, no per-key vectors.
  const uint32_t n_buckets = rcol.domain_size();
  std::vector<uint32_t> offsets(n_buckets + 1, 0);
  std::vector<uint32_t> bucket_rows(right.num_rows());
  {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    for (uint32_t row = 0; row < right.num_rows(); ++row) {
      ++offsets[rcol.code(row) + 1];
    }
    for (uint32_t k = 0; k < n_buckets; ++k) offsets[k + 1] += offsets[k];
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (uint32_t row = 0; row < right.num_rows(); ++row) {
      bucket_rows[cursor[rcol.code(row)]++] = row;
    }
    if (collect) {
      build_ns = obs::NowNanos() - t;
      BuildLatency().RecordAlways(build_ns);
    }
  }

  // Optional semi-join pre-filter: an L1-resident membership test that
  // lets selective probes skip both random offsets reads for rows whose
  // key the build side provably never saw.
  BlockedBloomFilter bloom;
  const bool use_bloom =
      ResolveBloomFilter(options.bloom, right.num_rows(), n_buckets);
  if (use_bloom) {
    const uint64_t t = collect ? obs::NowNanos() : 0;
    bloom = BlockedBloomFilter::FromCodes(rcol.codes(), options.num_threads);
    if (collect) {
      bloom_build_ns = obs::NowNanos() - t;
      BloomBuildLatency().RecordAlways(bloom_build_ns);
    }
  }

  // Probe side: translate left codes into right codes once, then emit
  // matches in two deterministic passes — count matches per left row,
  // prefix-sum into output positions, write each row's slice. Output
  // order is left-row-major with right rows ascending, exactly the
  // label-keyed implementation's order.
  const DomainRemap remap(lcol.domain(), rcol.domain());
  const uint32_t n_left = left.num_rows();
  std::vector<uint32_t> l_rows, r_rows;
  std::atomic<uint64_t> skipped{0};
  const uint64_t t_probe = collect ? obs::NowNanos() : 0;
  {
    std::vector<uint64_t> out_pos(n_left + 1, 0);
    ParallelFor(n_left, options.num_threads, [&](uint32_t row) {
      const uint32_t rc = remap[lcol.code(row)];
      if (rc == DomainRemap::kNoCode) {
        out_pos[row + 1] = 0;
        return;
      }
      if (use_bloom && !bloom.MayContain(rc)) {
        out_pos[row + 1] = 0;
        skipped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      out_pos[row + 1] = offsets[rc + 1] - offsets[rc];
    });
    for (uint32_t row = 0; row < n_left; ++row) {
      out_pos[row + 1] += out_pos[row];
    }
    const uint64_t total = out_pos[n_left];
    l_rows.resize(total);
    r_rows.resize(total);
    ParallelFor(n_left, options.num_threads, [&](uint32_t row) {
      if (out_pos[row + 1] == out_pos[row]) return;
      const uint32_t rc = remap[lcol.code(row)];
      uint64_t pos = out_pos[row];
      for (uint32_t k = offsets[rc]; k < offsets[rc + 1]; ++k) {
        l_rows[pos] = row;
        r_rows[pos] = bucket_rows[k];
        ++pos;
      }
    });
  }
  if (collect) {
    probe_ns = obs::NowNanos() - t_probe;
    ProbeLatency().RecordAlways(probe_ns);
  }
  if (use_bloom) {
    const uint64_t n_skipped = skipped.load(std::memory_order_relaxed);
    ProbeSkippedCounter().Add(n_skipped);
    if (span.active()) span.AddAttr("probe_skipped", n_skipped);
  }
  RowsEmittedCounter().Add(l_rows.size());
  if (span.active()) {
    span.AddAttr("rows_emitted", static_cast<uint64_t>(l_rows.size()));
  }

  const uint64_t t_mat = collect ? obs::NowNanos() : 0;
  std::vector<ColumnSpec> out_specs = left.schema().columns();
  std::vector<Column> out_cols;
  for (uint32_t c = 0; c < left.num_columns(); ++c) {
    out_cols.push_back(left.column(c).Gather(l_rows, options.num_threads));
  }
  for (uint32_t c = 0; c < right.num_columns(); ++c) {
    if (c == r_idx) continue;
    const ColumnSpec& spec = right.schema().column(c);
    if (left.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s'", spec.name.c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(right.column(c).Gather(r_rows, options.num_threads));
  }
  Table result(left.name() + "_join_" + right.name(),
               Schema(std::move(out_specs)), std::move(out_cols));
  if (collect) {
    const uint64_t materialize_ns = obs::NowNanos() - t_mat;
    MaterializeLatency().RecordAlways(materialize_ns);
    obs::OperatorFeatures features;
    features.op = "join.hash";
    features.rows_in = left.num_rows();
    features.rows_out = result.num_rows();
    features.build_rows = right.num_rows();
    features.distinct_keys = rcol.domain_size();
    features.num_threads = ResolvedThreads(options.num_threads);
    obs::CostObservation obs_cost;
    obs_cost.total_ns = obs::NowNanos() - start_ns;
    obs_cost.build_ns = build_ns;
    obs_cost.probe_ns = probe_ns;
    obs_cost.materialize_ns = materialize_ns;
    obs_cost.bloom_build_ns = bloom_build_ns;
    obs::CostProfileStore::Global().Record(features, obs_cost);
  }
  return result;
}

}  // namespace hamlet
