#include "relational/join.h"

#include <unordered_map>

#include "common/string_util.h"
#include "obs/trace.h"

namespace hamlet {

namespace {

obs::Counter& RowsBuiltCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_built");
  return counter;
}

obs::Counter& RowsProbedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("join.rows_probed");
  return counter;
}

// Maps each code of `fk_domain` to the r-row holding that RID, or UINT32_MAX
// if no R row carries it. Translates through labels when the domains are
// distinct objects.
Result<std::vector<uint32_t>> BuildRidIndex(const Column& fk,
                                            const Column& rid) {
  constexpr uint32_t kMissing = UINT32_MAX;
  std::vector<uint32_t> rid_to_row(fk.domain_size(), kMissing);
  const bool shared = fk.domain() == rid.domain();
  for (uint32_t row = 0; row < rid.size(); ++row) {
    uint32_t fk_code;
    if (shared) {
      fk_code = rid.code(row);
    } else {
      auto lookup = fk.domain()->Lookup(rid.label(row));
      if (!lookup.ok()) continue;  // RID never referenced by S.
      fk_code = *lookup;
    }
    if (fk_code >= rid_to_row.size()) continue;
    if (rid_to_row[fk_code] != kMissing) {
      return Status::InvalidArgument(StringFormat(
          "duplicate RID '%s' in attribute table", rid.label(row).c_str()));
    }
    rid_to_row[fk_code] = row;
  }
  return rid_to_row;
}

}  // namespace

Result<Table> KfkJoin(const Table& s, const Table& r,
                      const std::string& fk_column) {
  obs::TraceSpan span("join.kfk");
  if (span.active()) {
    span.AddAttr("entity", s.name());
    span.AddAttr("attribute_table", r.name());
    span.AddAttr("rows_built", r.num_rows());
    span.AddAttr("rows_probed", s.num_rows());
  }
  RowsBuiltCounter().Add(r.num_rows());
  RowsProbedCounter().Add(s.num_rows());

  HAMLET_ASSIGN_OR_RETURN(uint32_t fk_idx, s.schema().IndexOf(fk_column));
  const ColumnSpec& fk_spec = s.schema().column(fk_idx);
  if (fk_spec.role != ColumnRole::kForeignKey) {
    return Status::InvalidArgument(StringFormat(
        "column '%s' of '%s' is not a foreign key", fk_column.c_str(),
        s.name().c_str()));
  }
  HAMLET_ASSIGN_OR_RETURN(uint32_t rid_idx, r.schema().PrimaryKeyIndex());

  const Column& fk = s.column(fk_idx);
  const Column& rid = r.column(rid_idx);
  HAMLET_ASSIGN_OR_RETURN(std::vector<uint32_t> rid_to_row,
                          BuildRidIndex(fk, rid));

  // Match every S row to its unique R row.
  std::vector<uint32_t> matched(s.num_rows());
  for (uint32_t row = 0; row < s.num_rows(); ++row) {
    uint32_t m = rid_to_row[fk.code(row)];
    if (m == UINT32_MAX) {
      return Status::InvalidArgument(StringFormat(
          "referential integrity violation: FK value '%s' has no matching "
          "RID in '%s'",
          fk.label(row).c_str(), r.name().c_str()));
    }
    matched[row] = m;
  }

  std::vector<ColumnSpec> out_specs = s.schema().columns();
  std::vector<Column> out_cols;
  out_cols.reserve(s.num_columns() + r.num_columns() - 1);
  for (uint32_t c = 0; c < s.num_columns(); ++c) out_cols.push_back(s.column(c));

  for (uint32_t c = 0; c < r.num_columns(); ++c) {
    if (c == rid_idx) continue;  // RID is represented by FK in the output.
    const ColumnSpec& spec = r.schema().column(c);
    if (s.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s' between '%s' and '%s'",
          spec.name.c_str(), s.name().c_str(), r.name().c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(r.column(c).Gather(matched));
  }

  return Table(s.name() + "_join_" + r.name(), Schema(std::move(out_specs)),
               std::move(out_cols));
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_column,
                       const std::string& right_column) {
  obs::TraceSpan span("join.hash");
  if (span.active()) {
    span.AddAttr("rows_built", right.num_rows());
    span.AddAttr("rows_probed", left.num_rows());
  }
  RowsBuiltCounter().Add(right.num_rows());
  RowsProbedCounter().Add(left.num_rows());

  HAMLET_ASSIGN_OR_RETURN(uint32_t l_idx, left.schema().IndexOf(left_column));
  HAMLET_ASSIGN_OR_RETURN(uint32_t r_idx,
                          right.schema().IndexOf(right_column));
  const Column& lcol = left.column(l_idx);
  const Column& rcol = right.column(r_idx);

  // Build side: label -> list of right rows. Labels make the join correct
  // even when the two columns use distinct Domain objects.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (uint32_t row = 0; row < right.num_rows(); ++row) {
    build[rcol.label(row)].push_back(row);
  }

  std::vector<uint32_t> l_rows, r_rows;
  for (uint32_t row = 0; row < left.num_rows(); ++row) {
    auto it = build.find(lcol.label(row));
    if (it == build.end()) continue;
    for (uint32_t rr : it->second) {
      l_rows.push_back(row);
      r_rows.push_back(rr);
    }
  }

  std::vector<ColumnSpec> out_specs = left.schema().columns();
  std::vector<Column> out_cols;
  for (uint32_t c = 0; c < left.num_columns(); ++c) {
    out_cols.push_back(left.column(c).Gather(l_rows));
  }
  for (uint32_t c = 0; c < right.num_columns(); ++c) {
    if (c == r_idx) continue;
    const ColumnSpec& spec = right.schema().column(c);
    if (left.schema().Contains(spec.name)) {
      return Status::InvalidArgument(StringFormat(
          "column name collision on '%s'", spec.name.c_str()));
    }
    out_specs.push_back(spec);
    out_cols.push_back(right.column(c).Gather(r_rows));
  }
  return Table(left.name() + "_join_" + right.name(),
               Schema(std::move(out_specs)), std::move(out_cols));
}

}  // namespace hamlet
