#include "ml/decision_tree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/string_util.h"
#include "ml/factorized.h"
#include "ml/suff_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hamlet {

namespace {

std::atomic<int> g_refit_budget_depth{0};

obs::Histogram& TreeTrainHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("tree.train_ns");
  return histogram;
}

obs::Counter& TreeTrainsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("tree.trains");
  return counter;
}

obs::Counter& TreeNodesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("tree.nodes");
  return counter;
}

/// Gini impurity 1 - sum_y p_y^2 of one count vector, accumulated in
/// ascending class order — the pinned expression both training paths use.
double GiniOf(const uint64_t* counts, uint32_t num_classes, uint64_t total) {
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  double sum_sq = 0.0;
  for (uint32_t y = 0; y < num_classes; ++y) {
    const double p = static_cast<double>(counts[y]) / n;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

/// One node's pending work: its rows (as indices into the gathered code
/// matrix), its per-slot histograms, and its class counts.
struct NodeWork {
  std::vector<uint32_t> items;
  std::vector<std::vector<uint64_t>> hist;  // Per slot, [code * K + y].
  std::vector<uint64_t> cls;                // [y].
  uint32_t depth = 0;
};

/// Grows the flat pre-order node arrays. One instance per TrainImpl call;
/// recursion is depth-bounded by max_depth, and a parent's histograms are
/// moved into the larger child (subtraction trick) before recursing, so
/// live histogram memory is O(depth * d * card * K), not O(nodes).
struct TreeBuilder {
  const DecisionTreeOptions& options;
  uint32_t num_classes;
  const std::vector<uint32_t>& labels;
  const std::vector<std::vector<uint32_t>>& codes;  // Per slot, node-local.
  const std::vector<uint32_t>& cards;
  uint32_t max_depth;

  std::vector<int32_t>* split_slot;
  std::vector<uint32_t>* split_code;
  std::vector<int32_t>* left;
  std::vector<int32_t>* right;
  std::vector<double>* scores;

  /// One parallel pass over `items` (one feature slot per work item, each
  /// writing only its own table — the BuildSuffStats sharding contract).
  void BuildHistograms(const std::vector<uint32_t>& items,
                       std::vector<std::vector<uint64_t>>* hist) const {
    const uint32_t d = static_cast<uint32_t>(codes.size());
    hist->resize(d);
    ParallelFor(d, options.num_threads, [&](uint32_t jj) {
      std::vector<uint64_t>& h = (*hist)[jj];
      h.assign(static_cast<size_t>(cards[jj]) * num_classes, 0);
      const std::vector<uint32_t>& col = codes[jj];
      for (uint32_t i : items) {
        ++h[static_cast<size_t>(col[i]) * num_classes + labels[i]];
      }
    });
  }

  int32_t Grow(NodeWork&& w) {
    const int32_t idx = static_cast<int32_t>(split_slot->size());
    split_slot->push_back(-1);
    split_code->push_back(0);
    left->push_back(-1);
    right->push_back(-1);

    // Every node carries smoothed class log-probabilities — the same
    // expression as the Naive Bayes prior, so a depth-0 tree IS the
    // prior-only model.
    const uint64_t n_node = w.items.size();
    const double denom = static_cast<double>(n_node) +
                         options.alpha * static_cast<double>(num_classes);
    for (uint32_t y = 0; y < num_classes; ++y) {
      scores->push_back(std::log(
          (static_cast<double>(w.cls[y]) + options.alpha) / denom));
    }

    if (w.depth >= max_depth || n_node < options.min_rows_split) return idx;
    for (uint32_t y = 0; y < num_classes; ++y) {
      if (w.cls[y] == n_node) return idx;  // Pure node.
    }

    // Best split per slot in parallel (codes ascending, strictly-greater
    // gain wins), then a serial slot-ordered reduction so the lowest slot
    // wins exact cross-feature ties at any thread count.
    const uint32_t d = static_cast<uint32_t>(codes.size());
    struct SlotBest {
      double gain = 0.0;
      uint32_t code = 0;
      bool valid = false;
    };
    std::vector<SlotBest> best(d);
    const double parent_gini = GiniOf(w.cls.data(), num_classes, n_node);
    const double n_d = static_cast<double>(n_node);
    ParallelFor(d, options.num_threads, [&](uint32_t jj) {
      const std::vector<uint64_t>& h = w.hist[jj];
      std::vector<uint64_t> l(num_classes), r(num_classes);
      SlotBest b;
      for (uint32_t v = 0; v < cards[jj]; ++v) {
        uint64_t nl = 0;
        for (uint32_t y = 0; y < num_classes; ++y) {
          l[y] = h[static_cast<size_t>(v) * num_classes + y];
          nl += l[y];
        }
        if (nl == 0 || nl == n_node) continue;
        for (uint32_t y = 0; y < num_classes; ++y) r[y] = w.cls[y] - l[y];
        const uint64_t nr = n_node - nl;
        const double weighted =
            (static_cast<double>(nl) / n_d) * GiniOf(l.data(), num_classes, nl) +
            (static_cast<double>(nr) / n_d) * GiniOf(r.data(), num_classes, nr);
        const double gain = parent_gini - weighted;
        if (!b.valid || gain > b.gain) b = {gain, v, true};
      }
      best[jj] = b;
    });
    int32_t pick = -1;
    double pick_gain = options.min_gain;
    for (uint32_t jj = 0; jj < d; ++jj) {
      if (best[jj].valid && best[jj].gain > pick_gain) {
        pick = static_cast<int32_t>(jj);
        pick_gain = best[jj].gain;
      }
    }
    if (pick < 0) return idx;

    // Partition in ascending item order (left = code match).
    const uint32_t v = best[pick].code;
    const std::vector<uint32_t>& col = codes[pick];
    NodeWork lw, rw;
    lw.depth = rw.depth = w.depth + 1;
    for (uint32_t i : w.items) {
      (col[i] == v ? lw.items : rw.items).push_back(i);
    }
    w.items.clear();
    w.items.shrink_to_fit();

    // Child class counts straight from the parent histogram.
    lw.cls.resize(num_classes);
    rw.cls.resize(num_classes);
    for (uint32_t y = 0; y < num_classes; ++y) {
      lw.cls[y] = w.hist[pick][static_cast<size_t>(v) * num_classes + y];
      rw.cls[y] = w.cls[y] - lw.cls[y];
    }

    // Subtraction trick: build the smaller child's histograms with one
    // parallel pass, then derive the sibling's by subtracting them from
    // the parent's (exact — integer counts). The parent's tables are
    // moved, not copied.
    NodeWork* small = lw.items.size() <= rw.items.size() ? &lw : &rw;
    NodeWork* big = small == &lw ? &rw : &lw;
    BuildHistograms(small->items, &small->hist);
    big->hist = std::move(w.hist);
    ParallelFor(d, options.num_threads, [&](uint32_t jj) {
      std::vector<uint64_t>& bh = big->hist[jj];
      const std::vector<uint64_t>& sh = small->hist[jj];
      for (size_t x = 0; x < bh.size(); ++x) bh[x] -= sh[x];
    });

    const int32_t lidx = Grow(std::move(lw));
    const int32_t ridx = Grow(std::move(rw));
    (*split_slot)[idx] = pick;
    (*split_code)[idx] = v;
    (*left)[idx] = lidx;
    (*right)[idx] = ridx;
    return idx;
  }
};

/// True when cached statistics can seed the root histograms: same class
/// count and at least as many feature tables as the dataset, each trained
/// slot's table covering its training-time cardinality.
bool RootStatsUsable(const SuffStats* stats, uint32_t num_classes,
                     const std::vector<uint32_t>& features,
                     const std::vector<uint32_t>& cards) {
  if (stats == nullptr || stats->num_classes != num_classes) return false;
  for (size_t jj = 0; jj < features.size(); ++jj) {
    if (features[jj] >= stats->feature_counts.size()) return false;
    if (stats->cardinalities[features[jj]] != cards[jj]) return false;
  }
  return true;
}

}  // namespace

ScopedTreeRefitBudget::ScopedTreeRefitBudget(bool enable) : enabled_(enable) {
  if (enabled_) g_refit_budget_depth.fetch_add(1, std::memory_order_relaxed);
}

ScopedTreeRefitBudget::~ScopedTreeRefitBudget() {
  if (enabled_) g_refit_budget_depth.fetch_sub(1, std::memory_order_relaxed);
}

bool ScopedTreeRefitBudget::Active() {
  return g_refit_budget_depth.load(std::memory_order_relaxed) > 0;
}

DecisionTree::DecisionTree(DecisionTreeOptions options)
    : options_(options) {
  HAMLET_CHECK(options_.alpha > 0.0,
               "DecisionTree alpha must be positive, got %f", options_.alpha);
}

Status DecisionTree::Train(const EncodedDataset& data,
                           const std::vector<uint32_t>& rows,
                           const std::vector<uint32_t>& features) {
  obs::ScopedLatency latency(TreeTrainHistogram());
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has zero classes");
  }
  for (uint32_t j : features) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(
          StringFormat("feature index %u out of range (%u features)", j,
                       data.num_features()));
    }
  }
  num_classes_ = data.num_classes();
  features_ = features;
  cardinalities_.clear();
  cardinalities_.reserve(features_.size());
  for (uint32_t j : features_) cardinalities_.push_back(data.meta(j).cardinality);

  std::vector<uint32_t> labels;
  labels.reserve(rows.size());
  for (uint32_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::InvalidArgument(
          StringFormat("row index %u out of range (%u rows)", r,
                       data.num_rows()));
    }
    labels.push_back(data.labels()[r]);
  }

  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> codes(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    const std::vector<uint32_t>& col = data.feature(features_[jj]);
    codes[jj].resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) codes[jj][i] = col[rows[i]];
  });

  std::shared_ptr<const SuffStats> stats =
      SuffStatsCache::Global().Peek(data, rows);
  const SuffStats* root =
      RootStatsUsable(stats.get(), num_classes_, features_, cardinalities_)
          ? stats.get()
          : nullptr;
  return TrainImpl(num_classes_, labels, codes, root);
}

Status DecisionTree::TrainFactorized(const FactorizedDataset& data,
                                     const std::vector<uint32_t>& rows,
                                     const std::vector<uint32_t>& features) {
  obs::ScopedLatency latency(TreeTrainHistogram());
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has zero classes");
  }
  for (uint32_t j : features) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(
          StringFormat("feature index %u out of range (%u features)", j,
                       data.num_features()));
    }
  }
  num_classes_ = data.num_classes();
  features_ = features;
  cardinalities_.clear();
  cardinalities_.reserve(features_.size());
  for (uint32_t j : features_) cardinalities_.push_back(data.meta(j).cardinality);

  std::vector<uint32_t> labels;
  labels.reserve(rows.size());
  for (uint32_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::InvalidArgument(
          StringFormat("row index %u out of range (%u rows)", r,
                       data.num_rows()));
    }
    labels.push_back(data.labels()[r]);
  }

  // Candidate columns come through the FK -> R hops; by the GatherCodes
  // contract each equals the materialized join's column at `rows`, so
  // every histogram below is bit-identical to the materialized path's.
  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> codes(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    data.GatherCodes(features_[jj], rows, &codes[jj]);
  });

  std::shared_ptr<const SuffStats> stats =
      SuffStatsCache::Global().PeekKeyed(data.cache_key(), rows);
  const SuffStats* root =
      RootStatsUsable(stats.get(), num_classes_, features_, cardinalities_)
          ? stats.get()
          : nullptr;
  return TrainImpl(num_classes_, labels, codes, root);
}

Status DecisionTree::TrainImpl(uint32_t num_classes,
                               const std::vector<uint32_t>& labels,
                               const std::vector<std::vector<uint32_t>>& codes,
                               const SuffStats* root_stats) {
  split_slot_.clear();
  split_code_.clear();
  left_.clear();
  right_.clear();
  scores_.clear();

  uint32_t max_depth = options_.max_depth;
  if (ScopedTreeRefitBudget::Active()) {
    max_depth = std::min(max_depth, options_.candidate_max_depth);
  }

  TreeBuilder builder{options_,      num_classes, labels,      codes,
                      cardinalities_, max_depth,   &split_slot_, &split_code_,
                      &left_,         &right_,     &scores_};

  NodeWork root;
  root.items.resize(labels.size());
  std::iota(root.items.begin(), root.items.end(), 0u);
  root.depth = 0;
  if (root_stats != nullptr) {
    root.cls = root_stats->class_counts;
    root.hist.resize(codes.size());
    for (size_t jj = 0; jj < features_.size(); ++jj) {
      root.hist[jj] = root_stats->feature_counts[features_[jj]];
    }
  } else {
    root.cls.assign(num_classes, 0);
    for (uint32_t y : labels) ++root.cls[y];
    builder.BuildHistograms(root.items, &root.hist);
  }
  builder.Grow(std::move(root));

  TreeTrainsCounter().Add(1);
  TreeNodesCounter().Add(num_nodes());
  return Status::OK();
}

int32_t DecisionTree::WalkToLeaf(const EncodedDataset& data,
                                 uint32_t row) const {
  int32_t node = 0;
  while (split_slot_[node] >= 0) {
    const uint32_t slot = static_cast<uint32_t>(split_slot_[node]);
    const uint32_t code = data.feature(features_[slot])[row];
    node = code == split_code_[node] ? left_[node] : right_[node];
  }
  return node;
}

uint32_t DecisionTree::PredictOne(const EncodedDataset& data,
                                  uint32_t row) const {
  HAMLET_CHECK(num_nodes() > 0, "DecisionTree::PredictOne before Train");
  const int32_t node = WalkToLeaf(data, row);
  const double* s = &scores_[static_cast<size_t>(node) * num_classes_];
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (s[c] > s[best]) best = c;
  }
  return best;
}

std::vector<uint32_t> DecisionTree::Predict(
    const EncodedDataset& data, const std::vector<uint32_t>& rows) const {
  std::vector<uint32_t> out(rows.size());
  ParallelFor(static_cast<uint32_t>(rows.size()), options_.num_threads,
              [&](uint32_t i) { out[i] = PredictOne(data, rows[i]); });
  return out;
}

Status DecisionTree::PredictFactorized(const FactorizedDataset& data,
                                       const std::vector<uint32_t>& rows,
                                       std::vector<uint32_t>* out) const {
  if (num_nodes() == 0) {
    return Status::FailedPrecondition(
        "DecisionTree::PredictFactorized before Train");
  }
  for (uint32_t j : features_) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(StringFormat(
          "trained feature index %u out of range (%u features)", j,
          data.num_features()));
    }
  }
  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> cols(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    data.GatherCodes(features_[jj], rows, &cols[jj]);
  });
  out->resize(rows.size());
  ParallelFor(static_cast<uint32_t>(rows.size()), options_.num_threads,
              [&](uint32_t i) {
                int32_t node = 0;
                while (split_slot_[node] >= 0) {
                  const uint32_t slot =
                      static_cast<uint32_t>(split_slot_[node]);
                  node = cols[slot][i] == split_code_[node] ? left_[node]
                                                            : right_[node];
                }
                const double* s =
                    &scores_[static_cast<size_t>(node) * num_classes_];
                uint32_t best = 0;
                for (uint32_t c = 1; c < num_classes_; ++c) {
                  if (s[c] > s[best]) best = c;
                }
                (*out)[i] = best;
              });
  return Status::OK();
}

void DecisionTree::LogScoresInto(const EncodedDataset& data, uint32_t row,
                                 std::vector<double>* out) const {
  HAMLET_CHECK(num_nodes() > 0, "DecisionTree::LogScoresInto before Train");
  const int32_t node = WalkToLeaf(data, row);
  const double* s = &scores_[static_cast<size_t>(node) * num_classes_];
  out->assign(s, s + num_classes_);
}

uint32_t DecisionTree::trained_cardinality(size_t jj) const {
  HAMLET_CHECK(jj < cardinalities_.size(),
               "trained_cardinality slot out of range");
  return cardinalities_[jj];
}

DecisionTreeParams DecisionTree::ExportParams() const {
  DecisionTreeParams params;
  params.alpha = options_.alpha;
  params.num_classes = num_classes_;
  params.features = features_;
  params.cardinalities = cardinalities_;
  params.split_slot = split_slot_;
  params.split_code = split_code_;
  params.left = left_;
  params.right = right_;
  params.scores = scores_;
  return params;
}

Result<DecisionTree> DecisionTree::FromParams(DecisionTreeParams params) {
  if (params.alpha <= 0.0) {
    return Status::InvalidArgument("DecisionTree params: alpha must be > 0");
  }
  if (params.num_classes == 0) {
    return Status::InvalidArgument("DecisionTree params: zero classes");
  }
  if (params.features.size() != params.cardinalities.size()) {
    return Status::InvalidArgument(
        "DecisionTree params: features/cardinalities size mismatch");
  }
  HAMLET_RETURN_NOT_OK(ValidateTreeStructure(
      params.split_slot, params.split_code, params.left, params.right,
      params.features.size(), params.cardinalities, "DecisionTree params"));
  if (params.scores.size() !=
      params.split_slot.size() * params.num_classes) {
    return Status::InvalidArgument(
        "DecisionTree params: scores size does not match nodes * classes");
  }

  DecisionTreeOptions options;
  options.alpha = params.alpha;
  DecisionTree model(options);
  model.num_classes_ = params.num_classes;
  model.features_ = std::move(params.features);
  model.cardinalities_ = std::move(params.cardinalities);
  model.split_slot_ = std::move(params.split_slot);
  model.split_code_ = std::move(params.split_code);
  model.left_ = std::move(params.left);
  model.right_ = std::move(params.right);
  model.scores_ = std::move(params.scores);
  return model;
}

ClassifierFactory MakeDecisionTreeFactory(DecisionTreeOptions options) {
  return [options]() { return std::make_unique<DecisionTree>(options); };
}

Status ValidateTreeStructure(const std::vector<int32_t>& split_slot,
                             const std::vector<uint32_t>& split_code,
                             const std::vector<int32_t>& left,
                             const std::vector<int32_t>& right,
                             size_t num_slots,
                             const std::vector<uint32_t>& cardinalities,
                             const char* context) {
  const size_t n = split_slot.size();
  if (n == 0 || split_code.size() != n || left.size() != n ||
      right.size() != n) {
    return Status::InvalidArgument(
        StringFormat("%s: inconsistent node arrays", context));
  }
  for (size_t i = 0; i < n; ++i) {
    const int32_t slot = split_slot[i];
    if (slot < 0) {
      if (left[i] != -1 || right[i] != -1) {
        return Status::InvalidArgument(
            StringFormat("%s: leaf with children", context));
      }
      continue;
    }
    if (static_cast<size_t>(slot) >= num_slots) {
      return Status::InvalidArgument(
          StringFormat("%s: split slot out of range", context));
    }
    if (split_code[i] >= cardinalities[slot]) {
      return Status::InvalidArgument(
          StringFormat("%s: split code outside the slot's domain", context));
    }
    const int32_t l = left[i], r = right[i];
    if (l <= static_cast<int32_t>(i) || r <= static_cast<int32_t>(i) ||
        static_cast<size_t>(l) >= n || static_cast<size_t>(r) >= n ||
        l == r) {
      return Status::InvalidArgument(
          StringFormat("%s: child index out of range", context));
    }
  }
  // Reachability: pre-order flat storage means every node must be reached
  // exactly once from the root. Catches both dangling and shared nodes.
  std::vector<uint8_t> visited(n, 0);
  std::vector<int32_t> stack = {0};
  size_t count = 0;
  while (!stack.empty()) {
    const int32_t node = stack.back();
    stack.pop_back();
    if (visited[node]) {
      return Status::InvalidArgument(
          StringFormat("%s: node reachable twice", context));
    }
    visited[node] = 1;
    ++count;
    if (split_slot[node] >= 0) {
      stack.push_back(right[node]);
      stack.push_back(left[node]);
    }
  }
  if (count != n) {
    return Status::InvalidArgument(
        StringFormat("%s: unreachable nodes", context));
  }
  return Status::OK();
}

}  // namespace hamlet
