#ifndef HAMLET_ML_NAIVE_BAYES_H_
#define HAMLET_ML_NAIVE_BAYES_H_

/// \file naive_bayes.h
/// Categorical Naive Bayes with Laplace smoothing — the paper's primary
/// classifier (Sections 4–5). Smoothing implements the standard handling
/// of RID values absent from a given training sample (footnote 2).

#include <vector>

#include "ml/classifier.h"

namespace hamlet {

struct SuffStats;

/// The complete trained state of a NaiveBayes model, as plain data. This
/// is the serialization surface: ExportParams() captures a model,
/// NaiveBayes::FromParams() validates and restores one, and the doubles
/// pass through untouched so a round trip is bit-exact (serve/serde.h).
struct NaiveBayesParams {
  double alpha = 1.0;
  uint32_t num_classes = 0;
  std::vector<uint32_t> features;    ///< Trained feature indices.
  std::vector<double> log_priors;    ///< [y], num_classes entries.
  /// Per trained feature: flat [code * num_classes + y] log-likelihoods.
  std::vector<std::vector<double>> log_likelihoods;
};

/// Multinomial/categorical Naive Bayes:
///   predict argmax_y log P(y) + sum_j log P(x_j | y)
/// with all probabilities Laplace-smoothed by `alpha`.
class NaiveBayes : public Classifier {
 public:
  /// `alpha` is the Laplace smoothing pseudo-count (> 0).
  explicit NaiveBayes(double alpha = 1.0);

  /// Trains on (rows, features). If the global SuffStatsCache already
  /// holds statistics for (data, rows) — and no ScopedSuffStatsBypass is
  /// active — the model is derived from the cached counts without
  /// rescanning the data; the result is bit-identical either way.
  Status Train(const EncodedDataset& data, const std::vector<uint32_t>& rows,
               const std::vector<uint32_t>& features) override;

  /// Trains from precomputed sufficient statistics: zero data scans. Uses
  /// the exact floating-point expressions of the scan path on the exact
  /// same integer counts, so the resulting model is bit-identical.
  Status TrainFromStats(const SuffStats& stats,
                        const std::vector<uint32_t>& features);

  uint32_t PredictOne(const EncodedDataset& data, uint32_t row) const override;

  std::vector<uint32_t> Predict(
      const EncodedDataset& data,
      const std::vector<uint32_t>& rows) const override;

  std::string name() const override { return "naive_bayes"; }

  /// Posterior class log-scores for one row (unnormalized); exposed for
  /// tests and the bias-variance machinery.
  std::vector<double> LogScores(const EncodedDataset& data,
                                uint32_t row) const;

  /// Allocation-free variant: writes the log-scores into `*out` (resized
  /// to num_classes). Callers scoring many rows reuse one buffer.
  void LogScoresInto(const EncodedDataset& data, uint32_t row,
                     std::vector<double>* out) const;

  /// Normalized posterior P(y | x) for one row (softmax of LogScores).
  std::vector<double> PredictProbabilities(const EncodedDataset& data,
                                           uint32_t row) const;

  /// The smoothed log prior vector (for tests).
  const std::vector<double>& log_priors() const { return log_priors_; }

  /// The Laplace smoothing pseudo-count this model was built with.
  double alpha() const { return alpha_; }

  /// Number of classes seen at training time (0 before Train()).
  uint32_t num_classes() const { return num_classes_; }

  /// Code-domain size the likelihood table of trained feature slot `jj`
  /// covers — the training-time cardinality. Scoring a row whose code
  /// reaches past this reads out of bounds, so the serving layer checks
  /// block layouts against it before scoring.
  uint32_t trained_cardinality(size_t jj) const;

  /// Trained feature indices (empty before Train()).
  const std::vector<uint32_t>& trained_features() const { return features_; }

  /// Copies the trained state out as plain data (see NaiveBayesParams).
  NaiveBayesParams ExportParams() const;

  /// Rebuilds a model from exported state. Returns InvalidArgument when
  /// the params are inconsistent (size mismatches, alpha <= 0, zero
  /// classes) instead of crashing — the deserialization entry point.
  static Result<NaiveBayes> FromParams(NaiveBayesParams params);

 private:
  double alpha_;
  uint32_t num_classes_ = 0;
  std::vector<uint32_t> features_;       // Trained feature indices.
  std::vector<double> log_priors_;       // [y]
  // Per trained feature: flat [code * num_classes + y] log-likelihoods.
  std::vector<std::vector<double>> log_likelihoods_;
};

/// Factory for wrappers.
ClassifierFactory MakeNaiveBayesFactory(double alpha = 1.0);

}  // namespace hamlet

#endif  // HAMLET_ML_NAIVE_BAYES_H_
