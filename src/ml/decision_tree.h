#ifndef HAMLET_ML_DECISION_TREE_H_
#define HAMLET_ML_DECISION_TREE_H_

/// \file decision_tree.h
/// Histogram-based CART over categorical features — the repo's first
/// high-capacity classifier, built to re-ask the paper's join-avoidance
/// question for the model class the follow-up work ("Are Key-Foreign Key
/// Joins Safe to Avoid when Learning High-Capacity Classifiers?") studies.
///
/// Every split is scored from per-(feature, value, class) contingency
/// counts — the same integer histograms SuffStats holds — so a node's
/// candidate splits cost one table scan of its histogram, not a data
/// scan. Node histograms are built with one parallel pass over the node's
/// rows (one feature per work item, the BuildSuffStats sharding
/// contract); a node's sibling gets its histogram by subtracting the
/// built child from the parent (the classic "subtraction trick"), which
/// is exact because the counts are integers. The root reuses cached
/// SuffStats when present (materialized or factorized — the counts are
/// bit-identical, see ml/factorized.h), so feature-selection searches
/// that retrain hundreds of trees on one train split pay for the root
/// histograms once.
///
/// Determinism contract (mirrors the rest of the library): histograms are
/// integer counts built one-feature-per-work-item, the best split is
/// chosen by a serial reduction in ascending feature-slot order with
/// strictly-greater-gain wins (lowest slot, then lowest code, wins exact
/// ties), rows partition in ascending order, and leaf scores use one
/// pinned floating-point expression. Trees are therefore bit-identical at
/// any thread count AND between the materialized and factorized training
/// paths (tests/factorized_tree_equivalence_test.cc, ctest label
/// `factorized`; docs/TREES.md has the full math).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "ml/classifier.h"

namespace hamlet {

struct SuffStats;

/// Training knobs. `alpha` smooths the leaf class probabilities exactly
/// like the Naive Bayes prior (footnote 2's handling of values absent
/// from a sample). `candidate_max_depth` is the cheap-refit budget: while
/// a ScopedTreeRefitBudget is active — the fs searches activate one
/// around candidate evaluation — training caps depth there, so the
/// O(d^2) wrapper retrains grow stumps while the final fit (outside the
/// scope) grows the full tree.
struct DecisionTreeOptions {
  double alpha = 1.0;             ///< Laplace pseudo-count for leaf probs.
  uint32_t max_depth = 6;         ///< Root is depth 0.
  uint64_t min_rows_split = 8;    ///< Nodes smaller than this become leaves.
  double min_gain = 1e-12;        ///< Minimum Gini decrease to split.
  uint32_t candidate_max_depth = 2;  ///< Depth cap under the refit budget.
  uint32_t num_threads = 0;       ///< ParallelFor width (0 = hardware).
};

/// The complete trained state of a DecisionTree, as plain data — the
/// serialization surface (serve/serde.h), mirroring NaiveBayesParams.
/// Nodes are stored flat in pre-order: internal node i tests
/// `code(features[split_slot[i]]) == split_code[i]` and goes to left[i]
/// on equal, right[i] otherwise; split_slot[i] < 0 marks a leaf. Every
/// node carries its smoothed per-class log-probabilities (flat
/// [node * num_classes + y]), so partial trees score too and a round
/// trip is bit-exact.
struct DecisionTreeParams {
  double alpha = 1.0;
  uint32_t num_classes = 0;
  std::vector<uint32_t> features;       ///< Trained slot -> feature index.
  std::vector<uint32_t> cardinalities;  ///< Per slot, training-time |D_F|.
  std::vector<int32_t> split_slot;      ///< Per node; -1 marks a leaf.
  std::vector<uint32_t> split_code;     ///< Per node; 0 for leaves.
  std::vector<int32_t> left;            ///< Per node; -1 for leaves.
  std::vector<int32_t> right;           ///< Per node; -1 for leaves.
  std::vector<double> scores;           ///< Flat [node * num_classes + y].
};

/// Histogram CART classifier:
///   predict argmax_y leaf_scores[y]  (first strictly-greatest wins)
/// over binary one-vs-rest categorical splits chosen by Gini decrease.
class DecisionTree : public Classifier, public FactorizedTrainable {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  /// Trains on (rows, features) of the materialized dataset. If the
  /// global SuffStatsCache already holds statistics for (data, rows) —
  /// and no ScopedSuffStatsBypass is active — the root histograms are
  /// taken from the cached counts without a data pass; the result is
  /// bit-identical either way (integer counts).
  Status Train(const EncodedDataset& data, const std::vector<uint32_t>& rows,
               const std::vector<uint32_t>& features) override;

  /// Trains over the normalized (S, R) view: candidate columns are read
  /// through the FK -> R hops (FactorizedDataset::GatherCodes) and the
  /// root histograms reuse cached factorized SuffStats — whose counts
  /// come from the group-by-FK-code aggregation, never a materialized
  /// join. Bit-identical to Train on the joined twin.
  Status TrainFactorized(const FactorizedDataset& data,
                         const std::vector<uint32_t>& rows,
                         const std::vector<uint32_t>& features) override;

  uint32_t PredictOne(const EncodedDataset& data, uint32_t row) const override;

  std::vector<uint32_t> Predict(
      const EncodedDataset& data,
      const std::vector<uint32_t>& rows) const override;

  Status PredictFactorized(const FactorizedDataset& data,
                           const std::vector<uint32_t>& rows,
                           std::vector<uint32_t>* out) const override;

  std::string name() const override { return "decision_tree"; }

  /// Per-class log-scores of `row`'s leaf, written into `*out` (resized
  /// to num_classes) — the serving layer's batched scoring hook, same
  /// contract as NaiveBayes::LogScoresInto.
  void LogScoresInto(const EncodedDataset& data, uint32_t row,
                     std::vector<double>* out) const;

  uint32_t num_classes() const { return num_classes_; }
  uint32_t num_nodes() const {
    return static_cast<uint32_t>(split_slot_.size());
  }

  /// Code-domain size trained slot `jj` covers; the serving layer checks
  /// block layouts against it before scoring (serve/service.h).
  uint32_t trained_cardinality(size_t jj) const;

  /// Trained feature indices (empty before Train()).
  const std::vector<uint32_t>& trained_features() const { return features_; }

  const DecisionTreeOptions& options() const { return options_; }

  /// Copies the trained state out as plain data.
  DecisionTreeParams ExportParams() const;

  /// Rebuilds a model from exported state; InvalidArgument on any
  /// inconsistency (size mismatch, dangling child, unreachable node,
  /// out-of-domain split code) — the deserialization entry point.
  static Result<DecisionTree> FromParams(DecisionTreeParams params);

 private:
  Status TrainImpl(uint32_t num_classes,
                   const std::vector<uint32_t>& labels,
                   const std::vector<std::vector<uint32_t>>& codes,
                   const SuffStats* root_stats);
  int32_t WalkToLeaf(const EncodedDataset& data, uint32_t row) const;

  DecisionTreeOptions options_;
  uint32_t num_classes_ = 0;
  std::vector<uint32_t> features_;       // Trained slot -> feature index.
  std::vector<uint32_t> cardinalities_;  // Per slot.
  std::vector<int32_t> split_slot_;      // Flat pre-order nodes.
  std::vector<uint32_t> split_code_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<double> scores_;           // [node * num_classes + y].
};

/// Factory for wrappers, the pipeline, and the Monte Carlo study.
ClassifierFactory MakeDecisionTreeFactory(DecisionTreeOptions options = {});

/// Validates one flat pre-order tree's structure — shared by the
/// DecisionTree and Gbt deserialization entry points. Checks: consistent
/// array sizes, leaves (split_slot < 0) have no children, internal nodes
/// index a valid slot with an in-domain split code and strictly-forward
/// distinct children, and every node is reachable from the root exactly
/// once. `context` prefixes error messages ("DecisionTree params", ...).
Status ValidateTreeStructure(const std::vector<int32_t>& split_slot,
                             const std::vector<uint32_t>& split_code,
                             const std::vector<int32_t>& left,
                             const std::vector<int32_t>& right,
                             size_t num_slots,
                             const std::vector<uint32_t>& cardinalities,
                             const char* context);

/// RAII refit-budget switch, modeled on ScopedSuffStatsBypass:
/// process-wide and nestable. While one is alive, DecisionTree caps its
/// depth at candidate_max_depth and Gbt caps rounds/depth at its
/// candidate budget — the cheap per-candidate refit the fs searches use
/// so that an O(d^2) wrapper doesn't pay d^2 full ensemble fits. The
/// final fit after the search runs outside any scope and gets the full
/// budget.
class ScopedTreeRefitBudget {
 public:
  explicit ScopedTreeRefitBudget(bool enable = true);
  ~ScopedTreeRefitBudget();

  ScopedTreeRefitBudget(const ScopedTreeRefitBudget&) = delete;
  ScopedTreeRefitBudget& operator=(const ScopedTreeRefitBudget&) = delete;

  /// True while any instance is alive anywhere in the process.
  static bool Active();

 private:
  bool enabled_;
};

}  // namespace hamlet

#endif  // HAMLET_ML_DECISION_TREE_H_
