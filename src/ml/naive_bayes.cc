#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "ml/suff_stats.h"

namespace hamlet {

NaiveBayes::NaiveBayes(double alpha) : alpha_(alpha) {
  HAMLET_CHECK(alpha > 0.0, "Laplace alpha must be > 0, got %f", alpha);
}

Status NaiveBayes::Train(const EncodedDataset& data,
                         const std::vector<uint32_t>& rows,
                         const std::vector<uint32_t>& features) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot train Naive Bayes on zero rows");
  }
  // If sufficient statistics for this (dataset, row subset) are already
  // cached, derive the model from the counts instead of rescanning; the
  // doubles are identical (same counts, same expressions).
  if (std::shared_ptr<const SuffStats> stats =
          SuffStatsCache::Global().Peek(data, rows)) {
    return TrainFromStats(*stats, features);
  }
  num_classes_ = data.num_classes();
  features_ = features;
  const std::vector<uint32_t>& y = data.labels();

  // Priors.
  std::vector<uint64_t> class_counts(num_classes_, 0);
  for (uint32_t r : rows) ++class_counts[y[r]];
  log_priors_.resize(num_classes_);
  const double n = static_cast<double>(rows.size());
  for (uint32_t c = 0; c < num_classes_; ++c) {
    log_priors_[c] = std::log(
        (static_cast<double>(class_counts[c]) + alpha_) /
        (n + alpha_ * num_classes_));
  }

  // Per-feature conditional likelihood tables.
  log_likelihoods_.assign(features_.size(), {});
  for (size_t jj = 0; jj < features_.size(); ++jj) {
    uint32_t j = features_[jj];
    const std::vector<uint32_t>& f = data.feature(j);
    const uint32_t card = data.meta(j).cardinality;
    std::vector<uint64_t> counts(static_cast<size_t>(card) * num_classes_, 0);
    for (uint32_t r : rows) {
      ++counts[static_cast<size_t>(f[r]) * num_classes_ + y[r]];
    }
    std::vector<double>& ll = log_likelihoods_[jj];
    ll.resize(counts.size());
    for (uint32_t c = 0; c < num_classes_; ++c) {
      const double denom = static_cast<double>(class_counts[c]) +
                           alpha_ * static_cast<double>(card);
      const double log_denom = std::log(denom);
      for (uint32_t v = 0; v < card; ++v) {
        size_t idx = static_cast<size_t>(v) * num_classes_ + c;
        ll[idx] = std::log(static_cast<double>(counts[idx]) + alpha_) -
                  log_denom;
      }
    }
  }
  return Status::OK();
}

Status NaiveBayes::TrainFromStats(const SuffStats& stats,
                                  const std::vector<uint32_t>& features) {
  if (stats.num_rows() == 0) {
    return Status::InvalidArgument("cannot train Naive Bayes on zero rows");
  }
  num_classes_ = stats.num_classes;
  features_ = features;

  log_priors_.resize(num_classes_);
  const double n = static_cast<double>(stats.num_rows());
  for (uint32_t c = 0; c < num_classes_; ++c) {
    log_priors_[c] = std::log(
        (static_cast<double>(stats.class_counts[c]) + alpha_) /
        (n + alpha_ * num_classes_));
  }

  log_likelihoods_.assign(features_.size(), {});
  for (size_t jj = 0; jj < features_.size(); ++jj) {
    uint32_t j = features_[jj];
    HAMLET_CHECK(j < stats.feature_counts.size(),
                 "feature %u not covered by the statistics", j);
    const std::vector<uint64_t>& counts = stats.feature_counts[j];
    const uint32_t card = stats.cardinalities[j];
    std::vector<double>& ll = log_likelihoods_[jj];
    ll.resize(counts.size());
    for (uint32_t c = 0; c < num_classes_; ++c) {
      const double denom = static_cast<double>(stats.class_counts[c]) +
                           alpha_ * static_cast<double>(card);
      const double log_denom = std::log(denom);
      for (uint32_t v = 0; v < card; ++v) {
        size_t idx = static_cast<size_t>(v) * num_classes_ + c;
        ll[idx] = std::log(static_cast<double>(counts[idx]) + alpha_) -
                  log_denom;
      }
    }
  }
  return Status::OK();
}

void NaiveBayes::LogScoresInto(const EncodedDataset& data, uint32_t row,
                               std::vector<double>* out) const {
  HAMLET_CHECK(num_classes_ > 0, "LogScores() before Train()");
  out->assign(log_priors_.begin(), log_priors_.end());
  std::vector<double>& scores = *out;
  for (size_t jj = 0; jj < features_.size(); ++jj) {
    uint32_t code = data.feature(features_[jj])[row];
    const std::vector<double>& ll = log_likelihoods_[jj];
    HAMLET_DCHECK(static_cast<size_t>(code) * num_classes_ < ll.size(),
                  "feature code out of trained domain");
    const double* cell = &ll[static_cast<size_t>(code) * num_classes_];
    for (uint32_t c = 0; c < num_classes_; ++c) scores[c] += cell[c];
  }
}

std::vector<double> NaiveBayes::LogScores(const EncodedDataset& data,
                                          uint32_t row) const {
  std::vector<double> scores;
  LogScoresInto(data, row, &scores);
  return scores;
}

std::vector<double> NaiveBayes::PredictProbabilities(
    const EncodedDataset& data, uint32_t row) const {
  std::vector<double> scores = LogScores(data, row);
  double mx = scores[0];
  for (double s : scores) mx = std::max(mx, s);
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

uint32_t NaiveBayes::PredictOne(const EncodedDataset& data,
                                uint32_t row) const {
  std::vector<double> scores = LogScores(data, row);
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return best;
}

std::vector<uint32_t> NaiveBayes::Predict(
    const EncodedDataset& data, const std::vector<uint32_t>& rows) const {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  // Hand-rolled loop rather than PredictOne to keep the scores vector and
  // the per-feature column pointers hot.
  std::vector<const uint32_t*> cols(features_.size());
  for (size_t jj = 0; jj < features_.size(); ++jj) {
    cols[jj] = data.feature(features_[jj]).data();
  }
  std::vector<double> scores(num_classes_);
  for (uint32_t r : rows) {
    scores = log_priors_;
    for (size_t jj = 0; jj < features_.size(); ++jj) {
      uint32_t code = cols[jj][r];
      const double* cell =
          &log_likelihoods_[jj][static_cast<size_t>(code) * num_classes_];
      for (uint32_t c = 0; c < num_classes_; ++c) scores[c] += cell[c];
    }
    uint32_t best = 0;
    for (uint32_t c = 1; c < num_classes_; ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    out.push_back(best);
  }
  return out;
}

uint32_t NaiveBayes::trained_cardinality(size_t jj) const {
  HAMLET_CHECK(jj < log_likelihoods_.size(), "feature slot out of range");
  if (num_classes_ == 0) return 0;
  return static_cast<uint32_t>(log_likelihoods_[jj].size() / num_classes_);
}

NaiveBayesParams NaiveBayes::ExportParams() const {
  NaiveBayesParams params;
  params.alpha = alpha_;
  params.num_classes = num_classes_;
  params.features = features_;
  params.log_priors = log_priors_;
  params.log_likelihoods = log_likelihoods_;
  return params;
}

Result<NaiveBayes> NaiveBayes::FromParams(NaiveBayesParams params) {
  if (!(params.alpha > 0.0)) {
    return Status::InvalidArgument("NaiveBayes alpha must be > 0");
  }
  if (params.num_classes == 0) {
    return Status::InvalidArgument("NaiveBayes needs at least one class");
  }
  if (params.log_priors.size() != params.num_classes) {
    return Status::InvalidArgument("NaiveBayes log-prior count mismatch");
  }
  if (params.log_likelihoods.size() != params.features.size()) {
    return Status::InvalidArgument(
        "NaiveBayes per-feature table count mismatch");
  }
  for (const std::vector<double>& ll : params.log_likelihoods) {
    if (ll.empty() || ll.size() % params.num_classes != 0) {
      return Status::InvalidArgument(
          "NaiveBayes log-likelihood table is not a whole number of "
          "categories");
    }
  }
  NaiveBayes model(params.alpha);
  model.num_classes_ = params.num_classes;
  model.features_ = std::move(params.features);
  model.log_priors_ = std::move(params.log_priors);
  model.log_likelihoods_ = std::move(params.log_likelihoods);
  return model;
}

ClassifierFactory MakeNaiveBayesFactory(double alpha) {
  return [alpha]() { return std::make_unique<NaiveBayes>(alpha); };
}

}  // namespace hamlet
