#ifndef HAMLET_ML_LOGISTIC_REGRESSION_H_
#define HAMLET_ML_LOGISTIC_REGRESSION_H_

/// \file logistic_regression.h
/// Multinomial (softmax) logistic regression over one-hot-encoded nominal
/// features, with the embedded feature selection of Section 5.3: an L1
/// penalty (solved by stochastic proximal gradient with Langford-style
/// truncated-gradient shrinkage — the standard solver family for sparse
/// one-hot data, where full-batch ISTA needs O(|D_FK|) epochs to move
/// rarely-active foreign-key dimensions) or an L2 ridge penalty applied
/// lazily to active dimensions.
///
/// Encoding follows Section 3.2's recoding: a feature F becomes
/// |D_F| − 1 indicator dimensions; the last category is the zero vector.
/// A bias term is always present, so the model's VC dimension matches
/// 1 + sum_F (|D_F| − 1) (see theory/vc_dimension.h).

#include <vector>

#include "ml/classifier.h"

namespace hamlet {

/// Which penalty the solver applies.
enum class Regularizer { kL1, kL2 };

/// Solver and penalty configuration.
struct LogisticRegressionOptions {
  Regularizer regularizer = Regularizer::kL2;
  /// Per-example penalty strength λ.
  double lambda = 1e-4;
  /// SGD passes over the training data.
  uint32_t max_epochs = 20;
  /// Initial step size; 0 picks the default 0.3 (decayed harmonically
  /// across epochs).
  double learning_rate = 0.0;
  /// Epoch-level early stop: finish when the largest bias update in an
  /// epoch falls below this.
  double tolerance = 1e-7;
};

/// The complete trained state of a LogisticRegression model, as plain
/// data — the serialization surface mirroring NaiveBayesParams. The
/// weight doubles pass through untouched so a round trip is bit-exact
/// (serve/serde.h).
struct LogisticRegressionParams {
  LogisticRegressionOptions options;
  uint32_t num_classes = 0;
  uint32_t num_dims = 0;             ///< One-hot dims without the bias.
  std::vector<uint32_t> features;    ///< Trained feature indices.
  std::vector<uint32_t> offsets;     ///< One-hot dim offset per feature.
  /// Flat [cls * (num_dims + 1) + dim]; the last dim of each class row
  /// is the bias.
  std::vector<double> weights;
};

/// Softmax regression classifier.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  Status Train(const EncodedDataset& data, const std::vector<uint32_t>& rows,
               const std::vector<uint32_t>& features) override;

  uint32_t PredictOne(const EncodedDataset& data, uint32_t row) const override;

  std::vector<uint32_t> Predict(
      const EncodedDataset& data,
      const std::vector<uint32_t>& rows) const override;

  std::string name() const override { return "logistic_regression"; }

  /// Features whose entire coefficient group is (numerically) zero after
  /// training — the set L1 implicitly dropped. Returns trained feature
  /// indices, not positions.
  std::vector<uint32_t> ZeroedFeatures(double eps = 1e-8) const;

  /// Trained feature indices whose group has at least one non-zero
  /// coefficient (the embedded method's "selected" set).
  std::vector<uint32_t> ActiveFeatures(double eps = 1e-8) const;

  /// Total one-hot dimensionality (without bias); for tests.
  uint32_t num_dims() const { return num_dims_; }

  /// Training-time cardinality of trained feature slot `jj` (its one-hot
  /// group width + 1). The serving layer checks block layouts against it
  /// before scoring, since the zero-vector convention keys off the
  /// block's cardinality.
  uint32_t trained_cardinality(size_t jj) const;

  /// Coefficient for (class, dim); for tests.
  double weight(uint32_t cls, uint32_t dim) const;

  /// Trained feature indices (empty before Train()).
  const std::vector<uint32_t>& trained_features() const { return features_; }

  /// Copies the trained state out as plain data.
  LogisticRegressionParams ExportParams() const;

  /// Rebuilds a model from exported state. Returns InvalidArgument when
  /// the params are inconsistent instead of crashing — the
  /// deserialization entry point.
  static Result<LogisticRegression> FromParams(LogisticRegressionParams
                                                   params);

 private:
  /// Active one-hot dims of `row` under the trained feature layout;
  /// appends dim indices to `out` (cleared first).
  void ActiveDims(const EncodedDataset& data, uint32_t row,
                  std::vector<uint32_t>* out) const;

  /// Class scores for a row.
  void Scores(const EncodedDataset& data, uint32_t row,
              std::vector<double>* scores) const;

  LogisticRegressionOptions options_;
  uint32_t num_classes_ = 0;
  uint32_t num_dims_ = 0;
  std::vector<uint32_t> features_;   // Trained feature indices.
  std::vector<uint32_t> offsets_;    // One-hot dim offset per feature.
  std::vector<double> weights_;      // [cls * (num_dims_+1) + dim]; last=bias.
};

/// Factory for the experiment drivers.
ClassifierFactory MakeLogisticRegressionFactory(
    LogisticRegressionOptions options = {});

}  // namespace hamlet

#endif  // HAMLET_ML_LOGISTIC_REGRESSION_H_
