#ifndef HAMLET_ML_SUFF_STATS_H_
#define HAMLET_ML_SUFF_STATS_H_

/// \file suff_stats.h
/// Sufficient statistics for categorical Naive Bayes and the filter
/// scores, factored out of the per-model training loop. One parallel pass
/// over a (dataset, row subset) pair computes the class counts and every
/// per-(feature, value, class) contingency count; after that, training a
/// Naive Bayes model on *any* feature subset — and scoring MI/IGR for any
/// feature — is pure table lookups with zero data scans. This is the
/// factorized-learning observation (Abo Khamis et al.; JoinBoost) applied
/// to the paper's wrapper searches, which train O(d^2) models that all
/// share one train split.
///
/// Determinism contract: counts are integers, so the parallel build is
/// bit-for-bit identical at any thread count, and every model or score
/// derived from the statistics equals its scan-path twin exactly (same
/// counts, same floating-point expressions). The cache can therefore
/// never change a result — only how fast it is computed.
///
/// NbSubsetEvaluator adds the second half of the fast path: it keeps
/// per-row, per-class base log-scores of the current subset on an
/// evaluation split, so scoring candidate S ∪ {f} is one O(rows × classes)
/// delta pass over feature f's log-likelihood column (see
/// docs/PERFORMANCE.md for the summation-order invariants).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "data/encoded_dataset.h"
#include "stats/metrics.h"

namespace hamlet {

/// Class counts plus per-feature contingency counts of one (dataset, row
/// subset) pair. Feature j's counts are stored flat as
/// [code * num_classes + y], the same layout NaiveBayes and
/// ContingencyTable use.
struct SuffStats {
  uint64_t dataset_id = 0;   ///< EncodedDataset::cache_id() of the source.
  /// 0 when the statistics were built over one materialized
  /// EncodedDataset; the FactorizedDataset remap fingerprint otherwise
  /// (ml/factorized.h), so factorized statistics can never be mistaken
  /// for entity-only ones that share dataset_id.
  uint64_t fingerprint = 0;
  uint32_t num_classes = 0;
  std::vector<uint32_t> rows;               ///< The row subset, as given.
  std::vector<uint64_t> class_counts;       ///< [y], |rows| total.
  std::vector<uint32_t> cardinalities;      ///< Per feature |D_F|.
  /// Per feature: flat [code * num_classes + y] joint counts.
  std::vector<std::vector<uint64_t>> feature_counts;

  uint64_t num_rows() const { return rows.size(); }
};

/// Composite cache identity of one statistics source. Materialized
/// datasets use {cache_id, 0, 0}. The factorized path sets all three
/// components — entity-side cache id, a hash of the attribute-table
/// identities, and the remap fingerprint — so a cached materialized entry
/// can never alias a normalized (S, R) pair even though both key on the
/// same entity dataset.
struct SuffStatsKey {
  uint64_t primary = 0;      ///< Entity-side EncodedDataset::cache_id().
  uint64_t secondary = 0;    ///< Attribute-side identity hash (0 = none).
  uint64_t fingerprint = 0;  ///< FK remap fingerprint (0 = materialized).

  bool operator==(const SuffStatsKey& other) const {
    return primary == other.primary && secondary == other.secondary &&
           fingerprint == other.fingerprint;
  }
};

/// One pass over `rows` of `data`: class counts serially (O(rows)), then
/// per-feature count tables in parallel (one feature per work item), so
/// the result is identical at any thread count.
SuffStats BuildSuffStats(const EncodedDataset& data,
                         const std::vector<uint32_t>& rows,
                         uint32_t num_threads = 0);

/// Process-wide LRU cache of sufficient statistics keyed by
/// (dataset cache_id, row-subset hash), with exact row-vector verification
/// on hit. GetOrBuild is what the feature selection searches and the
/// Monte Carlo inner loop call once per (dataset, train split); Peek is
/// the zero-build lookup NaiveBayes::Train uses so that *any* later
/// training on the same split becomes lookups.
///
/// Observability: builds record the `fs.stats_build_ns` histogram and the
/// `fs.cache_misses` counter; hits (GetOrBuild and Peek alike) bump
/// `fs.cache_hits`.
class SuffStatsCache {
 public:
  static SuffStatsCache& Global();

  /// Returns the cached statistics for (data, rows), building and
  /// inserting them on miss. Returns nullptr while a ScopedSuffStatsBypass
  /// is active (the escape hatch that forces every scan path).
  std::shared_ptr<const SuffStats> GetOrBuild(
      const EncodedDataset& data, const std::vector<uint32_t>& rows,
      uint32_t num_threads = 0);

  /// Returns the cached statistics or nullptr; never builds. nullptr while
  /// bypassed. Matches only materialized entries (secondary and
  /// fingerprint both 0), so a factorized build over the same entity
  /// dataset is never returned here.
  std::shared_ptr<const SuffStats> Peek(
      const EncodedDataset& data, const std::vector<uint32_t>& rows) const;

  /// Keyed variants for sources that are not a single EncodedDataset
  /// (ml/factorized.h). GetOrBuildKeyed calls `build` on miss — outside
  /// the lock — and records the same hit/miss/build-latency probes as
  /// GetOrBuild. Both return nullptr while bypassed.
  std::shared_ptr<const SuffStats> GetOrBuildKeyed(
      const SuffStatsKey& key, const std::vector<uint32_t>& rows,
      const std::function<std::shared_ptr<const SuffStats>()>& build);
  std::shared_ptr<const SuffStats> PeekKeyed(
      const SuffStatsKey& key, const std::vector<uint32_t>& rows) const;

  /// Drops every entry (tests; also frees memory between workloads).
  void Clear();

  /// Maximum retained entries (least-recently-used eviction). Default 16.
  void set_capacity(size_t capacity);

  /// True while a ScopedSuffStatsBypass is alive anywhere in the process.
  static bool Bypassed();

 private:
  SuffStatsCache() = default;

  struct Entry {
    SuffStatsKey key;
    uint64_t rows_hash = 0;
    uint64_t last_used = 0;
    std::shared_ptr<const SuffStats> stats;
  };

  std::shared_ptr<const SuffStats> FindLocked(
      const SuffStatsKey& key, uint64_t rows_hash,
      const std::vector<uint32_t>& rows) const;

  mutable std::mutex mu_;
  mutable uint64_t tick_ = 0;
  size_t capacity_ = 16;
  mutable std::vector<Entry> entries_;
};

/// RAII escape hatch: while alive (and constructed with enable=true),
/// every SuffStatsCache lookup misses and nothing is cached, so all
/// training and scoring takes the original scan paths. Process-wide and
/// nestable; used by PipelineConfig::force_scan_eval and the
/// cached-vs-scan equivalence tests.
class ScopedSuffStatsBypass {
 public:
  explicit ScopedSuffStatsBypass(bool enable = true);
  ~ScopedSuffStatsBypass();

  ScopedSuffStatsBypass(const ScopedSuffStatsBypass&) = delete;
  ScopedSuffStatsBypass& operator=(const ScopedSuffStatsBypass&) = delete;

 private:
  bool enabled_;
};

/// Incremental Naive Bayes subset scorer over a fixed evaluation split.
///
/// Construction derives, from the sufficient statistics, the smoothed log
/// priors and one log-likelihood table per candidate feature — the exact
/// doubles NaiveBayes::Train would produce. Scoring then never touches
/// the training rows again:
///
///   - EvalSubset(S): per evaluation row, sum the priors and the tables of
///     S *in subset order* (the invariant that makes results bit-identical
///     to the scan path, which also sums in subset order);
///   - ResetBase/AddToBase/RemoveFromBase maintain per-row base scores of
///     the current subset;
///   - EvalBasePlus(f) / EvalBaseMinus(f) score S ∪ {f} / S \ {f} with a
///     single delta pass, O(eval_rows × classes).
///
/// Const Eval* methods are safe to call concurrently (they share only
/// read-only state plus thread-local scratch); the base mutators are not.
class NbSubsetEvaluator {
 public:
  /// Fills `out` with candidate feature `j`'s code at every evaluation
  /// row, in evaluation-row order. The EncodedDataset constructor gathers
  /// straight from the code columns; the factorized path gathers through
  /// the FK -> R hop (ml/factorized.h). Either way the evaluator's hot
  /// loops read the same codes a materialized gather would produce.
  using CodeGather = std::function<void(uint32_t, std::vector<uint32_t>*)>;

  /// `candidates` limits which features get log-likelihood tables (and
  /// thus may appear in Eval calls). `alpha` is the NB Laplace smoothing
  /// pseudo-count and must match the factory's.
  NbSubsetEvaluator(const EncodedDataset& data,
                    std::shared_ptr<const SuffStats> stats,
                    std::vector<uint32_t> eval_rows, ErrorMetric metric,
                    double alpha, const std::vector<uint32_t>& candidates,
                    uint32_t num_threads = 0);

  /// Core constructor from pre-gathered parts; no dataset needed.
  /// `eval_labels[i]` is the truth label of evaluation row i and
  /// `gather_codes` supplies each candidate's evaluation codes (called
  /// only during construction). The stats and the gather must describe
  /// the same feature space; with identical inputs every Eval result is
  /// bit-identical to the EncodedDataset constructor's.
  NbSubsetEvaluator(std::shared_ptr<const SuffStats> stats,
                    std::vector<uint32_t> eval_labels, ErrorMetric metric,
                    double alpha, const std::vector<uint32_t>& candidates,
                    const CodeGather& gather_codes, uint32_t num_threads = 0);

  /// Error of an arbitrary subset (features summed in the given order).
  double EvalSubset(const std::vector<uint32_t>& features) const;

  /// Recomputes the base scores for `features` from scratch (in order).
  void ResetBase(const std::vector<uint32_t>& features);

  /// base += / -= feature f's log-likelihood column.
  void AddToBase(uint32_t feature);
  void RemoveFromBase(uint32_t feature);

  /// Error of the current base subset.
  double EvalBase() const;

  /// Error of base ∪ {f}: one delta pass, f's contribution summed last —
  /// exactly the scan path's order for forward selection.
  double EvalBasePlus(uint32_t feature) const;

  /// Error of base \ {f} via subtraction. The subtraction re-associates
  /// the floating-point sum, so this matches a scan-path retrain to ~1e-15
  /// per score (not bit-exactly); see docs/PERFORMANCE.md.
  double EvalBaseMinus(uint32_t feature) const;

  /// DFS building blocks for the exhaustive lattice walk: `out` holds
  /// per-row, per-class scores flat as [i * num_classes + c].
  void InitScores(std::vector<double>* out) const;  ///< Priors per row.
  void AccumulateFeature(uint32_t feature, const std::vector<double>& in,
                         std::vector<double>* out) const;  ///< out = in + ll_f.
  double ErrorFromScores(const std::vector<double>& scores) const;

  uint32_t num_eval_rows() const {
    return static_cast<uint32_t>(eval_labels_.size());
  }
  uint32_t num_classes() const { return num_classes_; }

  /// Exposed for the equivalence tests.
  const std::vector<double>& log_priors() const { return log_priors_; }
  const std::vector<double>& feature_log_likelihood(uint32_t feature) const {
    return log_likelihoods_[feature];
  }

 private:
  double ErrorOf(const std::vector<uint32_t>& predicted) const;

  std::shared_ptr<const SuffStats> stats_;
  std::vector<uint32_t> eval_labels_;
  ErrorMetric metric_;
  uint32_t num_classes_ = 0;
  std::vector<double> log_priors_;  // [c]
  /// Indexed by feature id; empty unless the feature was a candidate.
  std::vector<std::vector<double>> log_likelihoods_;
  /// Per candidate feature: its codes at the evaluation rows (same
  /// indexing as log_likelihoods_). Pre-gathering decouples the hot loops
  /// from any dataset object — the factorized path supplies codes through
  /// the FK hop — and the loops read codes sequentially either way.
  std::vector<std::vector<uint32_t>> eval_codes_;
  /// Current base subset scores, flat [i * num_classes + c].
  std::vector<double> base_;
};

}  // namespace hamlet

#endif  // HAMLET_ML_SUFF_STATS_H_
