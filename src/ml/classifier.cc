#include "ml/classifier.h"

namespace hamlet {

std::vector<uint32_t> Classifier::Predict(
    const EncodedDataset& data, const std::vector<uint32_t>& rows) const {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(PredictOne(data, r));
  return out;
}

}  // namespace hamlet
