#ifndef HAMLET_ML_TAN_H_
#define HAMLET_ML_TAN_H_

/// \file tan.h
/// Tree-Augmented Naive Bayes (Friedman, Geiger & Goldszmidt 1997), the
/// model of the paper's Appendix E. TAN learns a maximum spanning tree
/// over features weighted by conditional mutual information I(Xi;Xj|Y)
/// and augments NB with one parent per feature.
///
/// The appendix's point reproduces here: under the FD FK → X_R every
/// foreign feature is a deterministic function of FK, so
/// I(F;FK|Y) = H(F|Y) is (near-)maximal and the learned tree hangs all of
/// X_R off FK, where the features contribute only Kronecker-delta
/// conditionals P(F|FK) that carry no extra signal about Y.

#include <vector>

#include "ml/classifier.h"

namespace hamlet {

/// TAN classifier with Laplace-smoothed CPTs.
class TreeAugmentedNaiveBayes : public Classifier {
 public:
  explicit TreeAugmentedNaiveBayes(double alpha = 1.0);

  Status Train(const EncodedDataset& data, const std::vector<uint32_t>& rows,
               const std::vector<uint32_t>& features) override;

  uint32_t PredictOne(const EncodedDataset& data, uint32_t row) const override;

  std::string name() const override { return "tan"; }

  /// parent(j) as a position into the trained feature list, or -1 for the
  /// root / featureless cases. Exposed so tests can verify the FD-induced
  /// tree shape (all X_R hanging off FK).
  const std::vector<int32_t>& parents() const { return parents_; }

  /// The conditional mutual information I(Xi;Xj|Y) used for edge (i,j)
  /// during training (positions into the trained feature list).
  double EdgeWeight(uint32_t i, uint32_t j) const;

 private:
  double alpha_;
  uint32_t num_classes_ = 0;
  std::vector<uint32_t> features_;
  std::vector<int32_t> parents_;          // Position of parent, -1 = root.
  std::vector<double> log_priors_;
  // Root/orphan features: flat [code * K + y]; child features: flat
  // [ (code * parent_card + parent_code) * K + y ].
  std::vector<std::vector<double>> log_cpts_;
  std::vector<double> edge_weights_;      // Dense d x d CMI matrix.
  uint32_t num_features_trained_ = 0;
};

/// Factory for the experiment drivers.
ClassifierFactory MakeTanFactory(double alpha = 1.0);

}  // namespace hamlet

#endif  // HAMLET_ML_TAN_H_
