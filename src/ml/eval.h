#ifndef HAMLET_ML_EVAL_H_
#define HAMLET_ML_EVAL_H_

/// \file eval.h
/// Train-and-score plumbing shared by the wrapper searches, filter-k
/// tuning, and the end-to-end experiment drivers.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/encoded_dataset.h"
#include "data/splits.h"
#include "ml/classifier.h"
#include "stats/metrics.h"

namespace hamlet {

/// Trains a fresh classifier from `factory` on (`train_rows`, `features`)
/// and returns its error on `eval_rows` under `metric`.
Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const EncodedDataset& data,
                             const std::vector<uint32_t>& train_rows,
                             const std::vector<uint32_t>& eval_rows,
                             const std::vector<uint32_t>& features,
                             ErrorMetric metric);

/// Variant taking the evaluation labels pre-gathered (`eval_labels[i]`
/// must be the label of `eval_rows[i]`). Hot loops that score hundreds of
/// candidates against one split gather once instead of per call.
Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const EncodedDataset& data,
                             const std::vector<uint32_t>& train_rows,
                             const std::vector<uint32_t>& eval_rows,
                             const std::vector<uint32_t>& eval_labels,
                             const std::vector<uint32_t>& features,
                             ErrorMetric metric);

/// Trains on `train_rows` and returns the trained model plus its error on
/// `eval_rows` (used when the caller also needs predictions).
struct ScoredModel {
  std::unique_ptr<Classifier> model;
  double error = 0.0;
};
Result<ScoredModel> TrainAndScoreModel(const ClassifierFactory& factory,
                                       const EncodedDataset& data,
                                       const std::vector<uint32_t>& train_rows,
                                       const std::vector<uint32_t>& eval_rows,
                                       const std::vector<uint32_t>& features,
                                       ErrorMetric metric);

/// Gathers truth labels for rows (convenience for metric calls).
std::vector<uint32_t> GatherLabels(const EncodedDataset& data,
                                   const std::vector<uint32_t>& rows);

/// K-fold cross-validated error (Section 2.2's alternative to holdout
/// validation): trains one fresh model per fold on the out-of-fold rows
/// and averages the held-out errors, weighted by fold size.
Result<double> CrossValidatedError(const ClassifierFactory& factory,
                                   const EncodedDataset& data,
                                   const KFoldSplit& folds,
                                   const std::vector<uint32_t>& features,
                                   ErrorMetric metric);

}  // namespace hamlet

#endif  // HAMLET_ML_EVAL_H_
