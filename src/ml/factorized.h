#ifndef HAMLET_ML_FACTORIZED_H_
#define HAMLET_ML_FACTORIZED_H_

/// \file factorized.h
/// Factorized learning over the normalized pair (S, R): train Naive Bayes
/// and score the MI/IGR filters without ever materializing the KFK join
/// T = π(R ⋈ S).
///
/// The observation (Abo Khamis et al.'s sparse-tensor factorization;
/// JoinBoost): every statistic Naive Bayes or a filter needs from a
/// foreign feature X_R is a contingency count, and the join only
/// *replicates* R rows along S's FK column. So one O(|S|) pass groups
/// class counts per FK code (GroupCountByCode on the entity side), and
/// one O(|R|) scatter per foreign feature pushes those group counts
/// through the FK -> R row index (BuildFkRowIndex — the same index
/// KfkJoin probes). Total work is O(|S| + |R| · d_R) instead of
/// O(|S| · d_R), and peak memory never includes the joined table's
/// gathered columns.
///
/// Determinism/equivalence contract: BuildFactorizedSuffStats reorders
/// only *integer additions* relative to BuildSuffStats on the
/// materialized join, so the resulting SuffStats is bit-identical — same
/// counts, same layout, same feature order — at any thread count. Every
/// double derived downstream (NaiveBayes::TrainFromStats, the
/// NbSubsetEvaluator tables, MI/IGR scores) therefore equals its
/// materialized twin bit-for-bit; tests/factorized_equivalence_test.cc
/// (ctest label `factorized`) enforces this for every bundled dataset,
/// selector, and thread count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/encoded_dataset.h"
#include "ml/suff_stats.h"
#include "relational/catalog.h"
#include "stats/metrics.h"

namespace hamlet {

/// One factorized KFK relationship: everything needed to push entity-side
/// group counts through S.FK -> R without materializing the join.
struct FactorizedRelation {
  std::string fk_column;   ///< FK column name in S.
  std::string table_name;  ///< Referenced attribute table R.
  /// Feature index (in the factorized feature space) of the FK column
  /// itself, or -1 when the FK is open-domain and thus not a feature.
  int32_t fk_feature = -1;
  /// FK code -> R row holding that RID (kNoFkRow when unreferenced);
  /// length is the FK domain cardinality.
  std::vector<uint32_t> fk_to_rrow;
  /// S's FK codes, stored here only when the FK is not an entity feature
  /// (open domain); otherwise read via the entity dataset.
  std::vector<uint32_t> stored_fk_codes;
  /// R's usable feature columns as raw code vectors over R rows — the
  /// same columns, in the same order, KfkJoin would append and
  /// FromTableAuto would keep.
  std::vector<std::vector<uint32_t>> columns;
  std::vector<FeatureMeta> metas;  ///< Parallel to `columns`.
  /// Index of this relation's first feature in the factorized space.
  uint32_t first_feature = 0;
};

/// The factorized view of a NormalizedDataset: S's usable columns encoded
/// as an EncodedDataset plus, per factorized FK, the (small) R-side
/// feature columns and the FK -> R row index.
///
/// The feature space — names, order, cardinalities — is exactly that of
/// EncodedDataset::FromTableAuto(dataset.JoinSubset(fks)): S's features
/// and closed-domain FKs in schema order, then each factorized relation's
/// R features in the given FK order. Feature indices are therefore
/// interchangeable between the two paths, which is what lets the
/// selectors and the equivalence tests compare subsets index-for-index.
class FactorizedDataset {
 public:
  FactorizedDataset() = default;

  /// Builds the view over the KFK links named by `fks_to_factorize`
  /// (order significant — it fixes the foreign features' order, so pass
  /// the same order JoinSubset would receive). Validation matches
  /// KfkJoin: duplicate RIDs, referential-integrity violations (lowest
  /// offending S row named), and column-name collisions all fail with the
  /// same errors the materialized join would raise.
  static Result<FactorizedDataset> Make(
      const NormalizedDataset& dataset,
      const std::vector<std::string>& fks_to_factorize);

  /// Number of examples (= |S| = rows of the never-materialized join).
  uint32_t num_rows() const { return entity_.num_rows(); }

  /// Total features: entity-side + all factorized R features.
  uint32_t num_features() const {
    return static_cast<uint32_t>(metas_.size());
  }

  uint32_t num_classes() const { return entity_.num_classes(); }
  const std::vector<uint32_t>& labels() const { return entity_.labels(); }

  const FeatureMeta& meta(uint32_t j) const;
  const std::vector<FeatureMeta>& metas() const { return metas_; }

  /// Names of the features at `indices`, in order.
  std::vector<std::string> FeatureNames(
      const std::vector<uint32_t>& indices) const;

  /// All feature indices [0, num_features()).
  std::vector<uint32_t> AllFeatureIndices() const;

  /// True iff feature j lives in S (false: it is a foreign feature read
  /// through an FK hop).
  bool is_entity_feature(uint32_t j) const;

  /// Codes of feature j at the given S rows: a plain gather for entity
  /// features, one FK -> R hop per row for foreign ones. Either way the
  /// output equals the materialized join's column gathered at `rows`.
  void GatherCodes(uint32_t j, const std::vector<uint32_t>& rows,
                   std::vector<uint32_t>* out) const;

  /// The entity-side encoded dataset (S's usable columns).
  const EncodedDataset& entity() const { return entity_; }

  const std::vector<FactorizedRelation>& relations() const {
    return relations_;
  }

  /// S's FK codes for relation k (entity feature column or stored copy).
  const std::vector<uint32_t>& fk_codes(size_t k) const;

  /// Composite cache identity: {entity cache id, attribute-side hash,
  /// remap fingerprint}. With zero factorized relations this degenerates
  /// to the entity's materialized key — correctly, since the statistics
  /// coincide.
  const SuffStatsKey& cache_key() const { return key_; }

 private:
  /// Where feature j's codes live: relation < 0 -> entity_.feature(j);
  /// otherwise relations_[relation].columns[column].
  struct FeatureRef {
    int32_t relation = -1;
    uint32_t column = 0;
  };

  EncodedDataset entity_;
  std::vector<FactorizedRelation> relations_;
  std::vector<FeatureRef> refs_;   // Parallel to metas_.
  std::vector<FeatureMeta> metas_;
  SuffStatsKey key_;
};

/// Sufficient statistics of (data, rows) computed without materializing
/// the join: class counts serially, one GroupCountByCode pass per
/// relation, then per-feature tables in parallel (one feature per work
/// item — the BuildSuffStats sharding contract). Foreign features scatter
/// the group counts through fk_to_rrow in ascending-FK-code order; all
/// reordering is over integer additions, so the result is bit-identical
/// to BuildSuffStats(FromTableAuto(JoinSubset(...)), rows) at any thread
/// count. Records the fs.factorized_builds counter and the
/// fs.factorized_group_ns / fs.factorized_scatter_ns histograms.
SuffStats BuildFactorizedSuffStats(const FactorizedDataset& data,
                                   const std::vector<uint32_t>& rows,
                                   uint32_t num_threads = 0);

/// Cached variant through SuffStatsCache::GetOrBuildKeyed under
/// data.cache_key(); nullptr while a ScopedSuffStatsBypass is active.
std::shared_ptr<const SuffStats> GetOrBuildFactorizedSuffStats(
    const FactorizedDataset& data, const std::vector<uint32_t>& rows,
    uint32_t num_threads = 0);

/// An NbSubsetEvaluator whose evaluation codes are gathered through the
/// FK hops — identical inputs to the materialized evaluator, so every
/// Eval result is bit-identical.
std::unique_ptr<NbSubsetEvaluator> MakeFactorizedNbEvaluator(
    const FactorizedDataset& data, std::shared_ptr<const SuffStats> stats,
    const std::vector<uint32_t>& eval_rows, ErrorMetric metric, double alpha,
    const std::vector<uint32_t>& candidates, uint32_t num_threads = 0);

}  // namespace hamlet

#endif  // HAMLET_ML_FACTORIZED_H_
