#include "ml/eval.h"

namespace hamlet {

std::vector<uint32_t> GatherLabels(const EncodedDataset& data,
                                   const std::vector<uint32_t>& rows) {
  std::vector<uint32_t> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(data.labels()[r]);
  return out;
}

Result<ScoredModel> TrainAndScoreModel(const ClassifierFactory& factory,
                                       const EncodedDataset& data,
                                       const std::vector<uint32_t>& train_rows,
                                       const std::vector<uint32_t>& eval_rows,
                                       const std::vector<uint32_t>& features,
                                       ErrorMetric metric) {
  ScoredModel out;
  out.model = factory();
  HAMLET_RETURN_NOT_OK(out.model->Train(data, train_rows, features));
  std::vector<uint32_t> predicted = out.model->Predict(data, eval_rows);
  out.error = ComputeError(metric, GatherLabels(data, eval_rows), predicted);
  return out;
}

Result<double> CrossValidatedError(const ClassifierFactory& factory,
                                   const EncodedDataset& data,
                                   const KFoldSplit& folds,
                                   const std::vector<uint32_t>& features,
                                   ErrorMetric metric) {
  if (folds.num_folds() < 2) {
    return Status::InvalidArgument("cross-validation needs >= 2 folds");
  }
  double weighted_error = 0.0;
  uint64_t total = 0;
  for (uint32_t fold = 0; fold < folds.num_folds(); ++fold) {
    const std::vector<uint32_t>& held_out = folds.folds[fold];
    if (held_out.empty()) continue;
    std::vector<uint32_t> train = folds.TrainFor(fold);
    HAMLET_ASSIGN_OR_RETURN(
        double err,
        TrainAndScore(factory, data, train, held_out, features, metric));
    weighted_error += err * static_cast<double>(held_out.size());
    total += held_out.size();
  }
  if (total == 0) {
    return Status::InvalidArgument("all folds empty");
  }
  return weighted_error / static_cast<double>(total);
}

Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const EncodedDataset& data,
                             const std::vector<uint32_t>& train_rows,
                             const std::vector<uint32_t>& eval_rows,
                             const std::vector<uint32_t>& features,
                             ErrorMetric metric) {
  HAMLET_ASSIGN_OR_RETURN(
      ScoredModel sm, TrainAndScoreModel(factory, data, train_rows, eval_rows,
                                         features, metric));
  return sm.error;
}

Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const EncodedDataset& data,
                             const std::vector<uint32_t>& train_rows,
                             const std::vector<uint32_t>& eval_rows,
                             const std::vector<uint32_t>& eval_labels,
                             const std::vector<uint32_t>& features,
                             ErrorMetric metric) {
  HAMLET_DCHECK(eval_labels.size() == eval_rows.size(),
                "eval_labels/eval_rows size mismatch");
  std::unique_ptr<Classifier> model = factory();
  HAMLET_RETURN_NOT_OK(model->Train(data, train_rows, features));
  std::vector<uint32_t> predicted = model->Predict(data, eval_rows);
  return ComputeError(metric, eval_labels, predicted);
}

}  // namespace hamlet
