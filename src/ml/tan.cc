#include "ml/tan.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace hamlet {

namespace {

// Pairwise conditional mutual information I(Xi;Xj|Y) in bits, computed
// from sparse joint counts so that large (e.g., FK x FK) domains never
// materialize a dense cube.
double ConditionalMutualInformation(const std::vector<uint32_t>& xi,
                                    const std::vector<uint32_t>& xj,
                                    const std::vector<uint32_t>& y,
                                    const std::vector<uint32_t>& rows,
                                    uint32_t card_j, uint32_t num_classes) {
  std::unordered_map<uint64_t, uint32_t> joint;   // (xi,xj,y) counts.
  std::unordered_map<uint64_t, uint32_t> iy;      // (xi,y) counts.
  std::unordered_map<uint64_t, uint32_t> jy;      // (xj,y) counts.
  std::vector<uint32_t> yc(num_classes, 0);
  joint.reserve(rows.size());
  for (uint32_t r : rows) {
    uint64_t a = xi[r], b = xj[r], c = y[r];
    ++joint[(a * card_j + b) * num_classes + c];
    ++iy[a * num_classes + c];
    ++jy[b * num_classes + c];
    ++yc[c];
  }
  const double n = static_cast<double>(rows.size());
  double cmi = 0.0;
  for (const auto& [key, cnt] : joint) {
    uint32_t c = static_cast<uint32_t>(key % num_classes);
    uint64_t ab = key / num_classes;
    uint64_t a = ab / card_j;
    uint64_t b = ab % card_j;
    double p_abc = cnt / n;
    double p_c = yc[c] / n;
    double p_ac = iy.at(a * num_classes + c) / n;
    double p_bc = jy.at(b * num_classes + c) / n;
    cmi += p_abc * std::log2((p_abc * p_c) / (p_ac * p_bc));
  }
  return cmi < 0.0 ? 0.0 : cmi;
}

}  // namespace

TreeAugmentedNaiveBayes::TreeAugmentedNaiveBayes(double alpha)
    : alpha_(alpha) {
  HAMLET_CHECK(alpha > 0.0, "Laplace alpha must be > 0, got %f", alpha);
}

Status TreeAugmentedNaiveBayes::Train(const EncodedDataset& data,
                                      const std::vector<uint32_t>& rows,
                                      const std::vector<uint32_t>& features) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot train TAN on zero rows");
  }
  num_classes_ = data.num_classes();
  features_ = features;
  const uint32_t d = static_cast<uint32_t>(features_.size());
  num_features_trained_ = d;
  const std::vector<uint32_t>& y = data.labels();

  // Priors.
  std::vector<uint64_t> class_counts(num_classes_, 0);
  for (uint32_t r : rows) ++class_counts[y[r]];
  log_priors_.resize(num_classes_);
  const double n = static_cast<double>(rows.size());
  for (uint32_t c = 0; c < num_classes_; ++c) {
    log_priors_[c] =
        std::log((static_cast<double>(class_counts[c]) + alpha_) /
                 (n + alpha_ * num_classes_));
  }

  // Pairwise CMI matrix.
  edge_weights_.assign(static_cast<size_t>(d) * d, 0.0);
  for (uint32_t i = 0; i < d; ++i) {
    for (uint32_t j = i + 1; j < d; ++j) {
      double w = ConditionalMutualInformation(
          data.feature(features_[i]), data.feature(features_[j]), y, rows,
          data.meta(features_[j]).cardinality, num_classes_);
      edge_weights_[static_cast<size_t>(i) * d + j] = w;
      edge_weights_[static_cast<size_t>(j) * d + i] = w;
    }
  }

  // Maximum spanning tree (Prim), rooted at feature position 0.
  parents_.assign(d, -1);
  if (d > 1) {
    std::vector<bool> in_tree(d, false);
    std::vector<double> best_w(d, -1.0);
    std::vector<int32_t> best_p(d, -1);
    in_tree[0] = true;
    for (uint32_t j = 1; j < d; ++j) {
      best_w[j] = edge_weights_[j];  // row 0
      best_p[j] = 0;
    }
    for (uint32_t step = 1; step < d; ++step) {
      int32_t pick = -1;
      double pick_w = -1.0;
      for (uint32_t j = 0; j < d; ++j) {
        if (!in_tree[j] && best_w[j] > pick_w) {
          pick_w = best_w[j];
          pick = static_cast<int32_t>(j);
        }
      }
      HAMLET_CHECK(pick >= 0, "MST construction failed");
      in_tree[pick] = true;
      parents_[pick] = best_p[pick];
      for (uint32_t j = 0; j < d; ++j) {
        if (in_tree[j]) continue;
        double w = edge_weights_[static_cast<size_t>(pick) * d + j];
        if (w > best_w[j]) {
          best_w[j] = w;
          best_p[j] = pick;
        }
      }
    }
  }

  // CPTs. Root/orphans: P(Xj|Y). Children: P(Xj | parent, Y).
  log_cpts_.assign(d, {});
  for (uint32_t jj = 0; jj < d; ++jj) {
    const std::vector<uint32_t>& f = data.feature(features_[jj]);
    const uint32_t card = data.meta(features_[jj]).cardinality;
    if (parents_[jj] < 0) {
      std::vector<uint64_t> counts(static_cast<size_t>(card) * num_classes_,
                                   0);
      for (uint32_t r : rows) {
        ++counts[static_cast<size_t>(f[r]) * num_classes_ + y[r]];
      }
      std::vector<double>& cpt = log_cpts_[jj];
      cpt.resize(counts.size());
      for (uint32_t c = 0; c < num_classes_; ++c) {
        double denom = static_cast<double>(class_counts[c]) +
                       alpha_ * static_cast<double>(card);
        for (uint32_t v = 0; v < card; ++v) {
          size_t idx = static_cast<size_t>(v) * num_classes_ + c;
          cpt[idx] =
              std::log((static_cast<double>(counts[idx]) + alpha_) / denom);
        }
      }
    } else {
      const uint32_t pp = static_cast<uint32_t>(parents_[jj]);
      const std::vector<uint32_t>& pf = data.feature(features_[pp]);
      const uint32_t pcard = data.meta(features_[pp]).cardinality;
      const size_t table_size =
          static_cast<size_t>(card) * pcard * num_classes_;
      std::vector<uint64_t> counts(table_size, 0);
      std::vector<uint64_t> parent_counts(
          static_cast<size_t>(pcard) * num_classes_, 0);
      for (uint32_t r : rows) {
        size_t idx =
            (static_cast<size_t>(f[r]) * pcard + pf[r]) * num_classes_ + y[r];
        ++counts[idx];
        ++parent_counts[static_cast<size_t>(pf[r]) * num_classes_ + y[r]];
      }
      std::vector<double>& cpt = log_cpts_[jj];
      cpt.resize(table_size);
      for (uint32_t v = 0; v < card; ++v) {
        for (uint32_t pv = 0; pv < pcard; ++pv) {
          for (uint32_t c = 0; c < num_classes_; ++c) {
            size_t idx =
                (static_cast<size_t>(v) * pcard + pv) * num_classes_ + c;
            double denom =
                static_cast<double>(
                    parent_counts[static_cast<size_t>(pv) * num_classes_ +
                                  c]) +
                alpha_ * static_cast<double>(card);
            cpt[idx] = std::log(
                (static_cast<double>(counts[idx]) + alpha_) / denom);
          }
        }
      }
    }
  }
  return Status::OK();
}

uint32_t TreeAugmentedNaiveBayes::PredictOne(const EncodedDataset& data,
                                             uint32_t row) const {
  HAMLET_CHECK(num_classes_ > 0, "PredictOne() before Train()");
  std::vector<double> scores = log_priors_;
  for (uint32_t jj = 0; jj < features_.size(); ++jj) {
    uint32_t code = data.feature(features_[jj])[row];
    const std::vector<double>& cpt = log_cpts_[jj];
    if (parents_[jj] < 0) {
      const double* cell = &cpt[static_cast<size_t>(code) * num_classes_];
      for (uint32_t c = 0; c < num_classes_; ++c) scores[c] += cell[c];
    } else {
      uint32_t pp = static_cast<uint32_t>(parents_[jj]);
      uint32_t pcode = data.feature(features_[pp])[row];
      uint32_t pcard = data.meta(features_[pp]).cardinality;
      const double* cell =
          &cpt[(static_cast<size_t>(code) * pcard + pcode) * num_classes_];
      for (uint32_t c = 0; c < num_classes_; ++c) scores[c] += cell[c];
    }
  }
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return best;
}

double TreeAugmentedNaiveBayes::EdgeWeight(uint32_t i, uint32_t j) const {
  HAMLET_CHECK(i < num_features_trained_ && j < num_features_trained_,
               "edge (%u,%u) out of range", i, j);
  return edge_weights_[static_cast<size_t>(i) * num_features_trained_ + j];
}

ClassifierFactory MakeTanFactory(double alpha) {
  return [alpha]() {
    return std::make_unique<TreeAugmentedNaiveBayes>(alpha);
  };
}

}  // namespace hamlet
