#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/string_util.h"
#include "ml/decision_tree.h"
#include "ml/factorized.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hamlet {

namespace {

obs::Histogram& GbtTrainHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("gbt.train_ns");
  return histogram;
}

obs::Counter& GbtTrainsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gbt.trains");
  return counter;
}

obs::Counter& GbtTreesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gbt.trees");
  return counter;
}

/// One regression-tree node's pending work: its rows plus per-slot
/// gradient/hessian/count histograms and its G/H totals.
struct RegNodeWork {
  std::vector<uint32_t> items;
  std::vector<std::vector<double>> gh;    // Per slot, [code * 2 + {g, h}].
  std::vector<std::vector<uint64_t>> cnt; // Per slot, [code].
  double g_total = 0.0;
  double h_total = 0.0;
  uint32_t depth = 0;
};

/// Grows one flat pre-order regression tree for class column `k` and
/// applies each finalized leaf's value to the boosted score matrix. Same
/// parallel-histogram + subtraction-trick shape as the classification
/// TreeBuilder (ml/decision_tree.cc); all double accumulations are pinned
/// to ascending item order inside one work item per slot.
struct RegTreeBuilder {
  const GbtOptions& options;
  const std::vector<std::vector<uint32_t>>& codes;  // Per slot, node-local.
  const std::vector<uint32_t>& cards;
  const std::vector<double>& g;  // Flat [i * num_classes + k].
  const std::vector<double>& h;
  uint32_t k;
  uint32_t num_classes;
  uint32_t max_depth;
  std::vector<double>* scores;   // Flat [i * num_classes + k], updated.
  GbtTree* tree;

  void BuildHistograms(const std::vector<uint32_t>& items,
                       std::vector<std::vector<double>>* gh,
                       std::vector<std::vector<uint64_t>>* cnt) const {
    const uint32_t d = static_cast<uint32_t>(codes.size());
    gh->resize(d);
    cnt->resize(d);
    ParallelFor(d, options.num_threads, [&](uint32_t jj) {
      std::vector<double>& gj = (*gh)[jj];
      std::vector<uint64_t>& cj = (*cnt)[jj];
      gj.assign(static_cast<size_t>(cards[jj]) * 2, 0.0);
      cj.assign(cards[jj], 0);
      const std::vector<uint32_t>& col = codes[jj];
      for (uint32_t i : items) {
        const size_t c = col[i];
        gj[c * 2] += g[static_cast<size_t>(i) * num_classes + k];
        gj[c * 2 + 1] += h[static_cast<size_t>(i) * num_classes + k];
        ++cj[c];
      }
    });
  }

  int32_t Grow(RegNodeWork&& w) {
    const int32_t idx = static_cast<int32_t>(tree->split_slot.size());
    tree->split_slot.push_back(-1);
    tree->split_code.push_back(0);
    tree->left.push_back(-1);
    tree->right.push_back(-1);
    const double hl = w.h_total + options.lambda;
    const double value =
        hl > 0.0 ? -(w.g_total / hl) * options.learning_rate : 0.0;
    tree->value.push_back(value);

    const uint64_t n_node = w.items.size();
    int32_t pick = -1;
    uint32_t pick_code = 0;
    if (w.depth < max_depth && n_node >= options.min_rows_split) {
      const uint32_t d = static_cast<uint32_t>(codes.size());
      struct SlotBest {
        double gain = 0.0;
        uint32_t code = 0;
        bool valid = false;
      };
      std::vector<SlotBest> best(d);
      const double parent_obj =
          (w.g_total * w.g_total) / (w.h_total + options.lambda);
      ParallelFor(d, options.num_threads, [&](uint32_t jj) {
        const std::vector<double>& gj = w.gh[jj];
        const std::vector<uint64_t>& cj = w.cnt[jj];
        SlotBest b;
        for (uint32_t v = 0; v < cards[jj]; ++v) {
          const uint64_t nl = cj[v];
          if (nl == 0 || nl == n_node) continue;
          const double gl = gj[static_cast<size_t>(v) * 2];
          const double hl_v = gj[static_cast<size_t>(v) * 2 + 1];
          const double gr = w.g_total - gl;
          const double hr = w.h_total - hl_v;
          const double gain = (gl * gl) / (hl_v + options.lambda) +
                              (gr * gr) / (hr + options.lambda) - parent_obj;
          if (!b.valid || gain > b.gain) b = {gain, v, true};
        }
        best[jj] = b;
      });
      double pick_gain = options.min_gain;
      for (uint32_t jj = 0; jj < d; ++jj) {
        if (best[jj].valid && best[jj].gain > pick_gain) {
          pick = static_cast<int32_t>(jj);
          pick_gain = best[jj].gain;
          pick_code = best[jj].code;
        }
      }
    }

    if (pick < 0) {
      // Finalize the leaf: fold its value into the boosted scores.
      for (uint32_t i : w.items) {
        (*scores)[static_cast<size_t>(i) * num_classes + k] += value;
      }
      return idx;
    }

    const std::vector<uint32_t>& col = codes[pick];
    RegNodeWork lw, rw;
    lw.depth = rw.depth = w.depth + 1;
    for (uint32_t i : w.items) {
      (col[i] == pick_code ? lw.items : rw.items).push_back(i);
    }
    w.items.clear();
    w.items.shrink_to_fit();

    lw.g_total = w.gh[pick][static_cast<size_t>(pick_code) * 2];
    lw.h_total = w.gh[pick][static_cast<size_t>(pick_code) * 2 + 1];
    rw.g_total = w.g_total - lw.g_total;
    rw.h_total = w.h_total - lw.h_total;

    // Subtraction trick: build the smaller child's histograms, derive the
    // sibling's from the parent's by subtraction (deterministic — both
    // training paths run the identical sequence of operations).
    RegNodeWork* small = lw.items.size() <= rw.items.size() ? &lw : &rw;
    RegNodeWork* big = small == &lw ? &rw : &lw;
    BuildHistograms(small->items, &small->gh, &small->cnt);
    big->gh = std::move(w.gh);
    big->cnt = std::move(w.cnt);
    const uint32_t d = static_cast<uint32_t>(codes.size());
    ParallelFor(d, options.num_threads, [&](uint32_t jj) {
      std::vector<double>& bg = big->gh[jj];
      std::vector<uint64_t>& bc = big->cnt[jj];
      const std::vector<double>& sg = small->gh[jj];
      const std::vector<uint64_t>& sc = small->cnt[jj];
      for (size_t x = 0; x < bg.size(); ++x) bg[x] -= sg[x];
      for (size_t x = 0; x < bc.size(); ++x) bc[x] -= sc[x];
    });

    const int32_t lidx = Grow(std::move(lw));
    const int32_t ridx = Grow(std::move(rw));
    tree->split_slot[idx] = pick;
    tree->split_code[idx] = pick_code;
    tree->left[idx] = lidx;
    tree->right[idx] = ridx;
    return idx;
  }
};

/// Leaf value of one tree for a row whose slot codes come from `fetch`.
template <typename FetchCode>
double TreeValueAt(const GbtTree& t, const FetchCode& fetch) {
  int32_t node = 0;
  while (t.split_slot[node] >= 0) {
    const uint32_t slot = static_cast<uint32_t>(t.split_slot[node]);
    node = fetch(slot) == t.split_code[node] ? t.left[node] : t.right[node];
  }
  return t.value[node];
}

}  // namespace

Gbt::Gbt(GbtOptions options) : options_(options) {
  HAMLET_CHECK(options_.learning_rate > 0.0,
               "Gbt learning_rate must be positive, got %f",
               options_.learning_rate);
  HAMLET_CHECK(options_.lambda > 0.0, "Gbt lambda must be positive, got %f",
               options_.lambda);
}

Status Gbt::Train(const EncodedDataset& data,
                  const std::vector<uint32_t>& rows,
                  const std::vector<uint32_t>& features) {
  obs::ScopedLatency latency(GbtTrainHistogram());
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has zero classes");
  }
  for (uint32_t j : features) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(
          StringFormat("feature index %u out of range (%u features)", j,
                       data.num_features()));
    }
  }
  num_classes_ = data.num_classes();
  features_ = features;
  cardinalities_.clear();
  cardinalities_.reserve(features_.size());
  for (uint32_t j : features_) cardinalities_.push_back(data.meta(j).cardinality);

  std::vector<uint32_t> labels;
  labels.reserve(rows.size());
  for (uint32_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::InvalidArgument(
          StringFormat("row index %u out of range (%u rows)", r,
                       data.num_rows()));
    }
    labels.push_back(data.labels()[r]);
  }

  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> codes(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    const std::vector<uint32_t>& col = data.feature(features_[jj]);
    codes[jj].resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) codes[jj][i] = col[rows[i]];
  });
  return TrainImpl(num_classes_, labels, codes);
}

Status Gbt::TrainFactorized(const FactorizedDataset& data,
                            const std::vector<uint32_t>& rows,
                            const std::vector<uint32_t>& features) {
  obs::ScopedLatency latency(GbtTrainHistogram());
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has zero classes");
  }
  for (uint32_t j : features) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(
          StringFormat("feature index %u out of range (%u features)", j,
                       data.num_features()));
    }
  }
  num_classes_ = data.num_classes();
  features_ = features;
  cardinalities_.clear();
  cardinalities_.reserve(features_.size());
  for (uint32_t j : features_) cardinalities_.push_back(data.meta(j).cardinality);

  std::vector<uint32_t> labels;
  labels.reserve(rows.size());
  for (uint32_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::InvalidArgument(
          StringFormat("row index %u out of range (%u rows)", r,
                       data.num_rows()));
    }
    labels.push_back(data.labels()[r]);
  }

  // Candidate columns through the FK -> R hops: by the GatherCodes
  // contract each equals the materialized join's column at `rows`, so
  // TrainImpl — a pure function of (labels, codes) — produces the
  // bit-identical ensemble.
  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> codes(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    data.GatherCodes(features_[jj], rows, &codes[jj]);
  });
  return TrainImpl(num_classes_, labels, codes);
}

Status Gbt::TrainImpl(uint32_t num_classes,
                      const std::vector<uint32_t>& labels,
                      const std::vector<std::vector<uint32_t>>& codes) {
  trees_.clear();
  const uint32_t n = static_cast<uint32_t>(labels.size());
  const uint32_t K = num_classes;

  uint32_t rounds = options_.num_rounds;
  uint32_t max_depth = options_.max_depth;
  if (ScopedTreeRefitBudget::Active()) {
    rounds = std::min(rounds, options_.candidate_rounds);
    max_depth = std::min(max_depth, options_.candidate_max_depth);
  }

  // Base scores: smoothed log priors (pseudo-count 1), the same kind of
  // expression the tree leaves and the NB prior use.
  std::vector<uint64_t> cls(K, 0);
  for (uint32_t y : labels) ++cls[y];
  base_scores_.resize(K);
  const double base_denom =
      static_cast<double>(n) + static_cast<double>(K);
  for (uint32_t y = 0; y < K; ++y) {
    base_scores_[y] =
        std::log((static_cast<double>(cls[y]) + 1.0) / base_denom);
  }

  std::vector<double> scores(static_cast<size_t>(n) * K);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t y = 0; y < K; ++y) {
      scores[static_cast<size_t>(i) * K + y] = base_scores_[y];
    }
  }

  std::vector<double> g(static_cast<size_t>(n) * K);
  std::vector<double> h(static_cast<size_t>(n) * K);
  trees_.reserve(static_cast<size_t>(rounds) * K);
  for (uint32_t m = 0; m < rounds; ++m) {
    // Softmax gradients/hessians. Rows are independent (each work item
    // writes only its own K slots), and within a row every sum runs in
    // ascending class order — deterministic at any thread count.
    ParallelFor(n, options_.num_threads, [&](uint32_t i) {
      const double* s = &scores[static_cast<size_t>(i) * K];
      double max_s = s[0];
      for (uint32_t y = 1; y < K; ++y) {
        if (s[y] > max_s) max_s = s[y];
      }
      double sum = 0.0;
      for (uint32_t y = 0; y < K; ++y) sum += std::exp(s[y] - max_s);
      for (uint32_t y = 0; y < K; ++y) {
        const double p = std::exp(s[y] - max_s) / sum;
        const size_t at = static_cast<size_t>(i) * K + y;
        g[at] = p - (labels[i] == y ? 1.0 : 0.0);
        h[at] = p * (1.0 - p);
      }
    });

    for (uint32_t k = 0; k < K; ++k) {
      GbtTree tree;
      RegTreeBuilder builder{options_, codes, cardinalities_, g,     h,
                             k,        K,     max_depth,      &scores, &tree};
      RegNodeWork root;
      root.items.resize(n);
      std::iota(root.items.begin(), root.items.end(), 0u);
      root.depth = 0;
      for (uint32_t i = 0; i < n; ++i) {
        root.g_total += g[static_cast<size_t>(i) * K + k];
        root.h_total += h[static_cast<size_t>(i) * K + k];
      }
      builder.BuildHistograms(root.items, &root.gh, &root.cnt);
      builder.Grow(std::move(root));
      trees_.push_back(std::move(tree));
    }
  }

  GbtTrainsCounter().Add(1);
  GbtTreesCounter().Add(trees_.size());
  return Status::OK();
}

void Gbt::LogScoresInto(const EncodedDataset& data, uint32_t row,
                        std::vector<double>* out) const {
  HAMLET_CHECK(num_classes_ > 0, "Gbt::LogScoresInto before Train");
  out->assign(base_scores_.begin(), base_scores_.end());
  for (size_t t = 0; t < trees_.size(); ++t) {
    const uint32_t k = static_cast<uint32_t>(t % num_classes_);
    (*out)[k] += TreeValueAt(trees_[t], [&](uint32_t slot) {
      return data.feature(features_[slot])[row];
    });
  }
}

uint32_t Gbt::PredictOne(const EncodedDataset& data, uint32_t row) const {
  thread_local std::vector<double> scores;
  LogScoresInto(data, row, &scores);
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return best;
}

std::vector<uint32_t> Gbt::Predict(const EncodedDataset& data,
                                   const std::vector<uint32_t>& rows) const {
  std::vector<uint32_t> out(rows.size());
  ParallelFor(static_cast<uint32_t>(rows.size()), options_.num_threads,
              [&](uint32_t i) { out[i] = PredictOne(data, rows[i]); });
  return out;
}

Status Gbt::PredictFactorized(const FactorizedDataset& data,
                              const std::vector<uint32_t>& rows,
                              std::vector<uint32_t>* out) const {
  if (num_classes_ == 0) {
    return Status::FailedPrecondition("Gbt::PredictFactorized before Train");
  }
  for (uint32_t j : features_) {
    if (j >= data.num_features()) {
      return Status::InvalidArgument(StringFormat(
          "trained feature index %u out of range (%u features)", j,
          data.num_features()));
    }
  }
  const uint32_t d = static_cast<uint32_t>(features_.size());
  std::vector<std::vector<uint32_t>> cols(d);
  ParallelFor(d, options_.num_threads, [&](uint32_t jj) {
    data.GatherCodes(features_[jj], rows, &cols[jj]);
  });
  out->resize(rows.size());
  ParallelFor(
      static_cast<uint32_t>(rows.size()), options_.num_threads,
      [&](uint32_t i) {
        thread_local std::vector<double> scores;
        scores.assign(base_scores_.begin(), base_scores_.end());
        for (size_t t = 0; t < trees_.size(); ++t) {
          const uint32_t k = static_cast<uint32_t>(t % num_classes_);
          scores[k] += TreeValueAt(
              trees_[t], [&](uint32_t slot) { return cols[slot][i]; });
        }
        uint32_t best = 0;
        for (uint32_t c = 1; c < num_classes_; ++c) {
          if (scores[c] > scores[best]) best = c;
        }
        (*out)[i] = best;
      });
  return Status::OK();
}

uint32_t Gbt::trained_cardinality(size_t jj) const {
  HAMLET_CHECK(jj < cardinalities_.size(),
               "trained_cardinality slot out of range");
  return cardinalities_[jj];
}

GbtParams Gbt::ExportParams() const {
  GbtParams params;
  params.learning_rate = options_.learning_rate;
  params.lambda = options_.lambda;
  params.num_classes = num_classes_;
  params.features = features_;
  params.cardinalities = cardinalities_;
  params.base_scores = base_scores_;
  params.trees = trees_;
  return params;
}

Result<Gbt> Gbt::FromParams(GbtParams params) {
  if (params.learning_rate <= 0.0) {
    return Status::InvalidArgument("Gbt params: learning_rate must be > 0");
  }
  if (params.lambda <= 0.0) {
    return Status::InvalidArgument("Gbt params: lambda must be > 0");
  }
  if (params.num_classes == 0) {
    return Status::InvalidArgument("Gbt params: zero classes");
  }
  if (params.features.size() != params.cardinalities.size()) {
    return Status::InvalidArgument(
        "Gbt params: features/cardinalities size mismatch");
  }
  if (params.base_scores.size() != params.num_classes) {
    return Status::InvalidArgument(
        "Gbt params: base_scores size does not match classes");
  }
  if (params.trees.size() % params.num_classes != 0) {
    return Status::InvalidArgument(
        "Gbt params: tree count is not a multiple of classes");
  }
  for (const GbtTree& t : params.trees) {
    HAMLET_RETURN_NOT_OK(ValidateTreeStructure(
        t.split_slot, t.split_code, t.left, t.right, params.features.size(),
        params.cardinalities, "Gbt params"));
    if (t.value.size() != t.split_slot.size()) {
      return Status::InvalidArgument(
          "Gbt params: value size does not match nodes");
    }
  }

  GbtOptions options;
  options.learning_rate = params.learning_rate;
  options.lambda = params.lambda;
  Gbt model(options);
  model.num_classes_ = params.num_classes;
  model.features_ = std::move(params.features);
  model.cardinalities_ = std::move(params.cardinalities);
  model.base_scores_ = std::move(params.base_scores);
  model.trees_ = std::move(params.trees);
  return model;
}

ClassifierFactory MakeGbtFactory(GbtOptions options) {
  return [options]() { return std::make_unique<Gbt>(options); };
}

}  // namespace hamlet
